// sweep reproduces a single row of the paper's Figure 6-3 interactively:
// pick a benchmark and memory latency, sweep the machine width from 1 to 8
// functional units, and print the SPEC-over-STATIC speedup at each point —
// showing the resource crossover the paper's §6.3 discusses (SpD's extra
// operations hurt narrow machines and pay off on wide ones).
//
//	go run ./examples/sweep [-bench fft] [-mem 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/machine"
)

func main() {
	log.SetFlags(0)
	name := flag.String("bench", "fft", "benchmark to sweep")
	memLat := flag.Int("mem", 6, "memory latency (2 or 6)")
	flag.Parse()

	b := bench.ByName(*name)
	if b == nil {
		var names []string
		for _, x := range bench.All() {
			names = append(names, x.Name)
		}
		log.Fatalf("unknown benchmark %q (have: %s)", *name, strings.Join(names, ", "))
	}

	r := exper.New()
	st, err := r.Measure(b, disamb.Static, *memLat)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := r.Measure(b, disamb.Spec, *memLat)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := r.Prepared(b, disamb.Spec, *memLat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %s, %d-cycle memory\n", b.Name, b.Desc, *memLat)
	fmt.Printf("SpD applied %d times (RAW %d, WAR %d, WAW %d), code %+d ops\n\n",
		len(prep.SpD.Apps), prep.SpD.RAW, prep.SpD.WAR, prep.SpD.WAW, prep.SpD.AddedOps)
	fmt.Printf("%5s  %12s  %12s  %9s\n", "FUs", "STATIC cyc", "SPEC cyc", "speedup")
	for w := 1; w <= exper.MaxWidth; w++ {
		s := 100 * (float64(st.ByWidth[w-1])/float64(sp.ByWidth[w-1]) - 1)
		bar := ""
		if n := int(s); n > 0 {
			bar = strings.Repeat("+", min(n, 40))
		} else if n < 0 {
			bar = strings.Repeat("-", min(-n, 40))
		}
		fmt.Printf("%5d  %12d  %12d  %+8.1f%%  %s\n",
			w, st.ByWidth[w-1], sp.ByWidth[w-1], s, bar)
	}
	_ = machine.BranchLatency // documented constant of the model
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
