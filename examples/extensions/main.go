// extensions demonstrates the paper's §7 future-work directions, both
// implemented here:
//
//  1. Grafting — enlarging decision trees by tail-duplicating hot
//     successors, so the tree-starved integer benchmarks expose ambiguous
//     pairs for SpD to work on.
//
//  2. Combined multi-alias speculation — one duplicate guarded by the
//     conjunction of all no-alias compares, instead of up to 2^n copies
//     from one-at-a-time application.
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/graft"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

func main() {
	log.SetFlags(0)
	m := []machine.Model{machine.New(5, 6)}
	gp := graft.DefaultParams()

	fmt.Println("== Grafting (§7): enlarge trees, then speculate")
	fmt.Printf("%-8s %7s %14s %22s\n", "program", "grafts", "SpD apps", "cycles @5FU/m6")
	for _, name := range []string{"perm", "queen", "quick", "tree", "boolmin"} {
		b := bench.ByName(name)
		plain, err := disamb.Prepare(b.Source, disamb.Spec, 6, spd.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		grafted, err := disamb.PrepareOpts(b.Source, disamb.Options{
			Kind: disamb.Spec, MemLat: 6, SpD: spd.DefaultParams(),
			Graft: &gp, GraftRounds: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		rp, err := disamb.Measure(plain, m)
		if err != nil {
			log.Fatal(err)
		}
		rg, err := disamb.Measure(grafted, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7d %8d -> %2d %10d -> %-10d (%+.1f%%)\n",
			name, grafted.Grafts, len(plain.SpD.Apps), len(grafted.SpD.Apps),
			rp.Times[0], rg.Times[0],
			100*(float64(rp.Times[0])/float64(rg.Times[0])-1))
	}

	fmt.Println("\n== Combined speculation (§7): one copy for the likely outcome")
	fmt.Printf("%-8s %28s %28s\n", "program", "one-at-a-time (pairs, +ops)", "combined (pairs, +ops)")
	for _, name := range []string{"fft", "smooft"} {
		b := bench.ByName(name)
		one, err := disamb.Prepare(b.Source, disamb.Spec, 6, spd.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		prog, err := compile.Compile(b.Source)
		if err != nil {
			log.Fatal(err)
		}
		prof := sim.NewProfile()
		r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(6).LatencyFunc(), Prof: prof}
		if _, err := r.Run(); err != nil {
			log.Fatal(err)
		}
		comb := spd.TransformCombined(prog, prof, spd.DefaultParams())
		fmt.Printf("%-8s %18d, +%-6d %20d, +%-6d\n",
			name, one.SpD.RAW, one.SpD.AddedOps, comb.RAW, comb.AddedOps)
	}
	fmt.Println("\nGrafting buys 5-20% on the integer suite; combined speculation")
	fmt.Println("resolves pairs at roughly half the code cost per pair.")
}
