// Quickstart: compile the paper's Example 2-1 — a store and a load that may
// or may not alias — with and without speculative disambiguation, and
// compare cycle counts on a 5-FU LIFE machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// The paper's Example 2-1 wrapped in a loop: a[i] = ...; x = f(..., a[j], ...)
// where i and j are unknown to the compiler. They collide in 1 of 16 calls.
const src = `
int a[16];

int f(int i, int j, int v) {
	a[i] = v * 3;          // store through i
	int x = a[j] * 5 + 7;  // load through j: ambiguously aliased
	return x;
}

void main() {
	int s = 0;
	for (int k = 0; k < 160; k = k + 1) {
		s = s + f(k % 16, (k * 7) % 16, k);
	}
	print(s);
}
`

func main() {
	m := machine.New(5, 2) // five universal FUs, 2-cycle memory

	fmt.Println("Example 2-1: ambiguous store/load pair, 160 executions")
	fmt.Printf("machine: %d FUs, %d-cycle memory\n\n", m.NumFUs, m.MemLatency)

	var naive int64
	for _, kind := range []disamb.Kind{disamb.Naive, disamb.Static, disamb.Spec, disamb.Perfect} {
		p, err := disamb.Prepare(src, kind, m.MemLatency, spd.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		res, err := disamb.Measure(p, []machine.Model{m})
		if err != nil {
			log.Fatal(err)
		}
		if kind == disamb.Naive {
			naive = res.Times[0]
		}
		extra := ""
		if p.SpD != nil && len(p.SpD.Apps) > 0 {
			extra = fmt.Sprintf("  (SpD applied %d times, +%d ops)",
				len(p.SpD.Apps), p.SpD.AddedOps)
		}
		fmt.Printf("%-8s %6d cycles  speedup over NAIVE %+5.1f%%  output=%q%s\n",
			kind, res.Times[0],
			100*(float64(naive)/float64(res.Times[0])-1),
			trimNL(res.Output), extra)
	}
}

func trimNL(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		return s[:n-1]
	}
	return s
}
