// rawdep walks through the paper's Figure 4-4 at the IR level: a decision
// tree is built by hand with an ambiguous RAW dependence (store S, load L,
// dependent multiply and add), the SpD transformation is applied to it
// directly, and the before/after trees and infinite-machine schedules are
// printed so the critical-path shortening is visible.
//
//	go run ./examples/rawdep
package main

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/spd"
)

func main() {
	fn := &ir.Function{Name: "fig44"}
	t := &ir.Tree{ID: 0, Fn: fn, Name: "fig44.body"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}

	// Registers: r0 = &a[i] (store address), r1 = &a[j] (load address),
	// r2 = stored value; all arrive from a previous tree.
	addrS := fn.NewReg()
	addrL := fn.NewReg()
	val := fn.NewReg()
	fn.NumRegs = 3

	// S:  mem[r0] = r2
	t.NewOp(ir.OpStore, []ir.Reg{addrS, val}, ir.NoReg)
	// L:  r3 = mem[r1]
	l := t.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	// mul: r4 = r3 * r3     (data dependent on the load)
	mul := t.NewOp(ir.OpMul, []ir.Reg{l.Dest, l.Dest}, fn.NewReg())
	// add: r5 = r4 + r2     (indirectly dependent)
	add := t.NewOp(ir.OpAdd, []ir.Reg{mul.Dest, val}, fn.NewReg())
	add.VarWrite = true // externally observable result
	ret := t.NewOp(ir.OpExit, []ir.Reg{add.Dest}, ir.NoReg)
	ret.Exit = ir.ExitRet

	t.BuildMemArcs()
	m := machine.Infinite(2)

	show := func(label string) {
		fmt.Printf("== %s\n", label)
		fmt.Print(t.String())
		sc := sched.Tree(t, m)
		fmt.Println("ASAP schedule (infinite machine, 2-cycle memory):")
		for i, op := range t.Ops {
			fmt.Printf("  cycle %2d..%2d  %s\n", sc.Issue[i], sc.Comp[i], op)
		}
		fmt.Printf("schedule length: %d cycles\n\n", sc.Length())
	}

	show("before SpD: load serialized behind the maybe-aliasing store")

	arc := t.Arcs[0]
	fmt.Printf("applying SpD to %s (ambiguous RAW, Figure 4-4)\n\n", arc)
	added, err := spd.Apply(t, arc, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ops added: %d (address compare + duplicated dependents)\n\n", added)

	show("after SpD: speculative copy runs concurrently, alias copy forwards")

	fmt.Println("The no-alias copy issues its load in cycle 0 instead of")
	fmt.Println("waiting out the store's latency, and the alias copy forwards")
	fmt.Println("the stored value straight into the multiply, exactly as the")
	fmt.Println("paper's Figure 4-4 describes: both outcomes finish sooner.")
}
