// Nonterm: what happens when a program never halts. The simulator bounds
// every interpretation with a fuel budget (a hard dynamic-operation count)
// and an optional wall-clock deadline, so a nonterminating program — here a
// bare while(1) loop — fails with a typed error on every execution engine
// instead of hanging: the reference tree walker, the bytecode engine, and
// the bytecode engine under trace capture.
//
//	go run ./examples/nonterm
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"specdis/internal/compile"
	"specdis/internal/machine"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/trace"
)

// The simplest nonterminating MiniC program: no exit, no print — only the
// fuel budget or a deadline can stop it. (spdlint skips its dynamic checks
// with a fuel notice for the same reason; see docs/RESILIENCE.md.)
const src = `
void main() {
	int i = 0;
	while (1) {
		i = i + 1;
	}
}
`

func main() {
	prog, err := compile.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	lat := machine.Infinite(2).LatencyFunc()

	fmt.Println("a while(1) loop under a 100,000-op fuel budget:")
	engines := []struct {
		name string
		mode sim.ExecMode
		rec  bool
	}{
		{"tree walker     ", sim.ExecTree, false},
		{"bytecode        ", sim.ExecBytecode, false},
		{"trace capture   ", sim.ExecBytecode, true},
	}
	for _, e := range engines {
		r := &sim.Runner{Prog: prog, SemLat: lat, MaxOps: 100_000, Exec: e.mode}
		if e.rec {
			r.Rec = trace.NewRecorder()
		}
		_, err := r.Run()
		fmt.Printf("  %s %v\n", e.name, err)
		if !errors.Is(err, resilience.ErrFuelExhausted) {
			log.Fatalf("expected a typed fuel error, got %v", err)
		}
	}

	fmt.Println("\nthe same loop under a 50ms wall-clock deadline (unbounded fuel):")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := &sim.Runner{Prog: prog, SemLat: lat, Ctx: ctx, Exec: sim.ExecBytecode}
	start := time.Now()
	_, err = r.Run()
	fmt.Printf("  after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
	if !errors.Is(err, resilience.ErrDeadline) {
		log.Fatalf("expected a typed deadline error, got %v", err)
	}

	fmt.Println("\nboth failures are matchable with errors.Is:")
	fmt.Printf("  errors.Is(err, resilience.ErrDeadline) = %v\n", errors.Is(err, resilience.ErrDeadline))
}
