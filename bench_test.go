// Package specdis's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§6) and run the ablations called out in
// DESIGN.md. Each benchmark prints the regenerated rows once (on the first
// iteration) and reports the cost of producing them, so
//
//	go test -bench=. -benchmem
//
// doubles as the full reproduction run.
package specdis_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

var printOnce sync.Map

// emit prints a section once per benchmark name across all iterations.
func emit(name string, f func()) {
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		f()
	}
}

// ---- The paper's tables and figures --------------------------------------

func BenchmarkTable63(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.Table63()
		if err != nil {
			b.Fatal(err)
		}
		emit("table63", func() { exper.RenderTable63(os.Stdout, rows) })
	}
}

func BenchmarkFigure62(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.Figure62()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig62", func() { exper.RenderFigure62(os.Stdout, rows) })
	}
}

func BenchmarkFigure63(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.Figure63()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig63", func() { exper.RenderFigure63(os.Stdout, rows) })
	}
}

func BenchmarkFigure64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.Figure64()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig64", func() { exper.RenderFigure64(os.Stdout, rows) })
	}
}

// ---- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAblationForwarding compares SPEC with and without store-to-load
// forwarding on the alias path (design decision 2).
func BenchmarkAblationForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines := []string{"Ablation: store-to-load forwarding on the alias path (5 FU, 2-cyc memory)"}
		for _, name := range []string{"fft", "moment", "quick"} {
			bm := bench.ByName(name)
			var cyc [2]int64
			for j, fwd := range []bool{true, false} {
				params := spd.DefaultParams()
				params.Forwarding = fwd
				p, err := disamb.Prepare(bm.Source, disamb.Spec, 2, params)
				if err != nil {
					b.Fatal(err)
				}
				res, err := disamb.Measure(p, []machine.Model{machine.New(5, 2)})
				if err != nil {
					b.Fatal(err)
				}
				cyc[j] = res.Times[0]
			}
			lines = append(lines, fmt.Sprintf("  %-8s with=%8d cycles  without=%8d cycles (%+.2f%%)",
				name, cyc[0], cyc[1], 100*(float64(cyc[1])/float64(cyc[0])-1)))
		}
		emit("abl-fwd", func() {
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkAblationAliasProb sweeps the assumed alias probability of §5.3
// (the paper fixes it at 0.1; design decision 4).
func BenchmarkAblationAliasProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines := []string{"Ablation: assumed alias probability (fft, 5 FU, 6-cyc memory)"}
		bm := bench.ByName("fft")
		for _, q := range []float64{0.01, 0.1, 0.3, 0.5} {
			params := spd.DefaultParams()
			params.AssumedAliasProb = q
			p, err := disamb.Prepare(bm.Source, disamb.Spec, 6, params)
			if err != nil {
				b.Fatal(err)
			}
			res, err := disamb.Measure(p, []machine.Model{machine.New(5, 6)})
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  q=%.2f  applications=%2d  cycles=%d",
				q, len(p.SpD.Apps), res.Times[0]))
		}
		emit("abl-q", func() {
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// BenchmarkAblationMaxExpansion sweeps the code-growth bound of Figure 5-1
// (design decision 5).
func BenchmarkAblationMaxExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines := []string{"Ablation: MaxExpansion bound (smooft, 5 FU, 6-cyc memory)"}
		bm := bench.ByName("smooft")
		for _, mx := range []float64{1.0, 1.25, 1.5, 2.0, 3.0} {
			params := spd.DefaultParams()
			params.MaxExpansion = mx
			p, err := disamb.Prepare(bm.Source, disamb.Spec, 6, params)
			if err != nil {
				b.Fatal(err)
			}
			res, err := disamb.Measure(p, []machine.Model{machine.New(5, 6)})
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  MaxExpansion=%.2f  ops=%4d  applications=%2d  cycles=%d",
				mx, p.Prog.OpCount(), len(p.SpD.Apps), res.Times[0]))
		}
		emit("abl-mx", func() {
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

// ---- Component micro-benchmarks -------------------------------------------

func BenchmarkCompileSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range bench.All() {
			if _, err := compile.Compile(bm.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkScheduleSuite(b *testing.B) {
	var trees []*ir.Tree
	for _, bm := range bench.All() {
		prog, err := compile.Compile(bm.Source)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range prog.Order {
			trees = append(trees, prog.Funcs[name].Trees...)
		}
	}
	m := machine.New(5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trees {
			sched.Tree(tr, m)
		}
	}
}

func BenchmarkSimulateFFT(b *testing.B) {
	prog, err := compile.Compile(bench.ByName("fft").Source)
	if err != nil {
		b.Fatal(err)
	}
	lat := machine.Infinite(2).LatencyFunc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{Prog: prog, SemLat: lat}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpDTransformSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range bench.All() {
			if _, err := disamb.Prepare(bm.Source, disamb.Spec, 2, spd.DefaultParams()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensionGrafting measures the paper's §7 grafting extension on
// the tree-starved integer benchmarks: tree growth exposes more SpD
// opportunities and shortens cycle counts.
func BenchmarkExtensionGrafting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.ExtGrafting(6, 5)
		if err != nil {
			b.Fatal(err)
		}
		emit("ext-graft", func() { exper.RenderExtensions(os.Stdout, rows, nil) })
	}
}

// BenchmarkExtensionCombined compares §7's combined multi-alias speculation
// (one duplicate for the all-no-alias outcome) against the one-at-a-time
// transform: code growth per disambiguated pair.
func BenchmarkExtensionCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		rows, err := r.ExtCombined(6)
		if err != nil {
			b.Fatal(err)
		}
		emit("ext-comb", func() { exper.RenderExtensions(os.Stdout, nil, rows) })
	}
}
