// Package cmd_test builds the command-line tools and exercises them end to
// end as a user would.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles one command into dir and returns the binary path.
func build(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

const demoProgram = `
int a[16];
int f(int i, int j, int v) {
	a[i] = v;
	return a[j] * 2;
}
void main() {
	int s = 0;
	for (int k = 0; k < 32; k = k + 1) { s = s + f(k % 16, (k + 5) % 16, k); }
	print(s);
}
`

func TestSpdcEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdc")
	src := filepath.Join(dir, "demo.mc")
	if err := os.WriteFile(src, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	var outputs []string
	for _, kind := range []string{"naive", "static", "spec", "perfect"} {
		out, err := exec.Command(bin, "-disamb", kind, "-fus", "5", "-mem", "6", "-stats", src).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", kind, err, out)
		}
		s := string(out)
		if !strings.Contains(s, "cycles") {
			t.Fatalf("%s output lacks cycle report:\n%s", kind, s)
		}
		// The program output (the line just before the cycle report) must be
		// identical across disambiguators; the -stats preamble differs.
		lines := strings.Split(strings.TrimSpace(strings.SplitN(s, "[", 2)[0]), "\n")
		outputs = append(outputs, lines[len(lines)-1])
		if kind == "spec" && !strings.Contains(s, "SpD applications") {
			t.Errorf("spec run lacks SpD stats:\n%s", s)
		}
	}
	for _, o := range outputs[1:] {
		if o != outputs[0] {
			t.Fatalf("disambiguators disagree: %q vs %q", o, outputs[0])
		}
	}

	// Dump and timeline modes must work and mention trees/cycles.
	out, err := exec.Command(bin, "-disamb", "spec", "-dump", "-timeline", "-quiet", src).CombinedOutput()
	if err != nil {
		t.Fatalf("dump: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "tree ") {
		t.Fatalf("dump lacks trees:\n%s", out)
	}

	// Errors: missing file and bad disambiguator.
	if _, err := exec.Command(bin, filepath.Join(dir, "nope.mc")).CombinedOutput(); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := exec.Command(bin, "-disamb", "wat", src).CombinedOutput(); err == nil {
		t.Error("bad disambiguator accepted")
	}

	// A compile error must be reported with a position.
	bad := filepath.Join(dir, "bad.mc")
	if err := os.WriteFile(bad, []byte("void main() { x = ; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, bad).CombinedOutput()
	if err == nil {
		t.Error("bad program accepted")
	}
	if !strings.Contains(string(out), "1:") {
		t.Errorf("error lacks position:\n%s", out)
	}
}

func TestSpdbenchSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdbench")

	out, err := exec.Command(bin, "-only", "table61").CombinedOutput()
	if err != nil {
		t.Fatalf("table61: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Branches                      2") {
		t.Fatalf("table61 wrong:\n%s", out)
	}

	out, err = exec.Command(bin, "-only", "table63", "-bench", "fft").CombinedOutput()
	if err != nil {
		t.Fatalf("table63: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "fft") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("table63 wrong:\n%s", s)
	}

	out, err = exec.Command(bin, "-only", "fig64", "-bench", "quick").CombinedOutput()
	if err != nil {
		t.Fatalf("fig64: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Code size increase") {
		t.Fatalf("fig64 wrong:\n%s", out)
	}

	if out, err := exec.Command(bin, "-bench", "nope").CombinedOutput(); err == nil {
		t.Errorf("unknown benchmark accepted:\n%s", out)
	}
}

// TestSpdbenchTraceBackends checks the -trace flag: both backends render the
// same report, the JSON reports the backend's work correctly, and an unknown
// mode is rejected.
func TestSpdbenchTraceBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdbench")

	var reports []string
	for _, mode := range []string{"replay", "interp"} {
		cmd := exec.Command(bin, "-trace", mode, "-bench", "fft", "-json")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("-trace %s: %v\n%s", mode, err, out)
		}
		reports = append(reports, string(out))
		data, err := os.ReadFile(filepath.Join(dir, "BENCH_spdbench.json"))
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		if !strings.Contains(s, `"mode": "`+mode+`"`) {
			t.Fatalf("-trace %s JSON lacks mode:\n%s", mode, s)
		}
		if mode == "replay" && (strings.Contains(s, `"replay_cells": 0`) || !strings.Contains(s, `"interp_cells": 0`)) {
			t.Fatalf("replay JSON counts wrong:\n%s", s)
		}
		if mode == "interp" && (!strings.Contains(s, `"replay_cells": 0`) || !strings.Contains(s, `"captures": 0`)) {
			t.Fatalf("interp JSON counts wrong:\n%s", s)
		}
	}
	if reports[0] != reports[1] {
		t.Fatalf("backends disagree:\n--- replay ---\n%s\n--- interp ---\n%s", reports[0], reports[1])
	}

	if out, err := exec.Command(bin, "-trace", "wat").CombinedOutput(); err == nil {
		t.Errorf("unknown -trace mode accepted:\n%s", out)
	}
}

func TestSpdfmt(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdfmt")
	src := filepath.Join(dir, "m.mc")
	if err := os.WriteFile(src, []byte("void   main( ) {print( 1+2 );}"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "print((1 + 2));") {
		t.Fatalf("unexpected formatting:\n%s", out)
	}
	// In-place rewrite round-trips.
	if out, err := exec.Command(bin, "-w", src).CombinedOutput(); err != nil {
		t.Fatalf("-w: %v\n%s", err, out)
	}
	again, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(src)
	if string(again) != string(data) {
		t.Fatal("formatting not idempotent")
	}
	// Errors are reported.
	bad := filepath.Join(dir, "bad.mc")
	os.WriteFile(bad, []byte("void main() { x = 1; }"), 0o644)
	if _, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Error("semantic error accepted")
	}
}

func TestSpdlint(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdlint")
	src := filepath.Join(dir, "m.mc")
	if err := os.WriteFile(src, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// A well-formed program is clean under every pipeline, and the summary
	// line confirms the run was not vacuous.
	out, err := exec.Command(bin, "-mem", "2,6", "-v", src).CombinedOutput()
	if err != nil {
		t.Fatalf("clean program flagged: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 program(s) clean") {
		t.Fatalf("missing clean summary:\n%s", out)
	}
	if !strings.Contains(string(out), "cells") || strings.Contains(string(out), "0 cells") {
		t.Fatalf("missing or vacuous stats line:\n%s", out)
	}

	// A seeded corruption makes the exit status nonzero and the diagnostic
	// names the check, the tree, and the damaged op.
	out, err = exec.Command(bin, "-mem", "2", "-corrupt", "seq", src).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted tree accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "struct/seq-order") {
		t.Fatalf("diagnostic does not name the violated check:\n%s", out)
	}
	out, err = exec.Command(bin, "-mem", "2", "-corrupt", "arc", src).CombinedOutput()
	if err == nil {
		t.Fatalf("dangling arc accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "struct/dangling-arc") {
		t.Fatalf("diagnostic does not name the violated check:\n%s", out)
	}

	// Unknown corruption kinds are rejected.
	if out, err := exec.Command(bin, "-corrupt", "wat", src).CombinedOutput(); err == nil {
		t.Errorf("unknown -corrupt kind accepted:\n%s", out)
	}
}
