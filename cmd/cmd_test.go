// Package cmd_test builds the command-line tools and exercises them end to
// end as a user would.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles one command into dir and returns the binary path.
func build(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

const demoProgram = `
int a[16];
int f(int i, int j, int v) {
	a[i] = v;
	return a[j] * 2;
}
void main() {
	int s = 0;
	for (int k = 0; k < 32; k = k + 1) { s = s + f(k % 16, (k + 5) % 16, k); }
	print(s);
}
`

func TestSpdcEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdc")
	src := filepath.Join(dir, "demo.mc")
	if err := os.WriteFile(src, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	var outputs []string
	for _, kind := range []string{"naive", "static", "spec", "perfect"} {
		out, err := exec.Command(bin, "-disamb", kind, "-fus", "5", "-mem", "6", "-stats", src).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", kind, err, out)
		}
		s := string(out)
		if !strings.Contains(s, "cycles") {
			t.Fatalf("%s output lacks cycle report:\n%s", kind, s)
		}
		// The program output (the line just before the cycle report) must be
		// identical across disambiguators; the -stats preamble differs.
		lines := strings.Split(strings.TrimSpace(strings.SplitN(s, "[", 2)[0]), "\n")
		outputs = append(outputs, lines[len(lines)-1])
		if kind == "spec" && !strings.Contains(s, "SpD applications") {
			t.Errorf("spec run lacks SpD stats:\n%s", s)
		}
	}
	for _, o := range outputs[1:] {
		if o != outputs[0] {
			t.Fatalf("disambiguators disagree: %q vs %q", o, outputs[0])
		}
	}

	// Dump and timeline modes must work and mention trees/cycles.
	out, err := exec.Command(bin, "-disamb", "spec", "-dump", "-timeline", "-quiet", src).CombinedOutput()
	if err != nil {
		t.Fatalf("dump: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "tree ") {
		t.Fatalf("dump lacks trees:\n%s", out)
	}

	// Errors: missing file and bad disambiguator.
	if _, err := exec.Command(bin, filepath.Join(dir, "nope.mc")).CombinedOutput(); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := exec.Command(bin, "-disamb", "wat", src).CombinedOutput(); err == nil {
		t.Error("bad disambiguator accepted")
	}

	// A compile error must be reported with a position.
	bad := filepath.Join(dir, "bad.mc")
	if err := os.WriteFile(bad, []byte("void main() { x = ; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, bad).CombinedOutput()
	if err == nil {
		t.Error("bad program accepted")
	}
	if !strings.Contains(string(out), "1:") {
		t.Errorf("error lacks position:\n%s", out)
	}
}

func TestSpdbenchSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdbench")

	out, err := exec.Command(bin, "-only", "table61").CombinedOutput()
	if err != nil {
		t.Fatalf("table61: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Branches                      2") {
		t.Fatalf("table61 wrong:\n%s", out)
	}

	out, err = exec.Command(bin, "-only", "table63", "-bench", "fft").CombinedOutput()
	if err != nil {
		t.Fatalf("table63: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "fft") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("table63 wrong:\n%s", s)
	}

	out, err = exec.Command(bin, "-only", "fig64", "-bench", "quick").CombinedOutput()
	if err != nil {
		t.Fatalf("fig64: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Code size increase") {
		t.Fatalf("fig64 wrong:\n%s", out)
	}

	if out, err := exec.Command(bin, "-bench", "nope").CombinedOutput(); err == nil {
		t.Errorf("unknown benchmark accepted:\n%s", out)
	}
}

// TestSpdbenchTraceBackends checks the -trace flag: both backends render the
// same report, the JSON reports the backend's work correctly, and an unknown
// mode is rejected.
func TestSpdbenchTraceBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdbench")

	var reports []string
	for _, mode := range []string{"replay", "interp"} {
		cmd := exec.Command(bin, "-trace", mode, "-bench", "fft", "-json")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("-trace %s: %v\n%s", mode, err, out)
		}
		reports = append(reports, string(out))
		data, err := os.ReadFile(filepath.Join(dir, "BENCH_spdbench.json"))
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		if !strings.Contains(s, `"mode": "`+mode+`"`) {
			t.Fatalf("-trace %s JSON lacks mode:\n%s", mode, s)
		}
		if mode == "replay" && (strings.Contains(s, `"replay_cells": 0`) || !strings.Contains(s, `"interp_cells": 0`)) {
			t.Fatalf("replay JSON counts wrong:\n%s", s)
		}
		if mode == "interp" && (!strings.Contains(s, `"replay_cells": 0`) || !strings.Contains(s, `"captures": 0`)) {
			t.Fatalf("interp JSON counts wrong:\n%s", s)
		}
	}
	if reports[0] != reports[1] {
		t.Fatalf("backends disagree:\n--- replay ---\n%s\n--- interp ---\n%s", reports[0], reports[1])
	}

	if out, err := exec.Command(bin, "-trace", "wat").CombinedOutput(); err == nil {
		t.Errorf("unknown -trace mode accepted:\n%s", out)
	}
}

func TestSpdfmt(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdfmt")
	src := filepath.Join(dir, "m.mc")
	if err := os.WriteFile(src, []byte("void   main( ) {print( 1+2 );}"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "print((1 + 2));") {
		t.Fatalf("unexpected formatting:\n%s", out)
	}
	// In-place rewrite round-trips.
	if out, err := exec.Command(bin, "-w", src).CombinedOutput(); err != nil {
		t.Fatalf("-w: %v\n%s", err, out)
	}
	again, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(src)
	if string(again) != string(data) {
		t.Fatal("formatting not idempotent")
	}
	// Errors are reported.
	bad := filepath.Join(dir, "bad.mc")
	os.WriteFile(bad, []byte("void main() { x = 1; }"), 0o644)
	if _, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Error("semantic error accepted")
	}
}

func TestSpdlint(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdlint")
	src := filepath.Join(dir, "m.mc")
	if err := os.WriteFile(src, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// A well-formed program is clean under every pipeline, and the summary
	// line confirms the run was not vacuous.
	out, err := exec.Command(bin, "-mem", "2,6", "-v", src).CombinedOutput()
	if err != nil {
		t.Fatalf("clean program flagged: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 program(s) clean") {
		t.Fatalf("missing clean summary:\n%s", out)
	}
	if !strings.Contains(string(out), "cells") || strings.Contains(string(out), "0 cells") {
		t.Fatalf("missing or vacuous stats line:\n%s", out)
	}

	// A seeded corruption makes the exit status nonzero and the diagnostic
	// names the check, the tree, and the damaged op.
	out, err = exec.Command(bin, "-mem", "2", "-corrupt", "seq", src).CombinedOutput()
	if err == nil {
		t.Fatalf("corrupted tree accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "struct/seq-order") {
		t.Fatalf("diagnostic does not name the violated check:\n%s", out)
	}
	out, err = exec.Command(bin, "-mem", "2", "-corrupt", "arc", src).CombinedOutput()
	if err == nil {
		t.Fatalf("dangling arc accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "struct/dangling-arc") {
		t.Fatalf("diagnostic does not name the violated check:\n%s", out)
	}

	// Unknown corruption kinds are rejected.
	if out, err := exec.Command(bin, "-corrupt", "wat", src).CombinedOutput(); err == nil {
		t.Errorf("unknown -corrupt kind accepted:\n%s", out)
	}
}

// loopProgram never terminates: only a fuel budget or deadline can stop it.
const loopProgram = `
void main() {
	int i = 0;
	while (1) { i = i + 1; }
}
`

// busyProgram terminates but runs long enough (hundreds of thousands of
// dynamic ops) to trip the -chaos panic trigger in every dynamic lint cell.
const busyProgram = `
int a[64];
void main() {
	int s = 0;
	for (int r = 0; r < 500; r = r + 1) {
		for (int k = 0; k < 64; k = k + 1) { a[k] = k + r; s = s + a[(k + 7) % 64]; }
	}
	print(s);
}
`

// run executes bin and returns stdout, stderr, and the exit code.
func run(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestSpdbenchResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdbench")

	cleanOut, cleanErr, code := run(t, bin, "-bench", "fft")
	if code != 0 || cleanErr != "" {
		t.Fatalf("clean run: exit %d, stderr %q", code, cleanErr)
	}

	// An injected panic fails its cells: FAIL rows on stdout, the failure
	// table on stderr, exit status 2.
	out, errOut, code := run(t, bin, "-bench", "fft", "-inject", "seed=42,rate=1,kinds=panic")
	if code != 2 {
		t.Fatalf("injected panic: exit %d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(out, "FAIL(panic)") {
		t.Fatalf("report lacks FAIL rows:\n%s", out)
	}
	if !strings.Contains(errOut, "cell(s) failed") || !strings.Contains(errOut, "injected panic") {
		t.Fatalf("stderr lacks the failure table:\n%s", errOut)
	}

	// A bytecode-only injected panic is recovered by the tree-walker rung:
	// stdout is byte-identical to the clean run, stderr reports the
	// degradation, exit status 1.
	out, errOut, code = run(t, bin, "-bench", "fft", "-inject", "seed=7,rate=1,kinds=bpanic")
	if code != 1 {
		t.Fatalf("recovered bpanic: exit %d, want 1\n%s", code, errOut)
	}
	if out != cleanOut {
		t.Fatalf("degraded stdout differs from clean run:\n%s", out)
	}
	if !strings.Contains(errOut, "degraded but complete") {
		t.Fatalf("stderr lacks the degradation summary:\n%s", errOut)
	}

	// Trace corruption walks recapture (times=1) and interp fallback
	// (times=2); both recover with identical reports.
	for _, plan := range []string{"seed=7,rate=1,kinds=flip", "seed=7,rate=1,kinds=flip,times=2"} {
		out, errOut, code = run(t, bin, "-bench", "fft", "-inject", plan)
		if code != 1 || out != cleanOut {
			t.Fatalf("%s: exit %d, identical %v\n%s", plan, code, out == cleanOut, errOut)
		}
	}

	// A starved fuel budget fails cells with the typed class.
	_, errOut, code = run(t, bin, "-bench", "fft", "-fuel", "1000")
	if code != 2 || !strings.Contains(errOut, "fuel") {
		t.Fatalf("-fuel 1000: exit %d\n%s", code, errOut)
	}

	// An expired deadline fails cells with the typed class.
	_, errOut, code = run(t, bin, "-bench", "fft", "-deadline", "1ns")
	if code != 2 || !strings.Contains(errOut, "deadline") {
		t.Fatalf("-deadline 1ns: exit %d\n%s", code, errOut)
	}

	// Malformed fault plans are rejected.
	if _, _, code := run(t, bin, "-inject", "wat"); code != 1 {
		t.Errorf("malformed -inject accepted (exit %d)", code)
	}
}

func TestSpdlintChaosAndFuel(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "cmd/spdlint")
	src := filepath.Join(dir, "m.mc")
	if err := os.WriteFile(src, []byte(demoProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	loop := filepath.Join(dir, "loop.mc")
	if err := os.WriteFile(loop, []byte(loopProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// A nonterminating program is skipped on fuel exhaustion — a notice and
	// a clean exit, not a hang and not a finding.
	out, _, code := run(t, bin, "-mem", "2", "-fuel", "100000", loop)
	if code != 0 {
		t.Fatalf("nonterminating program failed lint: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "SKIP") || !strings.Contains(out, "[fuel]") {
		t.Fatalf("missing fuel-skip notice:\n%s", out)
	}

	// -chaos panic: the injected crash must surface as a finding in every
	// dynamic cell, never kill the process. The busy program runs long
	// enough for the trigger to fire in each cell.
	busy := filepath.Join(dir, "busy.mc")
	if err := os.WriteFile(busy, []byte(busyProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code = run(t, bin, "-mem", "2", "-chaos", "panic", "-v", busy)
	if code == 0 {
		t.Fatalf("-chaos panic reported clean:\n%s", out)
	}
	if !strings.Contains(out, "lint/run-failed") || !strings.Contains(out, "injected panic") {
		t.Fatalf("chaos panic not surfaced as a finding:\n%s", out)
	}

	// -chaos fuel on the tiny demo: its dynamic cells finish under even the
	// chaos budget, so the run stays clean — the point is the budget is
	// honored without breaking well-behaved programs.
	if out, _, code := run(t, bin, "-mem", "2", "-chaos", "fuel", src); code != 0 {
		t.Fatalf("-chaos fuel broke a terminating program: exit %d\n%s", code, out)
	}

	// Unknown chaos kinds are rejected.
	if _, _, code := run(t, bin, "-chaos", "wat", src); code == 0 {
		t.Error("unknown -chaos kind accepted")
	}
}
