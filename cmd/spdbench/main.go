// Command spdbench runs the paper's full evaluation and prints every table
// and figure of §6: Table 6-1 (latencies), Table 6-2 (benchmarks), Table 6-3
// (SpD applications by dependence type), Figure 6-2 (speedup over NAIVE on a
// 5-FU machine), Figure 6-3 (SPEC over STATIC vs machine width), and
// Figure 6-4 (code-size increase).
//
// Usage:
//
//	spdbench                  # every table and figure of the paper
//	spdbench -only table63    # one experiment: table61|table62|table63|fig62|fig63|fig64
//	spdbench -only ext        # the §7 extension experiments (grafting, combined)
//	spdbench -bench fft       # restrict to one benchmark
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"specdis/internal/bench"
	"specdis/internal/exper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdbench: ")
	only := flag.String("only", "", "run a single experiment: table61|table62|table63|fig62|fig63|fig64|ext|overhead")
	benchName := flag.String("bench", "", "restrict to one benchmark")
	maxExpansion := flag.Float64("maxexpansion", 0, "override SpD MaxExpansion")
	minGain := flag.Float64("mingain", -1, "override SpD MinGain")
	flag.Parse()

	r := exper.New()
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		r.Benchmarks = []*bench.Benchmark{b}
	}
	if *maxExpansion > 0 {
		r.Params.MaxExpansion = *maxExpansion
	}
	if *minGain >= 0 {
		r.Params.MinGain = *minGain
	}

	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout

	if want("table61") {
		exper.RenderTable61(out)
		fmt.Fprintln(out)
	}
	if want("table62") {
		exper.RenderTable62(out, r.Benchmarks)
		fmt.Fprintln(out)
	}
	if want("table63") {
		rows, err := r.Table63()
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderTable63(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig62") {
		rows, err := r.Figure62()
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderFigure62(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig63") {
		rows, err := r.Figure63()
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderFigure63(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig64") {
		rows, err := r.Figure64()
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderFigure64(out, rows)
		fmt.Fprintln(out)
	}
	if *only == "overhead" {
		rows, err := r.DynamicOverhead(2)
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderOverhead(out, rows)
	}
	if *only == "ext" {
		grows, err := r.ExtGrafting(6, 5)
		if err != nil {
			log.Fatal(err)
		}
		crows, err := r.ExtCombined(6)
		if err != nil {
			log.Fatal(err)
		}
		exper.RenderExtensions(out, grows, crows)
	}
}
