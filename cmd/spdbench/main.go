// Command spdbench runs the paper's full evaluation and prints every table
// and figure of §6: Table 6-1 (latencies), Table 6-2 (benchmarks), Table 6-3
// (SpD applications by dependence type), Figure 6-2 (speedup over NAIVE on a
// 5-FU machine), Figure 6-3 (SPEC over STATIC vs machine width), and
// Figure 6-4 (code-size increase).
//
// Usage:
//
//	spdbench                  # every table and figure of the paper
//	spdbench -only table63    # one experiment: table61|table62|table63|fig62|fig63|fig64
//	spdbench -only ext        # the §7 extension experiments (grafting, combined)
//	spdbench -bench fft       # restrict to one benchmark
//	spdbench -par 4           # evaluation-cell worker pool width (0 = GOMAXPROCS)
//	spdbench -trace interp    # interpret every timed run instead of trace replay
//	spdbench -exec tree       # interpret on the reference tree walker instead of bytecode
//	spdbench -verify          # static verifier after every pipeline stage
//	spdbench -json            # also write BENCH_spdbench.json with timings
//	spdbench -cpuprofile f    # write a CPU profile of the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"specdis/internal/bench"
	"specdis/internal/exper"
	"specdis/internal/sim"
)

// benchReport is the schema of BENCH_spdbench.json: per-experiment wall
// times plus the runner's deduplicated work counters.
type benchReport struct {
	// WallMS maps experiment name to wall-clock milliseconds.
	WallMS map[string]float64 `json:"wall_ms"`
	// TotalMS is the wall time of the whole evaluation.
	TotalMS float64 `json:"total_ms"`
	// Par is the worker-pool width the run used (0 = GOMAXPROCS).
	Par int `json:"par"`
	// Cells counts distinct evaluation cells: prepares + timed measures.
	Cells int64 `json:"cells"`
	// CellsPerSec is Cells / total wall seconds.
	CellsPerSec float64 `json:"cells_per_sec"`
	// SimOps is the total number of dynamic operations priced across all
	// timed measurement cells. Deterministic for a given tree (an exact
	// simulation-work count, not a timing), and identical under both
	// -trace backends; CI pins it against the committed baseline.
	SimOps int64 `json:"sim_ops"`
	// Trace describes the trace-capture & replay backend's work.
	Trace traceReport `json:"trace"`
	// Exec describes the execution backend's work.
	Exec execReport `json:"exec"`
}

// traceReport is the "trace" section of BENCH_spdbench.json.
type traceReport struct {
	// Mode is the backend the run used: "replay" or "interp".
	Mode string `json:"mode"`
	// Captures counts distinct execution traces materialized; CacheHits
	// counts trace requests served from the singleflight cache.
	Captures  int64 `json:"captures"`
	CacheHits int64 `json:"cache_hits"`
	// Events and Bytes total the logical events and encoded bytes of all
	// captured traces.
	Events int64 `json:"events"`
	Bytes  int64 `json:"bytes"`
	// ReplayCells and InterpCells split the timed measurement cells by
	// pricing backend.
	ReplayCells int64 `json:"replay_cells"`
	InterpCells int64 `json:"interp_cells"`
}

// execReport is the "exec" section of BENCH_spdbench.json.
type execReport struct {
	// Mode is the execution backend the run used: "bcode" or "tree".
	Mode string `json:"mode"`
	// TreesCompiled counts decision trees lowered to bytecode; Instrs their
	// total instruction words; CacheHits the compiled-program lookups served
	// from a prepared program's cache.
	TreesCompiled int64 `json:"trees_compiled"`
	Instrs        int64 `json:"instrs"`
	CacheHits     int64 `json:"cache_hits"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdbench: ")
	// A short-lived batch process with a small live heap: let the heap grow
	// further between collections instead of spending wall time on GC.
	// GOGC still overrides when set.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	only := flag.String("only", "", "run a single experiment: table61|table62|table63|fig62|fig63|fig64|ext|overhead")
	benchName := flag.String("bench", "", "restrict to one benchmark")
	maxExpansion := flag.Float64("maxexpansion", 0, "override SpD MaxExpansion")
	minGain := flag.Float64("mingain", -1, "override SpD MinGain")
	par := flag.Int("par", 0, "evaluation-cell worker pool width (0 = GOMAXPROCS, 1 = sequential)")
	traceMode := flag.String("trace", "replay", "timed-simulation backend: replay (capture a trace once, price every model by replay) or interp (interpret every timed run)")
	execMode := flag.String("exec", "bcode", "execution backend: bcode (compile trees to register-machine bytecode) or tree (reference tree-walking interpreter)")
	jsonOut := flag.Bool("json", false, "write BENCH_spdbench.json with per-experiment timings")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	verifyFlag := flag.Bool("verify", false, "run the static verifier after every pipeline stage of every cell (debug mode; see internal/verify)")
	flag.Parse()

	r := exper.New()
	r.Par = *par
	r.Verify = *verifyFlag
	switch *traceMode {
	case "replay":
		r.TraceReplay = true
	case "interp":
		r.TraceReplay = false
	default:
		log.Fatalf("unknown -trace mode %q (want replay or interp)", *traceMode)
	}
	switch *execMode {
	case "bcode":
		r.Exec = sim.ExecBytecode
	case "tree":
		r.Exec = sim.ExecTree
	default:
		log.Fatalf("unknown -exec mode %q (want bcode or tree)", *execMode)
	}
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		r.Benchmarks = []*bench.Benchmark{b}
	}
	if *maxExpansion > 0 {
		r.Params.MaxExpansion = *maxExpansion
	}
	if *minGain >= 0 {
		r.Params.MinGain = *minGain
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}

	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout
	report := benchReport{WallMS: map[string]float64{}, Par: *par}
	start := time.Now()
	timed := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		report.WallMS[name] = float64(time.Since(t0).Microseconds()) / 1000
	}

	if want("table61") {
		exper.RenderTable61(out)
		fmt.Fprintln(out)
	}
	if want("table62") {
		exper.RenderTable62(out, r.Benchmarks)
		fmt.Fprintln(out)
	}
	if want("table63") {
		timed("table63", func() error {
			rows, err := r.Table63()
			if err != nil {
				return err
			}
			exper.RenderTable63(out, rows)
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig62") {
		timed("fig62", func() error {
			rows, err := r.Figure62()
			if err != nil {
				return err
			}
			exper.RenderFigure62(out, rows)
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig63") {
		timed("fig63", func() error {
			rows, err := r.Figure63()
			if err != nil {
				return err
			}
			exper.RenderFigure63(out, rows)
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig64") {
		timed("fig64", func() error {
			rows, err := r.Figure64()
			if err != nil {
				return err
			}
			exper.RenderFigure64(out, rows)
			fmt.Fprintln(out)
			return nil
		})
	}
	if *only == "overhead" {
		timed("overhead", func() error {
			rows, err := r.DynamicOverhead(2)
			if err != nil {
				return err
			}
			exper.RenderOverhead(out, rows)
			return nil
		})
	}
	if *only == "ext" {
		timed("ext", func() error {
			grows, err := r.ExtGrafting(6, 5)
			if err != nil {
				return err
			}
			crows, err := r.ExtCombined(6)
			if err != nil {
				return err
			}
			exper.RenderExtensions(out, grows, crows)
			return nil
		})
	}

	if *jsonOut {
		total := time.Since(start)
		st := r.Stats()
		report.TotalMS = float64(total.Microseconds()) / 1000
		report.Cells = st.Prepares + st.Measures
		if s := total.Seconds(); s > 0 {
			report.CellsPerSec = float64(report.Cells) / s
		}
		report.SimOps = st.SimOps
		report.Trace = traceReport{
			Mode:        *traceMode,
			Captures:    st.TraceCaptures,
			CacheHits:   st.TraceHits,
			Events:      st.TraceEvents,
			Bytes:       st.TraceBytes,
			ReplayCells: st.ReplayCells,
			InterpCells: st.InterpCells,
		}
		report.Exec = execReport{
			Mode:          *execMode,
			TreesCompiled: st.BCodeCompiled,
			Instrs:        st.BCodeInstrs,
			CacheHits:     st.BCodeCacheHits,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile("BENCH_spdbench.json", append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
