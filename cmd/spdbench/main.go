// Command spdbench runs the paper's full evaluation and prints every table
// and figure of §6: Table 6-1 (latencies), Table 6-2 (benchmarks), Table 6-3
// (SpD applications by dependence type), Figure 6-2 (speedup over NAIVE on a
// 5-FU machine), Figure 6-3 (SPEC over STATIC vs machine width), and
// Figure 6-4 (code-size increase).
//
// Usage:
//
//	spdbench                  # every table and figure of the paper
//	spdbench -only table63    # one experiment: table61|table62|table63|fig62|fig63|fig64
//	spdbench -only ext        # the §7 extension experiments (grafting, combined)
//	spdbench -bench fft       # restrict to one benchmark
//	spdbench -par 4           # evaluation-cell worker pool width (0 = GOMAXPROCS)
//	spdbench -trace interp    # interpret every timed run instead of trace replay
//	spdbench -exec bcode      # interpret on the bytecode engine instead of the
//	                          # native tier (the default)
//	spdbench -exec tree       # interpret on the reference tree walker
//	spdbench -tierup N        # adaptive tiering: promote a tree to the native
//	                          # tier at its Nth execution (0 = compile eagerly)
//	spdbench -verify          # static verifier after every pipeline stage
//	spdbench -fuel N          # dynamic-op budget per interpretation
//	spdbench -deadline 30s    # wall-clock deadline for the whole evaluation
//	spdbench -inject PLAN     # seeded fault injection, e.g. seed=42,rate=0.3
//	spdbench -store DIR       # persistent artifact store: repeat runs start warm
//	spdbench -store-stats     # print store hit/miss counters to stderr
//	spdbench -tamper bcode    # debug: semantically corrupt stored bytecode
//	                          # artifacts first; load-time validation must
//	                          # drop them and the run must self-repair
//	spdbench -json            # also write BENCH_spdbench.json with timings
//	spdbench -cpuprofile f    # write a CPU profile of the run
//
// A cell failure never kills the run: the failed cell's rows are marked
// FAIL in the report, a failure table goes to stderr, and the exit status
// is 2. Exit status 1 means every cell was recovered by a degradation rung
// (native→bcode or bcode→tree retry, trace recapture, interp fallback) — the
// report is complete but the run was not pristine. Exit status 0 is a clean
// run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"specdis/internal/bench"
	"specdis/internal/exper"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/store"
)

// defaultFuel is the default per-interpretation dynamic-op budget: ten times
// the full evaluation's pinned sim_ops total (46,553,404), so no legitimate
// cell can come near it while a runaway interpretation still dies in
// seconds rather than hanging the grid.
const defaultFuel = 465_534_040

// benchReport is the schema of BENCH_spdbench.json: per-experiment wall
// times plus the runner's deduplicated work counters.
type benchReport struct {
	// WallMS maps experiment name to wall-clock milliseconds.
	WallMS map[string]float64 `json:"wall_ms"`
	// TotalMS is the wall time of the whole evaluation.
	TotalMS float64 `json:"total_ms"`
	// Par is the worker-pool width the run used (0 = GOMAXPROCS).
	Par int `json:"par"`
	// Cells counts distinct evaluation cells: prepares + timed measures.
	Cells int64 `json:"cells"`
	// CellsPerSec is Cells / total wall seconds.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Prepares and Measures split Cells: distinct preparation pipeline runs
	// and distinct timed measurement cells actually computed this run. On a
	// fully warm -store run both are zero (the work is accounted under the
	// store section's served counters instead).
	Prepares int64 `json:"prepares"`
	Measures int64 `json:"measures"`
	// SimOps is the total number of dynamic operations priced across all
	// timed measurement cells. Deterministic for a given tree (an exact
	// simulation-work count, not a timing), and identical under both
	// -trace backends; CI pins it against the committed baseline.
	SimOps int64 `json:"sim_ops"`
	// Trace describes the trace-capture & replay backend's work.
	Trace traceReport `json:"trace"`
	// Exec describes the execution backend's work.
	Exec execReport `json:"exec"`
	// Resilience describes the fault-tolerance layer's work: failures,
	// degradation rungs taken, and faults injected. All-zero on a clean
	// uninjected run.
	Resilience resilienceReport `json:"resilience"`
	// Store describes the persistent artifact store's work (-store); all
	// zero (with an empty dir) when no store was attached.
	Store storeReport `json:"store"`
}

// traceReport is the "trace" section of BENCH_spdbench.json.
type traceReport struct {
	// Mode is the backend the run used: "replay" or "interp".
	Mode string `json:"mode"`
	// Captures counts distinct execution traces materialized; CacheHits
	// counts trace requests served from the singleflight cache.
	Captures  int64 `json:"captures"`
	CacheHits int64 `json:"cache_hits"`
	// Events and Bytes total the logical events and encoded bytes of all
	// captured traces.
	Events int64 `json:"events"`
	Bytes  int64 `json:"bytes"`
	// ReplayCells and InterpCells split the timed measurement cells by
	// pricing backend.
	ReplayCells int64 `json:"replay_cells"`
	InterpCells int64 `json:"interp_cells"`
}

// execReport is the "exec" section of BENCH_spdbench.json.
type execReport struct {
	// Mode is the execution backend the run used: "native" (the default),
	// "bcode" or "tree".
	Mode string `json:"mode"`
	// TreesCompiled counts decision trees lowered to bytecode or native
	// closure chains; Instrs their total instruction words (closure steps
	// for the native tier); CacheHits the compiled-program lookups served
	// from the runner's shared content-addressed cache.
	TreesCompiled int64 `json:"trees_compiled"`
	Instrs        int64 `json:"instrs"`
	CacheHits     int64 `json:"cache_hits"`
	// Steps, Fused and Windows describe the native tier's compiled closure
	// chains (zero on the other backends): chain steps after window fusion,
	// superinstruction heads among them, and 3-/4-wide window fusions among
	// the heads. TierUps counts trees promoted from the bytecode rung by
	// adaptive tiering (-tierup).
	Steps   int64 `json:"steps"`
	Fused   int64 `json:"fused"`
	Windows int64 `json:"windows"`
	TierUps int64 `json:"tier_ups"`
}

// resilienceReport is the "resilience" section of BENCH_spdbench.json; see
// docs/RESILIENCE.md for the counter semantics.
type resilienceReport struct {
	// Inject echoes the fault plan dealt to the run ("" = none).
	Inject string `json:"inject,omitempty"`
	// CellFailures counts distinct cells that failed after exhausting the
	// degradation ladder; the next three split them by class.
	CellFailures     int64 `json:"cell_failures"`
	CellPanics       int64 `json:"cell_panics"`
	FuelExhausted    int64 `json:"fuel_exhausted"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// NCodeFallbacks, BCodeFallbacks, TraceRecaptures and InterpFallbacks
	// count degradation rungs taken (whether or not the rung then recovered
	// the cell).
	NCodeFallbacks  int64 `json:"ncode_fallbacks"`
	BCodeFallbacks  int64 `json:"bcode_fallbacks"`
	TraceRecaptures int64 `json:"trace_recaptures"`
	InterpFallbacks int64 `json:"interp_fallbacks"`
	// FaultsInjected counts cells the -inject plan armed.
	FaultsInjected int64 `json:"faults_injected"`
	// ValidationDrops counts store artifacts that decoded cleanly but failed
	// semantic validation at load time (the translation validator for
	// bytecode, metadata bounds for the native tier) and were dropped; each
	// degrades to a recompute and the next put repairs the store. Mirrors
	// store.invalid_dropped — surfaced here because a validation drop is a
	// degradation rung, same as the corruption drops above it.
	ValidationDrops int64 `json:"validation_drops"`
}

// storeReport is the "store" section of BENCH_spdbench.json.
type storeReport struct {
	// Dir is the store directory the run used ("" = no store).
	Dir string `json:"dir,omitempty"`
	// Hits and Misses count artifact lookups by outcome; MemHits is the
	// subset of Hits served from the in-memory LRU without touching disk.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	MemHits int64 `json:"mem_hits"`
	// Puts counts artifacts persisted; BytesRead and BytesWritten total the
	// artifact bytes moved (payload + integrity footer).
	Puts         int64 `json:"puts"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// Evictions counts in-memory LRU evictions (the on-disk copy remains);
	// CorruptDropped counts artifacts that failed integrity or decode checks
	// and were deleted, each degrading to a recompute; InvalidDropped counts
	// artifacts that decoded cleanly but failed load-time semantic validation
	// (see internal/verify) and were deleted the same way.
	Evictions      int64 `json:"evictions"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	InvalidDropped int64 `json:"invalid_dropped"`
	// IOShortReads and IOOpenErrors count injected store I/O faults
	// (-inject kinds=sio): short reads degrade into the corruption path,
	// transient open errors into a plain miss with the file intact.
	IOShortReads int64 `json:"io_short_reads"`
	IOOpenErrors int64 `json:"io_open_errors"`
	// PrepsServed, MeasuresServed and TracesServed count whole evaluation
	// cells served from the store instead of computed.
	PrepsServed    int64 `json:"preps_served"`
	MeasuresServed int64 `json:"measures_served"`
	TracesServed   int64 `json:"traces_served"`
}

func main() {
	os.Exit(run())
}

// tamperBCode semantically corrupts one stored bytecode artifact: it decodes
// the program, flips the guard polarity of the first guarded instruction —
// inverting that op's commit mask, the exact bug class the speculation
// checker exists for — and re-encodes. The store reseals the integrity
// footer, so the artifact passes every CRC and format check and only the
// translation validator at load time can reject it; the run must then drop
// it (invalid_dropped), recompile, and produce byte-identical output.
func tamperBCode(payload []byte) []byte {
	p, err := store.DecodeBCode(payload)
	if err != nil {
		return nil
	}
	for i := range p.Code {
		if p.Code[i].Guard >= 0 {
			p.Code[i].GNeg = !p.Code[i].GNeg
			return store.EncodeBCode(p)
		}
	}
	return nil // no guarded instructions: nothing to corrupt semantically
}

// run is the whole program; keeping it out of main lets the profile and
// deadline defers fire before the process exits with a status code.
func run() int {
	log.SetFlags(0)
	log.SetPrefix("spdbench: ")
	// A short-lived batch process with a small live heap: let the heap grow
	// further between collections instead of spending wall time on GC.
	// GOGC still overrides when set.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	only := flag.String("only", "", "run a single experiment: table61|table62|table63|fig62|fig63|fig64|ext|overhead")
	benchName := flag.String("bench", "", "restrict to one benchmark")
	maxExpansion := flag.Float64("maxexpansion", 0, "override SpD MaxExpansion")
	minGain := flag.Float64("mingain", -1, "override SpD MinGain")
	par := flag.Int("par", 0, "evaluation-cell worker pool width (0 = GOMAXPROCS, 1 = sequential)")
	traceMode := flag.String("trace", "replay", "timed-simulation backend: replay (capture a trace once, price every model by replay) or interp (interpret every timed run)")
	execMode := flag.String("exec", "native", "execution backend: native (compile trees to closure-threaded window-fused chains), bcode (compile trees to register-machine bytecode), or tree (reference tree-walking interpreter)")
	tierUp := flag.Int64("tierup", exper.DefaultTierUp, "adaptive tiering under -exec=native: a tree starts on the bytecode rung and is promoted to the native tier at its Nth execution of a run (0 = compile every tree eagerly)")
	fuel := flag.Int64("fuel", defaultFuel, "dynamic-operation budget per interpretation; an exceeding cell fails typed instead of hanging")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole evaluation (0 = none); expiry fails in-flight cells typed")
	inject := flag.String("inject", "", "seeded fault-injection plan, e.g. seed=42,rate=0.3,kinds=panic+fuel+flip+drop,times=1 (chaos mode)")
	storeDir := flag.String("store", "", "persistent content-addressed artifact store directory: compiled code, traces, summaries and priced cells are reused across runs")
	storeStats := flag.Bool("store-stats", false, "print artifact-store hit/miss counters to stderr after the run")
	tamper := flag.String("tamper", "", "debug: semantically corrupt stored artifacts of one kind before the run (requires -store): bcode flips a commit guard's polarity in every stored bytecode program, resealing the integrity footer so only load-time validation can catch it")
	jsonOut := flag.Bool("json", false, "write BENCH_spdbench.json with per-experiment timings")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	verifyFlag := flag.Bool("verify", false, "run the static verifier after every pipeline stage of every cell (debug mode; see internal/verify)")
	flag.Parse()

	r := exper.New()
	r.Par = *par
	r.Verify = *verifyFlag
	r.Fuel = *fuel
	switch *traceMode {
	case "replay":
		r.TraceReplay = true
	case "interp":
		r.TraceReplay = false
	default:
		log.Fatalf("unknown -trace mode %q (want replay or interp)", *traceMode)
	}
	switch *execMode {
	case "bcode":
		r.Exec = sim.ExecBytecode
	case "native":
		r.Exec = sim.ExecNative
	case "tree":
		r.Exec = sim.ExecTree
	default:
		log.Fatalf("unknown -exec mode %q (want bcode, native or tree)", *execMode)
	}
	r.TierUp = *tierUp
	if *deadline > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		r.Ctx = ctx
	}
	var plan *resilience.FaultPlan
	if *inject != "" {
		var err error
		plan, err = resilience.ParsePlan(*inject)
		if err != nil {
			log.Fatal(err)
		}
		// The store-level sio kind arms on the artifact store below; only a
		// plan that deals per-cell faults goes to the runner (a non-nil
		// Inject also bypasses the store, which would leave sio nothing to
		// fault).
		if len(plan.CellKinds()) > 0 || plan.Cells != nil {
			r.Inject = plan
		}
	}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			// A broken store directory must not block the evaluation: warn
			// and run cold.
			log.Printf("warning: -store %s unusable (%v); running without a store", *storeDir, err)
		} else {
			r.Store = s
			if plan.StoreIO() {
				s.ArmIOFaults(plan.Seed, plan.Rate)
			}
		}
	}
	if *tamper != "" {
		if r.Store == nil {
			log.Fatal("-tamper requires a usable -store")
		}
		if *tamper != "bcode" {
			log.Fatalf("unknown -tamper kind %q (want bcode)", *tamper)
		}
		n, err := r.Store.TamperArtifacts(store.KindBCode, tamperBCode)
		if err != nil {
			log.Fatalf("-tamper: %v", err)
		}
		// Clear the derived cells (prepare summaries, priced measurements,
		// traces) so the warm run recomputes them and actually loads the
		// tampered compiled code, instead of being served whole cells that
		// never touch it.
		deleted := 0
		for _, k := range []store.Kind{store.KindPrep, store.KindMeas, store.KindTrace} {
			d, err := r.Store.DeleteKind(k)
			if err != nil {
				log.Fatalf("-tamper: %v", err)
			}
			deleted += d
		}
		fmt.Fprintf(os.Stderr, "spdbench: tampered %d stored bytecode artifact(s), cleared %d derived cell(s)\n", n, deleted)
	}
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		r.Benchmarks = []*bench.Benchmark{b}
	}
	if *maxExpansion > 0 {
		r.Params.MaxExpansion = *maxExpansion
	}
	if *minGain >= 0 {
		r.Params.MinGain = *minGain
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}

	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout
	report := benchReport{WallMS: map[string]float64{}, Par: *par}
	start := time.Now()
	timed := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			// Cell failures are recorded in the rows, never returned; an
			// error here is infrastructure (a benchmark fails to compile).
			log.Fatal(err)
		}
		report.WallMS[name] = float64(time.Since(t0).Microseconds()) / 1000
	}

	if want("table61") {
		exper.RenderTable61(out)
		fmt.Fprintln(out)
	}
	if want("table62") {
		exper.RenderTable62(out, r.Benchmarks)
		fmt.Fprintln(out)
	}
	// The four computed reports stream: each row prints the moment its cells
	// resolve (later cells still warming on the work-stealing pool), with
	// output byte-identical to the batch renderers.
	if want("table63") {
		timed("table63", func() error {
			if err := r.StreamTable63(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig62") {
		timed("fig62", func() error {
			if err := r.StreamFigure62(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig63") {
		timed("fig63", func() error {
			if err := r.StreamFigure63(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return nil
		})
	}
	if want("fig64") {
		timed("fig64", func() error {
			if err := r.StreamFigure64(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return nil
		})
	}
	if *only == "overhead" {
		timed("overhead", func() error {
			rows, err := r.DynamicOverhead(2)
			if err != nil {
				return err
			}
			exper.RenderOverhead(out, rows)
			return nil
		})
	}
	if *only == "ext" {
		timed("ext", func() error {
			grows, err := r.ExtGrafting(6, 5)
			if err != nil {
				return err
			}
			crows, err := r.ExtCombined(6)
			if err != nil {
				return err
			}
			exper.RenderExtensions(out, grows, crows)
			return nil
		})
	}

	st := r.Stats()
	sst := r.StoreStats()
	if *jsonOut {
		total := time.Since(start)
		report.TotalMS = float64(total.Microseconds()) / 1000
		report.Cells = st.Prepares + st.Measures
		if s := total.Seconds(); s > 0 {
			report.CellsPerSec = float64(report.Cells) / s
		}
		report.Prepares = st.Prepares
		report.Measures = st.Measures
		report.SimOps = st.SimOps
		report.Trace = traceReport{
			Mode:        *traceMode,
			Captures:    st.TraceCaptures,
			CacheHits:   st.TraceHits,
			Events:      st.TraceEvents,
			Bytes:       st.TraceBytes,
			ReplayCells: st.ReplayCells,
			InterpCells: st.InterpCells,
		}
		report.Exec = execReport{
			Mode:          *execMode,
			TreesCompiled: st.BCodeCompiled,
			Instrs:        st.BCodeInstrs,
			CacheHits:     st.BCodeCacheHits,
			Steps:         st.NativeSteps,
			Fused:         st.NativeFused,
			Windows:       st.NativeWindows,
			TierUps:       st.TierUps,
		}
		report.Resilience = resilienceReport{
			Inject:           *inject,
			CellFailures:     st.CellFailures,
			CellPanics:       st.CellPanics,
			FuelExhausted:    st.FuelExhausted,
			DeadlineExceeded: st.DeadlineExceeded,
			NCodeFallbacks:   st.NCodeFallbacks,
			BCodeFallbacks:   st.BCodeFallbacks,
			TraceRecaptures:  st.TraceRecaptures,
			InterpFallbacks:  st.InterpFallbacks,
			FaultsInjected:   st.FaultsInjected,
			ValidationDrops:  sst.InvalidDropped,
		}
		if r.Store != nil {
			report.Store.Dir = *storeDir
		}
		report.Store.Hits = sst.Hits
		report.Store.Misses = sst.Misses
		report.Store.MemHits = sst.MemHits
		report.Store.Puts = sst.Puts
		report.Store.BytesRead = sst.BytesRead
		report.Store.BytesWritten = sst.BytesWritten
		report.Store.Evictions = sst.Evictions
		report.Store.CorruptDropped = sst.CorruptDropped
		report.Store.InvalidDropped = sst.InvalidDropped
		report.Store.IOShortReads = sst.IOShortReads
		report.Store.IOOpenErrors = sst.IOOpenErrors
		report.Store.PrepsServed = st.StorePreps
		report.Store.MeasuresServed = st.StoreMeasures
		report.Store.TracesServed = st.StoreTraces
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile("BENCH_spdbench.json", append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Store counters go to stderr with everything else diagnostic: stdout
	// must stay byte-identical with and without a store, warm or cold.
	if *storeStats && r.Store != nil {
		fmt.Fprintf(os.Stderr, "spdbench: store %s: %d hit(s) (%d in-memory), %d miss(es), %d put(s), %d B read, %d B written, %d eviction(s), %d corrupt dropped, %d invalid dropped; served %d prep(s), %d measure(s), %d trace(s)\n",
			*storeDir, sst.Hits, sst.MemHits, sst.Misses, sst.Puts, sst.BytesRead, sst.BytesWritten,
			sst.Evictions, sst.CorruptDropped, sst.InvalidDropped, st.StorePreps, st.StoreMeasures, st.StoreTraces)
	}

	// The failure table and degradation summary go to stderr: stdout stays
	// byte-identical across backends whether or not a run degraded.
	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "spdbench: %d cell(s) failed:\n", len(fails))
		fmt.Fprintf(os.Stderr, "  %-24s %-10s %-18s %s\n", "CELL", "STAGE", "CLASS", "ERROR")
		for _, ce := range fails {
			fmt.Fprintf(os.Stderr, "  %-24s %-10s %-18s %v\n", ce.Cell(), ce.Stage, ce.Class, ce.Err)
		}
		return 2
	}
	if n := st.NCodeFallbacks + st.BCodeFallbacks + st.TraceRecaptures + st.InterpFallbacks; n > 0 {
		fmt.Fprintf(os.Stderr, "spdbench: degraded but complete: %d native fallback(s), %d bcode fallback(s), %d trace recapture(s), %d interp fallback(s); every cell recovered\n",
			st.NCodeFallbacks, st.BCodeFallbacks, st.TraceRecaptures, st.InterpFallbacks)
		return 1
	}
	return 0
}
