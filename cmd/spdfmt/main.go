// Command spdfmt normalizes MiniC source: it parses, type-checks, and
// pretty-prints a program in the canonical form produced by lang.Print.
//
// Usage:
//
//	spdfmt file.mc           # print formatted source to stdout
//	spdfmt -w file.mc        # rewrite the file in place
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"specdis/internal/lang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdfmt: ")
	write := flag.Bool("w", false, "write result back to the source file")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: spdfmt [-w] file.mc")
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lang.Check(prog); err != nil {
		log.Fatal(err)
	}
	out := lang.Print(prog)
	if *write {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(out)
}
