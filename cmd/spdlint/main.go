// Command spdlint runs the static IR verifier, the speculation-safety
// checker, and the dependence-soundness auditor (internal/verify, driven by
// the internal/disamb lint engine) over MiniC programs: each program is
// prepared under all four disambiguators (NAIVE, STATIC, SPEC, PERFECT) and
// every finding is reported. The exit status is nonzero when any program
// has findings.
//
// Usage:
//
//	spdlint                    # all benchmark programs + examples/
//	spdlint prog.mc dir ...    # specific programs (.mc files, directories,
//	                           # or .go files with embedded MiniC literals)
//
//	-mem 2,6      memory latencies to lint the SPEC pipeline at
//	-fus 5        machine width for schedule validation
//	-exec native  execution backend for the dynamic checks: native (the
//	              default) | bcode | tree
//	-fuel N       dynamic-op budget per lint interpretation; a cell that
//	              exhausts it (a nonterminating example, say) is skipped
//	              with a notice, not failed
//	-store DIR    persistent artifact store shared with spdbench: compiled
//	              bytecode and native-tier metadata are reused instead of
//	              recompiled, across cells, programs, and runs
//	-code         translation-validate the compiled tiers (layer 4): every
//	              tree's bytecode and native artifacts are re-derived and
//	              checked against the IR (on by default; -code=false skips)
//	-sched        replay every built schedule through the soundness auditor
//	              (layer 5): arc ordering, FU capacity, critical-path cycle
//	              count (on by default; -sched=false skips)
//	-v            per-program checker statistics
//	-corrupt KIND seed a violation before checking (debug: proves the
//	              checkers catch it): seq | arc | bmask (flip a commit
//	              guard's polarity in the compiled bytecode; layer 4 must
//	              catch it) | nwin (gap a native window-fusion plan; layer
//	              4's tiling check must catch it) | sched (swap two issue
//	              slots in the timeline; layer 5 must catch it)
//	-chaos KIND   self-test the lint engine's fault tolerance: panic (an
//	              injected crash in every dynamic check must surface as a
//	              lint/run-failed finding, never kill the process) | fuel
//	              (a tiny budget must skip every dynamic check cleanly)
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/ir"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/store"
)

// target is one MiniC program to lint.
type target struct {
	name string
	src  string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdlint: ")
	memFlag := flag.String("mem", "2,6", "comma-separated memory latencies to lint the SPEC pipeline at")
	fus := flag.Int("fus", 5, "machine width for schedule validation")
	execMode := flag.String("exec", "native", "execution backend for the dynamic checks: native, bcode or tree")
	fuel := flag.Int64("fuel", 0, "dynamic-op budget per lint interpretation (0 = the engine default); exhausting cells are skipped, not failed")
	code := flag.Bool("code", true, "translation-validate the compiled tiers (layer 4)")
	schedOn := flag.Bool("sched", true, "audit schedule soundness against the dependence graph (layer 5)")
	verbose := flag.Bool("v", false, "print per-program checker statistics")
	storeDir := flag.String("store", "", "persistent artifact store directory (shared with spdbench): reuse compiled code across cells, programs and runs")
	corrupt := flag.String("corrupt", "", "seed a violation before checking: seq | arc | bmask | nwin | sched")
	chaos := flag.String("chaos", "", "fault-tolerance self-test: panic (injected crash must become a finding) | fuel (tiny budget must skip cleanly)")
	flag.Parse()

	var memLats []int
	for _, s := range strings.Split(*memFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -mem value %q", s)
		}
		memLats = append(memLats, n)
	}

	opts := disamb.LintOptions{MemLats: memLats, NumFUs: *fus, MaxOps: *fuel, NoCode: !*code, NoSched: !*schedOn}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			// A broken store directory must not block the lint: warn and
			// compile cold.
			log.Printf("warning: -store %s unusable (%v); running without a store", *storeDir, err)
		} else {
			opts.BCode = bcode.NewCache(nil)
			opts.BCode.SetBacking(store.BCodeBacking(s))
			opts.NCode = ncode.NewCache(nil)
			opts.NCode.SetBacking(store.NCodeBacking(s))
		}
	}
	switch *execMode {
	case "bcode":
		opts.Exec = sim.ExecBytecode
	case "native":
		opts.Exec = sim.ExecNative
	case "tree":
		opts.Exec = sim.ExecTree
	default:
		log.Fatalf("unknown -exec mode %q (want bcode, native or tree)", *execMode)
	}
	switch *corrupt {
	case "":
	case "seq":
		opts.Corrupt = corruptSeq
	case "arc":
		opts.Corrupt = corruptArc
	case "bmask":
		opts.CorruptBCode = corruptBMask
	case "nwin":
		opts.CorruptNCode = corruptNWin
	case "sched":
		opts.CorruptSched = corruptSchedule
	default:
		log.Fatalf("unknown -corrupt kind %q (want seq, arc, bmask, nwin or sched)", *corrupt)
	}
	switch *chaos {
	case "":
	case "panic":
		// Early enough to fire inside every benchmark's dynamic check.
		opts.ChaosPanicAt = 10_000
	case "fuel":
		// Too small for any real program: every dynamic check must skip.
		opts.MaxOps = 1_000
	default:
		log.Fatalf("unknown -chaos kind %q (want panic or fuel)", *chaos)
	}

	var targets []target
	if flag.NArg() == 0 {
		for _, b := range bench.Everything() {
			targets = append(targets, target{b.Name, b.Source})
		}
		if _, err := os.Stat("examples"); err == nil {
			targets = append(targets, collect("examples")...)
		}
	} else {
		for _, arg := range flag.Args() {
			targets = append(targets, collect(arg)...)
		}
	}
	if len(targets) == 0 {
		log.Fatal("no programs to lint")
	}

	failed := 0
	for _, tg := range targets {
		rep, err := disamb.Lint(tg.src, opts)
		if err != nil {
			log.Fatalf("%s: %v", tg.name, err)
		}
		for _, f := range rep.Findings {
			fmt.Printf("%s: %s\n", tg.name, f.String())
		}
		// Skips are notices, not findings: a clean report may carry them.
		for _, s := range rep.Skips {
			fmt.Printf("%s: SKIP %s\n", tg.name, s)
		}
		if !rep.Clean() {
			failed++
		} else if *verbose {
			st := rep.Stats
			fmt.Printf("%s: ok (%d cells, %d trees, %d pairs, %d arcs checked, %d audited, %d schedules, %d progs validated, %d schedules audited, %d patterns, %d skipped)\n",
				tg.name, st.Cells, st.Trees, st.Pairs, st.ArcsChecked, st.ArcsAudited, st.Scheds, st.Progs, st.Audits, st.Patterns, st.Skipped)
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d program(s) have findings", failed, len(targets))
	}
	fmt.Printf("spdlint: %d program(s) clean\n", len(targets))
}

// collect resolves one path argument into lint targets: a .mc file, a .go
// file with embedded MiniC string literals, or a directory walked for both.
func collect(path string) []target {
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	var out []target
	add := func(p string) {
		switch filepath.Ext(p) {
		case ".mc":
			data, err := os.ReadFile(p)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, target{p, string(data)})
		case ".go":
			out = append(out, extractMiniC(p)...)
		}
	}
	if !info.IsDir() {
		add(path)
		return out
	}
	err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			add(p)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

// extractMiniC pulls candidate MiniC programs out of a Go source file: every
// string literal that compiles as a MiniC program is a lint target. The
// examples embed their subject programs this way, so linting examples/ keeps
// the documentation's programs honest too.
func extractMiniC(path string) []target {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	var out []target
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		src, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if _, err := compile.Compile(src); err != nil {
			return true // not a MiniC program
		}
		out = append(out, target{
			name: fmt.Sprintf("%s:%d", path, fset.Position(lit.Pos()).Line),
			src:  src,
		})
		return true
	})
	return out
}

// corruptSeq swaps the first two ops of the first nontrivial tree,
// breaking Seq ordering: the structural checker must flag it.
func corruptSeq(p *ir.Program) {
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			if len(t.Ops) >= 2 {
				t.Ops[0], t.Ops[1] = t.Ops[1], t.Ops[0]
				return
			}
		}
	}
}

// corruptBMask flips the guard polarity of the first guarded instruction in
// a compiled bytecode program: the commit protocol now commits the op on the
// wrong side of the disambiguation test, and the translation validator
// (layer 4) must flag the polarity mismatch against the tree IR.
func corruptBMask(p *bcode.Prog) {
	for i := range p.Code {
		if p.Code[i].Guard >= 0 {
			p.Code[i].GNeg = !p.Code[i].GNeg
			return
		}
	}
}

// corruptNWin gaps the window-fusion plan of a compiled native closure
// chain: the instruction a fusion head claims to consume is marked unfused,
// so the plan no longer tiles the bytecode stream exactly, and the
// translation validator's tiling check (layer 4) must flag the gap.
func corruptNWin(p *ncode.Prog) {
	for i := 0; i+1 < len(p.Plan); i++ {
		if p.Plan[i] != ncode.FuseNone && p.Plan[i] != ncode.FuseConsumed &&
			p.Plan[i+1] == ncode.FuseConsumed {
			p.Plan[i+1] = ncode.FuseNone
			return
		}
	}
}

// corruptSchedule swaps the first two distinct issue slots of a built
// timeline: completion times no longer match issue-plus-latency (and arcs
// may invert), and the schedule-soundness auditor (layer 5) must flag it.
func corruptSchedule(s *sched.Schedule) {
	for i := 0; i < len(s.Issue); i++ {
		for j := i + 1; j < len(s.Issue); j++ {
			if s.Issue[i] != s.Issue[j] {
				s.Issue[i], s.Issue[j] = s.Issue[j], s.Issue[i]
				return
			}
		}
	}
}

// corruptArc redirects the first memory arc at a copy of its source op,
// leaving the arc dangling: the structural checker must flag it.
func corruptArc(p *ir.Program) {
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			if len(t.Arcs) > 0 {
				ghost := *t.Arcs[0].From
				t.Arcs[0].From = &ghost
				return
			}
		}
	}
}
