// Command spdvet runs this repository's custom static analyzers
// (internal/analyzers) over the module: checks go vet cannot know about,
// like exhaustive opcode switches and method-only use of atomic counter
// fields. Built on the standard library alone — no module downloads — so it
// runs wherever the repo builds.
//
// Usage:
//
//	spdvet ./...                 # the whole module (also the default)
//	spdvet ./internal/bcode ...  # specific package directories
//
// Diagnostics print as file:line:col: [analyzer] message; the exit status
// is 1 when there are any.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"specdis/internal/analyzers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdvet: ")
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, module, err := analyzers.FindModule(cwd)
	if err != nil {
		log.Fatal(err)
	}
	loader := analyzers.NewLoader(root, module)

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var paths []string
	seen := map[string]bool{}
	for _, arg := range args {
		for _, p := range resolve(root, module, cwd, arg) {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	if len(paths) == 0 {
		log.Fatal("no packages matched")
	}
	sort.Strings(paths)

	suite := analyzers.All()
	failed := false
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range analyzers.Run(pkg, suite) {
			d.Pos.Filename = relPath(cwd, d.Pos.Filename)
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("spdvet: %d package(s) clean\n", len(paths))
}

// resolve expands one argument into import paths: "./..." walks every
// package directory under the module (or under a prefix, "./internal/...");
// other arguments name one directory relative to the working directory.
func resolve(root, module, cwd, arg string) []string {
	base := cwd
	if rest, ok := strings.CutSuffix(arg, "..."); ok {
		dir := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
		return walkPackages(root, module, dir)
	}
	dir := filepath.Join(base, filepath.FromSlash(arg))
	p, ok := importPath(root, module, dir)
	if !ok {
		log.Fatalf("%s is outside module %s", arg, module)
	}
	return []string{p}
}

// walkPackages lists the import path of every directory under dir holding
// non-test Go files, skipping hidden directories and testdata.
func walkPackages(root, module, dir string) []string {
	found := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		if p, ok := importPath(root, module, filepath.Dir(path)); ok {
			found[p] = true
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	out := make([]string, 0, len(found))
	for p := range found {
		out = append(out, p)
	}
	return out
}

// importPath maps a directory inside the module to its import path.
func importPath(root, module, dir string) (string, bool) {
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return module, true
	}
	return module + "/" + filepath.ToSlash(rel), true
}

// relPath shortens abs for display when it sits under the working directory.
func relPath(cwd, abs string) string {
	if rel, err := filepath.Rel(cwd, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return abs
}
