// Command spdd is the speculative-disambiguation evaluation daemon: the
// spdbench pipeline — compile → disambiguate → schedule → price — as a
// long-running fault-tolerant HTTP/JSON service. internal/serve implements
// the handlers and the robustness contract (bounded admission, per-request
// budgets, panic isolation on the degradation rungs, graceful drain);
// docs/SERVICE.md is the API reference.
//
// Lifecycle: spdd serves until SIGINT/SIGTERM, then drains — /readyz flips
// to 503 so load balancers stop routing, new requests are rejected with 503
// + Retry-After, in-flight requests run to completion (bounded by
// -drain-timeout) — and exits 0 on a clean drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specdis/internal/exper"
	"specdis/internal/resilience"
	"specdis/internal/serve"
	"specdis/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	log.SetFlags(0)
	log.SetPrefix("spdd: ")
	addr := flag.String("addr", "127.0.0.1:8462", "listen address")
	par := flag.Int("par", 0, "per-request evaluation worker-pool width (0 = 1; requests are each other's parallelism)")
	maxInflight := flag.Int("max-inflight", serve.DefaultMaxInflight, "maximum concurrently running evaluations")
	maxQueue := flag.Int("max-queue", serve.DefaultMaxQueue, "maximum requests queued for an evaluation slot; beyond it 429 + Retry-After")
	maxSourceBytes := flag.Int("max-source-bytes", serve.DefaultMaxSourceBytes, "maximum submitted MiniC source size; beyond it 413")
	fuelCap := flag.Int64("fuel-cap", serve.DefaultFuelCap, "per-request dynamic-operation budget cap and default")
	deadlineCap := flag.Duration("deadline-cap", serve.DefaultDeadlineCap, "per-request wall-clock budget cap and default")
	drainTimeout := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "how long in-flight requests get to finish after SIGTERM")
	cacheLimit := flag.Int("cache-limit", serve.DefaultCacheLimit, "entry bound of each shared compiled-code cache (negative = unbounded)")
	execMode := flag.String("exec", "native", "default execution backend: native, bcode, or tree (requests may select their own)")
	tierUp := flag.Int64("tierup", exper.DefaultTierUp, "adaptive tiering under the native tier (0 = compile every tree eagerly)")
	storeDir := flag.String("store", "", "persistent content-addressed artifact store directory shared by every request")
	inject := flag.String("inject", "", "seeded fault-injection plan threaded into every request's engine, e.g. seed=7,rate=1,kinds=bpanic+flip (chaos mode)")
	flag.Parse()

	cfg := serve.Config{
		Par:            *par,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		MaxSourceBytes: *maxSourceBytes,
		FuelCap:        *fuelCap,
		DeadlineCap:    *deadlineCap,
		DrainTimeout:   *drainTimeout,
		CacheLimit:     *cacheLimit,
		TierUp:         *tierUp,
	}
	switch *execMode {
	case "native", "bcode", "tree":
		cfg.Exec = *execMode
	default:
		log.Printf("unknown -exec mode %q (want native, bcode or tree)", *execMode)
		return 2
	}
	var plan *resilience.FaultPlan
	if *inject != "" {
		var err error
		plan, err = resilience.ParsePlan(*inject)
		if err != nil {
			log.Print(err)
			return 2
		}
		// Mirror spdbench: only a plan that deals per-cell faults reaches the
		// engines (a non-nil Inject also bypasses the store per cell, which
		// would leave a store-level sio plan nothing to fault); the sio kind
		// arms on the store below.
		if len(plan.CellKinds()) > 0 || plan.Cells != nil {
			cfg.Inject = plan
		}
	}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			// A broken store directory must not block serving: warn and run
			// without one — every request just computes cold.
			log.Printf("warning: -store %s unusable (%v); serving without a store", *storeDir, err)
		} else {
			cfg.Store = s
			if plan.StoreIO() {
				s.ArmIOFaults(plan.Seed, plan.Rate)
			}
		}
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (inflight=%d queue=%d fuel-cap=%d deadline-cap=%s)",
		*addr, *maxInflight, *maxQueue, *fuelCap, *deadlineCap)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// The listener died before any signal: that is a startup/serve
		// failure, not a shutdown.
		log.Printf("serve: %v", err)
		return 1
	case sig := <-sigCh:
		log.Printf("%s: draining (timeout %s)", sig, *drainTimeout)
	}

	// Drain first — new requests get typed 503s while in-flight ones finish —
	// then shut the listener down.
	code := 0
	if err := srv.Drain(context.Background()); err != nil {
		log.Printf("drain: %v (abandoning in-flight requests)", err)
		code = 1
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		code = 1
	}
	log.Print("drained; exiting")
	return code
}
