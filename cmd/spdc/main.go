// Command spdc is the MiniC compiler driver: it compiles a program to
// decision trees, applies a chosen disambiguator (NAIVE, STATIC, SPEC,
// PERFECT), schedules it for a LIFE machine configuration, and runs it on
// the cycle-level simulator.
//
// Usage:
//
//	spdc [flags] program.mc
//
//	-disamb string   disambiguator: naive|static|spec|perfect (default "spec")
//	-fus int         functional units, 0 = infinite machine (default 5)
//	-mem int         memory latency in cycles (default 2)
//	-dump            dump the decision trees after disambiguation
//	-timeline        render per-tree schedule timelines (text Gantt)
//	-stats           print compilation statistics
//	-quiet           suppress program output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"specdis/internal/disamb"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/spd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spdc: ")
	disambName := flag.String("disamb", "spec", "disambiguator: naive|static|spec|perfect")
	fus := flag.Int("fus", 5, "functional units (0 = infinite machine)")
	memLat := flag.Int("mem", 2, "memory latency in cycles")
	dump := flag.Bool("dump", false, "dump decision trees after disambiguation")
	timeline := flag.Bool("timeline", false, "render per-tree schedule timelines")
	stats := flag.Bool("stats", false, "print compilation statistics")
	quiet := flag.Bool("quiet", false, "suppress program output")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: spdc [flags] program.mc")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	var kind disamb.Kind
	switch strings.ToLower(*disambName) {
	case "naive":
		kind = disamb.Naive
	case "static":
		kind = disamb.Static
	case "spec":
		kind = disamb.Spec
	case "perfect":
		kind = disamb.Perfect
	default:
		log.Fatalf("unknown disambiguator %q", *disambName)
	}

	p, err := disamb.Prepare(string(src), kind, *memLat, spd.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		trees, arcs, ambig := 0, 0, 0
		for _, name := range p.Prog.Order {
			for _, t := range p.Prog.Funcs[name].Trees {
				trees++
				arcs += len(t.Arcs)
				ambig += len(t.AmbiguousArcs())
			}
		}
		fmt.Printf("functions: %d  trees: %d  operations: %d\n",
			len(p.Prog.Order), trees, p.Prog.OpCount())
		fmt.Printf("memory arcs: %d (%d ambiguous)\n", arcs, ambig)
		if kind == disamb.Static || kind == disamb.Spec {
			fmt.Printf("static disambiguation: %d removed, %d definite, %d kept\n",
				p.Static.Removed, p.Static.Definite, p.Static.Kept)
		}
		if p.SpD != nil {
			fmt.Printf("SpD applications: %d RAW, %d WAR, %d WAW (+%d ops)\n",
				p.SpD.RAW, p.SpD.WAR, p.SpD.WAW, p.SpD.AddedOps)
			for _, app := range p.SpD.Apps {
				fmt.Printf("  %s in %s: predicted gain %.2f cyc/exec, +%d ops\n",
					app.Kind, app.Tree.Name, app.Gain, app.Added)
			}
		}
	}

	if *dump {
		for _, name := range p.Prog.Order {
			fn := p.Prog.Funcs[name]
			for _, t := range fn.Trees {
				fmt.Print(t.String())
			}
		}
	}

	var m machine.Model
	if *fus <= 0 {
		m = machine.Infinite(*memLat)
	} else {
		m = machine.New(*fus, *memLat)
	}
	if *timeline {
		sched.RenderProgramTimelines(os.Stdout, p.Prog, m, 4)
	}
	res, err := disamb.Measure(p, []machine.Model{m})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Print(res.Output)
	}
	fmt.Printf("[%s on %s: %d cycles, %d dynamic ops, exit %s]\n",
		kind, m.Name, res.Times[0], res.Ops, fmtValue(res.Exit))
}

func fmtValue(v ir.Value) string {
	return fmt.Sprintf("%d", v.I)
}
