// Package ncode lowers decision-tree IR to chains of pre-bound Go closures —
// the simulator's native execution tier.
//
// The bytecode engine (internal/bcode) already pays operand resolution once,
// at compile time, but its executor still spends every dynamic instruction on
// a central `for { switch instr.Op }`: a loop bound check, an instruction
// fetch, a guard-presence test, an indirect dispatch, and (under profiling) a
// `profiling` flag test. The native tier compiles those costs away with
// closure-threaded dispatch: each instruction becomes one closure with its
// operand indices, constant payload, guard register, polarity and commit-bit
// mask already bound, and execution is a single tight loop over the flat
// closure slice — no opcode decode, no guard-presence test, no profiling
// test per step. (A tail-calling chain where each closure invokes the next
// was measured and rejected: Go has no tail-call elimination, so every step
// paid a full call frame and the chain ran slower than the bytecode switch.)
//
// Two further specializations happen at compile time rather than run time:
//
//   - Guard pre-resolution. Unguarded ops get closures with no guard test at
//     all; guarded ops get one closure whose polarity is pre-resolved into a
//     captured `want` boolean (no GNeg branch per step).
//
//   - Profiling specialization. Every tree compiles to two chains — plain and
//     profiling — so the per-instruction `env.Profiling` test disappears; the
//     profiling chain has the per-Seq commit and address sampling bound in.
//
// On top of that, a window fusion pass (window.go) tiles the stream greedily,
// widest first, into superinstructions of up to MaxWindow words: runs of
// unguarded catalog members (constants, moves, integer/float ALU, compares,
// loads — optionally terminated by an exit) become width-3/4 windows, and
// what the windows leave behind falls to the measured hot-pair catalog — an
// unguarded compare feeding the next instruction's guard as an exit
// (compare+exit), an unguarded constant feeding an ALU or compare operand
// (const+arith), adjacent unguarded pairs (address arithmetic feeding a load
// — with the computed address forwarded instead of re-read — load feeding FP
// arithmetic, FP sequences, back-to-back constants and moves). Loads/stores
// keep the non-faulting bounds clamp, commit-bit write and profiling address
// sample folded into the one memory closure.
//
// Execution semantics are exactly those of the tree walker and the bytecode
// engine (guarded write-back, clamped non-faulting memory, non-trapping
// integer division): outputs, commit bits, taken exits and operation counts
// are byte-for-byte identical, which the differential fuzzers
// (FuzzNativeVsBCode, FuzzBytecodeVsTree in internal/disamb) and the
// semantics tests in internal/sim pin. Compilation is exactly as strict as
// bcode.Compile — ncode lowers through the bytecode stream, so any tree the
// bytecode compiler declines falls back to the reference tree walker here
// too.
package ncode

import (
	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// step is one compiled execution step: it performs its (possibly fused)
// operation over the Env. An Exit step that observes a duplicate committed
// exit records it and the loop still runs to completion — the execution is
// about to fail with a two-exits error, so the post-duplicate register and
// memory state is never observed, and keeping steps return-free keeps the
// dispatch loop branchless.
type step func(*Env)

// Env is the machine state one tree execution reads and mutates, mirroring
// bcode.Env: the caller (internal/sim's Runner) keeps ownership of memory,
// output, pricing and trace recording. The profiling tables are only touched
// by the profiling chain, so a caller that never profiles may leave them nil.
type Env struct {
	// Regs is the current function invocation's register frame.
	Regs []ir.Value
	// Mem is the program's flat memory image. Memory bounds are read from
	// here at run time, so one compiled program can serve any program clone.
	Mem []ir.Value
	// Bits receives the packed guard-commit bits (bit GIdx set iff the
	// guarded instruction committed), in the trace wire layout. The caller
	// zeroes it before each execution; it must hold NumGuarded bits.
	Bits []byte
	// Print emits one committed print op's value.
	Print func(v ir.Value, isFloat bool)

	// Committed[seq] and Addrs[seq] are the profiling tables, indexed by
	// instruction position (== ir.Op.Seq); the profiling chain fills
	// Committed for guarded instructions and Addrs for memory instructions
	// (squashed ones included — the dependence profiler observes every
	// issued access).
	Committed []bool
	Addrs     []int64

	// Per-execution exit state, reset by Prog.Exec.
	taken, dup int
	ncommit    int64
}

// Prog is one tree compiled to native closure chains.
type Prog struct {
	Tree *ir.Tree
	// NumGuarded is the number of guarded instructions (= commit-bit width).
	NumGuarded int
	// Steps counts the closures of one chain; Fused counts the
	// superinstructions the fusion pass formed (a width-w superinstruction
	// saves w-1 dispatches); Windows counts the wide (width ≥ 3) ones.
	Steps, Fused, Windows int

	// Src is the bytecode program the chains were lowered through, and Plan
	// the fusion plan applied to it — retained so the translation validator
	// (internal/verify.CheckNCode) can audit the compiled artifact against
	// the source tree without recompiling.
	Src  *bcode.Prog
	Plan []FuseKind

	plain, prof []step
}

// Exec runs the compiled tree over env, selecting the plain or profiling
// specialization, and reports the taken exit's instruction index (-1 if no
// exit committed), the index of the first duplicate committed exit (-1
// normally; a non-negative value makes the caller fail the execution with
// the reference interpreter's two-exits error), and how many guarded
// instructions committed.
func (p *Prog) Exec(env *Env, profiling bool) (taken, dup int, ncommit int64) {
	env.taken, env.dup, env.ncommit = -1, -1, 0
	steps := p.plain
	if profiling {
		steps = p.prof
	}
	for _, s := range steps {
		s(env)
	}
	return env.taken, env.dup, env.ncommit
}

// Compile lowers one decision tree to closure chains. Lowering goes through
// the bytecode stream, so the strictness contract is bcode.Compile's: any
// tree outside the repertoire errors, and callers fall back to the reference
// tree walker.
func Compile(t *ir.Tree) (*Prog, error) { return CompileWidth(t, MaxWindow) }

// CompileWidth is Compile with the maximum fusion window width capped at
// maxWidth: 1 disables fusion entirely, 2 allows only the pairwise catalog,
// 3 and 4 enable the wide windows. The width ablation
// (BenchmarkWindowWidths) sweeps it; everything else uses MaxWindow.
func CompileWidth(t *ir.Tree, maxWidth int) (*Prog, error) {
	bp, err := bcode.Compile(t)
	if err != nil {
		return nil, err
	}
	plan := fusePlanWidth(bp.Code, maxWidth)
	p := &Prog{Tree: t, NumGuarded: bp.NumGuarded, Src: bp, Plan: plan}
	for _, k := range plan {
		switch k {
		case FuseCmpExit, FuseConstAlu, FusePair:
			p.Fused++
		case FuseWin3, FuseWin4:
			p.Fused++
			p.Windows++
		}
	}
	e := &emitter{code: bp.Code, consts: bp.Consts}
	p.plain = e.emit(plan, false)
	p.Steps = len(p.plain)
	p.prof = e.emit(plan, true)
	return p, nil
}

// FuseKind classifies each instruction's role in the fusion plan. It is
// exported (with the plan itself, Prog.Plan) for the translation validator.
type FuseKind uint8

const (
	// FuseNone: the instruction emits its own step.
	FuseNone FuseKind = iota
	// FuseConsumed: the instruction executes inside the previous
	// superinstruction and emits nothing.
	FuseConsumed
	// FuseCmpExit: an unguarded compare at pc whose result guards the exit
	// at pc+1 — one closure computes the compare, writes the (observable)
	// boolean register, and resolves the exit.
	FuseCmpExit
	// FuseConstAlu: an unguarded constant at pc feeding an operand of the
	// unguarded ALU/compare at pc+1 — one closure writes the constant and
	// computes the operation.
	FuseConstAlu
	// FusePair: two adjacent unguarded instructions from the hot-pair
	// catalog (address arithmetic feeding a load, ALU and FP sequences,
	// back-to-back constants or moves) executed by one closure.
	FusePair
	// FuseWin3, FuseWin4: a width-3/4 fusion window (window.go) — a run of
	// unguarded catalog members, optionally exit-terminated, executed by one
	// closure; the following 2/3 instructions are FuseConsumed.
	FuseWin3
	FuseWin4
)

// fusePlan tiles the bytecode stream with the full window fuser. Fusion
// never changes semantics — every architectural write of every member still
// happens, in order — it only removes dispatches.
func fusePlan(code []bcode.Instr) []FuseKind {
	return fusePlanWidth(code, MaxWindow)
}

// fusePlanWidth is the greedy widest-first tiler: at each pc it tries a
// width-maxWidth window first, then narrower windows down to 3, then the
// pairwise catalog, and moves on past whatever it planned — so windows cover
// the stream exactly, never overlap, and never span an exit (an exit may
// only terminate a window).
func fusePlanWidth(code []bcode.Instr, maxWidth int) []FuseKind {
	plan := make([]FuseKind, len(code))
	if maxWidth > MaxWindow {
		maxWidth = MaxWindow
	}
	pc := 0
	for pc < len(code) {
		fusedW := 0
		for w := maxWidth; w >= 3; w-- {
			if windowAt(code, pc, w) {
				fusedW = w
				break
			}
		}
		if fusedW > 0 {
			if fusedW == 3 {
				plan[pc] = FuseWin3
			} else {
				plan[pc] = FuseWin4
			}
			for i := 1; i < fusedW; i++ {
				plan[pc+i] = FuseConsumed
			}
			pc += fusedW
			continue
		}
		if maxWidth >= 2 && pc+1 < len(code) {
			in, nx := &code[pc], &code[pc+1]
			if in.Guard < 0 && in.Dest >= 0 {
				switch {
				case isCmp(in.Op) && nx.Op == bcode.Exit && nx.Guard == in.Dest:
					plan[pc], plan[pc+1] = FuseCmpExit, FuseConsumed
				case in.Op == bcode.Const && nx.Guard < 0 && nx.Dest >= 0 &&
					fusableAlu(nx.Op) && (nx.A == in.Dest || nx.B == in.Dest):
					plan[pc], plan[pc+1] = FuseConstAlu, FuseConsumed
				case nx.Guard < 0 && nx.Dest >= 0 && pairable(in.Op, nx.Op):
					plan[pc], plan[pc+1] = FusePair, FuseConsumed
				}
				if plan[pc] != FuseNone {
					pc += 2
					continue
				}
			}
		}
		pc++
	}
	return plan
}

// pairable reports whether the hot-pair catalog has a superinstruction for
// the adjacent unguarded ops (op1, op2) — kept in exact sync with the combos
// emitter.pair implements. The catalog is driven by the pair frequencies of
// the benchmark suite's bytecode streams: integer address arithmetic feeding
// a load, load feeding floating-point arithmetic, floating-point sequences,
// and back-to-back constants or moves.
func pairable(op1, op2 bcode.Op) bool {
	switch op1 {
	case bcode.Const:
		return op2 == bcode.Const
	case bcode.Move:
		return op2 == bcode.Move
	case bcode.Add, bcode.Sub:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Mul, bcode.Load:
			return true
		default:
			return false
		}
	case bcode.Load:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Load, bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	case bcode.FMul, bcode.FAdd, bcode.FSub:
		switch op2 {
		case bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	default:
		return false
	}
}

// isCmp reports whether op is an integer or floating-point compare (produces
// the 0/1 boolean guard encoding).
func isCmp(op bcode.Op) bool {
	switch op {
	case bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}

// fusableAlu reports whether op is a two-operand ALU or compare the
// const+arith superinstruction covers — integer and floating-point both.
// Div and Rem stay unfused: their non-trapping edge cases keep the closure
// large enough that fusing buys nothing.
func fusableAlu(op bcode.Op) bool {
	switch op {
	case bcode.Add, bcode.Sub, bcode.Mul, bcode.And, bcode.Or, bcode.Xor,
		bcode.Shl, bcode.Shr,
		bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}
