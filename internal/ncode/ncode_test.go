package ncode_test

import (
	"fmt"
	"math"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// newTree returns an empty single-block tree inside a fresh function.
func newTree() (*ir.Function, *ir.Tree) {
	fn := &ir.Function{Name: "f"}
	tr := &ir.Tree{Fn: fn, Name: "f.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	return fn, tr
}

// constOp appends a constant op.
func constOp(fn *ir.Function, tr *ir.Tree, v ir.Value) ir.Reg {
	r := fn.NewReg()
	op := tr.NewOp(ir.OpConst, nil, r)
	op.Imm = v
	return r
}

func iv(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fv(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

// state is the complete observable outcome of one tree execution.
type state struct {
	taken, dup int
	ncommit    int64
	regs, mem  []ir.Value
	bits       []byte
	committed  []bool
	addrs      []int64
	printed    []string
}

// execBC runs the tree on the bytecode engine.
func execBC(t *testing.T, tr *ir.Tree, regs, mem []ir.Value, profiling bool) *state {
	t.Helper()
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatalf("bcode.Compile: %v", err)
	}
	s := &state{
		regs: append([]ir.Value(nil), regs...),
		mem:  append([]ir.Value(nil), mem...),
		bits: make([]byte, (p.NumGuarded+7)/8),
	}
	env := bcode.Env{
		Regs: s.regs, Mem: s.mem, Bits: s.bits,
		Print: func(v ir.Value, isFloat bool) { s.printed = append(s.printed, fmt.Sprint(v, isFloat)) },
	}
	if profiling {
		env.Profiling = true
		env.Committed = make([]bool, len(tr.Ops))
		env.Addrs = make([]int64, len(tr.Ops))
	}
	s.taken, s.dup, s.ncommit = p.Exec(&env)
	s.committed, s.addrs = env.Committed, env.Addrs
	return s
}

// execNC runs the tree on the native closure-chain engine.
func execNC(t *testing.T, tr *ir.Tree, regs, mem []ir.Value, profiling bool) *state {
	t.Helper()
	p, err := ncode.Compile(tr)
	if err != nil {
		t.Fatalf("ncode.Compile: %v", err)
	}
	s := &state{
		regs: append([]ir.Value(nil), regs...),
		mem:  append([]ir.Value(nil), mem...),
		bits: make([]byte, (p.NumGuarded+7)/8),
	}
	env := ncode.Env{
		Regs: s.regs, Mem: s.mem, Bits: s.bits,
		Print: func(v ir.Value, isFloat bool) { s.printed = append(s.printed, fmt.Sprint(v, isFloat)) },
	}
	if profiling {
		env.Committed = make([]bool, len(tr.Ops))
		env.Addrs = make([]int64, len(tr.Ops))
	}
	s.taken, s.dup, s.ncommit = p.Exec(&env, profiling)
	s.committed, s.addrs = env.Committed, env.Addrs
	return s
}

// render flattens a state for comparison. NaN renders as a stable token, so
// equality survives values reflect.DeepEqual would reject (NaN != NaN).
func render(s *state) string { return fmt.Sprintf("%+v", s) }

// diff runs the tree on both engines under both specializations and fails on
// any observable divergence. It returns the native plain-chain state.
func diff(t *testing.T, tr *ir.Tree, regs, mem []ir.Value) *state {
	t.Helper()
	var plain *state
	for _, profiling := range []bool{false, true} {
		bc := execBC(t, tr, regs, mem, profiling)
		nc := execNC(t, tr, regs, mem, profiling)
		if render(bc) != render(nc) {
			t.Fatalf("engines diverged (profiling=%v)\nbcode: %+v\nncode: %+v", profiling, bc, nc)
		}
		if !profiling {
			plain = nc
		}
	}
	return plain
}

// TestFusionPlan pins the fusion tiler on a tree whose leading run
// (const, const, add, compare) tiles as one width-4 window, leaving the two
// guarded exits as single closures.
func TestFusionPlan(t *testing.T) {
	fn, tr := newTree()
	r0 := constOp(fn, tr, iv(10))
	r1 := constOp(fn, tr, iv(3))
	r2 := fn.NewReg()
	tr.NewOp(ir.OpAdd, []ir.Reg{r0, r1}, r2)
	r3 := fn.NewReg()
	tr.NewOp(ir.OpCmpLT, []ir.Reg{r2, r0}, r3) // window ends here
	exTrue := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	exTrue.Exit, exTrue.Guard = ir.ExitRet, r3
	exFalse := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	exFalse.Exit, exFalse.Guard, exFalse.GuardNeg = ir.ExitRet, r3, true

	p, err := ncode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fused != 1 || p.Windows != 1 {
		t.Errorf("Fused = %d, Windows = %d, want 1, 1 (one width-4 window)", p.Fused, p.Windows)
	}
	// 6 instructions, 3 consumed by the window: 3 closures.
	if p.Steps != 3 {
		t.Errorf("Steps = %d, want 3", p.Steps)
	}

	// 10+3 < 10 is false: the negated exit commits.
	s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	if s.taken != exFalse.Seq || s.dup != -1 {
		t.Errorf("taken=%d dup=%d, want taken=%d dup=-1", s.taken, s.dup, exFalse.Seq)
	}
	if s.regs[r2].I != 13 || s.regs[r3].I != 0 {
		t.Errorf("fused results: add=%d cmp=%d, want 13, 0", s.regs[r2].I, s.regs[r3].I)
	}
}

// TestWindowWidths sweeps CompileWidth over a straight 8-op integer chain
// (plus the unguarded exit, which may terminate a window) and pins how the
// greedy tiler degrades: width 4 tiles two full windows, width 3 covers
// everything — exit included — in three windows, width 2 falls back to the
// pairwise catalog, and width 1 disables fusion entirely. Every width must
// execute identically.
func TestWindowWidths(t *testing.T) {
	build := func() (*ir.Function, *ir.Tree, ir.Reg) {
		fn, tr := newTree()
		r0 := constOp(fn, tr, iv(7))
		r1 := constOp(fn, tr, iv(5))
		acc := r0
		for _, k := range []ir.OpKind{ir.OpAdd, ir.OpMul, ir.OpSub, ir.OpAdd, ir.OpSub, ir.OpMul} {
			d := fn.NewReg()
			tr.NewOp(k, []ir.Reg{acc, r1}, d)
			acc = d
		}
		ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
		ex.Exit = ir.ExitRet
		return fn, tr, acc
	}

	want := map[int]struct{ fused, windows int }{
		1: {0, 0},
		2: {4, 0}, // const+const, add+mul, sub+add, sub+mul pairs
		3: {3, 3}, // [cc,add] [mul,sub,add] [sub,mul,exit]
		4: {2, 2}, // [cc,add,mul] [sub,add,sub,mul], exit alone
	}
	var ref *state
	for _, w := range []int{4, 3, 2, 1} {
		fn, tr, acc := build()
		p, err := ncode.CompileWidth(tr, w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if p.Fused != want[w].fused || p.Windows != want[w].windows {
			t.Errorf("width %d: Fused = %d, Windows = %d, want %d, %d",
				w, p.Fused, p.Windows, want[w].fused, want[w].windows)
		}
		s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
		if s.regs[acc].I == 0 {
			t.Fatalf("width %d: chain result unexpectedly zero", w)
		}
		if ref == nil {
			ref = s
		} else if render(ref) != render(s) {
			t.Errorf("width %d diverged from width 4:\n%+v\n%+v", w, s, ref)
		}
	}
}

// TestWindowExit proves a window may end in an exit — the guard register is
// read after every member lands, so a compare inside the window legally feeds
// the window's own exit — and that both polarities and the double-exit
// duplicate report survive the fusion.
func TestWindowExit(t *testing.T) {
	fn, tr := newTree()
	r0 := constOp(fn, tr, iv(4))
	r1 := fn.NewReg()
	tr.NewOp(ir.OpAdd, []ir.Reg{r0, r0}, r1)
	r2 := fn.NewReg()
	tr.NewOp(ir.OpCmpGT, []ir.Reg{r1, r0}, r2) // 8 > 4: true
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit, ex.Guard = ir.ExitRet, r2
	exTail := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	exTail.Exit = ir.ExitRet

	p, err := ncode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Windows != 1 || p.Fused != 1 {
		t.Errorf("Fused = %d, Windows = %d, want 1, 1 (exit-terminated window)", p.Fused, p.Windows)
	}
	s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	if s.taken != ex.Seq || s.dup != exTail.Seq {
		t.Errorf("taken=%d dup=%d, want taken=%d dup=%d", s.taken, s.dup, ex.Seq, exTail.Seq)
	}

	// Flip the guard polarity: the fused exit squashes and the tail commits.
	ex.GuardNeg = true
	s = diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	if s.taken != exTail.Seq || s.dup != -1 {
		t.Errorf("negated: taken=%d dup=%d, want taken=%d dup=-1", s.taken, s.dup, exTail.Seq)
	}
}

// TestWindowAddressForwarding exercises the specialized width-3
// const+ALU+load window where the load consumes the ALU result as its address
// — the closure forwards the computed address without a register round trip —
// including the profiling variant's address sample. A Div prefix (outside the
// window catalog) and a trailing store pin the tiler to exactly that shape:
// a width-4 window can neither start at the Div nor swallow the store.
func TestWindowAddressForwarding(t *testing.T) {
	for _, sub := range []bool{false, true} {
		fn, tr := newTree()
		rA := constOp(fn, tr, iv(21))
		rB := constOp(fn, tr, iv(6))
		base := fn.NewReg()
		tr.NewOp(ir.OpDiv, []ir.Reg{rA, rB}, base) // 3; Div never joins a window
		off := constOp(fn, tr, iv(2))
		addr := fn.NewReg()
		kind := ir.OpAdd
		if sub {
			kind = ir.OpSub
		}
		tr.NewOp(kind, []ir.Reg{base, off}, addr)
		rd := fn.NewReg()
		ld := tr.NewOp(ir.OpLoad, []ir.Reg{addr}, rd)
		tr.NewOp(ir.OpStore, []ir.Reg{rB, rd}, ir.NoReg) // keeps the exit out of the window
		ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
		ex.Exit = ir.ExitRet

		p, err := ncode.Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		// const+const pair up front, then the width-3 const+ALU+load window.
		if p.Fused != 2 || p.Windows != 1 {
			t.Errorf("sub=%v: Fused = %d, Windows = %d, want 2, 1", sub, p.Fused, p.Windows)
		}
		mem := make([]ir.Value, 8)
		for i := range mem {
			mem[i] = iv(int64(100 + i))
		}
		s := diff(t, tr, make([]ir.Value, fn.NumRegs), mem)
		wantAddr := int64(5)
		if sub {
			wantAddr = 1
		}
		if s.regs[rd].I != 100+wantAddr {
			t.Errorf("sub=%v: loaded %d, want %d", sub, s.regs[rd].I, 100+wantAddr)
		}
		nc := execNC(t, tr, make([]ir.Value, fn.NumRegs), mem, true)
		if nc.addrs[ld.Seq] != wantAddr {
			t.Errorf("sub=%v: profiled addr = %d, want %d", sub, nc.addrs[ld.Seq], wantAddr)
		}
	}
}

// TestWindowLongChain tiles a 40-op float/int chain and proves the greedy
// tiler covers it with maximal windows while both engines agree bit for bit.
func TestWindowLongChain(t *testing.T) {
	fn, tr := newTree()
	ri := constOp(fn, tr, iv(3))
	rf := constOp(fn, tr, fv(1.5))
	ai, af := ri, rf
	for i := 0; i < 19; i++ {
		d := fn.NewReg()
		tr.NewOp(ir.OpAdd, []ir.Reg{ai, ri}, d)
		ai = d
		e := fn.NewReg()
		tr.NewOp(ir.OpFMul, []ir.Reg{af, rf}, e)
		af = e
	}
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	p, err := ncode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 40 fusable ops followed by an unguarded exit: the exit joins the final
	// window, so 41 ops tile as ten width-4 windows plus a final pair or
	// window — at minimum ten windows.
	if p.Windows < 10 {
		t.Errorf("Windows = %d, want >= 10 over a 40-op chain", p.Windows)
	}
	if p.Steps >= len(tr.Ops)/2 {
		t.Errorf("Steps = %d, want < %d (wide windows should dominate)", p.Steps, len(tr.Ops)/2)
	}
	diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
}

// TestFusionSkipsGuardedAndDiv pins the fusion pass's exclusions: guarded
// members and Div/Rem consumers never fuse.
func TestFusionSkipsGuardedAndDiv(t *testing.T) {
	fn, tr := newTree()
	g := constOp(fn, tr, iv(1))
	r1 := constOp(fn, tr, iv(6))
	r2 := fn.NewReg()
	div := tr.NewOp(ir.OpDiv, []ir.Reg{r1, r1}, r2) // Div consumer: no fusion
	_ = div
	r3 := fn.NewReg()
	cmp := tr.NewOp(ir.OpCmpEQ, []ir.Reg{r2, r1}, r3)
	cmp.Guard = g // guarded compare: no compare+exit fusion
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	p, err := ncode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The two setup constants fuse as a const+const pair; the Div consumer
	// and the guarded compare must not fuse with anything.
	if p.Fused != 1 {
		t.Errorf("Fused = %d, want 1 (guarded members and Div consumers are excluded)", p.Fused)
	}
	diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
}

// TestSquashedMemorySampling proves the profiling chains still sample the
// speculative address of squashed guarded loads and stores — the dependence
// profiler observes every issued access, committed or not — while the
// architectural write stays suppressed. This covers both the plain guarded
// memory closures and the bounds clamp on a wild negative address.
func TestSquashedMemorySampling(t *testing.T) {
	fn, tr := newTree()
	g := constOp(fn, tr, iv(0)) // guard register: false
	addr := constOp(fn, tr, iv(-5))
	val := constOp(fn, tr, iv(99))
	rd := fn.NewReg()
	ld := tr.NewOp(ir.OpLoad, []ir.Reg{addr}, rd)
	ld.Guard = g
	st := tr.NewOp(ir.OpStore, []ir.Reg{addr, val}, ir.NoReg)
	st.Guard = g
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	mem := make([]ir.Value, 8)
	mem[0] = iv(1234)
	regs := make([]ir.Value, fn.NumRegs)
	regs[rd] = iv(-1) // sentinel: must survive the squashed load

	bc := execBC(t, tr, regs, mem, true)
	nc := execNC(t, tr, regs, mem, true)
	if render(bc) != render(nc) {
		t.Fatalf("engines diverged\nbcode: %+v\nncode: %+v", bc, nc)
	}
	// The clamp maps -5 to address 0; the sample must record the clamped
	// address even though the guard squashed both accesses.
	if nc.addrs[ld.Seq] != 0 || nc.addrs[st.Seq] != 0 {
		t.Errorf("squashed access addrs = %d/%d, want 0/0", nc.addrs[ld.Seq], nc.addrs[st.Seq])
	}
	if nc.committed[ld.Seq] || nc.committed[st.Seq] {
		t.Error("squashed accesses marked committed")
	}
	if nc.regs[rd].I != -1 {
		t.Errorf("squashed load wrote its destination: %d", nc.regs[rd].I)
	}
	if nc.mem[0].I != 1234 {
		t.Errorf("squashed store wrote memory: %d", nc.mem[0].I)
	}
	if nc.ncommit != 0 || nc.bits[0] != 0 {
		t.Errorf("squashed accesses committed: ncommit=%d bits=%v", nc.ncommit, nc.bits)
	}
}

// TestDoubleExit proves a second committed exit stops the chain and reports
// the duplicate, identically on both engines — including through the
// compare+exit superinstruction.
func TestDoubleExit(t *testing.T) {
	fn, tr := newTree()
	g := constOp(fn, tr, iv(1))
	ex1 := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex1.Exit, ex1.Guard = ir.ExitRet, g
	r2 := fn.NewReg()
	tr.NewOp(ir.OpCmpEQ, []ir.Reg{g, g}, r2) // true: fused exit commits too
	ex2 := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex2.Exit, ex2.Guard = ir.ExitRet, r2

	s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	if s.taken != ex1.Seq || s.dup != ex2.Seq {
		t.Errorf("taken=%d dup=%d, want taken=%d dup=%d", s.taken, s.dup, ex1.Seq, ex2.Seq)
	}
}

// TestGuardedLongTail exercises the generic guarded-pure closure, including
// the guarded-constant pool-index hazard (Const's A operand is a pool index,
// not a register) and one-operand forms, under both guard polarities.
func TestGuardedLongTail(t *testing.T) {
	fn, tr := newTree()
	g := constOp(fn, tr, iv(1))
	rc := fn.NewReg()
	gc := tr.NewOp(ir.OpConst, nil, rc) // guarded constant
	gc.Imm = iv(77)
	gc.Guard = g
	rn := fn.NewReg()
	neg := tr.NewOp(ir.OpNeg, []ir.Reg{rc}, rn) // guarded one-operand op
	neg.Guard = g
	rs := fn.NewReg()
	squash := tr.NewOp(ir.OpConst, nil, rs) // squashed guarded constant
	squash.Imm = iv(55)
	squash.Guard, squash.GuardNeg = g, true
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	if s.regs[rc].I != 77 || s.regs[rn].I != -77 {
		t.Errorf("guarded const/neg = %d/%d, want 77/-77", s.regs[rc].I, s.regs[rn].I)
	}
	if s.regs[rs].I != 0 {
		t.Errorf("squashed guarded const wrote %d", s.regs[rs].I)
	}
	if s.ncommit != 2 {
		t.Errorf("ncommit = %d, want 2", s.ncommit)
	}
}

// TestEdgeCaseArithmetic runs the non-trapping corner cases through guarded
// closures (the unguarded forms are covered by internal/sim's semantics
// battery): MinInt64 division and remainder, and NaN/±Inf float→int
// conversion.
func TestEdgeCaseArithmetic(t *testing.T) {
	fn, tr := newTree()
	g := constOp(fn, tr, iv(1))
	min := constOp(fn, tr, iv(math.MinInt64))
	m1 := constOp(fn, tr, iv(-1))
	zero := constOp(fn, tr, iv(0))
	nan := constOp(fn, tr, fv(math.NaN()))
	inf := constOp(fn, tr, fv(math.Inf(1)))

	dst := make([]ir.Reg, 5)
	for i, c := range []struct {
		kind ir.OpKind
		args []ir.Reg
	}{
		{ir.OpDiv, []ir.Reg{min, m1}},
		{ir.OpRem, []ir.Reg{min, m1}},
		{ir.OpDiv, []ir.Reg{min, zero}},
		{ir.OpCvtFI, []ir.Reg{nan}},
		{ir.OpCvtFI, []ir.Reg{inf}},
	} {
		dst[i] = fn.NewReg()
		op := tr.NewOp(c.kind, c.args, dst[i])
		op.Guard = g
	}
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	s := diff(t, tr, make([]ir.Value, fn.NumRegs), make([]ir.Value, 8))
	want := []int64{math.MinInt64, 0, 0, 0, math.MaxInt64}
	for i, w := range want {
		if got := s.regs[dst[i]].I; got != w {
			t.Errorf("edge case %d: got %d, want %d", i, got, w)
		}
	}
}

// TestCacheCounters proves the native cache is content-addressed: one compile
// per distinct tree body, hits for identical clones, and Instrs counting
// closure steps.
func TestCacheCounters(t *testing.T) {
	fn, tr := newTree()
	constOp(fn, tr, iv(4))
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	var ctrs bcode.Counters
	c := ncode.NewCache(&ctrs)
	p1 := c.Get(tr)
	if p1 == nil {
		t.Fatal("Get returned nil for a compilable tree")
	}
	tr2 := tr.Clone()
	tr2.PIdx = 17 // identity must not matter, only content
	if p2 := c.Get(tr2); p2 != p1 {
		t.Error("identical clone missed the cache")
	}
	if got := ctrs.Compiled.Load(); got != 1 {
		t.Errorf("Compiled = %d, want 1", got)
	}
	if got := ctrs.Hits.Load(); got != 1 {
		t.Errorf("Hits = %d, want 1", got)
	}
	if got := ctrs.Instrs.Load(); got != int64(p1.Steps) {
		t.Errorf("Instrs = %d, want %d (closure steps)", got, p1.Steps)
	}
}
