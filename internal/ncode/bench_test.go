package ncode_test

import (
	"fmt"
	"testing"

	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// chainFixture builds the 40-op straight-line int/float chain of
// TestWindowLongChain — the shape window fusion exists for: long unguarded
// runs that tile into maximal windows.
func chainFixture() (*ir.Function, *ir.Tree) {
	fn, tr := newTree()
	ri := constOp(fn, tr, iv(3))
	rf := constOp(fn, tr, fv(1.5))
	ai, af := ri, rf
	for i := 0; i < 19; i++ {
		d := fn.NewReg()
		tr.NewOp(ir.OpAdd, []ir.Reg{ai, ri}, d)
		ai = d
		e := fn.NewReg()
		tr.NewOp(ir.OpFMul, []ir.Reg{af, rf}, e)
		af = e
	}
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	return fn, tr
}

// BenchmarkWindowWidths sweeps the fuser's maximum window width over the
// chain fixture: width 1 disables fusion entirely, width 2 is the old
// pairwise-only fuser, widths 3 and 4 enable wide windows. The per-op gap
// between width 2 and width 4 is the dispatch overhead window fusion
// removes; see docs/PERFORMANCE.md for recorded numbers.
func BenchmarkWindowWidths(b *testing.B) {
	fn, tr := chainFixture()
	for w := 1; w <= ncode.MaxWindow; w++ {
		p, err := ncode.CompileWidth(tr, w)
		if err != nil {
			b.Fatal(err)
		}
		regs := make([]ir.Value, fn.NumRegs)
		env := ncode.Env{Regs: regs, Mem: make([]ir.Value, 8)}
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if taken, dup, _ := p.Exec(&env, false); taken < 0 || dup >= 0 {
					b.Fatalf("bad exit: taken=%d dup=%d", taken, dup)
				}
			}
		})
	}
}
