package ncode

import (
	"container/list"
	"sync"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// Cache memoizes compiled closure chains by execution content
// (ir.AppendExecKey), exactly like the bytecode cache: clones of one program
// share a compiled artifact, and a tree mutated after compilation re-keys
// and recompiles. Counters are the shared bcode.Counters type so one counter
// set can report whichever tier a sweep ran (Instrs counts emitted closure
// steps here). Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	ctrs  *bcode.Counters
	back  Backing
	ents  map[string]*list.Element // nil Prog: compile declined; tree runs on the walker
	order *list.List               // front = most recently used (holds *cacheEnt)
	limit int                      // max entries; 0 = unbounded
	key   []byte                   // scratch for ir.AppendExecKey
}

// cacheEnt is one cached compilation, threaded through the LRU order list.
type cacheEnt struct {
	key  string
	prog *Prog
}

// Meta is the persistable residue of one native compilation. Closure chains
// are process-bound — they cannot be serialized — but whether a tree's
// execution content is inside the native repertoire, and how many steps it
// lowers to, are durable facts keyed by the same content hash.
type Meta struct {
	// Declined marks content outside the native repertoire; the tree runs
	// on the fallback tier and a warm cache skips the compile attempt.
	Declined bool
	// Steps is the compiled chain length (0 when declined); Fused counts
	// the superinstructions of the fusion plan and Windows the wide
	// (width ≥ 3) ones among them.
	Steps, Fused, Windows int64
}

// Backing is a second-level metadata store behind the in-memory cache — the
// persistent artifact store (internal/store) in production. Implementations
// must be safe for concurrent use. Load receives the requesting tree so the
// implementation can bounds-check the persisted metadata against it and
// turn an implausible record (a stale or tampered artifact) into a miss.
type Backing interface {
	// Load returns the metadata persisted under the exec key, or false.
	Load(t *ir.Tree, execKey []byte) (Meta, bool)
	// Store persists one compilation's metadata under the exec key.
	Store(execKey []byte, m Meta)
}

// NewCache returns an empty cache. ctrs may be nil.
func NewCache(ctrs *bcode.Counters) *Cache {
	return &Cache{ctrs: ctrs, ents: map[string]*list.Element{}, order: list.New()}
}

// SetBacking attaches a second-level metadata store consulted on in-memory
// misses. Must be called before the cache is shared across goroutines.
func (c *Cache) SetBacking(b Backing) { c.back = b }

// SetLimit bounds the cache to n entries, evicting least-recently-used
// compilations over capacity (0 restores the unbounded default); see
// bcode.Cache.SetLimit. Safe to call at any time.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// Len returns the number of cached compilations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ents)
}

// Get returns the tree's compiled program, compiling on first use of its
// execution content. A nil result means the tree is outside the repertoire
// and must run on the reference tree walker; that outcome is cached too.
func (c *Cache) Get(t *ir.Tree) *Prog {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.key = ir.AppendExecKey(c.key[:0], t)
	if el, ok := c.ents[string(c.key)]; ok {
		c.order.MoveToFront(el)
		if c.ctrs != nil {
			c.ctrs.Hits.Add(1)
		}
		return el.Value.(*cacheEnt).prog
	}
	if c.back != nil {
		if m, ok := c.back.Load(t, c.key); ok && m.Declined {
			// A persisted decline: the content is outside the repertoire, so
			// skip the compile attempt and send the tree to the fallback
			// tier, exactly as a fresh decline would.
			c.insertLocked(string(c.key), nil)
			if c.ctrs != nil {
				c.ctrs.Hits.Add(1)
			}
			return nil
		}
	}
	p, err := Compile(t)
	if err != nil {
		p = nil
	} else if c.ctrs != nil {
		c.ctrs.Compiled.Add(1)
		c.ctrs.Instrs.Add(int64(p.Steps))
		c.ctrs.Steps.Add(int64(p.Steps))
		c.ctrs.Fused.Add(int64(p.Fused))
		c.ctrs.Windows.Add(int64(p.Windows))
	}
	c.insertLocked(string(c.key), p)
	if c.back != nil {
		if p == nil {
			c.back.Store(c.key, Meta{Declined: true})
		} else {
			c.back.Store(c.key, Meta{
				Steps:   int64(p.Steps),
				Fused:   int64(p.Fused),
				Windows: int64(p.Windows),
			})
		}
	}
	return p
}

// insertLocked records a compilation at the front of the LRU order, evicting
// over capacity. Caller holds the lock.
func (c *Cache) insertLocked(key string, p *Prog) {
	c.ents[key] = c.order.PushFront(&cacheEnt{key: key, prog: p})
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for len(c.ents) > c.limit {
		el := c.order.Back()
		if el == nil {
			return
		}
		c.order.Remove(el)
		delete(c.ents, el.Value.(*cacheEnt).key)
		if c.ctrs != nil {
			c.ctrs.Evictions.Add(1)
		}
	}
}

// Counters returns the cache's shared counter set (nil when none was
// attached) — the simulator's adaptive tiering reports tier-ups through it.
func (c *Cache) Counters() *bcode.Counters { return c.ctrs }
