package ncode

import (
	"sync"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// Cache memoizes compiled closure chains by execution content
// (ir.AppendExecKey), exactly like the bytecode cache: clones of one program
// share a compiled artifact, and a tree mutated after compilation re-keys
// and recompiles. Counters are the shared bcode.Counters type so one counter
// set can report whichever tier a sweep ran (Instrs counts emitted closure
// steps here). Safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	ctrs *bcode.Counters
	ents map[string]*Prog // nil Prog: compile declined; tree runs on the walker
	key  []byte           // scratch for ir.AppendExecKey
}

// NewCache returns an empty cache. ctrs may be nil.
func NewCache(ctrs *bcode.Counters) *Cache {
	return &Cache{ctrs: ctrs, ents: map[string]*Prog{}}
}

// Get returns the tree's compiled program, compiling on first use of its
// execution content. A nil result means the tree is outside the repertoire
// and must run on the reference tree walker; that outcome is cached too.
func (c *Cache) Get(t *ir.Tree) *Prog {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.key = ir.AppendExecKey(c.key[:0], t)
	if p, ok := c.ents[string(c.key)]; ok {
		if c.ctrs != nil {
			c.ctrs.Hits.Add(1)
		}
		return p
	}
	p, err := Compile(t)
	if err != nil {
		p = nil
	} else if c.ctrs != nil {
		c.ctrs.Compiled.Add(1)
		c.ctrs.Instrs.Add(int64(p.Steps))
	}
	c.ents[string(c.key)] = p
	return p
}
