package ncode

import (
	"specdis/internal/bcode"
)

// This file is the window fuser: a greedy, catalog-driven tiler that fuses
// runs of up to MaxWindow adjacent bcode words into single closures, and the
// emitters for the windows it plans. A window retires as one step of the
// dispatch loop; inside it, fully-inlined emitters handle the hot shapes
// (const + address arithmetic + load with the address forwarded, and the
// exit-terminated windows, whose guard-read/commit/duplicate logic runs
// inline after every member lands), and everything else re-runs the pairwise
// catalog within the window, so wide fusion never executes a member more
// slowly than the unfused chain would have.
//
// The catalog is class-based. A window *member* must be unguarded, have a
// destination, and belong to one of six element classes — constants, moves,
// two-operand integer ALU, two-operand float ALU, compares, loads — so a
// window can never lift a side effect (store, print) out from under its
// guard: side-effecting ops are simply not members. The one exception is the
// final element, which may be an exit (guarded or not): the exit's full
// guard-read, commit-bit and duplicate-detection logic runs inline at the
// end of the window, reading the guard register after every earlier member
// has landed, so semantics are exactly the unfused stream's. An exit in any
// non-final position is illegal — windows never span an exit — and the
// translation validator (internal/verify.CheckNCode) re-derives both rules
// from its own copy of the catalog.

// MaxWindow is the default maximum fusion window width. CompileWidth sweeps
// it for the width ablation (BenchmarkWindowWidths).
const MaxWindow = 4

// winElem reports whether the instruction can be a window member: unguarded,
// destination-writing, and in one of the six element classes. Stores, prints
// and exits are never members (exits are handled separately as the final
// element), so fusion can never move a side effect past its guard.
func winElem(in *bcode.Instr) bool {
	if in.Guard >= 0 || in.Dest < 0 {
		return false
	}
	switch in.Op {
	case bcode.Const, bcode.Move,
		bcode.Add, bcode.Sub, bcode.Mul, bcode.And, bcode.Or, bcode.Xor,
		bcode.Shl, bcode.Shr,
		bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv,
		bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE,
		bcode.Load:
		return true
	default:
		return false
	}
}

// windowAt reports whether code[pc:pc+w] tiles as one window: every element
// a catalog member, except that the final one may be an exit.
func windowAt(code []bcode.Instr, pc, w int) bool {
	if pc+w > len(code) {
		return false
	}
	for i := 0; i < w; i++ {
		in := &code[pc+i]
		if winElem(in) {
			continue
		}
		if i == w-1 && in.Op == bcode.Exit {
			continue
		}
		return false
	}
	return true
}

// members compiles the window's leading members (everything but a
// terminating exit) into pre-bound inner steps, re-running the pairwise
// catalog inside the window: adjacent members that form a const+arith or
// hot-pair combo share one fused closure (with the address-forwarding load
// combos and all), and the rest reuse the single-instruction emitters. Every
// inner step is the same monomorphic closure body the unfused chain would
// run, so the window's calls stay well-predicted; the window only removes
// the outer dispatch loop from between them.
func (e *emitter) members(pc, n int, profiling bool) []step {
	out := make([]step, 0, n)
	for i := 0; i < n; {
		if i+1 < n {
			in, nx := &e.code[pc+i], &e.code[pc+i+1]
			switch {
			case in.Op == bcode.Const && fusableAlu(nx.Op) && (nx.A == in.Dest || nx.B == in.Dest):
				out = append(out, e.constAlu(pc+i))
				i += 2
				continue
			case pairable(in.Op, nx.Op):
				out = append(out, e.pair(pc+i, profiling))
				i += 2
				continue
			}
		}
		out = append(out, e.one(pc+i, profiling))
		i++
	}
	return out
}

// window emits one closure for the width-w window at pc. Architectural
// writes happen member by member in stream order, and every member reads its
// operands after the previous member's result landed, so sequential
// semantics hold for any register overlap — including the exit's guard read,
// which happens last.
func (e *emitter) window(pc, w int, profiling bool) step {
	last := &e.code[pc+w-1]
	if last.Op == bcode.Exit {
		return e.windowExit(pc, w, profiling)
	}
	if w == 3 {
		if s := e.constAluLoad(pc, profiling); s != nil {
			return s
		}
	}
	ss := e.members(pc, w, profiling)
	switch len(ss) {
	case 1:
		return ss[0]
	case 2:
		s0, s1 := ss[0], ss[1]
		return func(env *Env) { s0(env); s1(env) }
	case 3:
		s0, s1, s2 := ss[0], ss[1], ss[2]
		return func(env *Env) { s0(env); s1(env); s2(env) }
	default: // 4
		s0, s1, s2, s3 := ss[0], ss[1], ss[2], ss[3]
		return func(env *Env) { s0(env); s1(env); s2(env); s3(env) }
	}
}

// constAluLoad emits the const + address-arithmetic + load window with the
// computed address forwarded into the load (the load never re-reads the
// register it just watched being written). Returns nil when the window is
// not that shape; the generic member composition handles it then. The
// profiling variant additionally samples the load's effective address (the
// member is unguarded, so the sample is unconditional).
func (e *emitter) constAluLoad(pc int, profiling bool) step {
	in, alu, ld := &e.code[pc], &e.code[pc+1], &e.code[pc+2]
	if in.Op != bcode.Const || ld.Op != bcode.Load || ld.A != alu.Dest {
		return nil
	}
	sub := false
	switch alu.Op {
	case bcode.Add:
	case bcode.Sub:
		sub = true
	default:
		return nil
	}
	cv := e.consts[in.A]
	cd := int(in.Dest)
	a, b, d1 := int(alu.A), int(alu.B), int(alu.Dest)
	d2 := int(ld.Dest)
	ldpc := pc + 2
	if profiling {
		return func(env *Env) {
			r := env.Regs
			r[cd] = cv
			v := r[a].I + r[b].I
			if sub {
				v = r[a].I - r[b].I
			}
			r[d1] = intV(v)
			addr := clamp(v, int64(len(env.Mem))-1)
			env.Addrs[ldpc] = addr
			r[d2] = env.Mem[addr]
		}
	}
	return func(env *Env) {
		r := env.Regs
		r[cd] = cv
		v := r[a].I + r[b].I
		if sub {
			v = r[a].I - r[b].I
		}
		r[d1] = intV(v)
		r[d2] = env.Mem[clamp(v, int64(len(env.Mem))-1)]
	}
}

// windowExit emits an exit-terminated window: the leading members execute as
// slots, then the exit's guard-read, commit-bit write, duplicate detection
// and (under profiling) commit sample run inline — exactly the logic of the
// exit's own unfused closure, reading the guard register after every earlier
// member has landed.
func (e *emitter) windowExit(pc, w int, profiling bool) step {
	ss := e.members(pc, w-1, profiling)
	ex := e.code[pc+w-1]
	exitPC := pc + w - 1
	var runBody step
	switch len(ss) {
	case 1:
		runBody = ss[0]
	case 2:
		s0, s1 := ss[0], ss[1]
		runBody = func(env *Env) { s0(env); s1(env) }
	default: // 3
		s0, s1, s2 := ss[0], ss[1], ss[2]
		runBody = func(env *Env) { s0(env); s1(env); s2(env) }
	}
	if ex.Guard < 0 {
		return func(env *Env) {
			runBody(env)
			if env.taken >= 0 {
				if env.dup < 0 {
					env.dup = exitPC
				}
				return
			}
			env.taken = exitPC
		}
	}
	g := int(ex.Guard)
	want := !ex.GNeg
	bb, mask := int(ex.GIdx>>3), byte(1)<<(ex.GIdx&7)
	if profiling {
		return func(env *Env) {
			runBody(env)
			ok := (env.Regs[g].I != 0) == want
			env.Committed[exitPC] = ok
			if ok {
				env.Bits[bb] |= mask
				env.ncommit++
				if env.taken >= 0 {
					if env.dup < 0 {
						env.dup = exitPC
					}
					return
				}
				env.taken = exitPC
			}
		}
	}
	return func(env *Env) {
		runBody(env)
		if (env.Regs[g].I != 0) == want {
			env.Bits[bb] |= mask
			env.ncommit++
			if env.taken >= 0 {
				if env.dup < 0 {
					env.dup = exitPC
				}
				return
			}
			env.taken = exitPC
		}
	}
}
