package ncode

import (
	"specdis/internal/bcode"
)

// pair emits one closure for two adjacent unguarded instructions from the
// hot-pair catalog (see pairable). Both architectural writes happen in
// order, and the second operation reads its operands after the first one's
// result lands, so sequential semantics hold even when registers overlap.
// The one dataflow-aware combo is address arithmetic feeding a load: when
// the load's address register is exactly the sum just computed, the closure
// forwards the value instead of re-reading the register.
func (e *emitter) pair(pc int, profiling bool) step {
	in, nx := e.code[pc], e.code[pc+1]
	a1, b1, d1 := int(in.A), int(in.B), int(in.Dest)
	a2, b2, d2 := int(nx.A), int(nx.B), int(nx.Dest)

	switch in.Op {
	case bcode.Const:
		// Const → Const
		v1, v2 := e.consts[a1], e.consts[a2]
		return func(env *Env) { r := env.Regs; r[d1] = v1; r[d2] = v2 }
	case bcode.Move:
		// Move → Move
		return func(env *Env) { r := env.Regs; r[d1] = r[a1]; r[d2] = r[a2] }
	case bcode.Add, bcode.Sub:
		sub1 := in.Op == bcode.Sub
		if nx.Op == bcode.Load {
			return e.aluLoad(pc, sub1, profiling)
		}
		// {Add,Sub} → {Add,Sub,Mul}
		if sub1 {
			switch nx.Op {
			case bcode.Add:
				return func(env *Env) {
					r := env.Regs
					r[d1] = intV(r[a1].I - r[b1].I)
					r[d2] = intV(r[a2].I + r[b2].I)
				}
			case bcode.Sub:
				return func(env *Env) {
					r := env.Regs
					r[d1] = intV(r[a1].I - r[b1].I)
					r[d2] = intV(r[a2].I - r[b2].I)
				}
			case bcode.Mul:
				return func(env *Env) {
					r := env.Regs
					r[d1] = intV(r[a1].I - r[b1].I)
					r[d2] = intV(r[a2].I * r[b2].I)
				}
			default:
				// Uncatalogued combo: the panic below reports it.
			}
		}
		switch nx.Op {
		case bcode.Add:
			return func(env *Env) {
				r := env.Regs
				r[d1] = intV(r[a1].I + r[b1].I)
				r[d2] = intV(r[a2].I + r[b2].I)
			}
		case bcode.Sub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = intV(r[a1].I + r[b1].I)
				r[d2] = intV(r[a2].I - r[b2].I)
			}
		case bcode.Mul:
			return func(env *Env) {
				r := env.Regs
				r[d1] = intV(r[a1].I + r[b1].I)
				r[d2] = intV(r[a2].I * r[b2].I)
			}
		default:
			// Uncatalogued combo: the panic below reports it.
		}
	case bcode.Load:
		// Load → {Load, Add, Sub, FMul, FAdd, FSub}; the load's address is
		// sampled under profiling (the dependence profiler observes every
		// issued access). Each combo is written out inline — composing from
		// sub-closures would reintroduce the indirect call fusion removes.
		if profiling {
			switch nx.Op {
			case bcode.Load:
				return func(env *Env) {
					r := env.Regs
					hi := int64(len(env.Mem)) - 1
					addr := clamp(r[a1].I, hi)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					addr2 := clamp(r[a2].I, hi)
					env.Addrs[pc+1] = addr2
					r[d2] = env.Mem[addr2]
				}
			case bcode.Add:
				return func(env *Env) {
					r := env.Regs
					addr := clamp(r[a1].I, int64(len(env.Mem))-1)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					r[d2] = intV(r[a2].I + r[b2].I)
				}
			case bcode.Sub:
				return func(env *Env) {
					r := env.Regs
					addr := clamp(r[a1].I, int64(len(env.Mem))-1)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					r[d2] = intV(r[a2].I - r[b2].I)
				}
			case bcode.FMul:
				return func(env *Env) {
					r := env.Regs
					addr := clamp(r[a1].I, int64(len(env.Mem))-1)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					r[d2] = fltV(r[a2].F * r[b2].F)
				}
			case bcode.FAdd:
				return func(env *Env) {
					r := env.Regs
					addr := clamp(r[a1].I, int64(len(env.Mem))-1)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					r[d2] = fltV(r[a2].F + r[b2].F)
				}
			case bcode.FSub:
				return func(env *Env) {
					r := env.Regs
					addr := clamp(r[a1].I, int64(len(env.Mem))-1)
					env.Addrs[pc] = addr
					r[d1] = env.Mem[addr]
					r[d2] = fltV(r[a2].F - r[b2].F)
				}
			default:
				// Uncatalogued combo: the panic below reports it.
			}
			break
		}
		switch nx.Op {
		case bcode.Load:
			return func(env *Env) {
				r := env.Regs
				hi := int64(len(env.Mem)) - 1
				r[d1] = env.Mem[clamp(r[a1].I, hi)]
				r[d2] = env.Mem[clamp(r[a2].I, hi)]
			}
		case bcode.Add:
			return func(env *Env) {
				r := env.Regs
				r[d1] = env.Mem[clamp(r[a1].I, int64(len(env.Mem))-1)]
				r[d2] = intV(r[a2].I + r[b2].I)
			}
		case bcode.Sub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = env.Mem[clamp(r[a1].I, int64(len(env.Mem))-1)]
				r[d2] = intV(r[a2].I - r[b2].I)
			}
		case bcode.FMul:
			return func(env *Env) {
				r := env.Regs
				r[d1] = env.Mem[clamp(r[a1].I, int64(len(env.Mem))-1)]
				r[d2] = fltV(r[a2].F * r[b2].F)
			}
		case bcode.FAdd:
			return func(env *Env) {
				r := env.Regs
				r[d1] = env.Mem[clamp(r[a1].I, int64(len(env.Mem))-1)]
				r[d2] = fltV(r[a2].F + r[b2].F)
			}
		case bcode.FSub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = env.Mem[clamp(r[a1].I, int64(len(env.Mem))-1)]
				r[d2] = fltV(r[a2].F - r[b2].F)
			}
		default:
			// Uncatalogued combo: the panic below reports it.
		}
	case bcode.FMul:
		switch nx.Op {
		case bcode.FMul:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F * r[b1].F)
				r[d2] = fltV(r[a2].F * r[b2].F)
			}
		case bcode.FAdd:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F * r[b1].F)
				r[d2] = fltV(r[a2].F + r[b2].F)
			}
		case bcode.FSub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F * r[b1].F)
				r[d2] = fltV(r[a2].F - r[b2].F)
			}
		default:
			// Uncatalogued combo: the panic below reports it.
		}
	case bcode.FAdd:
		switch nx.Op {
		case bcode.FMul:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F + r[b1].F)
				r[d2] = fltV(r[a2].F * r[b2].F)
			}
		case bcode.FAdd:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F + r[b1].F)
				r[d2] = fltV(r[a2].F + r[b2].F)
			}
		case bcode.FSub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F + r[b1].F)
				r[d2] = fltV(r[a2].F - r[b2].F)
			}
		default:
			// Uncatalogued combo: the panic below reports it.
		}
	case bcode.FSub:
		switch nx.Op {
		case bcode.FMul:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F - r[b1].F)
				r[d2] = fltV(r[a2].F * r[b2].F)
			}
		case bcode.FAdd:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F - r[b1].F)
				r[d2] = fltV(r[a2].F + r[b2].F)
			}
		case bcode.FSub:
			return func(env *Env) {
				r := env.Regs
				r[d1] = fltV(r[a1].F - r[b1].F)
				r[d2] = fltV(r[a2].F - r[b2].F)
			}
		default:
			// Uncatalogued combo: the panic below reports it.
		}
	default:
		// Not a catalogued head: the panic below reports it.
	}
	panic("ncode: pair fusion planned for uncatalogued ops " +
		in.Op.String() + "/" + nx.Op.String())
}

// aluLoad emits the address-arithmetic-plus-load superinstruction. When the
// load addresses the sum just computed, the value is forwarded; otherwise
// the address register is read normally.
func (e *emitter) aluLoad(pc int, sub bool, profiling bool) step {
	in, ld := e.code[pc], e.code[pc+1]
	a1, b1, d1 := int(in.A), int(in.B), int(in.Dest)
	a2, d2 := int(ld.A), int(ld.Dest)
	ldPC := pc + 1
	if a2 == d1 {
		if profiling {
			return func(env *Env) {
				r := env.Regs
				v := r[a1].I + r[b1].I
				if sub {
					v = r[a1].I - r[b1].I
				}
				r[d1] = intV(v)
				addr := clamp(v, int64(len(env.Mem))-1)
				env.Addrs[ldPC] = addr
				r[d2] = env.Mem[addr]
			}
		}
		if sub {
			return func(env *Env) {
				r := env.Regs
				v := r[a1].I - r[b1].I
				r[d1] = intV(v)
				r[d2] = env.Mem[clamp(v, int64(len(env.Mem))-1)]
			}
		}
		return func(env *Env) {
			r := env.Regs
			v := r[a1].I + r[b1].I
			r[d1] = intV(v)
			r[d2] = env.Mem[clamp(v, int64(len(env.Mem))-1)]
		}
	}
	if profiling {
		return func(env *Env) {
			r := env.Regs
			if sub {
				r[d1] = intV(r[a1].I - r[b1].I)
			} else {
				r[d1] = intV(r[a1].I + r[b1].I)
			}
			addr := clamp(r[a2].I, int64(len(env.Mem))-1)
			env.Addrs[ldPC] = addr
			r[d2] = env.Mem[addr]
		}
	}
	if sub {
		return func(env *Env) {
			r := env.Regs
			r[d1] = intV(r[a1].I - r[b1].I)
			r[d2] = env.Mem[clamp(r[a2].I, int64(len(env.Mem))-1)]
		}
	}
	return func(env *Env) {
		r := env.Regs
		r[d1] = intV(r[a1].I + r[b1].I)
		r[d2] = env.Mem[clamp(r[a2].I, int64(len(env.Mem))-1)]
	}
}
