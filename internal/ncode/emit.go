package ncode

import (
	"math"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// emitter builds one closure slice over a bytecode program: a single forward
// pass that emits one pre-bound closure per surviving (unfused) instruction.
type emitter struct {
	code   []bcode.Instr
	consts []ir.Value
}

// emit builds the full step slice for one specialization. Execution is a
// tight branchless loop over the slice (Prog.Exec).
func (e *emitter) emit(plan []FuseKind, profiling bool) []step {
	steps := make([]step, 0, len(e.code))
	for pc := range e.code {
		var s step
		switch plan[pc] {
		case FuseConsumed:
			continue
		case FuseCmpExit:
			s = e.cmpExit(pc, profiling)
		case FuseConstAlu:
			s = e.constAlu(pc)
		case FusePair:
			s = e.pair(pc, profiling)
		case FuseWin3:
			s = e.window(pc, 3, profiling)
		case FuseWin4:
			s = e.window(pc, 4, profiling)
		default:
			s = e.one(pc, profiling)
		}
		if s != nil {
			steps = append(steps, s)
		}
	}
	return steps
}

// one emits the step for a single (unfused) instruction. Nops emit nothing.
func (e *emitter) one(pc int, profiling bool) step {
	in := e.code[pc]
	if in.Guard >= 0 {
		return e.guarded(in, pc, profiling)
	}
	a, b, d := int(in.A), int(in.B), int(in.Dest)
	switch in.Op {
	case bcode.Nop:
		return nil
	case bcode.Const:
		v := e.consts[a]
		return func(env *Env) { env.Regs[d] = v }
	case bcode.Move:
		return func(env *Env) { r := env.Regs; r[d] = r[a] }
	case bcode.Add:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I + r[b].I) }
	case bcode.Sub:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I - r[b].I) }
	case bcode.Mul:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I * r[b].I) }
	case bcode.Div:
		return func(env *Env) { r := env.Regs; r[d] = divV(r[a].I, r[b].I) }
	case bcode.Rem:
		return func(env *Env) { r := env.Regs; r[d] = remV(r[a].I, r[b].I) }
	case bcode.Neg:
		return func(env *Env) { r := env.Regs; r[d] = intV(-r[a].I) }
	case bcode.And:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I & r[b].I) }
	case bcode.Or:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I | r[b].I) }
	case bcode.Xor:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I ^ r[b].I) }
	case bcode.Not:
		return func(env *Env) { r := env.Regs; r[d] = intV(^r[a].I) }
	case bcode.Shl:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I << (uint64(r[b].I) & 63)) }
	case bcode.Shr:
		return func(env *Env) { r := env.Regs; r[d] = intV(r[a].I >> (uint64(r[b].I) & 63)) }
	case bcode.BNot:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I == 0) }
	case bcode.BAnd:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I != 0 && r[b].I != 0) }
	case bcode.BAndNot:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I != 0 && r[b].I == 0) }
	case bcode.CmpEQ:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I == r[b].I) }
	case bcode.CmpNE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I != r[b].I) }
	case bcode.CmpLT:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I < r[b].I) }
	case bcode.CmpLE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I <= r[b].I) }
	case bcode.CmpGT:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I > r[b].I) }
	case bcode.CmpGE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].I >= r[b].I) }
	case bcode.FAdd:
		return func(env *Env) { r := env.Regs; r[d] = fltV(r[a].F + r[b].F) }
	case bcode.FSub:
		return func(env *Env) { r := env.Regs; r[d] = fltV(r[a].F - r[b].F) }
	case bcode.FMul:
		return func(env *Env) { r := env.Regs; r[d] = fltV(r[a].F * r[b].F) }
	case bcode.FDiv:
		return func(env *Env) { r := env.Regs; r[d] = fltV(r[a].F / r[b].F) }
	case bcode.FNeg:
		return func(env *Env) { r := env.Regs; r[d] = fltV(-r[a].F) }
	case bcode.FCmpEQ:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F == r[b].F) }
	case bcode.FCmpNE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F != r[b].F) }
	case bcode.FCmpLT:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F < r[b].F) }
	case bcode.FCmpLE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F <= r[b].F) }
	case bcode.FCmpGT:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F > r[b].F) }
	case bcode.FCmpGE:
		return func(env *Env) { r := env.Regs; r[d] = b2i(r[a].F >= r[b].F) }
	case bcode.CvtIF:
		return func(env *Env) { r := env.Regs; r[d] = fltV(float64(r[a].I)) }
	case bcode.CvtFI:
		return func(env *Env) { r := env.Regs; r[d] = cvtFI(r[a].F) }
	case bcode.Sqrt:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Sqrt(r[a].F)) }
	case bcode.FAbs:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Abs(r[a].F)) }
	case bcode.Sin:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Sin(r[a].F)) }
	case bcode.Cos:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Cos(r[a].F)) }
	case bcode.Exp:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Exp(r[a].F)) }
	case bcode.Log:
		return func(env *Env) { r := env.Regs; r[d] = fltV(math.Log(r[a].F)) }
	case bcode.Load:
		if profiling {
			return func(env *Env) {
				addr := clamp(env.Regs[a].I, int64(len(env.Mem))-1)
				env.Addrs[pc] = addr
				env.Regs[d] = env.Mem[addr]
			}
		}
		return func(env *Env) {
			env.Regs[d] = env.Mem[clamp(env.Regs[a].I, int64(len(env.Mem))-1)]
		}
	case bcode.Store:
		if profiling {
			return func(env *Env) {
				addr := clamp(env.Regs[a].I, int64(len(env.Mem))-1)
				env.Addrs[pc] = addr
				env.Mem[addr] = env.Regs[b]
			}
		}
		return func(env *Env) {
			env.Mem[clamp(env.Regs[a].I, int64(len(env.Mem))-1)] = env.Regs[b]
		}
	case bcode.PrintI:
		return func(env *Env) { env.Print(env.Regs[a], false) }
	case bcode.PrintF:
		return func(env *Env) { env.Print(env.Regs[a], true) }
	case bcode.Exit:
		return func(env *Env) {
			if env.taken >= 0 {
				if env.dup < 0 {
					env.dup = pc
				}
				return
			}
			env.taken = pc
		}
	}
	// Unreachable: the switch covers the bytecode repertoire, and
	// bcode.Compile rejected everything else.
	panic("ncode: unhandled opcode " + in.Op.String())
}

// guarded emits one closure for a guarded instruction: guard polarity is
// pre-resolved into `want`, the commit-bit byte and mask are pre-bound, and
// the profiling chain additionally records the commit outcome (and, for
// memory ops, the speculative address even when squashed).
func (e *emitter) guarded(in bcode.Instr, pc int, profiling bool) step {
	g := int(in.Guard)
	want := !in.GNeg
	bb, mask := int(in.GIdx>>3), byte(1)<<(in.GIdx&7)
	a, b, d := int(in.A), int(in.B), int(in.Dest)

	switch in.Op {
	case bcode.Load:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				addr := clamp(r[a].I, int64(len(env.Mem))-1)
				env.Addrs[pc] = addr
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = env.Mem[addr]
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = env.Mem[clamp(r[a].I, int64(len(env.Mem))-1)]
			}
		}
	case bcode.Store:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				addr := clamp(r[a].I, int64(len(env.Mem))-1)
				env.Addrs[pc] = addr
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					env.Mem[addr] = r[b]
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				env.Mem[clamp(r[a].I, int64(len(env.Mem))-1)] = r[b]
			}
		}
	case bcode.PrintI, bcode.PrintF:
		isFloat := in.Op == bcode.PrintF
		if profiling {
			return func(env *Env) {
				ok := (env.Regs[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					env.Print(env.Regs[a], isFloat)
				}
			}
		}
		return func(env *Env) {
			if (env.Regs[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				env.Print(env.Regs[a], isFloat)
			}
		}
	case bcode.Exit:
		if profiling {
			return func(env *Env) {
				ok := (env.Regs[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					if env.taken >= 0 {
						if env.dup < 0 {
							env.dup = pc
						}
						return
					}
					env.taken = pc
				}
			}
		}
		return func(env *Env) {
			if (env.Regs[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				if env.taken >= 0 {
					if env.dup < 0 {
						env.dup = pc
					}
					return
				}
				env.taken = pc
			}
		}
	case bcode.Nop:
		// Only the guard bit is observable (a discarded guarded result).
		if profiling {
			return func(env *Env) {
				ok := (env.Regs[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
				}
			}
		}
		return func(env *Env) {
			if (env.Regs[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
			}
		}
	default:
		// Guarded pure ops: handled by the two stages below.
	}

	// Hot guarded pure ops get fully inline closures — speculative moves and
	// arithmetic are the bulk of a decision tree's guarded instructions, and
	// the generic tail below pays an indirect evaluator call per execution.
	switch in.Op {
	case bcode.Move:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = r[a]
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = r[a]
			}
		}
	case bcode.Add:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = intV(r[a].I + r[b].I)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = intV(r[a].I + r[b].I)
			}
		}
	case bcode.Sub:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = intV(r[a].I - r[b].I)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = intV(r[a].I - r[b].I)
			}
		}
	case bcode.Mul:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = intV(r[a].I * r[b].I)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = intV(r[a].I * r[b].I)
			}
		}
	case bcode.FAdd:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = fltV(r[a].F + r[b].F)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = fltV(r[a].F + r[b].F)
			}
		}
	case bcode.FSub:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = fltV(r[a].F - r[b].F)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = fltV(r[a].F - r[b].F)
			}
		}
	case bcode.FMul:
		if profiling {
			return func(env *Env) {
				r := env.Regs
				ok := (r[g].I != 0) == want
				env.Committed[pc] = ok
				if ok {
					env.Bits[bb] |= mask
					env.ncommit++
					r[d] = fltV(r[a].F * r[b].F)
				}
			}
		}
		return func(env *Env) {
			r := env.Regs
			if (r[g].I != 0) == want {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = fltV(r[a].F * r[b].F)
			}
		}
	default:
		// Cold guarded pure ops: the generic evaluator tail below.
	}

	// Guarded pure long tail: a captured evaluator computes the value only
	// when the guard commits (pure ops have no observable effect otherwise).
	var ev func(x, y ir.Value) ir.Value
	if in.Op == bcode.Const {
		v := e.consts[a]
		ev = func(x, y ir.Value) ir.Value { return v }
		a = g // Const's A is a pool index, not a register; don't read it
	} else {
		ev = evalFor(in.Op)
	}
	if b < 0 {
		b = a // one-operand forms: read a harmless in-range register
	}
	if profiling {
		return func(env *Env) {
			r := env.Regs
			ok := (r[g].I != 0) == want
			env.Committed[pc] = ok
			if ok {
				env.Bits[bb] |= mask
				env.ncommit++
				r[d] = ev(r[a], r[b])
			}
		}
	}
	return func(env *Env) {
		r := env.Regs
		if (r[g].I != 0) == want {
			env.Bits[bb] |= mask
			env.ncommit++
			r[d] = ev(r[a], r[b])
		}
	}
}

// cmpExit emits the compare+exit superinstruction: one closure computes the
// compare, writes the (observable) boolean register, and resolves the exit
// whose guard the compare feeds — commit bit, duplicate-exit detection and
// profiling commit sample included.
func (e *emitter) cmpExit(pc int, profiling bool) step {
	in, ex := e.code[pc], e.code[pc+1]
	cmp := cmpFor(in.Op)
	a, b, d := int(in.A), int(in.B), int(in.Dest)
	want := !ex.GNeg
	bb, mask := int(ex.GIdx>>3), byte(1)<<(ex.GIdx&7)
	exitPC := pc + 1
	if profiling {
		return func(env *Env) {
			r := env.Regs
			v := cmp(r[a], r[b])
			r[d] = b2i(v)
			ok := v == want
			env.Committed[exitPC] = ok
			if ok {
				env.Bits[bb] |= mask
				env.ncommit++
				if env.taken >= 0 {
					if env.dup < 0 {
						env.dup = exitPC
					}
					return
				}
				env.taken = exitPC
			}
		}
	}
	return func(env *Env) {
		r := env.Regs
		v := cmp(r[a], r[b])
		r[d] = b2i(v)
		if v == want {
			env.Bits[bb] |= mask
			env.ncommit++
			if env.taken >= 0 {
				if env.dup < 0 {
					env.dup = exitPC
				}
				return
			}
			env.taken = exitPC
		}
	}
}

// constAlu emits the const+arith superinstruction: the constant write (still
// observable) and the operation it feeds execute in one closure. The
// operation reads its operands after the constant lands, so sequential
// semantics hold even when registers overlap.
func (e *emitter) constAlu(pc int) step {
	in, alu := e.code[pc], e.code[pc+1]
	cv := e.consts[in.A]
	cd := int(in.Dest)
	a, b, d := int(alu.A), int(alu.B), int(alu.Dest)
	switch alu.Op {
	case bcode.Add:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I + r[b].I) }
	case bcode.Sub:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I - r[b].I) }
	case bcode.Mul:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I * r[b].I) }
	case bcode.And:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I & r[b].I) }
	case bcode.Or:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I | r[b].I) }
	case bcode.Xor:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I ^ r[b].I) }
	case bcode.Shl:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I << (uint64(r[b].I) & 63)) }
	case bcode.Shr:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = intV(r[a].I >> (uint64(r[b].I) & 63)) }
	case bcode.CmpEQ:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I == r[b].I) }
	case bcode.CmpNE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I != r[b].I) }
	case bcode.CmpLT:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I < r[b].I) }
	case bcode.CmpLE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I <= r[b].I) }
	case bcode.CmpGT:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I > r[b].I) }
	case bcode.CmpGE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].I >= r[b].I) }
	case bcode.FAdd:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = fltV(r[a].F + r[b].F) }
	case bcode.FSub:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = fltV(r[a].F - r[b].F) }
	case bcode.FMul:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = fltV(r[a].F * r[b].F) }
	case bcode.FDiv:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = fltV(r[a].F / r[b].F) }
	case bcode.FCmpEQ:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F == r[b].F) }
	case bcode.FCmpNE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F != r[b].F) }
	case bcode.FCmpLT:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F < r[b].F) }
	case bcode.FCmpLE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F <= r[b].F) }
	case bcode.FCmpGT:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F > r[b].F) }
	case bcode.FCmpGE:
		return func(env *Env) { r := env.Regs; r[cd] = cv; r[d] = b2i(r[a].F >= r[b].F) }
	default:
		panic("ncode: const+arith fusion planned for unfusable op " + alu.Op.String())
	}
}

// cmpFor returns the boolean evaluator of one compare opcode.
func cmpFor(op bcode.Op) func(x, y ir.Value) bool {
	switch op {
	case bcode.CmpEQ:
		return func(x, y ir.Value) bool { return x.I == y.I }
	case bcode.CmpNE:
		return func(x, y ir.Value) bool { return x.I != y.I }
	case bcode.CmpLT:
		return func(x, y ir.Value) bool { return x.I < y.I }
	case bcode.CmpLE:
		return func(x, y ir.Value) bool { return x.I <= y.I }
	case bcode.CmpGT:
		return func(x, y ir.Value) bool { return x.I > y.I }
	case bcode.CmpGE:
		return func(x, y ir.Value) bool { return x.I >= y.I }
	case bcode.FCmpEQ:
		return func(x, y ir.Value) bool { return x.F == y.F }
	case bcode.FCmpNE:
		return func(x, y ir.Value) bool { return x.F != y.F }
	case bcode.FCmpLT:
		return func(x, y ir.Value) bool { return x.F < y.F }
	case bcode.FCmpLE:
		return func(x, y ir.Value) bool { return x.F <= y.F }
	case bcode.FCmpGT:
		return func(x, y ir.Value) bool { return x.F > y.F }
	case bcode.FCmpGE:
		return func(x, y ir.Value) bool { return x.F >= y.F }
	default:
		panic("ncode: cmpFor on non-compare " + op.String())
	}
}

// evalFor returns the value evaluator of one pure opcode, used by the guarded
// long-tail path (hot unguarded ops are emitted inline in one).
func evalFor(op bcode.Op) func(x, y ir.Value) ir.Value {
	switch op {
	case bcode.Move:
		return func(x, y ir.Value) ir.Value { return x }
	case bcode.Add:
		return func(x, y ir.Value) ir.Value { return intV(x.I + y.I) }
	case bcode.Sub:
		return func(x, y ir.Value) ir.Value { return intV(x.I - y.I) }
	case bcode.Mul:
		return func(x, y ir.Value) ir.Value { return intV(x.I * y.I) }
	case bcode.Div:
		return func(x, y ir.Value) ir.Value { return divV(x.I, y.I) }
	case bcode.Rem:
		return func(x, y ir.Value) ir.Value { return remV(x.I, y.I) }
	case bcode.Neg:
		return func(x, y ir.Value) ir.Value { return intV(-x.I) }
	case bcode.And:
		return func(x, y ir.Value) ir.Value { return intV(x.I & y.I) }
	case bcode.Or:
		return func(x, y ir.Value) ir.Value { return intV(x.I | y.I) }
	case bcode.Xor:
		return func(x, y ir.Value) ir.Value { return intV(x.I ^ y.I) }
	case bcode.Not:
		return func(x, y ir.Value) ir.Value { return intV(^x.I) }
	case bcode.Shl:
		return func(x, y ir.Value) ir.Value { return intV(x.I << (uint64(y.I) & 63)) }
	case bcode.Shr:
		return func(x, y ir.Value) ir.Value { return intV(x.I >> (uint64(y.I) & 63)) }
	case bcode.BNot:
		return func(x, y ir.Value) ir.Value { return b2i(x.I == 0) }
	case bcode.BAnd:
		return func(x, y ir.Value) ir.Value { return b2i(x.I != 0 && y.I != 0) }
	case bcode.BAndNot:
		return func(x, y ir.Value) ir.Value { return b2i(x.I != 0 && y.I == 0) }
	case bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		cmp := cmpFor(op)
		return func(x, y ir.Value) ir.Value { return b2i(cmp(x, y)) }
	case bcode.FAdd:
		return func(x, y ir.Value) ir.Value { return fltV(x.F + y.F) }
	case bcode.FSub:
		return func(x, y ir.Value) ir.Value { return fltV(x.F - y.F) }
	case bcode.FMul:
		return func(x, y ir.Value) ir.Value { return fltV(x.F * y.F) }
	case bcode.FDiv:
		return func(x, y ir.Value) ir.Value { return fltV(x.F / y.F) }
	case bcode.FNeg:
		return func(x, y ir.Value) ir.Value { return fltV(-x.F) }
	case bcode.CvtIF:
		return func(x, y ir.Value) ir.Value { return fltV(float64(x.I)) }
	case bcode.CvtFI:
		return func(x, y ir.Value) ir.Value { return cvtFI(x.F) }
	case bcode.Sqrt:
		return func(x, y ir.Value) ir.Value { return fltV(math.Sqrt(x.F)) }
	case bcode.FAbs:
		return func(x, y ir.Value) ir.Value { return fltV(math.Abs(x.F)) }
	case bcode.Sin:
		return func(x, y ir.Value) ir.Value { return fltV(math.Sin(x.F)) }
	case bcode.Cos:
		return func(x, y ir.Value) ir.Value { return fltV(math.Cos(x.F)) }
	case bcode.Exp:
		return func(x, y ir.Value) ir.Value { return fltV(math.Exp(x.F)) }
	case bcode.Log:
		return func(x, y ir.Value) ir.Value { return fltV(math.Log(x.F)) }
	default:
		panic("ncode: evalFor on non-pure " + op.String())
	}
}

// clamp bounds a speculative address into the memory image (non-faulting
// memory: a garbage address from a squashed path reads or writes a real word
// instead of trapping).
func clamp(a, memHi int64) int64 {
	if a < 0 {
		return 0
	}
	if a > memHi {
		return memHi
	}
	return a
}

// divV and remV implement the non-trapping integer division semantics shared
// by all three engines: x/0 = 0, MinInt64/-1 = MinInt64, MinInt64%-1 = 0.
func divV(x, d int64) ir.Value {
	switch {
	case d == 0:
		return ir.Value{}
	case x == math.MinInt64 && d == -1:
		return intV(math.MinInt64)
	}
	return intV(x / d)
}

func remV(x, d int64) ir.Value {
	switch {
	case d == 0:
		return ir.Value{}
	case x == math.MinInt64 && d == -1:
		return intV(0)
	}
	return intV(x % d)
}

// intV, fltV, b2i and cvtFI mirror the reference interpreter's value
// constructors exactly (both views of the machine word are kept in sync).
func intV(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fltV(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

func b2i(b bool) ir.Value {
	if b {
		return ir.Value{I: 1, F: 1}
	}
	return ir.Value{}
}

func cvtFI(f float64) ir.Value {
	if math.IsNaN(f) {
		return ir.Value{}
	}
	if f > math.MaxInt64 {
		return intV(math.MaxInt64)
	}
	if f < math.MinInt64 {
		return intV(math.MinInt64)
	}
	return intV(int64(f))
}
