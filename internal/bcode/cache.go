package bcode

import (
	"container/list"
	"sync"
	"sync/atomic"

	"specdis/internal/ir"
)

// Counters accumulate compilation and cache statistics, shared across every
// cache a benchmark sweep creates (one counter set per exper.Runner). All
// fields are atomics; a Counters value must not be copied after first use.
//
// The counter set is shared with the native tier (internal/ncode), where
// Instrs counts emitted closure steps instead of instruction words.
type Counters struct {
	// Compiled counts trees lowered; Instrs their total instruction words
	// (bytecode) or closure steps (native code).
	Compiled, Instrs atomic.Int64
	// Hits counts Get calls served from the cache without compiling.
	Hits atomic.Int64
	// Steps, Fused and Windows are native-tier only: total closure steps
	// emitted, superinstructions fused, and wide (width ≥ 3) fusion windows
	// among them.
	Steps, Fused, Windows atomic.Int64
	// TierUps counts trees the simulator's adaptive tiering promoted from
	// the bytecode engine to the native tier after crossing the hot
	// threshold (sim.Runner.TierUp).
	TierUps atomic.Int64
	// Evictions counts entries a size-bounded cache dropped on capacity
	// (Cache.SetLimit); an evicted tree recompiles on its next execution.
	Evictions atomic.Int64
}

// Cache memoizes compiled trees by execution content (ir.AppendExecKey): two
// trees that execute identically — clones of one program handed to different
// benchmark cells, or the same source re-prepared under another
// disambiguator — share one compiled program no matter their identity or
// program position. Content addressing is also what makes the cache safe
// under transformation: a tree mutated after compilation keys differently
// and recompiles, instead of stale code mis-executing (the hazard the old
// PIdx-plus-pointer scheme guarded against by never hitting across clones at
// all).
//
// A cached Prog may consequently serve trees other than Prog.Tree. That is
// sound because the executor reads nothing tree-specific beyond the
// instruction stream: memory bounds come from the Env at run time, and the
// caller resolves the taken exit's payload, pricing and profiling tables
// from its own tree. Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	ctrs  *Counters
	back  Backing
	ents  map[string]*list.Element // nil Prog: compile declined; tree runs on the walker
	order *list.List               // front = most recently used (holds *cacheEnt)
	limit int                      // max entries; 0 = unbounded
	key   []byte                   // scratch for ir.AppendExecKey
}

// cacheEnt is one cached compilation, threaded through the LRU order list.
type cacheEnt struct {
	key  string
	prog *Prog
}

// Backing is a second-level compiled-program store behind the in-memory
// cache — the persistent artifact store (internal/store) in production. A
// loaded program is served exactly like an in-memory hit; compiled programs
// are offered to the backing for later processes. Implementations must be
// safe for concurrent use and must return only programs encoded from the
// same execution content as execKey (content addressing makes the key the
// whole contract). Load receives the requesting tree so the implementation
// can validate the decoded program against it (the persistent store runs
// the translation validator, internal/verify.CheckBCode, and turns a
// failed validation into a miss).
type Backing interface {
	// Load returns the program persisted under the exec key, or false.
	Load(t *ir.Tree, execKey []byte) (*Prog, bool)
	// Store persists a freshly compiled program under the exec key.
	Store(execKey []byte, p *Prog)
}

// NewCache returns an empty cache. ctrs may be nil.
func NewCache(ctrs *Counters) *Cache {
	return &Cache{ctrs: ctrs, ents: map[string]*list.Element{}, order: list.New()}
}

// SetBacking attaches a second-level store consulted on in-memory misses.
// Must be called before the cache is shared across goroutines.
func (c *Cache) SetBacking(b Backing) { c.back = b }

// SetLimit bounds the cache to n entries, evicting least-recently-used
// compilations over capacity (0 restores the unbounded default). Long-running
// multi-tenant services set a limit so one pathological tenant cannot grow
// the shared cache without bound; an evicted tree simply recompiles (or
// reloads from the backing store) on its next execution. Safe to call at any
// time, including while the cache is shared across goroutines.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// Len returns the number of cached compilations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ents)
}

// Get returns the tree's compiled program, compiling on first use of its
// execution content. A nil result means the tree is outside the bytecode
// repertoire and must run on the reference tree walker; that outcome is
// cached too.
func (c *Cache) Get(t *ir.Tree) *Prog {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.key = ir.AppendExecKey(c.key[:0], t)
	if el, ok := c.ents[string(c.key)]; ok {
		c.order.MoveToFront(el)
		if c.ctrs != nil {
			c.ctrs.Hits.Add(1)
		}
		return el.Value.(*cacheEnt).prog
	}
	if c.back != nil {
		if p, ok := c.back.Load(t, c.key); ok {
			// Bind the loaded instruction stream to the requesting tree —
			// the same aliasing an in-memory hit performs — and serve it as
			// a cache hit: nothing was compiled.
			p.Tree = t
			c.insertLocked(string(c.key), p)
			if c.ctrs != nil {
				c.ctrs.Hits.Add(1)
			}
			return p
		}
	}
	p := c.compile(t)
	c.insertLocked(string(c.key), p)
	if p != nil && c.back != nil {
		c.back.Store(c.key, p)
	}
	return p
}

// insertLocked records a compilation at the front of the LRU order, evicting
// over capacity. Caller holds the lock.
func (c *Cache) insertLocked(key string, p *Prog) {
	c.ents[key] = c.order.PushFront(&cacheEnt{key: key, prog: p})
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for len(c.ents) > c.limit {
		el := c.order.Back()
		if el == nil {
			return
		}
		c.order.Remove(el)
		delete(c.ents, el.Value.(*cacheEnt).key)
		if c.ctrs != nil {
			c.ctrs.Evictions.Add(1)
		}
	}
}

func (c *Cache) compile(t *ir.Tree) *Prog {
	p, err := Compile(t)
	if err != nil {
		return nil
	}
	if c.ctrs != nil {
		c.ctrs.Compiled.Add(1)
		c.ctrs.Instrs.Add(int64(len(p.Code)))
	}
	return p
}
