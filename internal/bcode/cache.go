package bcode

import (
	"sync"
	"sync/atomic"

	"specdis/internal/ir"
)

// Counters accumulate compilation and cache statistics, shared across every
// cache a benchmark sweep creates (one counter set per exper.Runner). All
// fields are atomics; a Counters value must not be copied after first use.
type Counters struct {
	// Compiled counts trees lowered to bytecode; Instrs their total
	// instruction words.
	Compiled, Instrs atomic.Int64
	// Hits counts Get calls served from the cache without compiling.
	Hits atomic.Int64
}

// Cache memoizes compiled trees by program-wide tree index (ir.Tree.PIdx),
// so each (tree, disambiguator) pair compiles exactly once no matter how
// many profiling, capture and measurement runs interpret it. Entries are
// validated against the tree pointer, so a PIdx collision from a different
// program recompiles instead of mis-executing.
//
// A cache must be created after the program's final op-level transformation:
// it cannot detect in-place mutation of a tree it already compiled (arc-only
// changes are fine — bytecode never reads arcs). Safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	ctrs *Counters
	ents []cacheEnt
}

type cacheEnt struct {
	tree *ir.Tree
	prog *Prog // nil if Compile failed (tree runs on the reference walker)
	done bool
}

// NewCache returns an empty cache. ctrs may be nil.
func NewCache(ctrs *Counters) *Cache { return &Cache{ctrs: ctrs} }

// Get returns the tree's compiled program, compiling on first use. A nil
// result means the tree is outside the bytecode repertoire and must run on
// the reference tree walker; that outcome is cached too.
func (c *Cache) Get(t *ir.Tree) *Prog {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := t.PIdx
	if i < 0 {
		return c.compile(t)
	}
	if i >= len(c.ents) {
		c.ents = append(c.ents, make([]cacheEnt, i+1-len(c.ents))...)
	}
	e := &c.ents[i]
	if e.done && e.tree == t {
		if c.ctrs != nil {
			c.ctrs.Hits.Add(1)
		}
		return e.prog
	}
	*e = cacheEnt{tree: t, prog: c.compile(t), done: true}
	return e.prog
}

func (c *Cache) compile(t *ir.Tree) *Prog {
	p, err := Compile(t)
	if err != nil {
		return nil
	}
	if c.ctrs != nil {
		c.ctrs.Compiled.Add(1)
		c.ctrs.Instrs.Add(int64(len(p.Code)))
	}
	return p
}
