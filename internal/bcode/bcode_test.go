package bcode_test

import (
	"strings"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// newTree returns an empty single-block tree in a fresh function.
func newTree() *ir.Tree {
	fn := &ir.Function{Name: "f"}
	tr := &ir.Tree{Fn: fn, Name: "f.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	return tr
}

// buildGuarded builds the shared fixture tree:
//
//	r0 = const 7
//	r1 = const 3
//	r2 = cmplt r1, r0        ; 3 < 7 -> 1
//	r3 = add r0, r1  ?r2     ; guarded, commits
//	r4 = sub r0, r1  ?!r2    ; guarded on the negation, squashed
//	store [r1] = r3  ?r2     ; guarded, commits
//	exit
func buildGuarded(t *testing.T) *ir.Tree {
	t.Helper()
	tr := newTree()
	fn := tr.Fn
	r0, r1, r2, r3, r4 := fn.NewReg(), fn.NewReg(), fn.NewReg(), fn.NewReg(), fn.NewReg()
	c0 := tr.NewOp(ir.OpConst, nil, r0)
	c0.Imm = ir.Value{I: 7, F: 7}
	c1 := tr.NewOp(ir.OpConst, nil, r1)
	c1.Imm = ir.Value{I: 3, F: 3}
	tr.NewOp(ir.OpCmpLT, []ir.Reg{r1, r0}, r2)
	add := tr.NewOp(ir.OpAdd, []ir.Reg{r0, r1}, r3)
	add.Guard = r2
	sub := tr.NewOp(ir.OpSub, []ir.Reg{r0, r1}, r4)
	sub.Guard, sub.GuardNeg = r2, true
	st := tr.NewOp(ir.OpStore, []ir.Reg{r1, r3}, ir.NoReg)
	st.Guard = r2
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	return tr
}

func TestCompileEncoding(t *testing.T) {
	tr := buildGuarded(t)
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != len(tr.Ops) {
		t.Fatalf("compiled %d instrs for %d ops", len(p.Code), len(tr.Ops))
	}
	// Instruction index must equal the source op's Seq: profiling tables and
	// completion-cycle plans are indexed by Seq and applied unchanged.
	for i, op := range tr.Ops {
		if op.Seq != i {
			t.Fatalf("fixture op %d has Seq %d", i, op.Seq)
		}
	}
	if p.Code[0].Op != bcode.Const || p.Code[1].Op != bcode.Const {
		t.Errorf("ops 0-1: got %v, %v, want const, const", p.Code[0].Op, p.Code[1].Op)
	}
	if n := len(p.Consts); n != 2 {
		t.Errorf("constant pool has %d entries, want 2", n)
	}
	if v := p.Consts[p.Code[0].A]; v.I != 7 {
		t.Errorf("const 0 pools %d, want 7", v.I)
	}
	// Guarded instructions get consecutive commit-bit slots in Seq order.
	add, sub, st := &p.Code[3], &p.Code[4], &p.Code[5]
	if add.Guard != 2 || add.GNeg || add.GIdx != 0 {
		t.Errorf("add guard encoding: %+v", *add)
	}
	if sub.Guard != 2 || !sub.GNeg || sub.GIdx != 1 {
		t.Errorf("sub guard encoding: %+v", *sub)
	}
	if st.Guard != 2 || st.GNeg || st.GIdx != 2 {
		t.Errorf("store guard encoding: %+v", *st)
	}
	if p.NumGuarded != 3 {
		t.Errorf("NumGuarded = %d, want 3", p.NumGuarded)
	}
	if ex := &p.Code[6]; ex.Op != bcode.Exit || ex.Guard != -1 {
		t.Errorf("exit encoding: %+v", *ex)
	}
}

func TestCompileDiscardedDest(t *testing.T) {
	tr := newTree()
	fn := tr.Fn
	r0 := fn.NewReg()
	c := tr.NewOp(ir.OpConst, nil, ir.NoReg) // result discarded
	c.Imm = ir.Value{I: 1, F: 1}
	tr.NewOp(ir.OpAdd, []ir.Reg{r0, r0}, ir.NoReg) // pure, discarded
	tr.NewOp(ir.OpExit, nil, ir.NoReg)
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Discarded pure results lower to Nop: no observable effect besides the
	// (absent) guard bit.
	if p.Code[0].Op != bcode.Nop || p.Code[1].Op != bcode.Nop {
		t.Errorf("discarded-dest ops lower to %v, %v, want nop, nop", p.Code[0].Op, p.Code[1].Op)
	}
}

func TestCompileRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func(tr *ir.Tree)
	}{
		{"add with one operand", func(tr *ir.Tree) {
			tr.NewOp(ir.OpAdd, []ir.Reg{tr.Fn.NewReg()}, tr.Fn.NewReg())
		}},
		{"load without destination", func(tr *ir.Tree) {
			tr.NewOp(ir.OpLoad, []ir.Reg{tr.Fn.NewReg()}, ir.NoReg)
		}},
		{"store without value operand", func(tr *ir.Tree) {
			tr.NewOp(ir.OpStore, []ir.Reg{tr.Fn.NewReg()}, ir.NoReg)
		}},
		{"print without operand", func(tr *ir.Tree) {
			tr.NewOp(ir.OpPrint, nil, ir.NoReg)
		}},
	}
	for _, c := range cases {
		tr := newTree()
		c.build(tr)
		if _, err := bcode.Compile(tr); err == nil {
			t.Errorf("%s: Compile accepted a malformed op", c.name)
		}
	}
}

func TestExecGuardsAndCommitBits(t *testing.T) {
	tr := buildGuarded(t)
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]ir.Value, tr.Fn.NumRegs)
	mem := make([]ir.Value, 8)
	bits := make([]byte, (p.NumGuarded+7)/8)
	env := &bcode.Env{Regs: regs, Mem: mem, Bits: bits}
	taken, dup, ncommit := p.Exec(env)
	if taken != 6 || dup != -1 {
		t.Fatalf("taken=%d dup=%d, want 6, -1", taken, dup)
	}
	// add and store commit (guard true), sub is squashed (negated guard):
	// bits 0 and 2 set, bit 1 clear.
	if bits[0] != 0b101 {
		t.Errorf("commit bits = %08b, want 101", bits[0])
	}
	if ncommit != 2 {
		t.Errorf("ncommit = %d, want 2", ncommit)
	}
	if regs[3].I != 10 {
		t.Errorf("guarded add wrote %d, want 10", regs[3].I)
	}
	if regs[4].I != 0 {
		t.Errorf("squashed sub wrote %d, want no write-back", regs[4].I)
	}
	if mem[3].I != 10 {
		t.Errorf("guarded store wrote mem[3]=%d, want 10", mem[3].I)
	}
}

func TestExecDuplicateExit(t *testing.T) {
	tr := newTree()
	tr.NewOp(ir.OpExit, nil, ir.NoReg).Exit = ir.ExitRet
	tr.NewOp(ir.OpExit, nil, ir.NoReg).Exit = ir.ExitRet
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	env := &bcode.Env{Regs: make([]ir.Value, 1), Mem: make([]ir.Value, 1), Bits: make([]byte, 1)}
	taken, dup, _ := p.Exec(env)
	if taken != 0 || dup != 1 {
		t.Errorf("taken=%d dup=%d, want 0, 1 (second committed exit reported)", taken, dup)
	}
}

func TestExecMemoryClamping(t *testing.T) {
	// load [r0] with r0 = -5 and 99: both clamp into the 8-word image.
	tr := newTree()
	fn := tr.Fn
	r0, r1 := fn.NewReg(), fn.NewReg()
	tr.NewOp(ir.OpLoad, []ir.Reg{r0}, r1)
	tr.NewOp(ir.OpExit, nil, ir.NoReg).Exit = ir.ExitRet
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]ir.Value, 8)
	mem[0] = ir.Value{I: 11, F: 11}
	mem[7] = ir.Value{I: 22, F: 22}
	for _, c := range []struct{ addr, want int64 }{{-5, 11}, {99, 22}, {3, 0}} {
		regs := make([]ir.Value, fn.NumRegs)
		regs[r0] = ir.Value{I: c.addr, F: float64(c.addr)}
		env := &bcode.Env{Regs: regs, Mem: mem, Bits: make([]byte, 1)}
		p.Exec(env)
		if regs[r1].I != c.want {
			t.Errorf("load [%d] = %d, want %d", c.addr, regs[r1].I, c.want)
		}
	}
}

func TestCacheReuse(t *testing.T) {
	var ctrs bcode.Counters
	c := bcode.NewCache(&ctrs)
	tr := buildGuarded(t)
	tr.PIdx = 0
	p1 := c.Get(tr)
	p2 := c.Get(tr)
	if p1 == nil || p1 != p2 {
		t.Fatalf("cache returned distinct programs for one tree")
	}
	if got := ctrs.Compiled.Load(); got != 1 {
		t.Errorf("compiled %d trees, want 1", got)
	}
	if got := ctrs.Hits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	// The cache is content-addressed: a clone of the tree (what every
	// benchmark cell's private ir.Program.Clone produces) executes
	// identically and must hit, regardless of identity or PIdx.
	tr2 := tr.Clone()
	tr2.PIdx = 17
	p3 := c.Get(tr2)
	if p3 != p1 {
		t.Errorf("identical clone missed the content-addressed cache")
	}
	if got := ctrs.Compiled.Load(); got != 1 {
		t.Errorf("compiled %d trees after clone lookup, want 1", got)
	}
	if got := ctrs.Hits.Load(); got != 2 {
		t.Errorf("cache hits after clone lookup = %d, want 2", got)
	}
	// A tree mutated after compilation keys differently and recompiles —
	// stale code must never serve changed content.
	tr2.Ops[0].Imm = ir.Value{I: 99, F: 99}
	p4 := c.Get(tr2)
	if p4 == nil || p4 == p1 {
		t.Errorf("mutated tree served the stale compiled program")
	}
	if got := ctrs.Compiled.Load(); got != 2 {
		t.Errorf("compiled %d trees after mutation, want 2", got)
	}
}

func TestCacheLimit(t *testing.T) {
	// distinctTree builds a tree whose exec key differs by the const value.
	distinctTree := func(v int64) *ir.Tree {
		tr := newTree()
		c := tr.NewOp(ir.OpConst, nil, tr.Fn.NewReg())
		c.Imm = ir.Value{I: v, F: float64(v)}
		ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
		ex.Exit = ir.ExitRet
		return tr
	}
	var ctrs bcode.Counters
	c := bcode.NewCache(&ctrs)
	c.SetLimit(2)
	a, b, d := distinctTree(1), distinctTree(2), distinctTree(3)
	c.Get(a)
	c.Get(b)
	c.Get(d) // over capacity: a (least recently used) is evicted
	if got := c.Len(); got != 2 {
		t.Fatalf("bounded cache holds %d entries, want 2", got)
	}
	if got := ctrs.Evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// b was used more recently than a, so it must still hit...
	c.Get(b)
	if got := ctrs.Hits.Load(); got != 1 {
		t.Errorf("retained entry missed: hits = %d, want 1", got)
	}
	// ...and the evicted a recompiles (b's hit refreshed it, so this
	// eviction drops d, the new least-recently-used entry).
	compiled := ctrs.Compiled.Load()
	c.Get(a)
	if got := ctrs.Compiled.Load(); got != compiled+1 {
		t.Errorf("evicted entry did not recompile: compiled = %d, want %d", got, compiled+1)
	}
	c.Get(d)
	if got := ctrs.Compiled.Load(); got != compiled+2 {
		t.Errorf("LRU refresh not honored: compiled = %d, want %d", got, compiled+2)
	}
	// Lifting the limit stops eviction: re-adding the evicted b grows the
	// cache past the old bound.
	c.SetLimit(0)
	evictions := ctrs.Evictions.Load()
	c.Get(b)
	if got := c.Len(); got != 3 {
		t.Errorf("unbounded cache holds %d entries, want 3", got)
	}
	if got := ctrs.Evictions.Load(); got != evictions {
		t.Errorf("unbounded cache evicted: %d -> %d", evictions, got)
	}
}

func TestCacheFallback(t *testing.T) {
	// A tree outside the repertoire caches its nil result too.
	tr := newTree()
	tr.NewOp(ir.OpAdd, []ir.Reg{tr.Fn.NewReg()}, tr.Fn.NewReg()) // malformed
	tr.PIdx = 0
	var ctrs bcode.Counters
	c := bcode.NewCache(&ctrs)
	if p := c.Get(tr); p != nil {
		t.Fatalf("malformed tree compiled to %v", p)
	}
	if p := c.Get(tr); p != nil {
		t.Fatalf("malformed tree compiled on second lookup")
	}
	if got := ctrs.Hits.Load(); got != 1 {
		t.Errorf("fallback lookup not cached: hits = %d, want 1", got)
	}
}

func TestDisassembly(t *testing.T) {
	tr := buildGuarded(t)
	p, err := bcode.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse the mnemonic column padding so expectations read naturally.
	dis := strings.Join(strings.Fields(p.String()), " ")
	for _, want := range []string{"const c0", "cmplt r1 r0", "add r0 r1 -> r3 ?r2 [bit 0]",
		"sub r0 r1 -> r4 ?!r2 [bit 1]", "store r1 r3 ?r2 [bit 2]", "exit"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, dis)
		}
	}
}
