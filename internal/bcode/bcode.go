// Package bcode lowers decision-tree IR into a flat register-machine
// bytecode and executes it with a tight dispatch loop.
//
// The tree-walking interpreter in internal/sim chases one *ir.Op pointer per
// dynamic operation, re-derives operand registers from an Args slice, and
// calls through a shared evaluator — fine as a reference semantics, but pure
// overhead on the simulation hot path. The bytecode engine pays those costs
// once, at compile time: each tree becomes one dense []Instr (one fixed-width
// instruction word per op, in Seq order, so instruction index == Seq), with
// operand register indices pre-resolved into the word, constants gathered
// into a pool, the guard register, polarity and commit-bit slot folded into
// the word, and specialized int/float opcodes so the executor's inner loop is
// a single `for { switch instr.Op }` that never inspects IR metadata.
//
// Execution semantics are exactly those of the tree walker (guarded
// write-back, clamped non-faulting memory, non-trapping integer division):
// the executor is byte-for-byte equivalent on output, commit bits, taken
// exits, and operation counts, which the differential fuzzer
// FuzzBytecodeVsTree (internal/disamb) and the semantics tests in
// internal/sim pin.
//
// Compile is deliberately strict: any op shape it does not recognize (wrong
// arity, missing destination, out-of-range register, too many guarded ops
// for the commit-bit field) yields an error, and callers fall back to the
// tree walker for that tree — the reference semantics, so a fallback can
// never change results, only speed.
package bcode

import (
	"fmt"
	"math"

	"specdis/internal/ir"
)

// Op is a bytecode opcode. The repertoire mirrors ir.OpKind but is already
// specialized: integer and floating-point forms are distinct opcodes, print
// formatting is folded into the opcode (PrintI/PrintF), and constants load
// from a pool.
type Op uint8

// Opcodes. Value-producing ops write Dest; all write-back (and the Store,
// Print and Exit side effects) is suppressed when the instruction's guard
// evaluates false.
const (
	Nop   Op = iota
	Const    // Dest = Consts[A]
	Move     // Dest = regs[A]

	// Integer ALU.
	Add // Dest = regs[A] + regs[B]
	Sub
	Mul
	Div // division by zero yields 0 (non-trapping machine)
	Rem
	Neg
	And
	Or
	Xor
	Not
	Shl
	Shr

	// Boolean/guard logic.
	BNot
	BAnd
	BAndNot

	// Integer compares (produce 0/1).
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Floating point.
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FCmpEQ
	FCmpNE
	FCmpLT
	FCmpLE
	FCmpGT
	FCmpGE

	// Conversions and FPU intrinsics.
	CvtIF
	CvtFI
	Sqrt
	FAbs
	Sin
	Cos
	Exp
	Log

	// Memory. Addresses clamp into the memory image (non-faulting loads).
	Load  // Dest = mem[clamp(regs[A])]
	Store // mem[clamp(regs[A])] = regs[B]

	// Output, with the format folded into the opcode.
	PrintI // print regs[A] as integer
	PrintF // print regs[A] as float

	// Exit: record this instruction's Seq as the taken exit. The exit
	// payload (kind, target, callee, arguments) stays on the source ir.Op;
	// the executor's caller resolves it once per tree execution.
	Exit

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Const: "const", Move: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Neg: "neg", And: "and", Or: "or", Xor: "xor", Not: "not",
	Shl: "shl", Shr: "shr",
	BNot: "bnot", BAnd: "band", BAndNot: "bandnot",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FCmpEQ: "fcmpeq", FCmpNE: "fcmpne", FCmpLT: "fcmplt",
	FCmpLE: "fcmple", FCmpGT: "fcmpgt", FCmpGE: "fcmpge",
	CvtIF: "cvtif", CvtFI: "cvtfi",
	Sqrt: "sqrt", FAbs: "fabs", Sin: "sin", Cos: "cos", Exp: "exp", Log: "log",
	Load: "load", Store: "store", PrintI: "printi", PrintF: "printf",
	Exit: "exit",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("bcop(%d)", int(o))
}

// Instr is one fixed-width instruction word: 20 bytes, laid out so the hot
// loop reads it from one or two cache lines' worth of contiguous code.
//
// Guard is the guard register (-1 = unguarded, always commits). For guarded
// instructions, GIdx is the commit-bit slot — the op's index among the
// tree's guarded ops in Seq order, matching the trace wire format — and GNeg
// the guard polarity.
type Instr struct {
	Op   Op
	GNeg bool
	GIdx uint16
	// Guard, A, B and Dest are pre-resolved register indices (A is the
	// constant-pool index for Const). -1 where unused.
	Guard int32
	A, B  int32
	Dest  int32
}

// Prog is one tree compiled to bytecode. Code parallels the tree's ops: the
// instruction at index i executes the op with Seq i, so profiling tables and
// completion-cycle plans indexed by Seq apply unchanged.
type Prog struct {
	Tree   *ir.Tree
	Code   []Instr
	Consts []ir.Value
	// NumGuarded is the number of guarded instructions (= commit-bit width).
	NumGuarded int
}

// String disassembles the program for debugging and documentation.
func (p *Prog) String() string {
	s := fmt.Sprintf("bcode %s: %d instrs, %d consts, %d guarded\n",
		p.Tree.Name, len(p.Code), len(p.Consts), p.NumGuarded)
	for i := range p.Code {
		in := &p.Code[i]
		s += fmt.Sprintf("  %3d: %-7s", i, in.Op)
		if in.Op == Const {
			s += fmt.Sprintf(" c%d", in.A)
		} else {
			for _, r := range []int32{in.A, in.B} {
				if r >= 0 {
					s += fmt.Sprintf(" r%d", r)
				}
			}
		}
		if in.Dest >= 0 {
			s += fmt.Sprintf(" -> r%d", in.Dest)
		}
		if in.Guard >= 0 {
			neg := ""
			if in.GNeg {
				neg = "!"
			}
			s += fmt.Sprintf(" ?%sr%d [bit %d]", neg, in.Guard, in.GIdx)
		}
		s += "\n"
	}
	return s
}

// pureSpec maps a pure ir.OpKind to its opcode and arity. Kinds that need
// bespoke lowering (Const, memory, print, exit, nop) are absent.
var pureSpec = map[ir.OpKind]struct {
	op    Op
	nargs int
}{
	ir.OpMove: {Move, 1},
	ir.OpAdd:  {Add, 2}, ir.OpSub: {Sub, 2}, ir.OpMul: {Mul, 2},
	ir.OpDiv: {Div, 2}, ir.OpRem: {Rem, 2}, ir.OpNeg: {Neg, 1},
	ir.OpAnd: {And, 2}, ir.OpOr: {Or, 2}, ir.OpXor: {Xor, 2},
	ir.OpNot: {Not, 1}, ir.OpShl: {Shl, 2}, ir.OpShr: {Shr, 2},
	ir.OpBNot: {BNot, 1}, ir.OpBAnd: {BAnd, 2}, ir.OpBAndNot: {BAndNot, 2},
	ir.OpCmpEQ: {CmpEQ, 2}, ir.OpCmpNE: {CmpNE, 2}, ir.OpCmpLT: {CmpLT, 2},
	ir.OpCmpLE: {CmpLE, 2}, ir.OpCmpGT: {CmpGT, 2}, ir.OpCmpGE: {CmpGE, 2},
	ir.OpFAdd: {FAdd, 2}, ir.OpFSub: {FSub, 2}, ir.OpFMul: {FMul, 2},
	ir.OpFDiv: {FDiv, 2}, ir.OpFNeg: {FNeg, 1},
	ir.OpFCmpEQ: {FCmpEQ, 2}, ir.OpFCmpNE: {FCmpNE, 2},
	ir.OpFCmpLT: {FCmpLT, 2}, ir.OpFCmpLE: {FCmpLE, 2},
	ir.OpFCmpGT: {FCmpGT, 2}, ir.OpFCmpGE: {FCmpGE, 2},
	ir.OpCvtIF: {CvtIF, 1}, ir.OpCvtFI: {CvtFI, 1},
	ir.OpSqrt: {Sqrt, 1}, ir.OpFAbs: {FAbs, 1}, ir.OpSin: {Sin, 1},
	ir.OpCos: {Cos, 1}, ir.OpExp: {Exp, 1}, ir.OpLog: {Log, 1},
}

// Compile lowers one decision tree to bytecode. It returns an error for any
// op shape outside the recognized repertoire; callers treat that as "run
// this tree on the reference tree walker" rather than a failure.
func Compile(t *ir.Tree) (*Prog, error) {
	p := &Prog{Tree: t, Code: make([]Instr, len(t.Ops))}
	gi := 0
	for i, op := range t.Ops {
		in := &p.Code[i]
		in.Guard, in.A, in.B, in.Dest = -1, -1, -1, -1
		if op.Guard != ir.NoReg {
			if op.Guard < 0 {
				return nil, fmt.Errorf("bcode: op %%%d has negative guard register %d", op.ID, op.Guard)
			}
			if gi > math.MaxUint16 {
				return nil, fmt.Errorf("bcode: tree %s has more than %d guarded ops", t.Name, math.MaxUint16)
			}
			in.Guard = int32(op.Guard)
			in.GNeg = op.GuardNeg
			in.GIdx = uint16(gi)
			gi++
		}

		argReg := func(k int) (int32, error) {
			if k >= len(op.Args) || op.Args[k] < 0 {
				return -1, fmt.Errorf("bcode: op %%%d (%s) lacks operand %d", op.ID, op.Kind, k)
			}
			return int32(op.Args[k]), nil
		}
		var err error
		switch op.Kind {
		case ir.OpNop:
			in.Op = Nop
		case ir.OpConst:
			if op.Dest == ir.NoReg {
				in.Op = Nop // result discarded: only the guard bit is observable
				break
			}
			in.Op = Const
			in.A = int32(len(p.Consts))
			p.Consts = append(p.Consts, op.Imm)
			in.Dest = int32(op.Dest)
		case ir.OpLoad:
			in.Op = Load
			if in.A, err = argReg(0); err != nil {
				return nil, err
			}
			if op.Dest == ir.NoReg {
				return nil, fmt.Errorf("bcode: load %%%d has no destination", op.ID)
			}
			in.Dest = int32(op.Dest)
		case ir.OpStore:
			in.Op = Store
			if in.A, err = argReg(0); err != nil {
				return nil, err
			}
			if in.B, err = argReg(1); err != nil {
				return nil, err
			}
		case ir.OpPrint:
			in.Op = PrintI
			if op.PrintFloat {
				in.Op = PrintF
			}
			if in.A, err = argReg(0); err != nil {
				return nil, err
			}
		case ir.OpExit:
			in.Op = Exit
		default:
			spec, known := pureSpec[op.Kind]
			if !known {
				return nil, fmt.Errorf("bcode: unhandled op kind %s", op.Kind)
			}
			if op.Dest == ir.NoReg {
				in.Op = Nop // pure result discarded: no observable effect
				break
			}
			if len(op.Args) != spec.nargs {
				return nil, fmt.Errorf("bcode: op %%%d (%s) has %d operands, want %d",
					op.ID, op.Kind, len(op.Args), spec.nargs)
			}
			in.Op = spec.op
			if in.A, err = argReg(0); err != nil {
				return nil, err
			}
			if spec.nargs == 2 {
				if in.B, err = argReg(1); err != nil {
					return nil, err
				}
			}
			in.Dest = int32(op.Dest)
		}
	}
	p.NumGuarded = gi
	return p, nil
}
