package bcode

import (
	"math"

	"specdis/internal/ir"
)

// Env is the machine state one tree execution reads and mutates. The
// executor touches nothing else, so the caller (internal/sim's Runner) keeps
// ownership of memory, output, pricing and trace recording.
type Env struct {
	// Regs is the current function invocation's register frame.
	Regs []ir.Value
	// Mem is the program's flat memory image.
	Mem []ir.Value
	// Bits receives the packed guard-commit bits (bit GIdx set iff the
	// guarded instruction committed), in the trace wire layout. The caller
	// zeroes it before each execution; it must hold NumGuarded bits.
	Bits []byte
	// Print emits one committed print op's value.
	Print func(v ir.Value, isFloat bool)

	// Profiling asks for the per-Seq commit and address tables used by
	// profiling runs: Committed[seq] for guarded instructions and
	// Addrs[seq] for memory instructions. Both are indexed by instruction
	// position (== ir.Op.Seq) and must cover the whole program.
	Profiling bool
	Committed []bool
	Addrs     []int64
}

// Exec runs the program over env and reports the taken exit's instruction
// index (-1 if no exit committed), the index of a second committed exit
// (-1 normally; execution stops there when it happens, mirroring the
// reference interpreter's error), and how many guarded instructions
// committed.
func (p *Prog) Exec(env *Env) (taken, dup int, ncommit int64) {
	code := p.Code
	regs := env.Regs
	mem := env.Mem
	bits := env.Bits
	consts := p.Consts
	memHi := int64(len(mem)) - 1
	profiling := env.Profiling
	taken, dup = -1, -1

	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		if g := in.Guard; g >= 0 {
			ok := (regs[g].I != 0) != in.GNeg
			if profiling {
				env.Committed[pc] = ok
			}
			if !ok {
				// Squashed: no architectural effect. Profiling still
				// samples the (speculatively computed) memory address, as
				// the dependence profiler observes every issued access.
				if profiling && (in.Op == Load || in.Op == Store) {
					env.specAddr(pc, regs[in.A].I, memHi, true)
				}
				continue
			}
			bits[in.GIdx>>3] |= 1 << (in.GIdx & 7)
			ncommit++
		}
		switch in.Op {
		case Nop:
		case Const:
			regs[in.Dest] = consts[in.A]
		case Move:
			regs[in.Dest] = regs[in.A]
		case Add:
			regs[in.Dest] = intV(regs[in.A].I + regs[in.B].I)
		case Sub:
			regs[in.Dest] = intV(regs[in.A].I - regs[in.B].I)
		case Mul:
			regs[in.Dest] = intV(regs[in.A].I * regs[in.B].I)
		case Div:
			x, d := regs[in.A].I, regs[in.B].I
			var v ir.Value
			switch {
			case d == 0:
			case x == math.MinInt64 && d == -1:
				v = intV(math.MinInt64)
			default:
				v = intV(x / d)
			}
			regs[in.Dest] = v
		case Rem:
			x, d := regs[in.A].I, regs[in.B].I
			var v ir.Value
			switch {
			case d == 0:
			case x == math.MinInt64 && d == -1:
				v = intV(0)
			default:
				v = intV(x % d)
			}
			regs[in.Dest] = v
		case Neg:
			regs[in.Dest] = intV(-regs[in.A].I)
		case And:
			regs[in.Dest] = intV(regs[in.A].I & regs[in.B].I)
		case Or:
			regs[in.Dest] = intV(regs[in.A].I | regs[in.B].I)
		case Xor:
			regs[in.Dest] = intV(regs[in.A].I ^ regs[in.B].I)
		case Not:
			regs[in.Dest] = intV(^regs[in.A].I)
		case Shl:
			regs[in.Dest] = intV(regs[in.A].I << (uint64(regs[in.B].I) & 63))
		case Shr:
			regs[in.Dest] = intV(regs[in.A].I >> (uint64(regs[in.B].I) & 63))
		case BNot:
			regs[in.Dest] = b2i(regs[in.A].I == 0)
		case BAnd:
			regs[in.Dest] = b2i(regs[in.A].I != 0 && regs[in.B].I != 0)
		case BAndNot:
			regs[in.Dest] = b2i(regs[in.A].I != 0 && regs[in.B].I == 0)
		case CmpEQ:
			regs[in.Dest] = b2i(regs[in.A].I == regs[in.B].I)
		case CmpNE:
			regs[in.Dest] = b2i(regs[in.A].I != regs[in.B].I)
		case CmpLT:
			regs[in.Dest] = b2i(regs[in.A].I < regs[in.B].I)
		case CmpLE:
			regs[in.Dest] = b2i(regs[in.A].I <= regs[in.B].I)
		case CmpGT:
			regs[in.Dest] = b2i(regs[in.A].I > regs[in.B].I)
		case CmpGE:
			regs[in.Dest] = b2i(regs[in.A].I >= regs[in.B].I)
		case FAdd:
			regs[in.Dest] = fltV(regs[in.A].F + regs[in.B].F)
		case FSub:
			regs[in.Dest] = fltV(regs[in.A].F - regs[in.B].F)
		case FMul:
			regs[in.Dest] = fltV(regs[in.A].F * regs[in.B].F)
		case FDiv:
			regs[in.Dest] = fltV(regs[in.A].F / regs[in.B].F)
		case FNeg:
			regs[in.Dest] = fltV(-regs[in.A].F)
		case FCmpEQ:
			regs[in.Dest] = b2i(regs[in.A].F == regs[in.B].F)
		case FCmpNE:
			regs[in.Dest] = b2i(regs[in.A].F != regs[in.B].F)
		case FCmpLT:
			regs[in.Dest] = b2i(regs[in.A].F < regs[in.B].F)
		case FCmpLE:
			regs[in.Dest] = b2i(regs[in.A].F <= regs[in.B].F)
		case FCmpGT:
			regs[in.Dest] = b2i(regs[in.A].F > regs[in.B].F)
		case FCmpGE:
			regs[in.Dest] = b2i(regs[in.A].F >= regs[in.B].F)
		case CvtIF:
			regs[in.Dest] = fltV(float64(regs[in.A].I))
		case CvtFI:
			regs[in.Dest] = cvtFI(regs[in.A].F)
		case Sqrt:
			regs[in.Dest] = fltV(math.Sqrt(regs[in.A].F))
		case FAbs:
			regs[in.Dest] = fltV(math.Abs(regs[in.A].F))
		case Sin:
			regs[in.Dest] = fltV(math.Sin(regs[in.A].F))
		case Cos:
			regs[in.Dest] = fltV(math.Cos(regs[in.A].F))
		case Exp:
			regs[in.Dest] = fltV(math.Exp(regs[in.A].F))
		case Log:
			regs[in.Dest] = fltV(math.Log(regs[in.A].F))
		case Load:
			regs[in.Dest] = mem[env.specAddr(pc, regs[in.A].I, memHi, profiling)]
		case Store:
			mem[env.specAddr(pc, regs[in.A].I, memHi, profiling)] = regs[in.B]
		case PrintI:
			env.Print(regs[in.A], false)
		case PrintF:
			env.Print(regs[in.A], true)
		case Exit:
			if taken >= 0 {
				dup = pc
				return
			}
			taken = pc
		}
	}
	return
}

// specAddr resolves one memory instruction's effective address: the
// speculative address is clamped into the memory image (non-faulting memory,
// so a garbage address from a squashed path reads or writes a real word
// instead of trapping) and, under profiling, recorded in the per-Seq address
// table — the dependence profiler observes every issued access, committed or
// squashed. Shared by the Load, Store and squashed-guard paths.
func (env *Env) specAddr(pc int, a, memHi int64, profiling bool) int64 {
	if a < 0 {
		a = 0
	} else if a > memHi {
		a = memHi
	}
	if profiling {
		env.Addrs[pc] = a
	}
	return a
}

// intV, fltV, b2i and cvtFI mirror the reference interpreter's value
// constructors exactly (both views of the machine word are kept in sync).
func intV(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fltV(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

func b2i(b bool) ir.Value {
	if b {
		return ir.Value{I: 1, F: 1}
	}
	return ir.Value{}
}

func cvtFI(f float64) ir.Value {
	if math.IsNaN(f) {
		return ir.Value{}
	}
	if f > math.MaxInt64 {
		return intV(math.MaxInt64)
	}
	if f < math.MinInt64 {
		return intV(math.MinInt64)
	}
	return intV(int64(f))
}
