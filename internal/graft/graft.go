// Package graft implements decision-tree grafting, the code-replication
// technique the paper's §7 names (after Labrousse & Slavenburg's LIFE work)
// as the way to expose more speculative-disambiguation opportunities:
// "the trees in integer programs are often too small to have pairs of
// ambiguous memory references. Enlarging trees through code replication
// techniques such as grafting should expose more opportunities."
//
// Grafting tail-duplicates a successor tree into a predecessor's exit: the
// successor's operations are copied under the exit's path condition, the
// exit is replaced by copies of the successor's exits, and memory-dependence
// arcs are rebuilt conservatively between the host's and the graft's memory
// operations (to be re-pruned by the static disambiguator). The successor
// tree itself remains for its other predecessors.
package graft

import (
	"specdis/internal/ir"
)

// Params bound the transformation.
type Params struct {
	// MaxGraftOps: successors larger than this are not grafted.
	MaxGraftOps int
	// MaxTreeOps: stop growing a host tree beyond this size.
	MaxTreeOps int
	// MinExecFraction: only graft exits taken at least this fraction of the
	// host's executions (profile-guided, like the paper's trace-driven use).
	MinExecFraction float64
}

// DefaultParams returns a conservative configuration.
func DefaultParams() Params {
	return Params{MaxGraftOps: 48, MaxTreeOps: 256, MinExecFraction: 0.4}
}

// Profile supplies exit probabilities (sim.Profile implements it).
type Profile interface {
	ExitProb(t *ir.Tree, e *ir.Op) float64
	TreeExecCount(t *ir.Tree) int64
}

// Result reports what was grafted.
type Result struct {
	Grafts   int
	AddedOps int
}

// Program grafts hot, small successors across every function of p.
// Each tree receives at most one graft per call; run it repeatedly for
// deeper growth.
func Program(p *ir.Program, prof Profile, params Params) *Result {
	res := &Result{}
	for _, name := range p.Order {
		fn := p.Funcs[name]
		for _, t := range fn.Trees {
			if prof.TreeExecCount(t) == 0 || t.Size() >= params.MaxTreeOps {
				continue
			}
			graftBest(fn, t, prof, params, res)
		}
	}
	return res
}

// graftBest grafts the hottest eligible exit of t, if any.
func graftBest(fn *ir.Function, t *ir.Tree, prof Profile, params Params, res *Result) {
	var best *ir.Op
	bestProb := params.MinExecFraction
	for _, ex := range t.Exits() {
		if ex.Exit != ir.ExitGoto {
			continue
		}
		target := fn.Trees[ex.Target]
		if !eligible(t, target, params) {
			continue
		}
		if p := prof.ExitProb(t, ex); p >= bestProb {
			best, bestProb = ex, p
		}
	}
	if best == nil {
		return
	}
	added := Apply(t, best)
	res.Grafts++
	res.AddedOps += added
}

// eligible reports whether target may be grafted into host.
func eligible(host, target *ir.Tree, params Params) bool {
	if target == host || target.Size() > params.MaxGraftOps {
		return false
	}
	if host.Size()+target.Size() > params.MaxTreeOps {
		return false
	}
	for _, ex := range target.Exits() {
		// Self-looping targets (loop headers) cannot be flattened into a
		// predecessor: the back edge would have nowhere to go.
		if ex.Exit == ir.ExitGoto && ex.Target == target.ID {
			return false
		}
	}
	return true
}

// Apply grafts the tree targeted by exit ex into t, replacing ex. It returns
// the number of operations added. The caller is responsible for re-running
// memory disambiguation over the grown tree (fresh arcs between host and
// graft are conservative).
func Apply(t *ir.Tree, ex *ir.Op) int {
	fn := t.Fn
	target := fn.Trees[ex.Target]

	// The graft executes under ex's path condition.
	hostGuard := guardState{reg: ex.Guard, neg: ex.GuardNeg}

	// Map target blocks into t: target's root becomes a child of ex's block.
	blockMap := make([]int, len(target.Blocks))
	for i, b := range target.Blocks {
		if b.Parent < 0 {
			blockMap[i] = t.NewBlock(ex.Block, hostGuard.reg, hostGuard.neg)
		} else {
			blockMap[i] = t.NewBlock(blockMap[b.Parent], b.Guard, b.Neg)
		}
	}

	// Copy the ops, composing guards for committing ops. Pure unguarded ops
	// stay speculative. Guard-combine ops are emitted inline, just before
	// their first consumer, so they always follow the copied definitions of
	// the registers they read.
	comb := &combiner{t: t, fn: fn}
	opMap := make(map[*ir.Op]*ir.Op, len(target.Ops))
	var copied []*ir.Op
	for _, op := range target.Ops {
		n := *op
		n.ID = t.AllocID()
		n.Args = append([]ir.Reg(nil), op.Args...)
		n.CallArg = append([]ir.Reg(nil), op.CallArg...)
		if op.Ref != nil {
			ref := *op.Ref
			n.Ref = &ref
		}
		n.Block = blockMap[op.Block]
		if op.Kind.HasSideEffect() || op.VarWrite || op.Guard != ir.NoReg {
			mark := len(comb.ops)
			g := comb.and(hostGuard, guardState{reg: op.Guard, neg: op.GuardNeg})
			copied = append(copied, comb.ops[mark:]...)
			n.Guard = g.reg
			n.GuardNeg = g.neg
		}
		opMap[op] = &n
		copied = append(copied, &n)
	}

	// Splice the graft in, replacing ex in place.
	pos := ex.Seq
	out := make([]*ir.Op, 0, len(t.Ops)+len(copied)-1)
	out = append(out, t.Ops[:pos]...)
	out = append(out, copied...)
	out = append(out, t.Ops[pos+1:]...)
	t.Ops = out
	t.Renumber()

	// Rebuild arcs: keep host arcs (minus any referencing ex — exits carry
	// none), remap the target's arcs onto the copies, and conservatively
	// cross host × graft memory references.
	for _, a := range target.Arcs {
		t.Arcs = append(t.Arcs, &ir.MemArc{
			From: opMap[a.From], To: opMap[a.To], Kind: a.Kind, Ambiguous: a.Ambiguous,
		})
	}
	graftedMem := map[*ir.Op]bool{}
	for _, op := range copied {
		if op.Kind.IsMem() {
			graftedMem[op] = true
		}
	}
	for _, u := range t.Ops {
		if !u.Kind.IsMem() || graftedMem[u] {
			continue
		}
		for _, v := range copied {
			if !v.Kind.IsMem() {
				continue
			}
			// Host op u precedes graft op v iff u was before the exit.
			from, to := u, v
			if u.Seq > v.Seq {
				from, to = v, u
			}
			var kind ir.DepKind
			switch {
			case from.Kind == ir.OpStore && to.Kind == ir.OpLoad:
				kind = ir.DepRAW
			case from.Kind == ir.OpLoad && to.Kind == ir.OpStore:
				kind = ir.DepWAR
			case from.Kind == ir.OpStore && to.Kind == ir.OpStore:
				kind = ir.DepWAW
			default:
				continue
			}
			t.Arcs = append(t.Arcs, &ir.MemArc{From: from, To: to, Kind: kind, Ambiguous: true})
		}
	}
	return len(copied) + len(comb.ops)
}

type guardState struct {
	reg ir.Reg
	neg bool
}

// combiner materializes guard conjunctions for the graft.
type combiner struct {
	t     *ir.Tree
	fn    *ir.Function
	ops   []*ir.Op
	not   map[ir.Reg]ir.Reg
	cache map[[4]int32]guardState
}

func (c *combiner) matNot(r ir.Reg) ir.Reg {
	if c.not == nil {
		c.not = map[ir.Reg]ir.Reg{}
	}
	if n, ok := c.not[r]; ok {
		return n
	}
	d := c.fn.NewReg()
	op := &ir.Op{ID: c.t.AllocID(), Kind: ir.OpBNot, Args: []ir.Reg{r}, Dest: d, Guard: ir.NoReg}
	c.ops = append(c.ops, op)
	c.not[r] = d
	return d
}

// and returns h ∧ g as a guard state, emitting ops as needed.
func (c *combiner) and(h, g guardState) guardState {
	if h.reg == ir.NoReg {
		return g
	}
	if g.reg == ir.NoReg {
		return h
	}
	if c.cache == nil {
		c.cache = map[[4]int32]guardState{}
	}
	key := [4]int32{int32(h.reg), b2i(h.neg), int32(g.reg), b2i(g.neg)}
	if v, ok := c.cache[key]; ok {
		return v
	}
	hr := h.reg
	if h.neg {
		hr = c.matNot(h.reg)
	}
	kind := ir.OpBAnd
	if g.neg {
		kind = ir.OpBAndNot
	}
	d := c.fn.NewReg()
	op := &ir.Op{ID: c.t.AllocID(), Kind: kind, Args: []ir.Reg{hr, g.reg}, Dest: d, Guard: ir.NoReg}
	c.ops = append(c.ops, op)
	out := guardState{reg: d}
	c.cache[key] = out
	return out
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
