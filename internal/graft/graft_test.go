package graft_test

import (
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/graft"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// profiled compiles and profiles a program.
func profiled(t *testing.T, src string) (*ir.Program, *sim.Profile, string) {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := sim.NewProfile()
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Prof: prof}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return prog, prof, res.Output
}

const joinHeavy = `
int a[16];
void main() {
	int s = 0;
	for (int i = 0; i < 32; i = i + 1) {
		if (i % 3 == 0) {
			s = s + a[i % 16];
		} else {
			s = s - 1;
		}
		a[(i * 5) % 16] = s;    // join block: its own tree before grafting
	}
	print(s);
}
`

func TestGraftPreservesSemantics(t *testing.T) {
	prog, prof, before := profiled(t, joinHeavy)
	res := graft.Program(prog, prof, graft.DefaultParams())
	if res.Grafts == 0 {
		t.Fatal("nothing grafted on a join-heavy program")
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("grafted program invalid: %v", err)
	}
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
	after, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if after.Output != before {
		t.Fatalf("grafting changed output: %q vs %q", after.Output, before)
	}
}

func TestGraftGrowsTrees(t *testing.T) {
	prog, prof, _ := profiled(t, joinHeavy)
	var maxBefore int
	for _, tr := range prog.Funcs["main"].Trees {
		if tr.Size() > maxBefore {
			maxBefore = tr.Size()
		}
	}
	res := graft.Program(prog, prof, graft.DefaultParams())
	var maxAfter int
	for _, tr := range prog.Funcs["main"].Trees {
		if tr.Size() > maxAfter {
			maxAfter = tr.Size()
		}
	}
	if maxAfter <= maxBefore {
		t.Fatalf("trees did not grow: %d -> %d (grafts %d)", maxBefore, maxAfter, res.Grafts)
	}
	if res.AddedOps <= 0 {
		t.Error("no ops added")
	}
}

func TestGraftWholeSuiteStaysCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	params := graft.DefaultParams()
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, prof, before := profiled(t, b.Source)
			graft.Program(prog, prof, params)
			if err := prog.Validate(); err != nil {
				t.Fatalf("invalid after grafting: %v", err)
			}
			r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
			after, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if after.Output != before {
				t.Fatal("grafting changed program output")
			}
		})
	}
}

// TestGraftedSpDPipeline runs the full §7 experiment: grafting before SpD
// must keep all pipelines in agreement and expose more (or equal) SpD
// opportunities on the tree-starved integer benchmarks.
func TestGraftedSpDPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gp := graft.DefaultParams()
	models := []machine.Model{machine.New(5, 2), machine.New(5, 6)}
	totalPlain, totalGrafted := 0, 0
	for _, name := range []string{"perm", "queen", "quick", "tree", "boolmin"} {
		b := bench.ByName(name)
		plain, err := disamb.Prepare(b.Source, disamb.Spec, 6, spd.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		grafted, err := disamb.PrepareOpts(b.Source, disamb.Options{
			Kind: disamb.Spec, MemLat: 6, SpD: spd.DefaultParams(),
			Graft: &gp, GraftRounds: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rp, err := disamb.Measure(plain, models)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := disamb.Measure(grafted, models)
		if err != nil {
			t.Fatalf("%s grafted: %v", name, err)
		}
		if rp.Output != rg.Output {
			t.Fatalf("%s: grafted pipeline changed output", name)
		}
		totalPlain += len(plain.SpD.Apps)
		totalGrafted += len(grafted.SpD.Apps)
		t.Logf("%s: grafts=%d, SpD applications %d -> %d, cycles@5FU/m6 %d -> %d",
			name, grafted.Grafts, len(plain.SpD.Apps), len(grafted.SpD.Apps),
			rp.Times[1], rg.Times[1])
	}
	if totalGrafted < totalPlain {
		t.Errorf("grafting reduced total SpD applications: %d -> %d", totalPlain, totalGrafted)
	}
}

func TestGraftSkipsLoopHeaders(t *testing.T) {
	// A self-looping tree must never be grafted into its predecessor.
	src := `
void main() {
	int s = 0;
	for (int i = 0; i < 5; i = i + 1) { s = s + i; }
	print(s);
}`
	prog, prof, _ := profiled(t, src)
	res := graft.Program(prog, prof, graft.DefaultParams())
	// Whatever happens, the program must stay valid and correct.
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid after grafting: %v (grafts %d)", err, res.Grafts)
	}
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != "10\n" {
		t.Fatalf("output %q", out.Output)
	}
}
