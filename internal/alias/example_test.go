package alias_test

import (
	"fmt"

	"specdis/internal/alias"
	"specdis/internal/ir"
)

// ExampleTest walks through the paper's Example 2-2: inside
// `for i = 1 to 100`, the pair a[2i] / a[i+4] aliases only at i = 4, so the
// static disambiguator must answer "maybe" — this is exactly the class of
// pair speculative disambiguation is built for. Narrowing the loop to start
// at 5 lets the Banerjee bounds disprove the dependence, and a[2i] vs
// a[2i+1] falls to the GCD test with no bounds at all.
func ExampleTest() {
	loop := ir.LoopInfo{Var: 1, Lo: 1, Hi: 100, Step: 1, BoundsKnown: true}
	ref := func(sub *ir.Affine, l ir.LoopInfo) *ir.MemRef {
		return &ir.MemRef{BaseKind: ir.BaseGlobal, BaseSym: "a", Sub: sub, Loops: []ir.LoopInfo{l}}
	}
	i := ir.VarAffine(1)

	store := ref(i.Scale(2), loop)              // a[2i]
	load := ref(i.Add(ir.ConstAffine(4)), loop) // a[i+4]
	fmt.Println("a[2i] vs a[i+4], i in [1,100]:", alias.Test(store, load))

	tight := ir.LoopInfo{Var: 1, Lo: 5, Hi: 100, Step: 1, BoundsKnown: true}
	fmt.Println("a[2i] vs a[i+4], i in [5,100]:", alias.Test(ref(i.Scale(2), tight), ref(i.Add(ir.ConstAffine(4)), tight)))

	odd := ref(i.Scale(2).Add(ir.ConstAffine(1)), loop) // a[2i+1]
	fmt.Println("a[2i] vs a[2i+1]:", alias.Test(store, odd))

	same := ref(i.Scale(2), loop)
	fmt.Println("a[2i] vs a[2i]:", alias.Test(store, same))
	// Output:
	// a[2i] vs a[i+4], i in [1,100]: maybe
	// a[2i] vs a[i+4], i in [5,100]: no
	// a[2i] vs a[2i+1]: no
	// a[2i] vs a[2i]: always
}
