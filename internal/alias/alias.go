// Package alias implements the static memory disambiguator: the GCD test and
// the Banerjee inequalities over affine subscripts (the paper's §6.1 STATIC
// configuration), plus distinct-base reasoning.
//
// Because decision trees execute one iteration of the enclosing loops at a
// time (cross-execution ordering is enforced by tree serialization), the
// dependence question for an arc is loop-independent: do the two references
// access the same address *within one execution of the tree*? Both
// references therefore see the same values of the enclosing induction
// variables, and the test reduces to deciding whether the subscript
// difference d = sub1 − sub2 can be zero, with induction variables ranging
// over their (exit-widened) bounds and loop-invariant opaque symbols ranging
// over all integers.
package alias

import "specdis/internal/ir"

// Verdict is the static disambiguator's answer for a reference pair.
type Verdict uint8

// Verdicts, mirroring §2.2 of the paper.
const (
	// VerdictNo: the references never alias; the arc can be removed.
	VerdictNo Verdict = iota
	// VerdictAlways: the references always alias (subscript difference is
	// identically zero); the arc is a definite dependence.
	VerdictAlways
	// VerdictMaybe: aliasing could not be disproved ("Yes at least once" and
	// "Unknown" both leave the arc in place, marked ambiguous).
	VerdictMaybe
)

func (v Verdict) String() string {
	switch v {
	case VerdictNo:
		return "no"
	case VerdictAlways:
		return "always"
	case VerdictMaybe:
		return "maybe"
	}
	return "verdict(?)"
}

// Test statically disambiguates a pair of references.
func Test(a, b *ir.MemRef) Verdict {
	if a == nil || b == nil {
		return VerdictMaybe
	}
	if a.DistinctBase(b) {
		return VerdictNo
	}
	if !a.SameBase(b) {
		return VerdictMaybe // param/param or param/global: caller may overlap them
	}
	if a.Sub == nil || b.Sub == nil {
		return VerdictMaybe
	}
	d := a.Sub.Sub(b.Sub)
	if d.IsConst() {
		if d.Const == 0 {
			return VerdictAlways
		}
		return VerdictNo
	}
	if gcdTest(d) == VerdictNo {
		return VerdictNo
	}
	return banerjeeTest(d, a, b)
}

// gcdTest checks whether gcd of the variable coefficients divides the
// constant term; if not, d = 0 has no integer solution at all.
func gcdTest(d *ir.Affine) Verdict {
	var g int64
	for _, t := range d.Terms {
		g = gcd(g, abs64(t.Coef))
	}
	if g != 0 && d.Const%g != 0 {
		return VerdictNo
	}
	return VerdictMaybe
}

// banerjeeTest bounds d over the known induction-variable ranges. If zero
// lies outside [min(d), max(d)], the references are independent. Variables
// without known bounds (opaque symbols, unbounded loops) leave the
// corresponding side unbounded and the test inconclusive.
func banerjeeTest(d *ir.Affine, a, b *ir.MemRef) Verdict {
	lo, hi := d.Const, d.Const
	for _, t := range d.Terms {
		info, ok := lookupLoop(t.Var, a, b)
		if !ok || !info.BoundsKnown {
			return VerdictMaybe
		}
		v1 := t.Coef * info.Lo
		v2 := t.Coef * info.Hi
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		lo += v1
		hi += v2
	}
	if lo > 0 || hi < 0 {
		return VerdictNo
	}
	return VerdictMaybe
}

func lookupLoop(v ir.LoopVar, refs ...*ir.MemRef) (ir.LoopInfo, bool) {
	for _, r := range refs {
		for _, l := range r.Loops {
			if l.Var == v {
				return l, true
			}
		}
	}
	return ir.LoopInfo{}, false
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Stats summarizes a static-disambiguation pass.
type Stats struct {
	Removed  int // arcs proved independent and deleted
	Definite int // arcs proved to always alias
	Kept     int // arcs left ambiguous
}

// ResolveTree runs the static disambiguator over a tree's arcs, removing
// proven-independent arcs and reclassifying proven-definite ones.
func ResolveTree(t *ir.Tree) Stats {
	var st Stats
	kept := t.Arcs[:0]
	for _, a := range t.Arcs {
		switch Test(a.From.Ref, a.To.Ref) {
		case VerdictNo:
			st.Removed++
		case VerdictAlways:
			a.Ambiguous = false
			st.Definite++
			kept = append(kept, a)
		default:
			st.Kept++
			kept = append(kept, a)
		}
	}
	t.Arcs = kept
	return st
}

// ResolveProgram runs ResolveTree over every tree.
func ResolveProgram(p *ir.Program) Stats {
	var st Stats
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			s := ResolveTree(t)
			st.Removed += s.Removed
			st.Definite += s.Definite
			st.Kept += s.Kept
		}
	}
	return st
}
