package alias

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specdis/internal/ir"
)

func ref(kind ir.BaseKind, sym string, sub *ir.Affine, loops ...ir.LoopInfo) *ir.MemRef {
	return &ir.MemRef{BaseKind: kind, BaseSym: sym, Sub: sub, Loops: loops}
}

func TestDistinctGlobalsNeverAlias(t *testing.T) {
	a := ref(ir.BaseGlobal, "a", ir.VarAffine(0))
	b := ref(ir.BaseGlobal, "b", ir.VarAffine(0))
	if got := Test(a, b); got != VerdictNo {
		t.Errorf("distinct globals: %v", got)
	}
}

func TestParamsMayAlias(t *testing.T) {
	x := ref(ir.BaseParam, "x", ir.ConstAffine(0))
	y := ref(ir.BaseParam, "y", ir.ConstAffine(0))
	g := ref(ir.BaseGlobal, "g", ir.ConstAffine(0))
	if Test(x, y) != VerdictMaybe {
		t.Error("distinct params must stay ambiguous")
	}
	if Test(x, g) != VerdictMaybe {
		t.Error("param vs global must stay ambiguous")
	}
}

func TestSameBaseConstants(t *testing.T) {
	a0 := ref(ir.BaseGlobal, "a", ir.ConstAffine(0))
	a0b := ref(ir.BaseGlobal, "a", ir.ConstAffine(0))
	a1 := ref(ir.BaseGlobal, "a", ir.ConstAffine(1))
	if Test(a0, a0b) != VerdictAlways {
		t.Error("identical constant subscripts must be definite")
	}
	if Test(a0, a1) != VerdictNo {
		t.Error("distinct constant subscripts must be independent")
	}
}

func TestSameParamAffine(t *testing.T) {
	// x[i] vs x[i+1] within one execution: never equal.
	i := ir.VarAffine(3)
	a := ref(ir.BaseParam, "x", i)
	b := ref(ir.BaseParam, "x", i.Add(ir.ConstAffine(1)))
	if Test(a, b) != VerdictNo {
		t.Error("x[i] vs x[i+1] must be independent")
	}
	// x[i] vs x[i]: always.
	if Test(a, ref(ir.BaseParam, "x", ir.VarAffine(3))) != VerdictAlways {
		t.Error("x[i] vs x[i] must be definite")
	}
}

func TestGCD(t *testing.T) {
	i := ir.LoopVar(1)
	// a[2i] vs a[2i+1]: difference -1 with gcd 0 over shared i... the terms
	// cancel leaving constant -1: independent.
	a := ref(ir.BaseGlobal, "a", ir.VarAffine(i).Scale(2))
	b := ref(ir.BaseGlobal, "a", ir.VarAffine(i).Scale(2).Add(ir.ConstAffine(1)))
	if Test(a, b) != VerdictNo {
		t.Error("a[2i] vs a[2i+1] must be independent")
	}
	// a[2i] vs a[4j+1]: gcd(2,4)=2 does not divide 1: independent even with
	// unknown bounds.
	j := ir.LoopVar(2)
	c := ref(ir.BaseGlobal, "a", ir.VarAffine(j).Scale(4).Add(ir.ConstAffine(1)))
	if Test(a, c) != VerdictNo {
		t.Error("GCD test failed to disprove")
	}
	// a[2i] vs a[4j]: gcd divides 0: maybe.
	d := ref(ir.BaseGlobal, "a", ir.VarAffine(j).Scale(4))
	if Test(a, d) != VerdictMaybe {
		t.Error("solvable diophantine should stay ambiguous")
	}
}

func TestBanerjeeBounds(t *testing.T) {
	// Example 2-2 of the paper: a[2i] vs a[i+4] with i in [1,100]:
	// d(i) = 2i - (i+4) = i - 4, zero at i=4 which is inside the range.
	loop := ir.LoopInfo{Var: 1, Lo: 1, Hi: 100, Step: 1, BoundsKnown: true}
	a := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Scale(2), loop)
	b := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Add(ir.ConstAffine(4)), loop)
	if Test(a, b) != VerdictMaybe {
		t.Error("example 2-2 pair must stay ambiguous (aliases at i=4)")
	}
	// With i in [5,100], i-4 is always positive: independent.
	loop5 := ir.LoopInfo{Var: 1, Lo: 5, Hi: 100, Step: 1, BoundsKnown: true}
	a5 := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Scale(2), loop5)
	b5 := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Add(ir.ConstAffine(4)), loop5)
	if Test(a5, b5) != VerdictNo {
		t.Error("Banerjee should disprove with bounds [5,100]")
	}
	// Unknown bounds: inconclusive.
	aU := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Scale(2))
	bU := ref(ir.BaseGlobal, "a", ir.VarAffine(1).Add(ir.ConstAffine(4)))
	if Test(aU, bU) != VerdictMaybe {
		t.Error("without bounds the pair must stay ambiguous")
	}
}

func TestOpaqueRefs(t *testing.T) {
	a := ref(ir.BaseGlobal, "a", nil) // non-affine subscript
	b := ref(ir.BaseGlobal, "a", ir.ConstAffine(0))
	if Test(a, b) != VerdictMaybe {
		t.Error("opaque subscript must stay ambiguous")
	}
	if Test(nil, b) != VerdictMaybe {
		t.Error("nil ref must stay ambiguous")
	}
	u := &ir.MemRef{BaseKind: ir.BaseUnknown}
	if Test(u, b) != VerdictMaybe {
		t.Error("unknown base must stay ambiguous")
	}
}

// TestSoundnessAgainstBruteForce: for random affine pairs over one bounded
// loop variable, a VerdictNo must mean the subscripts never collide at any
// in-range value, and VerdictAlways must mean they always do.
func TestSoundnessAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := r.Int63n(10)
		hi := lo + r.Int63n(30)
		loop := ir.LoopInfo{Var: 1, Lo: lo, Hi: hi, Step: 1, BoundsKnown: true}
		mk := func() *ir.Affine {
			return ir.VarAffine(1).Scale(r.Int63n(7) - 3).Add(ir.ConstAffine(r.Int63n(21) - 10))
		}
		s1, s2 := mk(), mk()
		a := ref(ir.BaseGlobal, "a", s1, loop)
		b := ref(ir.BaseGlobal, "a", s2, loop)
		verdict := Test(a, b)

		collides, always := false, true
		for i := lo; i <= hi; i++ {
			env := map[ir.LoopVar]int64{1: i}
			if s1.Eval(env) == s2.Eval(env) {
				collides = true
			} else {
				always = false
			}
		}
		switch verdict {
		case VerdictNo:
			return !collides
		case VerdictAlways:
			return always
		}
		return true // Maybe is always sound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveTree(t *testing.T) {
	fn := &ir.Function{Name: "rt"}
	tr := &ir.Tree{Fn: fn, Name: "rt.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	addr := fn.NewReg()
	val := fn.NewReg()

	mkMem := func(kind ir.OpKind, r *ir.MemRef) *ir.Op {
		var op *ir.Op
		if kind == ir.OpStore {
			op = tr.NewOp(ir.OpStore, []ir.Reg{addr, val}, ir.NoReg)
		} else {
			op = tr.NewOp(ir.OpLoad, []ir.Reg{addr}, fn.NewReg())
		}
		op.Ref = r
		return op
	}
	// store a[0]; load b[0] (distinct: removed); load a[0] (definite);
	// load x[?] param (kept ambiguous).
	mkMem(ir.OpStore, ref(ir.BaseGlobal, "a", ir.ConstAffine(0)))
	mkMem(ir.OpLoad, ref(ir.BaseGlobal, "b", ir.ConstAffine(0)))
	mkMem(ir.OpLoad, ref(ir.BaseGlobal, "a", ir.ConstAffine(0)))
	mkMem(ir.OpLoad, ref(ir.BaseParam, "x", ir.ConstAffine(0)))
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	tr.BuildMemArcs()
	if len(tr.Arcs) != 3 {
		t.Fatalf("expected 3 arcs, got %d", len(tr.Arcs))
	}
	st := ResolveTree(tr)
	if st.Removed != 1 || st.Definite != 1 || st.Kept != 1 {
		t.Fatalf("stats %+v", st)
	}
	for _, a := range tr.Arcs {
		if a.To.Ref.BaseSym == "a" && a.Ambiguous {
			t.Error("definite arc still ambiguous")
		}
		if a.To.Ref.BaseSym == "x" && !a.Ambiguous {
			t.Error("param arc must stay ambiguous")
		}
	}
}
