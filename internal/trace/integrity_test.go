package trace

import (
	"bytes"
	"errors"
	"testing"
)

// sealedTrace records a small but non-trivial stream and seals it.
func sealedTrace() *Trace {
	r := NewRecorder()
	r.Call(0)
	for i := 0; i < 100; i++ {
		r.Tree(3, 1, []byte{0b101})
	}
	r.Tree(7, 0, []byte{0xff, 0x01})
	r.Ret()
	return r.Finish(1000, 900)
}

func TestSealedTraceVerifies(t *testing.T) {
	tr := sealedTrace()
	if err := tr.Verify(); err != nil {
		t.Fatalf("fresh trace fails verification: %v", err)
	}
	if _, err := tr.Hist(); err != nil {
		t.Fatalf("fresh trace fails Hist: %v", err)
	}
	// The footer is invisible to payload accessors.
	if got := len(tr.data) - tr.Size(); got != footerSize {
		t.Fatalf("footer overhead = %d bytes, want %d", got, footerSize)
	}
}

func TestBitFlipDetected(t *testing.T) {
	for _, off := range []int{0, 1, 7, 1 << 20} {
		tr := sealedTrace()
		tr.FlipByte(off)
		err := tr.Verify()
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("FlipByte(%d): Verify = %v, want ErrChecksum", off, err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("integrity error does not wrap ErrCorrupt: %v", err)
		}
		if _, err := tr.Hist(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Hist on flipped trace = %v, want ErrCorrupt", err)
		}
		var ev Event
		if _, err := NewReader(tr).Next(&ev); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("NewReader on flipped trace decoded: %v", err)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	tr := sealedTrace()
	tr.Truncate(tr.Size() / 2)
	err := tr.Verify()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Verify on truncated trace = %v, want ErrTruncated", err)
	}
	if _, err := tr.Hist(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Hist on truncated trace = %v, want ErrCorrupt", err)
	}

	// Destroying the footer itself is also truncation.
	tr2 := sealedTrace()
	tr2.data = tr2.data[:len(tr2.data)-1]
	if err := tr2.Verify(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Verify with short footer = %v, want ErrTruncated", err)
	}
	tr3 := sealedTrace()
	tr3.data[len(tr3.data)-footerSize] ^= 0xFF // smash the magic
	if err := tr3.Verify(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Verify with bad magic = %v, want ErrTruncated", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := sealedTrace()
	cl := tr.Clone()
	if cl.Ops != tr.Ops || cl.Events != tr.Events || !bytes.Equal(cl.data, tr.data) {
		t.Fatal("clone differs from original")
	}
	cl.FlipByte(3)
	if err := tr.Verify(); err != nil {
		t.Fatalf("corrupting the clone damaged the original: %v", err)
	}
	if err := cl.Verify(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("clone corruption not detected: %v", err)
	}
	// The original still decodes after the clone was corrupted.
	if _, err := tr.Hist(); err != nil {
		t.Fatalf("original Hist after clone corruption: %v", err)
	}
}

func TestUnsealedTraceSkipsIntegrity(t *testing.T) {
	// Raw traces (tests, fuzzing) have no footer; Verify is trivially nil
	// and decoding is validated event by event as before.
	raw := &Trace{data: []byte{0x00, 0x00, 0x00}} // tree 0, exit 0, no bits
	if err := raw.Verify(); err != nil {
		t.Fatalf("unsealed Verify = %v, want nil", err)
	}
	h, err := raw.Hist()
	if err != nil || len(h.Entries) != 1 {
		t.Fatalf("unsealed Hist = %+v, %v", h, err)
	}
}

func TestEmptySealedTrace(t *testing.T) {
	tr := NewRecorder().Finish(0, 0)
	if err := tr.Verify(); err != nil {
		t.Fatalf("empty sealed trace fails verification: %v", err)
	}
	if tr.Size() != 0 {
		t.Fatalf("empty trace payload size = %d, want 0", tr.Size())
	}
}
