package trace

// Persistence codec: a self-contained encoding of a trace — the
// whole-execution totals followed by the event stream with its integrity
// footer — so traces can live in the on-disk artifact store
// (internal/store) and warm-start later sweeps without a capture run.

import (
	"encoding/binary"
	"fmt"
)

// Marshal returns a self-contained encoding of the trace: its totals,
// a sealed flag, and the event stream (including the integrity footer for
// sealed traces). The inverse of Unmarshal.
func (t *Trace) Marshal() []byte {
	buf := make([]byte, 0, len(t.data)+5*binary.MaxVarintLen64)
	buf = binary.AppendVarint(buf, t.Events)
	buf = binary.AppendVarint(buf, t.TreeExecs)
	buf = binary.AppendVarint(buf, t.Ops)
	buf = binary.AppendVarint(buf, t.Committed)
	if t.sealed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return append(buf, t.data...)
}

// Unmarshal reconstructs a trace from Marshal's encoding. A sealed trace is
// integrity-checked before it is returned, so corruption of the persisted
// bytes surfaces here as ErrTruncated/ErrChecksum (both wrapping
// ErrCorrupt), never as garbage cycle counts downstream.
func Unmarshal(data []byte) (*Trace, error) {
	t := &Trace{}
	for _, dst := range []*int64{&t.Events, &t.TreeExecs, &t.Ops, &t.Committed} {
		v, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad totals varint", ErrCorrupt)
		}
		if v < 0 {
			return nil, fmt.Errorf("%w: negative total %d", ErrCorrupt, v)
		}
		*dst = v
		data = data[n:]
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: missing sealed flag", ErrCorrupt)
	}
	t.sealed = data[0] != 0
	t.data = append([]byte(nil), data[1:]...)
	if err := t.Verify(); err != nil {
		return nil, err
	}
	return t, nil
}
