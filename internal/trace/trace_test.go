package trace

import (
	"bytes"
	"errors"
	"testing"
)

// readAll decodes every event of a trace, failing the test on any error.
func readAll(t *testing.T, tr *Trace) []Event {
	t.Helper()
	var evs []Event
	rd := NewReader(tr)
	var ev Event
	for {
		ok, err := rd.Next(&ev)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return evs
		}
		e := ev
		e.Bits = append([]byte(nil), ev.Bits...)
		evs = append(evs, e)
	}
}

func TestRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Call(0)
	r.Tree(3, 1, []byte{0b101})
	r.Tree(700, 0, nil)
	r.Call(129) // multi-byte header
	r.Tree(2, 260, []byte{0xff, 0xff, 0xff, 0x01})
	r.Ret()
	r.Ret()
	tr := r.Finish(42, 40)

	if tr.Ops != 42 || tr.Committed != 40 {
		t.Fatalf("totals = (%d, %d), want (42, 40)", tr.Ops, tr.Committed)
	}
	if tr.Events != 7 || tr.TreeExecs != 3 {
		t.Fatalf("Events, TreeExecs = %d, %d, want 7, 3", tr.Events, tr.TreeExecs)
	}
	want := []Event{
		{Kind: KindCall, Idx: 0, Count: 1},
		{Kind: KindTree, Idx: 3, Exit: 1, Count: 1, Bits: []byte{0b101}},
		{Kind: KindTree, Idx: 700, Exit: 0, Count: 1, Bits: []byte{}},
		{Kind: KindCall, Idx: 129, Count: 1},
		{Kind: KindTree, Idx: 2, Exit: 260, Count: 1, Bits: []byte{0xff, 0xff, 0xff, 0x01}},
		{Kind: KindRet, Count: 1},
		{Kind: KindRet, Count: 1},
	}
	got := readAll(t, tr)
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.Idx != w.Idx || g.Exit != w.Exit || g.Count != w.Count || !bytes.Equal(g.Bits, w.Bits) {
			t.Errorf("event %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := NewRecorder().Finish(0, 0)
	if tr.Size() != 0 || tr.Events != 0 {
		t.Fatalf("empty trace has %d bytes, %d events", tr.Size(), tr.Events)
	}
	if evs := readAll(t, tr); len(evs) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(evs))
	}
	h, err := tr.Hist()
	if err != nil || len(h.Entries) != 0 || h.Calls != 0 || h.MaxFn != -1 {
		t.Fatalf("empty hist = %+v, %v", h, err)
	}
}

// TestRunLengthMerging checks that consecutive identical tree executions
// collapse into one tree event plus one repeat event, that a differing event
// breaks the run, and that readers fold the run back into Count.
func TestRunLengthMerging(t *testing.T) {
	r := NewRecorder()
	bits := []byte{0b11}
	for i := 0; i < 1000; i++ {
		r.Tree(5, 0, bits)
	}
	r.Tree(5, 1, bits) // different exit: new run
	r.Tree(5, 1, bits)
	r.Tree(5, 1, []byte{0b01}) // different bits: new run
	tr := r.Finish(0, 0)

	if tr.Events != 1003 || tr.TreeExecs != 1003 {
		t.Fatalf("Events, TreeExecs = %d, %d, want 1003, 1003", tr.Events, tr.TreeExecs)
	}
	// 1000 executions must cost far less than one byte each.
	if tr.Size() > 32 {
		t.Fatalf("RLE failed: %d bytes for 1003 executions", tr.Size())
	}
	evs := readAll(t, tr)
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	if evs[0].Count != 1000 || evs[1].Count != 2 || evs[2].Count != 1 {
		t.Fatalf("counts = %d, %d, %d, want 1000, 2, 1", evs[0].Count, evs[1].Count, evs[2].Count)
	}
}

// TestRecorderReusesBitsBuffer checks Tree copies bits: mutating the caller's
// buffer after the call must not corrupt the pending run.
func TestRecorderReusesBitsBuffer(t *testing.T) {
	r := NewRecorder()
	buf := []byte{0b1}
	r.Tree(0, 0, buf)
	buf[0] = 0b0
	r.Tree(0, 0, buf)
	evs := readAll(t, r.Finish(0, 0))
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2 (runs must not merge)", len(evs))
	}
	if evs[0].Bits[0] != 0b1 || evs[1].Bits[0] != 0b0 {
		t.Fatalf("bits = %b, %b, want 1, 0", evs[0].Bits[0], evs[1].Bits[0])
	}
}

func TestHist(t *testing.T) {
	r := NewRecorder()
	r.Call(2)
	for i := 0; i < 10; i++ {
		r.Tree(1, 0, []byte{0b1})
	}
	r.Tree(4, 1, nil)
	r.Call(7)
	for i := 0; i < 5; i++ {
		r.Tree(1, 0, []byte{0b1}) // same pattern, non-consecutive: must merge
	}
	r.Tree(1, 0, []byte{0b0}) // same tree+exit, different bits: distinct
	r.Ret()
	r.Ret()
	tr := r.Finish(0, 0)

	h, err := tr.Hist()
	if err != nil {
		t.Fatal(err)
	}
	if h.Calls != 2 || h.MaxFn != 7 {
		t.Fatalf("Calls, MaxFn = %d, %d, want 2, 7", h.Calls, h.MaxFn)
	}
	want := []HistEntry{
		{Idx: 1, Exit: 0, Bits: []byte{0b1}, Count: 15},
		{Idx: 4, Exit: 1, Bits: []byte{}, Count: 1},
		{Idx: 1, Exit: 0, Bits: []byte{0b0}, Count: 1},
	}
	if len(h.Entries) != len(want) {
		t.Fatalf("%d entries, want %d: %+v", len(h.Entries), len(want), h.Entries)
	}
	for i, w := range want {
		g := h.Entries[i]
		if g.Idx != w.Idx || g.Exit != w.Exit || g.Count != w.Count || !bytes.Equal(g.Bits, w.Bits) {
			t.Errorf("entry %d = %+v, want %+v", i, g, w)
		}
	}
	// Cached: same pointer on second call.
	h2, err := tr.Hist()
	if err != nil || h2 != h {
		t.Fatalf("Hist not cached: %p vs %p (%v)", h2, h, err)
	}
}

// TestCorruptStreams feeds malformed encodings to the reader and the
// histogram builder: every one must return an error wrapping ErrCorrupt, and
// none may panic or loop.
func TestCorruptStreams(t *testing.T) {
	cases := map[string][]byte{
		"truncated header varint":     {0x80},
		"missing exit":                {0x00},
		"truncated exit varint":       {0x00, 0x80},
		"missing bits length":         {0x00, 0x01},
		"bits length beyond stream":   {0x00, 0x01, 0x05, 0xff},
		"huge bits length":            {0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"ret with payload":            {0x06},
		"leading repeat":              {0x03},
		"repeat after call":           {0x05, 0x03},
		"repeat after ret":            {0x02, 0x03},
		"tree index out of int range": {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, // header 1<<42: kind tree, payload 1<<40
		"varint overflow":             {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			rd := NewBytesReader(data)
			var ev Event
			for i := 0; ; i++ {
				ok, err := rd.Next(&ev)
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("error does not wrap ErrCorrupt: %v", err)
					}
					// Errors are sticky.
					if _, err2 := rd.Next(&ev); err2 == nil {
						t.Fatal("error was not sticky")
					}
					break
				}
				if !ok {
					t.Fatal("stream decoded cleanly, want ErrCorrupt")
				}
				if i > len(data) {
					t.Fatal("reader yielded more events than stream bytes")
				}
			}
			if _, err := (&Trace{data: data}).Hist(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Hist error = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestTruncatedAfterCompleteEvent checks the reader yields a complete tree
// event whose trailing repeat peek hits the truncation, then errors on the
// following call.
func TestTruncatedAfterCompleteEvent(t *testing.T) {
	r := NewRecorder()
	r.Tree(1, 0, []byte{0b1})
	tr := r.Finish(0, 0)
	data := append(append([]byte(nil), tr.Bytes()...), 0x80) // dangling varint byte

	rd := NewBytesReader(data)
	var ev Event
	ok, err := rd.Next(&ev)
	if !ok || err != nil {
		t.Fatalf("first Next = %v, %v, want complete tree event", ok, err)
	}
	if ev.Kind != KindTree || ev.Idx != 1 || ev.Count != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if _, err := rd.Next(&ev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("second Next error = %v, want ErrCorrupt", err)
	}
}

func TestRepeatRunsFold(t *testing.T) {
	// Hand-encode tree event + two consecutive repeat events (a recorder
	// never emits two, but readers must fold any run).
	data := []byte{
		0x00, 0x00, 0x00, // tree 0, exit 0, no bits
		1<<2 | 3, // repeat +1
		2<<2 | 3, // repeat +2
	}
	rd := NewBytesReader(data)
	var ev Event
	ok, err := rd.Next(&ev)
	if !ok || err != nil {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	if ev.Count != 4 {
		t.Fatalf("Count = %d, want 4", ev.Count)
	}
	if ok, err := rd.Next(&ev); ok || err != nil {
		t.Fatalf("trailing Next = %v, %v, want clean EOF", ok, err)
	}
}

func TestRecorderPanicsOnNegative(t *testing.T) {
	for name, fn := range map[string]func(r *Recorder){
		"tree": func(r *Recorder) { r.Tree(-1, 0, nil) },
		"exit": func(r *Recorder) { r.Tree(0, -1, nil) },
		"call": func(r *Recorder) { r.Call(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on negative index")
				}
			}()
			fn(NewRecorder())
		})
	}
}
