package trace

import "testing"

// synthTrace drives rec with a synthetic but realistic event mix: nested
// calls, loopy runs of identical tree executions, and pattern changes.
// Returns the number of logical events recorded.
func synthTrace(rec *Recorder) int64 {
	var n int64
	bits := []byte{0, 0}
	for f := 0; f < 4; f++ {
		rec.Call(f)
		n++
		for loop := 0; loop < 50; loop++ {
			bits[0] = byte(loop * 7)
			bits[1] = byte(loop >> 3)
			for iter := 0; iter < 40; iter++ {
				rec.Tree(f*10+loop%10, loop%3, bits)
				n++
			}
		}
		rec.Ret()
		n++
	}
	return n
}

// BenchmarkTraceRecord times the recording hot path: the per-event cost a
// profiling interpretation pays to capture a trace.
func BenchmarkTraceRecord(b *testing.B) {
	events := synthTrace(NewRecorder())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := NewRecorder()
		synthTrace(rec)
		tr := rec.Finish(0, 0)
		if tr.Events != events {
			b.Fatalf("recorded %d events, want %d", tr.Events, events)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

// BenchmarkTraceReplay times the trace side of replay: streaming every
// event of a recorded trace back out of the wire format.
func BenchmarkTraceReplay(b *testing.B) {
	rec := NewRecorder()
	synthTrace(rec)
	tr := rec.Finish(0, 0)
	b.SetBytes(int64(tr.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(tr)
		var ev Event
		var n int64
		for {
			ok, err := rd.Next(&ev)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n += ev.Count
		}
		if n != tr.Events {
			b.Fatalf("decoded %d events, want %d", n, tr.Events)
		}
	}
}

// BenchmarkTraceHist times histogram aggregation — the once-per-trace cost
// replay pricing amortizes across every machine model and pipeline sharing
// the trace.
func BenchmarkTraceHist(b *testing.B) {
	rec := NewRecorder()
	synthTrace(rec)
	tr := rec.Finish(0, 0)
	b.SetBytes(int64(tr.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := buildHist(tr.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		if len(h.Entries) == 0 {
			b.Fatal("empty histogram")
		}
	}
}
