// Package trace defines a compact execution-trace format for decision-tree
// programs: the exact information cycle pricing consumes from an
// interpretation — which tree executed, which exit it took, and which guarded
// operations committed — plus call framing, and nothing else.
//
// A simulator records one trace per program interpretation; any number of
// machine models can then be priced by replaying the trace against their
// schedules, without evaluating a single operand (see sim.Replayer). The
// format is the classic trace-driven-simulation split of a functional pass
// from the timing passes it feeds.
//
// # Wire format
//
// A trace is a stream of varint-encoded events (encoding/binary unsigned
// varints). Every event starts with a header varint h whose low two bits are
// the event kind and whose remaining bits are the kind's payload:
//
//	kind 0 (tree)   payload = tree PIdx; followed by the taken exit index
//	                (varint), the number of guard-commit-bit bytes (varint),
//	                and that many raw bytes. Bit k (byte k/8, bit k%8) is the
//	                commit bit of the tree's k-th guarded op in Seq order.
//	kind 1 (call)   payload = callee's function index in Program.Order.
//	kind 2 (ret)    payload must be zero.
//	kind 3 (repeat) payload = n: the immediately preceding tree event
//	                executed n additional times (loop framing). Recorders
//	                emit at most one repeat per tree event; readers fold any
//	                run of them into the event's Count.
//
// Consecutive identical tree executions — a loop body whose guards resolve
// the same way every iteration, the common case — therefore cost one tree
// event plus one repeat event regardless of trip count.
package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
)

// Kind classifies a decoded event.
type Kind uint8

// Event kinds. Repeat events are folded into KindTree events by the Reader
// and never surface.
const (
	KindTree Kind = iota
	KindCall
	KindRet
)

// Wire-format kind codes (low two bits of an event header).
const (
	wireTree   = 0
	wireCall   = 1
	wireRet    = 2
	wireRepeat = 3
)

func (k Kind) String() string {
	switch k {
	case KindTree:
		return "tree"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Trace is one recorded interpretation: the encoded event stream plus the
// run's whole-execution totals, which replay reports without re-deriving.
//
// Traces built by Recorder.Finish are sealed: the event payload is followed
// by a fixed integrity footer (magic, payload length, CRC32), and every
// consumer — Hist, NewReader — verifies it before decoding, so truncation or
// bit corruption surfaces as a typed error (ErrTruncated / ErrChecksum)
// instead of garbage cycle counts. Raw traces assembled directly from bytes
// (tests, fuzzing) are unsealed and skip the integrity check.
type Trace struct {
	// Events counts logical events (tree executions, calls, returns) with
	// repeat runs expanded — the number of events a Reader yields, weighted
	// by Count.
	Events int64
	// TreeExecs counts tree executions (the priced events) out of Events.
	TreeExecs int64
	// Ops and Committed are the recorded run's dynamic operation totals
	// (sim.Result.Ops / sim.Result.Committed).
	Ops, Committed int64

	// data is the event payload, followed by the footer when sealed.
	data   []byte
	sealed bool

	histOnce sync.Once
	hist     *Hist
	histErr  error
}

// Integrity footer layout: 4 magic bytes, then the payload length and the
// payload's IEEE CRC32 as little-endian uint32s. The magic's first byte can
// never begin a footer-less comparison accident: it is just a marker — the
// footer is located by position (the last footerSize bytes), never scanned
// for, so no payload byte pattern can be confused with it.
var footerMagic = [4]byte{0xF5, 'T', 'R', 'C'}

const footerSize = 12

// Integrity errors. Both wrap ErrCorrupt, so existing corrupt-stream
// handling catches them; they are additionally distinguishable for tests and
// degradation accounting.
var (
	// ErrTruncated marks a sealed trace whose payload length no longer
	// matches its footer (bytes lost or a footer destroyed).
	ErrTruncated = fmt.Errorf("%w: payload truncated or footer missing", ErrCorrupt)
	// ErrChecksum marks a sealed trace whose payload fails its CRC (bit
	// corruption).
	ErrChecksum = fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
)

// seal appends the integrity footer over the current payload.
func (t *Trace) seal() {
	var foot [footerSize]byte
	copy(foot[:4], footerMagic[:])
	binary.LittleEndian.PutUint32(foot[4:8], uint32(len(t.data)))
	binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(t.data))
	t.data = append(t.data, foot[:]...)
	t.sealed = true
}

// payload returns the event-stream bytes, excluding any integrity footer.
func (t *Trace) payload() []byte {
	if t.sealed && len(t.data) >= footerSize {
		return t.data[:len(t.data)-footerSize]
	}
	return t.data
}

// Verify checks a sealed trace's integrity footer: the magic must be
// present, the payload length must match, and the payload CRC must agree.
// The error (ErrTruncated or ErrChecksum) wraps ErrCorrupt. Unsealed raw
// traces verify trivially — their decoding is validated event by event.
func (t *Trace) Verify() error {
	if !t.sealed {
		return nil
	}
	if len(t.data) < footerSize {
		return ErrTruncated
	}
	foot := t.data[len(t.data)-footerSize:]
	pay := t.data[:len(t.data)-footerSize]
	if !bytes.Equal(foot[:4], footerMagic[:]) {
		return ErrTruncated
	}
	if binary.LittleEndian.Uint32(foot[4:8]) != uint32(len(pay)) {
		return ErrTruncated
	}
	if binary.LittleEndian.Uint32(foot[8:12]) != crc32.ChecksumIEEE(pay) {
		return ErrChecksum
	}
	return nil
}

// Bytes returns the encoded event stream (without the integrity footer).
// The slice is owned by the trace and must not be modified.
func (t *Trace) Bytes() []byte { return t.payload() }

// Size returns the encoded event-stream length in bytes (without the
// integrity footer).
func (t *Trace) Size() int { return len(t.payload()) }

// Clone returns a deep copy of the trace with its own buffer and a fresh
// histogram cache. Fault injection corrupts clones so the original (often
// shared across cells) stays intact for recovery.
func (t *Trace) Clone() *Trace {
	return &Trace{
		Events:    t.Events,
		TreeExecs: t.TreeExecs,
		Ops:       t.Ops,
		Committed: t.Committed,
		data:      append([]byte(nil), t.data...),
		sealed:    t.sealed,
	}
}

// FlipByte XORs payload byte i (taken modulo the payload size) with 0xFF — a
// fault-injection helper simulating bit corruption. No-op on an empty
// payload. The histogram cache must not have been built yet.
func (t *Trace) FlipByte(i int) {
	pay := t.payload()
	if len(pay) == 0 {
		return
	}
	if i < 0 {
		i = -i
	}
	pay[i%len(pay)] ^= 0xFF
}

// Truncate drops the payload to at most n bytes, keeping the footer in place
// — a fault-injection helper simulating a short write. The histogram cache
// must not have been built yet.
func (t *Trace) Truncate(n int) {
	pay := t.payload()
	if n < 0 || n >= len(pay) {
		return
	}
	if t.sealed {
		foot := t.data[len(t.data)-footerSize:]
		t.data = append(t.data[:n], foot...)
	} else {
		t.data = t.data[:n]
	}
}

// HistEntry is one distinct (tree, exit, commit bits) pattern of a trace and
// the total number of times it executed.
type HistEntry struct {
	// Idx is the tree PIdx; Exit the taken exit index.
	Idx, Exit int
	// Bits are the packed guard-commit bits. The slice aliases the trace's
	// buffer and must not be modified.
	Bits []byte
	// Count is the pattern's total execution count across the whole trace.
	Count int64
}

// Bit reports whether the k-th guarded op (in Seq order — the wire
// contract for commit bits) committed in this pattern. Bits beyond the
// recorded slice are 0: a pattern records only as many bytes as its tree
// has guarded ops.
func (e HistEntry) Bit(k int) bool {
	if k < 0 || k>>3 >= len(e.Bits) {
		return false
	}
	return e.Bits[k>>3]&(1<<uint(k&7)) != 0
}

// Hist is the aggregated view of a trace: one entry per distinct tree
// execution pattern, in first-appearance order, plus the call-framing facts a
// replayer validates. Because cycle pricing is a pure function of the pattern
// and trace order never influences totals (int64 sums commute), replaying the
// histogram prices each distinct pattern exactly once — typically thousands
// of entries standing in for millions of events.
type Hist struct {
	Entries []HistEntry
	// Calls counts call events; MaxFn is the largest function index called
	// (-1 when Calls is zero).
	Calls int64
	MaxFn int
}

// Hist returns the trace's aggregated view, decoding and validating the
// stream on first use and caching the result; safe for concurrent use. The
// error, if any, wraps ErrCorrupt. Sealed traces are integrity-checked
// first, so corruption surfaces as ErrTruncated/ErrChecksum even when the
// damaged bytes still decode as a well-formed event stream.
func (t *Trace) Hist() (*Hist, error) {
	t.histOnce.Do(func() {
		if err := t.Verify(); err != nil {
			t.histErr = err
			return
		}
		t.hist, t.histErr = buildHist(t.payload())
	})
	return t.hist, t.histErr
}

func buildHist(data []byte) (*Hist, error) {
	h := &Hist{MaxFn: -1}
	// Patterns are looked up once per encoded tree event, so the key
	// representation is hot. Small patterns — bits ≤ 48 and a 16-bit exit,
	// i.e. essentially all of them — pack into a uint64 keyed per tree
	// (integer hashing is several times cheaper than hashing a byte string);
	// anything larger falls back to a byte-string key.
	var fast []map[uint64]int32 // by tree idx: packed pattern -> Entries index
	var idx map[string]int32    // oversized patterns -> Entries index
	var key []byte
	rd := NewBytesReader(data)
	var ev Event
	depth := 0
	for {
		ok, err := rd.Next(&ev)
		if err != nil {
			return nil, err
		}
		if !ok {
			return h, nil
		}
		switch ev.Kind {
		case KindTree:
			var slot *HistEntry
			if ev.Idx < 1<<16 && ev.Exit < 1<<16 && len(ev.Bits) <= 6 {
				k := uint64(ev.Exit) << 48
				for i, b := range ev.Bits {
					k |= uint64(b) << (8 * i)
				}
				for ev.Idx >= len(fast) {
					fast = append(fast, nil)
				}
				m := fast[ev.Idx]
				if m == nil {
					m = map[uint64]int32{}
					fast[ev.Idx] = m
				}
				if i, ok := m[k]; ok {
					slot = &h.Entries[i]
				} else {
					m[k] = int32(len(h.Entries))
				}
			} else {
				// Varints are self-delimiting, so the key cannot collide
				// across patterns with different bit lengths.
				key = binary.AppendUvarint(key[:0], uint64(ev.Idx))
				key = binary.AppendUvarint(key, uint64(ev.Exit))
				key = append(key, ev.Bits...)
				if idx == nil {
					idx = map[string]int32{}
				}
				if i, ok := idx[string(key)]; ok {
					slot = &h.Entries[i]
				} else {
					idx[string(key)] = int32(len(h.Entries))
				}
			}
			if slot != nil {
				if ev.Count > math.MaxInt64-slot.Count {
					return nil, fmt.Errorf("%w: pattern count overflow", ErrCorrupt)
				}
				slot.Count += ev.Count
			} else {
				h.Entries = append(h.Entries, HistEntry{
					Idx: ev.Idx, Exit: ev.Exit, Bits: ev.Bits, Count: ev.Count,
				})
			}
		case KindCall:
			h.Calls++
			if ev.Idx > h.MaxFn {
				h.MaxFn = ev.Idx
			}
			depth++
		case KindRet:
			if depth--; depth < 0 {
				return nil, fmt.Errorf("%w: ret event without a call", ErrCorrupt)
			}
		}
	}
}

// Recorder builds a trace incrementally. The zero value is not ready;
// use NewRecorder.
type Recorder struct {
	data   []byte
	events int64
	trees  int64

	// Pending run of identical tree events, flushed lazily so consecutive
	// repeats collapse into one repeat event.
	havePending bool
	pendPIdx    int
	pendExit    int
	pendBits    []byte
	pendCount   int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{data: make([]byte, 0, 4096)}
}

// Tree records one tree execution: the tree's program-wide index, the taken
// exit's index, and the packed commit bits of the tree's guarded ops (bit k
// = k-th guarded op in Seq order; trailing bits must be zero). bits is
// copied; the caller may reuse the buffer.
func (r *Recorder) Tree(pidx, exit int, bits []byte) {
	if pidx < 0 || exit < 0 {
		panic("trace: negative tree or exit index")
	}
	if r.havePending && r.pendPIdx == pidx && r.pendExit == exit && bytes.Equal(r.pendBits, bits) {
		r.pendCount++
		r.events++
		r.trees++
		return
	}
	r.flush()
	r.havePending = true
	r.pendPIdx = pidx
	r.pendExit = exit
	r.pendBits = append(r.pendBits[:0], bits...)
	r.pendCount = 1
	r.events++
	r.trees++
}

// Call records entry into the function with the given Program.Order index.
func (r *Recorder) Call(fn int) {
	if fn < 0 {
		panic("trace: negative function index")
	}
	r.flush()
	r.data = binary.AppendUvarint(r.data, uint64(fn)<<2|wireCall)
	r.events++
}

// Ret records a function return.
func (r *Recorder) Ret() {
	r.flush()
	r.data = append(r.data, wireRet)
	r.events++
}

func (r *Recorder) flush() {
	if !r.havePending {
		return
	}
	// Assemble the whole event in a stack buffer when the bits fit (they
	// always do for trees with ≤ 24·8 guarded ops) so the hot path is one
	// append.
	var buf [4 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(r.pendPIdx)<<2|wireTree)
	n += binary.PutUvarint(buf[n:], uint64(r.pendExit))
	n += binary.PutUvarint(buf[n:], uint64(len(r.pendBits)))
	if len(r.pendBits) <= len(buf)-n {
		n += copy(buf[n:], r.pendBits)
		r.data = append(r.data, buf[:n]...)
	} else {
		r.data = append(r.data, buf[:n]...)
		r.data = append(r.data, r.pendBits...)
	}
	if r.pendCount > 1 {
		r.data = binary.AppendUvarint(r.data, uint64(r.pendCount-1)<<2|wireRepeat)
	}
	r.havePending = false
}

// Finish seals the recorder into a trace, attaching the recorded run's
// dynamic operation totals and appending the integrity footer. The recorder
// must not be used afterwards.
func (r *Recorder) Finish(ops, committed int64) *Trace {
	r.flush()
	t := &Trace{
		Events:    r.events,
		TreeExecs: r.trees,
		Ops:       ops,
		Committed: committed,
	}
	t.data = r.data
	r.data = nil
	t.seal()
	return t
}

// Event is one decoded trace event.
type Event struct {
	Kind Kind
	// Idx is the tree PIdx (KindTree) or function index (KindCall).
	Idx int
	// Exit is the taken exit index (KindTree only).
	Exit int
	// Count is the run length: the event occurred Count times consecutively
	// (KindTree only; always ≥ 1).
	Count int64
	// Bits are the packed guard-commit bits (KindTree only). The slice
	// aliases the trace's buffer and is valid until the trace is released;
	// it must not be modified.
	Bits []byte
}

// Decoding errors. Reader errors wrap ErrCorrupt so callers can distinguish
// a malformed stream from their own validation failures.
var ErrCorrupt = errors.New("trace: corrupt stream")

// Reader decodes a trace's event stream. Each Next call yields one event
// with repeat runs folded into Count.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a reader over the trace's events. A sealed trace that
// fails its integrity check yields a reader whose first Next reports the
// integrity error.
func NewReader(t *Trace) *Reader {
	if err := t.Verify(); err != nil {
		return &Reader{err: err}
	}
	return NewBytesReader(t.Bytes())
}

// NewBytesReader returns a reader over a raw encoded stream (as returned by
// Trace.Bytes); used by tests and fuzzing.
func NewBytesReader(data []byte) *Reader { return &Reader{data: data} }

func (r *Reader) uvarint(what string) (uint64, bool) {
	// Fast path: most fields (small indices, bit counts, bits ≤ 127) encode
	// in one byte.
	if r.pos < len(r.data) {
		if b := r.data[r.pos]; b < 0x80 {
			r.pos++
			return uint64(b), true
		}
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: bad %s varint at offset %d", ErrCorrupt, what, r.pos)
		return 0, false
	}
	r.pos += n
	return v, true
}

// uintField decodes a varint that must fit in a non-negative int.
func (r *Reader) uintField(what string) (int, bool) {
	v, ok := r.uvarint(what)
	if !ok {
		return 0, false
	}
	if v > math.MaxInt32 {
		r.err = fmt.Errorf("%w: %s %d out of range at offset %d", ErrCorrupt, what, v, r.pos)
		return 0, false
	}
	return int(v), true
}

// Next decodes the next event into ev. It returns false with a nil error at
// the end of the stream, and false with a non-nil error (wrapping
// ErrCorrupt) on a malformed stream; once it fails it keeps failing.
func (r *Reader) Next(ev *Event) (bool, error) {
	if r.err != nil {
		return false, r.err
	}
	if r.pos >= len(r.data) {
		return false, nil
	}
	h, ok := r.uvarint("header")
	if !ok {
		return false, r.err
	}
	payload := h >> 2
	switch h & 3 {
	case wireTree:
		if payload > math.MaxInt32 {
			r.err = fmt.Errorf("%w: tree index %d out of range", ErrCorrupt, payload)
			return false, r.err
		}
		ev.Kind = KindTree
		ev.Idx = int(payload)
		exit, ok := r.uintField("exit")
		if !ok {
			return false, r.err
		}
		ev.Exit = exit
		nb, ok := r.uintField("bits length")
		if !ok {
			return false, r.err
		}
		if nb > len(r.data)-r.pos {
			r.err = fmt.Errorf("%w: %d bit bytes but only %d left", ErrCorrupt, nb, len(r.data)-r.pos)
			return false, r.err
		}
		ev.Bits = r.data[r.pos : r.pos+nb : r.pos+nb]
		r.pos += nb
		ev.Count = 1
		// Fold any trailing repeat events into Count.
		for r.pos < len(r.data) {
			save := r.pos
			h2, ok := r.uvarint("repeat header")
			if !ok {
				// Surface the truncation on the *next* call: this event is
				// complete.
				r.pos, r.err = save, nil
				break
			}
			if h2&3 != wireRepeat {
				r.pos = save
				break
			}
			extra := h2 >> 2
			if extra > uint64(math.MaxInt64)-uint64(ev.Count) {
				r.err = fmt.Errorf("%w: repeat count overflow", ErrCorrupt)
				return false, r.err
			}
			ev.Count += int64(extra)
		}
		return true, nil
	case wireCall:
		if payload > math.MaxInt32 {
			r.err = fmt.Errorf("%w: function index %d out of range", ErrCorrupt, payload)
			return false, r.err
		}
		*ev = Event{Kind: KindCall, Idx: int(payload), Count: 1}
		return true, nil
	case wireRet:
		if payload != 0 {
			r.err = fmt.Errorf("%w: ret event with payload %d", ErrCorrupt, payload)
			return false, r.err
		}
		*ev = Event{Kind: KindRet, Count: 1}
		return true, nil
	default: // wireRepeat
		r.err = fmt.Errorf("%w: repeat event without a preceding tree event", ErrCorrupt)
		return false, r.err
	}
}
