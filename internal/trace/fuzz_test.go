package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// FuzzReaderArbitrary feeds arbitrary bytes to the reader and histogram
// builder: decoding must terminate without panicking, yield at most one event
// per input byte, and fail only with errors wrapping ErrCorrupt. Whatever
// decodes cleanly must re-encode (via a Recorder) to a stream that decodes to
// the same events — the decoder accepts nothing a recorder couldn't have
// meant.
func FuzzReaderArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0x80})
	f.Add([]byte{0x03})
	r := NewRecorder()
	r.Call(1)
	r.Tree(3, 1, []byte{0b101})
	r.Tree(3, 1, []byte{0b101})
	r.Ret()
	f.Add(r.Finish(0, 0).Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewBytesReader(data)
		var ev Event
		var evs []Event
		for {
			ok, err := rd.Next(&ev)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error does not wrap ErrCorrupt: %v", err)
				}
				if _, err2 := rd.Next(&ev); !errors.Is(err2, ErrCorrupt) {
					t.Fatalf("error not sticky: %v", err2)
				}
				return
			}
			if !ok {
				break
			}
			if len(evs) > len(data) {
				t.Fatalf("more events than input bytes")
			}
			e := ev
			e.Bits = append([]byte(nil), ev.Bits...)
			evs = append(evs, e)
		}
		// Clean decode: histogram must agree, and re-encoding must round-trip.
		if _, err := (&Trace{data: data}).Hist(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Hist error does not wrap ErrCorrupt: %v", err)
		}
		// Normalize as a recorder would: a decoder accepts adjacent identical
		// tree events a recorder always merges.
		var norm []Event
		var total int64
		for _, e := range evs {
			if e.Kind == KindTree {
				total += e.Count
				if total > 1<<16 || total < 0 {
					return // don't spin re-recording huge repeat counts
				}
				if len(norm) > 0 {
					p := &norm[len(norm)-1]
					if p.Kind == KindTree && p.Idx == e.Idx && p.Exit == e.Exit && bytes.Equal(p.Bits, e.Bits) {
						p.Count += e.Count
						continue
					}
				}
			}
			norm = append(norm, e)
		}
		re := NewRecorder()
		for _, e := range norm {
			switch e.Kind {
			case KindTree:
				for i := int64(0); i < e.Count; i++ {
					re.Tree(e.Idx, e.Exit, e.Bits)
				}
			case KindCall:
				re.Call(e.Idx)
			case KindRet:
				re.Ret()
			}
		}
		rd2 := NewBytesReader(re.Finish(0, 0).Bytes())
		for i := 0; ; i++ {
			ok, err := rd2.Next(&ev)
			if err != nil {
				t.Fatalf("re-encoded stream corrupt: %v", err)
			}
			if !ok {
				if i != len(norm) {
					t.Fatalf("re-encoded stream has %d events, want %d", i, len(norm))
				}
				return
			}
			if i >= len(norm) {
				t.Fatalf("re-encoded stream has extra events")
			}
			w := norm[i]
			if ev.Kind != w.Kind || ev.Idx != w.Idx || ev.Exit != w.Exit || ev.Count != w.Count || !bytes.Equal(ev.Bits, w.Bits) {
				t.Fatalf("re-encoded event %d = %+v, want %+v", i, ev, w)
			}
		}
	})
}

// FuzzRecorderRoundTrip drives a recorder with a fuzz-derived event script
// and checks the decoded stream reproduces it exactly, including run-length
// counts and the Events/TreeExecs totals.
func FuzzRecorderRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 3})
	f.Add([]byte{10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, script []byte) {
		r := NewRecorder()
		type rec struct {
			kind Kind
			idx  int
			exit int
			bits []byte
		}
		var want []rec
		var wantTrees int64
		depth := 0
		for i := 0; i+1 < len(script); i += 2 {
			a, b := script[i], script[i+1]
			switch a % 4 {
			case 0, 1: // tree, bits derived from b
				nb := int(b % 4)
				bits := make([]byte, nb)
				for j := range bits {
					bits[j] = b ^ byte(j*13)
				}
				idx, exit := int(a)*3+int(b%7), int(b%5)
				r.Tree(idx, exit, bits)
				want = append(want, rec{KindTree, idx, exit, bits})
				wantTrees++
			case 2:
				r.Call(int(b))
				want = append(want, rec{kind: KindCall, idx: int(b)})
				depth++
			default:
				if depth == 0 {
					continue // keep call framing balanced: Hist rejects stray rets
				}
				r.Ret()
				want = append(want, rec{kind: KindRet})
				depth--
			}
		}
		tr := r.Finish(7, 5)
		if tr.Events != int64(len(want)) || tr.TreeExecs != wantTrees {
			t.Fatalf("Events, TreeExecs = %d, %d, want %d, %d", tr.Events, tr.TreeExecs, len(want), wantTrees)
		}

		rd := NewReader(tr)
		var ev Event
		pos := 0
		for {
			ok, err := rd.Next(&ev)
			if err != nil {
				t.Fatalf("Next at event %d: %v", pos, err)
			}
			if !ok {
				break
			}
			for n := int64(0); n < ev.Count; n++ {
				if pos >= len(want) {
					t.Fatalf("decoded more than %d events", len(want))
				}
				w := want[pos]
				if ev.Kind != w.kind || ev.Idx != w.idx || ev.Exit != w.exit || !bytes.Equal(ev.Bits, w.bits) {
					t.Fatalf("event %d = %+v, want %+v", pos, ev, w)
				}
				pos++
			}
		}
		if pos != len(want) {
			t.Fatalf("decoded %d logical events, want %d", pos, len(want))
		}

		// The histogram's counts must total the tree executions and agree
		// with a direct tally.
		h, err := tr.Hist()
		if err != nil {
			t.Fatal(err)
		}
		tally := map[string]int64{}
		var key []byte
		for _, w := range want {
			if w.kind != KindTree {
				continue
			}
			key = binary.AppendUvarint(key[:0], uint64(w.idx))
			key = binary.AppendUvarint(key, uint64(w.exit))
			key = append(key, w.bits...)
			tally[string(key)]++
		}
		if len(h.Entries) != len(tally) {
			t.Fatalf("hist has %d entries, want %d", len(h.Entries), len(tally))
		}
		var total int64
		for _, e := range h.Entries {
			key = binary.AppendUvarint(key[:0], uint64(e.Idx))
			key = binary.AppendUvarint(key, uint64(e.Exit))
			key = append(key, e.Bits...)
			if tally[string(key)] != e.Count {
				t.Fatalf("entry %+v count %d, want %d", e, e.Count, tally[string(key)])
			}
			total += e.Count
		}
		if total != wantTrees {
			t.Fatalf("hist total %d, want %d", total, wantTrees)
		}
	})
}

// FuzzTruncation checks every prefix of a valid stream either decodes
// cleanly (truncation fell on an event boundary) or fails with ErrCorrupt —
// never a panic, never garbage events beyond the prefix.
func FuzzTruncation(f *testing.F) {
	f.Add(int64(1), 5)
	f.Add(int64(99), 0)
	f.Fuzz(func(t *testing.T, seed int64, cut int) {
		r := NewRecorder()
		s := uint64(seed)
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		for i := 0; i < 30; i++ {
			switch next(4) {
			case 0, 1:
				bits := []byte{byte(next(256))}
				r.Tree(next(50), next(4), bits)
			case 2:
				r.Call(next(10))
			default:
				r.Ret()
			}
		}
		data := r.Finish(0, 0).Bytes()
		if len(data) == 0 {
			return
		}
		cut = int(uint(cut) % uint(len(data)))
		rd := NewBytesReader(data[:cut])
		var ev Event
		for {
			ok, err := rd.Next(&ev)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("prefix error does not wrap ErrCorrupt: %v", err)
				}
				return
			}
			if !ok {
				return
			}
			if ev.Count < 1 || ev.Count > math.MaxInt64/2 {
				t.Fatalf("implausible count %d from truncated stream", ev.Count)
			}
		}
	})
}
