package verify

// This file is verification layer 5: the schedule-soundness auditor. The
// cycle counts the experiment pipeline reports are read off list schedules,
// so a scheduler bug corrupts every headline number while executing
// perfectly. AuditSchedule replays one emitted schedule against the
// dependence graph and machine model it was built from and checks, op by
// op and arc by arc, that the timeline could actually have happened:
//
//   - every op is scheduled, and completes exactly its latency after issue;
//   - every dependence arc is ordered with its delay respected (negative
//     anti-dependence delays included);
//   - no cycle issues more ops than the machine has functional units;
//   - the reported schedule length is never shorter than the recomputed
//     dependence-height critical path — and on the infinite machine, where
//     the ASAP construction is optimal, exactly equals it.
//
// Unlike sched.Validate (an error-on-first-violation oracle used inside the
// scheduler's own tests), the auditor reports every violation as a Finding,
// in the same currency as the other verification layers.

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/sched"
)

// Schedule runs the schedule-soundness auditor and folds findings into one
// error, or nil.
func Schedule(g *ir.DepGraph, s *sched.Schedule, numFUs int) error {
	return asError(AuditSchedule(g, s, numFUs))
}

// AuditSchedule audits one schedule against the dependence graph it was
// built from. numFUs is the machine width the schedule claims to fit
// (numFUs <= 0: the infinite machine, no issue-width limit).
func AuditSchedule(g *ir.DepGraph, s *sched.Schedule, numFUs int) []Finding {
	var out []Finding
	t := g.Tree
	fail := func(check, format string, args ...any) {
		out = append(out, Finding{
			Check: check,
			Func:  t.Fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	name := func(i int) string {
		if op := t.Ops[i]; op != nil {
			return fmt.Sprintf("%s %%%d", op.Kind, op.ID)
		}
		return fmt.Sprintf("op #%d", i)
	}
	n := len(t.Ops)
	if len(s.Issue) != n || len(s.Comp) != n {
		fail("sched/shape", "schedule covers %d issue / %d completion slots for %d ops", len(s.Issue), len(s.Comp), n)
		return out
	}

	perCycle := map[int64]int{}
	for i := 0; i < n; i++ {
		if s.Issue[i] < 0 {
			fail("sched/unscheduled", "%s never issues", name(i))
			continue
		}
		perCycle[s.Issue[i]]++
		if want := s.Issue[i] + int64(g.Latency(i)); s.Comp[i] != want {
			fail("sched/comp-latency", "%s issues at cycle %d with latency %d but completes at %d, want %d",
				name(i), s.Issue[i], g.Latency(i), s.Comp[i], want)
		}
		for _, e := range g.Succ[i] {
			if s.Issue[e.To] < 0 {
				continue // reported as sched/unscheduled
			}
			if s.Issue[e.To] < s.Issue[i]+int64(e.Delay) {
				fail("sched/arc-order", "%s issues at cycle %d, before %s (cycle %d) + delay %d",
					name(e.To), s.Issue[e.To], name(i), s.Issue[i], e.Delay)
			}
		}
	}
	if numFUs > 0 {
		for c, k := range perCycle {
			if k > numFUs {
				fail("sched/fu-oversubscribed", "cycle %d issues %d ops on %d FUs", c, k, numFUs)
			}
		}
	}

	// The recomputed critical path lower-bounds any legal schedule; the
	// infinite-machine ASAP construction attains it exactly.
	var cp int64
	for i, c := range g.ASAP() {
		if v := int64(c + g.Latency(i)); v > cp {
			cp = v
		}
	}
	switch length := s.Length(); {
	case length < cp:
		fail("sched/length-understated", "schedule reports %d cycles, below the dependence critical path of %d", length, cp)
	case numFUs <= 0 && length != cp:
		fail("sched/length-mismatch", "infinite-machine schedule reports %d cycles, critical path is %d", length, cp)
	}
	return out
}
