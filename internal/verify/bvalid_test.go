package verify_test

import (
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/verify"
)

// transformedProgram compiles testSrc, profiles it, and applies SpD
// aggressively so the compiled streams carry guarded (commit-bit-bearing)
// instructions for the validator's SpD checks to bite on.
func transformedProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := mustCompile(t)
	prof := sim.NewProfile()
	lat := machine.Infinite(3).LatencyFunc()
	r := &sim.Runner{Prog: p, SemLat: lat, Prof: prof}
	if _, err := r.Run(); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	params := spd.DefaultParams()
	params.MinGain = 0.01
	if res := spd.Transform(p, prof, lat, params); len(res.Apps) == 0 {
		t.Fatal("SpD applied nothing; test program is wrong")
	}
	return p
}

// compiledTrees yields every (tree, bytecode) pair of the program that the
// bytecode compiler accepts.
func compiledTrees(t *testing.T, p *ir.Program, visit func(tr *ir.Tree, bp *bcode.Prog) bool) {
	t.Helper()
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			bp, err := bcode.Compile(tr)
			if err != nil {
				continue
			}
			if visit(tr, bp) {
				return
			}
		}
	}
}

// guardIndices returns the stream positions of the guarded instructions.
func guardIndices(bp *bcode.Prog) []int {
	var idx []int
	for i := range bp.Code {
		if bp.Code[i].Guard >= 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// TestBCodeValidatorClean pins the baseline: every compiled tree of both the
// plain and the SpD-transformed program validates with zero findings, so the
// negative cases below prove detection rather than noise.
func TestBCodeValidatorClean(t *testing.T) {
	for _, p := range []*ir.Program{mustCompile(t), transformedProgram(t)} {
		n := 0
		compiledTrees(t, p, func(tr *ir.Tree, bp *bcode.Prog) bool {
			wantClean(t, verify.CheckBCode(tr, bp))
			n++
			return false
		})
		if n == 0 {
			t.Fatal("no tree compiled to bytecode")
		}
	}
}

// TestBCodeValidatorNegative seeds one precise corruption per subtest — a
// wild exit target, a float result flowing into an integer operand, a wrong
// commit-bit slot, a double-claimed commit bit — and requires the named
// finding.
func TestBCodeValidatorNegative(t *testing.T) {
	t.Run("bad-exit-target", func(t *testing.T) {
		p := mustCompile(t)
		var tr *ir.Tree
		var bp *bcode.Prog
		compiledTrees(t, p, func(ctr *ir.Tree, cbp *bcode.Prog) bool {
			for _, op := range ctr.Ops {
				if op != nil && op.Kind == ir.OpExit && (op.Exit == ir.ExitGoto || op.Exit == ir.ExitCall) {
					op.Target = 99 // way outside the function's tree list
					tr, bp = ctr, cbp
					return true
				}
			}
			return false
		})
		if tr == nil {
			t.Fatal("no compiled tree with a goto/call exit")
		}
		wantFinding(t, verify.CheckBCode(tr, bp), "bvalid/exit-target", "targets tree 99")
	})

	t.Run("float-into-int", func(t *testing.T) {
		p := mustCompile(t)
		var tr *ir.Tree
		var bp *bcode.Prog
		compiledTrees(t, p, func(ctr *ir.Tree, cbp *bcode.Prog) bool {
			// Find an instruction j reading register r in an integer-strict
			// position whose nearest reaching definition i is unguarded, then
			// rewrite i into an FAdd: the abstract state of r becomes float
			// and the read at j must be flagged.
			for j := range cbp.Code {
				in := &cbp.Code[j]
				var r int32 = -1
				switch in.Op {
				case bcode.Add, bcode.Sub, bcode.Mul, bcode.CmpEQ, bcode.CmpNE,
					bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
					bcode.Load, bcode.Store, bcode.PrintI:
					r = in.A
				}
				if r < 0 {
					continue
				}
				for i := j - 1; i >= 0; i-- {
					if cbp.Code[i].Dest != r {
						continue
					}
					if cbp.Code[i].Guard < 0 {
						cbp.Code[i].Op = bcode.FAdd
						tr, bp = ctr, cbp
						return true
					}
					break // nearest def is guarded: the join could mask the corruption
				}
			}
			return false
		})
		if tr == nil {
			t.Fatal("no rewritable integer def/use pair found")
		}
		wantFinding(t, verify.CheckBCode(tr, bp), "bvalid/type", "integer position")
	})

	t.Run("wrong-commit-bit", func(t *testing.T) {
		p := transformedProgram(t)
		var tr *ir.Tree
		var bp *bcode.Prog
		compiledTrees(t, p, func(ctr *ir.Tree, cbp *bcode.Prog) bool {
			if g := guardIndices(cbp); len(g) > 0 {
				cbp.Code[g[0]].GIdx++
				tr, bp = ctr, cbp
				return true
			}
			return false
		})
		if tr == nil {
			t.Fatal("no compiled tree with a guarded instruction after SpD")
		}
		wantFinding(t, verify.CheckBCode(tr, bp), "bvalid/commit-bit", "want 0")
	})

	t.Run("duplicate-commit-bit", func(t *testing.T) {
		p := transformedProgram(t)
		var tr *ir.Tree
		var bp *bcode.Prog
		compiledTrees(t, p, func(ctr *ir.Tree, cbp *bcode.Prog) bool {
			if g := guardIndices(cbp); len(g) >= 2 {
				cbp.Code[g[1]].GIdx = cbp.Code[g[0]].GIdx
				tr, bp = ctr, cbp
				return true
			}
			return false
		})
		if tr == nil {
			t.Fatal("no compiled tree with two guarded instructions after SpD")
		}
		wantFinding(t, verify.CheckBCode(tr, bp), "bvalid/commit-dup", "double commit")
	})
}

// TestNCodeValidatorCatchesBadPlan pins that the native-tier validator is
// not a pass-through: every compiled tree is clean, and a fusion plan
// claiming a superinstruction head that consumes nothing is rejected.
func TestNCodeValidatorCatchesBadPlan(t *testing.T) {
	p := mustCompile(t)
	var bad *ncode.Prog
	var badTree *ir.Tree
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			np, err := ncode.Compile(tr)
			if err != nil {
				continue
			}
			wantClean(t, verify.CheckNCode(tr, np))
			if bad == nil {
				for pc := 0; pc+1 < len(np.Plan); pc++ {
					if np.Plan[pc] == ncode.FuseNone && np.Plan[pc+1] == ncode.FuseNone {
						np.Plan[pc] = ncode.FusePair // head with no consumed partner
						bad, badTree = np, tr
						break
					}
				}
			}
		}
	}
	if bad == nil {
		t.Fatal("no native program with two adjacent unfused instructions")
	}
	wantFinding(t, verify.CheckNCode(badTree, bad), "nvalid/fuse-unconsumed", "does not consume")
}

// windowTree builds one synthetic single-block tree from an op-kind recipe so
// the window-negative cases below control the exact instruction stream; ops
// are wired into a simple chain off two leading constants.
func windowTree(kinds []ir.OpKind) (*ir.Function, *ir.Tree) {
	fn := &ir.Function{Name: "w"}
	tr := &ir.Tree{Fn: fn, Name: "w.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	r0 := fn.NewReg()
	c0 := tr.NewOp(ir.OpConst, nil, r0)
	c0.Imm = ir.Value{I: 1, F: 1}
	prev := r0
	for _, k := range kinds {
		switch k {
		case ir.OpConst:
			d := fn.NewReg()
			c := tr.NewOp(ir.OpConst, nil, d)
			c.Imm = ir.Value{I: 2, F: 2}
			prev = d
		case ir.OpExit:
			ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
			ex.Exit = ir.ExitRet
		case ir.OpStore:
			tr.NewOp(ir.OpStore, []ir.Reg{r0, prev}, ir.NoReg)
		default:
			d := fn.NewReg()
			tr.NewOp(k, []ir.Reg{prev, r0}, d)
			prev = d
		}
	}
	return fn, tr
}

// TestNCodeValidatorWindowNegative corrupts fusion plans in the three ways
// the window-tiling invariants forbid — a gapped tiling (a window head that
// does not consume its span), a window spanning an interior exit, and a
// non-catalog member (a store, then a guarded op) smuggled into a window —
// and requires the validator to name each.
func TestNCodeValidatorWindowNegative(t *testing.T) {
	compile := func(t *testing.T, tr *ir.Tree) *ncode.Prog {
		t.Helper()
		np, err := ncode.Compile(tr)
		if err != nil {
			t.Fatalf("ncode.Compile: %v", err)
		}
		wantClean(t, verify.CheckNCode(tr, np))
		return np
	}

	t.Run("gapped-tiling", func(t *testing.T) {
		_, tr := windowTree([]ir.OpKind{ir.OpConst, ir.OpAdd, ir.OpMul, ir.OpExit})
		np := compile(t, tr)
		if np.Plan[0] != ncode.FuseWin4 {
			t.Fatalf("plan[0] = %d, want a width-4 window head", np.Plan[0])
		}
		np.Plan[1] = ncode.FuseNone // the head no longer covers its span
		wantFinding(t, verify.CheckNCode(tr, np), "nvalid/fuse-unconsumed", "does not consume")
	})

	t.Run("window-spans-exit", func(t *testing.T) {
		_, tr := windowTree([]ir.OpKind{ir.OpCmpEQ, ir.OpExit, ir.OpExit})
		np := compile(t, tr)
		// Claim a width-4 window over [const, cmp, exit, exit]: the first
		// exit sits at an interior position.
		np.Plan[0], np.Plan[1], np.Plan[2], np.Plan[3] =
			ncode.FuseWin4, ncode.FuseConsumed, ncode.FuseConsumed, ncode.FuseConsumed
		wantFinding(t, verify.CheckNCode(tr, np), "nvalid/win-exit", "spans the exit")
	})

	t.Run("store-in-window", func(t *testing.T) {
		_, tr := windowTree([]ir.OpKind{ir.OpConst, ir.OpStore, ir.OpExit})
		np := compile(t, tr)
		// Claim a width-3 window over [const, const, store]: the store's
		// architectural side effect must never join a window.
		np.Plan[0], np.Plan[1], np.Plan[2] =
			ncode.FuseWin3, ncode.FuseConsumed, ncode.FuseConsumed
		wantFinding(t, verify.CheckNCode(tr, np), "nvalid/win-member", "non-member store")
	})

	t.Run("guarded-op-in-window", func(t *testing.T) {
		fn, tr := windowTree([]ir.OpKind{ir.OpConst, ir.OpAdd, ir.OpExit})
		// Guard the add: a squashable op inside a window would execute
		// unconditionally, lifting its write out from under the guard.
		var guarded *ir.Op
		for _, op := range tr.Ops {
			if op != nil && op.Kind == ir.OpAdd {
				guarded = op
			}
		}
		guarded.Guard = ir.Reg(0)
		_ = fn
		np := compile(t, tr)
		np.Plan[0], np.Plan[1], np.Plan[2] =
			ncode.FuseWin3, ncode.FuseConsumed, ncode.FuseConsumed
		wantFinding(t, verify.CheckNCode(tr, np), "nvalid/win-member", "non-member")
	})
}

// TestAuditScheduleNegative corrupts list schedules in three precise ways —
// an inverted dependence arc, an oversubscribed functional unit, an
// understated cycle count — and requires the auditor to name each.
func TestAuditScheduleNegative(t *testing.T) {
	p := mustCompile(t)
	tr := anyTree(t, p)
	lat := machine.Infinite(3).LatencyFunc()
	g := ir.BuildDepGraph(tr, lat)

	t.Run("clean-baseline", func(t *testing.T) {
		for _, n := range []int{0, 1, 3} {
			wantClean(t, verify.AuditSchedule(g, sched.FromGraph(g, n), n))
		}
	})

	t.Run("arc-inversion", func(t *testing.T) {
		s := sched.FromGraph(g, 3)
		from, to, delay := -1, -1, 0
	scan:
		for i := range g.Succ {
			for _, e := range g.Succ[i] {
				if e.Delay > 0 {
					from, to, delay = i, e.To, e.Delay
					break scan
				}
			}
		}
		if from < 0 {
			t.Fatal("no positive-delay dependence arc in the test tree")
		}
		s.Issue[to] = s.Issue[from] + int64(delay) - 1
		s.Comp[to] = s.Issue[to] + int64(g.Latency(to))
		wantFinding(t, verify.AuditSchedule(g, s, 3), "sched/arc-order", "before")
	})

	t.Run("fu-oversubscription", func(t *testing.T) {
		s := sched.FromGraph(g, 1)
		if len(s.Issue) < 2 {
			t.Fatal("test tree too small")
		}
		// On a 1-FU machine every issue cycle is distinct; aligning any two
		// ops oversubscribes the unit.
		s.Issue[1] = s.Issue[0]
		s.Comp[1] = s.Issue[1] + int64(g.Latency(1))
		wantFinding(t, verify.AuditSchedule(g, s, 1), "sched/fu-oversubscribed", "on 1 FUs")
	})

	t.Run("understated-length", func(t *testing.T) {
		s := sched.FromGraph(g, 0) // ASAP: length equals the critical path
		max := s.Length()
		for i := range s.Comp {
			if s.Comp[i] != max {
				continue
			}
			if s.Issue[i] == 0 {
				t.Fatal("critical op issues at cycle 0; test tree unsuitable")
			}
			s.Issue[i]--
			s.Comp[i]--
		}
		wantFinding(t, verify.AuditSchedule(g, s, 0), "sched/length-understated", "critical path")
	})
}
