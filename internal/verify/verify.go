// Package verify is the static correctness backstop for the decision-tree
// IR and the speculative-disambiguation transform: a structural verifier
// over trees and programs, a speculation-safety checker for SpD output, and
// a dependence-soundness auditor over the arc lattice and runtime profiles.
//
// The paper's safety argument (§4) rests on two invariants this package
// machine-checks after the fact:
//
//   - Guarded commit: duplicated code may execute speculatively only if the
//     alias and no-alias copies are guarded by mutually exclusive outcomes of
//     the same address compare, and every side-effecting operation commits on
//     exactly the matching outcome.
//
//   - Superfluous arcs only: a disambiguator may delete a dependence arc only
//     if the dependence it represents can never occur; an arc whose endpoints
//     were observed aliasing at runtime must never be removed by a static
//     proof.
//
// Checks report Findings instead of stopping at the first violation, so a
// lint pass over a whole benchmark suite surfaces every problem at once. See
// docs/VERIFIER.md for the invariant catalogue.
package verify

import (
	"fmt"
	"strings"

	"specdis/internal/ir"
)

// Finding is one invariant violation, with enough context to locate it.
type Finding struct {
	// Check is the short invariant identifier, e.g. "struct/seq-order" or
	// "spec/unguarded-store".
	Check string
	// Func and Tree locate the violation ("" when program-wide).
	Func string
	Tree string
	// Msg names the offending op or arc and states the violation.
	Msg string
}

func (f Finding) String() string {
	loc := f.Func
	if f.Tree != "" {
		loc += "/" + f.Tree
	}
	if loc != "" {
		loc = " " + loc
	}
	return fmt.Sprintf("[%s]%s: %s", f.Check, loc, f.Msg)
}

// asError folds findings into one error, or nil.
func asError(fs []Finding) error {
	if len(fs) == 0 {
		return nil
	}
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = f.String()
	}
	return fmt.Errorf("verify: %d finding(s):\n  %s", len(fs), strings.Join(lines, "\n  "))
}

// Tree runs the structural checks over one tree and returns the violations
// as a single error, or nil. This is the oracle form used by transform
// debug hooks and fuzzers.
func Tree(t *ir.Tree) error { return asError(CheckTree(t)) }

// Program runs the structural checks over a whole program.
func Program(p *ir.Program) error { return asError(CheckProgram(p)) }

// CheckTree verifies the structural invariants of one decision tree:
// sequence and ID consistency, block shape, operand arity and register
// ranges, exit well-formedness, def-before-use, boolean guards, and arc
// sanity. Program-level facts (exit targets, callee signatures) are checked
// by CheckProgram.
func CheckTree(t *ir.Tree) []Finding {
	c := &treeChecker{t: t, fn: t.Fn}
	c.fail = func(check, format string, args ...any) {
		c.out = append(c.out, Finding{
			Check: check,
			Func:  c.fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	c.run()
	return c.out
}

type treeChecker struct {
	t    *ir.Tree
	fn   *ir.Function
	out  []Finding
	fail func(check, format string, args ...any)
}

// opArity gives the expected operand count per kind; -1 means "not fixed
// here" (exits vary by exit kind and are checked separately).
func opArity(k ir.OpKind) int {
	switch k {
	case ir.OpNop, ir.OpConst:
		return 0
	case ir.OpMove, ir.OpNeg, ir.OpNot, ir.OpBNot, ir.OpFNeg,
		ir.OpCvtIF, ir.OpCvtFI, ir.OpSqrt, ir.OpFAbs, ir.OpSin, ir.OpCos,
		ir.OpExp, ir.OpLog, ir.OpLoad, ir.OpPrint:
		return 1
	case ir.OpExit:
		return -1
	}
	return 2 // ALU, boolean, compare, store
}

func (c *treeChecker) run() {
	t, fn := c.t, c.fn
	if len(t.Ops) == 0 {
		c.fail("struct/empty", "tree has no operations")
		return
	}
	c.checkBlocks()

	seen := map[int]bool{}
	var exits []*ir.Op
	inTree := make(map[*ir.Op]bool, len(t.Ops))
	for i, op := range t.Ops {
		if op == nil {
			c.fail("struct/nil-op", "op slot %d is nil", i)
			return
		}
		inTree[op] = true
		if op.Seq != i {
			c.fail("struct/seq-order", "op %%%d has Seq %d at index %d", op.ID, op.Seq, i)
		}
		if seen[op.ID] {
			c.fail("struct/dup-id", "op ID %d appears twice", op.ID)
		}
		seen[op.ID] = true
		if op.ID < 0 || op.ID >= t.IDBound() {
			c.fail("struct/foreign-op", "op %%%d outside the tree's ID range [0,%d)", op.ID, t.IDBound())
		}
		if op.Kind == ir.OpExit {
			exits = append(exits, op)
		}
		c.checkOperands(op)
	}
	c.checkExits(exits)
	c.checkDefBeforeUse()
	c.checkGuards()
	c.checkArcs(inTree)
	_ = fn
}

func (c *treeChecker) checkBlocks() {
	t := c.t
	if len(t.Blocks) == 0 {
		c.fail("struct/no-blocks", "tree has no blocks")
		return
	}
	if t.Blocks[0].Parent != -1 {
		c.fail("struct/block-root", "block 0 has parent %d, want -1", t.Blocks[0].Parent)
	}
	for i, b := range t.Blocks {
		if b.ID != i {
			c.fail("struct/block-id", "block at index %d has ID %d", i, b.ID)
		}
		if i > 0 && (b.Parent < 0 || b.Parent >= i) {
			c.fail("struct/block-parent", "block %d has parent %d (must be an earlier block)", i, b.Parent)
		}
		if b.Guard != ir.NoReg && !c.regOK(b.Guard) {
			c.fail("struct/block-guard", "block %d guard r%d outside the register file", i, b.Guard)
		}
	}
	for _, op := range t.Ops {
		if op != nil && (op.Block < 0 || op.Block >= len(t.Blocks)) {
			c.fail("struct/orphan-block", "op %%%d placed in missing block %d", op.ID, op.Block)
		}
	}
}

func (c *treeChecker) regOK(r ir.Reg) bool {
	return r >= 0 && int(r) < c.fn.NumRegs
}

func (c *treeChecker) checkOperands(op *ir.Op) {
	for i, a := range op.Args {
		if a == ir.NoReg {
			c.fail("struct/dangling-arg", "op %%%d arg %d is NoReg", op.ID, i)
		} else if !c.regOK(a) {
			c.fail("struct/reg-range", "op %%%d arg %d reads r%d outside the register file (%d regs)", op.ID, i, a, c.fn.NumRegs)
		}
	}
	for i, a := range op.CallArg {
		if a == ir.NoReg || !c.regOK(a) {
			c.fail("struct/reg-range", "op %%%d call arg %d is r%d, outside the register file", op.ID, i, a)
		}
	}
	if op.Dest != ir.NoReg && !c.regOK(op.Dest) {
		c.fail("struct/reg-range", "op %%%d writes r%d outside the register file (%d regs)", op.ID, op.Dest, c.fn.NumRegs)
	}
	if op.Guard != ir.NoReg && !c.regOK(op.Guard) {
		c.fail("struct/reg-range", "op %%%d guard r%d outside the register file", op.ID, op.Guard)
	}
	if want := opArity(op.Kind); want >= 0 && len(op.Args) != want {
		c.fail("struct/arity", "op %%%d (%s) has %d args, want %d", op.ID, op.Kind, len(op.Args), want)
	}
	if op.Kind == ir.OpLoad && op.Dest == ir.NoReg {
		c.fail("struct/arity", "load %%%d has no destination", op.ID)
	}
	if op.Kind == ir.OpStore && op.Dest != ir.NoReg {
		c.fail("struct/arity", "store %%%d has destination r%d", op.ID, op.Dest)
	}
	if op.Kind == ir.OpExit {
		switch op.Exit {
		case ir.ExitGoto:
			if len(op.Args) != 0 {
				c.fail("struct/arity", "goto exit %%%d carries %d args", op.ID, len(op.Args))
			}
		case ir.ExitRet:
			if len(op.Args) > 1 {
				c.fail("struct/arity", "ret exit %%%d carries %d args, want at most 1", op.ID, len(op.Args))
			}
		case ir.ExitCall:
		default:
			c.fail("struct/exit-kind", "exit %%%d has unknown exit kind %d", op.ID, int(op.Exit))
		}
	} else if len(op.CallArg) != 0 {
		c.fail("struct/arity", "non-exit op %%%d carries call args", op.ID)
	}
}

// checkExits verifies the exit discipline. Every exit carries its full path
// condition as its guard, and the interpreter demands that exactly one exit
// commits per execution. An unguarded exit commits unconditionally, so it is
// only legal as the tree's sole exit: next to any other exit it would
// double-commit the moment that exit's condition held.
func (c *treeChecker) checkExits(exits []*ir.Op) {
	if len(exits) == 0 {
		c.fail("struct/no-exit", "tree has no exit")
		return
	}
	if len(exits) > 1 {
		for _, e := range exits {
			if e.Guard == ir.NoReg {
				c.fail("struct/ambiguous-exit", "exit %%%d is unguarded yet the tree has %d exits; it would commit alongside any other taken exit", e.ID, len(exits))
			}
		}
	}
	for _, e := range exits {
		if e.SpecSide != 0 {
			c.fail("spec/speculative-exit", "exit %%%d is marked SpecSide %+d; exits must never be duplicated", e.ID, e.SpecSide)
		}
	}
}

// selfReachable reports whether tree t can execute again before the function
// returns: some chain of goto/call-continuation exits leads from t back to t.
// Registers defined only later in such a tree may legitimately be read
// earlier (a loop-carried value from the previous execution).
func selfReachable(fn *ir.Function, t *ir.Tree) bool {
	seen := make([]bool, len(fn.Trees))
	stack := []int{}
	push := func(tree *ir.Tree) {
		for _, op := range tree.Ops {
			if op == nil || op.Kind != ir.OpExit {
				continue
			}
			switch op.Exit {
			case ir.ExitGoto, ir.ExitCall:
				if op.Target >= 0 && op.Target < len(fn.Trees) && !seen[op.Target] {
					seen[op.Target] = true
					stack = append(stack, op.Target)
				}
			}
		}
	}
	push(t)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fn.Trees[id] == t {
			return true
		}
		push(fn.Trees[id])
	}
	return false
}

// checkDefBeforeUse verifies that every register an op reads has a
// definition that can precede the read: an earlier op of this tree, a
// definition in another tree of the function, a function parameter — or,
// when the tree is reachable from itself, a later op of this tree (a
// loop-carried value). A register with no definition anywhere is a dangling
// operand left behind by a buggy clone or graft.
func (c *treeChecker) checkDefBeforeUse() {
	t, fn := c.t, c.fn
	isParam := map[ir.Reg]bool{}
	for _, p := range fn.Params {
		isParam[p] = true
	}
	// definedBefore[r] for the current scan position; elsewhere[r] counts
	// definitions outside this tree.
	elsewhere := map[ir.Reg]bool{}
	inTreeDef := map[ir.Reg]bool{}
	for _, tr := range fn.Trees {
		for _, op := range tr.Ops {
			if op == nil || op.Dest == ir.NoReg {
				continue
			}
			if tr == t {
				inTreeDef[op.Dest] = true
			} else {
				elsewhere[op.Dest] = true
			}
		}
	}
	loopCarried := selfReachable(fn, t)

	definedBefore := map[ir.Reg]bool{}
	checkRead := func(op *ir.Op, r ir.Reg, what string) {
		if r == ir.NoReg || !c.regOK(r) {
			return // reported by checkOperands
		}
		if definedBefore[r] || isParam[r] || elsewhere[r] {
			return
		}
		if inTreeDef[r] {
			if !loopCarried {
				c.fail("struct/use-before-def", "op %%%d reads %s r%d before its only definition (tree is not self-reaching)", op.ID, what, r)
			}
			return
		}
		c.fail("struct/undefined-reg", "op %%%d reads %s r%d, which no op or parameter defines", op.ID, what, r)
	}
	for _, op := range t.Ops {
		if op == nil {
			continue
		}
		for _, a := range op.Args {
			checkRead(op, a, "operand")
		}
		for _, a := range op.CallArg {
			checkRead(op, a, "call operand")
		}
		if op.Guard != ir.NoReg {
			checkRead(op, op.Guard, "guard")
		}
		if op.Dest != ir.NoReg {
			definedBefore[op.Dest] = true
		}
	}
}

// checkGuards verifies that every guard operand — op guards and block
// selection conditions — is produced exclusively by boolean-producing
// operations (compares, boolean logic over booleans, 0/1 constants, moves
// of booleans). A guard fed by arbitrary arithmetic would commit on any
// nonzero bit pattern, which the masking hardware model does not define.
func (c *treeChecker) checkGuards() {
	ba := newBoolAnalysis(c.fn)
	for _, op := range c.t.Ops {
		if op == nil || op.Guard == ir.NoReg || !c.regOK(op.Guard) {
			continue
		}
		if !ba.regBool(op.Guard) {
			c.fail("struct/non-boolean-guard", "op %%%d guard r%d is not produced by a boolean op (defs: %s)", op.ID, op.Guard, ba.describeDefs(op.Guard))
		}
	}
	for i, b := range c.t.Blocks {
		if b.Guard == ir.NoReg || !c.regOK(b.Guard) {
			continue
		}
		if !ba.regBool(b.Guard) {
			c.fail("struct/non-boolean-guard", "block %d condition r%d is not produced by a boolean op (defs: %s)", i, b.Guard, ba.describeDefs(b.Guard))
		}
	}
}

func (c *treeChecker) checkArcs(inTree map[*ir.Op]bool) {
	t := c.t
	type arcKey struct {
		from, to int
		kind     ir.DepKind
	}
	seen := map[arcKey]bool{}
	for _, a := range t.Arcs {
		if a == nil || a.From == nil || a.To == nil {
			c.fail("struct/nil-arc", "arc with nil endpoint")
			continue
		}
		if !inTree[a.From] || !inTree[a.To] {
			c.fail("struct/dangling-arc", "arc %s references an op no longer in the tree", a)
			continue
		}
		if a.From == a.To {
			c.fail("struct/self-arc", "arc %s joins an op to itself", a)
		}
		if a.From.Seq >= a.To.Seq {
			c.fail("struct/arc-order", "arc %s is not in Seq order (%d >= %d)", a, a.From.Seq, a.To.Seq)
		}
		if !a.From.Kind.IsMem() || !a.To.Kind.IsMem() {
			c.fail("struct/arc-endpoint", "arc %s endpoint is not a memory op (%s -> %s)", a, a.From.Kind, a.To.Kind)
			continue
		}
		if kind, ok := classifyPair(a.From, a.To); !ok || kind != a.Kind {
			c.fail("struct/arc-kind", "arc %s is labelled %s but its endpoints form a %v pair", a, a.Kind, kindName(a.From, a.To))
		}
		k := arcKey{a.From.ID, a.To.ID, a.Kind}
		if seen[k] {
			c.fail("struct/dup-arc", "arc %s appears twice", a)
		}
		seen[k] = true
		if a.AliasCount > a.ExecCount || a.AliasCount < 0 || a.ExecCount < 0 {
			c.fail("struct/arc-counters", "arc %s has alias count %d of %d executions", a, a.AliasCount, a.ExecCount)
		}
	}
}

func classifyPair(from, to *ir.Op) (ir.DepKind, bool) {
	switch {
	case from.Kind == ir.OpStore && to.Kind == ir.OpLoad:
		return ir.DepRAW, true
	case from.Kind == ir.OpLoad && to.Kind == ir.OpStore:
		return ir.DepWAR, true
	case from.Kind == ir.OpStore && to.Kind == ir.OpStore:
		return ir.DepWAW, true
	}
	return 0, false
}

func kindName(from, to *ir.Op) string {
	if k, ok := classifyPair(from, to); ok {
		return k.String()
	}
	return fmt.Sprintf("%s/%s", from.Kind, to.Kind)
}

// CheckProgram verifies program-wide invariants on top of CheckTree: the
// main function and exit targets exist, callee signatures match call sites,
// tree IDs index their slice, and the global memory layout is coherent.
func CheckProgram(p *ir.Program) []Finding {
	var out []Finding
	fail := func(fn, tree, check, format string, args ...any) {
		out = append(out, Finding{Check: check, Func: fn, Tree: tree, Msg: fmt.Sprintf(format, args...)})
	}
	if _, ok := p.Funcs[p.Main]; !ok {
		fail("", "", "prog/no-main", "main function %q missing", p.Main)
	}
	if len(p.Order) != len(p.Funcs) {
		fail("", "", "prog/order", "Order lists %d functions, Funcs holds %d", len(p.Order), len(p.Funcs))
	}
	var end int64
	for _, g := range p.Globals {
		if g.Base < 0 || g.Size < 0 || g.Base+g.Size > p.MemSize {
			fail("", "", "prog/global-bounds", "global %s [%d,%d) outside memory of %d words", g.Name, g.Base, g.Base+g.Size, p.MemSize)
		}
		if g.Base < end {
			fail("", "", "prog/global-overlap", "global %s at base %d overlaps the previous global ending at %d", g.Name, g.Base, end)
		}
		if int64(len(g.Init)) > g.Size {
			fail("", "", "prog/global-init", "global %s has %d initializers for %d words", g.Name, len(g.Init), g.Size)
		}
		end = g.Base + g.Size
	}
	for _, name := range p.Order {
		f, ok := p.Funcs[name]
		if !ok {
			fail(name, "", "prog/order", "Order names %q but Funcs lacks it", name)
			continue
		}
		if f.Entry < 0 || f.Entry >= len(f.Trees) {
			fail(name, "", "prog/entry", "entry tree %d out of range [0,%d)", f.Entry, len(f.Trees))
		}
		for i, t := range f.Trees {
			if t.ID != i {
				fail(name, "", "prog/tree-id", "tree at index %d has ID %d", i, t.ID)
			}
			if t.Fn != f {
				fail(name, fmt.Sprintf("T%d(%s)", t.ID, t.Name), "prog/tree-fn", "tree's Fn pointer is not its owning function")
			}
			out = append(out, CheckTree(t)...)
			treeLbl := fmt.Sprintf("T%d(%s)", t.ID, t.Name)
			for _, op := range t.Ops {
				if op == nil || op.Kind != ir.OpExit {
					continue
				}
				switch op.Exit {
				case ir.ExitGoto, ir.ExitCall:
					if op.Target < 0 || op.Target >= len(f.Trees) {
						fail(name, treeLbl, "prog/exit-target", "exit %%%d targets missing tree %d", op.ID, op.Target)
					}
				}
				if op.Exit == ir.ExitCall {
					callee, ok := p.Funcs[op.Callee]
					if !ok {
						fail(name, treeLbl, "prog/missing-callee", "exit %%%d calls missing function %q", op.ID, op.Callee)
					} else if len(op.CallArg) != len(callee.Params) {
						fail(name, treeLbl, "prog/call-arity", "exit %%%d passes %d args to %s, which takes %d", op.ID, len(op.CallArg), op.Callee, len(callee.Params))
					}
				}
			}
		}
	}
	return out
}
