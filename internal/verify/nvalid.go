package verify

// This file is verification layer 4b: the translation validator for the
// native tier. A native program is closure chains lowered through the
// bytecode stream under a superinstruction fusion plan, so validation has
// two halves: the retained bytecode source is validated against the tree
// with CheckBCode, and the fusion plan is re-derived instruction by
// instruction from an independent copy of the fusion preconditions — a plan
// entry the catalog cannot justify means the emitter built a closure whose
// semantics nobody proved. The chain lengths the executor and the fuel
// accounting rely on (Steps, Fused, NumGuarded) are recomputed from the
// plan and compared.

import (
	"fmt"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// NCode runs the native-tier translation validator and folds findings into
// one error, or nil.
func NCode(t *ir.Tree, p *ncode.Prog) error { return asError(CheckNCode(t, p)) }

// CheckNCode validates one compiled native program against its source tree.
// A nil program is vacuously valid (the tree runs on the reference walker).
func CheckNCode(t *ir.Tree, p *ncode.Prog) []Finding {
	if p == nil {
		return nil
	}
	c := &bcodeChecker{t: t, fn: t.Fn, p: p.Src}
	c.fail = func(check, format string, args ...any) {
		c.out = append(c.out, Finding{
			Check: check,
			Func:  c.fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	if p.Src == nil {
		c.fail("nvalid/no-src", "native program retains no bytecode source; nothing to validate against")
		return c.out
	}
	c.run()

	code := p.Src.Code
	if p.NumGuarded != p.Src.NumGuarded {
		c.fail("nvalid/guard-count", "native program declares %d guarded steps, bytecode source has %d", p.NumGuarded, p.Src.NumGuarded)
	}
	if len(p.Plan) != len(code) {
		c.fail("nvalid/plan-length", "fusion plan covers %d slots for %d instructions", len(p.Plan), len(code))
		return c.out
	}

	steps, fused := 0, 0
	for pc, k := range p.Plan {
		switch k {
		case ncode.FuseNone:
			// An unguarded nop emits no closure; everything else emits one.
			if !(code[pc].Op == bcode.Nop && code[pc].Guard < 0) {
				steps++
			}
		case ncode.FuseConsumed:
			if pc == 0 || !fuseHead(p.Plan[pc-1]) {
				c.fail("nvalid/fuse-orphan", "instr %d marked consumed without a preceding superinstruction head", pc)
			}
		case ncode.FuseCmpExit, ncode.FuseConstAlu, ncode.FusePair:
			steps++
			fused++
			if pc+1 >= len(code) || p.Plan[pc+1] != ncode.FuseConsumed {
				c.fail("nvalid/fuse-unconsumed", "superinstruction head at instr %d does not consume instr %d", pc, pc+1)
				continue
			}
			c.checkFusion(pc, k)
		default:
			c.fail("nvalid/fuse-kind", "instr %d has unknown fusion kind %d", pc, int(k))
		}
	}
	if p.Steps != steps {
		c.fail("nvalid/step-count", "native program declares %d steps, plan emits %d (fuel and cache metadata wrong)", p.Steps, steps)
	}
	if p.Fused != fused {
		c.fail("nvalid/fused-count", "native program declares %d superinstructions, plan holds %d", p.Fused, fused)
	}
	return c.out
}

// checkFusion re-derives the legality of one superinstruction head from the
// validator's own copy of the fusion preconditions.
func (c *bcodeChecker) checkFusion(pc int, k ncode.FuseKind) {
	code := c.p.Code
	in, nx := &code[pc], &code[pc+1]
	if in.Guard >= 0 || in.Dest < 0 {
		c.fail("nvalid/fuse-guarded", "superinstruction head at instr %d (%s) is guarded or has no destination", pc, in.Op)
		return
	}
	switch k {
	case ncode.FuseCmpExit:
		if !vIsCmp(in.Op) || nx.Op != bcode.Exit || nx.Guard != in.Dest {
			c.fail("nvalid/fuse-illegal", "compare+exit fusion at instr %d: %s does not feed the guard of %s", pc, in.Op, nx.Op)
		}
	case ncode.FuseConstAlu:
		if in.Op != bcode.Const || nx.Guard >= 0 || nx.Dest < 0 ||
			!vFusableAlu(nx.Op) || (nx.A != in.Dest && nx.B != in.Dest) {
			c.fail("nvalid/fuse-illegal", "const+arith fusion at instr %d: %s does not feed an operand of %s", pc, in.Op, nx.Op)
		}
	case ncode.FusePair:
		if nx.Guard >= 0 || nx.Dest < 0 || !vPairable(in.Op, nx.Op) {
			c.fail("nvalid/fuse-illegal", "pair fusion at instr %d: %s/%s is not in the hot-pair catalog", pc, in.Op, nx.Op)
		}
	}
}

func fuseHead(k ncode.FuseKind) bool {
	return k == ncode.FuseCmpExit || k == ncode.FuseConstAlu || k == ncode.FusePair
}

// vIsCmp, vFusableAlu and vPairable are the validator's independent copies
// of the fusion preconditions (see the package comment on re-derivation).

func vIsCmp(op bcode.Op) bool {
	switch op {
	case bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}

func vFusableAlu(op bcode.Op) bool {
	switch op {
	case bcode.Add, bcode.Sub, bcode.Mul, bcode.And, bcode.Or, bcode.Xor,
		bcode.Shl, bcode.Shr,
		bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}

func vPairable(op1, op2 bcode.Op) bool {
	switch op1 {
	case bcode.Const:
		return op2 == bcode.Const
	case bcode.Move:
		return op2 == bcode.Move
	case bcode.Add, bcode.Sub:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Mul, bcode.Load:
			return true
		default:
			return false
		}
	case bcode.Load:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Load, bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	case bcode.FMul, bcode.FAdd, bcode.FSub:
		switch op2 {
		case bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	default:
		return false
	}
}
