package verify

// This file is verification layer 4b: the translation validator for the
// native tier. A native program is closure chains lowered through the
// bytecode stream under a fusion plan — pairwise superinstructions and wide
// (width 3/4) fusion windows — so validation has two halves: the retained
// bytecode source is validated against the tree with CheckBCode, and the
// plan's tiling legality is re-derived instruction by instruction from an
// independent copy of the fusion catalog. The tiling invariants:
//
//   - windows and pairs cover the word stream exactly — every head consumes
//     exactly width-1 following slots, every consumed slot follows a head;
//   - a window never spans an exit — an exit may only terminate a window
//     (the window's exit logic re-reads the guard after every member lands,
//     which is why a terminal exit is sound and an interior one is not);
//   - every window member comes from the element catalog: unguarded,
//     destination-writing constants, moves, integer/float ALU, compares and
//     loads — never a store, print or guarded op, so fusion can never lift an
//     alias-side side effect out from under its guard.
//
// A plan entry the catalog cannot justify means the emitter built a closure
// whose semantics nobody proved. The chain lengths the executor, the fuel
// accounting and the artifact store rely on (Steps, Fused, Windows,
// NumGuarded) are recomputed from the plan and compared.

import (
	"fmt"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// NCode runs the native-tier translation validator and folds findings into
// one error, or nil.
func NCode(t *ir.Tree, p *ncode.Prog) error { return asError(CheckNCode(t, p)) }

// CheckNCode validates one compiled native program against its source tree.
// A nil program is vacuously valid (the tree runs on the reference walker).
func CheckNCode(t *ir.Tree, p *ncode.Prog) []Finding {
	if p == nil {
		return nil
	}
	c := &bcodeChecker{t: t, fn: t.Fn, p: p.Src}
	c.fail = func(check, format string, args ...any) {
		c.out = append(c.out, Finding{
			Check: check,
			Func:  c.fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	if p.Src == nil {
		c.fail("nvalid/no-src", "native program retains no bytecode source; nothing to validate against")
		return c.out
	}
	c.run()

	code := p.Src.Code
	if p.NumGuarded != p.Src.NumGuarded {
		c.fail("nvalid/guard-count", "native program declares %d guarded steps, bytecode source has %d", p.NumGuarded, p.Src.NumGuarded)
	}
	if len(p.Plan) != len(code) {
		c.fail("nvalid/plan-length", "fusion plan covers %d slots for %d instructions", len(p.Plan), len(code))
		return c.out
	}

	steps, fused, windows := 0, 0, 0
	for pc := 0; pc < len(p.Plan); pc++ {
		k := p.Plan[pc]
		w := headWidth(k)
		switch {
		case k == ncode.FuseNone:
			// An unguarded nop emits no closure; everything else emits one.
			if !(code[pc].Op == bcode.Nop && code[pc].Guard < 0) {
				steps++
			}
		case k == ncode.FuseConsumed:
			c.fail("nvalid/fuse-orphan", "instr %d marked consumed without a preceding superinstruction head", pc)
		case w > 0:
			steps++
			fused++
			if k == ncode.FuseWin3 || k == ncode.FuseWin4 {
				windows++
			}
			// The head must consume exactly w-1 following slots: a gap is a
			// mis-tiled plan (the emitter and the plan disagree about which
			// instructions the closure executes). On a gap, resume at the
			// first slot the head did not actually consume.
			adv := w - 1
			gapped := false
			for i := 1; i < w; i++ {
				if pc+i >= len(code) || p.Plan[pc+i] != ncode.FuseConsumed {
					c.fail("nvalid/fuse-unconsumed", "superinstruction head at instr %d does not consume instr %d", pc, pc+i)
					adv, gapped = i-1, true
					break
				}
			}
			if !gapped {
				if w > 2 {
					c.checkWindow(pc, w)
				} else {
					c.checkFusion(pc, k)
				}
			}
			pc += adv
		default:
			c.fail("nvalid/fuse-kind", "instr %d has unknown fusion kind %d", pc, int(k))
		}
	}
	if p.Steps != steps {
		c.fail("nvalid/step-count", "native program declares %d steps, plan emits %d (fuel and cache metadata wrong)", p.Steps, steps)
	}
	if p.Fused != fused {
		c.fail("nvalid/fused-count", "native program declares %d superinstructions, plan holds %d", p.Fused, fused)
	}
	if p.Windows != windows {
		c.fail("nvalid/window-count", "native program declares %d fusion windows, plan holds %d", p.Windows, windows)
	}
	return c.out
}

// checkWindow re-derives the legality of one width-3/4 fusion window from the
// validator's own copy of the element catalog: every member must be a catalog
// element, except that the final one may be an exit (any guard polarity — the
// window re-reads the guard register after all members land).
func (c *bcodeChecker) checkWindow(pc, w int) {
	code := c.p.Code
	for i := 0; i < w; i++ {
		in := &code[pc+i]
		if in.Op == bcode.Exit {
			if i != w-1 {
				c.fail("nvalid/win-exit", "fusion window at instr %d spans the exit at instr %d; an exit may only terminate a window", pc, pc+i)
			}
			continue
		}
		if !vWinElem(in) {
			c.fail("nvalid/win-member", "fusion window at instr %d holds non-member %s at instr %d (guarded, side-effecting or outside the element catalog)", pc, in.Op, pc+i)
		}
	}
}

// checkFusion re-derives the legality of one pairwise superinstruction head
// from the validator's own copy of the fusion preconditions.
func (c *bcodeChecker) checkFusion(pc int, k ncode.FuseKind) {
	code := c.p.Code
	in, nx := &code[pc], &code[pc+1]
	if in.Guard >= 0 || in.Dest < 0 {
		c.fail("nvalid/fuse-guarded", "superinstruction head at instr %d (%s) is guarded or has no destination", pc, in.Op)
		return
	}
	switch k {
	case ncode.FuseCmpExit:
		if !vIsCmp(in.Op) || nx.Op != bcode.Exit || nx.Guard != in.Dest {
			c.fail("nvalid/fuse-illegal", "compare+exit fusion at instr %d: %s does not feed the guard of %s", pc, in.Op, nx.Op)
		}
	case ncode.FuseConstAlu:
		if in.Op != bcode.Const || nx.Guard >= 0 || nx.Dest < 0 ||
			!vFusableAlu(nx.Op) || (nx.A != in.Dest && nx.B != in.Dest) {
			c.fail("nvalid/fuse-illegal", "const+arith fusion at instr %d: %s does not feed an operand of %s", pc, in.Op, nx.Op)
		}
	case ncode.FusePair:
		if nx.Guard >= 0 || nx.Dest < 0 || !vPairable(in.Op, nx.Op) {
			c.fail("nvalid/fuse-illegal", "pair fusion at instr %d: %s/%s is not in the hot-pair catalog", pc, in.Op, nx.Op)
		}
	}
}

// headWidth maps a superinstruction head kind to the number of instruction
// words it covers (0 for non-heads).
func headWidth(k ncode.FuseKind) int {
	switch k {
	case ncode.FuseCmpExit, ncode.FuseConstAlu, ncode.FusePair:
		return 2
	case ncode.FuseWin3:
		return 3
	case ncode.FuseWin4:
		return 4
	default:
		return 0
	}
}

// vWinElem, vIsCmp, vFusableAlu and vPairable are the validator's independent
// copies of the fusion catalog (see the file comment on re-derivation).

func vWinElem(in *bcode.Instr) bool {
	if in.Guard >= 0 || in.Dest < 0 {
		return false
	}
	switch in.Op {
	case bcode.Const, bcode.Move,
		bcode.Add, bcode.Sub, bcode.Mul, bcode.And, bcode.Or, bcode.Xor,
		bcode.Shl, bcode.Shr,
		bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv,
		bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE,
		bcode.Load:
		return true
	default:
		return false
	}
}

func vIsCmp(op bcode.Op) bool {
	switch op {
	case bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}

func vFusableAlu(op bcode.Op) bool {
	switch op {
	case bcode.Add, bcode.Sub, bcode.Mul, bcode.And, bcode.Or, bcode.Xor,
		bcode.Shl, bcode.Shr,
		bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE,
		bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv,
		bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
		return true
	default:
		return false
	}
}

func vPairable(op1, op2 bcode.Op) bool {
	switch op1 {
	case bcode.Const:
		return op2 == bcode.Const
	case bcode.Move:
		return op2 == bcode.Move
	case bcode.Add, bcode.Sub:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Mul, bcode.Load:
			return true
		default:
			return false
		}
	case bcode.Load:
		switch op2 {
		case bcode.Add, bcode.Sub, bcode.Load, bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	case bcode.FMul, bcode.FAdd, bcode.FSub:
		switch op2 {
		case bcode.FMul, bcode.FAdd, bcode.FSub:
			return true
		default:
			return false
		}
	default:
		return false
	}
}
