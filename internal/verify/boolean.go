package verify

import (
	"fmt"
	"sort"
	"strings"

	"specdis/internal/ir"
)

// boolAnalysis decides, function-wide, whether a register only ever holds a
// boolean (0/1) value. A register is boolean iff it has at least one
// definition and every definition is boolean-producing:
//
//   - a compare (integer or floating) — the machine defines these as 0/1;
//   - boolean logic (bnot/band/bandnot) — by construction over booleans;
//   - and/or/xor of two boolean operands (if-conversion lowers && and ||
//     this way);
//   - a 0/1 constant;
//   - a move of a boolean (merge moves copy guard values between paths).
//
// The analysis is cycle-tolerant: a definition chain that loops back to a
// register currently being decided (a loop-carried merge) assumes the
// in-progress register is boolean; any non-boolean producer on the cycle
// still poisons the whole strongly connected group.
type boolAnalysis struct {
	fn   *ir.Function
	defs map[ir.Reg][]*ir.Op
	memo map[ir.Reg]bool
	busy map[ir.Reg]bool
}

func newBoolAnalysis(fn *ir.Function) *boolAnalysis {
	a := &boolAnalysis{
		fn:   fn,
		defs: map[ir.Reg][]*ir.Op{},
		memo: map[ir.Reg]bool{},
		busy: map[ir.Reg]bool{},
	}
	for _, t := range fn.Trees {
		for _, op := range t.Ops {
			if op != nil && op.Dest != ir.NoReg {
				a.defs[op.Dest] = append(a.defs[op.Dest], op)
			}
		}
	}
	return a
}

func (a *boolAnalysis) regBool(r ir.Reg) bool {
	if v, ok := a.memo[r]; ok {
		return v
	}
	if a.busy[r] {
		return true // loop-carried: optimistic; a real violation poisons elsewhere
	}
	defs := a.defs[r]
	if len(defs) == 0 {
		return false // parameter or undefined: nothing guarantees 0/1
	}
	a.busy[r] = true
	ok := true
	for _, d := range defs {
		if !a.opBool(d) {
			ok = false
			break
		}
	}
	delete(a.busy, r)
	a.memo[r] = ok
	return ok
}

func (a *boolAnalysis) opBool(op *ir.Op) bool {
	switch op.Kind {
	case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
		ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return true
	case ir.OpBNot:
		return a.regBool(op.Args[0])
	case ir.OpBAnd, ir.OpBAndNot:
		return a.regBool(op.Args[0]) && a.regBool(op.Args[1])
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		return a.regBool(op.Args[0]) && a.regBool(op.Args[1])
	case ir.OpConst:
		return op.Imm.I == 0 || op.Imm.I == 1
	case ir.OpMove:
		return a.regBool(op.Args[0])
	case ir.OpExit:
		// ExitCall return value: opaque, not known boolean.
		return false
	}
	return false
}

// describeDefs summarizes the kinds defining r, for diagnostics.
func (a *boolAnalysis) describeDefs(r ir.Reg) string {
	defs := a.defs[r]
	if len(defs) == 0 {
		return "none"
	}
	kinds := map[string]bool{}
	for _, d := range defs {
		kinds[d.Kind.String()] = true
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return fmt.Sprintf("%d op(s): %s", len(defs), strings.Join(names, ","))
}
