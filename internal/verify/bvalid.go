package verify

// This file is verification layer 4a: a translation validator for the
// bytecode tier. Where layers 1–3 audit the tree IR itself, CheckBCode
// audits a compiled artifact *against* its source tree — the thing the
// simulator actually executes, and the thing the persistent artifact store
// loads back across processes. A compile bug, a stale artifact bound to the
// wrong tree, or a corrupted payload that survived the store's CRC is
// rejected statically here instead of producing wrong prices.
//
// Two passes run over the instruction stream:
//
//   - Correspondence: every instruction word is compared against the op at
//     the same index (instruction index == Seq is the tier's contract, and
//     what makes per-tree fuel accounting and Seq-indexed profiling tables
//     sound): opcode family, operand registers, destination, constant-pool
//     value, exit-target bounds, and — the SpD core — guard register, guard
//     polarity, and the commit-bit slot sequence that the trace wire format
//     and the commit-exclusion checker rely on.
//
//   - Abstract interpretation: a forward pass over the words with a four
//     point type lattice (⊥, int, float, any) proving every register read
//     has a reaching definition (parameter, other-tree def, loop-carried
//     def, or an earlier instruction) and that no integer-consuming operand
//     position reads a provably-float register. Guards additionally must
//     not be float-typed (the commit test reads the integer view).
//
// The validator deliberately re-derives the expected lowering (opcode
// tables, operand shapes) instead of importing bcode's compiler internals:
// translation validation is only worth its name if the checker cannot
// inherit the compiler's bugs.

import (
	"fmt"
	"math"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// BCode runs the bytecode translation validator and folds findings into one
// error, or nil. This is the oracle form used by debug hooks and fuzzers.
func BCode(t *ir.Tree, p *bcode.Prog) error { return asError(CheckBCode(t, p)) }

// CheckBCode validates one compiled bytecode program against its source
// tree. A nil program is vacuously valid (the tree runs on the reference
// walker). The tree is taken as ground truth: callers lint the tree with
// CheckTree/CheckProgram separately.
func CheckBCode(t *ir.Tree, p *bcode.Prog) []Finding {
	if p == nil {
		return nil
	}
	c := &bcodeChecker{t: t, fn: t.Fn, p: p}
	c.fail = func(check, format string, args ...any) {
		c.out = append(c.out, Finding{
			Check: check,
			Func:  c.fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	c.run()
	return c.out
}

type bcodeChecker struct {
	t    *ir.Tree
	fn   *ir.Function
	p    *bcode.Prog
	out  []Finding
	fail func(check, format string, args ...any)
}

// bcPure mirrors the compiler's pure-op lowering table, re-derived here so
// the validator does not inherit compiler bugs. Kinds with bespoke lowering
// (const, memory, print, exit, nop) are absent.
var bcPure = map[ir.OpKind]struct {
	op    bcode.Op
	nargs int
}{
	ir.OpMove: {bcode.Move, 1},
	ir.OpAdd:  {bcode.Add, 2}, ir.OpSub: {bcode.Sub, 2}, ir.OpMul: {bcode.Mul, 2},
	ir.OpDiv: {bcode.Div, 2}, ir.OpRem: {bcode.Rem, 2}, ir.OpNeg: {bcode.Neg, 1},
	ir.OpAnd: {bcode.And, 2}, ir.OpOr: {bcode.Or, 2}, ir.OpXor: {bcode.Xor, 2},
	ir.OpNot: {bcode.Not, 1}, ir.OpShl: {bcode.Shl, 2}, ir.OpShr: {bcode.Shr, 2},
	ir.OpBNot: {bcode.BNot, 1}, ir.OpBAnd: {bcode.BAnd, 2}, ir.OpBAndNot: {bcode.BAndNot, 2},
	ir.OpCmpEQ: {bcode.CmpEQ, 2}, ir.OpCmpNE: {bcode.CmpNE, 2}, ir.OpCmpLT: {bcode.CmpLT, 2},
	ir.OpCmpLE: {bcode.CmpLE, 2}, ir.OpCmpGT: {bcode.CmpGT, 2}, ir.OpCmpGE: {bcode.CmpGE, 2},
	ir.OpFAdd: {bcode.FAdd, 2}, ir.OpFSub: {bcode.FSub, 2}, ir.OpFMul: {bcode.FMul, 2},
	ir.OpFDiv: {bcode.FDiv, 2}, ir.OpFNeg: {bcode.FNeg, 1},
	ir.OpFCmpEQ: {bcode.FCmpEQ, 2}, ir.OpFCmpNE: {bcode.FCmpNE, 2},
	ir.OpFCmpLT: {bcode.FCmpLT, 2}, ir.OpFCmpLE: {bcode.FCmpLE, 2},
	ir.OpFCmpGT: {bcode.FCmpGT, 2}, ir.OpFCmpGE: {bcode.FCmpGE, 2},
	ir.OpCvtIF: {bcode.CvtIF, 1}, ir.OpCvtFI: {bcode.CvtFI, 1},
	ir.OpSqrt: {bcode.Sqrt, 1}, ir.OpFAbs: {bcode.FAbs, 1}, ir.OpSin: {bcode.Sin, 1},
	ir.OpCos: {bcode.Cos, 1}, ir.OpExp: {bcode.Exp, 1}, ir.OpLog: {bcode.Log, 1},
}

func (c *bcodeChecker) run() {
	t, p := c.t, c.p
	if len(p.Code) != len(t.Ops) {
		// The whole tier contract hangs on index == Seq: fuel is charged per
		// tree as len(t.Ops), and profiling tables are Seq-indexed. Nothing
		// else is checkable when the shapes disagree.
		c.fail("bvalid/length", "program has %d instructions for %d ops (fuel accounting and Seq indexing broken)", len(p.Code), len(t.Ops))
		return
	}
	c.checkCorrespondence()
	c.checkAbstract()
}

// checkCorrespondence compares each instruction word against its source op.
func (c *bcodeChecker) checkCorrespondence() {
	t, p := c.t, c.p
	gi := 0
	bitSeen := map[uint16]int{} // commit-bit slot -> first claiming instr index
	for i := range p.Code {
		in, op := &p.Code[i], t.Ops[i]
		if op == nil {
			continue // CheckTree reports struct/nil-op
		}

		// Guard, polarity, and commit-bit slot: the compiled commit protocol
		// must match what the speculation checker proved on the tree.
		if op.IsGuarded() {
			if in.Guard != int32(op.Guard) {
				c.fail("bvalid/guard", "instr %d guards on r%d, op %%%d on r%d", i, in.Guard, op.ID, op.Guard)
			}
			if in.GNeg != op.GuardNeg {
				c.fail("bvalid/guard-polarity", "instr %d has guard polarity %v, op %%%d has %v (commit mask inverted)", i, in.GNeg, op.ID, op.GuardNeg)
			}
			if first, dup := bitSeen[in.GIdx]; dup {
				c.fail("bvalid/commit-dup", "instr %d claims commit bit %d already claimed by instr %d (double commit)", i, in.GIdx, first)
			} else {
				bitSeen[in.GIdx] = i
			}
			if int(in.GIdx) != gi {
				c.fail("bvalid/commit-bit", "instr %d has commit bit %d, want %d (the op's index among guarded ops in Seq order)", i, in.GIdx, gi)
			}
			gi++
		} else if in.Guard >= 0 {
			c.fail("bvalid/guard", "instr %d is guarded on r%d but op %%%d is unguarded", i, in.Guard, op.ID)
		}
		if op.SpecSide != 0 && op.Kind.HasSideEffect() && op.Kind != ir.OpExit && in.Guard < 0 {
			c.fail("bvalid/spec-guard", "instr %d: side-effecting %s %%%d on alias side %+d compiled without its guard", i, op.Kind, op.ID, op.SpecSide)
		}

		c.checkWord(i, in, op)
	}
	if p.NumGuarded != gi {
		c.fail("bvalid/guard-count", "program declares %d guarded instructions, stream has %d (commit-bit width wrong)", p.NumGuarded, gi)
	}
}

// checkWord validates one instruction's opcode and operand fields against
// its source op.
func (c *bcodeChecker) checkWord(i int, in *bcode.Instr, op *ir.Op) {
	t, p := c.t, c.p
	argIs := func(field string, got int32, k int) {
		if k >= len(op.Args) {
			return // arity reported by CheckTree
		}
		if got != int32(op.Args[k]) {
			c.fail("bvalid/operand", "instr %d %s reads r%d, op %%%d operand %d is r%d", i, field, got, op.ID, k, op.Args[k])
		}
	}
	destIs := func(want ir.Reg) {
		w := int32(want)
		if want == ir.NoReg {
			w = -1
		}
		if in.Dest != w {
			c.fail("bvalid/dest", "instr %d writes r%d, op %%%d writes r%d", i, in.Dest, op.ID, w)
		}
	}
	regRange := func(field string, r int32) {
		if r >= 0 && int(r) >= c.fn.NumRegs {
			c.fail("bvalid/reg-range", "instr %d %s r%d outside the register file (%d regs)", i, field, r, c.fn.NumRegs)
		}
	}
	regRange("guard", in.Guard)
	if in.Op != bcode.Const {
		regRange("A", in.A)
	}
	regRange("B", in.B)
	regRange("dest", in.Dest)

	badOp := func(want string) {
		c.fail("bvalid/opcode", "instr %d is %s, op %%%d (%s) lowers to %s", i, in.Op, op.ID, op.Kind, want)
	}
	switch op.Kind {
	case ir.OpNop:
		if in.Op != bcode.Nop {
			badOp("nop")
		}
	case ir.OpConst:
		if op.Dest == ir.NoReg {
			if in.Op != bcode.Nop {
				badOp("nop (discarded result)")
			}
			break
		}
		if in.Op != bcode.Const {
			badOp("const")
			break
		}
		if in.A < 0 || int(in.A) >= len(p.Consts) {
			c.fail("bvalid/const-pool", "instr %d reads constant slot %d of a %d-entry pool", i, in.A, len(p.Consts))
			break
		}
		if v := p.Consts[in.A]; v.I != op.Imm.I || math.Float64bits(v.F) != math.Float64bits(op.Imm.F) {
			c.fail("bvalid/const-value", "instr %d pool value (%d, %g) differs from op %%%d immediate (%d, %g)", i, v.I, v.F, op.ID, op.Imm.I, op.Imm.F)
		}
		destIs(op.Dest)
	case ir.OpLoad:
		if in.Op != bcode.Load {
			badOp("load")
			break
		}
		argIs("address", in.A, 0)
		destIs(op.Dest)
	case ir.OpStore:
		if in.Op != bcode.Store {
			badOp("store")
			break
		}
		argIs("address", in.A, 0)
		argIs("value", in.B, 1)
		destIs(ir.NoReg)
	case ir.OpPrint:
		want := bcode.PrintI
		if op.PrintFloat {
			want = bcode.PrintF
		}
		if in.Op != want {
			badOp(want.String())
			break
		}
		argIs("value", in.A, 0)
		destIs(ir.NoReg)
	case ir.OpExit:
		if in.Op != bcode.Exit {
			badOp("exit")
			break
		}
		destIs(ir.NoReg)
		switch op.Exit {
		case ir.ExitGoto, ir.ExitCall:
			if op.Target < 0 || op.Target >= len(t.Fn.Trees) {
				c.fail("bvalid/exit-target", "instr %d exit targets tree %d of %d", i, op.Target, len(t.Fn.Trees))
			}
		}
	default:
		spec, known := bcPure[op.Kind]
		if !known {
			c.fail("bvalid/opcode", "instr %d: op %%%d has kind %s outside the bytecode repertoire", i, op.ID, op.Kind)
			break
		}
		if op.Dest == ir.NoReg {
			if in.Op != bcode.Nop {
				badOp("nop (discarded result)")
			}
			break
		}
		if in.Op != spec.op {
			badOp(spec.op.String())
			break
		}
		argIs("A", in.A, 0)
		if spec.nargs == 2 {
			argIs("B", in.B, 1)
		} else if in.B != -1 {
			c.fail("bvalid/operand", "instr %d (%s) reads a spurious second operand r%d", i, in.Op, in.B)
		}
		destIs(op.Dest)
	}
}

// absType is the abstract interpreter's four-point type lattice.
type absType uint8

const (
	absBot   absType = iota // no definition reaches this register
	absInt                  // every reaching definition produces an integer
	absFloat                // every reaching definition produces a float
	absAny                  // definitions of mixed or unknown type
)

func (a absType) String() string {
	switch a {
	case absBot:
		return "undefined"
	case absInt:
		return "int"
	case absFloat:
		return "float"
	}
	return "any"
}

func absJoin(a, b absType) absType {
	switch {
	case a == b:
		return a
	case a == absBot:
		return b
	case b == absBot:
		return a
	}
	return absAny
}

// checkAbstract runs the forward abstract interpretation: defined-before-use
// over the instruction stream, with the int/float lattice flagging integer
// operand positions fed by provably-float registers.
func (c *bcodeChecker) checkAbstract() {
	t, fn, p := c.t, c.fn, c.p
	if fn.NumRegs <= 0 {
		return
	}
	state := make([]absType, fn.NumRegs)

	// Registers defined outside this instruction stream are unknown but
	// defined: parameters, definitions in other trees, and — when the tree
	// can re-execute before the function returns — this tree's own later
	// definitions (loop-carried values). This mirrors checkDefBeforeUse.
	seed := func(r ir.Reg) {
		if r >= 0 && int(r) < fn.NumRegs {
			state[r] = absAny
		}
	}
	for _, prm := range fn.Params {
		seed(prm)
	}
	loopCarried := selfReachable(fn, t)
	for _, tr := range fn.Trees {
		if tr == t && !loopCarried {
			continue
		}
		for _, op := range tr.Ops {
			if op != nil && op.Dest != ir.NoReg {
				seed(op.Dest)
			}
		}
	}

	read := func(i int, in *bcode.Instr, field string, r int32, wantInt bool) {
		if r < 0 || int(r) >= fn.NumRegs {
			return // reported by checkWord
		}
		switch {
		case state[r] == absBot:
			c.fail("bvalid/use-before-def", "instr %d (%s) reads %s r%d before any definition", i, in.Op, field, r)
		case wantInt && state[r] == absFloat:
			c.fail("bvalid/type", "instr %d (%s) reads float r%d in integer position %s", i, in.Op, r, field)
		}
	}
	for i := range p.Code {
		in := &p.Code[i]
		if in.Guard >= 0 && int(in.Guard) < fn.NumRegs {
			switch state[in.Guard] {
			case absBot:
				c.fail("bvalid/use-before-def", "instr %d (%s) reads guard r%d before any definition", i, in.Op, in.Guard)
			case absFloat:
				c.fail("bvalid/guard-type", "instr %d (%s) guards on float r%d (the commit test reads the integer view)", i, in.Op, in.Guard)
			}
		}

		var res absType
		switch in.Op {
		case bcode.Nop:
			continue
		case bcode.Const:
			// Pool values are opaque: the IR does not tag immediates, so an
			// integer constant and a float constant are indistinguishable.
			res = absAny
		case bcode.Move:
			read(i, in, "operand", in.A, false)
			if in.A >= 0 && int(in.A) < fn.NumRegs {
				res = state[in.A]
			} else {
				res = absAny
			}
		case bcode.Add, bcode.Sub, bcode.Mul, bcode.Div, bcode.Rem,
			bcode.And, bcode.Or, bcode.Xor, bcode.Shl, bcode.Shr,
			bcode.CmpEQ, bcode.CmpNE, bcode.CmpLT, bcode.CmpLE, bcode.CmpGT, bcode.CmpGE:
			read(i, in, "A", in.A, true)
			read(i, in, "B", in.B, true)
			res = absInt
		case bcode.Neg, bcode.Not:
			read(i, in, "operand", in.A, true)
			res = absInt
		case bcode.BNot:
			read(i, in, "operand", in.A, true)
			res = absInt
		case bcode.BAnd, bcode.BAndNot:
			read(i, in, "A", in.A, true)
			read(i, in, "B", in.B, true)
			res = absInt
		case bcode.FAdd, bcode.FSub, bcode.FMul, bcode.FDiv:
			read(i, in, "A", in.A, false)
			read(i, in, "B", in.B, false)
			res = absFloat
		case bcode.FNeg, bcode.Sqrt, bcode.FAbs, bcode.Sin, bcode.Cos, bcode.Exp, bcode.Log:
			read(i, in, "operand", in.A, false)
			res = absFloat
		case bcode.FCmpEQ, bcode.FCmpNE, bcode.FCmpLT, bcode.FCmpLE, bcode.FCmpGT, bcode.FCmpGE:
			read(i, in, "A", in.A, false)
			read(i, in, "B", in.B, false)
			res = absInt // compares produce the 0/1 boolean encoding
		case bcode.CvtIF:
			read(i, in, "operand", in.A, true)
			res = absFloat
		case bcode.CvtFI:
			read(i, in, "operand", in.A, false)
			res = absInt
		case bcode.Load:
			read(i, in, "address", in.A, true)
			res = absAny
		case bcode.Store:
			read(i, in, "address", in.A, true)
			read(i, in, "value", in.B, false)
			continue
		case bcode.PrintI:
			read(i, in, "value", in.A, true)
			continue
		case bcode.PrintF:
			read(i, in, "value", in.A, false)
			continue
		case bcode.Exit:
			continue
		default:
			c.fail("bvalid/opcode", "instr %d has unknown opcode %d", i, int(in.Op))
			continue
		}

		if in.Dest >= 0 && int(in.Dest) < fn.NumRegs {
			if in.Guard >= 0 {
				// A squashed guarded write leaves the old value in place, so
				// the post-state is the join of both outcomes (a ⊥ register
				// still becomes defined: the tree-level checker counts any
				// definition, and the guard may well hold).
				state[in.Dest] = absJoin(state[in.Dest], res)
			} else {
				state[in.Dest] = res
			}
		}
	}
}
