package verify

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/trace"
)

// This file audits dependence soundness across disambiguators. The paper's
// §2 contract is that a disambiguator may only remove superfluous arcs —
// dependences that can never occur. Three checks enforce it after the fact:
//
//   - Lattice: a refined program's arc set is a subset of its base's,
//     arc-wise per tree (NAIVE ⊇ STATIC ⊇ SPEC). A refinement that *adds*
//     an ordering between pre-existing ops invented a dependence.
//
//   - Removed-arc audit: any arc the base carries and the refinement
//     dropped must never have been observed aliasing at runtime. A removed
//     arc with a nonzero profiled alias count is a hard soundness violation
//     (distinct from PERFECT's removals, which are justified precisely by a
//     zero alias count over the profiled run).
//
//   - Count cross-check: the profiled ExecCount of every arc must equal the
//     both-endpoints-committed count recomputed independently from the
//     trace histogram of the same run — the profiling pass and the trace
//     recorder must agree on what committed.
//
// Arcs are keyed by endpoint op IDs, which are stable across pipelines: all
// four disambiguators compile the same source deterministically, and SpD
// allocates strictly fresh IDs for the ops it adds.

// arcKey identifies an arc by its endpoints and kind.
type arcKey struct {
	from, to int
	kind     ir.DepKind
}

func arcKeys(t *ir.Tree) map[arcKey]*ir.MemArc {
	m := make(map[arcKey]*ir.MemArc, len(t.Arcs))
	for _, a := range t.Arcs {
		if a != nil && a.From != nil && a.To != nil {
			m[arcKey{a.From.ID, a.To.ID, a.Kind}] = a
		}
	}
	return m
}

func treeFinding(t *ir.Tree, check, format string, args ...any) Finding {
	return Finding{
		Check: check,
		Func:  t.Fn.Name,
		Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
		Msg:   fmt.Sprintf(format, args...),
	}
}

// CheckLattice verifies refined ⊆ base arc-wise for one tree pair: every
// arc of the refined tree between ops that already existed in the base tree
// must be present in the base. Arcs with at least one endpoint added by a
// transformation (ID unknown to the base tree) are exempt — those orderings
// are the transformation's own, inherited per §4's rules.
func CheckLattice(base, refined *ir.Tree, baseName, refinedName string) []Finding {
	var out []Finding
	baseOps := map[int]bool{}
	for _, op := range base.Ops {
		if op != nil {
			baseOps[op.ID] = true
		}
	}
	baseArcs := arcKeys(base)
	for _, a := range refined.Arcs {
		if a == nil || a.From == nil || a.To == nil {
			continue // reported by CheckTree
		}
		if !baseOps[a.From.ID] || !baseOps[a.To.ID] {
			continue
		}
		if _, ok := baseArcs[arcKey{a.From.ID, a.To.ID, a.Kind}]; !ok {
			out = append(out, treeFinding(refined, "arcs/lattice",
				"%s carries arc %s between ops that exist in %s, but %s has no such arc",
				refinedName, a, baseName, baseName))
		}
	}
	return out
}

// AuditRemovedArcs flags every arc present in base but absent from refined
// whose base-side profile observed the endpoints aliasing. Such an arc is a
// real dependence the refinement erased — the hard violation the paper's
// superfluous-arc rule forbids. Arcs never profiled (ExecCount == 0) or
// never seen aliasing cannot be judged and pass.
//
// This audit applies to refinements that claim their removals are *proofs*
// (static disambiguation) or *profile-justified* (the PERFECT oracle). Do
// not run it against SpD output: SpD removes arcs precisely because it
// guards the speculation at run time.
func AuditRemovedArcs(base, refined *ir.Tree, baseName, refinedName string) []Finding {
	var out []Finding
	refinedArcs := arcKeys(refined)
	for _, a := range base.Arcs {
		if a == nil || a.From == nil || a.To == nil {
			continue
		}
		if _, kept := refinedArcs[arcKey{a.From.ID, a.To.ID, a.Kind}]; kept {
			continue
		}
		if a.AliasCount > 0 {
			out = append(out, treeFinding(base, "arcs/unsound-removal",
				"%s removed arc %s, but %s profiling observed its references aliasing %d of %d times",
				refinedName, a, baseName, a.AliasCount, a.ExecCount))
		}
	}
	return out
}

// CompareArcPrograms runs CheckLattice — and, when auditRemovals is set,
// AuditRemovedArcs — over every tree pair of two programs compiled from the
// same source. Trees are matched positionally (function order and tree IDs
// are deterministic across pipelines).
func CompareArcPrograms(base, refined *ir.Program, baseName, refinedName string, auditRemovals bool) []Finding {
	var out []Finding
	for _, name := range base.Order {
		bf, rf := base.Funcs[name], refined.Funcs[name]
		if rf == nil {
			out = append(out, Finding{Check: "arcs/missing-func", Func: name,
				Msg: fmt.Sprintf("%s lacks function %q present in %s", refinedName, name, baseName)})
			continue
		}
		if len(bf.Trees) != len(rf.Trees) {
			out = append(out, Finding{Check: "arcs/tree-count", Func: name,
				Msg: fmt.Sprintf("%s has %d trees, %s has %d", baseName, len(bf.Trees), refinedName, len(rf.Trees))})
			continue
		}
		for i := range bf.Trees {
			out = append(out, CheckLattice(bf.Trees[i], rf.Trees[i], baseName, refinedName)...)
			if auditRemovals {
				out = append(out, AuditRemovedArcs(bf.Trees[i], rf.Trees[i], baseName, refinedName)...)
			}
		}
	}
	return out
}

// CrossCheckArcCounts recomputes, from a trace histogram, how often both
// endpoints of each arc committed on the same tree execution, and compares
// the result to the arc's profiled ExecCount. The histogram must come from
// the same interpretation that filled the profile counters (the sim runner
// records both in one pass); a mismatch means the profiling pass and the
// trace recorder disagree about what committed. AliasCount cannot be
// recomputed (the trace carries no addresses) but must never exceed the
// recomputed execution count.
func CrossCheckArcCounts(t *ir.Tree, h *trace.Hist) []Finding {
	var out []Finding
	if h == nil || len(t.Arcs) == 0 {
		return nil
	}
	guardedIdx := map[int]int{} // op ID -> guarded-op bit index
	k := 0
	for _, op := range t.Ops {
		if op != nil && op.IsGuarded() {
			guardedIdx[op.ID] = k
			k++
		}
	}
	// committedCount(op) = executions on which op committed: every execution
	// for unguarded ops, the bit-set ones for guarded ops.
	counts := make([]int64, len(t.Arcs))
	for _, e := range h.Entries {
		if e.Idx != t.PIdx {
			continue
		}
		for i, a := range t.Arcs {
			if a == nil || a.From == nil || a.To == nil {
				continue
			}
			fromOK, toOK := true, true
			if k, ok := guardedIdx[a.From.ID]; ok {
				fromOK = e.Bit(k)
			}
			if k, ok := guardedIdx[a.To.ID]; ok {
				toOK = e.Bit(k)
			}
			if fromOK && toOK {
				counts[i] += e.Count
			}
		}
	}
	for i, a := range t.Arcs {
		if a == nil || a.From == nil || a.To == nil {
			continue
		}
		if counts[i] != a.ExecCount {
			out = append(out, treeFinding(t, "arcs/count-mismatch",
				"arc %s: profile says both endpoints committed %d time(s), trace replay says %d",
				a, a.ExecCount, counts[i]))
		}
		if a.AliasCount > counts[i] {
			out = append(out, treeFinding(t, "arcs/alias-overcount",
				"arc %s: alias count %d exceeds the %d executions on which both endpoints committed",
				a, a.AliasCount, counts[i]))
		}
	}
	return out
}
