package verify_test

import (
	"strings"
	"testing"

	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/trace"
	"specdis/internal/verify"
)

// testSrc has an ambiguous cross-parameter RAW (static disambiguation cannot
// separate a[] from b[]), a guarded store inside an if, and an aliasing call
// so profiling observes real aliases.
const testSrc = `
int A[16];
int B[16];

int kernel(int a[], int b[], int i, int j) {
	a[i] = a[i] + 3;
	int v = b[j];
	if (v > 8) {
		a[j] = v;
	}
	return v * 2;
}

void main() {
	for (int k = 0; k < 16; k = k + 1) {
		A[k] = k;
		B[k] = 2 * k;
	}
	int s = 0;
	for (int k = 0; k < 8; k = k + 1) {
		s = s + kernel(A, B, k, k + 1);
		s = s + kernel(A, A, k, k);
	}
	print(s);
}
`

func mustCompile(t *testing.T) *ir.Program {
	t.Helper()
	p, err := compile.Compile(testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// wantFinding asserts that some finding carries the check ID and mentions
// substr (the op or arc the diagnostic must name).
func wantFinding(t *testing.T, fs []verify.Finding, check, substr string) {
	t.Helper()
	for _, f := range fs {
		if f.Check == check && strings.Contains(f.Msg, substr) {
			return
		}
	}
	t.Errorf("no finding [%s] mentioning %q; got %v", check, substr, fs)
}

func wantClean(t *testing.T, fs []verify.Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Errorf("expected no findings, got %d:\n%v", len(fs), fs)
	}
}

// anyTree returns a tree of the program containing at least one memory arc.
func anyTree(t *testing.T, p *ir.Program) *ir.Tree {
	t.Helper()
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			if len(tr.Arcs) > 0 {
				return tr
			}
		}
	}
	t.Fatal("no tree with arcs")
	return nil
}

func TestCompiledProgramIsClean(t *testing.T) {
	p := mustCompile(t)
	wantClean(t, verify.CheckProgram(p))
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			wantClean(t, verify.CheckSpecTree(tr))
		}
	}
}

func TestStructuralRejectsSeededViolations(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, p *ir.Program) *ir.Tree
		check   string
		mention string
	}{
		{"seq-order", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			tr.Ops[0], tr.Ops[1] = tr.Ops[1], tr.Ops[0] // no Renumber
			return tr
		}, "struct/seq-order", "Seq"},
		{"foreign-op", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			op := &ir.Op{ID: tr.IDBound() + 7, Kind: ir.OpNop, Dest: ir.NoReg,
				Guard: ir.NoReg, Seq: len(tr.Ops)}
			tr.Ops = append(tr.Ops, op)
			return tr
		}, "struct/foreign-op", "ID range"},
		{"reg-range", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			for _, op := range tr.Ops {
				if len(op.Args) > 0 {
					op.Args[0] = 9999
					return tr
				}
			}
			t.Fatal("no op with args")
			return nil
		}, "struct/reg-range", "r9999"},
		{"arity", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			for _, op := range tr.Ops {
				if op.Kind == ir.OpStore {
					op.Args = op.Args[:1]
					return tr
				}
			}
			t.Fatal("no store")
			return nil
		}, "struct/arity", "store"},
		{"undefined-reg", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			fresh := tr.Fn.NewReg()
			for _, op := range tr.Ops {
				if len(op.Args) > 0 {
					op.Args[0] = fresh
					return tr
				}
			}
			t.Fatal("no op with args")
			return nil
		}, "struct/undefined-reg", "no op or parameter defines"},
		{"non-boolean-guard", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			var add *ir.Op
			for _, op := range tr.Ops {
				if op.Kind == ir.OpAdd && op.Dest != ir.NoReg {
					add = op
					break
				}
			}
			if add == nil {
				t.Fatal("no add")
			}
			for _, op := range tr.Ops {
				if op.Kind == ir.OpStore && op.Seq > add.Seq {
					op.Guard = add.Dest
					return tr
				}
			}
			t.Fatal("no store after add")
			return nil
		}, "struct/non-boolean-guard", "not produced by a boolean op"},
		{"ambiguous-exit", func(t *testing.T, p *ir.Program) *ir.Tree {
			for _, name := range p.Order {
				for _, tr := range p.Funcs[name].Trees {
					if exits := tr.Exits(); len(exits) > 1 {
						exits[0].Guard = ir.NoReg
						return tr
					}
				}
			}
			t.Fatal("no multi-exit tree")
			return nil
		}, "struct/ambiguous-exit", "unguarded"},
		{"dangling-arc", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			ghost := &ir.Op{ID: 0, Kind: ir.OpLoad, Args: []ir.Reg{0},
				Dest: 0, Guard: ir.NoReg, Seq: -1}
			tr.Arcs = append(tr.Arcs, &ir.MemArc{From: ghost, To: tr.Arcs[0].To, Kind: ir.DepRAW})
			return tr
		}, "struct/dangling-arc", "no longer in the tree"},
		{"dup-arc", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			tr.Arcs = append(tr.Arcs, tr.Arcs[0])
			return tr
		}, "struct/dup-arc", "twice"},
		{"arc-kind", func(t *testing.T, p *ir.Program) *ir.Tree {
			tr := anyTree(t, p)
			a := tr.Arcs[0]
			a.Kind = (a.Kind + 1) % 3
			return tr
		}, "struct/arc-kind", "labelled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustCompile(t)
			tr := tc.corrupt(t, p)
			wantFinding(t, verify.CheckTree(tr), tc.check, tc.mention)
		})
	}
}

// pairTree hand-builds the canonical SpD output shape: an address compare
// with the conservative copy guarded on "alias" and the speculative copy on
// "no alias", via a band/bandnot combine chain over a pre-existing guard.
func pairTree() (*ir.Tree, *ir.Op, *ir.Op, *ir.Op) {
	fn := &ir.Function{Name: "h"}
	t := &ir.Tree{Fn: fn, Name: "h.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}
	a0, a1, v := fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.Params = []ir.Reg{a0, a1, v}
	pre := t.NewOp(ir.OpCmpLT, []ir.Reg{v, a0}, fn.NewReg())
	cmp := t.NewOp(ir.OpCmpEQ, []ir.Reg{a0, a1}, fn.NewReg())
	orig := t.NewOp(ir.OpStore, []ir.Reg{a0, v}, ir.NoReg)
	gAlias := t.InsertOp(ir.OpBAnd, []ir.Reg{pre.Dest, cmp.Dest}, fn.NewReg(), orig.Seq)
	orig.Guard = gAlias.Dest
	orig.SpecSide = 1
	dup := t.NewOp(ir.OpStore, []ir.Reg{a1, v}, ir.NoReg)
	gNoAlias := t.InsertOp(ir.OpBAndNot, []ir.Reg{pre.Dest, cmp.Dest}, fn.NewReg(), dup.Seq)
	dup.Guard = gNoAlias.Dest
	dup.SpecSide = -1
	ex := t.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	t.BuildMemArcs()
	return t, orig, dup, cmp
}

func TestSpecCheckerAcceptsWellFormedPair(t *testing.T) {
	tr, orig, dup, cmp := pairTree()
	wantClean(t, verify.CheckTree(tr))
	wantClean(t, verify.CheckSpecTree(tr))
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: cmp.Dest}}
	wantClean(t, verify.CheckSpecPairs(tr, pairs))
}

func TestSpecCheckerRejectsUnguardedStore(t *testing.T) {
	tr, orig, dup, cmp := pairTree()
	dup.Guard = ir.NoReg
	wantFinding(t, verify.CheckSpecTree(tr), "spec/unguarded-store", "store")
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: cmp.Dest}}
	wantFinding(t, verify.CheckSpecPairs(tr, pairs), "spec/unguarded-pair", "store")
}

func TestSpecCheckerRejectsSamePolarityGuards(t *testing.T) {
	tr, orig, dup, cmp := pairTree()
	// Point the duplicate at the conservative copy's guard: both now commit
	// on the alias outcome.
	dup.Guard = orig.Guard
	dup.SpecSide = 1
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: cmp.Dest}}
	wantFinding(t, verify.CheckSpecPairs(tr, pairs), "spec/not-exclusive", "opposite polarity")
}

func TestSpecCheckerRejectsWrongPolarity(t *testing.T) {
	tr, _, dup, _ := pairTree()
	// The speculative copy claims side −1 but its guard requires the alias
	// outcome.
	dup.SpecSide = -1
	dup.Guard = ir.NoReg
	for _, op := range tr.Ops {
		if op.Kind == ir.OpBAnd {
			dup.Guard = op.Dest // the alias-side guard
		}
	}
	wantFinding(t, verify.CheckSpecTree(tr), "spec/guard-mismatch", "negative compare-rooted literal")
}

// mergedPairTree hand-builds the guard shape a later overlapping SpD
// application leaves behind: the earlier application's guard registers g
// (conservative store) and h (its ¬g-rooted partner) become merge-defined —
// one definition per copy of the re-duplicated region, keyed by the new
// deciding compare c0: the original combinator under c0 and a guarded
// write-back mov of the duplicate path's recomputation under ¬c0. With
// complementary true the two paths compute complementary values (h entails
// ¬g on both), as the transformer emits; with false the ¬c0 path's value
// for h is rebuilt from g2 positively, so on that path both stores could
// commit.
func mergedPairTree(complementary bool) (*ir.Tree, *ir.Op, *ir.Op, *ir.Op) {
	fn := &ir.Function{Name: "m"}
	t := &ir.Tree{Fn: fn, Name: "m.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}
	x, y, z, w, v := fn.NewReg(), fn.NewReg(), fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.Params = []ir.Reg{x, y, z, w, v}

	c0 := t.NewOp(ir.OpCmpEQ, []ir.Reg{x, y}, fn.NewReg()) // later app's compare
	g := t.NewOp(ir.OpCmpEQ, []ir.Reg{x, z}, fn.NewReg())  // d0: original compare
	g.Guard, g.SpecSide = c0.Dest, 1
	g2 := t.NewOp(ir.OpCmpEQ, []ir.Reg{w, z}, fn.NewReg()) // duplicate-path recompute
	g2.SpecSide = -1
	wb := t.NewOp(ir.OpMove, []ir.Reg{g2.Dest}, g.Dest) // d1: write-back merge
	wb.Guard, wb.GuardNeg, wb.SpecSide = c0.Dest, true, -1
	orig := t.NewOp(ir.OpStore, []ir.Reg{z, v}, ir.NoReg)
	orig.Guard, orig.SpecSide = g.Dest, 1

	k := t.NewOp(ir.OpCmpEQ, []ir.Reg{x, w}, fn.NewReg()) // earlier app's other compare
	n0 := t.NewOp(ir.OpBNot, []ir.Reg{g.Dest}, fn.NewReg())
	n0.Guard, n0.SpecSide = c0.Dest, 1
	h := t.NewOp(ir.OpBAnd, []ir.Reg{n0.Dest, k.Dest}, fn.NewReg()) // e0
	h.Guard, h.SpecSide = c0.Dest, 1
	src1 := g2.Dest // non-complementary: h2 entails g2, not ¬g2
	if complementary {
		n1 := t.NewOp(ir.OpBNot, []ir.Reg{g2.Dest}, fn.NewReg())
		n1.SpecSide = -1
		src1 = n1.Dest
	}
	h2 := t.NewOp(ir.OpBAnd, []ir.Reg{src1, k.Dest}, fn.NewReg())
	h2.SpecSide = -1
	wb2 := t.NewOp(ir.OpMove, []ir.Reg{h2.Dest}, h.Dest) // e1: write-back merge
	wb2.Guard, wb2.GuardNeg, wb2.SpecSide = c0.Dest, true, -1
	dup := t.NewOp(ir.OpStore, []ir.Reg{w, v}, ir.NoReg)
	dup.Guard, dup.SpecSide = h.Dest, 1

	ex := t.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	t.BuildMemArcs()
	return t, orig, dup, c0
}

// TestSpecCheckerAcceptsMergedGuards pins the path-sensitive half of the
// exclusion analysis: merge-defined guards from overlapping applications are
// accepted when the aligned per-path values are complementary.
func TestSpecCheckerAcceptsMergedGuards(t *testing.T) {
	tr, orig, dup, c0 := mergedPairTree(true)
	wantClean(t, verify.CheckTree(tr))
	wantClean(t, verify.CheckSpecTree(tr))
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: c0.Dest}}
	wantClean(t, verify.CheckSpecPairs(tr, pairs))
}

// TestSpecCheckerRejectsNonComplementaryMerge seeds the same shape with a
// broken duplicate path — its value for the partner guard entails the
// recomputed compare positively instead of negatively — and the exclusion
// checker must refuse it.
func TestSpecCheckerRejectsNonComplementaryMerge(t *testing.T) {
	tr, orig, dup, c0 := mergedPairTree(false)
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: c0.Dest}}
	wantFinding(t, verify.CheckSpecPairs(tr, pairs), "spec/not-exclusive", "opposite polarity")
}

// TestSpecCheckerRejectsMisalignedMerge breaks the path alignment instead:
// the partner guard's write-back fires on the same outcome as the original
// combinator, so the two registers' last committed definitions need not
// belong to the same region copy and no exclusion conclusion is sound.
func TestSpecCheckerRejectsMisalignedMerge(t *testing.T) {
	tr, orig, dup, c0 := mergedPairTree(true)
	for _, op := range tr.Ops {
		if op.Kind == ir.OpMove && op.Dest == dup.Guard {
			op.GuardNeg = false
		}
	}
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: c0.Dest}}
	wantFinding(t, verify.CheckSpecPairs(tr, pairs), "spec/not-exclusive", "opposite polarity")
}

func TestCommitExclusionFromTrace(t *testing.T) {
	tr, orig, dup, cmp := pairTree()
	pairs := []verify.SpecPair{{Orig: orig.ID, Dup: dup.ID, Guard: cmp.Dest}}

	record := func(bits byte) *trace.Hist {
		rec := trace.NewRecorder()
		rec.Tree(tr.PIdx, 0, []byte{bits})
		h, err := rec.Finish(0, 0).Hist()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Guarded ops in Seq order: orig (bit 0), dup (bit 1).
	wantClean(t, verify.CheckCommitExclusion(tr, pairs, record(0b01)))
	wantClean(t, verify.CheckCommitExclusion(tr, pairs, record(0b10)))
	wantFinding(t, verify.CheckCommitExclusion(tr, pairs, record(0b11)),
		"spec/double-commit", "committed together")
}

// profileAndRecord runs one interpretation that both fills the program's arc
// profile counters and records a trace.
func profileAndRecord(t *testing.T, p *ir.Program) *trace.Hist {
	t.Helper()
	rec := trace.NewRecorder()
	r := &sim.Runner{
		Prog:   p,
		SemLat: machine.Infinite(3).LatencyFunc(),
		Prof:   sim.NewProfile(),
		Rec:    rec,
	}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	h, err := rec.Finish(res.Ops, res.Committed).Hist()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestArcAuditorFlagsUnsoundRemoval(t *testing.T) {
	base := mustCompile(t)
	refined := mustCompile(t)
	h := profileAndRecord(t, base)
	_ = h

	// Find a profiled arc that actually aliased, and delete its twin from
	// the refined program.
	var victim *ir.MemArc
	var fname string
	var tid int
	for _, name := range base.Order {
		for _, tr := range base.Funcs[name].Trees {
			for _, a := range tr.Arcs {
				if a.AliasCount > 0 {
					victim, fname, tid = a, name, tr.ID
				}
			}
		}
	}
	if victim == nil {
		t.Fatal("profiling observed no aliasing arc; test program is wrong")
	}
	rt := refined.Funcs[fname].Trees[tid]
	for _, a := range rt.Arcs {
		if a.From.ID == victim.From.ID && a.To.ID == victim.To.ID && a.Kind == victim.Kind {
			rt.RemoveArc(a)
			break
		}
	}

	fs := verify.CompareArcPrograms(base, refined, "NAIVE", "STATIC", true)
	wantFinding(t, fs, "arcs/unsound-removal", victim.String())

	// Without the removal audit (SPEC mode) the lattice alone is still fine.
	wantClean(t, verify.CompareArcPrograms(base, refined, "NAIVE", "SPEC", false))
}

func TestLatticeFlagsInventedArc(t *testing.T) {
	base := mustCompile(t)
	refined := mustCompile(t)
	bt := anyTree(t, base)
	// Delete from the base the twin of an arc the refinement carries: the
	// refinement now orders two pre-existing ops the base never did.
	rt := refined.Funcs[bt.Fn.Name].Trees[bt.ID]
	invented := rt.Arcs[0]
	bt.RemoveArc(bt.Arcs[0])
	wantFinding(t, verify.CompareArcPrograms(base, refined, "NAIVE", "STATIC", false),
		"arcs/lattice", invented.String())
}

func TestCrossCheckArcCounts(t *testing.T) {
	p := mustCompile(t)
	h := profileAndRecord(t, p)
	var checked *ir.MemArc
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			wantClean(t, verify.CrossCheckArcCounts(tr, h))
			for _, a := range tr.Arcs {
				if a.ExecCount > 0 && checked == nil {
					checked = a
				}
			}
		}
	}
	if checked == nil {
		t.Fatal("no arc executed")
	}
	checked.ExecCount++
	var fs []verify.Finding
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			fs = append(fs, verify.CrossCheckArcCounts(tr, h)...)
		}
	}
	wantFinding(t, fs, "arcs/count-mismatch", checked.String())
}

// TestSpecTransformOutputIsClean is the end-to-end gate: the real SpD
// transform's output must satisfy every structural and speculation-safety
// invariant, and corrupting it must be caught.
func TestSpecTransformOutputIsClean(t *testing.T) {
	p := mustCompile(t)
	prof := sim.NewProfile()
	lat := machine.Infinite(3).LatencyFunc()
	r := &sim.Runner{Prog: p, SemLat: lat, Prof: prof}
	if _, err := r.Run(); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	params := spd.DefaultParams()
	params.MinGain = 0.01
	res := spd.Transform(p, prof, lat, params)
	if len(res.Apps) == 0 {
		t.Fatal("SpD applied nothing; test program is wrong")
	}
	wantClean(t, verify.CheckProgram(p))
	var specStore *ir.Op
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			wantClean(t, verify.CheckSpecTree(tr))
			for _, op := range tr.Ops {
				if op.SpecSide != 0 && op.Kind.HasSideEffect() && op.IsGuarded() {
					specStore = op
				}
			}
		}
	}
	if specStore == nil {
		t.Fatal("no guarded side effect on an alias side after SpD")
	}
	specStore.Guard = ir.NoReg
	var fs []verify.Finding
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			fs = append(fs, verify.CheckSpecTree(tr)...)
		}
	}
	wantFinding(t, fs, "spec/unguarded-store", "no guard")
}
