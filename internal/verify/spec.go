package verify

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/trace"
)

// This file checks the paper's §4 safety argument on SpD output: duplicated
// code commits only under the matching outcome of an address compare, the
// two copies are mutually exclusive, and no side effect escapes its guard.
//
// The static half works on guard *literals*: a guard register is decomposed
// into the conjunction of (register, polarity) conditions it encodes by
// chasing the single-definition boolean-combinator chains the transformer
// emits (band, bandnot, bnot, mov). The dynamic half replays trace
// histograms and confirms the two copies of a pair never committed on the
// same tree execution.

// literal is one conjunct of a guard condition: register reg holds 1
// (neg false) or 0 (neg true).
type literal struct {
	reg ir.Reg
	neg bool
}

// regDefs returns every op of the function defining r.
func regDefs(fn *ir.Function, r ir.Reg) []*ir.Op {
	var defs []*ir.Op
	for _, t := range fn.Trees {
		for _, op := range t.Ops {
			if op != nil && op.Dest == r {
				defs = append(defs, op)
			}
		}
	}
	return defs
}

// singleDef returns the unique defining op of r within the function, or nil
// when r is undefined or multiply defined (decomposition must stop there:
// the value is merge-dependent and no longer a pure combinator chain).
func singleDef(fn *ir.Function, r ir.Reg) *ir.Op {
	defs := regDefs(fn, r)
	if len(defs) != 1 {
		return nil
	}
	return defs[0]
}

// pathKey names an assumed path condition: register guard holds 1 (neg
// false) or 0 (neg true). The aligned-pair analysis of complementaryMerged
// decomposes definition values under the path on which those definitions
// commit; nil means no assumption. A key is only ever assumed when its
// register has a unique unconditional definition point (singleDef), so
// every read after that point observes the same value per activation.
type pathKey struct {
	guard ir.Reg
	neg   bool
}

// guardLits decomposes the condition "(r == 1) xor neg" into a conjunction
// of literals. Conjunctions only arise positively (¬(a∧b) is not a
// conjunction), so a negated compound is kept atomic. The depth bound stops
// runaway chains on malformed input.
func guardLits(fn *ir.Function, r ir.Reg, neg bool, depth int) []literal {
	return guardLitsUnder(fn, r, neg, depth, nil)
}

// guardLitsUnder is guardLits under an assumed path condition: a guarded
// single definition is transparent when its guard is exactly the assumed
// key (on that path the definition commits), atomic otherwise.
func guardLitsUnder(fn *ir.Function, r ir.Reg, neg bool, depth int, path *pathKey) []literal {
	if depth > 64 {
		return []literal{{r, neg}}
	}
	def := singleDef(fn, r)
	if def == nil {
		return []literal{{r, neg}}
	}
	if def.IsGuarded() &&
		(path == nil || def.Guard != path.guard || def.GuardNeg != path.neg) {
		return []literal{{r, neg}}
	}
	switch def.Kind {
	case ir.OpBNot:
		return guardLitsUnder(fn, def.Args[0], !neg, depth+1, path)
	case ir.OpMove:
		return guardLitsUnder(fn, def.Args[0], neg, depth+1, path)
	case ir.OpBAnd:
		if !neg {
			return append(guardLitsUnder(fn, def.Args[0], false, depth+1, path),
				guardLitsUnder(fn, def.Args[1], false, depth+1, path)...)
		}
	case ir.OpBAndNot:
		if !neg {
			return append(guardLitsUnder(fn, def.Args[0], false, depth+1, path),
				guardLitsUnder(fn, def.Args[1], true, depth+1, path)...)
		}
	}
	return []literal{{r, neg}}
}

// compareRooted reports whether r's value derives entirely from address
// compares: an integer equality compare, or an and/or/band tree over
// compare-rooted values (combined speculation's "some pair aliases"
// disjunction). Chains through moves and bnot are followed. Only
// single-definition registers qualify: a merge-defined register may be
// redefined between two readers, so no polarity conclusion drawn from it
// (in particular mutual exclusion) would be sound.
func compareRooted(fn *ir.Function, r ir.Reg, depth int) bool {
	if depth > 64 {
		return false
	}
	def := singleDef(fn, r)
	if def == nil {
		return false
	}
	switch def.Kind {
	case ir.OpCmpEQ, ir.OpCmpNE:
		return true
	case ir.OpMove, ir.OpBNot:
		return compareRooted(fn, def.Args[0], depth+1)
	case ir.OpOr, ir.OpAnd, ir.OpBAnd, ir.OpBAndNot:
		return compareRooted(fn, def.Args[0], depth+1) &&
			compareRooted(fn, def.Args[1], depth+1)
	}
	return false
}

// compareDerived reports whether every reaching definition of r
// incorporates an address compare somewhere in its combinator chain. This
// is the relaxed form of compareRooted for merge-defined guards: when a
// later overlapping SpD application duplicates the region computing an
// earlier application's guard, the guard register gains a second (guarded)
// definition per path, its polarity becomes path-dependent, and the strict
// single-definition decomposition stops. Each path's value must still be
// tied to an address-compare outcome — a conjunct mixing a path condition
// with a compare qualifies, a chain that never reaches a compare does not.
func compareDerived(fn *ir.Function, r ir.Reg, depth int) bool {
	if depth > 64 {
		return false
	}
	defs := regDefs(fn, r)
	if len(defs) == 0 {
		return false
	}
	for _, def := range defs {
		ok := false
		switch def.Kind {
		case ir.OpCmpEQ, ir.OpCmpNE:
			ok = true
		case ir.OpMove, ir.OpBNot:
			ok = compareDerived(fn, def.Args[0], depth+1)
		case ir.OpOr, ir.OpAnd, ir.OpBAnd, ir.OpBAndNot:
			ok = compareDerived(fn, def.Args[0], depth+1) ||
				compareDerived(fn, def.Args[1], depth+1)
		}
		if !ok {
			return false
		}
	}
	return true
}

// CheckSpecTree verifies the per-op speculation-safety invariants of a tree
// that may have been transformed by SpD:
//
//   - every side-effecting op classified onto an alias side (SpecSide != 0)
//     carries a guard — an unguarded store in a duplicated region would
//     commit on both outcomes (§4.2's guarded-commit requirement);
//   - the guard's literal set contains a compare-rooted literal of the
//     matching polarity: positive for the conservative copy (+1), negative
//     for the speculative no-alias copy (−1) — so the side effect is tied to
//     an actual address-compare outcome, not an unrelated condition;
//   - exits never carry a SpecSide (checked structurally by CheckTree too).
func CheckSpecTree(t *ir.Tree) []Finding {
	var out []Finding
	fn := t.Fn
	fail := func(check, format string, args ...any) {
		out = append(out, Finding{
			Check: check,
			Func:  fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	for _, op := range t.Ops {
		if op == nil || op.SpecSide == 0 || !op.Kind.HasSideEffect() {
			continue
		}
		if op.Kind == ir.OpExit {
			continue // reported as spec/speculative-exit by CheckTree
		}
		if !op.IsGuarded() {
			fail("spec/unguarded-store", "%s %%%d is on alias side %+d but has no guard", op.Kind, op.ID, op.SpecSide)
			continue
		}
		lits := guardLits(fn, op.Guard, op.GuardNeg, 0)
		wantNeg := op.SpecSide < 0
		found := false
		for _, l := range lits {
			if l.neg == wantNeg && compareRooted(fn, l.reg, 0) {
				found = true
				break
			}
			// A merge-defined literal (its region was re-duplicated by an
			// overlapping application) has path-dependent polarity; accept
			// it when every reaching definition derives from a compare.
			if singleDef(fn, l.reg) == nil && compareDerived(fn, l.reg, 0) {
				found = true
				break
			}
		}
		if !found {
			pol := "positive"
			if wantNeg {
				pol = "negative"
			}
			fail("spec/guard-mismatch",
				"%s %%%d on alias side %+d: guard ?%s has no %s compare-rooted literal",
				op.Kind, op.ID, op.SpecSide, guardString(op), pol)
		}
	}
	return out
}

func guardString(op *ir.Op) string {
	if op.Guard == ir.NoReg {
		return "-"
	}
	neg := ""
	if op.GuardNeg {
		neg = "!"
	}
	return fmt.Sprintf("%sr%d", neg, op.Guard)
}

// SpecPair identifies one original/duplicate op pair created by an SpD
// application, with the compare (or compare-disjunction) register whose
// outcome separates them. The spd transformer records these so the checker
// can verify mutual exclusion pair-precisely instead of only per-op.
type SpecPair struct {
	Orig, Dup int    // op IDs within the tree
	Guard     ir.Reg // the deciding compare register (cmp dest, or anyAlias)
}

// CheckSpecPairs verifies, for each recorded original/duplicate pair:
// both ops are still present; a duplicate that writes a register writes a
// fresh one (never the original's destination — that would race the merge);
// and for side-effecting pairs, the copies' guard literal sets disagree on a
// shared compare-rooted register (mutual exclusion: one requires it 1, the
// other 0). Mutual exclusion is a side-effect-safety property: pure copies
// write distinct registers and may legitimately both execute (chained
// multi-arc speculation guards copy k by "aliases store k" alone, and two
// such compares can hold together), so only store/print pairs are tested
// for exclusion. Pure duplicates are also legitimately unguarded.
func CheckSpecPairs(t *ir.Tree, pairs []SpecPair) []Finding {
	var out []Finding
	fn := t.Fn
	fail := func(check, format string, args ...any) {
		out = append(out, Finding{
			Check: check,
			Func:  fn.Name,
			Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	for _, p := range pairs {
		orig, dup := t.OpByID(p.Orig), t.OpByID(p.Dup)
		if orig == nil || dup == nil {
			fail("spec/missing-pair-op", "pair (%%%d, %%%d): op missing from tree", p.Orig, p.Dup)
			continue
		}
		if dup.Dest != ir.NoReg && dup.Dest == orig.Dest {
			fail("spec/shared-dest", "duplicate %%%d writes r%d, the same register as original %%%d", dup.ID, dup.Dest, orig.ID)
		}
		for _, side := range []*ir.Op{orig, dup} {
			if side.Kind.HasSideEffect() && !side.IsGuarded() {
				fail("spec/unguarded-pair", "side-effecting %s %%%d of pair (%%%d, %%%d) is unguarded", side.Kind, side.ID, p.Orig, p.Dup)
			}
		}
		if !orig.Kind.HasSideEffect() || !dup.Kind.HasSideEffect() {
			continue // pure copies may both execute; nothing to exclude
		}
		if !orig.IsGuarded() || !dup.IsGuarded() {
			continue // already reported as spec/unguarded-pair
		}
		if !mutuallyExclusive(t, orig, dup) {
			fail("spec/not-exclusive",
				"pair (%%%d ?%s, %%%d ?%s): guards share no same-valued register with opposite polarity",
				orig.ID, guardString(orig), dup.ID, guardString(dup))
		}
	}
	return out
}

// mutuallyExclusive reports whether the two ops' guard conditions can never
// hold together: their literal conjunctions disagree on some shared base
// register whose value both read identically, or contain a pair of
// complementary merged registers (see complementaryMerged).
func mutuallyExclusive(t *ir.Tree, a, b *ir.Op) bool {
	fn := t.Fn
	la := guardLits(fn, a.Guard, a.GuardNeg, 0)
	lb := guardLits(fn, b.Guard, b.GuardNeg, 0)
	return litsExclusive(t, la, lb, a, b, 0, nil)
}

// litsExclusive reports whether two literal conjunctions can never hold
// together. Two witnesses qualify: a shared base register required 1 by one
// side and 0 by the other — x ∧ ¬x is false for any boolean x, so the
// register need not be compare-rooted (CheckSpecTree separately ties each
// guard to an address compare), but both readers must observe the same
// value of it (stableBetween) — or a pair of distinct positive literals
// whose registers are complementary merged values (complementaryMerged).
// A non-nil path restricts the analysis to executions on which that
// condition holds (see pathKey).
func litsExclusive(t *ir.Tree, la, lb []literal, ra, rb *ir.Op, depth int, path *pathKey) bool {
	pol := map[ir.Reg]bool{}
	for _, l := range la {
		pol[l.reg] = l.neg
	}
	for _, l := range lb {
		if neg, ok := pol[l.reg]; ok && neg != l.neg && stableBetween(t, l.reg, ra, rb, path) {
			return true
		}
	}
	if depth > 0 {
		return false // complementary-merge analysis only at the top level
	}
	for _, x := range la {
		if x.neg {
			continue
		}
		for _, y := range lb {
			if y.neg || x.reg == y.reg {
				continue
			}
			if complementaryMerged(t, x.reg, y.reg, ra, rb) {
				return true
			}
		}
	}
	return false
}

// complementaryMerged reports whether two registers provably never hold 1
// together because every execution path writes an exclusive pair of values
// into them. This is the shape overlapping SpD applications leave behind:
// re-duplicating the region that computes an earlier application's guards
// makes each guard register merge-defined — one definition per copy of the
// region, the original combinator under one outcome of the new deciding
// compare and a guarded write-back mov under the other. The registers are
// complementary when their definitions align index-wise in Seq order under
// identical defining guard conditions (so on any execution the last
// committed definition of both registers belongs to the same region copy)
// and each aligned pair's values decompose to literal sets that disagree on
// a shared same-valued register. All definitions must live in the readers'
// tree, and each register's definitions must precede its own reader.
func complementaryMerged(t *ir.Tree, x, y ir.Reg, ra, rb *ir.Op) bool {
	fn := t.Fn
	dx, dy := regDefs(fn, x), regDefs(fn, y)
	if len(dx) == 0 || len(dx) != len(dy) {
		return false
	}
	inT := map[*ir.Op]bool{}
	for _, op := range t.Ops {
		inT[op] = true
	}
	// Each reader observes the last committed definition of its own
	// register, so x's definitions must precede ra and y's rb (the other
	// register's definitions may legitimately come later in Seq order).
	for _, d := range dx {
		if !inT[d] || d.Seq >= ra.Seq {
			return false
		}
	}
	for _, d := range dy {
		if !inT[d] || d.Seq >= rb.Seq {
			return false
		}
	}
	for i := range dx {
		a, b := dx[i], dy[i]
		if a.Guard != b.Guard || a.GuardNeg != b.GuardNeg {
			return false // paths do not align
		}
		// The aligned definitions commit exactly when their shared guard
		// holds, so their values may be compared under that assumption —
		// but only when the guard register has a single unconditional
		// definition point, so every read of it in the activation agrees.
		var path *pathKey
		if a.Guard != ir.NoReg {
			if kd := singleDef(fn, a.Guard); kd != nil && !kd.IsGuarded() {
				path = &pathKey{a.Guard, a.GuardNeg}
			}
		}
		if !litsExclusive(t, defValueLits(fn, a, path), defValueLits(fn, b, path), a, b, 1, path) {
			return false
		}
	}
	return true
}

// stableBetween reports whether reg holds the same value at both readers:
// no op of their tree redefines reg strictly between them in Seq order.
// (Trees execute their whole Seq per activation, so Seq order is execution
// order; ops of other trees cannot interleave.) Under a non-nil path
// assumption, a redefinition guarded by the complement of the assumed key
// cannot commit and is ignored.
func stableBetween(t *ir.Tree, reg ir.Reg, ra, rb *ir.Op, path *pathKey) bool {
	lo, hi := ra.Seq, rb.Seq
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, op := range t.Ops {
		if op == nil || op.Dest != reg || op.Seq <= lo || op.Seq >= hi {
			continue
		}
		if path != nil && op.Guard == path.guard && op.GuardNeg == !path.neg {
			continue // guarded by the complement of the assumed path
		}
		return false
	}
	return true
}

// defValueLits decomposes the value a definition op computes into
// conjunction literals, regardless of the op's own guard (the guard decides
// whether the definition reaches the merge, which complementaryMerged
// matches separately via the aligned path key, passed here as path).
func defValueLits(fn *ir.Function, op *ir.Op, path *pathKey) []literal {
	switch op.Kind {
	case ir.OpMove:
		return guardLitsUnder(fn, op.Args[0], false, 1, path)
	case ir.OpBNot:
		return guardLitsUnder(fn, op.Args[0], true, 1, path)
	case ir.OpBAnd:
		return append(guardLitsUnder(fn, op.Args[0], false, 1, path),
			guardLitsUnder(fn, op.Args[1], false, 1, path)...)
	case ir.OpBAndNot:
		return append(guardLitsUnder(fn, op.Args[0], false, 1, path),
			guardLitsUnder(fn, op.Args[1], true, 1, path)...)
	}
	return []literal{{op.Dest, false}}
}

// CheckCommitExclusion is the dynamic counterpart of CheckSpecPairs: it
// scans a trace histogram and flags any execution pattern in which both
// copies of a side-effecting guarded pair committed. Commit bit k of a
// pattern is the k-th guarded op in Seq order (the trace wire contract), so
// the check maps each pair to its guarded-op indices and tests the two
// bits. Pure pairs are skipped for the same reason as in CheckSpecPairs.
// The program must have been indexed (Tree.PIdx) by the run that recorded h.
func CheckCommitExclusion(t *ir.Tree, pairs []SpecPair, h *trace.Hist) []Finding {
	var out []Finding
	if len(pairs) == 0 || h == nil {
		return nil
	}
	guardedIdx := map[int]int{} // op ID -> guarded-op index
	k := 0
	for _, op := range t.Ops {
		if op != nil && op.IsGuarded() {
			guardedIdx[op.ID] = k
			k++
		}
	}
	type bitPair struct{ a, b int }
	var bps []bitPair
	var ids []SpecPair
	for _, p := range pairs {
		orig, dup := t.OpByID(p.Orig), t.OpByID(p.Dup)
		if orig == nil || dup == nil ||
			!orig.Kind.HasSideEffect() || !dup.Kind.HasSideEffect() {
			continue
		}
		ka, okA := guardedIdx[p.Orig]
		kb, okB := guardedIdx[p.Dup]
		if okA && okB {
			bps = append(bps, bitPair{ka, kb})
			ids = append(ids, p)
		}
	}
	if len(bps) == 0 {
		return nil
	}
	for _, e := range h.Entries {
		if e.Idx != t.PIdx {
			continue
		}
		for i, bp := range bps {
			if e.Bit(bp.a) && e.Bit(bp.b) {
				out = append(out, Finding{
					Check: "spec/double-commit",
					Func:  t.Fn.Name,
					Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
					Msg: fmt.Sprintf("pair (%%%d, %%%d) committed together %d time(s) on exit %d",
						ids[i].Orig, ids[i].Dup, e.Count, e.Exit),
				})
			}
		}
	}
	return out
}
