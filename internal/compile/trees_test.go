package compile_test

import (
	"testing"

	"specdis/internal/ir"
)

func treesOf(t *testing.T, src, fn string) []*ir.Tree {
	t.Helper()
	p := mustCompile(t, src)
	return p.Funcs[fn].Trees
}

func TestStraightLineIsOneTree(t *testing.T) {
	trees := treesOf(t, `void main() { int x = 1; int y = x + 2; print(y); }`, "main")
	if len(trees) != 1 {
		t.Fatalf("straight-line main has %d trees", len(trees))
	}
	if got := len(trees[0].Exits()); got != 1 {
		t.Fatalf("%d exits", got)
	}
}

func TestIfElseStaysInOneTreeUntilJoin(t *testing.T) {
	trees := treesOf(t, `
void main() {
	int x = 1;
	if (x > 0) { x = 2; } else { x = 3; }
	print(x);
}`, "main")
	// Tree 1: cond + both branches (exits to join). Tree 2: join.
	if len(trees) != 2 {
		t.Fatalf("if/else produced %d trees, want 2", len(trees))
	}
	if len(trees[0].Blocks) < 3 {
		t.Fatalf("if-converted tree has %d blocks, want >=3", len(trees[0].Blocks))
	}
	// Both exits of the first tree go to the join tree.
	for _, ex := range trees[0].Exits() {
		if ex.Exit != ir.ExitGoto || ex.Target != 1 {
			t.Errorf("exit %v does not target the join", ex)
		}
	}
}

func TestCallsSplitTrees(t *testing.T) {
	trees := treesOf(t, `
int id(int x) { return x; }
void main() {
	int a = id(1);
	int b = id(2);
	print(a + b);
}`, "main")
	// main: entry tree ending in call, continuation ending in call, final.
	if len(trees) != 3 {
		t.Fatalf("two calls produced %d trees, want 3", len(trees))
	}
	calls := 0
	for _, tr := range trees {
		for _, ex := range tr.Exits() {
			if ex.Exit == ir.ExitCall {
				calls++
				if ex.Callee != "id" {
					t.Errorf("callee %q", ex.Callee)
				}
			}
		}
	}
	if calls != 2 {
		t.Fatalf("%d call exits", calls)
	}
}

func TestNestedLoopsShareNoTrees(t *testing.T) {
	trees := treesOf(t, `
int a[64];
void main() {
	for (int i = 0; i < 8; i = i + 1) {
		for (int j = 0; j < 8; j = j + 1) {
			a[i * 8 + j] = i + j;
		}
	}
	print(a[63]);
}`, "main")
	// The inner loop is fully contained in its header tree (self loop); the
	// outer loop spans several trees, with its back edge arriving from the
	// post tree, so main needs at least four trees in total.
	self := 0
	for _, tr := range trees {
		for _, ex := range tr.Exits() {
			if ex.Exit == ir.ExitGoto && ex.Target == tr.ID {
				self++
			}
		}
	}
	if self != 1 {
		t.Fatalf("found %d self-looping trees, want 1 (the inner loop)", self)
	}
	if len(trees) < 3 {
		t.Fatalf("nested loops produced only %d trees", len(trees))
	}
	// Some non-header tree must close the outer loop: an exit to an earlier
	// tree that is not a self loop.
	back := false
	for _, tr := range trees {
		for _, ex := range tr.Exits() {
			if ex.Exit == ir.ExitGoto && ex.Target < tr.ID {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no backward tree edge for the outer loop")
	}
}

func TestDeadCodeAfterReturnIsDropped(t *testing.T) {
	p := mustCompile(t, `
int f() {
	return 1;
	print(999);
}
void main() { print(f()); }`)
	for _, tr := range p.Funcs["f"].Trees {
		for _, op := range tr.Ops {
			if op.Kind == ir.OpPrint {
				t.Fatal("unreachable print survived")
			}
		}
	}
	// And semantics confirm.
	if out := run(t, `
int f() {
	return 1;
	print(999);
}
void main() { print(f()); }`); out != "1\n" {
		t.Fatalf("output %q", out)
	}
}

func TestEarlyReturnsFromBranches(t *testing.T) {
	out := run(t, `
int classify(int x) {
	if (x < 0) { return -1; }
	if (x == 0) { return 0; }
	return 1;
}
void main() {
	print(classify(-5));
	print(classify(0));
	print(classify(9));
}`)
	if out != "-1\n0\n1\n" {
		t.Fatalf("output %q", out)
	}
}

func TestBreakCreatesJoinTree(t *testing.T) {
	out := run(t, `
int a[8] = {3, 1, 4, 1, 5, 9, 2, 6};
void main() {
	int found = -1;
	for (int i = 0; i < 8; i = i + 1) {
		if (a[i] == 5) { found = i; break; }
	}
	print(found);
}`)
	if out != "4\n" {
		t.Fatalf("output %q", out)
	}
}

func TestGuardsPartitionPerTree(t *testing.T) {
	// For every compiled tree of a branchy function, exactly one exit's
	// guard must be satisfiable... verified dynamically by the interpreter;
	// here check the static shape: every exit either unguarded or guarded,
	// and sibling blocks carry the same guard register with opposite
	// polarity or complementary band/bandnot pairs.
	p := mustCompile(t, `
void main() {
	int s = 0;
	for (int i = 0; i < 4; i = i + 1) {
		if (i % 2 == 0) {
			if (i > 1) { s = s + 10; } else { s = s + 1; }
		} else {
			s = s - 1;
		}
	}
	print(s);
}`)
	for _, tr := range p.Funcs["main"].Trees {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := tr.ValidateBlocks(); err != nil {
			t.Fatal(err)
		}
		// Sibling blocks under one parent must have disjoint guards.
		byParent := map[int][]ir.Block{}
		for _, b := range tr.Blocks[1:] {
			byParent[b.Parent] = append(byParent[b.Parent], b)
		}
		for parent, kids := range byParent {
			if len(kids) != 2 {
				continue
			}
			sameReg := kids[0].Guard == kids[1].Guard && kids[0].Neg != kids[1].Neg
			if kids[0].Guard == ir.NoReg || (!sameReg && kids[0].Guard == kids[1].Guard) {
				t.Errorf("parent %d: sibling guards not disjoint: %+v", parent, kids)
			}
		}
	}
}

func TestConstCachePerBlock(t *testing.T) {
	// The same constant used twice in one block must be materialized once.
	p := mustCompile(t, `void main() { print(5 + 5); }`)
	consts := 0
	for _, tr := range p.Funcs["main"].Trees {
		for _, op := range tr.Ops {
			if op.Kind == ir.OpConst && op.Imm.I == 5 {
				consts++
			}
		}
	}
	if consts != 1 {
		t.Fatalf("constant 5 materialized %d times", consts)
	}
}

func TestLocalValueForwardingSkipsGuardWait(t *testing.T) {
	// After `t = a[i]`, a same-block consumer must read the load's
	// destination temp directly, not the guarded variable register.
	p := mustCompile(t, `
int a[8];
int b[8];
void main() {
	for (int i = 0; i < 8; i = i + 1) {
		int t = a[i];
		b[i] = t * 2;
	}
	print(b[3]);
}`)
	for _, tr := range p.Funcs["main"].Trees {
		var loadDest ir.Reg = ir.NoReg
		for _, op := range tr.Ops {
			if op.Kind == ir.OpLoad {
				loadDest = op.Dest
			}
			if op.Kind == ir.OpMul && loadDest != ir.NoReg {
				if op.Args[0] != loadDest && op.Args[1] != loadDest {
					t.Errorf("multiply reads %v, not the load temp r%d: %s", op.Args, loadDest, op)
				}
			}
		}
	}
}
