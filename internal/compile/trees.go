package compile

import (
	"fmt"

	"specdis/internal/ir"
)

// guardState is a path condition during if-conversion: commit iff the
// register is nonzero (or zero when neg). reg == NoReg means "always".
type guardState struct {
	reg ir.Reg
	neg bool
}

var alwaysGuard = guardState{reg: ir.NoReg}

// treeBuilder converts the lblock CFG of one function into decision trees.
type treeBuilder struct {
	fn       *ir.Function
	blocks   []*lblock
	reach    []bool
	preds    []int
	backTgt  []bool
	isRoot   []bool
	treeOf   []int // lblock id -> tree index
	notCache map[ir.Reg]ir.Reg
	cur      *ir.Tree
}

// buildTrees partitions the CFG into decision trees and if-converts each.
func buildTrees(fn *ir.Function, blocks []*lblock) error {
	tb := &treeBuilder{fn: fn, blocks: blocks}
	tb.analyze()

	// Create one tree per root, in block order, so the entry tree is 0.
	tb.treeOf = make([]int, len(blocks))
	for i := range tb.treeOf {
		tb.treeOf[i] = -1
	}
	var roots []int
	for id, b := range blocks {
		if tb.reach[id] && tb.isRoot[id] {
			t := &ir.Tree{ID: len(fn.Trees), Fn: fn, Name: fmt.Sprintf("%s.b%d", fn.Name, b.id)}
			t.NewBlock(-1, ir.NoReg, false) // root block 0
			fn.Trees = append(fn.Trees, t)
			tb.treeOf[id] = t.ID
			roots = append(roots, id)
		}
	}
	fn.Entry = tb.treeOf[0]

	// Assign non-root reachable blocks to the tree of their unique pred by
	// flood fill from the roots.
	assignTree := func(root int) {
		stack := []int{root}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range tb.succs(id) {
				if !tb.reach[s] || tb.isRoot[s] || tb.treeOf[s] >= 0 {
					continue
				}
				tb.treeOf[s] = tb.treeOf[id]
				stack = append(stack, s)
			}
		}
	}
	for _, r := range roots {
		assignTree(r)
	}

	// If-convert each tree.
	for _, r := range roots {
		tb.cur = fn.Trees[tb.treeOf[r]]
		tb.notCache = map[ir.Reg]ir.Reg{}
		if err := tb.emitBlock(r, 0, alwaysGuard); err != nil {
			return err
		}
		tb.cur.Renumber()
	}
	return nil
}

func (tb *treeBuilder) succs(id int) []int {
	b := tb.blocks[id]
	switch b.kind {
	case termCond:
		return []int{b.succTrue, b.succFalse}
	case termJump, termCall:
		return []int{b.succ}
	}
	return nil
}

// analyze computes reachability, predecessor counts, and back-edge targets.
func (tb *treeBuilder) analyze() {
	n := len(tb.blocks)
	tb.reach = make([]bool, n)
	tb.preds = make([]int, n)
	tb.backTgt = make([]bool, n)
	tb.isRoot = make([]bool, n)

	onStack := make([]bool, n)
	var dfs func(int)
	dfs = func(id int) {
		tb.reach[id] = true
		onStack[id] = true
		for _, s := range tb.succs(id) {
			tb.preds[s]++
			if onStack[s] {
				tb.backTgt[s] = true
				continue
			}
			if !tb.reach[s] {
				dfs(s)
			}
		}
		onStack[id] = false
	}
	dfs(0)

	for id, b := range tb.blocks {
		if !tb.reach[id] {
			continue
		}
		if id == 0 || tb.preds[id] > 1 || tb.backTgt[id] {
			tb.isRoot[id] = true
		}
		if b.kind == termCall && tb.reach[b.succ] {
			tb.isRoot[b.succ] = true // call continuations start new trees
		}
	}
}

// matNot materializes the negation of a boolean register.
func (tb *treeBuilder) matNot(r ir.Reg) ir.Reg {
	if n, ok := tb.notCache[r]; ok {
		return n
	}
	d := tb.fn.NewReg()
	op := tb.cur.NewOp(ir.OpBNot, []ir.Reg{r}, d)
	op.Block = 0 // pure guard computation; root placement is conservative
	tb.notCache[r] = d
	return d
}

// combine derives the child guards of a conditional split under a parent
// guard, emitting boolean-logic ops as needed.
func (tb *treeBuilder) combine(parent guardState, cond ir.Reg, irBlk int) (tGuard, fGuard guardState) {
	if parent.reg == ir.NoReg {
		return guardState{reg: cond}, guardState{reg: cond, neg: true}
	}
	p := parent.reg
	if parent.neg {
		p = tb.matNot(parent.reg)
	}
	tr := tb.fn.NewReg()
	fr := tb.fn.NewReg()
	to := tb.cur.NewOp(ir.OpBAnd, []ir.Reg{p, cond}, tr)
	to.Block = irBlk
	fo := tb.cur.NewOp(ir.OpBAndNot, []ir.Reg{p, cond}, fr)
	fo.Block = irBlk
	return guardState{reg: tr}, guardState{reg: fr}
}

// emitBlock appends lblock id (and, recursively, its in-tree successors)
// into the current tree under the given guard and ir block.
func (tb *treeBuilder) emitBlock(id int, irBlk int, g guardState) error {
	b := tb.blocks[id]
	for _, op := range b.ops {
		// Side-effect-free ops into fresh temporaries execute speculatively
		// (unguarded); stores, prints, and variable-merge writes commit only
		// under the path condition.
		if op.Kind.HasSideEffect() || op.VarWrite {
			op.Guard = g.reg
			op.GuardNeg = g.neg
		}
		op.Block = irBlk
		tb.cur.Append(op)
	}
	switch b.kind {
	case termJump:
		s := b.succ
		if tb.treeOf[s] == tb.cur.ID && !tb.isRoot[s] {
			return tb.emitBlock(s, irBlk, g)
		}
		ex := &ir.Op{Kind: ir.OpExit, Guard: g.reg, GuardNeg: g.neg, Block: irBlk,
			Dest: ir.NoReg, Exit: ir.ExitGoto, Target: tb.treeOf[s]}
		tb.cur.Append(ex)
		return nil

	case termCond:
		tGuard, fGuard := tb.combine(g, b.cond, irBlk)
		tBlk := tb.cur.NewBlock(irBlk, tGuard.reg, tGuard.neg)
		fBlk := tb.cur.NewBlock(irBlk, fGuard.reg, fGuard.neg)
		if err := tb.emitEdge(b.succTrue, tBlk, tGuard); err != nil {
			return err
		}
		return tb.emitEdge(b.succFalse, fBlk, fGuard)

	case termRet:
		ex := &ir.Op{Kind: ir.OpExit, Guard: g.reg, GuardNeg: g.neg, Block: irBlk,
			Dest: ir.NoReg, Exit: ir.ExitRet}
		if b.retVal != ir.NoReg {
			ex.Args = []ir.Reg{b.retVal}
		}
		tb.cur.Append(ex)
		return nil

	case termCall:
		ex := &ir.Op{Kind: ir.OpExit, Guard: g.reg, GuardNeg: g.neg, Block: irBlk,
			Dest: b.callDest, Exit: ir.ExitCall, Callee: b.callee,
			CallArg: b.callArgs, Target: tb.treeOf[b.succ]}
		tb.cur.Append(ex)
		return nil
	}
	return fmt.Errorf("func %s: block %d not terminated", tb.fn.Name, id)
}

// emitEdge follows one side of a conditional split.
func (tb *treeBuilder) emitEdge(succ int, irBlk int, g guardState) error {
	if tb.treeOf[succ] == tb.cur.ID && !tb.isRoot[succ] {
		return tb.emitBlock(succ, irBlk, g)
	}
	ex := &ir.Op{Kind: ir.OpExit, Guard: g.reg, GuardNeg: g.neg, Block: irBlk,
		Dest: ir.NoReg, Exit: ir.ExitGoto, Target: tb.treeOf[succ]}
	tb.cur.Append(ex)
	return nil
}
