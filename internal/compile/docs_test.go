package compile_test

import (
	"os"
	"strings"
	"testing"
)

// TestLanguageDocExampleCompilesAndRuns keeps docs/LANGUAGE.md's example
// honest: it must compile and run.
func TestLanguageDocExampleCompilesAndRuns(t *testing.T) {
	data, err := os.ReadFile("../../docs/LANGUAGE.md")
	if err != nil {
		t.Skipf("docs not present: %v", err)
	}
	text := string(data)
	start := strings.LastIndex(text, "```c")
	if start < 0 {
		t.Fatal("no example block in LANGUAGE.md")
	}
	rest := text[start+4:]
	end := strings.Index(rest, "```")
	if end < 0 {
		t.Fatal("unterminated example block")
	}
	src := rest[:end]
	out := run(t, src)
	if !strings.Contains(out, "\n") {
		t.Fatalf("example produced no output: %q", out)
	}
}
