package compile

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/lang"
)

func (lo *lowerer) lowerStmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.BlockStmt:
		lo.pushScope()
		for _, inner := range st.Stmts {
			if err := lo.lowerStmt(inner); err != nil {
				return err
			}
		}
		lo.popScope()
		return nil

	case *lang.VarDeclStmt:
		var val ir.Reg
		if st.Init != nil {
			r, t, err := lo.lowerExpr(st.Init)
			if err != nil {
				return err
			}
			val = lo.cvt(r, t, st.Type)
		} else {
			if st.Type == lang.TypeFloat {
				val = lo.floatConst(0)
			} else {
				val = lo.intConst(0)
			}
		}
		reg := lo.declareVar(st.Name, st.Type)
		lo.assignTo(reg, val)
		if st.Type == lang.TypeInt {
			if st.Init != nil {
				lo.sym.set(st.Name, lo.sym.symEval(st.Init))
			} else {
				lo.sym.set(st.Name, ir.ConstAffine(0))
			}
		}
		return nil

	case *lang.AssignStmt:
		return lo.lowerAssign(st)

	case *lang.IfStmt:
		return lo.lowerIf(st)

	case *lang.WhileStmt:
		return lo.lowerLoop(nil, st.Cond, nil, st.Body)

	case *lang.ForStmt:
		lo.pushScope()
		defer lo.popScope()
		if st.Init != nil {
			if err := lo.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		return lo.lowerLoop(st, st.Cond, st.Post, st.Body)

	case *lang.ReturnStmt:
		ret := ir.Reg(ir.NoReg)
		if st.Value != nil {
			r, t, err := lo.lowerExpr(st.Value)
			if err != nil {
				return err
			}
			want := lang.TypeInt
			if lo.decl.Ret == lang.TypeFloat {
				want = lang.TypeFloat
			}
			ret = lo.cvt(r, t, want)
		}
		lo.cur.kind = termRet
		lo.cur.retVal = ret
		// Dead continuation for any statements after the return.
		lo.setCur(lo.newBlock())
		return nil

	case *lang.PrintStmt:
		r, t, err := lo.lowerExpr(st.Value)
		if err != nil {
			return err
		}
		op := lo.emit(ir.OpPrint, []ir.Reg{r}, ir.NoReg)
		op.PrintFloat = t == lang.TypeFloat
		return nil

	case *lang.ExprStmt:
		_, _, err := lo.lowerExpr(st.X)
		return err

	case *lang.BreakStmt:
		if len(lo.brkTgt) == 0 {
			return fmt.Errorf("break outside loop")
		}
		lo.cur.kind = termJump
		lo.cur.succ = lo.brkTgt[len(lo.brkTgt)-1]
		lo.setCur(lo.newBlock())
		return nil

	case *lang.ContinueStmt:
		if len(lo.contTgt) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		lo.cur.kind = termJump
		lo.cur.succ = lo.contTgt[len(lo.contTgt)-1]
		lo.setCur(lo.newBlock())
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (lo *lowerer) lowerAssign(st *lang.AssignStmt) error {
	lv := st.Target
	if lv.Index == nil {
		if v, ok := lo.resolve(lv.Name); ok {
			// Scalar local/parameter in a register.
			val, vt, err := lo.assignValue(st, v.typ, func() (ir.Reg, lang.Type, error) {
				return lo.readVar(v.reg), v.typ, nil
			})
			if err != nil {
				return err
			}
			lo.assignTo(v.reg, lo.cvt(val, vt, v.typ))
			lo.trackScalar(st, lv.Name, v.typ)
			return nil
		}
		// Scalar global: read-modify-write through memory.
		g := lo.prog.Globals[lv.Name]
		if g == nil {
			return fmt.Errorf("%s: undefined", lv.Name)
		}
		addr := lo.intConst(lo.globalBase(lv.Name))
		val, vt, err := lo.assignValue(st, g.Elem, func() (ir.Reg, lang.Type, error) {
			d := lo.fn.NewReg()
			op := lo.emit(ir.OpLoad, []ir.Reg{addr}, d)
			op.Ref = lo.memRef(lv.Name, nil)
			return d, g.Elem, nil
		})
		if err != nil {
			return err
		}
		op := lo.emit(ir.OpStore, []ir.Reg{addr, lo.cvt(val, vt, g.Elem)}, ir.NoReg)
		op.Ref = lo.memRef(lv.Name, nil)
		return nil
	}

	// Array element.
	addr, elem, ref, err := lo.address(lv.Name, lv.Index)
	if err != nil {
		return err
	}
	val, vt, err := lo.assignValue(st, elem, func() (ir.Reg, lang.Type, error) {
		d := lo.fn.NewReg()
		op := lo.emit(ir.OpLoad, []ir.Reg{addr}, d)
		op.Ref = ref
		return d, elem, nil
	})
	if err != nil {
		return err
	}
	op := lo.emit(ir.OpStore, []ir.Reg{addr, lo.cvt(val, vt, elem)}, ir.NoReg)
	op.Ref = ref
	return nil
}

// assignValue computes the assigned value: for '=' just the RHS, for
// compound ops current-value OP rhs, using readCur to fetch the current
// value.
func (lo *lowerer) assignValue(st *lang.AssignStmt, targetT lang.Type, readCur func() (ir.Reg, lang.Type, error)) (ir.Reg, lang.Type, error) {
	rhs, rt, err := lo.lowerExpr(st.Value)
	if err != nil {
		return 0, 0, err
	}
	if st.Op == '=' {
		return rhs, rt, nil
	}
	cur, ct, err := readCur()
	if err != nil {
		return 0, 0, err
	}
	opT := ct
	if rt == lang.TypeFloat || ct == lang.TypeFloat {
		opT = lang.TypeFloat
	}
	cur = lo.cvt(cur, ct, opT)
	rhs = lo.cvt(rhs, rt, opT)
	var kind ir.OpKind
	if opT == lang.TypeFloat {
		kind = map[byte]ir.OpKind{'+': ir.OpFAdd, '-': ir.OpFSub, '*': ir.OpFMul, '/': ir.OpFDiv}[st.Op]
	} else {
		kind = map[byte]ir.OpKind{'+': ir.OpAdd, '-': ir.OpSub, '*': ir.OpMul, '/': ir.OpDiv}[st.Op]
	}
	d := lo.fn.NewReg()
	lo.emit(kind, []ir.Reg{cur, rhs}, d)
	_ = targetT
	return d, opT, nil
}

// trackScalar updates the symbolic environment after a scalar assignment.
func (lo *lowerer) trackScalar(st *lang.AssignStmt, name string, typ lang.Type) {
	if typ != lang.TypeInt {
		return
	}
	if st.Op == '=' {
		lo.sym.set(name, lo.sym.symEval(st.Value))
		return
	}
	cur := lo.sym.get(name)
	rhs := lo.sym.symEval(st.Value)
	if rhs == nil {
		lo.sym.set(name, nil)
		return
	}
	switch st.Op {
	case '+':
		lo.sym.set(name, cur.Add(rhs))
	case '-':
		lo.sym.set(name, cur.Sub(rhs))
	case '*':
		if rhs.IsConst() {
			lo.sym.set(name, cur.Scale(rhs.Const))
		} else {
			lo.sym.set(name, nil)
		}
	default:
		lo.sym.set(name, nil)
	}
}

func (lo *lowerer) lowerIf(st *lang.IfStmt) error {
	cond, err := lo.lowerCond(st.Cond)
	if err != nil {
		return err
	}
	bThen := lo.newBlock()
	bElse := lo.newBlock()
	bJoin := lo.newBlock()
	lo.cur.kind = termCond
	lo.cur.cond = cond
	lo.cur.succTrue = bThen.id
	lo.cur.succFalse = bElse.id

	before := lo.sym.snapshot()

	lo.setCur(bThen)
	if err := lo.lowerStmt(st.Then); err != nil {
		return err
	}
	lo.cur.kind = termJump
	lo.cur.succ = bJoin.id
	afterThen := lo.sym.snapshot()

	lo.sym.vals = before
	lo.setCur(bElse)
	if st.Else != nil {
		if err := lo.lowerStmt(st.Else); err != nil {
			return err
		}
	}
	lo.cur.kind = termJump
	lo.cur.succ = bJoin.id
	afterElse := lo.sym.snapshot()

	lo.sym.mergeFrom(afterThen, afterElse)
	lo.setCur(bJoin)
	return nil
}

// lowerLoop lowers both while loops (forStmt == nil) and for loops. The
// for-init has already been lowered into the current block.
func (lo *lowerer) lowerLoop(forStmt *lang.ForStmt, cond lang.Expr, post lang.Stmt, body lang.Stmt) error {
	bHead := lo.newBlock()
	bBody := lo.newBlock()
	bPost := lo.newBlock()
	bExit := lo.newBlock()

	lo.cur.kind = termJump
	lo.cur.succ = bHead.id

	// Which scalars change across iterations?
	bodyAssigned := map[string]bool{}
	assignedVars(body, bodyAssigned)
	assigned := map[string]bool{}
	for n := range bodyAssigned {
		assigned[n] = true
	}
	if post != nil {
		assignedVars(post, assigned)
	}
	hasBrk := hasBreak(body)

	// Canonical induction variable? (The post statement's own update does
	// not disqualify the variable — only assignments inside the body do.)
	var ivName string
	if forStmt != nil {
		if name, info, ok := lo.canonicalFor(forStmt, bodyAssigned); ok {
			ivName = name
			delete(assigned, name)
			lo.loops = append(lo.loops, info)
			defer func() { lo.loops = lo.loops[:len(lo.loops)-1] }()
			lo.sym.set(ivName, ir.VarAffine(info.Var))
		}
	}
	lo.sym.invalidate(assigned)

	lo.setCur(bHead)
	var condReg ir.Reg
	var err error
	if cond != nil {
		condReg, err = lo.lowerCond(cond)
		if err != nil {
			return err
		}
	} else {
		condReg = lo.intConst(1)
	}
	// lowerCond may have split bHead via embedded calls; terminate whatever
	// block we are in now.
	head := lo.cur
	head.kind = termCond
	head.cond = condReg
	head.succTrue = bBody.id
	head.succFalse = bExit.id

	afterCond := lo.sym.snapshot()

	lo.brkTgt = append(lo.brkTgt, bExit.id)
	lo.contTgt = append(lo.contTgt, bPost.id)
	lo.setCur(bBody)
	if err := lo.lowerStmt(body); err != nil {
		return err
	}
	lo.cur.kind = termJump
	lo.cur.succ = bPost.id
	lo.brkTgt = lo.brkTgt[:len(lo.brkTgt)-1]
	lo.contTgt = lo.contTgt[:len(lo.contTgt)-1]

	lo.setCur(bPost)
	if post != nil {
		if err := lo.lowerStmt(post); err != nil {
			return err
		}
	}
	lo.cur.kind = termJump
	lo.cur.succ = bHead.id

	// The exit path sees the header-time values (the loop body did not run
	// between the condition and the exit). If the body can break out,
	// variables it assigns are unknown at the exit.
	lo.sym.vals = afterCond
	if hasBrk {
		lo.sym.invalidate(assigned)
	}
	lo.setCur(bExit)
	return nil
}

func hasBreak(s lang.Stmt) bool {
	switch st := s.(type) {
	case *lang.BreakStmt:
		return true
	case *lang.BlockStmt:
		for _, inner := range st.Stmts {
			if hasBreak(inner) {
				return true
			}
		}
	case *lang.IfStmt:
		if hasBreak(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasBreak(st.Else)
		}
	}
	// break inside a nested loop binds to that loop.
	return false
}

// canonicalFor recognizes `for (i = lo; i </<=/>/>= hi; i = i ± c)` with an
// int induction variable not assigned in the body, and returns its LoopInfo.
// Bounds are widened by one step so that exit-path references (which see the
// first out-of-range value) remain covered.
func (lo *lowerer) canonicalFor(st *lang.ForStmt, bodyAssigned map[string]bool) (string, ir.LoopInfo, bool) {
	var name string
	var loExpr lang.Expr
	switch init := st.Init.(type) {
	case *lang.VarDeclStmt:
		if init.Type != lang.TypeInt || init.Init == nil {
			return "", ir.LoopInfo{}, false
		}
		name, loExpr = init.Name, init.Init
	case *lang.AssignStmt:
		if init.Op != '=' || init.Target.Index != nil {
			return "", ir.LoopInfo{}, false
		}
		if v, ok := lo.resolve(init.Target.Name); !ok || v.typ != lang.TypeInt {
			return "", ir.LoopInfo{}, false
		}
		name, loExpr = init.Target.Name, init.Value
	default:
		return "", ir.LoopInfo{}, false
	}
	if bodyAssigned[name] {
		return "", ir.LoopInfo{}, false
	}

	cmp, ok := st.Cond.(*lang.BinaryExpr)
	if !ok {
		return "", ir.LoopInfo{}, false
	}
	cv, ok := cmp.L.(*lang.VarRef)
	if !ok || cv.Name != name {
		return "", ir.LoopInfo{}, false
	}

	step, ok := postStep(st.Post, name)
	if !ok || step == 0 {
		return "", ir.LoopInfo{}, false
	}
	up := step > 0
	switch cmp.Op {
	case lang.TokLt, lang.TokLe:
		if !up {
			return "", ir.LoopInfo{}, false
		}
	case lang.TokGt, lang.TokGe:
		if up {
			return "", ir.LoopInfo{}, false
		}
	default:
		return "", ir.LoopInfo{}, false
	}

	info := ir.LoopInfo{Var: lo.sym.fresh(), Step: step}
	loA := lo.sym.symEval(loExpr)
	hiA := lo.sym.symEval(cmp.R)
	if loA != nil && loA.IsConst() && hiA != nil && hiA.IsConst() {
		info.BoundsKnown = true
		info.Lo = loA.Const
		hi := hiA.Const
		switch cmp.Op {
		case lang.TokLe:
			hi++
		case lang.TokGe:
			hi--
		}
		// hi is now the exclusive bound in the iteration direction. Widen by
		// one step for the exit value.
		if up {
			info.Hi = hi + step - 1 // inclusive upper bound incl. exit value
		} else {
			info.Lo, info.Hi = hi+step+1, info.Lo // downward: [hi+step+1, lo]
		}
	}
	return name, info, true
}

// postStep extracts the constant step from the loop post statement.
func postStep(post lang.Stmt, name string) (int64, bool) {
	as, ok := post.(*lang.AssignStmt)
	if !ok || as.Target.Index != nil || as.Target.Name != name {
		return 0, false
	}
	lit := func(e lang.Expr) (int64, bool) {
		if il, ok := e.(*lang.IntLit); ok {
			return il.V, true
		}
		if ue, ok := e.(*lang.UnaryExpr); ok && ue.Op == '-' {
			if il, ok := ue.X.(*lang.IntLit); ok {
				return -il.V, true
			}
		}
		return 0, false
	}
	switch as.Op {
	case '+':
		c, ok := lit(as.Value)
		return c, ok
	case '-':
		c, ok := lit(as.Value)
		return -c, ok
	case '=':
		// i = i + c  or  i = i - c
		be, ok := as.Value.(*lang.BinaryExpr)
		if !ok {
			return 0, false
		}
		vr, ok := be.L.(*lang.VarRef)
		if !ok || vr.Name != name {
			return 0, false
		}
		c, ok := lit(be.R)
		if !ok {
			return 0, false
		}
		switch be.Op {
		case lang.TokPlus:
			return c, true
		case lang.TokMinus:
			return -c, true
		}
	}
	return 0, false
}
