package compile_test

import (
	"strings"
	"testing"

	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
)

func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func run(t *testing.T, src string) string {
	t.Helper()
	p := mustCompile(t, src)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc()}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output
}

func TestExpressionSemantics(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"7 + 3", "10"},
		{"7 - 3", "4"},
		{"7 * 3", "21"},
		{"7 / 3", "2"},
		{"-7 / 3", "-2"},
		{"7 % 3", "1"},
		{"-7 % 3", "-1"},
		{"6 & 3", "2"},
		{"6 | 3", "7"},
		{"6 ^ 3", "5"},
		{"~0", "-1"},
		{"1 << 4", "16"},
		{"256 >> 3", "32"},
		{"3 < 4", "1"},
		{"4 < 3", "0"},
		{"3 <= 3", "1"},
		{"3 == 3", "1"},
		{"3 != 3", "0"},
		{"4 > 3", "1"},
		{"3 >= 4", "0"},
		{"1 && 1", "1"},
		{"1 && 0", "0"},
		{"0 || 2", "1"}, // strict logical: nonzero normalizes to 1
		{"!5", "0"},
		{"!0", "1"},
		{"-(3 + 4)", "-7"},
		{"int(3.9)", "3"},
		{"int(-3.9)", "-3"},
	}
	for _, c := range cases {
		got := run(t, "void main() { print("+c.expr+"); }")
		if got != c.want+"\n" {
			t.Errorf("%s = %q, want %s", c.expr, strings.TrimSpace(got), c.want)
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"1.5 + 2.25", "3.75"},
		{"10.0 / 4.0", "2.5"},
		{"2.0 * 3.5", "7"},
		{"float(3) / 2.0", "1.5"},
		{"sqrt(16.0)", "4"},
		{"fabs(-2.5)", "2.5"},
		{"1 + 0.5", "1.5"}, // int widens
	}
	for _, c := range cases {
		got := run(t, "void main() { print("+c.expr+"); }")
		if got != c.want+"\n" {
			t.Errorf("%s = %q, want %s", c.expr, strings.TrimSpace(got), c.want)
		}
	}
}

func TestGlobalInitialization(t *testing.T) {
	out := run(t, `
int a[4] = {10, 20, 30};
float f[2] = {1.5, -2};
int s = 99;
void main() {
	print(a[0]); print(a[1]); print(a[2]); print(a[3]);
	print(f[0]); print(f[1]);
	print(s);
}`)
	want := "10\n20\n30\n0\n1.5\n-2\n99\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestGlobalScalarReadModifyWrite(t *testing.T) {
	out := run(t, `
int counter = 5;
void bump() { counter = counter + 2; }
void main() {
	bump();
	bump();
	counter += 1;
	print(counter);
}`)
	if out != "10\n" {
		t.Fatalf("got %q", out)
	}
}

func TestParamArraysShareStorage(t *testing.T) {
	out := run(t, `
int buf[4];
void fill(int dst[], int v) { dst[0] = v; dst[1] = v * 2; }
int get(int src[], int i) { return src[i]; }
void main() {
	fill(buf, 21);
	print(get(buf, 0) + get(buf, 1));
}`)
	if out != "63\n" {
		t.Fatalf("got %q", out)
	}
}

func TestTreeStructureProperties(t *testing.T) {
	p := mustCompile(t, `
int a[8];
int f(int x) {
	int s = 0;
	for (int i = 0; i < x; i = i + 1) {
		if (a[i] > 3) { s = s + a[i]; } else { s = s - 1; }
	}
	return s;
}
void main() { a[2] = 9; print(f(8)); }
`)
	for _, name := range p.Order {
		fn := p.Funcs[name]
		if len(fn.Trees) == 0 {
			t.Fatalf("%s has no trees", name)
		}
		for _, tr := range fn.Trees {
			if err := tr.Validate(); err != nil {
				t.Errorf("%v", err)
			}
			if err := tr.ValidateBlocks(); err != nil {
				t.Errorf("%v", err)
			}
			// Pure non-merge ops must be speculative (unguarded).
			for _, op := range tr.Ops {
				if !op.Kind.HasSideEffect() && !op.VarWrite && op.Guard != ir.NoReg {
					t.Errorf("%s: pure op %s carries a guard", tr.Name, op)
				}
			}
		}
	}
}

func TestLoopBodyLivesInHeaderTree(t *testing.T) {
	p := mustCompile(t, `
int a[4];
void main() {
	for (int i = 0; i < 4; i = i + 1) { a[i] = i; }
	print(a[3]);
}`)
	main := p.Funcs["main"]
	// One tree must exit back to itself (the loop).
	selfLoop := false
	for _, tr := range main.Trees {
		for _, ex := range tr.Exits() {
			if ex.Exit == ir.ExitGoto && ex.Target == tr.ID {
				selfLoop = true
				// The store must be in this same tree, guarded.
				hasStore := false
				for _, op := range tr.Ops {
					if op.Kind == ir.OpStore {
						hasStore = true
						if op.Guard == ir.NoReg {
							t.Error("loop-body store unguarded in header tree")
						}
					}
				}
				if !hasStore {
					t.Error("loop body not fused into header tree")
				}
			}
		}
	}
	if !selfLoop {
		t.Fatal("no self-looping tree found")
	}
}

func TestMemRefsForAffineAccesses(t *testing.T) {
	p := mustCompile(t, `
int a[16];
int idx[16];
void f(int x[]) {
	for (int i = 2; i < 10; i = i + 1) {
		a[2 * i + 1] = x[i];      // affine global + affine param
		a[idx[i]] = 0;            // subscript loaded from memory
	}
}
void main() { f(idx); print(a[5]); }
`)
	fn := p.Funcs["f"]
	var affG, affP, opaque int
	for _, tr := range fn.Trees {
		for _, op := range tr.Ops {
			if op.Ref == nil {
				continue
			}
			switch {
			case op.Ref.BaseKind == ir.BaseGlobal && op.Ref.Sub != nil && len(op.Ref.Sub.Terms) == 1 && op.Ref.Sub.Terms[0].Coef == 2:
				affG++
				// Loop bounds widened by one step: [2, 10].
				if len(op.Ref.Loops) != 1 || !op.Ref.Loops[0].BoundsKnown ||
					op.Ref.Loops[0].Lo != 2 || op.Ref.Loops[0].Hi != 10 {
					t.Errorf("loop info wrong: %+v", op.Ref.Loops)
				}
			case op.Ref.BaseKind == ir.BaseParam && op.Ref.Sub != nil:
				affP++
			case op.Ref.BaseKind == ir.BaseGlobal && op.Ref.Sub == nil:
				opaque++
			}
		}
	}
	if affG == 0 || affP == 0 || opaque == 0 {
		t.Errorf("memref classes missing: affG=%d affP=%d opaque=%d", affG, affP, opaque)
	}
}

func TestCallsInConditionsAndArgs(t *testing.T) {
	out := run(t, `
int id(int x) { return x; }
void main() {
	if (id(3) > id(2)) { print(1); } else { print(0); }
	while (id(0) == 1) { print(99); }
	print(id(id(id(5))));
}`)
	if out != "1\n5\n" {
		t.Fatalf("got %q", out)
	}
}

func TestRecursionDepth(t *testing.T) {
	out := run(t, `
int down(int n) {
	if (n == 0) { return 0; }
	return down(n - 1) + 1;
}
void main() { print(down(500)); }`)
	if out != "500\n" {
		t.Fatalf("got %q", out)
	}
}

func TestVoidMainImplicitReturn(t *testing.T) {
	out := run(t, `void main() { print(1); }`)
	if out != "1\n" {
		t.Fatal("implicit return broken")
	}
}

func TestMixedIntFloatCompare(t *testing.T) {
	out := run(t, `void main() { if (1 < 1.5) { print(1); } else { print(0); } }`)
	if out != "1\n" {
		t.Fatalf("mixed compare got %q", out)
	}
}

func TestDeeplyNestedControl(t *testing.T) {
	out := run(t, `
void main() {
	int s = 0;
	for (int i = 0; i < 3; i = i + 1) {
		for (int j = 0; j < 3; j = j + 1) {
			if (i == j) {
				if (i > 0) { s = s + 10; } else { s = s + 1; }
			} else {
				if (i + j == 2) { s = s + 100; }
			}
		}
	}
	print(s);
}`)
	// pairs: (0,0)+1 (1,1)+10 (2,2)+10, off-diagonal i+j==2: (0,2),(2,0) +200
	if out != "221\n" {
		t.Fatalf("got %q", out)
	}
}

func TestWhileWithComplexCondition(t *testing.T) {
	out := run(t, `
int a[8] = {1, 2, 3, 0, 5, 6, 7, 8};
void main() {
	int i = 0;
	while (i < 8 && a[i] != 0) { i = i + 1; }
	print(i);
}`)
	if out != "3\n" {
		t.Fatalf("got %q", out)
	}
}

func TestDownwardLoop(t *testing.T) {
	out := run(t, `
void main() {
	int s = 0;
	for (int i = 10; i > 0; i = i - 2) { s = s + i; }
	print(s);
}`)
	if out != "30\n" { // 10+8+6+4+2
		t.Fatalf("got %q", out)
	}
}
