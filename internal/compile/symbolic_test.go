package compile

import (
	"testing"

	"specdis/internal/ir"
	"specdis/internal/lang"
)

// refsOf compiles src and collects the MemRefs of every load/store in fn.
func refsOf(t *testing.T, src, fn string) []*ir.MemRef {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var refs []*ir.MemRef
	for _, tr := range prog.Funcs[fn].Trees {
		for _, op := range tr.Ops {
			if op.Ref != nil {
				refs = append(refs, op.Ref)
			}
		}
	}
	return refs
}

func TestSymbolicAffineSubscripts(t *testing.T) {
	refs := refsOf(t, `
int a[64];
void main() {
	for (int i = 1; i < 10; i = i + 1) {
		a[3 * i + 2] = a[i - 1] + a[2 * i];
	}
}`, "main")
	// Expect subscripts 3i+2, i-1, 2i over the same loop var.
	var coefs []int64
	var consts []int64
	for _, r := range refs {
		if r.Sub == nil {
			t.Fatalf("non-affine ref %v", r)
		}
		if len(r.Sub.Terms) != 1 {
			t.Fatalf("expected single-var subscript, got %v", r.Sub)
		}
		coefs = append(coefs, r.Sub.Terms[0].Coef)
		consts = append(consts, r.Sub.Const)
	}
	want := map[int64]int64{3: 2, 1: -1, 2: 0}
	for i, c := range coefs {
		if want[c] != consts[i] {
			t.Errorf("ref %d: coef %d const %d unexpected", i, c, consts[i])
		}
	}
	// All three share one induction variable.
	v := refs[0].Sub.Terms[0].Var
	for _, r := range refs {
		if r.Sub.Terms[0].Var != v {
			t.Error("induction variable not shared")
		}
	}
}

func TestSymbolicInvariantSymbols(t *testing.T) {
	// n is loop-invariant: a[i+n] and a[i+n+1] must share the opaque symbol
	// so their difference is the constant 1.
	refs := refsOf(t, `
int a[64];
void f(int n) {
	for (int i = 0; i < 8; i = i + 1) {
		a[i + n] = a[i + n + 1];
	}
}
void main() { f(3); }`, "f")
	if len(refs) != 2 {
		t.Fatalf("got %d refs", len(refs))
	}
	d := refs[0].Sub.Sub(refs[1].Sub)
	if !d.IsConst() || (d.Const != 1 && d.Const != -1) {
		t.Fatalf("difference %v, want ±1 (invariant symbol must cancel)", d)
	}
}

func TestSymbolicInvalidationAcrossIterations(t *testing.T) {
	// t changes every iteration via a load: its symbol must NOT cancel
	// against a use of t from... the same iteration it does cancel; across
	// an if-merge with differing assignments it must not.
	refs := refsOf(t, `
int a[64];
int b[64];
void main() {
	for (int i = 0; i < 8; i = i + 1) {
		int t = b[i];
		a[t] = a[t] + 1;      // same iteration: same symbol, difference 0
	}
}`, "main")
	var subs []*ir.Affine
	for _, r := range refs {
		if r.BaseSym == "a" {
			subs = append(subs, r.Sub)
		}
	}
	if len(subs) != 2 {
		t.Fatalf("got %d a-refs", len(subs))
	}
	if subs[0] == nil || subs[1] == nil {
		t.Fatal("loaded-value subscript should still be a (opaque) symbol")
	}
	d := subs[0].Sub(subs[1])
	if !d.IsConst() || d.Const != 0 {
		t.Fatalf("a[t] vs a[t]: difference %v, want 0", d)
	}
}

func TestSymbolicMergeAtJoin(t *testing.T) {
	// x differs across the branches: after the join its symbol must be
	// fresh, so a[x] is not claimed equal to either branch's subscript.
	refs := refsOf(t, `
int a[64];
void f(int c) {
	int x = 1;
	if (c > 0) { x = 2; } else { x = 3; }
	a[x] = 9;
	a[2] = 1;
}
void main() { f(1); }`, "f")
	var ax, a2 *ir.Affine
	for _, r := range refs {
		if r.Sub != nil && r.Sub.IsConst() && r.Sub.Const == 2 {
			a2 = r.Sub
		} else {
			ax = r.Sub
		}
	}
	if ax == nil || a2 == nil {
		t.Fatalf("refs not found: %v", refs)
	}
	if ax.IsConst() {
		t.Fatalf("joined x should be opaque, got %v", ax)
	}
}

func TestSymbolicCompoundTracking(t *testing.T) {
	// s += 2 keeps affine tracking; s *= c (non-const) drops it.
	env := newSymEnv(new(ir.LoopVar))
	env.set("s", ir.ConstAffine(4))

	lo := &lowerer{sym: env}
	lo.trackScalar(&lang.AssignStmt{Op: '+', Target: &lang.LValue{Name: "s"},
		Value: &lang.IntLit{V: 2}}, "s", lang.TypeInt)
	if got := env.get("s"); !got.IsConst() || got.Const != 6 {
		t.Fatalf("s += 2 tracked as %v", got)
	}
	lo.trackScalar(&lang.AssignStmt{Op: '-', Target: &lang.LValue{Name: "s"},
		Value: &lang.IntLit{V: 1}}, "s", lang.TypeInt)
	if got := env.get("s"); got.Const != 5 {
		t.Fatalf("s -= 1 tracked as %v", got)
	}
	lo.trackScalar(&lang.AssignStmt{Op: '*', Target: &lang.LValue{Name: "s"},
		Value: &lang.IntLit{V: 3}}, "s", lang.TypeInt)
	if got := env.get("s"); !got.IsConst() || got.Const != 15 {
		t.Fatalf("s *= 3 tracked as %v", got)
	}
	// Multiplying by a non-constant loses the value.
	env.set("k", nil) // opaque
	lo.trackScalar(&lang.AssignStmt{Op: '*', Target: &lang.LValue{Name: "s"},
		Value: &lang.VarRef{Name: "k"}}, "s", lang.TypeInt)
	if got := env.get("s"); got.IsConst() {
		t.Fatalf("s *= k should be opaque, got %v", got)
	}
	// Float variables are never tracked.
	lo.trackScalar(&lang.AssignStmt{Op: '+', Target: &lang.LValue{Name: "f"},
		Value: &lang.IntLit{V: 1}}, "f", lang.TypeFloat)
}

func TestSymEvalForms(t *testing.T) {
	env := newSymEnv(new(ir.LoopVar))
	env.set("i", ir.VarAffine(7))
	mk := func(e lang.Expr) *ir.Affine { return env.symEval(e) }
	i := &lang.VarRef{Name: "i"}
	i.T = lang.TypeInt
	lit := func(v int64) lang.Expr { return &lang.IntLit{V: v} }

	if a := mk(&lang.BinaryExpr{Op: lang.TokShl, L: i, R: lit(3)}); a == nil || a.Coef(7) != 8 {
		t.Errorf("i << 3 => %v", a)
	}
	if a := mk(&lang.BinaryExpr{Op: lang.TokSlash, L: lit(9), R: lit(2)}); a == nil || a.Const != 4 {
		t.Errorf("9/2 => %v", a)
	}
	if a := mk(&lang.BinaryExpr{Op: lang.TokSlash, L: i, R: lit(2)}); a != nil {
		t.Errorf("i/2 should be opaque, got %v", a)
	}
	if a := mk(&lang.UnaryExpr{Op: '-', X: i}); a == nil || a.Coef(7) != -1 {
		t.Errorf("-i => %v", a)
	}
	if a := mk(&lang.UnaryExpr{Op: '~', X: i}); a != nil {
		t.Errorf("~i should be opaque, got %v", a)
	}
	fl := &lang.FloatLit{V: 1.5}
	if a := mk(fl); a != nil {
		t.Errorf("float literal should be opaque, got %v", a)
	}
}

func TestPostStepForms(t *testing.T) {
	lv := &lang.LValue{Name: "i"}
	iRef := &lang.VarRef{Name: "i"}
	cases := []struct {
		post lang.Stmt
		want int64
		ok   bool
	}{
		{&lang.AssignStmt{Op: '+', Target: lv, Value: &lang.IntLit{V: 2}}, 2, true},
		{&lang.AssignStmt{Op: '-', Target: lv, Value: &lang.IntLit{V: 3}}, -3, true},
		{&lang.AssignStmt{Op: '=', Target: lv, Value: &lang.BinaryExpr{
			Op: lang.TokPlus, L: iRef, R: &lang.IntLit{V: 1}}}, 1, true},
		{&lang.AssignStmt{Op: '=', Target: lv, Value: &lang.BinaryExpr{
			Op: lang.TokMinus, L: iRef, R: &lang.IntLit{V: 4}}}, -4, true},
		{&lang.AssignStmt{Op: '=', Target: lv, Value: &lang.BinaryExpr{
			Op: lang.TokPlus, L: iRef, R: &lang.UnaryExpr{Op: '-', X: &lang.IntLit{V: 2}}}}, -2, true},
		{&lang.AssignStmt{Op: '=', Target: lv, Value: &lang.BinaryExpr{
			Op: lang.TokStar, L: iRef, R: &lang.IntLit{V: 2}}}, 0, false}, // i = i*2
		{&lang.AssignStmt{Op: '=', Target: &lang.LValue{Name: "j"},
			Value: &lang.IntLit{V: 1}}, 0, false}, // wrong variable
		{&lang.PrintStmt{Value: &lang.IntLit{V: 0}}, 0, false}, // not an assignment
	}
	for k, c := range cases {
		got, ok := postStep(c.post, "i")
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: got (%d,%v), want (%d,%v)", k, got, ok, c.want, c.ok)
		}
	}
}

func TestBoundsWidening(t *testing.T) {
	// Downward loop: for (i = 9; i > 2; i -= 2): values 9,7,5,3; exit 1.
	refs := refsOf(t, `
int a[64];
void main() {
	for (int i = 9; i > 2; i = i - 2) { a[i] = 1; }
}`, "main")
	if len(refs) != 1 || len(refs[0].Loops) != 1 {
		t.Fatalf("refs %v", refs)
	}
	l := refs[0].Loops[0]
	if !l.BoundsKnown || l.Lo != 1 || l.Hi != 9 || l.Step != -2 {
		t.Fatalf("downward loop bounds %+v, want [1,9] step -2", l)
	}
}
