package compile

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/lang"
)

// termKind classifies how a lowered block ends.
type termKind uint8

const (
	termNone termKind = iota // still open
	termCond                 // conditional branch
	termJump                 // unconditional branch
	termRet                  // function return
	termCall                 // call, then fall through to Succ
)

// lblock is a basic block in the pre-tree CFG. Ops are ir.Op values whose
// ID/Seq/Block fields are assigned later, when the block is emitted into a
// decision tree.
type lblock struct {
	id        int
	ops       []*ir.Op
	kind      termKind
	cond      ir.Reg // termCond
	succTrue  int
	succFalse int
	succ      int // termJump target; termCall continuation
	callee    string
	callArgs  []ir.Reg
	callDest  ir.Reg // NoReg for void calls
	retVal    ir.Reg // NoReg for void returns
}

// varInfo is a scalar local/parameter binding.
type varInfo struct {
	reg ir.Reg
	typ lang.Type
}

// lowerer lowers one function to lblocks.
type lowerer struct {
	prog *lang.CheckedProgram
	irp  *ir.Program
	fn   *ir.Function
	decl *lang.FuncDecl

	blocks []*lblock
	cur    *lblock

	scopes   []map[string]varInfo
	varRegs  map[ir.Reg]bool
	localVal map[ir.Reg]ir.Reg // var reg -> speculative temp, per block

	sym     *symEnv
	varID   ir.LoopVar
	loops   []ir.LoopInfo // enclosing canonical loops, outermost first
	brkTgt  []int
	contTgt []int

	constCache map[ir.Value]ir.Reg
}

func (lo *lowerer) newBlock() *lblock {
	b := &lblock{id: len(lo.blocks), callDest: ir.NoReg, retVal: ir.NoReg}
	lo.blocks = append(lo.blocks, b)
	return b
}

func (lo *lowerer) setCur(b *lblock) {
	lo.cur = b
	lo.constCache = map[ir.Value]ir.Reg{}
	lo.localVal = map[ir.Reg]ir.Reg{}
}

func (lo *lowerer) emit(kind ir.OpKind, args []ir.Reg, dest ir.Reg) *ir.Op {
	op := &ir.Op{Kind: kind, Args: args, Dest: dest, Guard: ir.NoReg}
	lo.cur.ops = append(lo.cur.ops, op)
	return op
}

func (lo *lowerer) constReg(v ir.Value) ir.Reg {
	if r, ok := lo.constCache[v]; ok {
		return r
	}
	r := lo.fn.NewReg()
	op := lo.emit(ir.OpConst, nil, r)
	op.Imm = v
	lo.constCache[v] = r
	return r
}

func (lo *lowerer) intConst(i int64) ir.Reg {
	return lo.constReg(ir.Value{I: i, F: float64(i)})
}

func (lo *lowerer) floatConst(f float64) ir.Reg {
	return lo.constReg(ir.Value{I: int64(f), F: f})
}

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]varInfo{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) declareVar(name string, typ lang.Type) ir.Reg {
	r := lo.fn.NewReg()
	lo.scopes[len(lo.scopes)-1][name] = varInfo{reg: r, typ: typ}
	if lo.varRegs == nil {
		lo.varRegs = map[ir.Reg]bool{}
	}
	lo.varRegs[r] = true
	return r
}

// assignTo stores val into the variable register dest: a guarded merge move
// commits the value under the path condition, while same-block consumers are
// forwarded the speculative temporary directly (recorded in localVal), so
// pure downstream computation does not serialize behind guard evaluation.
func (lo *lowerer) assignTo(dest, val ir.Reg) {
	lo.emit(ir.OpMove, []ir.Reg{val}, dest).VarWrite = true
	if !lo.varRegs[val] {
		// Temporaries are single-assignment, so the forwarded value can
		// never go stale within the block; variable registers can.
		lo.localVal[dest] = val
	} else {
		delete(lo.localVal, dest)
	}
}

// readVar returns the register to read variable reg from: the speculative
// temporary assigned earlier in this block when available.
func (lo *lowerer) readVar(reg ir.Reg) ir.Reg {
	if t, ok := lo.localVal[reg]; ok {
		return t
	}
	return reg
}

// resolve finds a scalar/array-parameter binding, or returns ok=false when
// the name refers to a global.
func (lo *lowerer) resolve(name string) (varInfo, bool) {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if v, ok := lo.scopes[i][name]; ok {
			return v, true
		}
	}
	return varInfo{}, false
}

// cvt converts between int and float registers where needed.
func (lo *lowerer) cvt(r ir.Reg, from, to lang.Type) ir.Reg {
	if from == to {
		return r
	}
	d := lo.fn.NewReg()
	if from == lang.TypeInt && to == lang.TypeFloat {
		lo.emit(ir.OpCvtIF, []ir.Reg{r}, d)
	} else {
		lo.emit(ir.OpCvtFI, []ir.Reg{r}, d)
	}
	return d
}

// memRef builds the symbolic description of an array access.
func (lo *lowerer) memRef(name string, idx lang.Expr) *ir.MemRef {
	ref := &ir.MemRef{}
	if _, isLocal := lo.resolve(name); isLocal {
		ref.BaseKind = ir.BaseParam
		ref.BaseSym = name
	} else {
		ref.BaseKind = ir.BaseGlobal
		ref.BaseSym = name
	}
	if idx == nil {
		ref.Sub = ir.ConstAffine(0)
	} else {
		ref.Sub = lo.sym.symEval(idx) // nil when not affine
	}
	ref.Loops = append([]ir.LoopInfo(nil), lo.loops...)
	return ref
}

// address computes the address register for an array access and the element
// type, also returning the symbolic MemRef.
func (lo *lowerer) address(name string, idx lang.Expr) (ir.Reg, lang.Type, *ir.MemRef, error) {
	ref := lo.memRef(name, idx)
	var base ir.Reg
	var elem lang.Type
	if v, ok := lo.resolve(name); ok {
		if !v.typ.IsArray() {
			return 0, 0, nil, fmt.Errorf("%s: not an array", name)
		}
		base = v.reg
		elem = v.typ.Elem()
	} else {
		g := lo.prog.Globals[name]
		if g == nil {
			return 0, 0, nil, fmt.Errorf("%s: undefined", name)
		}
		base = lo.intConst(lo.globalBase(name))
		elem = g.Elem
	}
	if idx == nil {
		return base, elem, ref, nil
	}
	idxReg, idxT, err := lo.lowerExpr(idx)
	if err != nil {
		return 0, 0, nil, err
	}
	if idxT != lang.TypeInt {
		return 0, 0, nil, fmt.Errorf("%s: non-int index", name)
	}
	addr := lo.fn.NewReg()
	lo.emit(ir.OpAdd, []ir.Reg{base, idxReg}, addr)
	return addr, elem, ref, nil
}

func (lo *lowerer) globalBase(name string) int64 {
	g := lo.irp.Global(name)
	if g == nil {
		panic("global not laid out: " + name)
	}
	return g.Base
}

// lowerExpr lowers an expression, returning the result register and type.
func (lo *lowerer) lowerExpr(e lang.Expr) (ir.Reg, lang.Type, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return lo.intConst(x.V), lang.TypeInt, nil

	case *lang.FloatLit:
		return lo.floatConst(x.V), lang.TypeFloat, nil

	case *lang.VarRef:
		if v, ok := lo.resolve(x.Name); ok {
			if v.typ.IsArray() {
				return v.reg, v.typ, nil
			}
			return lo.readVar(v.reg), v.typ, nil
		}
		g := lo.prog.Globals[x.Name]
		if g == nil {
			return 0, 0, fmt.Errorf("%s: undefined", x.Name)
		}
		if g.IsScalar {
			// Scalar global: load through memory.
			addr := lo.intConst(lo.globalBase(x.Name))
			d := lo.fn.NewReg()
			op := lo.emit(ir.OpLoad, []ir.Reg{addr}, d)
			op.Ref = lo.memRef(x.Name, nil)
			return d, g.Elem, nil
		}
		// Array global used as a value (argument passing): its base address.
		t := lang.TypeIntArray
		if g.Elem == lang.TypeFloat {
			t = lang.TypeFloatArray
		}
		return lo.intConst(lo.globalBase(x.Name)), t, nil

	case *lang.IndexExpr:
		addr, elem, ref, err := lo.address(x.Name, x.Index)
		if err != nil {
			return 0, 0, err
		}
		d := lo.fn.NewReg()
		op := lo.emit(ir.OpLoad, []ir.Reg{addr}, d)
		op.Ref = ref
		return d, elem, nil

	case *lang.UnaryExpr:
		r, t, err := lo.lowerExpr(x.X)
		if err != nil {
			return 0, 0, err
		}
		d := lo.fn.NewReg()
		switch x.Op {
		case '-':
			if t == lang.TypeFloat {
				lo.emit(ir.OpFNeg, []ir.Reg{r}, d)
			} else {
				lo.emit(ir.OpNeg, []ir.Reg{r}, d)
			}
			return d, t, nil
		case '!':
			lo.emit(ir.OpCmpEQ, []ir.Reg{r, lo.intConst(0)}, d)
			return d, lang.TypeInt, nil
		case '~':
			lo.emit(ir.OpNot, []ir.Reg{r}, d)
			return d, lang.TypeInt, nil
		}
		return 0, 0, fmt.Errorf("bad unary op %c", x.Op)

	case *lang.BinaryExpr:
		return lo.lowerBinary(x)

	case *lang.CallExpr:
		return lo.lowerCall(x)
	}
	return 0, 0, fmt.Errorf("unhandled expression %T", e)
}

var intBinKind = map[lang.TokKind]ir.OpKind{
	lang.TokPlus: ir.OpAdd, lang.TokMinus: ir.OpSub, lang.TokStar: ir.OpMul,
	lang.TokSlash: ir.OpDiv, lang.TokPercent: ir.OpRem,
	lang.TokAmp: ir.OpAnd, lang.TokPipe: ir.OpOr, lang.TokCaret: ir.OpXor,
	lang.TokShl: ir.OpShl, lang.TokShr: ir.OpShr,
	lang.TokEq: ir.OpCmpEQ, lang.TokNe: ir.OpCmpNE, lang.TokLt: ir.OpCmpLT,
	lang.TokLe: ir.OpCmpLE, lang.TokGt: ir.OpCmpGT, lang.TokGe: ir.OpCmpGE,
}

var floatBinKind = map[lang.TokKind]ir.OpKind{
	lang.TokPlus: ir.OpFAdd, lang.TokMinus: ir.OpFSub, lang.TokStar: ir.OpFMul,
	lang.TokSlash: ir.OpFDiv,
	lang.TokEq:    ir.OpFCmpEQ, lang.TokNe: ir.OpFCmpNE, lang.TokLt: ir.OpFCmpLT,
	lang.TokLe: ir.OpFCmpLE, lang.TokGt: ir.OpFCmpGT, lang.TokGe: ir.OpFCmpGE,
}

func (lo *lowerer) lowerBinary(x *lang.BinaryExpr) (ir.Reg, lang.Type, error) {
	switch x.Op {
	case lang.TokAndAnd, lang.TokOrOr:
		// Strict logical operators over booleans.
		l, err := lo.lowerCond(x.L)
		if err != nil {
			return 0, 0, err
		}
		r, err := lo.lowerCond(x.R)
		if err != nil {
			return 0, 0, err
		}
		d := lo.fn.NewReg()
		if x.Op == lang.TokAndAnd {
			lo.emit(ir.OpAnd, []ir.Reg{l, r}, d)
		} else {
			lo.emit(ir.OpOr, []ir.Reg{l, r}, d)
		}
		return d, lang.TypeInt, nil
	}

	l, lt, err := lo.lowerExpr(x.L)
	if err != nil {
		return 0, 0, err
	}
	r, rt, err := lo.lowerExpr(x.R)
	if err != nil {
		return 0, 0, err
	}
	opT := lt
	if lt == lang.TypeFloat || rt == lang.TypeFloat {
		opT = lang.TypeFloat
		l = lo.cvt(l, lt, lang.TypeFloat)
		r = lo.cvt(r, rt, lang.TypeFloat)
	}
	d := lo.fn.NewReg()
	var kind ir.OpKind
	var ok bool
	if opT == lang.TypeFloat {
		kind, ok = floatBinKind[x.Op]
	} else {
		kind, ok = intBinKind[x.Op]
	}
	if !ok {
		return 0, 0, fmt.Errorf("operator %s unsupported for %s", x.Op, opT)
	}
	lo.emit(kind, []ir.Reg{l, r}, d)
	return d, x.ExprType(), nil
}

// lowerCond lowers a condition to a 0/1 register.
func (lo *lowerer) lowerCond(e lang.Expr) (ir.Reg, error) {
	r, t, err := lo.lowerExpr(e)
	if err != nil {
		return 0, err
	}
	if t != lang.TypeInt {
		return 0, fmt.Errorf("condition is %s, not int", t)
	}
	if isBoolExpr(e) {
		return r, nil
	}
	d := lo.fn.NewReg()
	lo.emit(ir.OpCmpNE, []ir.Reg{r, lo.intConst(0)}, d)
	return d, nil
}

// isBoolExpr reports whether the expression already yields 0/1.
func isBoolExpr(e lang.Expr) bool {
	switch x := e.(type) {
	case *lang.BinaryExpr:
		switch x.Op {
		case lang.TokEq, lang.TokNe, lang.TokLt, lang.TokLe, lang.TokGt,
			lang.TokGe, lang.TokAndAnd, lang.TokOrOr:
			return true
		}
	case *lang.UnaryExpr:
		return x.Op == '!'
	}
	return false
}

var intrinsicKind = map[string]ir.OpKind{
	"sqrt": ir.OpSqrt, "fabs": ir.OpFAbs, "sin": ir.OpSin, "cos": ir.OpCos,
	"exp": ir.OpExp, "log": ir.OpLog,
}

func (lo *lowerer) lowerCall(x *lang.CallExpr) (ir.Reg, lang.Type, error) {
	if _, isIntr := lang.Intrinsics[x.Name]; isIntr {
		r, t, err := lo.lowerExpr(x.Args[0])
		if err != nil {
			return 0, 0, err
		}
		switch x.Name {
		case "int":
			return lo.cvt(r, t, lang.TypeInt), lang.TypeInt, nil
		case "float":
			return lo.cvt(r, t, lang.TypeFloat), lang.TypeFloat, nil
		}
		r = lo.cvt(r, t, lang.TypeFloat)
		d := lo.fn.NewReg()
		lo.emit(intrinsicKind[x.Name], []ir.Reg{r}, d)
		return d, lang.TypeFloat, nil
	}

	callee := lo.prog.Funcs[x.Name]
	args := make([]ir.Reg, len(x.Args))
	for i, a := range x.Args {
		r, t, err := lo.lowerExpr(a)
		if err != nil {
			return 0, 0, err
		}
		pt := callee.Params[i].Type
		if !pt.IsArray() {
			r = lo.cvt(r, t, pt)
		}
		args[i] = r
	}
	var dest ir.Reg = ir.NoReg
	if callee.Ret != lang.TypeVoid {
		dest = lo.fn.NewReg()
	}
	// The call terminates the current block; execution resumes in a fresh
	// continuation block (a new decision tree).
	cont := lo.newBlock()
	lo.cur.kind = termCall
	lo.cur.callee = x.Name
	lo.cur.callArgs = args
	lo.cur.callDest = dest
	lo.cur.succ = cont.id
	lo.setCur(cont)
	return dest, callee.Ret, nil
}
