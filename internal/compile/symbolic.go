package compile

import (
	"specdis/internal/ir"
	"specdis/internal/lang"
)

// symEnv tracks flow-sensitive symbolic (affine) values of scalar integer
// variables during lowering, for the benefit of static disambiguation.
// A variable maps to an affine expression over abstract variables: loop
// induction variables (which carry bounds) and opaque symbols (loop-invariant
// unknowns). A missing entry means the value is not affine.
type symEnv struct {
	vals   map[string]*ir.Affine
	nextID *ir.LoopVar
}

func newSymEnv(counter *ir.LoopVar) *symEnv {
	return &symEnv{vals: map[string]*ir.Affine{}, nextID: counter}
}

// fresh allocates a new abstract variable ID.
func (e *symEnv) fresh() ir.LoopVar {
	id := *e.nextID
	*e.nextID++
	return id
}

// get returns the affine value of name, creating a fresh opaque symbol the
// first time an unknown-but-stable variable is read.
func (e *symEnv) get(name string) *ir.Affine {
	if a, ok := e.vals[name]; ok {
		return a
	}
	a := ir.VarAffine(e.fresh())
	e.vals[name] = a
	return a
}

// set records an assignment. a == nil marks the value as non-affine; the
// variable then reads as a fresh opaque symbol.
func (e *symEnv) set(name string, a *ir.Affine) {
	if a == nil {
		e.vals[name] = ir.VarAffine(e.fresh())
		return
	}
	e.vals[name] = a
}

// invalidate gives each named variable a fresh opaque value (used when a
// variable is modified along some path we did not track).
func (e *symEnv) invalidate(names map[string]bool) {
	for n := range names {
		e.vals[n] = ir.VarAffine(e.fresh())
	}
}

// snapshot copies the environment.
func (e *symEnv) snapshot() map[string]*ir.Affine {
	c := make(map[string]*ir.Affine, len(e.vals))
	for k, v := range e.vals {
		c[k] = v
	}
	return c
}

// mergeFrom keeps only bindings identical in both environments; differing
// bindings become fresh opaque symbols (a conservative join).
func (e *symEnv) mergeFrom(a, b map[string]*ir.Affine) {
	e.vals = map[string]*ir.Affine{}
	for k, va := range a {
		if vb, ok := b[k]; ok && va.Equal(vb) {
			e.vals[k] = va
		} else {
			e.vals[k] = ir.VarAffine(e.fresh())
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			e.vals[k] = ir.VarAffine(e.fresh())
		}
	}
}

// symEval evaluates an integer expression to an affine form, or nil if the
// expression is not affine (array loads, calls, float-typed parts, …).
func (e *symEnv) symEval(x lang.Expr) *ir.Affine {
	switch ex := x.(type) {
	case *lang.IntLit:
		return ir.ConstAffine(ex.V)
	case *lang.VarRef:
		if ex.ExprType() != lang.TypeInt {
			return nil
		}
		return e.get(ex.Name)
	case *lang.UnaryExpr:
		if ex.Op != '-' {
			return nil
		}
		if a := e.symEval(ex.X); a != nil {
			return a.Scale(-1)
		}
		return nil
	case *lang.BinaryExpr:
		l := e.symEval(ex.L)
		r := e.symEval(ex.R)
		switch ex.Op {
		case lang.TokPlus:
			if l != nil && r != nil {
				return l.Add(r)
			}
		case lang.TokMinus:
			if l != nil && r != nil {
				return l.Sub(r)
			}
		case lang.TokStar:
			if l != nil && l.IsConst() && r != nil {
				return r.Scale(l.Const)
			}
			if r != nil && r.IsConst() && l != nil {
				return l.Scale(r.Const)
			}
		case lang.TokSlash:
			if l != nil && l.IsConst() && r != nil && r.IsConst() && r.Const != 0 {
				return ir.ConstAffine(l.Const / r.Const)
			}
		case lang.TokShl:
			if l != nil && r != nil && r.IsConst() && r.Const >= 0 && r.Const < 62 {
				return l.Scale(1 << uint(r.Const))
			}
		}
		return nil
	}
	return nil
}

// assignedVars collects the names of scalar variables assigned anywhere in a
// statement (including nested loops/blocks), used to invalidate symbolic
// state around loops and joins.
func assignedVars(s lang.Stmt, out map[string]bool) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		for _, inner := range st.Stmts {
			assignedVars(inner, out)
		}
	case *lang.VarDeclStmt:
		out[st.Name] = true
	case *lang.AssignStmt:
		if st.Target.Index == nil {
			out[st.Target.Name] = true
		}
	case *lang.IfStmt:
		assignedVars(st.Then, out)
		if st.Else != nil {
			assignedVars(st.Else, out)
		}
	case *lang.WhileStmt:
		assignedVars(st.Body, out)
	case *lang.ForStmt:
		if st.Init != nil {
			assignedVars(st.Init, out)
		}
		if st.Post != nil {
			assignedVars(st.Post, out)
		}
		assignedVars(st.Body, out)
	}
}
