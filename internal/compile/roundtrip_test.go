package compile_test

import (
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/lang"
	"specdis/internal/machine"
	"specdis/internal/sim"
)

// TestPrinterRoundTripOnSuite: every benchmark, printed back to source and
// recompiled, must behave identically.
func TestPrinterRoundTripOnSuite(t *testing.T) {
	for _, b := range bench.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ast, err := lang.Parse(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			printed := lang.Print(ast)
			p1, err := compile.Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := compile.Compile(printed)
			if err != nil {
				t.Fatalf("printed source fails to compile: %v", err)
			}
			lat := machine.Infinite(2).LatencyFunc()
			r1 := &sim.Runner{Prog: p1, SemLat: lat}
			r2 := &sim.Runner{Prog: p2, SemLat: lat}
			o1, err := r1.Run()
			if err != nil {
				t.Fatal(err)
			}
			o2, err := r2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if o1.Output != o2.Output {
				t.Fatalf("round trip changed behaviour:\n got %q\nwant %q", o2.Output, o1.Output)
			}
		})
	}
}
