// Package compile lowers checked MiniC programs to the decision-tree IR:
// expression lowering to guarded operations, CFG construction, decision-tree
// formation (single entry, no internal back edges), if-conversion with guard
// materialization, and conservative memory-dependence arc construction.
//
// Symbolic affine address analysis runs alongside lowering and attaches a
// MemRef to every load and store, which the alias package's static
// disambiguator (GCD/Banerjee) consumes.
package compile

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/lang"
	"specdis/internal/verify"
)

// redZone is the number of unmapped words kept below the first global, so
// that speculative accesses through small garbage addresses never collide
// with real data.
const redZone = 16

// memSlack is extra memory beyond the globals, absorbing speculative
// out-of-range addresses (the interpreter clamps addresses into the memory).
const memSlack = 4096

// Options configure compilation beyond the defaults.
type Options struct {
	// Verify runs the full static verifier (structural, guard, exit, and
	// arc invariants — see internal/verify) over the lowered program, on
	// top of the always-on ir.Validate sanity pass. Debug mode: it costs a
	// whole-program traversal per compile.
	Verify bool
}

// Compile parses, checks, and lowers a MiniC source file into a decision-tree
// program with conservative (NAIVE) memory-dependence arcs.
func Compile(src string) (*ir.Program, error) {
	return CompileOpts(src, Options{})
}

// CompileOpts is Compile with options.
func CompileOpts(src string, o Options) (*ir.Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := lang.Check(ast)
	if err != nil {
		return nil, err
	}
	prog, err := Lower(checked)
	if err != nil {
		return nil, err
	}
	if o.Verify {
		if err := verify.Program(prog); err != nil {
			return nil, fmt.Errorf("compile: lowered program failed verification: %w", err)
		}
	}
	return prog, nil
}

// Lower lowers a checked program.
func Lower(checked *lang.CheckedProgram) (*ir.Program, error) {
	irp := &ir.Program{Funcs: map[string]*ir.Function{}, Main: "main"}

	// Lay out globals in the flat memory image.
	next := int64(redZone)
	for _, g := range checked.AST.Globals {
		ga := &ir.GlobalArray{Name: g.Name, Base: next, Size: g.Size}
		for _, e := range g.Init {
			v, err := constValue(e, g.Elem)
			if err != nil {
				return nil, err
			}
			ga.Init = append(ga.Init, v)
		}
		irp.Globals = append(irp.Globals, ga)
		next += g.Size
	}
	irp.MemSize = next + memSlack

	for _, fd := range checked.AST.Funcs {
		fn, err := lowerFunc(checked, irp, fd)
		if err != nil {
			return nil, fmt.Errorf("func %s: %w", fd.Name, err)
		}
		irp.Funcs[fd.Name] = fn
		irp.Order = append(irp.Order, fd.Name)
	}

	// Conservative memory-dependence arcs (the NAIVE disambiguator state).
	for _, name := range irp.Order {
		for _, t := range irp.Funcs[name].Trees {
			t.BuildMemArcs()
		}
	}
	if err := irp.Validate(); err != nil {
		return nil, err
	}
	for _, name := range irp.Order {
		for _, t := range irp.Funcs[name].Trees {
			if err := t.ValidateBlocks(); err != nil {
				return nil, err
			}
		}
	}
	return irp, nil
}

func constValue(e lang.Expr, elem lang.Type) (ir.Value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		if elem == lang.TypeFloat {
			return ir.Value{I: x.V, F: float64(x.V)}, nil
		}
		return ir.Value{I: x.V, F: float64(x.V)}, nil
	case *lang.FloatLit:
		return ir.Value{I: int64(x.V), F: x.V}, nil
	case *lang.UnaryExpr:
		if x.Op == '-' {
			v, err := constValue(x.X, elem)
			if err != nil {
				return ir.Value{}, err
			}
			return ir.Value{I: -v.I, F: -v.F}, nil
		}
	}
	return ir.Value{}, fmt.Errorf("global initializer is not a literal")
}

func lowerFunc(checked *lang.CheckedProgram, irp *ir.Program, fd *lang.FuncDecl) (*ir.Function, error) {
	fn := &ir.Function{Name: fd.Name, IsFloatRet: fd.Ret == lang.TypeFloat}
	lo := &lowerer{
		prog: checked,
		irp:  irp,
		fn:   fn,
		decl: fd,
	}
	lo.sym = newSymEnv(&lo.varID)
	lo.pushScope()
	for _, p := range fd.Params {
		r := lo.declareVar(p.Name, p.Type)
		fn.Params = append(fn.Params, r)
	}
	entry := lo.newBlock()
	lo.setCur(entry)
	if err := lo.lowerStmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end of the body; also terminate any dead
	// continuation blocks left open by return/break lowering.
	for _, b := range lo.blocks {
		if b.kind == termNone {
			b.kind = termRet
			b.retVal = ir.NoReg
		}
	}
	if err := buildTrees(fn, lo.blocks); err != nil {
		return nil, err
	}
	return fn, nil
}
