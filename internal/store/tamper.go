package store

// Tampering support for the validation self-tests: rewrite artifacts of one
// kind in place with the integrity footer resealed, so the result passes
// every CRC and format check and only semantic validation (the translation
// validator at load time) can tell it from the genuine artifact. This is
// how the fault-injection CI step and the repair tests seed "plausible but
// wrong" artifacts — a raw bit flip would be caught by the footer, which
// exercises the corruption rung, not the validation rung.

import (
	"encoding/binary"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// DeleteKind removes every stored artifact of the given kind, from disk and
// from the memory front. The tamper self-tests use it to clear derived cells
// (prepare summaries, priced measurements, traces) so a warm run descends to
// the compiled-code artifacts instead of being served whole cells above
// them. Returns how many artifacts were removed.
func (s *Store) DeleteKind(kind Kind) (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".spda" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		payload, err := checkFooter(data)
		if err != nil || len(payload) == 0 || Kind(payload[0]) != kind {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	s.mu.Lock()
	for k := range s.mem {
		delete(s.mem, k)
	}
	s.order.Init()
	s.memBytes = 0
	s.mu.Unlock()
	return n, nil
}

// TamperArtifacts applies fn to the payload of every stored artifact of the
// given kind and reseals the result under a fresh footer. fn receives the
// decoded-format payload (kind byte and version varint included) and
// returns the replacement, or nil to leave the artifact untouched. Returns
// how many artifacts were rewritten. The memory front is cleared for
// rewritten keys so a subsequent Get reads the tampered file from disk.
func (s *Store) TamperArtifacts(kind Kind, fn func(payload []byte) []byte) (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".spda" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		payload, err := checkFooter(data)
		if err != nil || len(payload) == 0 || Kind(payload[0]) != kind {
			return nil // other kinds and already-broken files stay as they are
		}
		repl := fn(append([]byte(nil), payload...))
		if repl == nil {
			return nil
		}
		sealed := make([]byte, 0, len(repl)+footerSize)
		sealed = append(sealed, repl...)
		var foot [footerSize]byte
		copy(foot[:4], footerMagic[:])
		binary.LittleEndian.PutUint32(foot[4:8], uint32(len(repl)))
		binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(repl))
		sealed = append(sealed, foot[:]...)
		if err := os.WriteFile(path, sealed, 0o644); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	// Drop the whole memory front: tampered payloads must be re-read from
	// disk, and dropping clean entries only costs a disk read.
	s.mu.Lock()
	for k := range s.mem {
		delete(s.mem, k)
	}
	s.order.Init()
	s.memBytes = 0
	s.mu.Unlock()
	return n, nil
}
