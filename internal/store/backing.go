package store

// Adapters wiring the persistent store behind the compiled-code caches:
// bcode programs round-trip in full (the instruction stream is pure data);
// the native tier persists compile metadata (closure chains are
// process-bound, but repertoire membership and chain length are durable).
// Both key on the tree's execution content (ir.AppendExecKey) hashed under
// the artifact kind, so the on-disk namespace is shared across every
// process, program clone, and pipeline that ever compiles the same content.

import (
	"specdis/internal/bcode"
	"specdis/internal/ncode"
)

// bcodeBacking implements bcode.Backing over a store.
type bcodeBacking struct{ s *Store }

// BCodeBacking returns a bcode.Backing persisting compiled programs in s.
func BCodeBacking(s *Store) bcode.Backing { return bcodeBacking{s} }

func (b bcodeBacking) Load(execKey []byte) (*bcode.Prog, bool) {
	return getTyped(b.s, NewKey(KindBCode, execKey), DecodeBCode)
}

func (b bcodeBacking) Store(execKey []byte, p *bcode.Prog) {
	_ = b.s.Put(NewKey(KindBCode, execKey), EncodeBCode(p))
}

// ncodeBacking implements ncode.Backing over a store.
type ncodeBacking struct{ s *Store }

// NCodeBacking returns an ncode.Backing persisting native-tier compile
// metadata in s.
func NCodeBacking(s *Store) ncode.Backing { return ncodeBacking{s} }

func (b ncodeBacking) Load(execKey []byte) (ncode.Meta, bool) {
	m, ok := getTyped(b.s, NewKey(KindNative, execKey), DecodeNative)
	if !ok {
		return ncode.Meta{}, false
	}
	return ncode.Meta{Declined: m.Declined, Steps: m.Steps}, true
}

func (b ncodeBacking) Store(execKey []byte, m ncode.Meta) {
	_ = b.s.Put(NewKey(KindNative, execKey), EncodeNative(&NativeMeta{Declined: m.Declined, Steps: m.Steps}))
}
