package store

// Adapters wiring the persistent store behind the compiled-code caches:
// bcode programs round-trip in full (the instruction stream is pure data);
// the native tier persists compile metadata (closure chains are
// process-bound, but repertoire membership and chain length are durable).
// Both key on the tree's execution content (ir.AppendExecKey) hashed under
// the artifact kind, so the on-disk namespace is shared across every
// process, program clone, and pipeline that ever compiles the same content.
//
// Loads are validated, not just decoded: a bcode payload that survives the
// CRC footer and the format decoder is still run through the translation
// validator (internal/verify.CheckBCode) against the tree that requested
// it, and native metadata is bounds-checked against the tree's size. A
// stale or tampered artifact — plausible bytes under a matching key — is
// dropped (Stats.InvalidDropped) and reported as a miss, so the caller
// recompiles and the next Put repairs the store: the same
// drop→recompute→repair rung corruption takes, one layer deeper.

import (
	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/ncode"
	"specdis/internal/verify"
)

// bcodeBacking implements bcode.Backing over a store.
type bcodeBacking struct{ s *Store }

// BCodeBacking returns a bcode.Backing persisting compiled programs in s.
func BCodeBacking(s *Store) bcode.Backing { return bcodeBacking{s} }

func (b bcodeBacking) Load(t *ir.Tree, execKey []byte) (*bcode.Prog, bool) {
	k := NewKey(KindBCode, execKey)
	p, ok := getTyped(b.s, k, DecodeBCode)
	if !ok {
		return nil, false
	}
	// Bind the loaded stream to the requesting tree (the caller's cache does
	// the same on a hit) and validate the pair before serving it.
	p.Tree = t
	if fs := verify.CheckBCode(t, p); len(fs) > 0 {
		b.s.DropInvalid(k)
		return nil, false
	}
	return p, true
}

func (b bcodeBacking) Store(execKey []byte, p *bcode.Prog) {
	_ = b.s.Put(NewKey(KindBCode, execKey), EncodeBCode(p))
}

// ncodeBacking implements ncode.Backing over a store.
type ncodeBacking struct{ s *Store }

// NCodeBacking returns an ncode.Backing persisting native-tier compile
// metadata in s.
func NCodeBacking(s *Store) ncode.Backing { return ncodeBacking{s} }

func (b ncodeBacking) Load(t *ir.Tree, execKey []byte) (ncode.Meta, bool) {
	k := NewKey(KindNative, execKey)
	m, ok := getTyped(b.s, k, DecodeNative)
	if !ok {
		return ncode.Meta{}, false
	}
	// Fusion only ever shrinks the chain, and a compiled tree emits at
	// least its exit step, so a plausible record has 1..len(t.Ops) steps.
	// Every window is a fusion head and every head retires one step, so
	// Windows <= Fused <= Steps, and neither count can be negative.
	if !m.Declined && (m.Steps < 1 || m.Steps > int64(len(t.Ops)) ||
		m.Fused < 0 || m.Windows < 0 || m.Windows > m.Fused || m.Fused > m.Steps) {
		b.s.DropInvalid(k)
		return ncode.Meta{}, false
	}
	return ncode.Meta{Declined: m.Declined, Steps: m.Steps, Fused: m.Fused, Windows: m.Windows}, true
}

func (b ncodeBacking) Store(execKey []byte, m ncode.Meta) {
	_ = b.s.Put(NewKey(KindNative, execKey), EncodeNative(&NativeMeta{
		Declined: m.Declined, Steps: m.Steps, Fused: m.Fused, Windows: m.Windows,
	}))
}
