package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/trace"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyDerivation(t *testing.T) {
	base := NewKey(KindPrep, []byte("src"), []byte("SPEC"))
	if base == (Key{}) {
		t.Fatal("zero key")
	}
	if NewKey(KindMeas, []byte("src"), []byte("SPEC")) == base {
		t.Error("kind must be part of the key")
	}
	if NewKey(KindPrep, []byte("src2"), []byte("SPEC")) == base {
		t.Error("parts must be part of the key")
	}
	// Length prefixes keep part boundaries from colliding.
	if NewKey(KindPrep, []byte("ab"), []byte("c")) == NewKey(KindPrep, []byte("a"), []byte("bc")) {
		t.Error("shifting a part boundary must change the key")
	}
	if got := len(base.String()); got != 64 {
		t.Errorf("key string length = %d, want 64", got)
	}
}

func TestMissThenPutThenHit(t *testing.T) {
	s := openTemp(t)
	k := NewKey(KindPrep, []byte("x"))
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte("hello artifact")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v; want 1 miss, 1 hit, 1 put", st)
	}
	if st.BytesWritten != int64(len(payload)) {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, len(payload))
	}
}

func TestPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey(KindMeas, []byte("cell"))
	if err := s1.Put(k, []byte("data")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || string(got) != "data" {
		t.Fatalf("second open Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.MemHits != 0 || st.BytesRead != 4 {
		t.Errorf("expected a disk hit: %+v", st)
	}
}

func TestMemFrontLRU(t *testing.T) {
	s := openTemp(t)
	s.SetMemCap(8) // two 4-byte payloads
	keys := []Key{NewKey(KindPrep, []byte("a")), NewKey(KindPrep, []byte("b")), NewKey(KindPrep, []byte("c"))}
	for _, k := range keys {
		if err := s.Put(k, []byte("1234")); err != nil {
			t.Fatal(err)
		}
	}
	// a was evicted by c's insert; b and c are resident.
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, ok := s.Get(keys[2]); !ok {
		t.Fatal("miss on resident key")
	}
	if st := s.Stats(); st.MemHits != 1 {
		t.Errorf("MemHits = %d, want 1", st.MemHits)
	}
	// The evicted key still hits — from disk.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("evicted key must still hit from disk")
	}
	if st := s.Stats(); st.MemHits != 1 || st.Hits != 2 {
		t.Errorf("after disk hit: %+v", st)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	s := openTemp(t)
	for i := byte(0); i < 10; i++ {
		if err := s.Put(NewKey(KindPrep, []byte{i}), bytes.Repeat([]byte{i}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.WalkDir(s.Dir(), func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(p) != ".spda" {
			t.Errorf("unexpected file %s", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// corruptOnDisk mutates the artifact file under k with fn.
func corruptOnDisk(t *testing.T, s *Store, k Key, fn func([]byte) []byte) {
	t.Helper()
	p := s.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionBattery drives every corruption class through the
// degrade-to-recompute contract: the bad file reads as a miss, is deleted,
// and a fresh Put repairs the store.
func TestCorruptionBattery(t *testing.T) {
	prep := &PrepSummary{RAW: 3, WAR: 1, WAW: 2, BaseOps: 100, AfterOps: 120, Grafts: 1}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, s *Store, k Key)
	}{
		{"truncated file", func(t *testing.T, s *Store, k Key) {
			corruptOnDisk(t, s, k, func(b []byte) []byte { return b[:len(b)/2] })
		}},
		{"flipped payload byte", func(t *testing.T, s *Store, k Key) {
			corruptOnDisk(t, s, k, func(b []byte) []byte { b[2] ^= 0x40; return b })
		}},
		{"flipped crc byte", func(t *testing.T, s *Store, k Key) {
			corruptOnDisk(t, s, k, func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
		}},
		{"wrong magic", func(t *testing.T, s *Store, k Key) {
			corruptOnDisk(t, s, k, func(b []byte) []byte { b[len(b)-footerSize] ^= 0xFF; return b })
		}},
		{"wrong version word", func(t *testing.T, s *Store, k Key) {
			// Re-seal a payload with a future format version: the footer is
			// valid, but the typed decoder must reject and drop it.
			body := EncodePrep(prep)
			fresh := header(nil, KindPrep, VersionPrep+1)
			fresh = append(fresh, body[2:]...)
			if err := s.Put(k, fresh); err != nil {
				t.Fatal(err)
			}
			s.SetMemCap(0) // force the next Get through the disk path
			s.SetMemCap(DefaultMemBytes)
		}},
		{"wrong kind byte", func(t *testing.T, s *Store, k Key) {
			if err := s.Put(k, EncodeMeas(&MeasCell{Ops: 1})); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTemp(t)
			k := NewKey(KindPrep, []byte("cell"))
			PutPrep(s, k, prep)
			// Drop the memory front so corruption on disk is observed.
			s.SetMemCap(0)
			s.SetMemCap(DefaultMemBytes)
			tc.corrupt(t, s, k)

			if got, ok := GetPrep(s, k); ok {
				t.Fatalf("corrupt artifact served: %+v", got)
			}
			if st := s.Stats(); st.CorruptDropped != 1 {
				t.Fatalf("CorruptDropped = %d, want 1 (stats %+v)", st.CorruptDropped, st)
			}
			if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
				t.Errorf("corrupt file not deleted (err=%v)", err)
			}
			// Recompute-and-repair: the next Put restores the artifact.
			PutPrep(s, k, prep)
			got, ok := GetPrep(s, k)
			if !ok || *got != *prep {
				t.Fatalf("after repair Get = %+v, %v; want %+v", got, ok, prep)
			}
		})
	}
}

// TestIOFaultInjection drives the armed store-level fault injector
// (ArmIOFaults) through both fault kinds on a populated store: every key's
// first disk read is dealt either a short read (which must surface exactly
// like on-disk corruption — drop, recompute, repair) or a transient open
// error (a plain miss with the file left intact), and the retry must always
// serve the full verified payload.
func TestIOFaultInjection(t *testing.T) {
	s := openTemp(t)
	s.SetMemCap(0) // every Get reads disk: faults are reachable
	payloads := map[Key][]byte{}
	for i := byte(0); i < 8; i++ {
		k := NewKey(KindTrace, []byte{i})
		p := bytes.Repeat([]byte{'a' + i}, 64)
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
		payloads[k] = p
	}
	s.ArmIOFaults(7, 1) // rate 1: every key's first disk read is dealt a fault
	short, open := 0, 0
	for k, want := range payloads {
		before := s.Stats()
		if got, ok := s.Get(k); ok {
			t.Fatalf("faulted first read served %q", got)
		}
		after := s.Stats()
		switch {
		case after.IOShortReads == before.IOShortReads+1:
			short++
			// A short read surfaces as corruption: the file is dropped...
			if after.CorruptDropped != before.CorruptDropped+1 {
				t.Fatalf("short read not counted as corruption: %+v -> %+v", before, after)
			}
			if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
				t.Fatalf("short-read file not dropped (err=%v)", err)
			}
			// ...and the recompute's Put repairs the store.
			if err := s.Put(k, want); err != nil {
				t.Fatal(err)
			}
		case after.IOOpenErrors == before.IOOpenErrors+1:
			open++
			// A transient open error leaves the file intact.
			if _, err := os.Stat(s.path(k)); err != nil {
				t.Fatalf("transient open error deleted the file: %v", err)
			}
		default:
			t.Fatalf("faulted read fired no fault counter: %+v -> %+v", before, after)
		}
		// The fault fired once: the retry serves the full payload.
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("retry after fault = %d bytes, %v; want the original payload", len(got), ok)
		}
	}
	if short == 0 || open == 0 {
		t.Fatalf("seed dealt short=%d open=%d faults; want both kinds (pick another seed)", short, open)
	}
}

// TestIOFaultKeepsMemFrontClean pins the LRU-front purity invariant: a
// truncated disk read must never be remembered by the in-memory front — only
// footer-verified payloads enter it, so the repair rung starts from a clean
// cache.
func TestIOFaultKeepsMemFrontClean(t *testing.T) {
	s := openTemp(t)
	k := NewKey(KindTrace, []byte("hot"))
	want := bytes.Repeat([]byte{0xAB}, 128)
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	// Drop the Put's resident copy so the next Get takes the disk path.
	s.SetMemCap(0)
	s.SetMemCap(DefaultMemBytes)
	// Find a seed that deals this key a short read (the deal consumes the
	// injector's once-per-key budget, so re-arm before the real Get).
	var seed uint64
	for s.ArmIOFaults(seed, 1); s.ioFaultFor(k) != ioFaultShort; seed++ {
		s.ArmIOFaults(seed+1, 1)
	}
	s.ArmIOFaults(seed, 1)
	if _, ok := s.Get(k); ok {
		t.Fatal("short read served a payload")
	}
	s.mu.Lock()
	_, resident := s.mem[k]
	s.mu.Unlock()
	if resident {
		t.Fatal("truncated payload poisoned the LRU front")
	}
	// Repair and verify the front holds the full payload again.
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after repair Get = %d bytes, %v", len(got), ok)
	}
	if st := s.Stats(); st.MemHits == 0 {
		t.Errorf("repaired payload not resident in the front: %+v", st)
	}
}

// TestConcurrentWriters hammers one shared directory from many goroutines —
// same keys, same content, interleaved reads — and requires every read to be
// either a clean miss or the full payload: atomic rename must never expose a
// torn write.
func TestConcurrentWriters(t *testing.T) {
	s := openTemp(t)
	s.SetMemCap(0) // every Get reads disk: exercises the racy path
	const keys = 8
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 1024) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for i := 0; i < keys; i++ {
					k := NewKey(KindPrep, []byte{byte(i)})
					if iter%2 == 0 {
						if err := s.Put(k, payload(i)); err != nil {
							t.Error(err)
							return
						}
					}
					if data, ok := s.Get(k); ok && !bytes.Equal(data, payload(i)) {
						t.Errorf("torn read on key %d: %d bytes", i, len(data))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.CorruptDropped != 0 {
		t.Errorf("concurrent writers caused %d corruption drops", st.CorruptDropped)
	}
}

func TestPrepRoundtrip(t *testing.T) {
	p := &PrepSummary{RAW: 1, WAR: 2, WAW: 3, BaseOps: 4, AfterOps: 5, Grafts: 6}
	got, err := DecodePrep(EncodePrep(p))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("roundtrip = %+v, want %+v", got, p)
	}
}

func TestMeasRoundtrip(t *testing.T) {
	m := &MeasCell{
		Lats:  []int{2, 6},
		Times: [][]int64{{100, 90, 80}, {200, 180, 160}},
		Ops:   123456,
	}
	got, err := DecodeMeas(EncodeMeas(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip = %+v, want %+v", got, m)
	}
}

func TestNativeRoundtrip(t *testing.T) {
	for _, m := range []*NativeMeta{{Declined: true}, {Steps: 42}} {
		got, err := DecodeNative(EncodeNative(m))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *m {
			t.Fatalf("roundtrip = %+v, want %+v", got, m)
		}
	}
}

func TestBCodeRoundtrip(t *testing.T) {
	p := &bcode.Prog{
		NumGuarded: 2,
		Code: []bcode.Instr{
			{Op: 1, GNeg: true, GIdx: 3, Guard: -1, A: 10, B: -20, Dest: 5},
			{Op: 7, Guard: 2, A: 0, B: 1, Dest: -3},
		},
		Consts: []ir.Value{{I: -7, F: 3.25}, {I: 0, F: -0.5}},
	}
	got, err := DecodeBCode(EncodeBCode(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tree != nil {
		t.Error("decoded Prog.Tree must be nil (caller binds it)")
	}
	if got.NumGuarded != p.NumGuarded || !reflect.DeepEqual(got.Code, p.Code) || !reflect.DeepEqual(got.Consts, p.Consts) {
		t.Fatalf("roundtrip = %+v, want %+v", got, p)
	}
}

func TestTraceRoundtrip(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Tree(3, 1, []byte{0b101})
	rec.Call(2)
	rec.Tree(700, 0, nil)
	rec.Ret()
	tr := rec.Finish(42, 40)

	got, err := DecodeTrace(EncodeTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != tr.Events || got.Ops != tr.Ops || got.Committed != tr.Committed {
		t.Fatalf("totals differ: got %+v, want %+v", got, tr)
	}
	if !bytes.Equal(got.Bytes(), tr.Bytes()) {
		t.Fatal("event stream differs after roundtrip")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTypedGetDropsUndecodable pins the getTyped contract end to end over
// the store: a payload that passes the CRC footer but fails the codec is
// dropped and counted.
func TestTypedGetDropsUndecodable(t *testing.T) {
	s := openTemp(t)
	k := NewKey(KindMeas, []byte("m"))
	if err := s.Put(k, []byte{byte(KindMeas), 1, 0xFF}); err != nil { // garbage body
		t.Fatal(err)
	}
	s.SetMemCap(0)
	s.SetMemCap(DefaultMemBytes)
	if _, ok := GetMeas(s, k); ok {
		t.Fatal("undecodable artifact served")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
	// Nil-store safety.
	if _, ok := GetMeas(nil, k); ok {
		t.Fatal("nil store hit")
	}
	PutMeas(nil, k, &MeasCell{}) // must not panic
}
