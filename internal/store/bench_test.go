package store

import (
	"fmt"
	"testing"
)

// Benchmark payloads at the store's two working sizes: a prepare summary
// (~20 B) and a captured-trace artifact (~200 KB, the suite's largest).
var benchSizes = []int{24, 200 << 10}

func BenchmarkStorePut(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var part [8]byte
				part[0], part[1], part[2], part[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if err := s.Put(NewKey(KindPrep, part[:]), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreGet(b *testing.B) {
	for _, size := range benchSizes {
		for _, mem := range []bool{true, false} {
			name := fmt.Sprintf("size=%d/mem=%v", size, mem)
			b.Run(name, func(b *testing.B) {
				s, err := Open(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				k := NewKey(KindPrep, []byte("bench"))
				if err := s.Put(k, make([]byte, size)); err != nil {
					b.Fatal(err)
				}
				if !mem {
					s.SetMemCap(0) // every Get reads and re-verifies from disk
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := s.Get(k); !ok {
						b.Fatal("miss")
					}
				}
			})
		}
	}
}
