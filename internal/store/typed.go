package store

// Typed Get/Put wrappers: each pairs a raw store access with its artifact
// codec and folds every decode failure into the corruption-drops-to-miss
// contract, so callers only ever see "hit with a valid artifact" or "miss,
// recompute". All wrappers are nil-store safe (a nil store is simply always
// a miss), which keeps call sites free of enablement checks.

import "specdis/internal/trace"

// GetPrep returns the prepare summary stored under key.
func GetPrep(s *Store, k Key) (*PrepSummary, bool) {
	return getTyped(s, k, DecodePrep)
}

// PutPrep stores a prepare summary under key.
func PutPrep(s *Store, k Key, p *PrepSummary) {
	if s != nil {
		_ = s.Put(k, EncodePrep(p))
	}
}

// GetMeas returns the measurement cell stored under key.
func GetMeas(s *Store, k Key) (*MeasCell, bool) {
	return getTyped(s, k, DecodeMeas)
}

// PutMeas stores a measurement cell under key.
func PutMeas(s *Store, k Key, m *MeasCell) {
	if s != nil {
		_ = s.Put(k, EncodeMeas(m))
	}
}

// GetTrace returns the execution trace stored under key, verified against
// both the artifact footer and the trace's own integrity footer.
func GetTrace(s *Store, k Key) (*trace.Trace, bool) {
	return getTyped(s, k, DecodeTrace)
}

// PutTrace stores a captured trace under key.
func PutTrace(s *Store, k Key, t *trace.Trace) {
	if s != nil {
		_ = s.Put(k, EncodeTrace(t))
	}
}

// getTyped is the shared hit path: raw get, decode, drop-on-corrupt.
func getTyped[T any](s *Store, k Key, decode func([]byte) (*T, error)) (*T, bool) {
	if s == nil {
		return nil, false
	}
	payload, ok := s.Get(k)
	if !ok {
		return nil, false
	}
	v, err := decode(payload)
	if err != nil {
		s.DropCorrupt(k)
		return nil, false
	}
	return v, true
}
