// Package store is a persistent, content-addressed artifact store for the
// evaluation pipeline: compiled bytecode, native-tier metadata, captured
// execution traces, and priced measurement cells, keyed by cryptographic
// hashes of everything that determines the artifact (program source,
// pipeline, latency, transform parameters — the ir.AppendExecKey idea lifted
// from per-process caches to disk).
//
// The store is the warm-start substrate of the sweep grid: a cold
// `spdbench -store=DIR` run populates it, and a warm run serves every cell
// from it — zero tree compilations, zero trace captures, byte-identical
// reports.
//
// # On-disk layout
//
// One artifact per file, under a two-hex-digit shard of the key:
//
//	DIR/ab/abcdef….spda
//
// where abcdef… is the full 64-hex-digit SHA-256 key. Every file is a
// payload followed by the same integrity footer internal/trace seals traces
// with — 4 magic bytes, the payload length and the payload's IEEE CRC32 as
// little-endian uint32s — and the payload itself starts with an artifact
// kind byte and a format version varint. Writers persist via
// write-to-temp-then-rename, so a reader never observes a half-written
// artifact; a torn write at worst leaves the previous version (or nothing)
// in place.
//
// # Corruption degrades to recompute
//
// Get verifies the footer before returning a payload and the typed decoders
// (artifacts.go) check the kind and version words. Anything that fails —
// truncation, bit corruption, a stale format version — is dropped from disk
// and reported as a miss: the caller recomputes the artifact and the next
// Put repairs the store. Corruption can therefore never change results, only
// cost a recompute; the CorruptDropped counter makes the repair observable.
// This is the persistent rung of the resilience ladder (docs/RESILIENCE.md).
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// Kind tags the artifact family a payload belongs to. The kind byte leads
// the payload, so a key collision across families (impossible in practice —
// the kind is also hashed into the key) can never decode as the wrong type.
type Kind byte

// Artifact kinds.
const (
	KindBCode  Kind = 1 // compiled bytecode program (internal/bcode)
	KindNative Kind = 2 // native-tier compile metadata (internal/ncode)
	KindTrace  Kind = 3 // captured execution trace (internal/trace)
	KindPrep   Kind = 4 // prepare-cell summary (SpD counts, op counts)
	KindMeas   Kind = 5 // priced measurement cell (cycle counts per model)
)

func (k Kind) String() string {
	switch k {
	case KindBCode:
		return "bcode"
	case KindNative:
		return "native"
	case KindTrace:
		return "trace"
	case KindPrep:
		return "prep"
	case KindMeas:
		return "meas"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Key addresses one artifact: a SHA-256 over the artifact kind and every
// input that determines the artifact's content.
type Key [sha256.Size]byte

// String returns the key's 64-hex-digit form, the on-disk file stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// NewKey derives a key from the artifact kind and a sequence of canonical
// byte parts. Parts are length-prefixed before hashing, so no concatenation
// of different part boundaries can collide.
func NewKey(kind Kind, parts ...[]byte) Key {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	h.Write([]byte{byte(kind)})
	for _, p := range parts {
		n := binary.PutUvarint(buf[:], uint64(len(p)))
		h.Write(buf[:n])
		h.Write(p)
	}
	return Key(h.Sum(nil))
}

// Integrity footer, byte-compatible with the internal/trace layout: magic,
// payload length, payload CRC32 (IEEE), all little-endian.
var footerMagic = [4]byte{0xF5, 'A', 'R', 'T'}

const footerSize = 12

// ErrCorrupt marks an artifact that failed its integrity or format checks.
// Callers treat it as a miss and recompute; the store drops the bad file.
var ErrCorrupt = errors.New("store: corrupt artifact")

// Stats are the store's cumulative counters. All fields are totals since
// Open; a Stats value is a snapshot, not an atomic cut.
type Stats struct {
	// Hits counts Gets served (from the memory front or disk); Misses the
	// Gets that found nothing usable. Hits + Misses == Gets.
	Hits, Misses int64
	// MemHits is the subset of Hits served from the in-memory LRU front
	// without touching disk.
	MemHits int64
	// Puts counts artifacts written; BytesWritten their total payload bytes
	// (excluding footers). BytesRead totals payload bytes read from disk.
	Puts, BytesRead, BytesWritten int64
	// Evictions counts entries dropped from the memory front on capacity.
	Evictions int64
	// CorruptDropped counts on-disk artifacts deleted because they failed
	// the footer, kind, or version checks; each one cost its caller a
	// recompute and was repaired by the subsequent Put.
	CorruptDropped int64
	// InvalidDropped counts artifacts that decoded cleanly but failed
	// semantic validation against the tree they were loaded for (the
	// translation validator, internal/verify.CheckBCode, or the native
	// metadata bounds) — a stale or tampered artifact whose CRC still
	// matches. Dropped and recomputed exactly like corruption.
	InvalidDropped int64
	// IOShortReads and IOOpenErrors count injected store I/O faults
	// (ArmIOFaults): short reads surface as corruption (the footer check
	// fails, the file is dropped and repaired by the recompute's Put), while
	// transient open errors surface as a plain miss with the file left
	// intact, so the next Get succeeds.
	IOShortReads, IOOpenErrors int64
}

// DefaultMemBytes is the default capacity of the in-memory LRU front.
const DefaultMemBytes = 64 << 20

// Store is a persistent artifact store with an in-memory LRU front.
// Safe for concurrent use; multiple processes may share a directory (writes
// are atomic renames; last writer wins with identical content, since keys
// are content hashes over the artifact's inputs).
type Store struct {
	dir string

	mu       sync.Mutex
	mem      map[Key]*list.Element
	order    *list.List // front = most recent
	memBytes int64
	memCap   int64
	stats    Stats
	io       *ioFaults
}

// ioFaults is the armed store-level fault injector (ArmIOFaults): seeded,
// per-key deterministic, firing at most once per key so every injected fault
// is transient and the repair rung is what a test observes.
type ioFaults struct {
	seed uint64
	rate float64
	done map[Key]bool // keys whose disk-read fault already fired
}

// ioFaultKind selects the fault dealt to one disk read.
type ioFaultKind uint8

const (
	ioFaultNone  ioFaultKind = iota
	ioFaultShort             // truncated read: surfaces as corruption, drop→recompute→repair
	ioFaultOpen              // transient open error: a plain miss, file left intact
)

type memEntry struct {
	key     Key
	payload []byte
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{
		dir:    dir,
		mem:    map[Key]*list.Element{},
		order:  list.New(),
		memCap: DefaultMemBytes,
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetMemCap bounds the in-memory LRU front to n payload bytes (0 disables
// the front entirely; every hit reads disk).
func (s *Store) SetMemCap(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memCap = n
	s.evictLocked()
}

// ArmIOFaults arms seeded I/O fault injection on the store's disk reads —
// the persistent-rung counterpart of the per-cell fault plan
// (resilience.FaultStoreIO). Each key's first faultable disk read is dealt,
// deterministically from (seed, key), either nothing, a short read (the
// payload is truncated before the footer check, so it surfaces exactly like
// on-disk corruption and exercises drop→recompute→repair), or a transient
// open error (the Get misses but the file survives, so the next Get
// succeeds). rate is the fraction of keys faulted, in [0, 1]. Faults fire at
// most once per key; the same (seed, rate) over the same access pattern
// always deals the same faults, so chaos runs can pin the Stats counters.
func (s *Store) ArmIOFaults(seed uint64, rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.io = &ioFaults{seed: seed, rate: rate, done: map[Key]bool{}}
}

// ioFaultFor deals (and consumes) the I/O fault for one disk read of key.
func (s *Store) ioFaultFor(k Key) ioFaultKind {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.io == nil || s.io.done[k] {
		return ioFaultNone
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.io.seed, k)
	sum := h.Sum64()
	if float64(sum%1_000_000)/1_000_000 >= s.io.rate {
		return ioFaultNone
	}
	s.io.done[k] = true
	if (sum>>20)&1 == 0 {
		return ioFaultShort
	}
	return ioFaultOpen
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path returns the artifact file for key: DIR/<hex[:2]>/<hex>.spda.
func (s *Store) path(k Key) string {
	name := k.String()
	return filepath.Join(s.dir, name[:2], name+".spda")
}

// Get returns the verified payload stored under key. A miss — nothing
// stored, or a stored artifact that failed its integrity footer — returns
// false; corrupt files are deleted so the caller's recompute-and-Put
// repairs the store.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.mem[k]; ok {
		s.order.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		payload := el.Value.(*memEntry).payload
		s.mu.Unlock()
		return payload, true
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.note(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	// Armed I/O faults (ArmIOFaults) fire here, once per key, on a read that
	// actually found a file — a short read degrades into the corruption path
	// below, a transient open error into a plain miss.
	switch s.ioFaultFor(k) {
	case ioFaultOpen:
		s.note(func(st *Stats) {
			st.Misses++
			st.IOOpenErrors++
		})
		return nil, false
	case ioFaultShort:
		s.note(func(st *Stats) { st.IOShortReads++ })
		data = data[:len(data)/2]
	}
	payload, err := checkFooter(data)
	if err != nil {
		s.dropCorrupt(k)
		return nil, false
	}
	s.note(func(st *Stats) {
		st.Hits++
		st.BytesRead += int64(len(payload))
	})
	s.remember(k, payload)
	return payload, true
}

// Put stores payload under key, sealing it with the integrity footer and
// persisting via write-to-temp-then-rename. Errors are returned for tests
// and diagnostics; callers may ignore them — a failed Put only costs a
// future recompute.
func (s *Store) Put(k Key, payload []byte) error {
	sealed := make([]byte, 0, len(payload)+footerSize)
	sealed = append(sealed, payload...)
	var foot [footerSize]byte
	copy(foot[:4], footerMagic[:])
	binary.LittleEndian.PutUint32(foot[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(payload))
	sealed = append(sealed, foot[:]...)

	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(sealed)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", k, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.note(func(st *Stats) {
		st.Puts++
		st.BytesWritten += int64(len(payload))
	})
	s.remember(k, sealed[:len(payload):len(payload)])
	return nil
}

// DropCorrupt removes the artifact stored under key and counts it as
// corruption-dropped. The typed decoders call it when a payload passes the
// footer but fails its kind or version word.
func (s *Store) DropCorrupt(k Key) { s.drop(k, &s.stats.CorruptDropped) }

// DropInvalid removes the artifact stored under key and counts it as
// validation-dropped: the payload decoded cleanly but the decoded artifact
// failed semantic validation against the tree it was loaded for. The load
// adapters (backing.go) call it when the translation validator rejects a
// loaded program.
func (s *Store) DropInvalid(k Key) { s.drop(k, &s.stats.InvalidDropped) }

func (s *Store) dropCorrupt(k Key) { s.drop(k, &s.stats.CorruptDropped) }

// drop removes key from disk and the memory front and counts the Get that
// led here as a miss, bumping ctr (a field of s.stats, mutated under the
// lock) to make the repair observable.
func (s *Store) drop(k Key, ctr *int64) {
	os.Remove(s.path(k))
	s.mu.Lock()
	if el, ok := s.mem[k]; ok {
		s.memBytes -= int64(len(el.Value.(*memEntry).payload))
		s.order.Remove(el)
		delete(s.mem, k)
	}
	s.stats.Misses++
	*ctr++
	s.mu.Unlock()
}

// remember inserts a payload into the memory front, evicting LRU entries
// over capacity.
func (s *Store) remember(k Key, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.memCap <= 0 || int64(len(payload)) > s.memCap {
		return
	}
	if el, ok := s.mem[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.mem[k] = s.order.PushFront(&memEntry{key: k, payload: payload})
	s.memBytes += int64(len(payload))
	s.evictLocked()
}

func (s *Store) evictLocked() {
	for s.memBytes > s.memCap {
		el := s.order.Back()
		if el == nil {
			return
		}
		e := el.Value.(*memEntry)
		s.order.Remove(el)
		delete(s.mem, e.key)
		s.memBytes -= int64(len(e.payload))
		s.stats.Evictions++
	}
}

// note applies a stats mutation under the lock.
func (s *Store) note(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

// checkFooter verifies a sealed artifact and returns its payload.
func checkFooter(data []byte) ([]byte, error) {
	if len(data) < footerSize {
		return nil, fmt.Errorf("%w: short file", ErrCorrupt)
	}
	foot := data[len(data)-footerSize:]
	pay := data[:len(data)-footerSize]
	if !bytes.Equal(foot[:4], footerMagic[:]) {
		return nil, fmt.Errorf("%w: footer magic missing", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(foot[4:8]) != uint32(len(pay)) {
		return nil, fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(foot[8:12]) != crc32.ChecksumIEEE(pay) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return pay, nil
}
