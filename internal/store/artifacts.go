package store

// Typed artifact codecs. Every payload is
//
//	kind byte | version uvarint | body…
//
// and the whole payload is sealed with the CRC footer by Store.Put. The
// decoders are strict: a wrong kind byte, an unknown version word, or a
// malformed body drops the artifact (Store.DropCorrupt) and reports a miss,
// so format evolution and corruption both degrade to recompute instead of
// ever surfacing stale or garbage results.

import (
	"encoding/binary"
	"fmt"
	"math"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/trace"
)

// Format versions, one per artifact kind. Bump on any body layout change:
// old artifacts then read as misses and are rewritten on the next cold run.
const (
	VersionBCode  = 1
	VersionNative = 2 // v2: window fusion added Fused and Windows
	VersionTrace  = 1
	VersionPrep   = 1
	VersionMeas   = 1
)

// header appends the payload preamble.
func header(buf []byte, kind Kind, version uint64) []byte {
	buf = append(buf, byte(kind))
	return binary.AppendUvarint(buf, version)
}

// checkHeader validates the preamble and returns the body.
func checkHeader(payload []byte, kind Kind, version uint64) ([]byte, error) {
	if len(payload) == 0 || Kind(payload[0]) != kind {
		return nil, fmt.Errorf("%w: artifact kind mismatch", ErrCorrupt)
	}
	v, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad version varint", ErrCorrupt)
	}
	if v != version {
		return nil, fmt.Errorf("%w: %s version %d, want %d", ErrCorrupt, kind, v, version)
	}
	return payload[1+n:], nil
}

// dec is a strict little decoder over an artifact body.
type dec struct {
	b   []byte
	err error
}

func (d *dec) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad %s varint", ErrCorrupt, what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad %s varint", ErrCorrupt, what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count decodes a length field and sanity-bounds it against the remaining
// bytes (every counted element costs at least one byte on the wire).
func (d *dec) count(what string, max int) int {
	v := d.uvarint(what)
	if d.err == nil && (v > uint64(max) || v > uint64(len(d.b))) {
		d.err = fmt.Errorf("%w: %s count %d out of range", ErrCorrupt, what, v)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

// ---- Prepare summary -----------------------------------------------------

// PrepSummary is the report-visible residue of one prepare cell — exactly
// what Table 6-3 and Figure 6-4 read off a disamb.Prepared — so a warm run
// can render those rows without compiling or interpreting anything.
type PrepSummary struct {
	// RAW, WAR, WAW are the SpD application counts by dependence type
	// (zero for non-SPEC pipelines).
	RAW, WAR, WAW int
	// BaseOps and AfterOps are the operation counts before and after SpD.
	BaseOps, AfterOps int
	// Grafts counts applied tree grafts.
	Grafts int
}

// EncodePrep encodes a prepare summary payload.
func EncodePrep(p *PrepSummary) []byte {
	buf := header(make([]byte, 0, 32), KindPrep, VersionPrep)
	for _, v := range [...]int{p.RAW, p.WAR, p.WAW, p.BaseOps, p.AfterOps, p.Grafts} {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// DecodePrep decodes a prepare summary payload.
func DecodePrep(payload []byte) (*PrepSummary, error) {
	body, err := checkHeader(payload, KindPrep, VersionPrep)
	if err != nil {
		return nil, err
	}
	d := &dec{b: body}
	p := &PrepSummary{
		RAW:      int(d.varint("raw")),
		WAR:      int(d.varint("war")),
		WAW:      int(d.varint("waw")),
		BaseOps:  int(d.varint("base ops")),
		AfterOps: int(d.varint("after ops")),
		Grafts:   int(d.varint("grafts")),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// ---- Measurement cell ----------------------------------------------------

// MeasCell is one priced measurement cell: for each memory latency the cell
// covered, the cycle counts of every machine model (infinite first, then
// each width), plus the run's dynamic operation count.
type MeasCell struct {
	// Lats are the memory latencies priced, in cell order.
	Lats []int
	// Times holds one cycle-count slice per latency, parallel to Lats.
	Times [][]int64
	// Ops is the dynamic operation count of the measured run.
	Ops int64
}

// maxMeasSlots bounds decoded slice sizes against corrupt length fields.
const maxMeasSlots = 1 << 10

// EncodeMeas encodes a measurement-cell payload.
func EncodeMeas(m *MeasCell) []byte {
	buf := header(make([]byte, 0, 64), KindMeas, VersionMeas)
	buf = binary.AppendVarint(buf, m.Ops)
	buf = binary.AppendUvarint(buf, uint64(len(m.Lats)))
	for i, lat := range m.Lats {
		buf = binary.AppendVarint(buf, int64(lat))
		buf = binary.AppendUvarint(buf, uint64(len(m.Times[i])))
		for _, t := range m.Times[i] {
			buf = binary.AppendVarint(buf, t)
		}
	}
	return buf
}

// DecodeMeas decodes a measurement-cell payload.
func DecodeMeas(payload []byte) (*MeasCell, error) {
	body, err := checkHeader(payload, KindMeas, VersionMeas)
	if err != nil {
		return nil, err
	}
	d := &dec{b: body}
	m := &MeasCell{Ops: d.varint("ops")}
	nl := d.count("latencies", maxMeasSlots)
	for i := 0; i < nl && d.err == nil; i++ {
		m.Lats = append(m.Lats, int(d.varint("latency")))
		nt := d.count("times", maxMeasSlots)
		times := make([]int64, 0, nt)
		for j := 0; j < nt && d.err == nil; j++ {
			times = append(times, d.varint("cycles"))
		}
		m.Times = append(m.Times, times)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---- Execution trace -----------------------------------------------------

// EncodeTrace encodes a captured trace payload (the trace's own sealed CRC
// footer rides along inside the body, so a persisted trace is
// double-protected).
func EncodeTrace(t *trace.Trace) []byte {
	enc := t.Marshal()
	buf := header(make([]byte, 0, len(enc)+8), KindTrace, VersionTrace)
	return append(buf, enc...)
}

// DecodeTrace decodes a trace payload, verifying the trace's own integrity
// footer.
func DecodeTrace(payload []byte) (*trace.Trace, error) {
	body, err := checkHeader(payload, KindTrace, VersionTrace)
	if err != nil {
		return nil, err
	}
	t, err := trace.Unmarshal(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

// ---- Compiled bytecode ---------------------------------------------------

// maxBCodeSlots bounds decoded instruction and constant counts.
const maxBCodeSlots = 1 << 20

// EncodeBCode encodes a compiled bytecode program. The source tree is not
// part of the artifact: the executor reads nothing tree-specific beyond the
// instruction stream, and the cache that loads the artifact binds it to the
// requesting tree (the same aliasing the in-process cache already performs).
func EncodeBCode(p *bcode.Prog) []byte {
	buf := header(make([]byte, 0, 16+20*len(p.Code)), KindBCode, VersionBCode)
	buf = binary.AppendUvarint(buf, uint64(p.NumGuarded))
	buf = binary.AppendUvarint(buf, uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		flags := byte(0)
		if in.GNeg {
			flags = 1
		}
		buf = append(buf, byte(in.Op), flags)
		buf = binary.AppendUvarint(buf, uint64(in.GIdx))
		buf = binary.AppendVarint(buf, int64(in.Guard))
		buf = binary.AppendVarint(buf, int64(in.A))
		buf = binary.AppendVarint(buf, int64(in.B))
		buf = binary.AppendVarint(buf, int64(in.Dest))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Consts)))
	for _, c := range p.Consts {
		buf = binary.AppendVarint(buf, c.I)
		buf = binary.AppendUvarint(buf, math.Float64bits(c.F))
	}
	return buf
}

// DecodeBCode decodes a compiled bytecode program. Prog.Tree is nil; the
// caller binds it to the tree the lookup was keyed by.
func DecodeBCode(payload []byte) (*bcode.Prog, error) {
	body, err := checkHeader(payload, KindBCode, VersionBCode)
	if err != nil {
		return nil, err
	}
	d := &dec{b: body}
	p := &bcode.Prog{NumGuarded: int(d.uvarint("guarded"))}
	n := d.count("instructions", maxBCodeSlots)
	p.Code = make([]bcode.Instr, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		if len(d.b) < 2 {
			d.err = fmt.Errorf("%w: truncated instruction", ErrCorrupt)
			break
		}
		in := bcode.Instr{Op: bcode.Op(d.b[0]), GNeg: d.b[1] != 0}
		d.b = d.b[2:]
		in.GIdx = uint16(d.uvarint("gidx"))
		in.Guard = int32(d.varint("guard"))
		in.A = int32(d.varint("a"))
		in.B = int32(d.varint("b"))
		in.Dest = int32(d.varint("dest"))
		p.Code = append(p.Code, in)
	}
	nc := d.count("constants", maxBCodeSlots)
	p.Consts = make([]ir.Value, 0, nc)
	for i := 0; i < nc && d.err == nil; i++ {
		v := ir.Value{I: d.varint("const int")}
		v.F = math.Float64frombits(d.uvarint("const float"))
		p.Consts = append(p.Consts, v)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// ---- Native-tier metadata ------------------------------------------------

// NativeMeta is the persistable residue of a native-tier compilation —
// closure chains themselves are process-bound, but whether a tree's content
// is inside the native repertoire and how many steps it lowers to are not.
// A warm native cache skips the compile attempt for known-declined trees
// and pre-sizes its accounting from Steps.
type NativeMeta struct {
	// Declined marks execution content outside the native repertoire: the
	// tree runs on the fallback tier, and retrying the compile is pointless.
	Declined bool
	// Steps is the compiled closure-chain length (0 when declined). Fused
	// counts the superinstruction heads among those steps; Windows the 3- or
	// 4-wide window fusions among the heads (both 0 when declined).
	Steps, Fused, Windows int64
}

// EncodeNative encodes a native-tier metadata payload.
func EncodeNative(m *NativeMeta) []byte {
	buf := header(make([]byte, 0, 16), KindNative, VersionNative)
	flag := byte(0)
	if m.Declined {
		flag = 1
	}
	buf = append(buf, flag)
	buf = binary.AppendVarint(buf, m.Steps)
	buf = binary.AppendVarint(buf, m.Fused)
	return binary.AppendVarint(buf, m.Windows)
}

// DecodeNative decodes a native-tier metadata payload.
func DecodeNative(payload []byte) (*NativeMeta, error) {
	body, err := checkHeader(payload, KindNative, VersionNative)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty native metadata", ErrCorrupt)
	}
	d := &dec{b: body[1:]}
	m := &NativeMeta{
		Declined: body[0] != 0,
		Steps:    d.varint("steps"),
		Fused:    d.varint("fused"),
		Windows:  d.varint("windows"),
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}
