package lang

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseGlobals(t *testing.T) {
	p := parseOK(t, `
int scalar = 7;
float farr[4] = {1.0, 2.0, 3.0, 4.0};
int bare[10];
void main() {}
`)
	if len(p.Globals) != 3 {
		t.Fatalf("got %d globals", len(p.Globals))
	}
	g := p.Globals[0]
	if !g.IsScalar || g.Size != 1 || len(g.Init) != 1 {
		t.Errorf("scalar global parsed wrong: %+v", g)
	}
	if p.Globals[1].Size != 4 || len(p.Globals[1].Init) != 4 {
		t.Errorf("farr parsed wrong: %+v", p.Globals[1])
	}
	if p.Globals[2].Size != 10 || p.Globals[2].Init != nil {
		t.Errorf("bare parsed wrong: %+v", p.Globals[2])
	}
}

func TestParseFunctionShapes(t *testing.T) {
	p := parseOK(t, `
int f(int a, float b, int c[], float d[]) { return a; }
void g() {}
float h(float x) { return x; }
void main() {}
`)
	if len(p.Funcs) != 4 {
		t.Fatalf("got %d funcs", len(p.Funcs))
	}
	f := p.Funcs[0]
	wantTypes := []Type{TypeInt, TypeFloat, TypeIntArray, TypeFloatArray}
	for i, pr := range f.Params {
		if pr.Type != wantTypes[i] {
			t.Errorf("param %d type %v, want %v", i, pr.Type, wantTypes[i])
		}
	}
	if p.Funcs[1].Ret != TypeVoid || p.Funcs[2].Ret != TypeFloat {
		t.Error("return types parsed wrong")
	}
}

func TestParseStatements(t *testing.T) {
	p := parseOK(t, `
int a[4];
void main() {
	int x = 1;
	float y;
	x = 2;
	x += 3;
	x -= 1;
	x *= 2;
	x /= 2;
	x++;
	x--;
	a[x] = 5;
	a[x] += 1;
	if (x > 0) { x = 0; } else { x = 1; }
	if (x == 0) x = 9;
	while (x < 10) { x = x + 1; }
	for (int i = 0; i < 3; i = i + 1) { x = x + i; }
	for (x = 0; x < 2; x++) { }
	for (;;) { break; }
	print(x);
	print(y);
	return;
}
`)
	body := p.Funcs[0].Body
	if len(body.Stmts) < 15 {
		t.Fatalf("got %d statements", len(body.Stmts))
	}
	// ++ desugars to a compound assignment.
	inc := body.Stmts[7].(*AssignStmt)
	if inc.Op != '+' {
		t.Errorf("x++ desugared to %c", inc.Op)
	}
}

func TestParsePrecedence(t *testing.T) {
	p := parseOK(t, `void main() { int x = 1 + 2 * 3; int y = (1 + 2) * 3; int z = 1 < 2 && 3 < 4 || 5 == 5; }`)
	d := p.Funcs[0].Body.Stmts[0].(*VarDeclStmt)
	add := d.Init.(*BinaryExpr)
	if add.Op != TokPlus {
		t.Fatalf("top of 1+2*3 is %v", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != TokStar {
		t.Fatalf("rhs of + is %v", mul.Op)
	}
	d2 := p.Funcs[0].Body.Stmts[1].(*VarDeclStmt)
	if mul := d2.Init.(*BinaryExpr); mul.Op != TokStar {
		t.Fatalf("top of (1+2)*3 is %v", mul.Op)
	}
	d3 := p.Funcs[0].Body.Stmts[2].(*VarDeclStmt)
	if or := d3.Init.(*BinaryExpr); or.Op != TokOrOr {
		t.Fatalf("|| should bind loosest, got %v", or.Op)
	}
}

func TestParseUnary(t *testing.T) {
	p := parseOK(t, `void main() { int x = -1; int y = !x; int z = ~x; int w = - - 3; }`)
	stmts := p.Funcs[0].Body.Stmts
	if u := stmts[0].(*VarDeclStmt).Init.(*UnaryExpr); u.Op != '-' {
		t.Error("-1 not unary minus")
	}
	if u := stmts[1].(*VarDeclStmt).Init.(*UnaryExpr); u.Op != '!' {
		t.Error("!x not parsed")
	}
	if u := stmts[2].(*VarDeclStmt).Init.(*UnaryExpr); u.Op != '~' {
		t.Error("~x not parsed")
	}
}

func TestParseCalls(t *testing.T) {
	p := parseOK(t, `
int f(int a, int b) { return a + b; }
void main() {
	int x = f(1, 2);
	f(x, f(x, 3));
	float s = sqrt(2.0);
	int c = int(s);
	float g = float(c);
}
`)
	stmts := p.Funcs[1].Body.Stmts
	call := stmts[1].(*ExprStmt).X.(*CallExpr)
	if call.Name != "f" || len(call.Args) != 2 {
		t.Fatalf("call parsed wrong: %+v", call)
	}
	if inner := call.Args[1].(*CallExpr); inner.Name != "f" {
		t.Error("nested call lost")
	}
	if c := stmts[3].(*VarDeclStmt).Init.(*CallExpr); c.Name != "int" {
		t.Error("int() cast not parsed as call")
	}
	if c := stmts[4].(*VarDeclStmt).Init.(*CallExpr); c.Name != "float" {
		t.Error("float() cast not parsed as call")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void main() {",                    // unterminated block
		"void main() { int; }",             // missing name
		"void main() { x = ; }",            // missing expr
		"void main() { if x { } }",         // missing parens
		"void main() { for (int i = 0) }",  // bad for
		"int a[0]; void main() {}",         // zero-size array
		"int a[-3]; void main() {}",        // negative size (lexes as [-, 3])
		"void v; void main() {}",           // void global
		"void main() { a[1][2] = 3; }",     // no 2-d syntax
		"int f(void x) { } void main() {}", // bad param type
		"void main() { return } ",          // missing semicolon
		"void main() { break }",            // missing semicolon
		"int g = ; void main() {}",         // missing initializer
		"int a[2] = {1,}; void main() {}",  // trailing comma
		"void main() { while () { } }",     // empty condition
		"void main() { print(); }",         // print needs a value
		"xyzzy",                            // garbage at top level
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseDanglingElse(t *testing.T) {
	p := parseOK(t, `void main() { if (1) if (2) print(1); else print(2); }`)
	outer := p.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Fatal("else lost")
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("void main() {\n  int x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line 2 position: %v", err)
	}
}
