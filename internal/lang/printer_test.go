package lang

import (
	"strings"
	"testing"
)

func TestPrintRoundTripsStructure(t *testing.T) {
	src := `
int a[4] = {1, 2, 3, -4};
float f = 2.5;
float w[4] = {0.5, 1.5, 2.5, 3.5};
int g;

int helper(int x, float y[], int z[]) {
	if (x > 0 && x < 10) {
		return x;
	} else {
		while (x < 0) {
			x += 2;
			if (x == -3) { break; }
			continue;
		}
	}
	for (int i = 0; i < 4; i = i + 1) {
		z[i] = int(y[i] * 2.0) % 7;
	}
	return -x;
}

void main() {
	g = helper(3, w, a);
	print(g);
	print(f);
	print(!0);
	print(~5);
	print(sqrt(2.0));
}
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p1)
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("printed source does not reparse: %v\n%s", err, out)
	}
	if _, err := Check(p2); err != nil {
		t.Fatalf("printed source does not re-check: %v\n%s", err, out)
	}
	// Printing is a fixed point after one round.
	out2 := Print(p2)
	if out != out2 {
		t.Fatalf("printer not idempotent:\n--- first\n%s\n--- second\n%s", out, out2)
	}
	// Shape preserved.
	if len(p2.Globals) != len(p1.Globals) || len(p2.Funcs) != len(p1.Funcs) {
		t.Fatal("declaration counts changed")
	}
}

func TestPrintFloatLiteralsStayFloat(t *testing.T) {
	p, err := Parse(`void main() { float x = 2.0; print(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p)
	if !strings.Contains(out, "2.0") {
		t.Fatalf("float literal lost its point:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatal(err)
	}
}
