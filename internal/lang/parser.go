package lang

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) peekKind(ahead int) TokKind {
	if p.pos+ahead >= len(p.toks) {
		return TokEOF
	}
	return p.toks[p.pos+ahead].Kind
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t.Kind)
	}
	p.pos++
	return t, nil
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		t := p.cur()
		var base Type
		switch t.Kind {
		case TokKwInt:
			base = TypeInt
		case TokKwFloat:
			base = TypeFloat
		case TokKwVoid:
			base = TypeVoid
		default:
			return nil, errf(t.Pos, "expected declaration, found %s", t.Kind)
		}
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		switch p.cur().Kind {
		case TokLParen:
			fn, err := p.parseFuncRest(t.Pos, base, name.Text)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		case TokLBracket, TokAssign, TokSemi:
			if base == TypeVoid {
				return nil, errf(t.Pos, "void global %q", name.Text)
			}
			g, err := p.parseGlobalRest(t.Pos, base, name.Text)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		default:
			return nil, errf(p.cur().Pos, "expected ( or [ after %q", name.Text)
		}
	}
	return prog, nil
}

func (p *Parser) parseGlobalRest(pos Pos, elem Type, name string) (*GlobalDecl, error) {
	g := &GlobalDecl{Pos: pos, Name: name, Elem: elem, Size: 1, IsScalar: true}
	if p.accept(TokLBracket) {
		sz, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		if sz.Int <= 0 {
			return nil, errf(sz.Pos, "array %q has non-positive size %d", name, sz.Int)
		}
		g.Size = sz.Int
		g.IsScalar = false
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAssign) {
		if g.IsScalar {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Init = []Expr{e}
		} else {
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, e)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		}
	}
	_, err := p.expect(TokSemi)
	return g, err
}

func (p *Parser) parseFuncRest(pos Pos, ret Type, name string) (*FuncDecl, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if !p.accept(TokRParen) {
		for {
			pt := p.cur()
			var base Type
			switch pt.Kind {
			case TokKwInt:
				base = TypeInt
			case TokKwFloat:
				base = TypeFloat
			default:
				return nil, errf(pt.Pos, "expected parameter type, found %s", pt.Kind)
			}
			p.next()
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			typ := base
			if p.accept(TokLBracket) {
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				if base == TypeInt {
					typ = TypeIntArray
				} else {
					typ = TypeFloatArray
				}
			}
			fn.Params = append(fn.Params, &Param{Pos: pn.Pos, Name: pn.Text, Type: typ})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwInt, TokKwFloat:
		return p.parseVarDecl()
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.next()
		r := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != TokSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		_, err := p.expect(TokSemi)
		return r, err
	case TokKwPrint:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		_, err = p.expect(TokSemi)
		return &PrintStmt{Pos: t.Pos, Value: e}, err
	case TokKwBreak:
		p.next()
		_, err := p.expect(TokSemi)
		return &BreakStmt{Pos: t.Pos}, err
	case TokKwContinue:
		p.next()
		_, err := p.expect(TokSemi)
		return &ContinueStmt{Pos: t.Pos}, err
	case TokIdent:
		// Assignment, increment, or expression statement (call).
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokSemi)
		return s, err
	}
	return nil, errf(t.Pos, "expected statement, found %s", t.Kind)
}

// parseSimpleStmt parses an assignment / increment / call without the
// trailing semicolon (shared by statements and for-headers).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, errf(t.Pos, "expected identifier, found %s", t.Kind)
	}
	// Call statement: ident (
	if p.peekKind(1) == TokLParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: t.Pos, X: e}, nil
	}
	p.next()
	lv := &LValue{Pos: t.Pos, Name: t.Text}
	if p.accept(TokLBracket) {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		lv.Index = idx
	}
	op := p.next()
	switch op.Kind {
	case TokAssign:
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.Pos, Target: lv, Op: '=', Value: v}, nil
	case TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign:
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var b byte
		switch op.Kind {
		case TokPlusAssign:
			b = '+'
		case TokMinusAssign:
			b = '-'
		case TokStarAssign:
			b = '*'
		default:
			b = '/'
		}
		return &AssignStmt{Pos: t.Pos, Target: lv, Op: b, Value: v}, nil
	case TokPlusPlus:
		return &AssignStmt{Pos: t.Pos, Target: lv, Op: '+',
			Value: &IntLit{Pos: op.Pos, V: 1}}, nil
	case TokMinusMinus:
		return &AssignStmt{Pos: t.Pos, Target: lv, Op: '-',
			Value: &IntLit{Pos: op.Pos, V: 1}}, nil
	}
	return nil, errf(op.Pos, "expected assignment operator, found %s", op.Kind)
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	t := p.next()
	typ := TypeInt
	if t.Kind == TokKwFloat {
		typ = TypeFloat
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{Pos: t.Pos, Name: name.Text, Type: typ}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	_, err = p.expect(TokSemi)
	return d, err
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: t.Pos}
	if !p.accept(TokSemi) {
		if p.cur().Kind == TokKwInt || p.cur().Kind == TokKwFloat {
			d, err := p.parseVarDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

type precLevel struct {
	kinds []TokKind
}

var precTable = []precLevel{
	{[]TokKind{TokOrOr}},
	{[]TokKind{TokAndAnd}},
	{[]TokKind{TokPipe}},
	{[]TokKind{TokCaret}},
	{[]TokKind{TokAmp}},
	{[]TokKind{TokEq, TokNe}},
	{[]TokKind{TokLt, TokLe, TokGt, TokGe}},
	{[]TokKind{TokShl, TokShr}},
	{[]TokKind{TokPlus, TokMinus}},
	{[]TokKind{TokStar, TokSlash, TokPercent}},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *Parser) parseBin(level int) (Expr, error) {
	if level >= len(precTable) {
		return p.parseUnary()
	}
	left, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range precTable[level].kinds {
			if p.cur().Kind == k {
				opTok := p.next()
				right, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{Pos: opTok.Pos, Op: k, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: '-', X: x}, nil
	case TokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: '!', X: x}, nil
	case TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: '~', X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{Pos: t.Pos, V: t.Flt}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return e, err
	case TokKwInt, TokKwFloat:
		// Cast syntax: int(x), float(x) — keywords used as intrinsic names.
		p.next()
		name := "int"
		if t.Kind == TokKwFloat {
			name = "float"
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &CallExpr{Pos: t.Pos, Name: name, Args: []Expr{arg}}, nil
	case TokIdent:
		p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			if !p.accept(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Name: t.Text, Index: idx}, nil
		}
		return &VarRef{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", t.Kind)
}
