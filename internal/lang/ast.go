package lang

// Type is a MiniC type.
type Type uint8

// Types. Array types describe parameters (base addresses) and globals.
const (
	TypeVoid Type = iota
	TypeInt
	TypeFloat
	TypeIntArray
	TypeFloatArray
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeIntArray:
		return "int[]"
	case TypeFloatArray:
		return "float[]"
	}
	return "type(?)"
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TypeIntArray || t == TypeFloatArray }

// Elem returns the element type of an array type.
func (t Type) Elem() Type {
	switch t {
	case TypeIntArray:
		return TypeInt
	case TypeFloatArray:
		return TypeFloat
	}
	return t
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global array (Size > 1 or explicit brackets) or a
// global scalar (Size == 1, IsScalar true). Globals live in flat memory.
type GlobalDecl struct {
	Pos      Pos
	Name     string
	Elem     Type // TypeInt or TypeFloat
	Size     int64
	IsScalar bool
	Init     []Expr // literal initializers, optional
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*Param
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares a local scalar variable.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type Type // TypeInt or TypeFloat
	Init Expr // optional
}

// AssignStmt assigns to a scalar variable or an array element.
// Op is '=' or a compound op ('+', '-', '*', '/').
type AssignStmt struct {
	Pos    Pos
	Target *LValue
	Op     byte
	Value  Expr
}

// LValue is an assignable location.
type LValue struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalars
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // optional
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is for(init; cond; post).
type ForStmt struct {
	Pos  Pos
	Init Stmt // AssignStmt or VarDeclStmt or nil
	Cond Expr // nil means true
	Post Stmt // AssignStmt or nil
	Body Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // optional
}

// PrintStmt emits a value to the program output.
type PrintStmt struct {
	Pos   Pos
	Value Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*PrintStmt) stmtNode()    {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node. Type is filled by the checker.
type Expr interface {
	exprNode()
	ExprType() Type
}

type exprBase struct{ T Type }

func (e *exprBase) ExprType() Type { return e.T }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Pos Pos
	V   float64
}

// VarRef reads a scalar variable or names an array (when passed as an
// argument or indexed).
type VarRef struct {
	exprBase
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	exprBase
	Pos   Pos
	Name  string
	Index Expr
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	exprBase
	Pos Pos
	Op  byte // '-', '!', '~'
	X   Expr
}

// BinaryExpr applies a binary operator. Op uses TokKind for relationals and
// logicals, and single bytes for arithmetic, packed into Kind.
type BinaryExpr struct {
	exprBase
	Pos  Pos
	Op   TokKind
	L, R Expr
}

// CallExpr calls a user function or an intrinsic (sqrt, fabs, sin, cos, exp,
// log, float, int).
type CallExpr struct {
	exprBase
	Pos  Pos
	Name string
	Args []Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}

// Intrinsics maps intrinsic names to the (argument, result) float-ness.
var Intrinsics = map[string]struct{ Ret Type }{
	"sqrt": {TypeFloat}, "fabs": {TypeFloat}, "sin": {TypeFloat},
	"cos": {TypeFloat}, "exp": {TypeFloat}, "log": {TypeFloat},
	"float": {TypeFloat}, "int": {TypeInt},
}
