package lang

import (
	"strings"
	"testing"
)

func checkSrc(src string) error {
	p, err := Parse(src)
	if err != nil {
		return err
	}
	_, err = Check(p)
	return err
}

func TestCheckAcceptsValidPrograms(t *testing.T) {
	valid := []string{
		`void main() {}`,
		`int g; void main() { g = 1; print(g); }`,
		`float a[4]; void main() { a[0] = 1; print(a[0]); }`, // int literal widens
		`int f(int x) { return x; } void main() { print(f(3)); }`,
		`float f(float x[]) { return x[0]; } float a[2]; void main() { print(f(a)); }`,
		`void main() { float x = 3; }`, // widening init
		`void main() { int x = 0; for (int i = 0; i < 3; i++) { x += i; } print(x); }`,
		`void main() { if (1 && 0 || !0) { print(1); } }`,
		`void main() { float f = sqrt(4.0) + sin(0.0) + cos(0.0) + fabs(-1.0) + exp(0.0) + log(1.0); print(f); }`,
		`void main() { int x = int(3.7); float y = float(2); print(x); print(y); }`,
		`int r() { return 1; } void main() { r(); }`, // discard result
	}
	for _, src := range valid {
		if err := checkSrc(src); err != nil {
			t.Errorf("valid program rejected: %v\n%s", err, src)
		}
	}
}

func TestCheckRejectsInvalidPrograms(t *testing.T) {
	invalid := map[string]string{
		`void notmain() {}`:                                         "no main",
		`void main(int x) {}`:                                       "main must take no parameters",
		`void main() { x = 1; }`:                                    "undefined",
		`void main() { int x; int x; }`:                             "duplicate",
		`int g; int g; void main() {}`:                              "duplicate global",
		`int f() { return 1; } int f() { return 2; } void main(){}`: "duplicate function",
		`void main() { int x = 1.5; }`:                              "cannot assign float to int",
		`void main() { float f; if (f) {} }`:                        "condition must be int",
		`void main() { while (1.0) {} }`:                            "condition must be int",
		`void main() { break; }`:                                    "break outside loop",
		`void main() { continue; }`:                                 "continue outside loop",
		`int f() { return; } void main() {}`:                        "missing return value",
		`void f() { return 1; } void main() {}`:                     "void return with value",
		`int a[2]; void main() { a = 1; }`:                          "assign to array",
		`void main() { int x; x[0] = 1; }`:                          "index non-array",
		`int a[2]; void main() { a[1.5] = 1; }`:                     "float index",
		`int f(int x) { return x; } void main() { f(); }`:           "arity",
		`int f(int x[]) { return x[0]; } void main() { f(3); }`:     "array argument needed",
		`void main() { int x = 1 % 2.0; }`:                          "% needs ints",
		`void main() { int x = 1 & 2.0; }`:                          "& needs ints",
		`void main() { sqrt(1.0, 2.0); }`:                           "intrinsic arity",
		`int sqrt(int x) { return x; } void main() {}`:              "shadows intrinsic",
		`int print; void main() {}`:                                 "keyword name",
		`void main() { print(main); }`:                              "print non-value",
		`int a[2] = {1, 2, 3}; void main() {}`:                      "too many initializers",
		`int g = 1 + 2; void main() {}`:                             "non-literal global init",
	}
	for src, why := range invalid {
		if err := checkSrc(src); err == nil {
			t.Errorf("accepted invalid program (%s):\n%s", why, src)
		}
	}
}

func TestCheckAnnotatesTypes(t *testing.T) {
	p, err := Parse(`
float a[4];
void main() {
	int i = 1;
	float x = a[i] * 2.0;
	int c = i < 3;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p); err != nil {
		t.Fatal(err)
	}
	stmts := p.Funcs[0].Body.Stmts
	mul := stmts[1].(*VarDeclStmt).Init.(*BinaryExpr)
	if mul.ExprType() != TypeFloat {
		t.Errorf("a[i]*2.0 typed %v", mul.ExprType())
	}
	if mul.L.(*IndexExpr).ExprType() != TypeFloat {
		t.Errorf("a[i] typed %v", mul.L.ExprType())
	}
	cmp := stmts[2].(*VarDeclStmt).Init.(*BinaryExpr)
	if cmp.ExprType() != TypeInt {
		t.Errorf("comparison typed %v", cmp.ExprType())
	}
}

func TestCheckScoping(t *testing.T) {
	// Inner declarations shadow outer ones; loop-scope variables vanish.
	if err := checkSrc(`
void main() {
	int x = 1;
	{ int x = 2; print(x); }
	print(x);
	for (int i = 0; i < 2; i++) { print(i); }
	print(x);
}`); err != nil {
		t.Errorf("shadowing rejected: %v", err)
	}
	err := checkSrc(`
void main() {
	for (int i = 0; i < 2; i++) { }
	print(i);
}`)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("loop variable escaped its scope: %v", err)
	}
}

func TestMixedArithmeticWidens(t *testing.T) {
	p, err := Parse(`void main() { float f = 1 + 2.5; print(f); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p); err != nil {
		t.Fatal(err)
	}
	add := p.Funcs[0].Body.Stmts[0].(*VarDeclStmt).Init.(*BinaryExpr)
	if add.ExprType() != TypeFloat {
		t.Errorf("1 + 2.5 typed %v", add.ExprType())
	}
}
