package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("int x = 42 ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwInt, TokIdent, TokAssign, TokIntLit, TokSemi, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("literal = %d, want 42", toks[3].Int)
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != <= >= && || << >> += -= *= /= ++ -- = + - * / % & | ^ ~ ! < >"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokEq, TokNe, TokLe, TokGe, TokAndAnd, TokOrOr, TokShl, TokShr,
		TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign,
		TokPlusPlus, TokMinusMinus,
		TokAssign, TokPlus, TokMinus, TokStar, TokSlash, TokPercent,
		TokAmp, TokPipe, TokCaret, TokTilde, TokBang, TokLt, TokGt, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexFloats(t *testing.T) {
	cases := map[string]float64{
		"1.5":    1.5,
		"0.25":   0.25,
		"3.":     3.0,
		"1e3":    1000,
		"2.5e-1": 0.25,
		"1E2":    100,
	}
	for src, want := range cases {
		toks, err := LexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != TokFloatLit {
			t.Fatalf("%q lexed as %v", src, toks[0].Kind)
		}
		if toks[0].Flt != want {
			t.Errorf("%q = %g, want %g", src, toks[0].Flt, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment with operators == != &&
int /* block
   spanning lines */ x;
`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwInt, TokIdent, TokSemi, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("if iffy while whiles return returns for")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwIf, TokIdent, TokKwWhile, TokIdent, TokKwReturn, TokIdent, TokKwFor, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "int $x;", "/* unterminated"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q: expected error", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%q: error lacks position: %v", src, err)
		}
	}
}

func TestLexHugeIntOverflow(t *testing.T) {
	if _, err := LexAll("99999999999999999999999999"); err == nil {
		t.Error("expected overflow error")
	}
}
