// Package lang implements the MiniC front end: a small C subset sufficient
// to port the paper's benchmark programs. It provides a lexer, a
// recursive-descent parser producing an AST, and a semantic checker.
//
// MiniC has two scalar types (int, float), global arrays and scalars (which
// live in the program's flat memory), array parameters (passed as base
// addresses, the paper's main source of ambiguous aliases), functions with
// recursion, `if`/`while`/`for` control flow, and a `print` builtin used to
// produce verifiable output. Logical && and || are strict (both operands
// evaluate); the benchmarks are written accordingly.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwPrint
	TokKwBreak
	TokKwContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlusAssign
	TokMinusAssign
	TokStarAssign
	TokSlashAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokAndAnd
	TokOrOr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokShl
	TokShr
	TokPlusPlus
	TokMinusMinus
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "int literal",
	TokFloatLit: "float literal",
	TokKwInt:    "int", TokKwFloat: "float", TokKwVoid: "void",
	TokKwIf: "if", TokKwElse: "else", TokKwWhile: "while", TokKwFor: "for",
	TokKwReturn: "return", TokKwPrint: "print", TokKwBreak: "break",
	TokKwContinue: "continue",
	TokLParen:     "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlusAssign: "+=", TokMinusAssign: "-=",
	TokStarAssign: "*=", TokSlashAssign: "/=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^",
	TokTilde: "~", TokBang: "!", TokAndAnd: "&&", TokOrOr: "||",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">",
	TokGe: ">=", TokShl: "<<", TokShr: ">>",
	TokPlusPlus: "++", TokMinusMinus: "--",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": TokKwInt, "float": TokKwFloat, "void": TokKwVoid,
	"if": TokKwIf, "else": TokKwElse, "while": TokKwWhile, "for": TokKwFor,
	"return": TokKwReturn, "print": TokKwPrint, "break": TokKwBreak,
	"continue": TokKwContinue,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string  // identifier spelling
	Int  int64   // TokIntLit value
	Flt  float64 // TokFloatLit value
}

// Error is a front-end diagnostic with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
