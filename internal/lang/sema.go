package lang

import "fmt"

// Scope tracks visible names during checking and lowering.
type symbol struct {
	Name    string
	Type    Type
	IsParam bool
	IsLocal bool
}

// CheckedProgram is the result of semantic analysis: the AST with expression
// types filled in plus symbol tables the lowerer consumes.
type CheckedProgram struct {
	AST     *Program
	Globals map[string]*GlobalDecl
	Funcs   map[string]*FuncDecl
}

type checker struct {
	prog    *Program
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl
	fn      *FuncDecl
	scopes  []map[string]*symbol
	loop    int
}

// Check performs semantic analysis over a parsed program.
func Check(prog *Program) (*CheckedProgram, error) {
	c := &checker{
		prog:    prog,
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, errf(g.Pos, "duplicate global %q", g.Name)
		}
		if _, isIntr := Intrinsics[g.Name]; isIntr {
			return nil, errf(g.Pos, "%q shadows an intrinsic", g.Name)
		}
		c.globals[g.Name] = g
		if int64(len(g.Init)) > g.Size {
			return nil, errf(g.Pos, "global %q has %d initializers for size %d", g.Name, len(g.Init), g.Size)
		}
		for _, e := range g.Init {
			et, err := c.checkExpr(e)
			if err != nil {
				return nil, err
			}
			if !constExpr(e) {
				return nil, errf(g.Pos, "global %q initializer is not a literal", g.Name)
			}
			if et != g.Elem && !(g.Elem == TypeFloat && et == TypeInt) {
				return nil, errf(g.Pos, "global %q initializer type %s", g.Name, et)
			}
		}
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return nil, errf(f.Pos, "duplicate function %q", f.Name)
		}
		if _, isIntr := Intrinsics[f.Name]; isIntr {
			return nil, errf(f.Pos, "function %q shadows an intrinsic", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return nil, errf(Pos{1, 1}, "program has no main function")
	}
	if mf := c.funcs["main"]; len(mf.Params) != 0 {
		return nil, errf(mf.Pos, "main must take no parameters")
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}
	return &CheckedProgram{AST: prog, Globals: c.globals, Funcs: c.funcs}, nil
}

func constExpr(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *UnaryExpr:
		return x.Op == '-' && constExpr(x.X)
	}
	return false
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, typ Type, isParam bool) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "duplicate declaration of %q", name)
	}
	top[name] = &symbol{Name: name, Type: typ, IsParam: isParam, IsLocal: !isParam}
	return nil
}

func (c *checker) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if g, ok := c.globals[name]; ok {
		t := TypeIntArray
		if g.Elem == TypeFloat {
			t = TypeFloatArray
		}
		if g.IsScalar {
			t = g.Elem // scalar globals read/write like scalars (via memory)
		}
		return &symbol{Name: name, Type: t}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = nil
	c.pushScope()
	for _, p := range f.Params {
		if err := c.declare(p.Pos, p.Name, p.Type, true); err != nil {
			return err
		}
	}
	if err := c.checkStmt(f.Body); err != nil {
		return err
	}
	c.popScope()
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		c.pushScope()
		for _, inner := range st.Stmts {
			if err := c.checkStmt(inner); err != nil {
				return err
			}
		}
		c.popScope()
		return nil

	case *VarDeclStmt:
		if st.Init != nil {
			it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if err := assignable(st.Pos, st.Type, it); err != nil {
				return err
			}
		}
		return c.declare(st.Pos, st.Name, st.Type, false)

	case *AssignStmt:
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		tt, err := c.checkLValue(st.Target)
		if err != nil {
			return err
		}
		if st.Op != '=' && tt != TypeInt && tt != TypeFloat {
			return errf(st.Pos, "compound assignment to %s", tt)
		}
		return assignable(st.Pos, tt, vt)

	case *IfStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != TypeInt {
			return errf(st.Pos, "if condition must be int, found %s", ct)
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil

	case *WhileStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != TypeInt {
			return errf(st.Pos, "while condition must be int, found %s", ct)
		}
		c.loop++
		err = c.checkStmt(st.Body)
		c.loop--
		return err

	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if ct != TypeInt {
				return errf(st.Pos, "for condition must be int, found %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		err := c.checkStmt(st.Body)
		c.loop--
		return err

	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Ret != TypeVoid {
				return errf(st.Pos, "missing return value in %q", c.fn.Name)
			}
			return nil
		}
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if c.fn.Ret == TypeVoid {
			return errf(st.Pos, "returning a value from void %q", c.fn.Name)
		}
		return assignable(st.Pos, c.fn.Ret, vt)

	case *PrintStmt:
		t, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if t != TypeInt && t != TypeFloat {
			return errf(st.Pos, "cannot print %s", t)
		}
		return nil

	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err

	case *BreakStmt:
		if c.loop == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil

	case *ContinueStmt:
		if c.loop == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func assignable(pos Pos, dst, src Type) error {
	if dst == src {
		return nil
	}
	// Implicit int -> float widening only.
	if dst == TypeFloat && src == TypeInt {
		return nil
	}
	return errf(pos, "cannot assign %s to %s", src, dst)
}

func (c *checker) checkLValue(lv *LValue) (Type, error) {
	sym := c.lookup(lv.Name)
	if sym == nil {
		return TypeVoid, errf(lv.Pos, "undefined name %q", lv.Name)
	}
	if lv.Index == nil {
		if sym.Type.IsArray() {
			return TypeVoid, errf(lv.Pos, "cannot assign to array %q", lv.Name)
		}
		return sym.Type, nil
	}
	it, err := c.checkExpr(lv.Index)
	if err != nil {
		return TypeVoid, err
	}
	if it != TypeInt {
		return TypeVoid, errf(lv.Pos, "array index must be int, found %s", it)
	}
	if !sym.Type.IsArray() {
		// Indexing a scalar global is allowed only if it is an array global.
		if g, ok := c.globals[lv.Name]; ok && !g.IsScalar {
			return g.Elem, nil
		}
		return TypeVoid, errf(lv.Pos, "%q is not an array", lv.Name)
	}
	return sym.Type.Elem(), nil
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.T = TypeInt
		return TypeInt, nil

	case *FloatLit:
		x.T = TypeFloat
		return TypeFloat, nil

	case *VarRef:
		sym := c.lookup(x.Name)
		if sym == nil {
			return TypeVoid, errf(x.Pos, "undefined name %q", x.Name)
		}
		x.T = sym.Type
		return sym.Type, nil

	case *IndexExpr:
		sym := c.lookup(x.Name)
		if sym == nil {
			return TypeVoid, errf(x.Pos, "undefined name %q", x.Name)
		}
		it, err := c.checkExpr(x.Index)
		if err != nil {
			return TypeVoid, err
		}
		if it != TypeInt {
			return TypeVoid, errf(x.Pos, "array index must be int, found %s", it)
		}
		var elem Type
		switch {
		case sym.Type.IsArray():
			elem = sym.Type.Elem()
		default:
			if g, ok := c.globals[x.Name]; ok {
				elem = g.Elem
			} else {
				return TypeVoid, errf(x.Pos, "%q is not an array", x.Name)
			}
		}
		x.T = elem
		return elem, nil

	case *UnaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return TypeVoid, err
		}
		switch x.Op {
		case '-':
			if xt != TypeInt && xt != TypeFloat {
				return TypeVoid, errf(x.Pos, "cannot negate %s", xt)
			}
			x.T = xt
		case '!', '~':
			if xt != TypeInt {
				return TypeVoid, errf(x.Pos, "operator %c needs int, found %s", x.Op, xt)
			}
			x.T = TypeInt
		}
		return x.T, nil

	case *BinaryExpr:
		lt, err := c.checkExpr(x.L)
		if err != nil {
			return TypeVoid, err
		}
		rt, err := c.checkExpr(x.R)
		if err != nil {
			return TypeVoid, err
		}
		switch x.Op {
		case TokAndAnd, TokOrOr, TokAmp, TokPipe, TokCaret, TokShl, TokShr, TokPercent:
			if lt != TypeInt || rt != TypeInt {
				return TypeVoid, errf(x.Pos, "operator %s needs int operands", x.Op)
			}
			x.T = TypeInt
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			if lt.IsArray() || rt.IsArray() {
				return TypeVoid, errf(x.Pos, "cannot compare arrays")
			}
			x.T = TypeInt // comparison result is 0/1
		case TokPlus, TokMinus, TokStar, TokSlash:
			if lt.IsArray() || rt.IsArray() {
				return TypeVoid, errf(x.Pos, "arithmetic on array")
			}
			if lt == TypeFloat || rt == TypeFloat {
				x.T = TypeFloat
			} else {
				x.T = TypeInt
			}
		default:
			return TypeVoid, errf(x.Pos, "unhandled operator %s", x.Op)
		}
		return x.T, nil

	case *CallExpr:
		if intr, ok := Intrinsics[x.Name]; ok {
			if len(x.Args) != 1 {
				return TypeVoid, errf(x.Pos, "intrinsic %q takes one argument", x.Name)
			}
			at, err := c.checkExpr(x.Args[0])
			if err != nil {
				return TypeVoid, err
			}
			if at != TypeInt && at != TypeFloat {
				return TypeVoid, errf(x.Pos, "intrinsic %q on %s", x.Name, at)
			}
			x.T = intr.Ret
			return x.T, nil
		}
		fn, ok := c.funcs[x.Name]
		if !ok {
			return TypeVoid, errf(x.Pos, "undefined function %q", x.Name)
		}
		if len(x.Args) != len(fn.Params) {
			return TypeVoid, errf(x.Pos, "%q needs %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return TypeVoid, err
			}
			pt := fn.Params[i].Type
			switch {
			case pt.IsArray():
				// Array arguments: pass an array name (global or array param).
				ref, isRef := a.(*VarRef)
				if !isRef {
					return TypeVoid, errf(x.Pos, "argument %d of %q must be an array name", i+1, x.Name)
				}
				argElem := at.Elem()
				if !at.IsArray() {
					// Global arrays read through lookup() as arrays already;
					// anything else is not an array.
					return TypeVoid, errf(ref.Pos, "argument %d of %q: %q is not an array", i+1, x.Name, ref.Name)
				}
				if argElem != pt.Elem() {
					return TypeVoid, errf(ref.Pos, "argument %d of %q: element type %s, want %s", i+1, x.Name, argElem, pt.Elem())
				}
			default:
				if err := assignable(x.Pos, pt, at); err != nil {
					return TypeVoid, err
				}
			}
		}
		x.T = fn.Ret
		return x.T, nil
	}
	return TypeVoid, fmt.Errorf("unhandled expression %T", e)
}
