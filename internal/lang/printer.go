package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a parsed program back to MiniC source. The output
// re-parses to an equivalent program (guaranteed by the round-trip tests),
// making it useful for normalizing generated programs and dumping fuzzer
// findings.
func Print(p *Program) string {
	var pr printer
	for _, g := range p.Globals {
		pr.global(g)
	}
	for i, f := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			pr.nl()
		}
		pr.fn(f)
	}
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) line(format string, args ...interface{}) {
	p.sb.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.nl()
}

func typeName(t Type) string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeVoid:
		return "void"
	case TypeIntArray:
		return "int"
	case TypeFloatArray:
		return "float"
	}
	return "?"
}

func (p *printer) global(g *GlobalDecl) {
	decl := typeName(g.Elem) + " " + g.Name
	if !g.IsScalar {
		decl += fmt.Sprintf("[%d]", g.Size)
	}
	if len(g.Init) > 0 {
		var vals []string
		for _, e := range g.Init {
			vals = append(vals, exprString(e))
		}
		if g.IsScalar {
			decl += " = " + vals[0]
		} else {
			decl += " = {" + strings.Join(vals, ", ") + "}"
		}
	}
	p.line("%s;", decl)
}

func (p *printer) fn(f *FuncDecl) {
	var params []string
	for _, pa := range f.Params {
		s := typeName(pa.Type) + " " + pa.Name
		if pa.Type.IsArray() {
			s += "[]"
		}
		params = append(params, s)
	}
	p.line("%s %s(%s) {", typeName(f.Ret), f.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range f.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarDeclStmt:
		if st.Init != nil {
			p.line("%s %s = %s;", typeName(st.Type), st.Name, exprString(st.Init))
		} else {
			p.line("%s %s;", typeName(st.Type), st.Name)
		}
	case *AssignStmt:
		op := "="
		if st.Op != '=' {
			op = string(st.Op) + "="
		}
		p.line("%s %s %s;", lvalueString(st.Target), op, exprString(st.Value))
	case *IfStmt:
		p.line("if (%s) {", exprString(st.Cond))
		p.indent++
		p.stmtBody(st.Then)
		p.indent--
		if st.Else != nil {
			p.line("} else {")
			p.indent++
			p.stmtBody(st.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", exprString(st.Cond))
		p.indent++
		p.stmtBody(st.Body)
		p.indent--
		p.line("}")
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(renderInline(st.Init)), ";")
		}
		if st.Cond != nil {
			cond = exprString(st.Cond)
		}
		if st.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(renderInline(st.Post)), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		p.stmtBody(st.Body)
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", exprString(st.Value))
		} else {
			p.line("return;")
		}
	case *PrintStmt:
		p.line("print(%s);", exprString(st.Value))
	case *ExprStmt:
		p.line("%s;", exprString(st.X))
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	}
}

// stmtBody prints a statement that is the body of a control construct:
// blocks are flattened (the construct supplies the braces).
func (p *printer) stmtBody(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		for _, inner := range b.Stmts {
			p.stmt(inner)
		}
		return
	}
	p.stmt(s)
}

// renderInline prints a simple statement on one line (for for-headers).
func renderInline(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.sb.String()
}

func lvalueString(lv *LValue) string {
	if lv.Index != nil {
		return fmt.Sprintf("%s[%s]", lv.Name, exprString(lv.Index))
	}
	return lv.Name
}

var tokenText = map[TokKind]string{
	TokOrOr: "||", TokAndAnd: "&&", TokPipe: "|", TokCaret: "^", TokAmp: "&",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokShl: "<<", TokShr: ">>", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%",
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.V, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.V, 'g', -1, 64)
		// Keep the literal a float literal on re-parse.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Name, exprString(x.Index))
	case *UnaryExpr:
		return fmt.Sprintf("(%c%s)", x.Op, exprString(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(x.L), tokenText[x.Op], exprString(x.R))
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprString(a))
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	}
	return "?"
}
