package lang

import "strconv"

// Lexer tokenizes MiniC source. // and /* */ comments are skipped.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(pos, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.off
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.off < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, errf(pos, "bad float literal %q", text)
			}
			return Token{Kind: TokFloatLit, Pos: pos, Flt: f}, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "bad int literal %q", text)
		}
		return Token{Kind: TokIntLit, Pos: pos, Int: v}, nil
	}

	// Operators, longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	twoMap := map[string]TokKind{
		"==": TokEq, "!=": TokNe, "<=": TokLe, ">=": TokGe,
		"&&": TokAndAnd, "||": TokOrOr, "<<": TokShl, ">>": TokShr,
		"+=": TokPlusAssign, "-=": TokMinusAssign, "*=": TokStarAssign,
		"/=": TokSlashAssign, "++": TokPlusPlus, "--": TokMinusMinus,
	}
	if k, ok := twoMap[two]; ok {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: pos, Text: two}, nil
	}
	oneMap := map[byte]TokKind{
		'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
		'[': TokLBracket, ']': TokRBracket, ',': TokComma, ';': TokSemi,
		'=': TokAssign, '+': TokPlus, '-': TokMinus, '*': TokStar,
		'/': TokSlash, '%': TokPercent, '&': TokAmp, '|': TokPipe,
		'^': TokCaret, '~': TokTilde, '!': TokBang, '<': TokLt, '>': TokGt,
	}
	if k, ok := oneMap[c]; ok {
		l.advance()
		return Token{Kind: k, Pos: pos, Text: string(c)}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll tokenizes the whole input (including the trailing EOF token).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
