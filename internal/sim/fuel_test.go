package sim_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"specdis/internal/machine"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/trace"
)

// loopSrc never terminates: only the fuel budget or a deadline can stop it.
const loopSrc = `
void main() {
	int i = 0;
	while (1) {
		i = i + 1;
	}
}`

func loopRunner(t *testing.T, mode sim.ExecMode) *sim.Runner {
	t.Helper()
	return &sim.Runner{
		Prog:   compileSrc(t, loopSrc),
		SemLat: machine.Infinite(2).LatencyFunc(),
		Exec:   mode,
	}
}

// TestFuelExhaustedAllEngines proves the nontermination bound on every
// execution engine: tree walker, bytecode, and bytecode under trace capture.
func TestFuelExhaustedAllEngines(t *testing.T) {
	engines := []struct {
		name    string
		mode    sim.ExecMode
		capture bool
	}{
		{"tree", sim.ExecTree, false},
		{"bcode", sim.ExecBytecode, false},
		{"native", sim.ExecNative, false},
		{"capture", sim.ExecBytecode, true},
		{"native-capture", sim.ExecNative, true},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			r := loopRunner(t, e.mode)
			r.MaxOps = 10_000
			if e.capture {
				r.Rec = trace.NewRecorder()
			}
			_, err := r.Run()
			if !errors.Is(err, resilience.ErrFuelExhausted) {
				t.Fatalf("infinite loop on %s engine: err = %v, want ErrFuelExhausted", e.name, err)
			}
			// The bytecode-vs-tree fuzzer matches this word to pair up
			// budget aborts across backends; keep it in the message.
			if !strings.Contains(err.Error(), "budget") {
				t.Fatalf("fuel error lost the word \"budget\": %q", err)
			}
		})
	}
}

func TestDeadlineBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := loopRunner(t, sim.ExecBytecode)
	r.Ctx = ctx
	_, err := r.Run()
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("canceled context: err = %v, want ErrDeadline", err)
	}
}

func TestDeadlineCancelsMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r := loopRunner(t, sim.ExecBytecode)
	r.Ctx = ctx
	start := time.Now()
	_, err := r.Run()
	if !errors.Is(err, resilience.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline mid-run: err = %v, want ErrDeadline wrapping DeadlineExceeded", err)
	}
	// The poll interval bounds cancellation latency far below the fuel
	// horizon; give CI lots of slack but fail on an actual hang-till-fuel.
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}

func TestMissingScheduleIsTypedError(t *testing.T) {
	prog := compileSrc(t, `void main() { print(1); }`)
	for _, mode := range []sim.ExecMode{sim.ExecTree, sim.ExecBytecode, sim.ExecNative} {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Plans:  []*sim.Plan{sim.NewPlan("empty")},
			Exec:   mode,
		}
		_, err := r.Run()
		if !errors.Is(err, resilience.ErrMissingSchedule) {
			t.Fatalf("%v engine: err = %v, want ErrMissingSchedule", mode, err)
		}
	}
}

func TestReplayMissingScheduleIsTypedError(t *testing.T) {
	prog := compileSrc(t, `void main() { print(1); }`)
	rec := trace.NewRecorder()
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Rec: rec}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish(res.Ops, res.Committed)
	rp := &sim.Replayer{Prog: prog, Plans: []*sim.Plan{sim.NewPlan("empty")}}
	if _, err := rp.Replay(tr); !errors.Is(err, resilience.ErrMissingSchedule) {
		t.Fatalf("replay: err = %v, want ErrMissingSchedule", err)
	}
}

func TestPlanDrop(t *testing.T) {
	prog := compileSrc(t, `void main() { print(1); }`)
	plans := stdPlans(t, prog, 2)
	for _, p := range plans {
		for range p.Trees() {
			p.Drop(0)
		}
	}
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Plans: plans[:1]}
	if _, err := r.Run(); !errors.Is(err, resilience.ErrMissingSchedule) {
		t.Fatalf("dropped schedule: err = %v, want ErrMissingSchedule", err)
	}
}

// TestChaosPanicAt proves the injection hook panics with a value that stays
// matchable as an injected fault once recovered at a cell boundary.
func TestChaosPanicAt(t *testing.T) {
	for _, mode := range []sim.ExecMode{sim.ExecTree, sim.ExecBytecode, sim.ExecNative} {
		run := func() (res *sim.Result, err error) {
			defer resilience.Recover(&err, "test", "NAIVE", 2, "measure")
			r := loopRunner(t, mode)
			r.ChaosPanicAt = 5_000
			return r.Run()
		}
		_, err := run()
		if !errors.Is(err, resilience.ErrInjected) {
			t.Fatalf("%v engine: err = %v, want recovered injected panic", mode, err)
		}
		var ce *resilience.CellError
		if !errors.As(err, &ce) || ce.Class != resilience.ClassPanic {
			t.Fatalf("%v engine: recovered error not a panic CellError: %v", mode, err)
		}
	}
}
