package sim_test

import (
	"testing"

	"specdis/internal/compile"
	"specdis/internal/machine"
	"specdis/internal/sim"
)

// callLoopSrc makes a few thousand dynamic calls per run. If the runner
// allocated a fresh frame or argument slice per call, the steady-state
// allocation count below would be in the thousands.
const callLoopSrc = `
int a[8];
int f(int x, int y) {
	a[x % 8] = a[x % 8] + y;
	return a[(x + y) % 8] + 1;
}
void main() {
	int s = 0;
	for (int k = 0; k < 3000; k = k + 1) { s = (s + f(k, k % 5)) % 1000003; }
	print(s);
}`

// TestCallLoopAllocs pins the frame-churn fix in Runner.call: the frame and
// argument pools are sized to the program's maximum frame size and call arity
// at the start of Run, so the steady-state call loop reuses pooled storage
// instead of allocating per dynamic call (see BenchmarkCallSteadyState).
func TestCallLoopAllocs(t *testing.T) {
	prog, err := compile.Compile(callLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range execModes {
		r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Exec: mode}
		// Warm the pools (and the bytecode cache) to steady state.
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := r.Run(); err != nil {
				t.Fatal(err)
			}
		})
		// A steady-state run still has a fixed per-run allocation cost
		// (output builder, result struct, commit-bit scratch — ~90 objects,
		// independent of the call count) but nothing per dynamic call: frame
		// churn across 3000 calls would put this in the thousands.
		if allocs > 200 {
			t.Errorf("%v: steady-state run allocates %.0f objects; the call loop is churning frames", mode, allocs)
		}
	}
}
