package sim_test

import (
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
)

// benchSetup compiles the fft benchmark and builds its nine standard pricing
// plans, the shared fixture of the execution benchmarks.
func benchSetup(b *testing.B) (*ir.Program, []*sim.Plan) {
	b.Helper()
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	models := []machine.Model{machine.Infinite(2)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, 2))
	}
	plans := make([]*sim.Plan, len(models))
	for i, m := range models {
		plans[i] = sim.NewPlan(m.Name)
	}
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			g := ir.BuildDepGraph(t, machine.Infinite(2).LatencyFunc())
			for i, m := range models {
				plans[i].SetTree(t, sched.FromGraph(g, m.NumFUs).Comp)
			}
		}
	}
	return prog, plans
}

// benchRun times full timed runs of the fixture program on one backend.
func benchRun(b *testing.B, mode sim.ExecMode) {
	prog, plans := benchSetup(b)
	cache := bcode.NewCache(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Plans:  plans,
			Exec:   mode,
			BCode:  cache,
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTree times the simulator's execution hot path on the reference
// tree walker: a full timed run of the fft benchmark priced under the nine
// standard machine models, dominated by execTree / evalPure / price.
func BenchmarkExecTree(b *testing.B) { benchRun(b, sim.ExecTree) }

// BenchmarkExecTreeBytecode is BenchmarkExecTree on the bytecode engine: the
// same timed fft run dominated by bcode.Exec / priceBits.
func BenchmarkExecTreeBytecode(b *testing.B) { benchRun(b, sim.ExecBytecode) }

// BenchmarkBytecodeCompile times lowering every tree of the fft benchmark to
// bytecode (one whole-program compile per iteration).
func BenchmarkBytecodeCompile(b *testing.B) {
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	prog.IndexTrees()
	var trees []*ir.Tree
	for _, name := range prog.Order {
		trees = append(trees, prog.Funcs[name].Trees...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range trees {
			if _, err := bcode.Compile(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCallSteadyState pins the allocation behavior of the steady-state
// call loop: after the first run warms the frame/arg pools to the program's
// peak call depth, further runs of the recursive fixture must not allocate
// frames at all (see TestCallLoopAllocs).
func BenchmarkCallSteadyState(b *testing.B) {
	prog, _ := benchSetup(b)
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
	if _, err := r.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
