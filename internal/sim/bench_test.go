package sim_test

import (
	"fmt"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/trace"
)

// benchSetup compiles the fft benchmark and builds its nine standard pricing
// plans, the shared fixture of the execution benchmarks.
func benchSetup(b *testing.B) (*ir.Program, []*sim.Plan) {
	b.Helper()
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	models := []machine.Model{machine.Infinite(2)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, 2))
	}
	plans := make([]*sim.Plan, len(models))
	for i, m := range models {
		plans[i] = sim.NewPlan(m.Name)
	}
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			g := ir.BuildDepGraph(t, machine.Infinite(2).LatencyFunc())
			for i, m := range models {
				plans[i].SetTree(t, sched.FromGraph(g, m.NumFUs).Comp)
			}
		}
	}
	return prog, plans
}

// benchRun times full timed runs of the fixture program on one backend.
func benchRun(b *testing.B, mode sim.ExecMode) {
	prog, plans := benchSetup(b)
	bcCache := bcode.NewCache(nil)
	ncCache := ncode.NewCache(nil)
	shapes := sim.NewShapeCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Plans:  plans,
			Exec:   mode,
			BCode:  bcCache,
			NCode:  ncCache,
			Shapes: shapes,
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProfile times full profiling (capture-class) runs: no pricing plans,
// so the run is dominated by raw execution plus the per-op commit and
// address sampling — the cost the native tier's profiling specialization
// targets.
func benchProfile(b *testing.B, mode sim.ExecMode) {
	prog, _ := benchSetup(b)
	bcCache := bcode.NewCache(nil)
	ncCache := ncode.NewCache(nil)
	shapes := sim.NewShapeCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Prof:   sim.NewProfile(),
			Exec:   mode,
			BCode:  bcCache,
			NCode:  ncCache,
			Shapes: shapes,
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCapture times full trace-capture runs: a recorder and no pricing
// plans, the shape of the SPEC capture cells trace replay cannot shortcut.
func benchCapture(b *testing.B, mode sim.ExecMode) {
	prog, _ := benchSetup(b)
	bcCache := bcode.NewCache(nil)
	ncCache := ncode.NewCache(nil)
	shapes := sim.NewShapeCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Rec:    trace.NewRecorder(),
			Exec:   mode,
			BCode:  bcCache,
			NCode:  ncCache,
			Shapes: shapes,
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTree times the simulator's execution hot path on the reference
// tree walker: a full timed run of the fft benchmark priced under the nine
// standard machine models, dominated by execTree / evalPure / price.
func BenchmarkExecTree(b *testing.B) { benchRun(b, sim.ExecTree) }

// BenchmarkExecTreeBytecode is BenchmarkExecTree on the bytecode engine: the
// same timed fft run dominated by bcode.Exec / priceBits.
func BenchmarkExecTreeBytecode(b *testing.B) { benchRun(b, sim.ExecBytecode) }

// BenchmarkExecTreeNative is BenchmarkExecTree on the native closure-chain
// tier: the same timed fft run dominated by the fused closure chains.
func BenchmarkExecTreeNative(b *testing.B) { benchRun(b, sim.ExecNative) }

// BenchmarkProfileTree times a profiling run (the capture-bound cell class)
// on the reference tree walker.
func BenchmarkProfileTree(b *testing.B) { benchProfile(b, sim.ExecTree) }

// BenchmarkProfileBytecode is BenchmarkProfileTree on the bytecode engine.
func BenchmarkProfileBytecode(b *testing.B) { benchProfile(b, sim.ExecBytecode) }

// BenchmarkProfileNative is BenchmarkProfileTree on the native tier's
// profiling-specialized chains.
func BenchmarkProfileNative(b *testing.B) { benchProfile(b, sim.ExecNative) }

// BenchmarkCaptureTree times a trace-capture run (the capture-bound cell
// class) on the reference tree walker.
func BenchmarkCaptureTree(b *testing.B) { benchCapture(b, sim.ExecTree) }

// BenchmarkCaptureBytecode is BenchmarkCaptureTree on the bytecode engine.
func BenchmarkCaptureBytecode(b *testing.B) { benchCapture(b, sim.ExecBytecode) }

// BenchmarkCaptureNative is BenchmarkCaptureTree on the native tier.
func BenchmarkCaptureNative(b *testing.B) { benchCapture(b, sim.ExecNative) }

// BenchmarkTierUpThreshold sweeps the adaptive-tiering hot threshold on a
// cold-cache timed run: every iteration starts with fresh compiled-code
// caches, so the native compile cost of every tree that crosses the
// threshold is inside the measurement. threshold=0 compiles every executed
// tree eagerly; the huge threshold never promotes (all-bytecode with native
// selected); the middle settings show the adaptive tradeoff spdbench's
// -tierup default rides.
func BenchmarkTierUpThreshold(b *testing.B) {
	prog, plans := benchSetup(b)
	shapes := sim.NewShapeCache()
	for _, tu := range []int64{0, 1, 32, 1 << 30} {
		name := fmt.Sprintf("tierup=%d", tu)
		if tu == 1<<30 {
			name = "tierup=never"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &sim.Runner{
					Prog:   prog,
					SemLat: machine.Infinite(2).LatencyFunc(),
					Plans:  plans,
					Exec:   sim.ExecNative,
					TierUp: tu,
					BCode:  bcode.NewCache(nil),
					NCode:  ncode.NewCache(nil),
					Shapes: shapes,
				}
				if _, err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBytecodeCompile times lowering every tree of the fft benchmark to
// bytecode (one whole-program compile per iteration).
func BenchmarkBytecodeCompile(b *testing.B) {
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	prog.IndexTrees()
	var trees []*ir.Tree
	for _, name := range prog.Order {
		trees = append(trees, prog.Funcs[name].Trees...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range trees {
			if _, err := bcode.Compile(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCallSteadyState pins the allocation behavior of the steady-state
// call loop: after the first run warms the frame/arg pools to the program's
// peak call depth, further runs of the recursive fixture must not allocate
// frames at all (see TestCallLoopAllocs).
func BenchmarkCallSteadyState(b *testing.B) {
	prog, _ := benchSetup(b)
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
	if _, err := r.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
