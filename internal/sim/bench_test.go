package sim_test

import (
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
)

// BenchmarkExecTree times the simulator's execution hot path: a full timed
// run of the fft benchmark priced under the nine standard machine models,
// dominated by execTree / evalPure / price.
func BenchmarkExecTree(b *testing.B) {
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	models := []machine.Model{machine.Infinite(2)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, 2))
	}
	plans := make([]*sim.Plan, len(models))
	for i, m := range models {
		plans[i] = sim.NewPlan(m.Name)
	}
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			g := ir.BuildDepGraph(t, machine.Infinite(2).LatencyFunc())
			for i, m := range models {
				plans[i].SetTree(t, sched.FromGraph(g, m.NumFUs).Comp)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sim.Runner{
			Prog:   prog,
			SemLat: machine.Infinite(2).LatencyFunc(),
			Plans:  plans,
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
