// Package sim executes decision-tree programs with guarded-execution
// semantics and measures their run time under one or more machine schedules.
//
// Semantics. Each tree execution runs every operation of the tree in a fixed
// topological order of the tree's dependence graph (the compiler's model of a
// legal issue order): operations compute speculatively, but write-back —
// register writes, memory stores, output — happens only when the guard
// evaluates true. Speculative reads through garbage addresses are clamped
// into the memory image (a non-faulting memory, per the paper's §4.6
// assumption), and speculative integer division by zero yields zero.
//
// Timing. For each supplied Plan (a per-tree completion-cycle table produced
// by a scheduler), a tree execution costs the maximum completion cycle over
// the operations that actually committed — at least the taken exit's
// resolution cycle, since exits carry the branch latency. Because committed
// values are schedule-invariant, one semantic pass can price any number of
// schedules at once.
package sim

import (
	"bytes"
	"fmt"
	"math"
	"strconv"

	"specdis/internal/ir"
)

// Plan is a pricing table: completion cycles per op for every tree, as
// produced by a scheduler for one machine configuration.
type Plan struct {
	Name string
	comp map[*ir.Tree][]int64
}

// NewPlan returns an empty plan.
func NewPlan(name string) *Plan {
	return &Plan{Name: name, comp: map[*ir.Tree][]int64{}}
}

// SetTree installs the completion-cycle table for one tree (indexed by Seq).
func (p *Plan) SetTree(t *ir.Tree, comp []int64) { p.comp[t] = comp }

// Result is the outcome of a program run.
type Result struct {
	Output string
	// Times has one entry per plan passed to Run: total cycles.
	Times []int64
	// Ops is the number of dynamic operation executions (including
	// speculative ones), a work measure.
	Ops int64
	// Committed counts the operations whose write-back actually happened:
	// Ops − Committed is the dynamic cost of speculation.
	Committed int64
	// Exit is main's return value.
	Exit ir.Value
}

// Profile accumulates execution statistics during a profiling run: per-tree
// execution counts and per-exit counts. Memory-arc counters (ExecCount /
// AliasCount) are accumulated directly on the arcs of the profiled program.
type Profile struct {
	TreeExec map[*ir.Tree]int64
	ExitExec map[*ir.Op]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{TreeExec: map[*ir.Tree]int64{}, ExitExec: map[*ir.Op]int64{}}
}

// ExitProb returns the measured probability that tree t leaves through exit
// e, defaulting to a uniform split when the tree never executed.
func (pr *Profile) ExitProb(t *ir.Tree, e *ir.Op) float64 {
	total := pr.TreeExec[t]
	if total == 0 {
		return 1 / float64(len(t.Exits()))
	}
	return float64(pr.ExitExec[e]) / float64(total)
}

// TreeExecCount returns how many times tree t executed during profiling.
func (pr *Profile) TreeExecCount(t *ir.Tree) int64 { return pr.TreeExec[t] }

// DefaultMaxOps bounds the dynamic operation count of one run.
const DefaultMaxOps = 4_000_000_000

// Runner executes one program. A Runner is single-use per Run call but may
// be reused; memory and output reset each run.
type Runner struct {
	Prog *ir.Program
	// SemLat is the latency model used to fix the semantic execution order;
	// any model gives the same committed values, so this only pins
	// determinism. Required.
	SemLat ir.LatencyFunc
	// Plans are priced during the run.
	Plans []*Plan
	// Prof, when non-nil, collects profiling statistics (and updates arc
	// alias counters on the program).
	Prof *Profile
	// MaxOps guards against runaway programs (0 = DefaultMaxOps).
	MaxOps int64

	mem       []ir.Value
	out       bytes.Buffer
	ops       int64
	committed int64
	times     []int64
	ctxes     map[*ir.Tree]*treeCtx
	framePool [][]ir.Value
}

// treeCtx is the per-tree execution context, built once and cached.
type treeCtx struct {
	order []int // topological execution order (Seq indices)
	comp  [][]int64
	memo  map[string][]int64 // (taken exit, committed-mask) -> per-plan time
	exits []int              // Seq indices of exits, in Seq order

	// onPath[i][e] reports whether op i's block lies on the path to the
	// tree's e-th exit: only such ops contribute to that path's time (a
	// speculative op from an untaken path occupies an issue slot but its
	// write-back gates nothing).
	onPath    [][]bool
	exitIndex map[*ir.Op]int

	committed []bool
	addrs     []int64
	mask      []byte
}

func (r *Runner) ctx(t *ir.Tree) *treeCtx {
	if c, ok := r.ctxes[t]; ok {
		return c
	}
	g := ir.BuildDepGraph(t, r.SemLat)
	c := &treeCtx{
		order:     topoOrder(g),
		memo:      map[string][]int64{},
		exitIndex: map[*ir.Op]int{},
		committed: make([]bool, len(t.Ops)),
		addrs:     make([]int64, len(t.Ops)),
		mask:      make([]byte, (len(t.Ops)+7)/8+1),
	}
	for _, op := range t.Ops {
		if op.Kind == ir.OpExit {
			c.exitIndex[op] = len(c.exits)
			c.exits = append(c.exits, op.Seq)
		}
	}
	c.onPath = make([][]bool, len(t.Ops))
	for i, op := range t.Ops {
		c.onPath[i] = make([]bool, len(c.exits))
		for e, exSeq := range c.exits {
			c.onPath[i][e] = t.OnPath(op.Block, t.Ops[exSeq].Block)
		}
	}
	for _, p := range r.Plans {
		comp := p.comp[t]
		if comp == nil {
			panic(fmt.Sprintf("plan %q has no schedule for tree %s", p.Name, t.Name))
		}
		c.comp = append(c.comp, comp)
	}
	r.ctxes[t] = c
	return c
}

// topoOrder returns a deterministic topological order of the dependence
// graph: among ready ops, lowest Seq first.
func topoOrder(g *ir.DepGraph) []int {
	n := len(g.Tree.Ops)
	npreds := make([]int, n)
	for i := 0; i < n; i++ {
		npreds[i] = len(g.Pred[i])
	}
	order := make([]int, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if !done[i] && npreds[i] == 0 {
				picked = i
				break
			}
		}
		if picked < 0 {
			panic("dependence graph has a cycle: " + g.Tree.Name)
		}
		done[picked] = true
		order = append(order, picked)
		for _, e := range g.Succ[picked] {
			npreds[e.To]--
		}
	}
	return order
}

// Run executes the program from main and returns the result.
func (r *Runner) Run() (*Result, error) {
	if r.SemLat == nil {
		return nil, fmt.Errorf("sim: SemLat is required")
	}
	r.mem = make([]ir.Value, r.Prog.MemSize)
	for _, g := range r.Prog.Globals {
		copy(r.mem[g.Base:g.Base+g.Size], g.Init)
	}
	r.out.Reset()
	r.ops = 0
	r.committed = 0
	r.times = make([]int64, len(r.Plans))
	r.ctxes = map[*ir.Tree]*treeCtx{}

	main := r.Prog.Funcs[r.Prog.Main]
	exit, err := r.call(main, nil)
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:    r.out.String(),
		Times:     r.times,
		Ops:       r.ops,
		Committed: r.committed,
		Exit:      exit,
	}, nil
}

func (r *Runner) getFrame(n int) []ir.Value {
	if k := len(r.framePool); k > 0 && cap(r.framePool[k-1]) >= n {
		f := r.framePool[k-1][:n]
		r.framePool = r.framePool[:k-1]
		for i := range f {
			f[i] = ir.Value{}
		}
		return f
	}
	return make([]ir.Value, n)
}

func (r *Runner) putFrame(f []ir.Value) {
	if len(r.framePool) < 64 {
		r.framePool = append(r.framePool, f)
	}
}

// call runs one function invocation.
func (r *Runner) call(fn *ir.Function, args []ir.Value) (ir.Value, error) {
	regs := r.getFrame(fn.NumRegs)
	defer r.putFrame(regs)
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	cur := fn.Entry
	for {
		t := fn.Trees[cur]
		exit, err := r.execTree(t, regs)
		if err != nil {
			return ir.Value{}, err
		}
		switch exit.Exit {
		case ir.ExitGoto:
			cur = exit.Target
		case ir.ExitRet:
			if len(exit.Args) > 0 {
				return regs[exit.Args[0]], nil
			}
			return ir.Value{}, nil
		case ir.ExitCall:
			callee := r.Prog.Funcs[exit.Callee]
			cargs := make([]ir.Value, len(exit.CallArg))
			for i, a := range exit.CallArg {
				cargs[i] = regs[a]
			}
			rv, err := r.call(callee, cargs)
			if err != nil {
				return ir.Value{}, err
			}
			if exit.Dest != ir.NoReg {
				regs[exit.Dest] = rv
			}
			cur = exit.Target
		}
	}
}

func (r *Runner) clamp(a int64) int64 {
	if a < 0 {
		return 0
	}
	if a >= int64(len(r.mem)) {
		return int64(len(r.mem)) - 1
	}
	return a
}

func guardOK(op *ir.Op, regs []ir.Value) bool {
	if op.Guard == ir.NoReg {
		return true
	}
	nz := regs[op.Guard].I != 0
	if op.GuardNeg {
		return !nz
	}
	return nz
}

// execTree executes one tree over the register frame, returning the taken
// exit op.
func (r *Runner) execTree(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c := r.ctx(t)
	maxOps := r.MaxOps
	if maxOps == 0 {
		maxOps = DefaultMaxOps
	}
	r.ops += int64(len(t.Ops))
	if r.ops > maxOps {
		return nil, fmt.Errorf("sim: operation budget exceeded (%d)", maxOps)
	}

	profiling := r.Prof != nil
	var taken *ir.Op
	for _, i := range c.order {
		op := t.Ops[i]
		ok := guardOK(op, regs)
		c.committed[i] = ok
		if ok {
			r.committed++
		}

		switch op.Kind {
		case ir.OpLoad:
			a := r.clamp(regs[op.Args[0]].I)
			if profiling {
				c.addrs[i] = a
			}
			if ok {
				regs[op.Dest] = r.mem[a]
			}
		case ir.OpStore:
			a := r.clamp(regs[op.Args[0]].I)
			if profiling {
				c.addrs[i] = a
			}
			if ok {
				r.mem[a] = regs[op.Args[1]]
			}
		case ir.OpPrint:
			if ok {
				r.printVal(regs[op.Args[0]], op.PrintFloat)
			}
		case ir.OpExit:
			if ok {
				if taken != nil {
					return nil, fmt.Errorf("tree %s: two exits taken (%%%d and %%%d)", t.Name, taken.ID, op.ID)
				}
				taken = op
			}
		default:
			v := evalPure(op, regs)
			if ok && op.Dest != ir.NoReg {
				regs[op.Dest] = v
			}
		}
	}
	if taken == nil {
		return nil, fmt.Errorf("tree %s: no exit taken", t.Name)
	}

	if len(r.times) > 0 {
		r.price(t, c, c.exitIndex[taken])
	}
	if profiling {
		r.Prof.TreeExec[t]++
		r.Prof.ExitExec[taken]++
		for _, a := range t.Arcs {
			if c.committed[a.From.Seq] && c.committed[a.To.Seq] {
				a.ExecCount++
				if c.addrs[a.From.Seq] == c.addrs[a.To.Seq] {
					a.AliasCount++
				}
			}
		}
	}
	return taken, nil
}

// price accumulates the cost of this execution under every plan: the time of
// one tree execution is the maximum completion cycle over the ops that
// committed on the taken path (results of speculative ops from other paths
// gate nothing). Memoized by (taken exit, committed mask).
func (r *Runner) price(t *ir.Tree, c *treeCtx, exitIdx int) {
	for b := range c.mask {
		c.mask[b] = 0
	}
	for i, ok := range c.committed {
		if ok {
			c.mask[i>>3] |= 1 << uint(i&7)
		}
	}
	c.mask[len(c.mask)-1] = byte(exitIdx)
	times, ok := c.memo[string(c.mask)]
	if !ok {
		times = make([]int64, len(r.Plans))
		for pi, comp := range c.comp {
			var max int64
			for i, committed := range c.committed {
				if committed && c.onPath[i][exitIdx] && comp[i] > max {
					max = comp[i]
				}
			}
			times[pi] = max
		}
		c.memo[string(c.mask)] = times
	}
	for pi, dt := range times {
		r.times[pi] += dt
	}
}

// evalPure computes the result of a side-effect-free, non-memory op.
func evalPure(op *ir.Op, regs []ir.Value) ir.Value {
	a := func(k int) ir.Value { return regs[op.Args[k]] }
	b2i := func(b bool) ir.Value {
		if b {
			return ir.Value{I: 1, F: 1}
		}
		return ir.Value{}
	}
	switch op.Kind {
	case ir.OpNop:
		return ir.Value{}
	case ir.OpConst:
		return op.Imm
	case ir.OpMove:
		return a(0)
	case ir.OpAdd:
		return intV(a(0).I + a(1).I)
	case ir.OpSub:
		return intV(a(0).I - a(1).I)
	case ir.OpMul:
		return intV(a(0).I * a(1).I)
	case ir.OpDiv:
		d := a(1).I
		if d == 0 {
			return ir.Value{}
		}
		if a(0).I == math.MinInt64 && d == -1 {
			return intV(math.MinInt64)
		}
		return intV(a(0).I / d)
	case ir.OpRem:
		d := a(1).I
		if d == 0 {
			return ir.Value{}
		}
		if a(0).I == math.MinInt64 && d == -1 {
			return intV(0)
		}
		return intV(a(0).I % d)
	case ir.OpNeg:
		return intV(-a(0).I)
	case ir.OpAnd:
		return intV(a(0).I & a(1).I)
	case ir.OpOr:
		return intV(a(0).I | a(1).I)
	case ir.OpXor:
		return intV(a(0).I ^ a(1).I)
	case ir.OpNot:
		return intV(^a(0).I)
	case ir.OpShl:
		return intV(a(0).I << (uint64(a(1).I) & 63))
	case ir.OpShr:
		return intV(a(0).I >> (uint64(a(1).I) & 63))
	case ir.OpBNot:
		return b2i(a(0).I == 0)
	case ir.OpBAnd:
		return b2i(a(0).I != 0 && a(1).I != 0)
	case ir.OpBAndNot:
		return b2i(a(0).I != 0 && a(1).I == 0)
	case ir.OpCmpEQ:
		return b2i(a(0).I == a(1).I)
	case ir.OpCmpNE:
		return b2i(a(0).I != a(1).I)
	case ir.OpCmpLT:
		return b2i(a(0).I < a(1).I)
	case ir.OpCmpLE:
		return b2i(a(0).I <= a(1).I)
	case ir.OpCmpGT:
		return b2i(a(0).I > a(1).I)
	case ir.OpCmpGE:
		return b2i(a(0).I >= a(1).I)
	case ir.OpFAdd:
		return fltV(a(0).F + a(1).F)
	case ir.OpFSub:
		return fltV(a(0).F - a(1).F)
	case ir.OpFMul:
		return fltV(a(0).F * a(1).F)
	case ir.OpFDiv:
		return fltV(a(0).F / a(1).F)
	case ir.OpFNeg:
		return fltV(-a(0).F)
	case ir.OpFCmpEQ:
		return b2i(a(0).F == a(1).F)
	case ir.OpFCmpNE:
		return b2i(a(0).F != a(1).F)
	case ir.OpFCmpLT:
		return b2i(a(0).F < a(1).F)
	case ir.OpFCmpLE:
		return b2i(a(0).F <= a(1).F)
	case ir.OpFCmpGT:
		return b2i(a(0).F > a(1).F)
	case ir.OpFCmpGE:
		return b2i(a(0).F >= a(1).F)
	case ir.OpCvtIF:
		return fltV(float64(a(0).I))
	case ir.OpCvtFI:
		return cvtFI(a(0).F)
	case ir.OpSqrt:
		return fltV(math.Sqrt(a(0).F))
	case ir.OpFAbs:
		return fltV(math.Abs(a(0).F))
	case ir.OpSin:
		return fltV(math.Sin(a(0).F))
	case ir.OpCos:
		return fltV(math.Cos(a(0).F))
	case ir.OpExp:
		return fltV(math.Exp(a(0).F))
	case ir.OpLog:
		return fltV(math.Log(a(0).F))
	}
	panic("evalPure: unhandled op kind " + op.Kind.String())
}

func intV(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fltV(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

func cvtFI(f float64) ir.Value {
	if math.IsNaN(f) {
		return ir.Value{}
	}
	if f > math.MaxInt64 {
		return intV(math.MaxInt64)
	}
	if f < math.MinInt64 {
		return intV(math.MinInt64)
	}
	return intV(int64(f))
}

func (r *Runner) printVal(v ir.Value, isFloat bool) {
	if isFloat {
		f := v.F
		// Round to 6 significant decimals so that output checksums are
		// robust against benign floating-point noise across schedules.
		r.out.WriteString(strconv.FormatFloat(f, 'g', 6, 64))
	} else {
		r.out.WriteString(strconv.FormatInt(v.I, 10))
	}
	r.out.WriteByte('\n')
}
