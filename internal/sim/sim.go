// Package sim executes decision-tree programs with guarded-execution
// semantics and measures their run time under one or more machine schedules.
//
// Semantics. Each tree execution runs every operation of the tree in a fixed
// topological order of the tree's dependence graph (the compiler's model of a
// legal issue order): operations compute speculatively, but write-back —
// register writes, memory stores, output — happens only when the guard
// evaluates true. Speculative reads through garbage addresses are clamped
// into the memory image (a non-faulting memory, per the paper's §4.6
// assumption), and speculative integer division by zero yields zero.
//
// Timing. For each supplied Plan (a per-tree completion-cycle table produced
// by a scheduler), a tree execution costs the maximum completion cycle over
// the operations that actually committed — at least the taken exit's
// resolution cycle, since exits carry the branch latency. Because committed
// values are schedule-invariant, one semantic pass can price any number of
// schedules at once.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/ncode"
	"specdis/internal/resilience"
	"specdis/internal/trace"
)

// Plan is a pricing table: completion cycles per op for every tree, as
// produced by a scheduler for one machine configuration. Entries are stored
// as they arrive; Runner.Run resolves them once into a dense table indexed
// by program-wide tree index (ir.Tree.PIdx), so the execution hot path never
// touches a pointer-keyed map.
type Plan struct {
	Name  string
	trees []*ir.Tree
	comps [][]int64
}

// NewPlan returns an empty plan.
func NewPlan(name string) *Plan {
	return &Plan{Name: name}
}

// SetTree installs the completion-cycle table for one tree (indexed by Seq).
// Setting the same tree again overwrites the earlier table.
func (p *Plan) SetTree(t *ir.Tree, comp []int64) {
	p.trees = append(p.trees, t)
	p.comps = append(p.comps, comp)
}

// planEntry is one resolved slot of a dense plan table. The tree pointer is
// kept so that an entry installed for a different program's tree (a PIdx
// collision) is detected instead of silently mis-pricing.
type planEntry struct {
	tree *ir.Tree
	comp []int64
}

// Trees returns the trees the plan has schedules for, in SetTree order.
func (p *Plan) Trees() []*ir.Tree { return p.trees }

// Drop removes the plan's schedule for the i-th (modulo entry count) SetTree
// entry — a chaos hook: executing the dropped tree afterwards fails with a
// typed missing-schedule error instead of pricing. No-op on an empty plan.
func (p *Plan) Drop(i int) {
	if len(p.trees) == 0 {
		return
	}
	i = ((i % len(p.trees)) + len(p.trees)) % len(p.trees)
	p.trees = append(p.trees[:i], p.trees[i+1:]...)
	p.comps = append(p.comps[:i], p.comps[i+1:]...)
}

// dense lays the plan out as a table indexed by tree PIdx (entries for the
// same tree resolve to the latest SetTree call). Trees of the program
// without an entry stay nil and yield a typed missing-schedule error on
// first execution.
func (p *Plan) dense(numTrees int) []planEntry {
	tab := make([]planEntry, numTrees)
	for i, t := range p.trees {
		if t.PIdx >= 0 && t.PIdx < numTrees {
			tab[t.PIdx] = planEntry{tree: t, comp: p.comps[i]}
		}
	}
	return tab
}

// Result is the outcome of a program run.
type Result struct {
	Output string
	// Times has one entry per plan passed to Run: total cycles.
	Times []int64
	// Ops is the number of dynamic operation executions (including
	// speculative ones), a work measure.
	Ops int64
	// Committed counts the operations whose write-back actually happened:
	// Ops − Committed is the dynamic cost of speculation.
	Committed int64
	// Exit is main's return value.
	Exit ir.Value
}

// Profile accumulates execution statistics during a profiling run: per-tree
// execution counts and per-exit counts. Memory-arc counters (ExecCount /
// AliasCount) are accumulated directly on the arcs of the profiled program.
type Profile struct {
	TreeExec map[*ir.Tree]int64
	ExitExec map[*ir.Op]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{TreeExec: map[*ir.Tree]int64{}, ExitExec: map[*ir.Op]int64{}}
}

// ExitProb returns the measured probability that tree t leaves through exit
// e, defaulting to a uniform split when the tree never executed.
func (pr *Profile) ExitProb(t *ir.Tree, e *ir.Op) float64 {
	total := pr.TreeExec[t]
	if total == 0 {
		return 1 / float64(len(t.Exits()))
	}
	return float64(pr.ExitExec[e]) / float64(total)
}

// TreeExecCount returns how many times tree t executed during profiling.
func (pr *Profile) TreeExecCount(t *ir.Tree) int64 { return pr.TreeExec[t] }

// DefaultMaxOps bounds the dynamic operation count of one run.
const DefaultMaxOps = 4_000_000_000

// Runner executes one program. A Runner is single-use per Run call but may
// be reused; memory and output reset each run.
type Runner struct {
	Prog *ir.Program
	// SemLat is the latency model the semantic execution order is defined
	// under. Ops execute in Seq order — the lowest-Seq-first topological
	// order of the dependence graph, which is the same under every latency
	// model — so the value never changes results; it is still required so
	// callers state their model explicitly. Required.
	SemLat ir.LatencyFunc
	// Plans are priced during the run.
	Plans []*Plan
	// Prof, when non-nil, collects profiling statistics (and updates arc
	// alias counters on the program).
	Prof *Profile
	// Rec, when non-nil, records the run's execution trace — every tree
	// execution's (PIdx, taken exit, guard-commit bits) plus call framing —
	// for later replay pricing (see Replayer). The caller owns the recorder
	// and finishes it with the run's Ops/Committed totals.
	Rec *trace.Recorder
	// MaxOps is the run's fuel: the hard dynamic-operation budget that turns
	// a runaway program into a typed resilience.ErrFuelExhausted failure
	// instead of a hang (0 = DefaultMaxOps).
	MaxOps int64
	// Ctx, when non-nil, cancels the run: deadline expiry or cancellation
	// surfaces as an error wrapping resilience.ErrDeadline. The context is
	// polled every ctxCheckEveryOps dynamic ops, so cancellation latency is
	// bounded without a per-tree atomic load.
	Ctx context.Context
	// ChaosPanicAt, when positive, makes the run panic with
	// resilience.InjectedPanic once the dynamic op count crosses it — the
	// fault-injection hook that proves panic containment end to end.
	ChaosPanicAt int64
	// Exec selects the execution backend; the zero value is the bytecode
	// engine (ExecBytecode). ExecTree forces the reference tree walker,
	// ExecNative the closure-chain native tier.
	Exec ExecMode
	// TierUp is the adaptive-tiering hot threshold under ExecNative: a tree
	// starts on the bytecode engine and is promoted to a native closure
	// chain only once it has executed TierUp times in this run, so cold
	// trees never pay the native compile. Zero or negative compiles every
	// tree natively up front (the eager behavior, and the zero-value
	// default). Ignored by the other backends. Promotions are counted in
	// the native cache's Counters().TierUps.
	TierUp int64
	// BCode caches compiled bytecode by tree. Callers that run the same
	// program many times (or share it across Runners) should supply one;
	// left nil, the Runner creates a private cache on first use. Both caches
	// are content-addressed, so they may be shared across program clones.
	BCode *bcode.Cache
	// NCode is the native tier's compiled-chain cache, with the same
	// ownership contract as BCode.
	NCode *ncode.Cache
	// Shapes shares pricing skeletons across Runners (see ShapeCache).
	// Unlike the compiled-code caches it keys on tree identity, so it must
	// only be supplied once the program's tree structure is final; left
	// nil, each Runner rebuilds shapes itself.
	Shapes *ShapeCache

	mem        []ir.Value
	out        bytes.Buffer
	ops        int64
	committed  int64
	ctxCheckAt int64 // next ops threshold at which Ctx is polled
	times      []int64
	ctxes      []*treeCtx    // dense, indexed by tree PIdx
	planTabs   [][]planEntry // per plan: dense comp tables by tree PIdx
	profTree   []int64       // per-tree execution counts, flushed into Prof
	fnIdx      map[string]int
	mainIdx    int // Program.Order index of main, for trace call framing
	framePool  [][]ir.Value
	argPool    [][]ir.Value
	maxFrame   int // widest register frame in the program (see Run)
	maxArgs    int // widest call-argument list in the program
}

// priceShape is the schedule-independent pricing skeleton of one tree,
// shared by the interpreting Runner and the trace Replayer.
type priceShape struct {
	exits  []int // Seq indices of exits, in Seq order
	exitOf []int // Seq index -> exit index (meaningful for exit ops only)

	// guarded lists the Seq indices of guarded ops — the only ops whose
	// commit status can vary between executions. Unguarded ops always
	// commit, so their contribution to a path's time is the per-exit
	// constant base[plan][exit] and the pricing memo only needs to key on
	// the guarded ops' commit bits.
	guarded []int

	// onPath[i][e] reports whether op i's block lies on the path to the
	// tree's e-th exit: only such ops contribute to that path's time (a
	// speculative op from an untaken path occupies an issue slot but its
	// write-back gates nothing).
	onPath [][]bool

	// The dependence-profiling loop runs per tree execution over every arc,
	// so t.Arcs is pre-split into dense endpoint-Seq arrays by commit
	// behavior: arcs between two unguarded ops (awFrom/awTo — the common
	// case) always have both endpoints committed and only need the address
	// comparison, while arcs touching a guarded op (gdFrom/gdTo) need the
	// full commit check. awIdx/gdIdx map each entry back to its t.Arcs
	// index for the end-of-run fold.
	awIdx, awFrom, awTo []int32
	gdIdx, gdFrom, gdTo []int32
}

func shapeOf(t *ir.Tree) *priceShape {
	s := &priceShape{exitOf: make([]int, len(t.Ops))}
	for _, op := range t.Ops {
		if op.Kind == ir.OpExit {
			s.exitOf[op.Seq] = len(s.exits)
			s.exits = append(s.exits, op.Seq)
		}
		if op.Guard != ir.NoReg {
			s.guarded = append(s.guarded, op.Seq)
		}
	}
	s.onPath = make([][]bool, len(t.Ops))
	for i, op := range t.Ops {
		s.onPath[i] = make([]bool, len(s.exits))
		for e, exSeq := range s.exits {
			s.onPath[i][e] = t.OnPath(op.Block, t.Ops[exSeq].Block)
		}
	}
	for i, a := range t.Arcs {
		f, to := int32(a.From.Seq), int32(a.To.Seq)
		if a.From.Guard == ir.NoReg && a.To.Guard == ir.NoReg {
			s.awIdx = append(s.awIdx, int32(i))
			s.awFrom = append(s.awFrom, f)
			s.awTo = append(s.awTo, to)
		} else {
			s.gdIdx = append(s.gdIdx, int32(i))
			s.gdFrom = append(s.gdFrom, f)
			s.gdTo = append(s.gdTo, to)
		}
	}
	return s
}

// ShapeCache shares priceShape skeletons across Runner and Replayer
// instances. Building a shape is the dominant fixed cost of standing up a
// run — O(ops × exits) block-reachability walks per tree — and it depends
// only on tree structure, so repeated runs of the same prepared program
// (measurement sweeps, chaos retries, benchmark iterations) can reuse it.
//
// Entries key on tree identity, not content, so a cache must only ever see
// trees whose structure no longer changes: create it after op-level
// transformations (grafting, SpD) are done, never before. Arc profiling
// counters may still mutate — the shape only captures arc endpoints.
type ShapeCache struct {
	mu sync.Mutex
	m  map[*ir.Tree]*priceShape
}

// NewShapeCache returns an empty shape cache, safe for concurrent use.
func NewShapeCache() *ShapeCache {
	return &ShapeCache{m: map[*ir.Tree]*priceShape{}}
}

// of returns the cached shape for t, building it on first sight.
func (sc *ShapeCache) of(t *ir.Tree) *priceShape {
	sc.mu.Lock()
	s := sc.m[t]
	if s == nil {
		s = shapeOf(t)
		sc.m[t] = s
	}
	sc.mu.Unlock()
	return s
}

// intMemo reports whether the pricing memo can key on a packed uint32
// (commit bits | exit index << 24) instead of a byte-string mask. Integer
// hashing is markedly cheaper, and almost every tree qualifies.
func (s *priceShape) intMemo() bool {
	return len(s.guarded) <= 24 && len(s.exits) <= 256
}

// bitBytes returns the packed guard-commit-bit width used by trace events.
func (s *priceShape) bitBytes() int { return (len(s.guarded) + 7) / 8 }

// baseTables computes, for each plan's completion table, the per-exit
// maximum completion cycle over the unguarded on-path ops.
func (s *priceShape) baseTables(t *ir.Tree, comps [][]int64) [][]int64 {
	base := make([][]int64, len(comps))
	for pi, comp := range comps {
		b := make([]int64, len(s.exits))
		for e := range s.exits {
			var max int64
			for i, op := range t.Ops {
				if op.Guard == ir.NoReg && s.onPath[i][e] && comp[i] > max {
					max = comp[i]
				}
			}
			b[e] = max
		}
		base[pi] = b
	}
	return base
}

// treeCtx is the per-tree execution context, built once and cached.
//
// Execution order: ops run in Seq order. Dependence edges always point from
// a lower Seq to a higher one (see ir.BuildDepGraph), so Seq order is
// exactly the deterministic lowest-Seq-first topological order of the
// dependence graph under every latency model — no graph needs to be built
// to execute.
type treeCtx struct {
	*priceShape

	comp [][]int64
	memo map[string][]int64 // (taken exit, guarded-commit mask) -> per-plan time
	// memoInt replaces memo when the shape qualifies (priceShape.intMemo):
	// key = commit bits | exit index << 24.
	memoInt map[uint32][]int64
	base    [][]int64 // [plan][exit]: max completion over unguarded on-path ops

	committed []bool
	addrs     []int64
	mask      []byte // len(guarded) commit bits + one exit byte
	recBits   []byte // packed commit bits scratch for trace recording

	bc   *bcode.Prog // compiled bytecode (nil: tree runs on the walker)
	nc   *ncode.Prog // compiled closure chain (nil: tree runs on the walker)
	bits []byte      // packed commit bits maintained by the compiled executors

	// Adaptive tiering state (ExecNative with Runner.TierUp > 0): execs
	// counts this run's executions on the bytecode rung, tiered marks that
	// the promotion decision was already made (so a declined native compile
	// is not retried every execution).
	execs  int64
	tiered bool

	// benv / nenv are the compiled executors' machine-state views, built
	// once per tree with the bits, profiling tables, memory image and print
	// hook already bound; per execution only the register frame changes
	// (see execBC / execNC).
	benv bcode.Env
	nenv ncode.Env

	// callee / calleeIdx resolve each ExitCall op (by Seq) to its target
	// function and the target's Program.Order index, so the call loop never
	// hashes a function name. nil when the tree makes no calls.
	callee    []*ir.Function
	calleeIdx []int

	profExit []int64 // per-exit execution counts (profiling runs)

	// The dependence profile accumulates densely during compiled-engine
	// profiling runs and Run folds it into the t.Arcs counters once at the
	// end, keeping *MemArc pointer chasing off the per-execution path:
	// nexec counts tree executions (the ExecCount of every always-committed
	// arc), awAlias the same-address hits of the always-committed arcs, and
	// gdExec/gdAlias the both-committed and same-address hits of the arcs
	// touching guarded ops.
	nexec           int64
	awAlias         []int64
	gdExec, gdAlias []int64
}

func (r *Runner) ctx(t *ir.Tree) (*treeCtx, error) {
	if c := r.ctxes[t.PIdx]; c != nil {
		return c, nil
	}
	var shape *priceShape
	if r.Shapes != nil {
		shape = r.Shapes.of(t)
	} else {
		shape = shapeOf(t)
	}
	c := &treeCtx{
		priceShape: shape,
		committed:  make([]bool, len(t.Ops)),
		addrs:      make([]int64, len(t.Ops)),
	}
	// Unguarded ops commit on every execution; execTree only ever rewrites
	// the guarded entries.
	for _, op := range t.Ops {
		if op.Guard == ir.NoReg {
			c.committed[op.Seq] = true
		}
	}
	if c.intMemo() {
		c.memoInt = map[uint32][]int64{}
	} else {
		c.memo = map[string][]int64{}
		c.mask = make([]byte, c.bitBytes()+1)
	}
	if r.Rec != nil {
		c.recBits = make([]byte, c.bitBytes())
	}
	profiling := r.Prof != nil
	switch r.Exec {
	case ExecBytecode:
		if c.bc = r.bcodeProg(t); c.bc != nil {
			c.bits = make([]byte, c.bitBytes())
			c.benv = bcode.Env{Mem: r.mem, Bits: c.bits, Print: r.printVal, Profiling: profiling}
			if profiling {
				c.benv.Committed = c.committed
				c.benv.Addrs = c.addrs
			}
		}
	case ExecNative:
		if r.TierUp > 0 {
			// Adaptive tiering: start the tree on the bytecode engine and
			// defer the native compile until execNC sees it cross the hot
			// threshold. A tree the bytecode compiler declines runs on the
			// walker (the native compiler, which lowers through bytecode,
			// would decline it too).
			if c.bc = r.bcodeProg(t); c.bc != nil {
				c.bits = make([]byte, c.bitBytes())
				c.benv = bcode.Env{Mem: r.mem, Bits: c.bits, Print: r.printVal, Profiling: profiling}
				if profiling {
					c.benv.Committed = c.committed
					c.benv.Addrs = c.addrs
				}
			}
		} else if c.nc = r.ncodeProg(t); c.nc != nil {
			c.bits = make([]byte, c.bitBytes())
			c.nenv = ncode.Env{Mem: r.mem, Bits: c.bits, Print: r.printVal}
			if profiling {
				c.nenv.Committed = c.committed
				c.nenv.Addrs = c.addrs
			}
		}
	}
	for _, op := range t.Ops {
		if op.Kind == ir.OpExit && op.Exit == ir.ExitCall {
			if c.callee == nil {
				c.callee = make([]*ir.Function, len(t.Ops))
				c.calleeIdx = make([]int, len(t.Ops))
			}
			c.callee[op.Seq] = r.Prog.Funcs[op.Callee]
			c.calleeIdx[op.Seq] = r.fnIdx[op.Callee]
		}
	}
	c.profExit = make([]int64, len(c.exits))
	if r.Prof != nil {
		if n := len(c.awIdx); n > 0 {
			c.awAlias = make([]int64, n)
		}
		if n := len(c.gdIdx); n > 0 {
			c.gdExec = make([]int64, n)
			c.gdAlias = make([]int64, n)
		}
	}
	for pi, p := range r.Plans {
		ent := r.planTabs[pi][t.PIdx]
		if ent.tree != t || ent.comp == nil {
			return nil, fmt.Errorf("sim: plan %q has no schedule for tree %s: %w",
				p.Name, t.Name, resilience.ErrMissingSchedule)
		}
		c.comp = append(c.comp, ent.comp)
	}
	c.base = c.baseTables(t, c.comp)
	r.ctxes[t.PIdx] = c
	return c, nil
}

// ctxCheckEveryOps is how often (in dynamic ops) a run polls its context.
// At interpreter speeds this bounds cancellation latency to a few
// milliseconds while keeping the poll off the per-tree hot path.
const ctxCheckEveryOps = 1 << 16

// fuel charges one tree execution's nops dynamic operations against the
// run's budget, polls the deadline context, and fires the chaos-panic hook.
// Shared by both execution engines so fuel semantics cannot diverge. The
// charge is len(tree.Ops) regardless of tier, which is only sound because
// every compiled tier keeps instruction index == Seq — the contract the
// translation validators (internal/verify.CheckBCode/CheckNCode) enforce
// statically on every compiled and store-loaded artifact.
func (r *Runner) fuel(nops int) error {
	maxOps := r.MaxOps
	if maxOps == 0 {
		maxOps = DefaultMaxOps
	}
	r.ops += int64(nops)
	if r.ops > maxOps {
		return fmt.Errorf("sim: operation budget exceeded (%d): %w", maxOps, resilience.ErrFuelExhausted)
	}
	if r.ChaosPanicAt > 0 && r.ops >= r.ChaosPanicAt {
		panic(resilience.InjectedPanic(r.ops))
	}
	if r.Ctx != nil && r.ops >= r.ctxCheckAt {
		r.ctxCheckAt = r.ops + ctxCheckEveryOps
		if err := r.Ctx.Err(); err != nil {
			return fmt.Errorf("sim: run canceled after %d dynamic ops: %w (%w)", r.ops, resilience.ErrDeadline, err)
		}
	}
	return nil
}

// Run executes the program from main and returns the result.
func (r *Runner) Run() (*Result, error) {
	if r.SemLat == nil {
		return nil, fmt.Errorf("sim: SemLat is required")
	}
	r.mem = make([]ir.Value, r.Prog.MemSize)
	for _, g := range r.Prog.Globals {
		copy(r.mem[g.Base:g.Base+g.Size], g.Init)
	}
	r.out.Reset()
	r.ops = 0
	r.committed = 0
	r.ctxCheckAt = 0
	if r.Ctx != nil {
		if err := r.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run canceled before start: %w (%w)", resilience.ErrDeadline, err)
		}
	}
	r.times = make([]int64, len(r.Plans))
	numTrees := r.Prog.IndexTrees()
	r.ctxes = make([]*treeCtx, numTrees)
	r.profTree = make([]int64, numTrees)
	r.planTabs = make([][]planEntry, len(r.Plans))
	for pi, p := range r.Plans {
		r.planTabs[pi] = p.dense(numTrees)
	}
	r.fnIdx = make(map[string]int, len(r.Prog.Order))
	for i, name := range r.Prog.Order {
		r.fnIdx[name] = i
	}
	r.mainIdx = r.fnIdx[r.Prog.Main]
	// Size the frame/arg pools by the widest frame and call in the program,
	// so every pooled buffer fits every function and the steady-state call
	// loop never allocates.
	r.maxFrame, r.maxArgs = 1, 1
	for _, fn := range r.Prog.Funcs {
		if fn.NumRegs > r.maxFrame {
			r.maxFrame = fn.NumRegs
		}
		for _, t := range fn.Trees {
			for _, op := range t.Ops {
				if op.Kind == ir.OpExit && op.Exit == ir.ExitCall && len(op.CallArg) > r.maxArgs {
					r.maxArgs = len(op.CallArg)
				}
			}
		}
	}

	main := r.Prog.Funcs[r.Prog.Main]
	exit, err := r.call(main, r.mainIdx, nil)
	if err != nil {
		return nil, err
	}
	// Execution counted into dense per-tree tables; fold it into the
	// pointer-keyed Profile maps once, at the end of the run.
	if r.Prof != nil {
		for _, name := range r.Prog.Order {
			for _, t := range r.Prog.Funcs[name].Trees {
				if n := r.profTree[t.PIdx]; n > 0 {
					r.Prof.TreeExec[t] += n
				}
				if c := r.ctxes[t.PIdx]; c != nil {
					for e, cnt := range c.profExit {
						if cnt > 0 {
							r.Prof.ExitExec[t.Ops[c.exits[e]]] += cnt
						}
					}
					if c.nexec > 0 {
						for k, i := range c.awIdx {
							t.Arcs[i].ExecCount += c.nexec
							t.Arcs[i].AliasCount += c.awAlias[k]
						}
						for k, i := range c.gdIdx {
							if n := c.gdExec[k]; n > 0 {
								t.Arcs[i].ExecCount += n
								t.Arcs[i].AliasCount += c.gdAlias[k]
							}
						}
					}
				}
			}
		}
	}
	return &Result{
		Output:    r.out.String(),
		Times:     r.times,
		Ops:       r.ops,
		Committed: r.committed,
		Exit:      exit,
	}, nil
}

func (r *Runner) getFrame(n int) []ir.Value {
	if k := len(r.framePool); k > 0 && cap(r.framePool[k-1]) >= n {
		f := r.framePool[k-1][:n]
		r.framePool = r.framePool[:k-1]
		for i := range f {
			f[i] = ir.Value{}
		}
		return f
	}
	// Allocate at the program's widest frame so the pooled buffer fits every
	// function: after the warm-up to peak call depth, the loop is allocation
	// free.
	c := n
	if r.maxFrame > c {
		c = r.maxFrame
	}
	return make([]ir.Value, n, c)
}

func (r *Runner) putFrame(f []ir.Value) {
	if len(r.framePool) < 64 {
		r.framePool = append(r.framePool, f)
	}
}

// getArgs / putArgs pool call-argument buffers the same way frames are
// pooled: the buffer is dead as soon as the callee has copied its parameters
// into its frame, but recursion requires a stack of them, not one scratch.
func (r *Runner) getArgs(n int) []ir.Value {
	if k := len(r.argPool); k > 0 && cap(r.argPool[k-1]) >= n {
		a := r.argPool[k-1][:n]
		r.argPool = r.argPool[:k-1]
		return a
	}
	c := n
	if r.maxArgs > c {
		c = r.maxArgs
	}
	return make([]ir.Value, n, c)
}

func (r *Runner) putArgs(a []ir.Value) {
	if len(r.argPool) < 64 {
		r.argPool = append(r.argPool, a)
	}
}

// call runs one function invocation. fnOrd is fn's Program.Order index,
// resolved by the caller (treeCtx.calleeIdx) so call framing never hashes a
// function name.
func (r *Runner) call(fn *ir.Function, fnOrd int, args []ir.Value) (ir.Value, error) {
	regs := r.getFrame(fn.NumRegs)
	defer r.putFrame(regs)
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	if r.Rec != nil {
		r.Rec.Call(fnOrd)
	}
	cur := fn.Entry
	mode := r.Exec
	for {
		t := fn.Trees[cur]
		var exit *ir.Op
		var err error
		switch mode {
		case ExecTree:
			exit, err = r.execTree(t, regs)
		case ExecNative:
			exit, err = r.execNC(t, regs)
		default:
			exit, err = r.execBC(t, regs)
		}
		if err != nil {
			return ir.Value{}, err
		}
		switch exit.Exit {
		case ir.ExitGoto:
			cur = exit.Target
		case ir.ExitRet:
			if r.Rec != nil {
				r.Rec.Ret()
			}
			if len(exit.Args) > 0 {
				return regs[exit.Args[0]], nil
			}
			return ir.Value{}, nil
		case ir.ExitCall:
			c := r.ctxes[t.PIdx] // built by the exec above
			cargs := r.getArgs(len(exit.CallArg))
			for i, a := range exit.CallArg {
				cargs[i] = regs[a]
			}
			rv, err := r.call(c.callee[exit.Seq], c.calleeIdx[exit.Seq], cargs)
			r.putArgs(cargs)
			if err != nil {
				return ir.Value{}, err
			}
			if exit.Dest != ir.NoReg {
				regs[exit.Dest] = rv
			}
			cur = exit.Target
		}
	}
}

func (r *Runner) clamp(a int64) int64 {
	if a < 0 {
		return 0
	}
	if a >= int64(len(r.mem)) {
		return int64(len(r.mem)) - 1
	}
	return a
}

func guardOK(op *ir.Op, regs []ir.Value) bool {
	if op.Guard == ir.NoReg {
		return true
	}
	nz := regs[op.Guard].I != 0
	if op.GuardNeg {
		return !nz
	}
	return nz
}

// execTree executes one tree over the register frame, returning the taken
// exit op. Ops run in Seq order, which is a topological order of the
// dependence graph (see treeCtx).
func (r *Runner) execTree(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c, err := r.ctx(t)
	if err != nil {
		return nil, err
	}
	if err := r.fuel(len(t.Ops)); err != nil {
		return nil, err
	}

	profiling := r.Prof != nil
	var taken *ir.Op
	var ncommit int64
	for i, op := range t.Ops {
		// Unguarded ops always commit (their committed entries are
		// pre-set); only guarded ops need their guard evaluated.
		ok := true
		if op.Guard != ir.NoReg {
			nz := regs[op.Guard].I != 0
			ok = nz != op.GuardNeg
			c.committed[i] = ok
			if ok {
				ncommit++
			}
		}

		switch op.Kind {
		case ir.OpLoad:
			a := r.clamp(regs[op.Args[0]].I)
			if profiling {
				c.addrs[i] = a
			}
			if ok {
				regs[op.Dest] = r.mem[a]
			}
		case ir.OpStore:
			a := r.clamp(regs[op.Args[0]].I)
			if profiling {
				c.addrs[i] = a
			}
			if ok {
				r.mem[a] = regs[op.Args[1]]
			}
		case ir.OpPrint:
			if ok {
				r.printVal(regs[op.Args[0]], op.PrintFloat)
			}
		case ir.OpExit:
			if ok {
				if taken != nil {
					return nil, fmt.Errorf("tree %s: two exits taken (%%%d and %%%d)", t.Name, taken.ID, op.ID)
				}
				taken = op
			}
		default:
			v := evalPure(op, regs)
			if ok && op.Dest != ir.NoReg {
				regs[op.Dest] = v
			}
		}
	}
	if taken == nil {
		return nil, fmt.Errorf("tree %s: no exit taken", t.Name)
	}
	r.committed += ncommit + int64(len(t.Ops)-len(c.guarded))

	if r.Rec != nil {
		for b := range c.recBits {
			c.recBits[b] = 0
		}
		for k, i := range c.guarded {
			if c.committed[i] {
				c.recBits[k>>3] |= 1 << uint(k&7)
			}
		}
		r.Rec.Tree(t.PIdx, c.exitOf[taken.Seq], c.recBits)
	}
	if len(r.times) > 0 {
		r.price(t, c, c.exitOf[taken.Seq])
	}
	if profiling {
		r.profTree[t.PIdx]++
		c.profExit[c.exitOf[taken.Seq]]++
		for _, a := range t.Arcs {
			if c.committed[a.From.Seq] && c.committed[a.To.Seq] {
				a.ExecCount++
				if c.addrs[a.From.Seq] == c.addrs[a.To.Seq] {
					a.AliasCount++
				}
			}
		}
	}
	return taken, nil
}

// price accumulates the cost of this execution under every plan: the time of
// one tree execution is the maximum completion cycle over the ops that
// committed on the taken path (results of speculative ops from other paths
// gate nothing). Unguarded ops always commit, so their maximum is the
// precomputed per-exit base; only the guarded ops' commit bits vary, and
// they form the memo key together with the taken exit.
func (r *Runner) price(t *ir.Tree, c *treeCtx, exitIdx int) {
	var times []int64
	if c.memoInt != nil {
		var bits uint32
		for k, i := range c.guarded {
			if c.committed[i] {
				bits |= 1 << uint(k)
			}
		}
		key := bits | uint32(exitIdx)<<24
		var ok bool
		times, ok = c.memoInt[key]
		if !ok {
			times = r.priceMiss(c, exitIdx)
			c.memoInt[key] = times
		}
	} else {
		for b := range c.mask {
			c.mask[b] = 0
		}
		for k, i := range c.guarded {
			if c.committed[i] {
				c.mask[k>>3] |= 1 << uint(k&7)
			}
		}
		c.mask[len(c.mask)-1] = byte(exitIdx)
		var ok bool
		times, ok = c.memo[string(c.mask)]
		if !ok {
			times = r.priceMiss(c, exitIdx)
			c.memo[string(c.mask)] = times
		}
	}
	for pi, dt := range times {
		r.times[pi] += dt
	}
}

// priceMiss computes the per-plan time of the current commit pattern.
func (r *Runner) priceMiss(c *treeCtx, exitIdx int) []int64 {
	times := make([]int64, len(r.Plans))
	for pi, comp := range c.comp {
		max := c.base[pi][exitIdx]
		for _, i := range c.guarded {
			if c.committed[i] && c.onPath[i][exitIdx] && comp[i] > max {
				max = comp[i]
			}
		}
		times[pi] = max
	}
	return times
}

// b2i converts a comparison result to the IR's boolean encoding.
func b2i(b bool) ir.Value {
	if b {
		return ir.Value{I: 1, F: 1}
	}
	return ir.Value{}
}

// evalPure computes the result of a side-effect-free, non-memory op.
func evalPure(op *ir.Op, regs []ir.Value) ir.Value {
	// Hot path: resolve the (at most two) operands once, without closures.
	var x, y ir.Value
	switch len(op.Args) {
	case 2:
		x, y = regs[op.Args[0]], regs[op.Args[1]]
	case 1:
		x = regs[op.Args[0]]
	}
	switch op.Kind {
	case ir.OpNop:
		return ir.Value{}
	case ir.OpConst:
		return op.Imm
	case ir.OpMove:
		return x
	case ir.OpAdd:
		return intV(x.I + y.I)
	case ir.OpSub:
		return intV(x.I - y.I)
	case ir.OpMul:
		return intV(x.I * y.I)
	case ir.OpDiv:
		d := y.I
		if d == 0 {
			return ir.Value{}
		}
		if x.I == math.MinInt64 && d == -1 {
			return intV(math.MinInt64)
		}
		return intV(x.I / d)
	case ir.OpRem:
		d := y.I
		if d == 0 {
			return ir.Value{}
		}
		if x.I == math.MinInt64 && d == -1 {
			return intV(0)
		}
		return intV(x.I % d)
	case ir.OpNeg:
		return intV(-x.I)
	case ir.OpAnd:
		return intV(x.I & y.I)
	case ir.OpOr:
		return intV(x.I | y.I)
	case ir.OpXor:
		return intV(x.I ^ y.I)
	case ir.OpNot:
		return intV(^x.I)
	case ir.OpShl:
		return intV(x.I << (uint64(y.I) & 63))
	case ir.OpShr:
		return intV(x.I >> (uint64(y.I) & 63))
	case ir.OpBNot:
		return b2i(x.I == 0)
	case ir.OpBAnd:
		return b2i(x.I != 0 && y.I != 0)
	case ir.OpBAndNot:
		return b2i(x.I != 0 && y.I == 0)
	case ir.OpCmpEQ:
		return b2i(x.I == y.I)
	case ir.OpCmpNE:
		return b2i(x.I != y.I)
	case ir.OpCmpLT:
		return b2i(x.I < y.I)
	case ir.OpCmpLE:
		return b2i(x.I <= y.I)
	case ir.OpCmpGT:
		return b2i(x.I > y.I)
	case ir.OpCmpGE:
		return b2i(x.I >= y.I)
	case ir.OpFAdd:
		return fltV(x.F + y.F)
	case ir.OpFSub:
		return fltV(x.F - y.F)
	case ir.OpFMul:
		return fltV(x.F * y.F)
	case ir.OpFDiv:
		return fltV(x.F / y.F)
	case ir.OpFNeg:
		return fltV(-x.F)
	case ir.OpFCmpEQ:
		return b2i(x.F == y.F)
	case ir.OpFCmpNE:
		return b2i(x.F != y.F)
	case ir.OpFCmpLT:
		return b2i(x.F < y.F)
	case ir.OpFCmpLE:
		return b2i(x.F <= y.F)
	case ir.OpFCmpGT:
		return b2i(x.F > y.F)
	case ir.OpFCmpGE:
		return b2i(x.F >= y.F)
	case ir.OpCvtIF:
		return fltV(float64(x.I))
	case ir.OpCvtFI:
		return cvtFI(x.F)
	case ir.OpSqrt:
		return fltV(math.Sqrt(x.F))
	case ir.OpFAbs:
		return fltV(math.Abs(x.F))
	case ir.OpSin:
		return fltV(math.Sin(x.F))
	case ir.OpCos:
		return fltV(math.Cos(x.F))
	case ir.OpExp:
		return fltV(math.Exp(x.F))
	case ir.OpLog:
		return fltV(math.Log(x.F))
	}
	panic("evalPure: unhandled op kind " + op.Kind.String())
}

func intV(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fltV(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

func cvtFI(f float64) ir.Value {
	if math.IsNaN(f) {
		return ir.Value{}
	}
	if f > math.MaxInt64 {
		return intV(math.MaxInt64)
	}
	if f < math.MinInt64 {
		return intV(math.MinInt64)
	}
	return intV(int64(f))
}

func (r *Runner) printVal(v ir.Value, isFloat bool) {
	if isFloat {
		f := v.F
		// Round to 6 significant decimals so that output checksums are
		// robust against benign floating-point noise across schedules.
		r.out.WriteString(strconv.FormatFloat(f, 'g', 6, 64))
	} else {
		r.out.WriteString(strconv.FormatInt(v.I, 10))
	}
	r.out.WriteByte('\n')
}
