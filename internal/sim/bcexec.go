package sim

import (
	"fmt"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// ExecMode selects the Runner's execution backend.
type ExecMode uint8

// Execution backends. The zero value is the bytecode engine: every tree is
// lowered once to a flat register-machine program (internal/bcode) and run
// by a tight dispatch loop. The native engine lowers further, to chains of
// pre-bound closures with window-fused superinstructions (internal/ncode) —
// the fastest tier and the CLIs' default, optionally entered adaptively per
// tree via Runner.TierUp. The tree walker is the reference interpreter both
// compiled engines are differentially tested against; it also serves as the
// automatic fallback for any tree the compilers decline.
const (
	ExecBytecode ExecMode = iota
	ExecTree
	ExecNative
)

func (m ExecMode) String() string {
	switch m {
	case ExecBytecode:
		return "bcode"
	case ExecTree:
		return "tree"
	case ExecNative:
		return "native"
	}
	return fmt.Sprintf("execmode(%d)", int(m))
}

// execBC executes one tree through its compiled bytecode, mirroring execTree
// exactly: same operation accounting, commit bits, trace events, pricing and
// profiling. Trees the compiler declined fall back to the tree walker.
func (r *Runner) execBC(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c, err := r.ctx(t)
	if err != nil {
		return nil, err
	}
	if c.bc == nil {
		return r.execTree(t, regs)
	}
	if err := r.fuel(len(t.Ops)); err != nil {
		return nil, err
	}

	bits := c.bits
	for i := range bits {
		bits[i] = 0
	}
	// Everything but the register frame is bound into the per-tree Env at
	// ctx build; rewriting the other slice headers here would cost four GC
	// write barriers per execution.
	c.benv.Regs = regs
	takenSeq, dupSeq, ncommit := c.bc.Exec(&c.benv)
	return r.finishPacked(t, c, takenSeq, dupSeq, ncommit)
}

// finishPacked completes one compiled-engine tree execution — shared by the
// bytecode and native tiers, whose executors both report a (taken, dup,
// ncommit) triple over packed commit bits: committed-op accounting, trace
// recording, pricing, and profiling accumulation, all identical to the tree
// walker's.
func (r *Runner) finishPacked(t *ir.Tree, c *treeCtx, takenSeq, dupSeq int, ncommit int64) (*ir.Op, error) {
	if dupSeq >= 0 {
		return nil, fmt.Errorf("tree %s: two exits taken (%%%d and %%%d)",
			t.Name, t.Ops[takenSeq].ID, t.Ops[dupSeq].ID)
	}
	if takenSeq < 0 {
		return nil, fmt.Errorf("tree %s: no exit taken", t.Name)
	}
	taken := t.Ops[takenSeq]
	r.committed += ncommit + int64(len(t.Ops)-len(c.guarded))

	if r.Rec != nil {
		r.Rec.Tree(t.PIdx, c.exitOf[takenSeq], c.bits)
	}
	if len(r.times) > 0 {
		r.priceBits(c, c.exitOf[takenSeq])
	}
	if r.Prof != nil {
		r.profTree[t.PIdx]++
		c.profExit[c.exitOf[takenSeq]]++
		c.nexec++
		addrs := c.addrs
		awTo, awAlias := c.awTo, c.awAlias
		for k, f := range c.awFrom {
			if addrs[f] == addrs[awTo[k]] {
				awAlias[k]++
			}
		}
		if len(c.gdFrom) > 0 {
			committed := c.committed
			gdTo := c.gdTo
			for k, f := range c.gdFrom {
				to := gdTo[k]
				if committed[f] && committed[to] {
					c.gdExec[k]++
					if addrs[f] == addrs[to] {
						c.gdAlias[k]++
					}
				}
			}
		}
	}
	return taken, nil
}

// priceBits is the bytecode counterpart of price: the commit pattern arrives
// already packed (the executor maintains the bits), so the memo key is
// assembled straight from the bit bytes. Keys and priced times are identical
// to the tree walker's — bit k is the k-th guarded op in Seq order on both
// paths.
func (r *Runner) priceBits(c *treeCtx, exitIdx int) {
	bits := c.bits
	var times []int64
	if c.memoInt != nil {
		var b uint32
		switch len(bits) {
		case 0:
		case 1:
			b = uint32(bits[0])
		case 2:
			b = uint32(bits[0]) | uint32(bits[1])<<8
		default:
			b = uint32(bits[0]) | uint32(bits[1])<<8 | uint32(bits[2])<<16
		}
		key := b | uint32(exitIdx)<<24
		var ok bool
		times, ok = c.memoInt[key]
		if !ok {
			times = priceBitsTables(c.priceShape, c.comp, c.base, bits, exitIdx)
			c.memoInt[key] = times
		}
	} else {
		copy(c.mask, bits)
		c.mask[len(c.mask)-1] = byte(exitIdx)
		var ok bool
		times, ok = c.memo[string(c.mask)]
		if !ok {
			times = priceBitsTables(c.priceShape, c.comp, c.base, bits, exitIdx)
			c.memo[string(c.mask)] = times
		}
	}
	for pi, dt := range times {
		r.times[pi] += dt
	}
}

// priceBitsTables computes the per-plan time of one packed commit pattern:
// the maximum completion cycle over the committed on-path ops, floored by
// the per-exit base over the always-committing ops. Shared by the bytecode
// executor's memo misses and the trace Replayer.
func priceBitsTables(s *priceShape, comp, base [][]int64, bits []byte, exitIdx int) []int64 {
	times := make([]int64, len(comp))
	for pi, cp := range comp {
		max := base[pi][exitIdx]
		for k, i := range s.guarded {
			if bits[k>>3]&(1<<uint(k&7)) != 0 && s.onPath[i][exitIdx] && cp[i] > max {
				max = cp[i]
			}
		}
		times[pi] = max
	}
	return times
}

// bcodeProg resolves the tree's compiled bytecode through the Runner's cache
// (creating a private cache on first use when the caller supplied none).
func (r *Runner) bcodeProg(t *ir.Tree) *bcode.Prog {
	if r.BCode == nil {
		r.BCode = bcode.NewCache(nil)
	}
	return r.BCode.Get(t)
}
