package sim

import (
	"fmt"

	"specdis/internal/bcode"
	"specdis/internal/ir"
)

// ExecMode selects the Runner's execution backend.
type ExecMode uint8

// Execution backends. The bytecode engine is the default: every tree is
// lowered once to a flat register-machine program (internal/bcode) and run
// by a tight dispatch loop. The tree walker is the reference interpreter the
// bytecode engine is differentially tested against; it also serves as the
// automatic fallback for any tree the bytecode compiler declines.
const (
	ExecBytecode ExecMode = iota
	ExecTree
)

func (m ExecMode) String() string {
	switch m {
	case ExecBytecode:
		return "bcode"
	case ExecTree:
		return "tree"
	}
	return fmt.Sprintf("execmode(%d)", int(m))
}

// execBC executes one tree through its compiled bytecode, mirroring execTree
// exactly: same operation accounting, commit bits, trace events, pricing and
// profiling. Trees the compiler declined fall back to the tree walker.
func (r *Runner) execBC(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c, err := r.ctx(t)
	if err != nil {
		return nil, err
	}
	if c.bc == nil {
		return r.execTree(t, regs)
	}
	if err := r.fuel(len(t.Ops)); err != nil {
		return nil, err
	}

	bits := c.bits
	for i := range bits {
		bits[i] = 0
	}
	profiling := r.Prof != nil
	r.benv.Regs = regs
	r.benv.Bits = bits
	r.benv.Profiling = profiling
	if profiling {
		r.benv.Committed = c.committed
		r.benv.Addrs = c.addrs
	}
	takenSeq, dupSeq, ncommit := c.bc.Exec(&r.benv)
	if dupSeq >= 0 {
		return nil, fmt.Errorf("tree %s: two exits taken (%%%d and %%%d)",
			t.Name, t.Ops[takenSeq].ID, t.Ops[dupSeq].ID)
	}
	if takenSeq < 0 {
		return nil, fmt.Errorf("tree %s: no exit taken", t.Name)
	}
	taken := t.Ops[takenSeq]
	r.committed += ncommit + int64(len(t.Ops)-len(c.guarded))

	if r.Rec != nil {
		r.Rec.Tree(t.PIdx, c.exitOf[takenSeq], bits)
	}
	if len(r.times) > 0 {
		r.priceBits(c, c.exitOf[takenSeq])
	}
	if profiling {
		r.profTree[t.PIdx]++
		c.profExit[c.exitOf[takenSeq]]++
		for _, a := range t.Arcs {
			if c.committed[a.From.Seq] && c.committed[a.To.Seq] {
				a.ExecCount++
				if c.addrs[a.From.Seq] == c.addrs[a.To.Seq] {
					a.AliasCount++
				}
			}
		}
	}
	return taken, nil
}

// priceBits is the bytecode counterpart of price: the commit pattern arrives
// already packed (the executor maintains the bits), so the memo key is
// assembled straight from the bit bytes. Keys and priced times are identical
// to the tree walker's — bit k is the k-th guarded op in Seq order on both
// paths.
func (r *Runner) priceBits(c *treeCtx, exitIdx int) {
	bits := c.bits
	var times []int64
	if c.memoInt != nil {
		var b uint32
		switch len(bits) {
		case 0:
		case 1:
			b = uint32(bits[0])
		case 2:
			b = uint32(bits[0]) | uint32(bits[1])<<8
		default:
			b = uint32(bits[0]) | uint32(bits[1])<<8 | uint32(bits[2])<<16
		}
		key := b | uint32(exitIdx)<<24
		var ok bool
		times, ok = c.memoInt[key]
		if !ok {
			times = priceBitsTables(c.priceShape, c.comp, c.base, bits, exitIdx)
			c.memoInt[key] = times
		}
	} else {
		copy(c.mask, bits)
		c.mask[len(c.mask)-1] = byte(exitIdx)
		var ok bool
		times, ok = c.memo[string(c.mask)]
		if !ok {
			times = priceBitsTables(c.priceShape, c.comp, c.base, bits, exitIdx)
			c.memo[string(c.mask)] = times
		}
	}
	for pi, dt := range times {
		r.times[pi] += dt
	}
}

// priceBitsTables computes the per-plan time of one packed commit pattern:
// the maximum completion cycle over the committed on-path ops, floored by
// the per-exit base over the always-committing ops. Shared by the bytecode
// executor's memo misses and the trace Replayer.
func priceBitsTables(s *priceShape, comp, base [][]int64, bits []byte, exitIdx int) []int64 {
	times := make([]int64, len(comp))
	for pi, cp := range comp {
		max := base[pi][exitIdx]
		for k, i := range s.guarded {
			if bits[k>>3]&(1<<uint(k&7)) != 0 && s.onPath[i][exitIdx] && cp[i] > max {
				max = cp[i]
			}
		}
		times[pi] = max
	}
	return times
}

// bcodeProg resolves the tree's compiled bytecode through the Runner's cache
// (creating a private cache on first use when the caller supplied none).
func (r *Runner) bcodeProg(t *ir.Tree) *bcode.Prog {
	if r.BCode == nil {
		r.BCode = bcode.NewCache(nil)
	}
	return r.BCode.Get(t)
}
