package sim

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/resilience"
	"specdis/internal/trace"
)

// Replayer prices a program under machine schedules by replaying a recorded
// execution trace instead of interpreting the program: each distinct tree
// execution pattern — (tree, taken exit, guard-commit bits) — is priced once
// with the same arithmetic the interpreting Runner memoizes, then multiplied
// by the pattern's total trip count from the trace's histogram (Trace.Hist).
// The resulting Times are bit-identical to a timed Run (int64 cycle sums
// commute), but not a single operand is evaluated and the pricing work is
// proportional to the number of distinct patterns, not dynamic events.
//
// The trace must come from an execution-equivalent program: one whose tree
// structure (tree indices, ops, guards, exits) matches Prog's. Traces
// recorded before arc-only transformations (alias resolution, PERFECT's arc
// removal) remain valid; traces recorded before op-level transformations
// (SpD) do not.
type Replayer struct {
	Prog  *ir.Program
	Plans []*Plan
	// Shapes optionally shares pricing skeletons with the interpreting
	// Runners (see ShapeCache); left nil, shapes are rebuilt per Replay.
	Shapes *ShapeCache
}

// replayCtx is the per-tree pricing context of a replay: the shared pricing
// skeleton plus this replay's completion-cycle tables.
type replayCtx struct {
	*priceShape
	comp [][]int64
	base [][]int64
}

// Replay prices the trace and returns the per-plan cycle totals. Ops and
// Committed are taken from the recorded run (replay performs no semantic
// work); Output is empty.
func (rp *Replayer) Replay(tr *trace.Trace) (*Result, error) {
	h, err := tr.Hist()
	if err != nil {
		return nil, err
	}
	if h.MaxFn >= len(rp.Prog.Order) {
		return nil, fmt.Errorf("sim: trace function index %d out of range", h.MaxFn)
	}
	numTrees := rp.Prog.IndexTrees()
	trees := make([]*ir.Tree, numTrees)
	for _, name := range rp.Prog.Order {
		for _, t := range rp.Prog.Funcs[name].Trees {
			trees[t.PIdx] = t
		}
	}
	planTabs := make([][]planEntry, len(rp.Plans))
	for pi, p := range rp.Plans {
		planTabs[pi] = p.dense(numTrees)
	}
	ctxes := make([]*replayCtx, numTrees)
	times := make([]int64, len(rp.Plans))

	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Idx >= numTrees {
			return nil, fmt.Errorf("sim: trace tree index %d out of range (program has %d trees)", e.Idx, numTrees)
		}
		c := ctxes[e.Idx]
		if c == nil {
			c, err = rp.ctx(trees[e.Idx], planTabs)
			if err != nil {
				return nil, err
			}
			ctxes[e.Idx] = c
		}
		if e.Exit >= len(c.exits) {
			return nil, fmt.Errorf("sim: trace exit %d out of range for tree %s", e.Exit, trees[e.Idx].Name)
		}
		if len(e.Bits) != c.bitBytes() {
			return nil, fmt.Errorf("sim: trace commit bits are %d bytes, tree %s has %d guarded ops — trace does not match program",
				len(e.Bits), trees[e.Idx].Name, len(c.guarded))
		}
		if n := len(c.guarded) & 7; n != 0 && e.Bits[len(e.Bits)-1]>>uint(n) != 0 {
			return nil, fmt.Errorf("sim: trace commit bits for tree %s set beyond its %d guarded ops", trees[e.Idx].Name, len(c.guarded))
		}
		// Histogram entries are distinct patterns, so each is priced exactly
		// once — no memo needed.
		ts := c.priceBits(e.Bits, e.Exit)
		for pi, dt := range ts {
			times[pi] += dt * e.Count
		}
	}
	return &Result{Times: times, Ops: tr.Ops, Committed: tr.Committed}, nil
}

// ctx builds the pricing context for one tree, mirroring Runner.ctx.
func (rp *Replayer) ctx(t *ir.Tree, planTabs [][]planEntry) (*replayCtx, error) {
	var shape *priceShape
	if rp.Shapes != nil {
		shape = rp.Shapes.of(t)
	} else {
		shape = shapeOf(t)
	}
	c := &replayCtx{priceShape: shape}
	for pi, p := range rp.Plans {
		ent := planTabs[pi][t.PIdx]
		if ent.tree != t || ent.comp == nil {
			return nil, fmt.Errorf("sim: plan %q has no schedule for tree %s: %w",
				p.Name, t.Name, resilience.ErrMissingSchedule)
		}
		c.comp = append(c.comp, ent.comp)
	}
	c.base = c.baseTables(t, c.comp)
	return c, nil
}

// priceBits computes the per-plan time of one commit pattern from packed
// bits, the replay counterpart of Runner.priceMiss.
func (c *replayCtx) priceBits(bits []byte, exitIdx int) []int64 {
	return priceBitsTables(c.priceShape, c.comp, c.base, bits, exitIdx)
}
