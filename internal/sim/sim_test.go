package sim_test

import (
	"strings"
	"testing"

	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestDivisionByZeroIsDefined(t *testing.T) {
	p := compileSrc(t, `
void main() {
	int z = 0;
	print(5 / z);
	print(5 % z);
	float f = 0.0;
	print(1.0 / f);
}`)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc()}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.Output), "\n")
	if lines[0] != "0" || lines[1] != "0" {
		t.Errorf("integer div/rem by zero: %v", lines)
	}
	if lines[2] != "+Inf" {
		t.Errorf("float div by zero: %v", lines)
	}
}

func TestAddressClamping(t *testing.T) {
	// Committed loads through wild addresses clamp into the memory image
	// instead of crashing (the paper's non-faulting load assumption).
	p := compileSrc(t, `
int a[4];
int peek(int i) { return a[i]; }
void main() {
	print(peek(1000000));
	print(peek(-1000000));
	print(peek(2));
}`)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc()}
	if _, err := r.Run(); err != nil {
		t.Fatalf("clamped access crashed: %v", err)
	}
}

func TestMaxOpsGuard(t *testing.T) {
	p := compileSrc(t, `void main() { while (1) { } }`)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc(), MaxOps: 10000}
	if _, err := r.Run(); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

func TestProfileCounts(t *testing.T) {
	p := compileSrc(t, `
int a[8];
int f(int i, int j) {
	a[i] = 1;
	return a[j];
}
void main() {
	int s = 0;
	for (int k = 0; k < 10; k = k + 1) { s = s + f(k % 8, (k + 4) % 8); }
	for (int k = 0; k < 6; k = k + 1) { s = s + f(3, 3); }
	print(s);
}`)
	prof := sim.NewProfile()
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc(), Prof: prof}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// f's entry tree executed 16 times.
	fTree := p.Funcs["f"].Trees[p.Funcs["f"].Entry]
	if got := prof.TreeExecCount(fTree); got != 16 {
		t.Errorf("f entry tree executed %d times, want 16", got)
	}
	// The store/load arc in f aliased exactly 6 of 16 executions.
	var arc *ir.MemArc
	for _, tr := range p.Funcs["f"].Trees {
		for _, a := range tr.Arcs {
			if a.Kind == ir.DepRAW {
				arc = a
			}
		}
	}
	if arc == nil {
		t.Fatal("no RAW arc in f")
	}
	if arc.ExecCount != 16 || arc.AliasCount != 6 {
		t.Errorf("arc counters exec=%d alias=%d, want 16/6", arc.ExecCount, arc.AliasCount)
	}
	if p := arc.AliasProb(0.1); p != 6.0/16 {
		t.Errorf("alias prob %v", p)
	}
	// Exit probabilities over the main loop tree sum to ~1.
	for _, tr := range p.Funcs["main"].Trees {
		if prof.TreeExecCount(tr) == 0 {
			continue
		}
		var sum float64
		for _, ex := range tr.Exits() {
			sum += prof.ExitProb(tr, ex)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("tree %s exit probs sum to %v", tr.Name, sum)
		}
	}
}

func TestPlanPricingMatchesHandComputation(t *testing.T) {
	// One straight-line tree: cycles per execution = schedule completion of
	// the committed ops; main executes it once.
	src := `void main() { print(2 + 3); }`
	p := compileSrc(t, src)
	m := machine.New(1, 2)
	plan := sim.NewPlan("one")
	var total int64
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			s := sched.Tree(tr, m)
			plan.SetTree(tr, s.Comp)
			if len(p.Funcs[name].Trees) == 1 {
				total = s.Length()
			}
		}
	}
	r := &sim.Runner{Prog: p, SemLat: m.LatencyFunc(), Plans: []*sim.Plan{plan}}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Times[0] != total {
		t.Errorf("priced %d cycles, schedule length %d", res.Times[0], total)
	}
}

func TestUntakenPathDoesNotGateTime(t *testing.T) {
	// A never-taken branch hides an expensive divide chain; with guarded
	// speculation its completion must not lengthen the hot path.
	src := `
int flag = 0;
void main() {
	int s = 1;
	for (int i = 0; i < 100; i = i + 1) {
		if (flag == 1) {
			s = s / 7 / 3 / 5 / 2;  // four 7-cycle divides, never taken
		} else {
			s = s + 1;
		}
	}
	print(s);
}`
	p := compileSrc(t, src)
	m := machine.Infinite(2)
	plan := sim.NewPlan("inf")
	for _, name := range p.Order {
		for _, tr := range p.Funcs[name].Trees {
			plan.SetTree(tr, sched.Tree(tr, m).Comp)
		}
	}
	r := &sim.Runner{Prog: p, SemLat: m.LatencyFunc(), Plans: []*sim.Plan{plan}}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The divide chain alone would cost 4*7 = 28 cycles per iteration; the
	// taken path costs a handful. Bound generously.
	if res.Times[0] > 100*20 {
		t.Errorf("cold path gates the hot path: %d cycles for 100 iterations", res.Times[0])
	}
}

func TestRequiresSemLat(t *testing.T) {
	p := compileSrc(t, `void main() { print(1); }`)
	r := &sim.Runner{Prog: p}
	if _, err := r.Run(); err == nil {
		t.Fatal("missing SemLat accepted")
	}
}

func TestMainExitValue(t *testing.T) {
	p := compileSrc(t, `int main2() { return 42; } void main() { print(main2()); }`)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc()}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Ops <= 0 {
		t.Error("no ops counted")
	}
}

func TestFloatPrintFormatting(t *testing.T) {
	p := compileSrc(t, `void main() { print(0.1 + 0.2); print(1.0 / 3.0); }`)
	r := &sim.Runner{Prog: p, SemLat: machine.Infinite(2).LatencyFunc()}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rounded to 6 significant digits for schedule-independent output.
	if res.Output != "0.3\n0.333333\n" {
		t.Errorf("output %q", res.Output)
	}
}
