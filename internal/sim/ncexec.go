package sim

import (
	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// execNC executes one tree through its compiled closure chain, mirroring
// execBC exactly: same fuel charge, operation accounting, commit bits, trace
// events, pricing and profiling. Trees the compiler declined fall back to
// the tree walker.
//
// Under adaptive tiering (Runner.TierUp > 0) the tree starts on the bytecode
// engine and is promoted here once its per-run execution count crosses the
// threshold — the results are byte-identical on every tier, so promotion is
// invisible to everything but the wall clock and the compile counters.
func (r *Runner) execNC(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c, err := r.ctx(t)
	if err != nil {
		return nil, err
	}
	if c.nc == nil {
		if c.bc == nil {
			return r.execTree(t, regs)
		}
		// The tree is on the bytecode rung; count this run's executions and
		// promote at the threshold. tiered keeps a declined promotion from
		// being retried every execution.
		c.execs++
		if c.tiered || c.execs < r.TierUp {
			return r.execBC(t, regs)
		}
		c.tiered = true
		if c.nc = r.ncodeProg(t); c.nc == nil {
			return r.execBC(t, regs)
		}
		c.nenv = ncode.Env{Mem: r.mem, Bits: c.bits, Print: r.printVal}
		if r.Prof != nil {
			c.nenv.Committed = c.committed
			c.nenv.Addrs = c.addrs
		}
		if ctrs := r.NCode.Counters(); ctrs != nil {
			ctrs.TierUps.Add(1)
		}
	}
	if err := r.fuel(len(t.Ops)); err != nil {
		return nil, err
	}

	bits := c.bits
	for i := range bits {
		bits[i] = 0
	}
	// Everything but the register frame is bound into the per-tree Env at
	// ctx build; rewriting the other slice headers here would cost four GC
	// write barriers per execution.
	c.nenv.Regs = regs
	takenSeq, dupSeq, ncommit := c.nc.Exec(&c.nenv, r.Prof != nil)
	return r.finishPacked(t, c, takenSeq, dupSeq, ncommit)
}

// ncodeProg resolves the tree's compiled closure chain through the Runner's
// cache (creating a private cache on first use when the caller supplied
// none).
func (r *Runner) ncodeProg(t *ir.Tree) *ncode.Prog {
	if r.NCode == nil {
		r.NCode = ncode.NewCache(nil)
	}
	return r.NCode.Get(t)
}
