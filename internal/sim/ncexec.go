package sim

import (
	"specdis/internal/ir"
	"specdis/internal/ncode"
)

// execNC executes one tree through its compiled closure chain, mirroring
// execBC exactly: same fuel charge, operation accounting, commit bits, trace
// events, pricing and profiling. Trees the compiler declined fall back to
// the tree walker.
func (r *Runner) execNC(t *ir.Tree, regs []ir.Value) (*ir.Op, error) {
	c, err := r.ctx(t)
	if err != nil {
		return nil, err
	}
	if c.nc == nil {
		return r.execTree(t, regs)
	}
	if err := r.fuel(len(t.Ops)); err != nil {
		return nil, err
	}

	bits := c.bits
	for i := range bits {
		bits[i] = 0
	}
	// Everything but the register frame is bound into the per-tree Env at
	// ctx build; rewriting the other slice headers here would cost four GC
	// write barriers per execution.
	c.nenv.Regs = regs
	takenSeq, dupSeq, ncommit := c.nc.Exec(&c.nenv, r.Prof != nil)
	return r.finishPacked(t, c, takenSeq, dupSeq, ncommit)
}

// ncodeProg resolves the tree's compiled closure chain through the Runner's
// cache (creating a private cache on first use when the caller supplied
// none).
func (r *Runner) ncodeProg(t *ir.Tree) *ncode.Prog {
	if r.NCode == nil {
		r.NCode = ncode.NewCache(nil)
	}
	return r.NCode.Get(t)
}
