package sim_test

import (
	"reflect"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/trace"
)

// stdPlans builds the nine standard machine models and their plans for prog.
func stdPlans(t testing.TB, prog *ir.Program, memLat int) []*sim.Plan {
	t.Helper()
	models := []machine.Model{machine.Infinite(memLat)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, memLat))
	}
	plans := make([]*sim.Plan, len(models))
	for i, m := range models {
		plans[i] = sim.NewPlan(m.Name)
	}
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			g := ir.BuildDepGraph(t, machine.Infinite(memLat).LatencyFunc())
			for i, m := range models {
				plans[i].SetTree(t, sched.FromGraph(g, m.NumFUs).Comp)
			}
		}
	}
	return plans
}

// TestReplayMatchesInterpretation is the core equivalence property of the
// trace backend: for every benchmark, a timed interpretation and a replay of
// the same run's trace must report bit-identical per-plan cycle totals and
// operation counts.
func TestReplayMatchesInterpretation(t *testing.T) {
	for _, bm := range bench.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := compile.Compile(bm.Source)
			if err != nil {
				t.Fatal(err)
			}
			plans := stdPlans(t, prog, 2)
			rec := trace.NewRecorder()
			r := &sim.Runner{
				Prog:   prog,
				SemLat: machine.Infinite(2).LatencyFunc(),
				Plans:  plans,
				Rec:    rec,
			}
			interp, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			tr := rec.Finish(interp.Ops, interp.Committed)
			if tr.TreeExecs == 0 {
				t.Fatal("trace recorded no tree executions")
			}

			rp := &sim.Replayer{Prog: prog, Plans: plans}
			replay, err := rp.Replay(tr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(replay.Times, interp.Times) {
				t.Fatalf("replay times %v\ninterp times %v", replay.Times, interp.Times)
			}
			if replay.Ops != interp.Ops || replay.Committed != interp.Committed {
				t.Fatalf("replay ops/committed = %d/%d, interp %d/%d",
					replay.Ops, replay.Committed, interp.Ops, interp.Committed)
			}
		})
	}
}

// TestReplayRejectsMismatchedProgram checks replay refuses a trace from a
// structurally different program instead of pricing garbage.
func TestReplayRejectsMismatchedProgram(t *testing.T) {
	src1 := `
int a[8];
void main() {
	for (int i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
	int s = 0;
	for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
	print(s);
}`
	// More trees and guards than src1.
	src2 := `
int a[8];
int b[8];
void main() {
	for (int i = 0; i < 8; i = i + 1) { a[i] = i; b[i] = i * 2; }
	int s = 0;
	for (int i = 0; i < 8; i = i + 1) {
		if (a[i] > 3) { b[i % 8] += a[i]; }
		s = s + b[i];
	}
	print(s);
}`
	run := func(src string) (*ir.Program, []*sim.Plan, *trace.Trace) {
		prog, err := compile.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		plans := stdPlans(t, prog, 2)
		rec := trace.NewRecorder()
		r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Plans: plans, Rec: rec}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return prog, plans, rec.Finish(res.Ops, res.Committed)
	}
	prog1, plans1, _ := run(src1)
	_, _, tr2 := run(src2)

	rp := &sim.Replayer{Prog: prog1, Plans: plans1}
	if _, err := rp.Replay(tr2); err == nil {
		t.Fatal("replay accepted a trace from a different program")
	}
}

// TestReplayRejectsCorruptTrace checks decode errors surface from Replay.
func TestReplayRejectsCorruptTrace(t *testing.T) {
	prog, err := compile.Compile(`void main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	rp := &sim.Replayer{Prog: prog, Plans: stdPlans(t, prog, 2)}
	var tr trace.Trace
	if _, err := rp.Replay(&tr); err != nil {
		t.Fatalf("empty trace must replay cleanly, got %v", err)
	}
}

// BenchmarkExecTreeReplay is the replay counterpart of BenchmarkExecTree:
// pricing the fft benchmark under the nine standard models from a recorded
// trace (histogram already aggregated, as in the steady state of a run).
func BenchmarkExecTreeReplay(b *testing.B) {
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	plans := stdPlans(b, prog, 2)
	rec := trace.NewRecorder()
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Rec: rec}
	res, err := r.Run()
	if err != nil {
		b.Fatal(err)
	}
	tr := rec.Finish(res.Ops, res.Committed)
	if _, err := tr.Hist(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp := &sim.Replayer{Prog: prog, Plans: plans}
		if _, err := rp.Replay(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCapture times a profiling interpretation with recording on —
// the capture-side overhead the replay backend pays once per program.
func BenchmarkTraceCapture(b *testing.B) {
	bm := bench.ByName("fft")
	prog, err := compile.Compile(bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder()
		r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Rec: rec}
		res, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if tr := rec.Finish(res.Ops, res.Committed); tr.TreeExecs == 0 {
			b.Fatal("no tree executions recorded")
		}
	}
}
