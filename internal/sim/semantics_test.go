package sim_test

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
)

// execModes are the three execution backends every semantics case runs on:
// the bytecode engine, the native closure-chain engine and the reference
// tree walker must agree op for op.
var execModes = []sim.ExecMode{sim.ExecBytecode, sim.ExecTree, sim.ExecNative}

// evalOp builds a one-op program (const inputs → op → print) and runs it on
// the given backend, returning the printed line. It exercises the execution
// semantics of every operation kind end to end.
func evalOp(t *testing.T, mode sim.ExecMode, kind ir.OpKind, isFloat bool, a, b ir.Value, nargs int) string {
	t.Helper()
	fn := &ir.Function{Name: "main"}
	tr := &ir.Tree{Fn: fn, Name: "main.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}

	ra := fn.NewReg()
	ca := tr.NewOp(ir.OpConst, nil, ra)
	ca.Imm = a
	args := []ir.Reg{ra}
	if nargs == 2 {
		rb := fn.NewReg()
		cb := tr.NewOp(ir.OpConst, nil, rb)
		cb.Imm = b
		args = append(args, rb)
	}
	d := fn.NewReg()
	tr.NewOp(kind, args, d)
	pr := tr.NewOp(ir.OpPrint, []ir.Reg{d}, ir.NoReg)
	pr.PrintFloat = isFloat
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet

	prog := &ir.Program{
		Funcs: map[string]*ir.Function{"main": fn}, Order: []string{"main"},
		Main: "main", MemSize: 64,
	}
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Exec: mode}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return strings.TrimSpace(res.Output)
}

func iv(i int64) ir.Value   { return ir.Value{I: i, F: float64(i)} }
func fv(f float64) ir.Value { return ir.Value{I: int64(f), F: f} }

func TestIntegerOpSemantics(t *testing.T) {
	cases := []struct {
		kind  ir.OpKind
		a, b  int64
		nargs int
		want  int64
	}{
		{ir.OpMove, 42, 0, 1, 42},
		{ir.OpAdd, 5, 7, 2, 12},
		{ir.OpSub, 5, 7, 2, -2},
		{ir.OpMul, -3, 9, 2, -27},
		{ir.OpDiv, 17, 5, 2, 3},
		{ir.OpDiv, 17, 0, 2, 0},                         // non-trapping
		{ir.OpDiv, math.MinInt64, -1, 2, math.MinInt64}, // overflow defined
		{ir.OpRem, 17, 5, 2, 2},
		{ir.OpRem, 17, 0, 2, 0},
		{ir.OpRem, math.MinInt64, -1, 2, 0},
		{ir.OpNeg, 9, 0, 1, -9},
		{ir.OpAnd, 12, 10, 2, 8},
		{ir.OpOr, 12, 10, 2, 14},
		{ir.OpXor, 12, 10, 2, 6},
		{ir.OpNot, 0, 0, 1, -1},
		{ir.OpShl, 3, 4, 2, 48},
		{ir.OpShl, 1, 64, 2, 1}, // shift amounts mask to 6 bits
		{ir.OpShr, -16, 2, 2, -4},
		{ir.OpBNot, 0, 0, 1, 1},
		{ir.OpBNot, 7, 0, 1, 0},
		{ir.OpBAnd, 2, 3, 2, 1},
		{ir.OpBAnd, 2, 0, 2, 0},
		{ir.OpBAndNot, 2, 0, 2, 1},
		{ir.OpBAndNot, 2, 3, 2, 0},
		{ir.OpCmpEQ, 4, 4, 2, 1},
		{ir.OpCmpNE, 4, 4, 2, 0},
		{ir.OpCmpLT, 3, 4, 2, 1},
		{ir.OpCmpLE, 4, 4, 2, 1},
		{ir.OpCmpGT, 4, 3, 2, 1},
		{ir.OpCmpGE, 3, 4, 2, 0},
		{ir.OpCvtFI, 0, 0, 1, 0},
	}
	for _, mode := range execModes {
		for _, c := range cases {
			got := evalOp(t, mode, c.kind, false, iv(c.a), iv(c.b), c.nargs)
			if got != strconv.FormatInt(c.want, 10) {
				t.Errorf("%v: %v(%d,%d) = %s, want %d", mode, c.kind, c.a, c.b, got, c.want)
			}
		}
	}
}

func TestFloatOpSemantics(t *testing.T) {
	cases := []struct {
		kind  ir.OpKind
		a, b  float64
		nargs int
		want  string
	}{
		{ir.OpFAdd, 1.5, 2.25, 2, "3.75"},
		{ir.OpFSub, 1.5, 2.25, 2, "-0.75"},
		{ir.OpFMul, 1.5, -2, 2, "-3"},
		{ir.OpFDiv, 7, 2, 2, "3.5"},
		{ir.OpFNeg, 2.5, 0, 1, "-2.5"},
		{ir.OpFCmpEQ, 2, 2, 2, "1"},
		{ir.OpFCmpNE, 2, 2, 2, "0"},
		{ir.OpFCmpLT, 1, 2, 2, "1"},
		{ir.OpFCmpLE, 2, 2, 2, "1"},
		{ir.OpFCmpGT, 1, 2, 2, "0"},
		{ir.OpFCmpGE, 2, 1, 2, "1"},
		{ir.OpSqrt, 9, 0, 1, "3"},
		{ir.OpFAbs, -4.5, 0, 1, "4.5"},
		{ir.OpSin, 0, 0, 1, "0"},
		{ir.OpCos, 0, 0, 1, "1"},
		{ir.OpExp, 0, 0, 1, "1"},
		{ir.OpLog, 1, 0, 1, "0"},
	}
	for _, mode := range execModes {
		for _, c := range cases {
			isFloat := c.kind != ir.OpFCmpEQ && c.kind != ir.OpFCmpNE &&
				c.kind != ir.OpFCmpLT && c.kind != ir.OpFCmpLE &&
				c.kind != ir.OpFCmpGT && c.kind != ir.OpFCmpGE
			got := evalOp(t, mode, c.kind, isFloat, fv(c.a), fv(c.b), c.nargs)
			if got != c.want {
				t.Errorf("%v: %v(%g,%g) = %s, want %s", mode, c.kind, c.a, c.b, got, c.want)
			}
		}
	}
}

func TestCvtSemantics(t *testing.T) {
	for _, mode := range execModes {
		if got := evalOp(t, mode, ir.OpCvtIF, true, iv(5), iv(0), 1); got != "5" {
			t.Errorf("%v: cvtif(5) = %s", mode, got)
		}
		if got := evalOp(t, mode, ir.OpCvtFI, false, fv(-2.9), fv(0), 1); got != "-2" {
			t.Errorf("%v: cvtfi(-2.9) = %s", mode, got)
		}
		if got := evalOp(t, mode, ir.OpCvtFI, false, fv(math.NaN()), fv(0), 1); got != "0" {
			t.Errorf("%v: cvtfi(NaN) = %s", mode, got)
		}
		if got := evalOp(t, mode, ir.OpCvtFI, false, fv(math.Inf(1)), fv(0), 1); got != strconv.FormatInt(math.MaxInt64, 10) {
			t.Errorf("%v: cvtfi(+Inf) = %s", mode, got)
		}
		if got := evalOp(t, mode, ir.OpCvtFI, false, fv(math.Inf(-1)), fv(0), 1); got != strconv.FormatInt(math.MinInt64, 10) {
			t.Errorf("%v: cvtfi(-Inf) = %s", mode, got)
		}
	}
}
