package sim_test

import (
	"testing"

	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
	"specdis/internal/sim"
)

// runSrc compiles and runs a MiniC program on the 2-cycle-memory model,
// pricing an infinite-machine plan.
func runSrc(t *testing.T, src string) *sim.Result {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.Infinite(2)
	plan := sim.NewPlan("inf")
	for _, name := range prog.Order {
		for _, tr := range prog.Funcs[name].Trees {
			plan.SetTree(tr, sched.Tree(tr, m).Comp)
		}
	}
	r := &sim.Runner{Prog: prog, SemLat: m.LatencyFunc(), Plans: []*sim.Plan{plan}}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSmokeArithmetic(t *testing.T) {
	res := runSrc(t, `
void main() {
	int x = 6;
	int y = 7;
	print(x * y);
	print(x - y);
	float f = 1.5;
	print(f * 4.0);
}`)
	want := "42\n-1\n6\n"
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestSmokeLoopAndArrays(t *testing.T) {
	res := runSrc(t, `
int a[10];
void main() {
	for (int i = 0; i < 10; i = i + 1) {
		a[i] = i * i;
	}
	int s = 0;
	for (int i = 0; i < 10; i = i + 1) {
		s = s + a[i];
	}
	print(s);
}`)
	if res.Output != "285\n" {
		t.Fatalf("output = %q, want 285", res.Output)
	}
	if res.Times[0] <= 0 {
		t.Fatalf("no cycles accumulated")
	}
}

func TestSmokeIfElseAndCalls(t *testing.T) {
	res := runSrc(t, `
int gcd(int a, int b) {
	while (b != 0) {
		int t = a % b;
		a = b;
		b = t;
	}
	return a;
}
void main() {
	print(gcd(1071, 462));
	if (gcd(8, 12) == 4) { print(1); } else { print(0); }
}`)
	if res.Output != "21\n1\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSmokeRecursion(t *testing.T) {
	res := runSrc(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void main() {
	print(fib(15));
}`)
	if res.Output != "610\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSmokeAmbiguousStoreLoad(t *testing.T) {
	// The classic Example 2-1 shape: store a[i], load a[j], i may equal j.
	res := runSrc(t, `
int a[8];
int work(int i, int j) {
	a[i] = 100;
	return a[j] + 1;
}
void main() {
	a[3] = 7;
	print(work(2, 3)); // no alias: reads 7
	print(work(3, 3)); // alias: reads 100
}`)
	if res.Output != "8\n101\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSmokeBreakContinue(t *testing.T) {
	res := runSrc(t, `
void main() {
	int s = 0;
	for (int i = 0; i < 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		s = s + i;
	}
	print(s);
}`)
	// 0+1+2+4+5+6 = 18
	if res.Output != "18\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSchedulesAgreeOnOutput(t *testing.T) {
	src := `
float v[16];
void main() {
	for (int i = 0; i < 16; i = i + 1) { v[i] = float(i) * 0.5; }
	float s = 0.0;
	for (int i = 0; i < 16; i = i + 1) { s = s + v[i] * v[i]; }
	print(s);
}`
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var plans []*sim.Plan
	models := []machine.Model{machine.Infinite(2), machine.New(1, 2), machine.New(4, 6)}
	for _, m := range models {
		p := sim.NewPlan(m.Name)
		for _, name := range prog.Order {
			for _, tr := range prog.Funcs[name].Trees {
				s := sched.Tree(tr, m)
				g := ir.BuildDepGraph(tr, m.LatencyFunc())
				if err := sched.Validate(g, s, m.NumFUs); err != nil {
					t.Fatalf("invalid schedule for %s under %s: %v", tr.Name, m.Name, err)
				}
				p.SetTree(tr, s.Comp)
			}
		}
		plans = append(plans, p)
	}
	r := &sim.Runner{Prog: prog, SemLat: models[0].LatencyFunc(), Plans: plans}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output == "" {
		t.Fatal("no output")
	}
	// A 1-FU machine can never beat the infinite machine.
	if res.Times[1] < res.Times[0] {
		t.Fatalf("1-FU machine (%d) faster than infinite (%d)", res.Times[1], res.Times[0])
	}
}
