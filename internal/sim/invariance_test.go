package sim_test

import (
	"testing"

	"specdis/internal/alias"
	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// TestOutputScheduleInvariance checks the property the whole measurement
// methodology rests on: the committed values of a guarded-execution program
// do not depend on which legal execution order the interpreter uses. We run
// every benchmark — before and after SpD — under semantic orders derived
// from very different latency models and require identical output.
func TestOutputScheduleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	semLats := []machine.Model{
		machine.Infinite(2),
		machine.Infinite(6),
		machine.New(1, 2), // latency model only; order derives from the graph
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			// Untransformed program.
			var ref string
			for _, m := range semLats {
				prog, err := compile.Compile(b.Source)
				if err != nil {
					t.Fatal(err)
				}
				r := &sim.Runner{Prog: prog, SemLat: m.LatencyFunc()}
				res, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if ref == "" {
					ref = res.Output
				} else if res.Output != ref {
					t.Fatalf("order under %s changed output", m.Name)
				}
			}
			// SpD-transformed program: transform once deterministically,
			// then reinterpret under each order.
			for _, m := range semLats {
				prog, err := compile.Compile(b.Source)
				if err != nil {
					t.Fatal(err)
				}
				prof := sim.NewProfile()
				r0 := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc(), Prof: prof}
				if _, err := r0.Run(); err != nil {
					t.Fatal(err)
				}
				alias.ResolveProgram(prog)
				params := spd.DefaultParams()
				params.MinGain = 0.01
				spd.Transform(prog, prof, machine.Infinite(2).LatencyFunc(), params)
				r := &sim.Runner{Prog: prog, SemLat: m.LatencyFunc()}
				res, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Output != ref {
					t.Fatalf("transformed program under order %s changed output", m.Name)
				}
			}
		})
	}
}
