package machine

import (
	"strings"
	"testing"

	"specdis/internal/ir"
)

func opOf(k ir.OpKind) *ir.Op { return &ir.Op{Kind: k} }

func TestTable61Latencies(t *testing.T) {
	for _, memLat := range []int{2, 6} {
		m := New(4, memLat)
		cases := map[ir.OpKind]int{
			ir.OpMul:    3,
			ir.OpDiv:    7,
			ir.OpRem:    7,
			ir.OpFDiv:   7,
			ir.OpFCmpLT: 1,
			ir.OpFCmpEQ: 1,
			ir.OpAdd:    1,
			ir.OpCmpEQ:  1,
			ir.OpConst:  1,
			ir.OpMove:   1,
			ir.OpBAnd:   1,
			ir.OpFAdd:   3,
			ir.OpFMul:   3,
			ir.OpSqrt:   3,
			ir.OpSin:    3,
			ir.OpCvtIF:  3,
			ir.OpLoad:   memLat,
			ir.OpStore:  memLat,
			ir.OpExit:   2,
		}
		for k, want := range cases {
			if got := m.Latency(opOf(k)); got != want {
				t.Errorf("memLat %d: latency(%v) = %d, want %d", memLat, k, got, want)
			}
		}
	}
}

func TestModelNamesAndKinds(t *testing.T) {
	if New(5, 2).Name != "life-5fu-m2" {
		t.Errorf("name %q", New(5, 2).Name)
	}
	inf := Infinite(6)
	if inf.NumFUs != 0 || inf.MemLatency != 6 {
		t.Errorf("infinite model wrong: %+v", inf)
	}
	if BranchLatency != 2 {
		t.Errorf("branch latency %d", BranchLatency)
	}
}

func TestLatencyFuncAdapts(t *testing.T) {
	m := New(1, 6)
	f := m.LatencyFunc()
	if f(opOf(ir.OpLoad)) != 6 {
		t.Error("LatencyFunc does not match Latency")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(6)
	if !strings.Contains(s, "Memory loads and stores       6") {
		t.Errorf("Describe(6):\n%s", s)
	}
	if !strings.Contains(s, "Integer and FP divides        7") {
		t.Error("divide row missing")
	}
}
