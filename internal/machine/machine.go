// Package machine describes LIFE-style VLIW machine configurations: a number
// of universal functional units sharing a global register file, guarded
// execution, and the operation-latency table of the paper (Table 6-1).
package machine

import (
	"fmt"
	"strings"

	"specdis/internal/ir"
)

// Model is one machine configuration. NumFUs == 0 denotes the infinite
// machine used by the paper's unconstrained simulator and by the SpD
// guidance heuristic.
type Model struct {
	Name       string
	NumFUs     int // 0 = infinite
	MemLatency int // 2 or 6 in the paper
}

// New returns a constrained machine with n universal functional units.
func New(n, memLat int) Model {
	return Model{Name: fmt.Sprintf("life-%dfu-m%d", n, memLat), NumFUs: n, MemLatency: memLat}
}

// Infinite returns the unconstrained machine with the given memory latency.
func Infinite(memLat int) Model {
	return Model{Name: fmt.Sprintf("life-inf-m%d", memLat), NumFUs: 0, MemLatency: memLat}
}

// BranchLatency is the taken-exit resolution latency (Table 6-1).
const BranchLatency = 2

// Latency returns the latency of op under this model, per Table 6-1:
//
//	integer multiplies              3
//	integer and FP divides          7
//	FP compares                     1
//	other ALU operations            1
//	other FPU operations            3
//	memory loads and stores         2 or 6
//	branches                        2
func (m Model) Latency(op *ir.Op) int {
	switch op.Kind {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem, ir.OpFDiv:
		return 7
	case ir.OpFCmpEQ, ir.OpFCmpNE, ir.OpFCmpLT, ir.OpFCmpLE, ir.OpFCmpGT, ir.OpFCmpGE:
		return 1
	case ir.OpLoad, ir.OpStore:
		return m.MemLatency
	case ir.OpExit:
		return BranchLatency
	}
	if op.Kind.IsFloat() {
		return 3
	}
	return 1
}

// LatencyFunc adapts the model to ir.LatencyFunc.
func (m Model) LatencyFunc() ir.LatencyFunc {
	return func(op *ir.Op) int { return m.Latency(op) }
}

// Describe renders the latency table (the paper's Table 6-1) for reports.
func Describe(memLat int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Operation                     Latency (cyc)\n")
	fmt.Fprintf(&b, "Integer multiplies            3\n")
	fmt.Fprintf(&b, "Integer and FP divides        7\n")
	fmt.Fprintf(&b, "FP compares                   1\n")
	fmt.Fprintf(&b, "Other ALU operations          1\n")
	fmt.Fprintf(&b, "Other FPU operations          3\n")
	fmt.Fprintf(&b, "Memory loads and stores       %d\n", memLat)
	fmt.Fprintf(&b, "Branches                      2\n")
	return b.String()
}
