package disamb

import (
	"strings"
	"sync"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/ir"
	"specdis/internal/sched"
)

// TestLintAllBenchmarksClean is the golden lint suite: every benchmark
// program, prepared under all four disambiguators at both of the paper's
// memory latencies, passes every static and dynamic verifier with zero
// findings. The stats assertions pin that the run actually exercised each
// checker class — a clean report with nothing checked would be vacuous.
func TestLintAllBenchmarksClean(t *testing.T) {
	var mu sync.Mutex
	var total LintStats
	for _, b := range bench.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Lint(b.Source, LintOptions{MemLats: []int{2, 6}})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Findings {
				t.Errorf("%s", f.String())
			}
			if rep.Stats.Cells == 0 || rep.Stats.Trees == 0 || rep.Stats.Scheds == 0 {
				t.Errorf("vacuous lint run: %+v", rep.Stats)
			}
			mu.Lock()
			total.Pairs += rep.Stats.Pairs
			total.ArcsChecked += rep.Stats.ArcsChecked
			total.ArcsAudited += rep.Stats.ArcsAudited
			total.Patterns += rep.Stats.Patterns
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		if total.Pairs == 0 {
			t.Errorf("no SpD pairs checked across the whole suite")
		}
		if total.ArcsChecked == 0 || total.ArcsAudited == 0 {
			t.Errorf("no arcs cross-checked or audited across the whole suite: %+v", total)
		}
		if total.Patterns == 0 {
			t.Errorf("no trace commit patterns scanned across the whole suite")
		}
	})
}

// TestLintReportsCorruption seeds violations through the Corrupt hook and
// checks each is caught and reported with a diagnostic naming the damage.
func TestLintReportsCorruption(t *testing.T) {
	src := bench.ByName("perm").Source
	cases := []struct {
		name    string
		corrupt func(*ir.Program)
		check   string
	}{
		{
			name: "swapped-seq",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Ops) >= 2 {
							tr.Ops[0], tr.Ops[1] = tr.Ops[1], tr.Ops[0]
							return
						}
					}
				}
			},
			check: "struct/seq-order",
		},
		{
			name: "dangling-arc",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Arcs) > 0 {
							ghost := *tr.Arcs[0].From
							tr.Arcs[0].From = &ghost
							return
						}
					}
				}
			},
			check: "struct/dangling-arc",
		},
		{
			name: "inflated-count",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Arcs) > 0 {
							tr.Arcs[0].AliasCount = tr.Arcs[0].ExecCount + 1
							return
						}
					}
				}
			},
			check: "struct/arc-counters",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Lint(src, LintOptions{MemLats: []int{2}, Corrupt: tc.corrupt})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() {
				t.Fatalf("corruption %s not detected", tc.name)
			}
			found := false
			for _, f := range rep.Findings {
				if f.Check == tc.check {
					found = true
					break
				}
			}
			if !found {
				var got []string
				for _, f := range rep.Findings {
					got = append(got, f.String())
				}
				t.Fatalf("no %s finding; got:\n%s", tc.check, strings.Join(got, "\n"))
			}
		})
	}
}

// TestLintReportsCompiledCorruption seeds violations into the compiled
// artifacts — an inverted commit mask in a bytecode stream, a swapped issue
// slot in a schedule — through the layer-4/5 corruption hooks and checks the
// translation validator and the schedule auditor each catch their own.
func TestLintReportsCompiledCorruption(t *testing.T) {
	src := bench.ByName("perm").Source

	t.Run("bcode-guard-polarity", func(t *testing.T) {
		rep, err := Lint(src, LintOptions{MemLats: []int{2}, CorruptBCode: func(p *bcode.Prog) {
			for i := range p.Code {
				if p.Code[i].Guard >= 0 {
					p.Code[i].GNeg = !p.Code[i].GNeg
					return
				}
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		wantCheck(t, rep, "bvalid/guard-polarity")
	})

	t.Run("sched-issue-swap", func(t *testing.T) {
		rep, err := Lint(src, LintOptions{MemLats: []int{2}, CorruptSched: func(s *sched.Schedule) {
			for i := 0; i < len(s.Issue); i++ {
				for j := i + 1; j < len(s.Issue); j++ {
					if s.Issue[i] != s.Issue[j] {
						s.Issue[i], s.Issue[j] = s.Issue[j], s.Issue[i]
						return
					}
				}
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		wantCheck(t, rep, "sched/comp-latency")
	})
}

// wantCheck asserts the report carries at least one finding with the check ID.
func wantCheck(t *testing.T, rep *LintReport, check string) {
	t.Helper()
	if rep.Clean() {
		t.Fatalf("corruption not detected; report clean")
	}
	for _, f := range rep.Findings {
		if f.Check == check {
			return
		}
	}
	var got []string
	for _, f := range rep.Findings {
		got = append(got, f.String())
	}
	t.Fatalf("no %s finding; got:\n%s", check, strings.Join(got, "\n"))
}
