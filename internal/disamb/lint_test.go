package disamb

import (
	"strings"
	"sync"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/ir"
)

// TestLintAllBenchmarksClean is the golden lint suite: every benchmark
// program, prepared under all four disambiguators at both of the paper's
// memory latencies, passes every static and dynamic verifier with zero
// findings. The stats assertions pin that the run actually exercised each
// checker class — a clean report with nothing checked would be vacuous.
func TestLintAllBenchmarksClean(t *testing.T) {
	var mu sync.Mutex
	var total LintStats
	for _, b := range bench.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Lint(b.Source, LintOptions{MemLats: []int{2, 6}})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Findings {
				t.Errorf("%s", f.String())
			}
			if rep.Stats.Cells == 0 || rep.Stats.Trees == 0 || rep.Stats.Scheds == 0 {
				t.Errorf("vacuous lint run: %+v", rep.Stats)
			}
			mu.Lock()
			total.Pairs += rep.Stats.Pairs
			total.ArcsChecked += rep.Stats.ArcsChecked
			total.ArcsAudited += rep.Stats.ArcsAudited
			total.Patterns += rep.Stats.Patterns
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		if total.Pairs == 0 {
			t.Errorf("no SpD pairs checked across the whole suite")
		}
		if total.ArcsChecked == 0 || total.ArcsAudited == 0 {
			t.Errorf("no arcs cross-checked or audited across the whole suite: %+v", total)
		}
		if total.Patterns == 0 {
			t.Errorf("no trace commit patterns scanned across the whole suite")
		}
	})
}

// TestLintReportsCorruption seeds violations through the Corrupt hook and
// checks each is caught and reported with a diagnostic naming the damage.
func TestLintReportsCorruption(t *testing.T) {
	src := bench.ByName("perm").Source
	cases := []struct {
		name    string
		corrupt func(*ir.Program)
		check   string
	}{
		{
			name: "swapped-seq",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Ops) >= 2 {
							tr.Ops[0], tr.Ops[1] = tr.Ops[1], tr.Ops[0]
							return
						}
					}
				}
			},
			check: "struct/seq-order",
		},
		{
			name: "dangling-arc",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Arcs) > 0 {
							ghost := *tr.Arcs[0].From
							tr.Arcs[0].From = &ghost
							return
						}
					}
				}
			},
			check: "struct/dangling-arc",
		},
		{
			name: "inflated-count",
			corrupt: func(p *ir.Program) {
				for _, name := range p.Order {
					for _, tr := range p.Funcs[name].Trees {
						if len(tr.Arcs) > 0 {
							tr.Arcs[0].AliasCount = tr.Arcs[0].ExecCount + 1
							return
						}
					}
				}
			},
			check: "struct/arc-counters",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Lint(src, LintOptions{MemLats: []int{2}, Corrupt: tc.corrupt})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() {
				t.Fatalf("corruption %s not detected", tc.name)
			}
			found := false
			for _, f := range rep.Findings {
				if f.Check == tc.check {
					found = true
					break
				}
			}
			if !found {
				var got []string
				for _, f := range rep.Findings {
					got = append(got, f.String())
				}
				t.Fatalf("no %s finding; got:\n%s", tc.check, strings.Join(got, "\n"))
			}
		})
	}
}
