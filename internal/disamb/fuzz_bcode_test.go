package disamb_test

import (
	"reflect"
	"strings"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/trace"
)

// FuzzBytecodeVsTree is the differential fuzzer for the bytecode execution
// engine: every MiniC program that compiles must behave identically on the
// bytecode executor and the reference tree walker, under every disambiguator
// pipeline. "Identically" is checked at full strength — printed output,
// main's exit value, dynamic operation and commit counts, the cycle price
// under every machine model, and the captured execution trace (per-tree
// commit-bit patterns, taken exits and call sequence, compared through the
// trace histogram). Any divergence is a crash; inputs that fail to compile
// or blow the small operation budget are skipped.
func FuzzBytecodeVsTree(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(newProgGen(seed).generate())
	}
	models := []machine.Model{machine.Infinite(2), machine.New(3, 6)}
	params := spd.DefaultParams()
	params.MinGain = 0.01 // transform aggressively to stress guarded code
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		type outcome struct {
			res  *sim.Result
			hist *trace.Hist
		}
		for _, kind := range disamb.Kinds {
			run := func(mode sim.ExecMode) (*outcome, error) {
				p, err := disamb.PrepareOpts(src, disamb.Options{
					Kind:   kind,
					MemLat: 2,
					SpD:    params,
					MaxOps: 2_000_000,
					Exec:   mode,
				})
				if err != nil {
					return nil, err
				}
				if mode == sim.ExecBytecode {
					validateCompiled(t, p, src)
				}
				res, err := disamb.Measure(p, models)
				if err != nil {
					return nil, err
				}
				tr, err := disamb.Capture(p)
				if err != nil {
					return nil, err
				}
				hist, err := tr.Hist()
				if err != nil {
					return nil, err
				}
				return &outcome{res: res, hist: hist}, nil
			}
			bc, bcErr := run(sim.ExecBytecode)
			tw, twErr := run(sim.ExecTree)
			if bcErr != nil || twErr != nil {
				// Both backends execute the same dynamic operations, so a
				// budget blowout or compile failure must hit both the same
				// way; one-sided errors are divergences.
				if (bcErr == nil) != (twErr == nil) {
					t.Fatalf("%s: one-sided error: bcode=%v tree=%v\n%s", kind, bcErr, twErr, src)
				}
				err := bcErr.Error()
				if strings.Contains(err, "budget") || kind == disamb.Naive {
					t.Skip() // does not compile or does not terminate
				}
				// NAIVE handled this program; a refinement must too.
				t.Fatalf("%s failed on a program NAIVE handled: %v\n%s", kind, bcErr, src)
			}
			if bc.res.Output != tw.res.Output {
				t.Fatalf("%s: output diverged\nbcode: %q\ntree:  %q\n%s", kind, bc.res.Output, tw.res.Output, src)
			}
			if bc.res.Exit != tw.res.Exit {
				t.Fatalf("%s: exit value diverged: bcode %v, tree %v\n%s", kind, bc.res.Exit, tw.res.Exit, src)
			}
			if bc.res.Ops != tw.res.Ops || bc.res.Committed != tw.res.Committed {
				t.Fatalf("%s: op counts diverged: bcode %d/%d, tree %d/%d\n%s",
					kind, bc.res.Committed, bc.res.Ops, tw.res.Committed, tw.res.Ops, src)
			}
			if !reflect.DeepEqual(bc.res.Times, tw.res.Times) {
				t.Fatalf("%s: cycle prices diverged: bcode %v, tree %v\n%s", kind, bc.res.Times, tw.res.Times, src)
			}
			if !reflect.DeepEqual(bc.hist, tw.hist) {
				t.Fatalf("%s: trace histograms diverged (commit bits or exits)\nbcode: %+v\ntree:  %+v\n%s",
					kind, bc.hist, tw.hist, src)
			}
		}
	})
}
