package disamb_test

import (
	"fmt"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// Example runs the whole pipeline on the paper's Example 2-1 shape and
// compares the four disambiguators of Table 6-4 on a 5-FU machine.
func Example() {
	src := `
int a[16];
int f(int i, int j, int v) {
	a[i] = v;          // store through i
	return a[j] * 3;   // ambiguously aliased load through j
}
void main() {
	int s = 0;
	for (int k = 0; k < 80; k = k + 1) {
		s = s + f(k % 16, (k * 5) % 16, k);
	}
	print(s);
}
`
	m := []machine.Model{machine.New(5, 2)}
	var naive int64
	for _, kind := range disamb.Kinds {
		p, err := disamb.Prepare(src, kind, 2, spd.DefaultParams())
		if err != nil {
			panic(err)
		}
		res, err := disamb.Measure(p, m)
		if err != nil {
			panic(err)
		}
		if kind == disamb.Naive {
			naive = res.Times[0]
		}
		fmt.Printf("%-7s output=%s faster-than-naive=%v\n",
			kind, res.Output[:len(res.Output)-1], res.Times[0] < naive)
	}
	// Output:
	// NAIVE   output=8130 faster-than-naive=false
	// STATIC  output=8130 faster-than-naive=false
	// SPEC    output=8130 faster-than-naive=true
	// PERFECT output=8130 faster-than-naive=false
}
