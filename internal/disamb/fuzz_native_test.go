package disamb_test

import (
	"strings"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// fuzzSeeds is the seed corpus for FuzzDisamb. The hand-written entries
// concentrate on guarded stores — stores under if conditions and through
// ambiguous subscripts, the shapes SpD must guard correctly — plus WAR and
// forwarding-RAW patterns, long straight-line chains that tile into 3- and
// 4-wide native fusion windows, and guard-dense trees where windows must
// stop at every guarded op; the generated tail adds structural variety.
var fuzzSeeds = []string{
	// Guarded store through an ambiguous subscript (the paper's core shape).
	`int a[16]; int b[16];
void main() {
	for (int k = 0; k < 48; k = k + 1) {
		int i = k % 16;
		int j = (k * 7 + 3) % 16;
		a[i] = a[i] + 3;
		int v = b[j];
		if (v > 8) { a[j] = v; }
		b[i] = v + a[j];
	}
	int s = 0;
	for (int k = 0; k < 16; k = k + 1) { s = (s * 31 + a[k] + b[k]) % 1000003; }
	print(s);
}`,
	// Forwarding RAW: store then load of a maybe-equal address.
	`int a[16];
int f(int i, int j, int v) {
	a[i] = v * 3;
	return a[j] * 5 + 7;
}
void main() {
	int s = 0;
	for (int k = 0; k < 64; k = k + 1) { s = s + f(k % 16, (k * 5) % 16, k); }
	print(s);
}`,
	// WAR: ambiguous load hoisted over a later store.
	`int a[16];
void main() {
	int s = 0;
	for (int k = 0; k < 64; k = k + 1) {
		int j = (k * 3 + 1) % 16;
		int v = a[j];
		a[k % 16] = k;
		s = (s + v) % 65536;
	}
	print(s);
}`,
	// Nested guards: a store guarded by two conditions.
	`int a[8]; int b[8];
void main() {
	for (int k = 0; k < 40; k = k + 1) {
		int i = k % 8;
		int j = (k + 3) % 8;
		if (a[i] < 20) {
			if (b[j] % 2 == 0) { a[j] = a[j] + b[i]; }
		}
		b[i] = b[i] + 1;
	}
	int s = 0;
	for (int k = 0; k < 8; k = k + 1) { s = s * 13 + a[k] - b[k]; }
	print(s);
}`,
	// Fuel path: terminates, but far beyond the fuzzers' small op budget —
	// both backends must abort with the same typed budget error.
	`void main() {
	int i = 0;
	while (i < 3000000) { i = i + 1; }
	print(i);
}`,
	// Long straight-line chains: unguarded const/ALU/load runs that the
	// native tier tiles into 3- and 4-wide fusion windows, mixing integer,
	// float, shift/mask and array-read elements inside one tree.
	`int a[16]; float f[4] = {1.5, 2.25, -3.5, 4.0};
int chain(int k) {
	int x = k * 3 + 7;
	int y = x * 5 - k;
	int z = (x + y) * 2 + 11;
	int w = z - x * 4 + y;
	float g = f[k % 4] * 2.5 + 1.25;
	float h = g * g - f[(k + 1) % 4];
	int m = a[k % 16] + z;
	int n = a[(k + 5) % 16] * 3 - w;
	return ((x + y + z + w + m + n) % 4096) + int(h * g) % 97;
}
void main() {
	int s = 0;
	for (int k = 0; k < 96; k = k + 1) { s = (s * 17 + chain(k)) % 1000003; a[k % 16] = s % 251; }
	print(s);
}`,
	// Guard-dense tree: ambiguous stores under alternating conditions split
	// the straight-line runs, so every window must end before a guarded op
	// and fusion falls back to narrow pairs between guards.
	`int a[12]; int b[12];
void main() {
	for (int k = 0; k < 72; k = k + 1) {
		int i = k % 12;
		int j = (k * 7 + 5) % 12;
		int u = a[i] * 3 + k;
		int v = b[j] - u % 9;
		if (u % 2 == 0) { a[j] = u + 1; }
		int w = u * v + a[i];
		if (v > 4) { b[i] = w % 127; }
		if (w % 3 == 1) { a[i] = a[i] + b[j]; }
		b[j] = (u + v + w) % 251;
	}
	int s = 0;
	for (int k = 0; k < 12; k = k + 1) { s = (s * 29 + a[k] * 3 + b[k]) % 1000003; }
	print(s);
}`,
}

// FuzzDisamb is the native differential fuzzer: any input that compiles as
// a MiniC program must print the same output under all four disambiguator
// pipelines, and every pipeline stage must satisfy the full internal/verify
// battery (Options.Verify runs verify.CheckProgram — and through it
// verify.CheckTree on every tree — plus the speculation-safety checks after
// each stage). A verifier finding or an output divergence is a crash; inputs
// that fail to compile, or blow the small operation budget, are skipped.
func FuzzDisamb(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(newProgGen(seed).generate())
	}
	models := []machine.Model{machine.Infinite(2), machine.New(3, 6)}
	params := spd.DefaultParams()
	params.MinGain = 0.01 // transform aggressively to stress the machinery
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		var ref string
		haveRef := false
		for _, kind := range disamb.Kinds {
			p, err := disamb.PrepareOpts(src, disamb.Options{
				Kind:   kind,
				MemLat: 2,
				SpD:    params,
				Verify: true,
				MaxOps: 2_000_000,
			})
			if err != nil {
				if strings.Contains(err.Error(), "verif") {
					t.Fatalf("%s: %v\n%s", kind, err, src)
				}
				if kind == disamb.Naive || strings.Contains(err.Error(), "budget") {
					t.Skip() // does not compile or does not terminate; uninteresting
				}
				// NAIVE handled this program; a refinement must too.
				t.Fatalf("%s failed on a program NAIVE handled: %v\n%s", kind, err, src)
			}
			res, err := disamb.Measure(p, models)
			if err != nil {
				// Runaway programs exceed the budget; SPEC executes extra
				// (duplicated) ops, so a refinement may trip it even when
				// NAIVE squeaked under.
				if strings.Contains(err.Error(), "budget") {
					t.Skip()
				}
				t.Fatalf("%s measure: %v\n%s", kind, err, src)
			}
			if !haveRef {
				ref, haveRef = res.Output, true
			} else if res.Output != ref {
				t.Fatalf("%s output %q, want %q\n%s", kind, res.Output, ref, src)
			}
		}
	})
}
