package disamb_test

import (
	"reflect"
	"strings"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/trace"
)

// FuzzNativeVsBCode is the differential fuzzer for the native closure-chain
// execution tier: every MiniC program that compiles must behave identically
// on the native executor and the bytecode engine, under every disambiguator
// pipeline. Checked at the same full strength as FuzzBytecodeVsTree —
// printed output, main's exit value, dynamic operation and commit counts,
// the cycle price under every machine model, and the captured execution
// trace (per-tree commit-bit patterns, taken exits and call sequence,
// compared through the trace histogram). Since the bytecode engine is itself
// fuzzed against the reference tree walker, agreement here chains all three
// engines together. Any divergence is a crash; inputs that fail to compile
// or blow the small operation budget are skipped.
func FuzzNativeVsBCode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(newProgGen(seed).generate())
	}
	models := []machine.Model{machine.Infinite(2), machine.New(3, 6)}
	params := spd.DefaultParams()
	params.MinGain = 0.01 // transform aggressively to stress guarded code
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		type outcome struct {
			res  *sim.Result
			hist *trace.Hist
		}
		for _, kind := range disamb.Kinds {
			run := func(mode sim.ExecMode) (*outcome, error) {
				p, err := disamb.PrepareOpts(src, disamb.Options{
					Kind:   kind,
					MemLat: 2,
					SpD:    params,
					MaxOps: 2_000_000,
					Exec:   mode,
				})
				if err != nil {
					return nil, err
				}
				if mode == sim.ExecNative {
					validateCompiled(t, p, src)
				}
				res, err := disamb.Measure(p, models)
				if err != nil {
					return nil, err
				}
				tr, err := disamb.Capture(p)
				if err != nil {
					return nil, err
				}
				hist, err := tr.Hist()
				if err != nil {
					return nil, err
				}
				return &outcome{res: res, hist: hist}, nil
			}
			nc, ncErr := run(sim.ExecNative)
			bc, bcErr := run(sim.ExecBytecode)
			if ncErr != nil || bcErr != nil {
				// Both backends execute the same dynamic operations, so a
				// budget blowout or compile failure must hit both the same
				// way; one-sided errors are divergences.
				if (ncErr == nil) != (bcErr == nil) {
					t.Fatalf("%s: one-sided error: native=%v bcode=%v\n%s", kind, ncErr, bcErr, src)
				}
				err := ncErr.Error()
				if strings.Contains(err, "budget") || kind == disamb.Naive {
					t.Skip() // does not compile or does not terminate
				}
				// NAIVE handled this program; a refinement must too.
				t.Fatalf("%s failed on a program NAIVE handled: %v\n%s", kind, ncErr, src)
			}
			if nc.res.Output != bc.res.Output {
				t.Fatalf("%s: output diverged\nnative: %q\nbcode:  %q\n%s", kind, nc.res.Output, bc.res.Output, src)
			}
			if nc.res.Exit != bc.res.Exit {
				t.Fatalf("%s: exit value diverged: native %v, bcode %v\n%s", kind, nc.res.Exit, bc.res.Exit, src)
			}
			if nc.res.Ops != bc.res.Ops || nc.res.Committed != bc.res.Committed {
				t.Fatalf("%s: op counts diverged: native %d/%d, bcode %d/%d\n%s",
					kind, nc.res.Committed, nc.res.Ops, bc.res.Committed, bc.res.Ops, src)
			}
			if !reflect.DeepEqual(nc.res.Times, bc.res.Times) {
				t.Fatalf("%s: cycle prices diverged: native %v, bcode %v\n%s", kind, nc.res.Times, bc.res.Times, src)
			}
			if !reflect.DeepEqual(nc.hist, bc.hist) {
				t.Fatalf("%s: trace histograms diverged (commit bits or exits)\nnative: %+v\nbcode:  %+v\n%s",
					kind, nc.hist, bc.hist, src)
			}
		}
	})
}
