package disamb_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// progGen generates random MiniC programs that hammer the memory system:
// global arrays, array parameters, data-dependent subscripts, guarded
// stores, loops, and helper calls. Every generated program is deterministic
// and terminates, so all four disambiguator pipelines must produce identical
// output under every machine model.
type progGen struct {
	r       *rand.Rand
	sb      strings.Builder
	vars    []string // int scalars readable in scope (includes loop vars)
	mutable []string // int scalars that may be reassigned (loop vars excluded)
	deep    int
	nameSeq int // monotonic counter: generated names never collide
}

const (
	genArrays  = 3  // a0, a1, a2
	genArrSize = 16 // words each
)

func newProgGen(seed int64) *progGen {
	return &progGen{r: rand.New(rand.NewSource(seed))}
}

func (g *progGen) pf(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *progGen) arr() string { return fmt.Sprintf("a%d", g.r.Intn(genArrays)) }

// idx yields an always-in-bounds index expression.
func (g *progGen) idx() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(genArrSize))
	case 1:
		return fmt.Sprintf("(%s %% %d + %d) %% %d", g.intExpr(1), genArrSize, genArrSize, genArrSize)
	case 2:
		return fmt.Sprintf("(%s[%d] %% %d + %d) %% %d", g.arr(), g.r.Intn(genArrSize), genArrSize, genArrSize, genArrSize)
	default:
		if len(g.vars) > 0 {
			v := g.vars[g.r.Intn(len(g.vars))]
			return fmt.Sprintf("(%s %% %d + %d) %% %d", v, genArrSize, genArrSize, genArrSize)
		}
		return fmt.Sprintf("%d", g.r.Intn(genArrSize))
	}
}

// intExpr yields an integer expression of bounded depth.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(19)-9)
		case 1:
			if len(g.vars) > 0 {
				return g.vars[g.r.Intn(len(g.vars))]
			}
			return "3"
		default:
			return fmt.Sprintf("%s[%s]", g.arr(), g.idx())
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[g.r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
}

func (g *progGen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1))
}

func (g *progGen) stmt(indent string) {
	if g.deep > 3 {
		g.pf("%s%s[%s] = %s;\n", indent, g.arr(), g.idx(), g.intExpr(1))
		return
	}
	switch g.r.Intn(8) {
	case 0, 1: // array store
		g.pf("%s%s[%s] = %s;\n", indent, g.arr(), g.idx(), g.intExpr(2))
	case 2: // compound array update
		g.pf("%s%s[%s] += %s;\n", indent, g.arr(), g.idx(), g.intExpr(1))
	case 3: // scalar update (never a live loop variable: loops must end)
		if len(g.mutable) > 0 {
			v := g.mutable[g.r.Intn(len(g.mutable))]
			g.pf("%s%s = %s;\n", indent, v, g.intExpr(2))
		} else {
			g.pf("%s%s[%s] = 1;\n", indent, g.arr(), g.idx())
		}
	case 4: // if
		g.deep++
		g.pf("%sif (%s) {\n", indent, g.cond())
		g.stmt(indent + "\t")
		if g.r.Intn(2) == 0 {
			g.pf("%s} else {\n", indent)
			g.stmt(indent + "\t")
		}
		g.pf("%s}\n", indent)
		g.deep--
	case 5: // bounded for loop
		g.deep++
		g.nameSeq++
		v := fmt.Sprintf("i%d", g.nameSeq)
		g.pf("%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n",
			indent, v, v, 2+g.r.Intn(6), v, v)
		g.vars = append(g.vars, v)
		g.stmt(indent + "\t")
		g.vars = g.vars[:len(g.vars)-1]
		g.pf("%s}\n", indent)
		g.deep--
	case 6: // helper call (store + load through parameters)
		g.pf("%shelp(%s, %s, %s, %s);\n", indent, g.arr(), g.arr(), g.idx(), g.idx())
	default: // fresh scalar
		g.nameSeq++
		v := fmt.Sprintf("t%d", g.nameSeq)
		g.pf("%sint %s = %s;\n", indent, v, g.intExpr(2))
		g.vars = append(g.vars, v)
		g.mutable = append(g.mutable, v)
		g.stmt(indent)
		g.vars = g.vars[:len(g.vars)-1]
		g.mutable = g.mutable[:len(g.mutable)-1]
	}
}

func (g *progGen) generate() string {
	for i := 0; i < genArrays; i++ {
		g.pf("int a%d[%d];\n", i, genArrSize)
	}
	g.pf(`
void help(int x[], int y[], int i, int j) {
	x[i] = y[j] + 1;
	y[(i + j) %% %d] += x[(j * 3 + 1) %% %d];
}
`, genArrSize, genArrSize)
	g.pf("void main() {\n")
	// Seed the arrays deterministically.
	g.pf("\tfor (int k = 0; k < %d; k = k + 1) {\n", genArrSize)
	for i := 0; i < genArrays; i++ {
		g.pf("\t\ta%d[k] = k * %d + %d;\n", i, i+2, i)
	}
	g.pf("\t}\n")
	n := 4 + g.r.Intn(10)
	for i := 0; i < n; i++ {
		g.stmt("\t")
	}
	// Print a digest of all memory.
	g.pf("\tint sum = 0;\n")
	g.pf("\tfor (int k = 0; k < %d; k = k + 1) {\n", genArrSize)
	for i := 0; i < genArrays; i++ {
		g.pf("\t\tsum = (sum * 31 + a%d[k]) %% 1000003;\n", i)
	}
	g.pf("\t}\n\tprint(sum);\n}\n")
	return g.sb.String()
}

// TestRandomProgramsAgreeAcrossPipelines is the differential fuzzer: for
// many random programs, NAIVE / STATIC / SPEC / PERFECT must print the same
// digest under several machine configurations, with an eager SpD
// configuration (MinGain 0) to maximize transformation coverage.
func TestRandomProgramsAgreeAcrossPipelines(t *testing.T) {
	seeds := make([]int64, 0, 80)
	for s := int64(1); s <= 60; s++ {
		seeds = append(seeds, s)
	}
	// The 1340..1360 band contains seed 1351, which exposed the
	// disjoint-path remapping bug in the duplication transform.
	for s := int64(1340); s <= 1360; s++ {
		seeds = append(seeds, s)
	}
	if testing.Short() {
		seeds = append(seeds[:10], 1351)
	}
	models := []machine.Model{machine.Infinite(2), machine.New(2, 6), machine.New(6, 2)}
	params := spd.DefaultParams()
	params.MinGain = 0.01 // transform aggressively to stress the machinery
	for _, seed := range seeds {
		src := newProgGen(seed).generate()
		var ref string
		for _, kind := range disamb.Kinds {
			// Verify makes every seed double as a verifier oracle: any stage
			// that emits an ill-formed or unsafely guarded tree fails here.
			p, err := disamb.PrepareOpts(src, disamb.Options{
				Kind: kind, MemLat: 2, SpD: params, Verify: true,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, kind, err, src)
			}
			res, err := disamb.Measure(p, models)
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, kind, err, src)
			}
			if ref == "" {
				ref = res.Output
			} else if res.Output != ref {
				t.Fatalf("seed %d: %s output %q, want %q\n%s", seed, kind, res.Output, ref, src)
			}
		}
	}
}

// TestFuzzerActuallyTriggersSpD keeps the fuzzer honest: across the seeds,
// the SPEC pipeline must transform a healthy number of arcs.
func TestFuzzerActuallyTriggersSpD(t *testing.T) {
	params := spd.DefaultParams()
	params.MinGain = 0.01
	total := 0
	for seed := int64(1); seed <= 20; seed++ {
		src := newProgGen(seed).generate()
		p, err := disamb.Prepare(src, disamb.Spec, 6, params)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += len(p.SpD.Apps)
	}
	if total < 10 {
		t.Fatalf("fuzzer exercised SpD only %d times across 20 seeds", total)
	}
}
