package disamb_test

import (
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/disamb"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/verify"
)

// validateCompiled is the layers-4/5 oracle shared by the tier-differential
// fuzzers: beyond demanding that the execution tiers agree with each other,
// every prepared program's compiled artifacts must pass the translation
// validator, and a finite-machine list schedule of every tree must survive
// the soundness audit. A fuzzer-grown program that compiles cleanly but
// trips a validator is a compiler (or validator) bug the differential
// checks alone could miss — both tiers can agree on wrong metadata.
func validateCompiled(t *testing.T, p *disamb.Prepared, src string) {
	t.Helper()
	lat := machine.Infinite(2).LatencyFunc()
	for _, name := range p.Prog.Order {
		for _, tr := range p.Prog.Funcs[name].Trees {
			if bp, err := bcode.Compile(tr); err == nil {
				if err := verify.BCode(tr, bp); err != nil {
					t.Fatalf("%s: bytecode of %s/%s fails translation validation: %v\n%s", p.Kind, name, tr.Name, err, src)
				}
			}
			if np, err := ncode.Compile(tr); err == nil {
				if err := verify.NCode(tr, np); err != nil {
					t.Fatalf("%s: native code of %s/%s fails translation validation: %v\n%s", p.Kind, name, tr.Name, err, src)
				}
			}
			const nFUs = 3
			g := ir.BuildDepGraph(tr, lat)
			s := sched.FromGraph(g, nFUs)
			if err := verify.Schedule(g, s, nFUs); err != nil {
				t.Fatalf("%s: schedule of %s/%s fails soundness audit: %v\n%s", p.Kind, name, tr.Name, err, src)
			}
		}
	}
}
