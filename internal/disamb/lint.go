package disamb

import (
	"fmt"
	"sort"

	"specdis/internal/bcode"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/resilience"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/trace"
	"specdis/internal/verify"
)

// This file is the lint engine behind cmd/spdlint: it prepares one source
// program under every disambiguator and runs the full internal/verify
// battery over each result — structural and speculation-safety checks
// statically, then a fresh profiling-plus-recording interpretation whose
// trace histogram cross-validates the arc counters and the pairwise commit
// exclusion, an arc-lattice comparison of every refined pipeline against
// NAIVE, a removed-arc soundness audit for the non-speculative refinements,
// and a list-schedule validation of every tree. Unlike the Options.Verify
// debug hook (which fails the pipeline on the first violation), the lint
// engine collects every finding into a report.

// LintOptions configure a Lint run.
type LintOptions struct {
	// MemLats are the memory latencies to prepare latency-sensitive
	// pipelines for. Default {2, 6}, the paper's L1/L2 latencies.
	// Latency-insensitive pipelines are checked once: they prepare the
	// identical program at every latency.
	MemLats []int
	// SpD overrides the transform parameters (nil = spd.DefaultParams()).
	SpD *spd.Params
	// NumFUs is the machine width used to build and validate schedules
	// (default 5, the width of the paper's Figure 6-2 machine).
	NumFUs int
	// Corrupt, when non-nil, mutates each prepared program before checking.
	// Test hook: it lets spdlint's tests prove that a seeded violation is
	// caught and reported. A cell whose static checks fail skips its
	// dynamic half (an ill-formed program cannot be interpreted reliably).
	Corrupt func(*ir.Program)
	// Exec selects the execution backend of every dynamic lint
	// interpretation (zero value: the bytecode engine), so the battery can
	// be pointed at either engine.
	Exec sim.ExecMode
	// MaxOps is the fuel budget of every lint interpretation (0 =
	// DefaultLintMaxOps). A cell whose program exhausts it — a
	// nonterminating example, say — is skipped with a notice, not failed:
	// lint checks invariants, and a program that never halts under the
	// budget violates none.
	MaxOps int64
	// ChaosPanicAt, when positive, arms the injected-panic hook on every
	// dynamic lint interpretation (the -chaos self-test): the recovered
	// panic must surface as a lint/run-failed finding, never kill the
	// process.
	ChaosPanicAt int64
	// BCode and NCode, when non-nil, are shared compiled-code caches
	// threaded into every preparation (cmd/spdlint wires them to the
	// persistent artifact store via -store): content addressing makes them
	// safe across cells and target programs, so identical trees compile
	// once per run — or never, when the store is warm.
	BCode *bcode.Cache
	NCode *ncode.Cache
	// NoCode disables layer 4 (the compiled-code translation validator over
	// both the bytecode and native tiers); NoSched disables layer 5 (the
	// schedule-soundness auditor). Both run by default (spdlint -code,
	// -sched).
	NoCode  bool
	NoSched bool
	// CorruptBCode, when non-nil, mutates each tree's freshly compiled
	// bytecode program before the translation validator sees it (the
	// -corrupt bmask self-test). The corrupted program is private to the
	// check — it is compiled outside the shared caches and never executed.
	CorruptBCode func(*bcode.Prog)
	// CorruptNCode, when non-nil, mutates each tree's freshly compiled
	// native closure chain before the translation validator sees it (the
	// -corrupt nwin self-test). Same isolation as CorruptBCode: private to
	// the check, never executed.
	CorruptNCode func(*ncode.Prog)
	// CorruptSched, when non-nil, mutates each built schedule before the
	// soundness auditor replays it (the -corrupt sched self-test).
	CorruptSched func(*sched.Schedule)
}

// DefaultLintMaxOps is the lint engine's fuel budget: generous next to the
// benchmark suite's heaviest cell yet small enough that a nonterminating
// example under lint finishes in seconds.
const DefaultLintMaxOps = 200_000_000

// LintStats counts the work a Lint run performed, so callers (and the
// golden tests) can tell a clean report from a vacuous one.
type LintStats struct {
	Cells       int // pipeline × latency preparations checked
	Trees       int // decision trees checked structurally
	Pairs       int // SpD original/duplicate pairs checked
	ArcsChecked int // arcs cross-validated against a trace histogram
	ArcsAudited int // base arcs audited for unsound removal
	Scheds      int // list schedules built and validated
	Progs       int // compiled programs (bytecode + native) translation-validated
	Audits      int // schedules replayed by the soundness auditor
	Patterns    int // distinct trace commit patterns scanned
	Skipped     int // cells skipped on fuel or deadline exhaustion
}

// LintReport is the result of a Lint run.
type LintReport struct {
	Findings []verify.Finding
	Stats    LintStats
	// Skips describes cells whose checks were skipped on fuel or deadline
	// exhaustion — notices, not findings: a clean report may carry skips.
	Skips []string
}

// Clean reports whether the run produced no findings.
func (r *LintReport) Clean() bool { return len(r.Findings) == 0 }

// Lint prepares src under all four disambiguators and every configured
// memory latency and runs the full verifier battery over each result. The
// returned error covers infrastructure failures only (the source does not
// compile, an uncorrupted program fails to run); invariant violations are
// Findings in the report.
func Lint(src string, o LintOptions) (*LintReport, error) {
	memLats := o.MemLats
	if len(memLats) == 0 {
		memLats = []int{2, 6}
	}
	params := spd.DefaultParams()
	if o.SpD != nil {
		params = *o.SpD
	}
	numFUs := o.NumFUs
	if numFUs <= 0 {
		numFUs = 5
	}
	maxOps := o.MaxOps
	if maxOps == 0 {
		maxOps = DefaultLintMaxOps
	}

	rep := &LintReport{}
	// NAIVE's checked cell doubles as the arc-lattice base for every
	// refined pipeline: its conservative arc set must be a superset of
	// theirs, and its profiled alias counts drive the removal audit.
	var baseProg *ir.Program
	var baseOutput string

	for _, kind := range Kinds {
		for i, lat := range memLats {
			if i > 0 && !kind.LatencySensitive() {
				break
			}
			cell := fmt.Sprintf("%s/mem%d", kind, lat)
			p, err := PrepareOpts(src, Options{Kind: kind, MemLat: lat, SpD: params, Exec: o.Exec, MaxOps: maxOps, BCode: o.BCode, NCode: o.NCode})
			if err != nil {
				if cls := resilience.Classify(err); cls == resilience.ClassFuel || cls == resilience.ClassDeadline {
					rep.Stats.Skipped++
					rep.Skips = append(rep.Skips, fmt.Sprintf("%s: preparation skipped [%s]: %v", cell, cls, err))
					continue
				}
				return nil, fmt.Errorf("lint %s: %w", cell, err)
			}
			if o.Corrupt != nil {
				o.Corrupt(p.Prog)
			}
			rep.Stats.Cells++

			var fs []verify.Finding
			var pairs map[*ir.Tree][]verify.SpecPair
			if kind == Spec && p.SpD != nil {
				pairs = p.SpD.TreePairs()
			}
			fs = append(fs, verify.CheckProgram(p.Prog)...)
			forEachTree(p.Prog, func(t *ir.Tree) {
				rep.Stats.Trees++
				fs = append(fs, verify.CheckSpecTree(t)...)
				if pairs != nil {
					fs = append(fs, verify.CheckSpecPairs(t, pairs[t])...)
					rep.Stats.Pairs += len(pairs[t])
				}
			})

			// The dynamic half interprets the program; only run it on a
			// structurally sound cell.
			if len(fs) == 0 {
				dyn, err := lintDynamic(p, lat, o.ChaosPanicAt, pairs, rep)
				if err != nil {
					switch cls := resilience.Classify(err); {
					case cls == resilience.ClassFuel || cls == resilience.ClassDeadline:
						// A budget or deadline abort says nothing about the
						// program's invariants: skip with a notice.
						rep.Stats.Skipped++
						rep.Skips = append(rep.Skips, fmt.Sprintf("%s: dynamic checks skipped [%s]: %v", cell, cls, err))
					case cls == resilience.ClassPanic:
						// A recovered crash is always a finding, never fatal:
						// one broken cell must not kill the whole battery.
						fs = append(fs, verify.Finding{
							Check: "lint/run-failed", Func: "-", Tree: "-",
							Msg: err.Error(),
						})
					case o.Corrupt == nil:
						return nil, fmt.Errorf("lint %s: %w", cell, err)
					default:
						fs = append(fs, verify.Finding{
							Check: "lint/run-failed", Func: "-", Tree: "-",
							Msg: err.Error(),
						})
					}
				} else {
					fs = append(fs, dyn.findings...)
					if kind == Naive {
						baseProg, baseOutput = p.Prog, dyn.output
					} else if baseProg != nil {
						// SpD adds real arcs for its duplicated ops, so the
						// removal audit only applies to arc-only refinements.
						audit := kind != Spec
						fs = append(fs, verify.CompareArcPrograms(
							baseProg, p.Prog, Naive.String(), kind.String(), audit)...)
						if audit {
							forEachTree(baseProg, func(t *ir.Tree) {
								rep.Stats.ArcsAudited += len(t.Arcs)
							})
						}
						if dyn.output != baseOutput {
							fs = append(fs, verify.Finding{
								Check: "lint/output-divergence", Func: "-", Tree: "-",
								Msg: fmt.Sprintf("%s output differs from NAIVE", cell),
							})
						}
					}
				}
			}

			if !o.NoCode {
				fs = append(fs, lintCode(p.Prog, &o, rep)...)
			}
			fs = append(fs, lintSchedules(p.Prog, lat, numFUs, &o, rep)...)

			for _, f := range fs {
				f.Msg = cell + ": " + f.Msg
				rep.Findings = append(rep.Findings, f)
			}
		}
	}
	return rep, nil
}

// lintResult is the dynamic half's output for one cell.
type lintResult struct {
	findings []verify.Finding
	output   string
}

// lintDynamic re-profiles the prepared program with trace recording
// piggybacked on the same interpretation, then cross-validates the arc
// counters and the pairwise commit exclusion against the trace histogram.
// Sharing one run makes the recomputed per-arc execution counts exact, so
// any mismatch is a profiler or recorder bug, not sampling noise.
func lintDynamic(p *Prepared, memLat int, chaosAt int64, pairs map[*ir.Tree][]verify.SpecPair, rep *LintReport) (*lintResult, error) {
	// Preparation may have left profile counts on the arcs (SPEC and
	// PERFECT profile before transforming); reset so the counters and the
	// histogram describe the same run of the same (final) program.
	forEachTree(p.Prog, func(t *ir.Tree) {
		for _, a := range t.Arcs {
			a.ExecCount, a.AliasCount = 0, 0
		}
	})
	rec := trace.NewRecorder()
	r := &sim.Runner{
		Prog:         p.Prog,
		SemLat:       machine.Infinite(memLat).LatencyFunc(),
		Prof:         sim.NewProfile(),
		Rec:          rec,
		MaxOps:       p.MaxOps,
		ChaosPanicAt: chaosAt,
		Exec:         p.Exec,
		BCode:        p.BCode,
		NCode:        p.NCode,
		Shapes:       p.Shapes,
	}
	res, err := func() (res *sim.Result, err error) {
		// The lint interpretation is a cell boundary: contain crashes.
		defer resilience.Recover(&err, "lint", p.Kind.String(), memLat, "lint")
		return r.Run()
	}()
	if err != nil {
		return nil, fmt.Errorf("lint run: %w", err)
	}
	if p.Output != "" && res.Output != p.Output {
		return nil, fmt.Errorf("lint run output diverged from the preparation's profiling run")
	}
	h, err := rec.Finish(res.Ops, res.Committed).Hist()
	if err != nil {
		return nil, fmt.Errorf("trace histogram: %w", err)
	}
	rep.Stats.Patterns += len(h.Entries)

	out := &lintResult{output: res.Output}
	forEachTree(p.Prog, func(t *ir.Tree) {
		out.findings = append(out.findings, verify.CrossCheckArcCounts(t, h)...)
		rep.Stats.ArcsChecked += len(t.Arcs)
		if pairs != nil {
			out.findings = append(out.findings, verify.CheckCommitExclusion(t, pairs[t], h)...)
		}
	})
	return out, nil
}

// lintCode is verification layer 4 inside the lint battery: it compiles
// every tree to both executable tiers — bytecode and native closure chains
// — and runs the translation validator over each artifact. Compilation goes
// through bcode.Compile/ncode.Compile directly, not the shared caches, so
// the CorruptBCode self-test hook can mutate a program without poisoning
// compiled code another cell might execute. Trees outside a tier's
// repertoire are skipped (they run on the reference walker and leave no
// artifact to validate).
func lintCode(prog *ir.Program, o *LintOptions, rep *LintReport) []verify.Finding {
	var fs []verify.Finding
	forEachTree(prog, func(t *ir.Tree) {
		if bp, err := bcode.Compile(t); err == nil {
			if o.CorruptBCode != nil {
				o.CorruptBCode(bp)
			}
			rep.Stats.Progs++
			fs = append(fs, verify.CheckBCode(t, bp)...)
		}
		if np, err := ncode.Compile(t); err == nil {
			if o.CorruptNCode != nil {
				o.CorruptNCode(np)
			}
			rep.Stats.Progs++
			fs = append(fs, verify.CheckNCode(t, np)...)
		}
	})
	return fs
}

// lintSchedules list-schedules every tree on an n-FU machine and validates
// the result against the tree's dependence graph — the same construction
// Plans uses for timed measurement, so a violation here means measured
// cycle counts are untrustworthy. Unless layer 5 is disabled, every built
// schedule is additionally replayed by the soundness auditor
// (verify.AuditSchedule), which also recomputes the critical path the
// reported cycle count must attain.
func lintSchedules(prog *ir.Program, memLat, n int, o *LintOptions, rep *LintReport) []verify.Finding {
	var fs []verify.Finding
	lat := machine.Infinite(memLat).LatencyFunc()
	forEachTree(prog, func(t *ir.Tree) {
		g := ir.BuildDepGraph(t, lat)
		s := sched.FromGraph(g, n)
		if o.CorruptSched != nil {
			o.CorruptSched(s)
		}
		rep.Stats.Scheds++
		if err := sched.Validate(g, s, n); err != nil {
			fs = append(fs, verify.Finding{
				Check: "sched/invalid",
				Func:  t.Fn.Name,
				Tree:  fmt.Sprintf("T%d(%s)", t.ID, t.Name),
				Msg:   err.Error(),
			})
		}
		if !o.NoSched {
			rep.Stats.Audits++
			fs = append(fs, verify.AuditSchedule(g, s, n)...)
		}
	})
	return fs
}

// forEachTree visits every tree of the program in deterministic order.
func forEachTree(prog *ir.Program, fn func(*ir.Tree)) {
	names := prog.Order
	if len(names) == 0 {
		names = make([]string, 0, len(prog.Funcs))
		for name := range prog.Funcs {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		for _, t := range prog.Funcs[name].Trees {
			fn(t)
		}
	}
}
