package disamb_test

import (
	"fmt"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// equivPrograms are adversarial MiniC programs exercising every transform
// shape with both alias outcomes. All four pipelines must produce identical
// output on each, for both memory latencies and several machine widths.
var equivPrograms = []struct {
	name string
	src  string
}{
	{"raw_alias_mix", `
int a[64];
int touch(int i, int j, int k) {
	a[i] = k * 3 + 1;
	int v = a[j];       // RAW-ambiguous with the store above
	int w = v * v + k;
	a[j + 1] = w;       // dependent store, must be guarded in copies
	return w - v;
}
void main() {
	int s = 0;
	for (int i = 0; i < 32; i = i + 1) {
		s = s + touch(i % 8, (i * 3) % 8, i);
	}
	print(s);
	for (int i = 0; i < 8; i = i + 1) { print(a[i]); }
}`},

	{"war_alias_mix", `
int b[32];
int waro(int i, int j, int x) {
	int v = b[j];    // read
	b[i] = x;        // WAR-ambiguous overwrite
	return v + b[i];
}
void main() {
	int s = 0;
	for (int k = 0; k < 24; k = k + 1) {
		s = s + waro(k % 5, k % 7, k);
	}
	print(s);
}`},

	{"waw_alias_mix", `
int c[16];
void waw(int i, int j, int x) {
	c[i] = x;        // may be overwritten below
	c[j] = x + 100;  // WAW-ambiguous
}
void main() {
	for (int k = 0; k < 16; k = k + 1) {
		waw(k % 4, (k * 2) % 4, k);
	}
	int s = 0;
	for (int k = 0; k < 16; k = k + 1) { s = s + c[k]; }
	print(s);
}`},

	{"pointer_params", `
float u[24];
float v[24];
float axpy(float x[], float y[], int n, float a) {
	float s = 0.0;
	for (int i = 0; i < n; i = i + 1) {
		y[i] = y[i] + a * x[i];  // x and y may be the same array
		s = s + y[i];
	}
	return s;
}
void main() {
	for (int i = 0; i < 24; i = i + 1) {
		u[i] = float(i) * 0.25;
		v[i] = float(24 - i);
	}
	print(axpy(u, v, 24, 0.5));   // distinct arrays
	print(axpy(u, u, 24, 0.5));   // aliased arrays
}`},

	{"index_array", `
int idx[16];
int data[16];
void main() {
	for (int i = 0; i < 16; i = i + 1) {
		idx[i] = (i * 7) % 16;
		data[i] = i;
	}
	int s = 0;
	for (int i = 0; i < 16; i = i + 1) {
		data[idx[i]] = data[idx[i]] + i;  // address loaded from memory
		s = s + data[i];
	}
	print(s);
}`},

	{"loop_carried_accum", `
float m[40];
void main() {
	for (int i = 0; i < 40; i = i + 1) { m[i] = float(i) * 0.5; }
	float acc = 0.0;
	for (int i = 0; i < 39; i = i + 1) {
		m[i + 1] = m[i + 1] + m[i] * 0.25;  // genuine cross-iteration flow
		acc = acc + m[i];
	}
	print(acc);
	print(m[39]);
}`},

	{"branchy_guarded_stores", `
int h[32];
void main() {
	for (int i = 0; i < 32; i = i + 1) { h[i] = 0; }
	for (int i = 0; i < 64; i = i + 1) {
		int k = (i * 13) % 32;
		if (k % 3 == 0) {
			h[k] = h[k] + i;
		} else {
			if (k % 3 == 1) { h[k / 2] = h[k] - i; }
		}
	}
	int s = 0;
	for (int i = 0; i < 32; i = i + 1) { s = s + h[i] * (i + 1); }
	print(s);
}`},

	{"recursion_with_memory", `
int st[64];
int walk(int n, int d) {
	if (n <= 1) { return d; }
	st[d] = n;
	int r = walk(n - 1, d + 1) + st[d];  // store/load across a call boundary
	st[d] = r % 1000;
	return r % 997;
}
void main() {
	print(walk(20, 0));
	int s = 0;
	for (int i = 0; i < 20; i = i + 1) { s = s + st[i]; }
	print(s);
}`},
}

var equivModels = []machine.Model{
	machine.Infinite(2),
	machine.New(1, 2),
	machine.New(2, 2),
	machine.New(5, 2),
	machine.New(8, 6),
	machine.New(3, 6),
}

func TestPipelinesProduceIdenticalOutput(t *testing.T) {
	for _, tc := range equivPrograms {
		t.Run(tc.name, func(t *testing.T) {
			for _, memLat := range []int{2, 6} {
				var ref string
				for _, kind := range disamb.Kinds {
					p, err := disamb.Prepare(tc.src, kind, memLat, spd.DefaultParams())
					if err != nil {
						t.Fatalf("%s m%d prepare: %v", kind, memLat, err)
					}
					res, err := disamb.Measure(p, equivModels)
					if err != nil {
						t.Fatalf("%s m%d measure: %v", kind, memLat, err)
					}
					if ref == "" {
						ref = res.Output
					} else if res.Output != ref {
						t.Fatalf("%s m%d output diverged:\n got %q\nwant %q", kind, memLat, res.Output, ref)
					}
				}
			}
		})
	}
}

// TestSpdNeverSlowerOnInfiniteMachine checks the paper's §4.3 claim: with
// unlimited resources SpD never lengthens the program.
func TestSpdNeverSlowerOnInfiniteMachine(t *testing.T) {
	for _, tc := range equivPrograms {
		t.Run(tc.name, func(t *testing.T) {
			for _, memLat := range []int{2, 6} {
				inf := []machine.Model{machine.Infinite(memLat)}
				st, err := disamb.Prepare(tc.src, disamb.Static, memLat, spd.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				stRes, err := disamb.Measure(st, inf)
				if err != nil {
					t.Fatal(err)
				}
				sp, err := disamb.Prepare(tc.src, disamb.Spec, memLat, spd.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				spRes, err := disamb.Measure(sp, inf)
				if err != nil {
					t.Fatal(err)
				}
				// §5.3: the address comparison may itself land on the
				// critical path, so allow a small overhead margin.
				if float64(spRes.Times[0]) > float64(stRes.Times[0])*1.02 {
					t.Errorf("memLat %d: SPEC (%d cycles) slower than STATIC (%d) on infinite machine",
						memLat, spRes.Times[0], stRes.Times[0])
				}
			}
		})
	}
}

// TestSpdAppliesSomewhere keeps the suite honest: at least one program must
// actually trigger the transform.
func TestSpdAppliesSomewhere(t *testing.T) {
	total := 0
	for _, tc := range equivPrograms {
		p, err := disamb.Prepare(tc.src, disamb.Spec, 6, spd.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.SpD != nil {
			total += len(p.SpD.Apps)
			if len(p.SpD.Apps) > 0 {
				t.Logf("%s: %d applications (RAW %d, WAR %d, WAW %d, +%d ops)",
					tc.name, len(p.SpD.Apps), p.SpD.RAW, p.SpD.WAR, p.SpD.WAW, p.SpD.AddedOps)
			}
		}
	}
	if total == 0 {
		t.Fatal("SpD never applied on any equivalence program")
	}
	fmt.Println("total SpD applications:", total)
}
