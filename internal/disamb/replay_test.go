package disamb_test

import (
	"bytes"
	"reflect"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

func stdModels(memLat int) []machine.Model {
	models := []machine.Model{machine.Infinite(memLat)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, memLat))
	}
	return models
}

// TestReplayMeasureMatchesMeasure checks the full pipeline-level equivalence
// on the real benchmarks: for every disambiguator, ReplayMeasure on a
// captured trace reports the same Times as an interpreting Measure.
func TestReplayMeasureMatchesMeasure(t *testing.T) {
	params := spd.DefaultParams()
	for _, bm := range bench.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range disamb.Kinds {
				p, err := disamb.PrepareOpts(bm.Source, disamb.Options{
					Kind: kind, MemLat: 2, SpD: params, Record: kind == disamb.Perfect,
					Verify: true, // the replay differential doubles as a verifier oracle
				})
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				if (p.Trace != nil) != (kind == disamb.Perfect) {
					t.Fatalf("%s: piggybacked trace presence = %v", kind, p.Trace != nil)
				}
				tr, err := disamb.Capture(p)
				if err != nil {
					t.Fatalf("%s capture: %v", kind, err)
				}
				models := stdModels(2)
				want, err := disamb.Measure(p, models)
				if err != nil {
					t.Fatalf("%s measure: %v", kind, err)
				}
				got, err := disamb.ReplayMeasure(p, models, tr)
				if err != nil {
					t.Fatalf("%s replay: %v", kind, err)
				}
				if !reflect.DeepEqual(got.Times, want.Times) {
					t.Fatalf("%s: replay times %v, interp times %v", kind, got.Times, want.Times)
				}
				if got.Ops != want.Ops || got.Committed != want.Committed {
					t.Fatalf("%s: replay ops/committed %d/%d, interp %d/%d",
						kind, got.Ops, got.Committed, want.Ops, want.Committed)
				}
			}
		})
	}
}

// TestTraceClassShared pins the execution-class property the exper trace
// cache exploits: NAIVE, STATIC and PERFECT transform arcs only, so one
// source's three preparations execute identical instruction streams and a
// single trace (recorded by PERFECT's profiling run) replays against all
// three — at any memory latency, since none of them is latency-sensitive.
func TestTraceClassShared(t *testing.T) {
	params := spd.DefaultParams()
	for _, bm := range []string{"fft", "quick", "queen"} {
		src := bench.ByName(bm).Source
		perfect, err := disamb.PrepareOpts(src, disamb.Options{
			Kind: disamb.Perfect, MemLat: 2, SpD: params, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if perfect.Trace == nil {
			t.Fatalf("%s: PERFECT did not piggyback a trace on its profiling run", bm)
		}
		for _, kind := range []disamb.Kind{disamb.Naive, disamb.Static} {
			if kind.LatencySensitive() {
				t.Fatalf("%s unexpectedly latency-sensitive", kind)
			}
			for _, memLat := range []int{2, 6} {
				p, err := disamb.Prepare(src, kind, memLat, params)
				if err != nil {
					t.Fatal(err)
				}
				// The shared trace must both replay cleanly and agree with an
				// interpreting measurement of this preparation.
				models := stdModels(memLat)
				want, err := disamb.Measure(p, models)
				if err != nil {
					t.Fatal(err)
				}
				got, err := disamb.ReplayMeasure(p, models, perfect.Trace)
				if err != nil {
					t.Fatalf("%s/%s memLat %d: replaying PERFECT's trace: %v", bm, kind, memLat, err)
				}
				if !reflect.DeepEqual(got.Times, want.Times) {
					t.Fatalf("%s/%s memLat %d: shared-trace times %v, interp %v",
						bm, kind, memLat, got.Times, want.Times)
				}
				// And the dedicated capture of this preparation is the very
				// same byte stream.
				tr, err := disamb.Capture(p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(tr.Bytes(), perfect.Trace.Bytes()) {
					t.Fatalf("%s/%s memLat %d: capture differs from PERFECT's trace (%d vs %d bytes)",
						bm, kind, memLat, tr.Size(), perfect.Trace.Size())
				}
			}
		}
	}
}

// TestRandomProgramsReplayEquivalence is the differential fuzzer for the
// replay backend: on random programs, across all four pipelines and several
// machine sets, replay pricing must match interpretation bit for bit — SPEC
// from its own capture (its profiling stream predates the transform), the
// arc-only pipelines also from a PERFECT-recorded shared trace.
func TestRandomProgramsReplayEquivalence(t *testing.T) {
	params := spd.DefaultParams()
	params.MinGain = 0.01 // transform aggressively to stress the machinery
	nSeeds := int64(25)
	if testing.Short() {
		nSeeds = 6
	}
	models := []machine.Model{machine.Infinite(2), machine.New(2, 6), machine.New(6, 2)}
	for seed := int64(1); seed <= nSeeds; seed++ {
		src := newProgGen(seed).generate()
		var shared *disamb.Prepared
		// PERFECT first so its recorded trace is available to the arc-only
		// pipelines below.
		for _, kind := range []disamb.Kind{disamb.Perfect, disamb.Naive, disamb.Static, disamb.Spec} {
			p, err := disamb.PrepareOpts(src, disamb.Options{
				Kind: kind, MemLat: 2, SpD: params, Record: kind == disamb.Perfect,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, kind, err, src)
			}
			if kind == disamb.Perfect {
				shared = p
			}
			tr, err := disamb.Capture(p)
			if err != nil {
				t.Fatalf("seed %d %s capture: %v\n%s", seed, kind, err, src)
			}
			want, err := disamb.Measure(p, models)
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, kind, err, src)
			}
			got, err := disamb.ReplayMeasure(p, models, tr)
			if err != nil {
				t.Fatalf("seed %d %s replay: %v\n%s", seed, kind, err, src)
			}
			if !reflect.DeepEqual(got.Times, want.Times) || got.Ops != want.Ops {
				t.Fatalf("seed %d %s: replay %v ops %d, interp %v ops %d\n%s",
					seed, kind, got.Times, got.Ops, want.Times, want.Ops, src)
			}
			if !kind.LatencySensitive() && shared != nil {
				got, err := disamb.ReplayMeasure(p, models, shared.Trace)
				if err != nil {
					t.Fatalf("seed %d %s shared replay: %v\n%s", seed, kind, err, src)
				}
				if !reflect.DeepEqual(got.Times, want.Times) {
					t.Fatalf("seed %d %s: shared-trace replay %v, interp %v\n%s",
						seed, kind, got.Times, want.Times, src)
				}
			}
		}
	}
}
