// Package disamb assembles the four disambiguator pipelines compared in the
// paper's evaluation (Table 6-4): NAIVE (no disambiguation), STATIC
// (GCD/Banerjee), SPEC (static followed by speculative disambiguation), and
// PERFECT (profile-derived removal of every superfluous arc — an optimistic
// upper bound on static disambiguation).
package disamb

import (
	"context"
	"fmt"

	"specdis/internal/alias"
	"specdis/internal/bcode"
	"specdis/internal/compile"
	"specdis/internal/graft"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/trace"
	"specdis/internal/verify"
)

// Kind selects a disambiguator pipeline.
type Kind uint8

// The four disambiguators of Table 6-4.
const (
	Naive Kind = iota
	Static
	Spec
	Perfect
)

func (k Kind) String() string {
	switch k {
	case Naive:
		return "NAIVE"
	case Static:
		return "STATIC"
	case Spec:
		return "SPEC"
	case Perfect:
		return "PERFECT"
	}
	return fmt.Sprintf("disamb(%d)", int(k))
}

// LatencySensitive reports whether the pipeline's prepared program depends
// on the memory latency it targets. Only SPEC consults the latency (the SpD
// profitability heuristic weighs load latencies when picking dependences to
// speculate on); NAIVE, STATIC and PERFECT produce identical programs and
// profiles at every latency, so their evaluation cells can be shared across
// latencies.
func (k Kind) LatencySensitive() bool { return k == Spec }

// Kinds lists all pipelines in presentation order.
var Kinds = []Kind{Naive, Static, Spec, Perfect}

// Prepared is a program processed by one disambiguator, ready to schedule
// and measure.
type Prepared struct {
	Kind    Kind
	MemLat  int
	Prog    *ir.Program
	Profile *sim.Profile // profiling run results (Spec and Perfect only)
	Output  string       // output of the profiling run, for validation
	SpD     *spd.Result  // Spec only
	Static  alias.Stats  // Static and Spec only
	// BaseOps is the operation count before SpD (code-size baseline,
	// including any grafting).
	BaseOps int
	// Grafts counts applied tree grafts (0 unless Options.Graft is set).
	Grafts int
	// Trace is the execution trace recorded during the profiling run, when
	// Options.Record was set and the pipeline's profiling interpretation is
	// execution-equivalent to the final program (PERFECT: its transform
	// removes arcs only, never ops). Nil otherwise; Capture materializes a
	// trace for any prepared program.
	Trace *trace.Trace
	// MaxOps is Options.MaxOps, carried so Measure and Capture runs share
	// the preparation's operation budget.
	MaxOps int64
	// Ctx is Options.Ctx, carried so Measure and Capture runs share the
	// preparation's cancellation scope.
	Ctx context.Context
	// Exec is the execution backend every interpretation of this preparation
	// uses (Options.Exec), and TierUp its adaptive-tiering hot threshold
	// (Options.TierUp).
	Exec   sim.ExecMode
	TierUp int64
	// BCode and NCode cache the program's compiled bytecode and native
	// closure chains, so every interpretation of this preparation — the
	// profiling run, Capture, Measure, verification reruns — shares one
	// compilation of each tree. Both caches are content-addressed
	// (ir.AppendExecKey), so they are safe across op-level transformations
	// (a mutated tree re-keys and recompiles) and may be shared across
	// preparations and program clones; sweep drivers (internal/exper) supply
	// one pair for a whole sweep via Options.
	BCode *bcode.Cache
	NCode *ncode.Cache
	// Shapes shares the simulator's pricing skeletons across every run of
	// this preparation (Measure sweeps, Capture, Recapture, replay). Unlike
	// the compiled-code caches it keys on tree identity, so it is created
	// only after preparation's op-level transformations are done and is
	// never shared across preparations.
	Shapes *sim.ShapeCache
}

// Options configure a pipeline beyond the paper's defaults.
type Options struct {
	Kind   Kind
	MemLat int
	SpD    spd.Params
	// Prog, when non-nil, is a pre-compiled program the pipeline takes
	// ownership of and mutates in place; the source string is then ignored.
	// Callers preparing several pipelines from one source compile it once and
	// hand each preparation a private ir.Program.Clone, skipping the repeated
	// lexing and lowering.
	Prog *ir.Program
	// Graft, when non-nil, enlarges decision trees by tail duplication
	// before disambiguation (the paper's §7 "grafting" extension), for
	// GraftRounds rounds (default 1).
	Graft       *graft.Params
	GraftRounds int
	// Record asks the pipeline to piggyback an execution-trace recording on
	// its profiling interpretation when that run is valid for the final
	// program (see Prepared.Trace). It never adds an interpretation.
	Record bool
	// Verify runs the static verifier after every pipeline stage — lowering,
	// grafting, static disambiguation, the SpD transform (including its
	// per-application debug hook), and PERFECT's arc removal — failing the
	// preparation on the first invariant violation. Debug mode.
	Verify bool
	// MaxOps bounds the dynamic operation count of every interpretation of
	// the prepared program — the profiling run here and the later Measure
	// and Capture runs (0 = sim.DefaultMaxOps). The fuzzers set a small
	// budget so runaway generated programs fail fast.
	MaxOps int64
	// Ctx, when non-nil, cancels every interpretation of the prepared
	// program — the profiling run and the later Measure and Capture runs —
	// with a typed deadline error (see sim.Runner.Ctx).
	Ctx context.Context
	// Exec selects the execution backend for every interpretation of the
	// prepared program (zero value: the bytecode engine).
	Exec sim.ExecMode
	// TierUp, under sim.ExecNative, defers each tree's native compile until
	// it has executed TierUp times within a run (see sim.Runner.TierUp);
	// zero compiles eagerly.
	TierUp int64
	// ExecCounters, when non-nil, accumulates compilation and cache
	// statistics across the preparation and everything derived from it
	// (bytecode or native, per Exec).
	ExecCounters *bcode.Counters
	// BCode and NCode, when non-nil, are shared compiled-code caches the
	// preparation (and everything derived from it) compiles through. Left
	// nil, the preparation creates private caches wired to ExecCounters.
	// Sharing one pair across a sweep lets identical trees — clones handed
	// to different cells, re-preparations of one source — compile once.
	BCode *bcode.Cache
	NCode *ncode.Cache
}

// verifyStage checks the program's structural and speculation-safety
// invariants after a pipeline stage. pairs, when non-nil, adds the
// pair-precise mutual-exclusion check over SpD's recorded duplications.
func verifyStage(prog *ir.Program, stage string, pairs map[*ir.Tree][]verify.SpecPair) error {
	fs := verify.CheckProgram(prog)
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			fs = append(fs, verify.CheckSpecTree(t)...)
			if pairs != nil {
				fs = append(fs, verify.CheckSpecPairs(t, pairs[t])...)
			}
		}
	}
	if len(fs) > 0 {
		return fmt.Errorf("verify after %s: %d finding(s), first: %s", stage, len(fs), fs[0])
	}
	return nil
}

// Prepare compiles src and applies the selected disambiguator. memLat is the
// memory latency the SpD heuristic optimizes for (it also parameterizes the
// profiling run's semantic order; committed results are identical either
// way).
func Prepare(src string, kind Kind, memLat int, params spd.Params) (*Prepared, error) {
	return PrepareOpts(src, Options{Kind: kind, MemLat: memLat, SpD: params})
}

// PrepareOpts is Prepare with extension options.
func PrepareOpts(src string, o Options) (*Prepared, error) {
	kind, memLat := o.Kind, o.MemLat
	prog := o.Prog
	if prog == nil {
		var err error
		prog, err = compile.CompileOpts(src, compile.Options{Verify: o.Verify})
		if err != nil {
			return nil, err
		}
	}
	p := &Prepared{Kind: kind, MemLat: memLat, Prog: prog, BaseOps: prog.OpCount(), MaxOps: o.MaxOps, Ctx: o.Ctx, Exec: o.Exec, TierUp: o.TierUp}
	p.BCode = o.BCode
	if p.BCode == nil {
		p.BCode = bcode.NewCache(o.ExecCounters)
	}
	p.NCode = o.NCode
	if p.NCode == nil {
		p.NCode = ncode.NewCache(o.ExecCounters)
	}
	lat := machine.Infinite(memLat).LatencyFunc()

	profileRun := func(rec *trace.Recorder) error {
		// Content addressing makes the shared caches safe even for profiling
		// runs that precede an op-level transformation (grafting rounds,
		// SPEC's pre-SpD profile): the transformed trees re-key and
		// recompile, while untouched trees keep hitting.
		p.Profile = sim.NewProfile()
		r := &sim.Runner{Prog: prog, SemLat: lat, Prof: p.Profile, Rec: rec, MaxOps: o.MaxOps, Ctx: o.Ctx, Exec: o.Exec, TierUp: o.TierUp, BCode: p.BCode, NCode: p.NCode}
		res, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s profiling run: %w", kind, err)
		}
		p.Output = res.Output
		if rec != nil {
			p.Trace = rec.Finish(res.Ops, res.Committed)
		}
		return nil
	}

	if o.Graft != nil {
		rounds := o.GraftRounds
		if rounds <= 0 {
			rounds = 1
		}
		for i := 0; i < rounds; i++ {
			if err := profileRun(nil); err != nil {
				return nil, err
			}
			res := graft.Program(prog, p.Profile, *o.Graft)
			p.Grafts += res.Grafts
			if res.Grafts == 0 {
				break
			}
			if err := prog.Validate(); err != nil {
				return nil, fmt.Errorf("grafting broke the program: %w", err)
			}
		}
		// Grafting grows the pre-SpD baseline.
		p.BaseOps = prog.OpCount()
		if o.Verify {
			if err := verifyStage(prog, "grafting", nil); err != nil {
				return nil, err
			}
		}
	}

	switch kind {
	case Naive:
		// Keep every conservative arc.

	case Static:
		p.Static = alias.ResolveProgram(prog)
		if o.Verify {
			if err := verifyStage(prog, "static disambiguation", nil); err != nil {
				return nil, err
			}
		}

	case Perfect:
		// The profiling run executes the exact stream of the final program:
		// removeSuperfluous only deletes arcs, which execution never reads.
		// Recording here makes the prepared trace free.
		var rec *trace.Recorder
		if o.Record {
			rec = trace.NewRecorder()
		}
		if err := profileRun(rec); err != nil {
			return nil, err
		}
		removeSuperfluous(prog)
		if o.Verify {
			if err := verifyStage(prog, "superfluous-arc removal", nil); err != nil {
				return nil, err
			}
		}

	case Spec:
		// The profiling run precedes the SpD transform, so its stream is NOT
		// a trace of the final program; Capture records one afterwards.
		if err := profileRun(nil); err != nil {
			return nil, err
		}
		p.Static = alias.ResolveProgram(prog)
		params := o.SpD
		params.Verify = params.Verify || o.Verify
		p.SpD = spd.Transform(prog, p.Profile, lat, params)
		if p.SpD.VerifyErr != nil {
			return nil, fmt.Errorf("SPEC transform failed verification: %w", p.SpD.VerifyErr)
		}
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("SPEC transform broke the program: %w", err)
		}
		if o.Verify {
			if err := verifyStage(prog, "SpD transform", p.SpD.TreePairs()); err != nil {
				return nil, err
			}
		}
	}
	if o.Verify {
		// Layers 4–5 on the final trees: translation-validate both compiled
		// tiers and audit a finite-machine list schedule for every tree, so
		// a debug preparation proves not just the IR transforms (layers 1–3
		// above) but the code the executable tiers would actually run and
		// the timelines the evaluation would report.
		if err := verifyCompiled(prog, lat); err != nil {
			return nil, err
		}
	}
	// Tree structure is final from here on (arc counters still mutate, but
	// the shapes only capture arc endpoints), so the identity-keyed shape
	// cache becomes safe to share across this preparation's runs. The
	// profiling runs above predate the transforms and deliberately skip it.
	p.Shapes = sim.NewShapeCache()
	return p, nil
}

// verifyCompiled runs verification layers 4 and 5 over every tree of a
// prepared program: compile to the bytecode and native tiers (trees outside
// a tier's repertoire run on the reference walker and are skipped), run the
// translation validator on each artifact, then list-schedule on a 5-FU
// machine and replay the result through the soundness auditor. Used by the
// Verify debug option and, through it, the end-to-end differential fuzzer.
func verifyCompiled(prog *ir.Program, lat ir.LatencyFunc) error {
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			if bp, err := bcode.Compile(t); err == nil {
				if err := verify.BCode(t, bp); err != nil {
					return fmt.Errorf("bytecode of %s/%s fails translation validation: %w", name, t.Name, err)
				}
			}
			if np, err := ncode.Compile(t); err == nil {
				if err := verify.NCode(t, np); err != nil {
					return fmt.Errorf("native code of %s/%s fails translation validation: %w", name, t.Name, err)
				}
			}
			const nFUs = 5
			g := ir.BuildDepGraph(t, lat)
			s := sched.FromGraph(g, nFUs)
			if err := verify.Schedule(g, s, nFUs); err != nil {
				return fmt.Errorf("schedule of %s/%s fails soundness audit: %w", name, t.Name, err)
			}
		}
	}
	return nil
}

// removeSuperfluous deletes every arc whose endpoints never accessed a
// common address during profiling (including never-executed pairs): the
// paper's PERFECT construction, an optimistic bound on any real static
// disambiguator.
func removeSuperfluous(prog *ir.Program) {
	for _, name := range prog.Order {
		for _, t := range prog.Funcs[name].Trees {
			kept := t.Arcs[:0]
			for _, a := range t.Arcs {
				if a.AliasCount > 0 {
					kept = append(kept, a)
				}
			}
			t.Arcs = kept
		}
	}
}

// Plans builds pricing plans for each machine model over the prepared
// program's trees. Op latencies depend only on a model's memory latency, so
// each tree's dependence graph is built once per distinct memory latency and
// shared by every model's list-scheduling pass — for the usual nine-model
// Measure call that is one graph per tree instead of nine.
func Plans(p *Prepared, models []machine.Model) []*sim.Plan {
	plans := make([]*sim.Plan, len(models))
	byMemLat := map[int][]int{} // memory latency -> model indices
	for i, m := range models {
		plans[i] = sim.NewPlan(m.Name)
		byMemLat[m.MemLatency] = append(byMemLat[m.MemLatency], i)
	}
	for _, name := range p.Prog.Order {
		for _, t := range p.Prog.Funcs[name].Trees {
			for memLat, idxs := range byMemLat {
				g := ir.BuildDepGraph(t, machine.Infinite(memLat).LatencyFunc())
				for _, i := range idxs {
					plans[i].SetTree(t, sched.FromGraph(g, models[i].NumFUs).Comp)
				}
			}
		}
	}
	return plans
}

// MeasureOpt adjusts one measurement, capture or replay run without touching
// the preparation it runs against. The zero value changes nothing; the
// degradation ladder (internal/exper) and the fault-injection harness are the
// intended users.
type MeasureOpt struct {
	// Ctx overrides the preparation's context when non-nil.
	Ctx context.Context
	// MaxOps overrides the preparation's fuel budget when positive — the
	// fuel-exhaustion fault shrinks one run's budget without touching the
	// shared preparation.
	MaxOps int64
	// Exec overrides the preparation's execution backend when ExecSet — the
	// bcode→tree retry rung sets it after a bytecode-side failure.
	Exec    sim.ExecMode
	ExecSet bool
	// ChaosPanicAt, when positive, arms the run's injected-panic hook (see
	// sim.Runner.ChaosPanicAt).
	ChaosPanicAt int64
	// ChaosPlans, when non-nil, mutates the freshly built pricing plans
	// before the run — the schedule-dropping fault uses it.
	ChaosPlans func([]*sim.Plan)
}

func (o MeasureOpt) exec(p *Prepared) sim.ExecMode {
	if o.ExecSet {
		return o.Exec
	}
	return p.Exec
}

func (o MeasureOpt) ctx(p *Prepared) context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return p.Ctx
}

func (o MeasureOpt) maxOps(p *Prepared) int64 {
	if o.MaxOps > 0 {
		return o.MaxOps
	}
	return p.MaxOps
}

// Capture returns an execution trace of the prepared program for replay
// pricing: the trace piggybacked on the profiling run when one is valid
// (see Options.Record), otherwise one fresh recording interpretation. The
// recorded run is validated against the profiling output when one exists.
func Capture(p *Prepared) (*trace.Trace, error) {
	if p.Trace != nil {
		return p.Trace, nil
	}
	return Recapture(p, MeasureOpt{})
}

// Recapture records a fresh execution trace of the prepared program, ignoring
// any trace the preparation already carries — the replay→recapture recovery
// rung for a trace that failed its integrity check.
func Recapture(p *Prepared, opt MeasureOpt) (*trace.Trace, error) {
	rec := trace.NewRecorder()
	r := &sim.Runner{
		Prog:         p.Prog,
		SemLat:       machine.Infinite(p.MemLat).LatencyFunc(),
		Rec:          rec,
		MaxOps:       opt.maxOps(p),
		Ctx:          opt.ctx(p),
		ChaosPanicAt: opt.ChaosPanicAt,
		Exec:         opt.exec(p),
		TierUp:       p.TierUp,
		BCode:        p.BCode,
		NCode:        p.NCode,
		Shapes:       p.Shapes,
	}
	res, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("%s capture run: %w", p.Kind, err)
	}
	if p.Output != "" && res.Output != p.Output {
		return nil, fmt.Errorf("%s capture run output diverged from profiling run", p.Kind)
	}
	return rec.Finish(res.Ops, res.Committed), nil
}

// ReplayMeasure prices the prepared program under every model by replaying
// tr against the models' schedules — no operand is evaluated. Times are
// bit-identical to Measure on the same cell; Output is empty (the capture
// run already validated it) and Ops/Committed are the recorded run's.
//
// tr must trace an execution-equivalent program: same tree indices, ops,
// guards and exits (arcs may differ — they affect schedules, not
// execution). NAIVE, STATIC and PERFECT preparations of one source satisfy
// this mutually; SPEC needs a trace of its own transformed program.
func ReplayMeasure(p *Prepared, models []machine.Model, tr *trace.Trace) (*sim.Result, error) {
	return ReplayMeasureWith(p, models, tr, MeasureOpt{})
}

// ReplayMeasureWith is ReplayMeasure with per-run options (replay evaluates
// no operand, so only ChaosPlans applies).
func ReplayMeasureWith(p *Prepared, models []machine.Model, tr *trace.Trace, opt MeasureOpt) (*sim.Result, error) {
	plans := Plans(p, models)
	if opt.ChaosPlans != nil {
		opt.ChaosPlans(plans)
	}
	rp := &sim.Replayer{Prog: p.Prog, Plans: plans, Shapes: p.Shapes}
	res, err := rp.Replay(tr)
	if err != nil {
		return nil, fmt.Errorf("%s replay: %w", p.Kind, err)
	}
	return res, nil
}

// Measure executes the prepared program once, pricing it under every model.
// The returned Times slice parallels models.
func Measure(p *Prepared, models []machine.Model) (*sim.Result, error) {
	return MeasureWith(p, models, MeasureOpt{})
}

// MeasureWith is Measure with per-run options.
func MeasureWith(p *Prepared, models []machine.Model, opt MeasureOpt) (*sim.Result, error) {
	plans := Plans(p, models)
	if opt.ChaosPlans != nil {
		opt.ChaosPlans(plans)
	}
	r := &sim.Runner{
		Prog:         p.Prog,
		SemLat:       machine.Infinite(p.MemLat).LatencyFunc(),
		Plans:        plans,
		MaxOps:       opt.maxOps(p),
		Ctx:          opt.ctx(p),
		ChaosPanicAt: opt.ChaosPanicAt,
		Exec:         opt.exec(p),
		TierUp:       p.TierUp,
		BCode:        p.BCode,
		NCode:        p.NCode,
		Shapes:       p.Shapes,
	}
	res, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("%s timed run: %w", p.Kind, err)
	}
	if p.Output != "" && res.Output != p.Output {
		return nil, fmt.Errorf("%s output diverged from profiling run", p.Kind)
	}
	return res, nil
}
