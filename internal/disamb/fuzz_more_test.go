package disamb_test

import (
	"testing"

	"specdis/internal/alias"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/graft"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// floatProg wraps the integer generator's skeleton with floating-point
// traffic: a float array updated through ambiguous parameter accesses.
func floatProg(seed int64) string {
	g := newProgGen(seed)
	intPart := g.generate()
	// Splice a float kernel in front of main's digest: reuse main's arrays
	// for indices, compute through a float array.
	return `
float fv[16];
void fkernel(float x[], int i, int j) {
	x[i] = x[j] * 1.5 + 0.25;
	x[(i + j) % 16] += x[i] - x[j];
}
` + intPart + `
void extra() {
	for (int k = 0; k < 16; k = k + 1) { fv[k] = float(k) * 0.5; }
	for (int k = 0; k < 24; k = k + 1) {
		fkernel(fv, (k * 7) % 16, (a0[k % 16] % 16 + 16) % 16);
	}
	float fs = 0.0;
	for (int k = 0; k < 16; k = k + 1) { fs = fs + fv[k]; }
	print(fs);
}
`
}

// TestFloatProgramsAgreeAcrossPipelines extends the differential fuzz to
// floating-point dataflow (the NRC benchmarks' domain). The extra function
// must be reachable, so the generated main is patched to call it.
func TestFloatProgramsAgreeAcrossPipelines(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	models := []machine.Model{machine.Infinite(6), machine.New(3, 2)}
	params := spd.DefaultParams()
	params.MinGain = 0.01
	for seed := int64(100); seed < int64(100+n); seed++ {
		src := floatProg(seed)
		// Call extra() at the start of main.
		src = replaceOnce(src, "void main() {\n", "void main() {\n\textra();\n")
		var ref string
		for _, kind := range disamb.Kinds {
			p, err := disamb.Prepare(src, kind, 6, params)
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, kind, err, src)
			}
			res, err := disamb.Measure(p, models)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, kind, err)
			}
			if ref == "" {
				ref = res.Output
			} else if res.Output != ref {
				t.Fatalf("seed %d: %s diverged\n%s", seed, kind, src)
			}
		}
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	panic("pattern not found: " + old)
}

// TestGraftedPipelinesAgree fuzzes the grafting extension: grafted SPEC must
// agree with plain NAIVE on random programs.
func TestGraftedPipelinesAgree(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	gp := graft.DefaultParams()
	models := []machine.Model{machine.New(4, 2)}
	params := spd.DefaultParams()
	params.MinGain = 0.01
	for seed := int64(1); seed <= int64(n); seed++ {
		src := newProgGen(seed).generate()
		base, err := disamb.Prepare(src, disamb.Naive, 2, params)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := disamb.Measure(base, models)
		if err != nil {
			t.Fatal(err)
		}
		grafted, err := disamb.PrepareOpts(src, disamb.Options{
			Kind: disamb.Spec, MemLat: 2, SpD: params,
			Graft: &gp, GraftRounds: 3,
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		rg, err := disamb.Measure(grafted, models)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if rb.Output != rg.Output {
			t.Fatalf("seed %d: grafted SPEC diverged from NAIVE\n%s", seed, src)
		}
	}
}

// TestCombinedPipelineAgrees fuzzes §7 combined speculation against the
// untransformed program.
func TestCombinedPipelineAgrees(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	lat := machine.Infinite(2).LatencyFunc()
	for seed := int64(1); seed <= int64(n); seed++ {
		src := newProgGen(seed).generate()
		prog, err := compile.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		prof := sim.NewProfile()
		r0 := &sim.Runner{Prog: prog, SemLat: lat, Prof: prof}
		before, err := r0.Run()
		if err != nil {
			t.Fatal(err)
		}
		alias.ResolveProgram(prog)
		params := spd.DefaultParams()
		params.MaxAliasProb = 0.9 // stress even likely-aliasing groups
		spd.TransformCombined(prog, prof, params)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1 := &sim.Runner{Prog: prog, SemLat: lat}
		after, err := r1.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if before.Output != after.Output {
			t.Fatalf("seed %d: combined speculation diverged\n%s", seed, src)
		}
	}
}
