package disamb

import (
	"fmt"
	"sync/atomic"
	"testing"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/sched"
	"specdis/internal/spd"
	"specdis/internal/verify"
)

// TestValidateAllBenchmarksClean is the golden test for verification layers
// 4–5: every benchmark, prepared under every pipeline, must compile to
// bytecode and native code that the translation validator accepts, and
// list-schedule on both the infinite and the paper's 5-FU machine to
// timelines the schedule auditor accepts — with zero findings. The counters
// assert the run was not vacuous (trees actually compiled and audited).
func TestValidateAllBenchmarksClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and audits the whole suite under all pipelines")
	}
	var progs, scheds atomic.Int64
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if progs.Load() == 0 || scheds.Load() == 0 {
			t.Errorf("vacuous run: %d compiled programs validated, %d schedules audited", progs.Load(), scheds.Load())
		}
		t.Logf("validated %d compiled programs, audited %d schedules", progs.Load(), scheds.Load())
	})
	for _, b := range bench.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range Kinds {
				p, err := Prepare(b.Source, kind, 2, spd.DefaultParams())
				if err != nil {
					t.Fatalf("%s: prepare: %v", kind, err)
				}
				forEachTree(p.Prog, func(tr *ir.Tree) {
					label := fmt.Sprintf("%s %s/T%d(%s)", kind, tr.Fn.Name, tr.ID, tr.Name)
					if bp, err := bcode.Compile(tr); err == nil {
						progs.Add(1)
						for _, f := range verify.CheckBCode(tr, bp) {
							t.Errorf("%s: %s", label, f)
						}
					}
					if np, err := ncode.Compile(tr); err == nil {
						progs.Add(1)
						for _, f := range verify.CheckNCode(tr, np) {
							t.Errorf("%s: %s", label, f)
						}
					}
					g := ir.BuildDepGraph(tr, machine.Infinite(2).LatencyFunc())
					for _, n := range []int{0, 5} {
						s := sched.FromGraph(g, n)
						scheds.Add(1)
						for _, f := range verify.AuditSchedule(g, s, n) {
							t.Errorf("%s (n=%d): %s", label, n, f)
						}
					}
				})
			}
		})
	}
}
