package sched_test

import (
	"testing"

	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
)

// BenchmarkListSchedule times the heap scheduler over the full benchmark
// corpus on the 5-FU / 2-cycle machine, with dependence graphs prebuilt —
// scheduling cost only.
func BenchmarkListSchedule(b *testing.B) {
	trees := allTrees(b)
	m := machine.New(5, 2)
	graphs := make([]*ir.DepGraph, len(trees))
	for i, tr := range trees {
		graphs[i] = ir.BuildDepGraph(tr, m.LatencyFunc())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			sched.FromGraph(g, m.NumFUs)
		}
	}
}

// BenchmarkListScheduleRef is the seed scan scheduler on the same corpus,
// the baseline BenchmarkListSchedule is measured against.
func BenchmarkListScheduleRef(b *testing.B) {
	trees := allTrees(b)
	m := machine.New(5, 2)
	graphs := make([]*ir.DepGraph, len(trees))
	for i, tr := range trees {
		graphs[i] = ir.BuildDepGraph(tr, m.LatencyFunc())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			sched.ListScheduleRef(g, m.NumFUs)
		}
	}
}
