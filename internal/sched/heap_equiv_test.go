package sched_test

import (
	"testing"

	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
)

// nineModels returns the nine machine models one Measure cell schedules
// under: the infinite machine plus widths 1..8, at one memory latency.
func nineModels(memLat int) []machine.Model {
	models := []machine.Model{machine.Infinite(memLat)}
	for w := 1; w <= 8; w++ {
		models = append(models, machine.New(w, memLat))
	}
	return models
}

// TestHeapSchedulerMatchesReferenceEverywhere locks the heap scheduler to
// the seed scan scheduler: on every tree of the benchmark suite, under all
// nine machine models and both memory latencies, the schedules must be
// bit-identical (hence valid and never longer), and Validate must accept
// them.
func TestHeapSchedulerMatchesReferenceEverywhere(t *testing.T) {
	trees := allTrees(t)
	for _, memLat := range []int{2, 6} {
		models := nineModels(memLat)
		for _, tr := range trees {
			// One graph per tree serves every model of this latency — the
			// same sharing disamb.Plans relies on.
			g := ir.BuildDepGraph(tr, models[0].LatencyFunc())
			for _, m := range models {
				got := sched.FromGraph(g, m.NumFUs)
				if err := sched.Validate(g, got, m.NumFUs); err != nil {
					t.Fatalf("%s on %s: invalid schedule: %v", tr.Name, m.Name, err)
				}
				if m.NumFUs == 0 {
					continue // ASAP path has no reference counterpart
				}
				ref := sched.ListScheduleRef(g, m.NumFUs)
				if err := sched.Validate(g, ref, m.NumFUs); err != nil {
					t.Fatalf("%s on %s: reference schedule invalid: %v", tr.Name, m.Name, err)
				}
				if got.Length() > ref.Length() {
					t.Errorf("%s on %s: heap schedule longer than reference (%d > %d)",
						tr.Name, m.Name, got.Length(), ref.Length())
				}
				for i := range tr.Ops {
					if got.Issue[i] != ref.Issue[i] {
						t.Fatalf("%s on %s: op %d issues at %d, reference at %d",
							tr.Name, m.Name, i, got.Issue[i], ref.Issue[i])
					}
				}
			}
		}
	}
}
