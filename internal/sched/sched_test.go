package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sched"
)

// allTrees compiles every benchmark and returns all executed-shape trees —
// a rich corpus of real dependence graphs.
func allTrees(t testing.TB) []*ir.Tree {
	t.Helper()
	var trees []*ir.Tree
	for _, b := range bench.All() {
		prog, err := compile.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, name := range prog.Order {
			trees = append(trees, prog.Funcs[name].Trees...)
		}
	}
	return trees
}

func TestSchedulesAreValidEverywhere(t *testing.T) {
	trees := allTrees(t)
	models := []machine.Model{
		machine.Infinite(2), machine.Infinite(6),
		machine.New(1, 2), machine.New(2, 2), machine.New(5, 2),
		machine.New(8, 6), machine.New(3, 6),
	}
	for _, m := range models {
		for _, tr := range trees {
			g := ir.BuildDepGraph(tr, m.LatencyFunc())
			s := sched.FromGraph(g, m.NumFUs)
			if err := sched.Validate(g, s, m.NumFUs); err != nil {
				t.Fatalf("%s on %s: %v", tr.Name, m.Name, err)
			}
		}
	}
}

func TestWiderMachinesNeverSlower(t *testing.T) {
	trees := allTrees(t)
	for _, tr := range trees {
		m := machine.New(1, 2)
		g := ir.BuildDepGraph(tr, m.LatencyFunc())
		prev := sched.FromGraph(g, 1).Length()
		for w := 2; w <= 8; w++ {
			l := sched.FromGraph(g, w).Length()
			if l > prev {
				t.Fatalf("%s: %d FUs slower (%d) than %d FUs (%d)", tr.Name, w, l, w-1, prev)
			}
			prev = l
		}
		// And the infinite machine is a lower bound.
		inf := sched.FromGraph(g, 0).Length()
		if prev < inf {
			t.Fatalf("%s: 8-FU schedule (%d) beats infinite machine (%d)", tr.Name, prev, inf)
		}
	}
}

func TestInfiniteEqualsASAP(t *testing.T) {
	trees := allTrees(t)
	m := machine.Infinite(6)
	for _, tr := range trees {
		g := ir.BuildDepGraph(tr, m.LatencyFunc())
		s := sched.FromGraph(g, 0)
		asap := g.ASAP()
		for i := range tr.Ops {
			if s.Issue[i] != int64(asap[i]) {
				t.Fatalf("%s op %d: infinite schedule %d != ASAP %d", tr.Name, i, s.Issue[i], asap[i])
			}
		}
	}
}

func TestSingleFUIsSequentialCount(t *testing.T) {
	// On one FU, each cycle issues at most one op, so the schedule spans at
	// least len(ops) cycles.
	trees := allTrees(t)
	for _, tr := range trees {
		g := ir.BuildDepGraph(tr, machine.New(1, 2).LatencyFunc())
		s := sched.FromGraph(g, 1)
		var maxIssue int64
		for _, c := range s.Issue {
			if c > maxIssue {
				maxIssue = c
			}
		}
		if maxIssue < int64(len(tr.Ops)-1) {
			t.Fatalf("%s: %d ops issued within %d cycles on 1 FU", tr.Name, len(tr.Ops), maxIssue+1)
		}
	}
}

// TestRandomChainsScheduleExactly checks the list scheduler against a
// closed-form answer on random dependency chains: a pure chain's length is
// the sum of its latencies regardless of FU count.
func TestRandomChainsScheduleExactly(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := &ir.Function{Name: "chain"}
		tr := &ir.Tree{Fn: fn, Name: "chain.t0"}
		tr.NewBlock(-1, ir.NoReg, false)
		kinds := []ir.OpKind{ir.OpAdd, ir.OpMul, ir.OpDiv, ir.OpFAdd}
		m := machine.New(1+r.Intn(8), 2)
		prevReg := fn.NewReg()
		first := tr.NewOp(ir.OpConst, nil, prevReg)
		_ = first
		total := int64(m.Latency(first))
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			k := kinds[r.Intn(len(kinds))]
			op := tr.NewOp(k, []ir.Reg{prevReg, prevReg}, fn.NewReg())
			prevReg = op.Dest
			total += int64(m.Latency(op))
		}
		ex := tr.NewOp(ir.OpExit, []ir.Reg{prevReg}, ir.NoReg)
		ex.Exit = ir.ExitRet
		total += int64(m.Latency(ex))
		g := ir.BuildDepGraph(tr, m.LatencyFunc())
		s := sched.FromGraph(g, m.NumFUs)
		return s.Length() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	fn := &ir.Function{Name: "v"}
	tr := &ir.Tree{Fn: fn, Name: "v.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	c := tr.NewOp(ir.OpConst, nil, fn.NewReg())
	a := tr.NewOp(ir.OpAdd, []ir.Reg{c.Dest, c.Dest}, fn.NewReg())
	_ = a
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	m := machine.New(2, 2)
	g := ir.BuildDepGraph(tr, m.LatencyFunc())
	s := sched.FromGraph(g, 2)
	if err := sched.Validate(g, s, 2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Violate a dependence.
	bad := &sched.Schedule{Issue: append([]int64(nil), s.Issue...), Comp: s.Comp}
	bad.Issue[1] = 0
	if err := sched.Validate(g, bad, 2); err == nil {
		t.Error("dependence violation accepted")
	}
	// Violate the slot limit.
	bad2 := &sched.Schedule{Issue: []int64{0, 1, 1}, Comp: s.Comp}
	if err := sched.Validate(g, bad2, 1); err == nil {
		t.Error("slot-limit violation accepted")
	}
}
