package sched

import (
	"fmt"
	"io"
	"strings"

	"specdis/internal/ir"
	"specdis/internal/machine"
)

// RenderTimeline writes a textual Gantt view of one tree's schedule: one row
// per operation in issue order, with `=` marking the occupied cycles from
// issue to write-back. It makes the effect of a transformation on a schedule
// visible at a glance (see examples/rawdep for the programmatic variant).
func RenderTimeline(w io.Writer, t *ir.Tree, m machine.Model) {
	s := Tree(t, m)
	length := s.Length()
	fmt.Fprintf(w, "tree %s on %s: %d cycles, %d ops\n", t.Name, m.Name, length, len(t.Ops))

	// Rows sorted by issue cycle, then Seq.
	order := make([]int, len(t.Ops))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if s.Issue[a] > s.Issue[b] || (s.Issue[a] == s.Issue[b] && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}

	for _, i := range order {
		op := t.Ops[i]
		bar := strings.Repeat(" ", int(s.Issue[i])) +
			strings.Repeat("=", int(s.Comp[i]-s.Issue[i]))
		if int64(len(bar)) < length {
			bar += strings.Repeat(" ", int(length)-len(bar))
		}
		fmt.Fprintf(w, "%3d |%s| %s\n", s.Issue[i], bar, op)
	}
}

// RenderProgramTimelines renders every tree of a program, skipping trees
// with fewer than minOps operations.
func RenderProgramTimelines(w io.Writer, p *ir.Program, m machine.Model, minOps int) {
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			if len(t.Ops) < minOps {
				continue
			}
			RenderTimeline(w, t, m)
			fmt.Fprintln(w)
		}
	}
}
