package sched_test

import (
	"strings"
	"testing"

	"specdis/internal/compile"
	"specdis/internal/machine"
	"specdis/internal/sched"
)

func TestRenderTimeline(t *testing.T) {
	prog, err := compile.Compile(`
int a[8];
void main() {
	for (int i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
	print(a[7]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sched.RenderProgramTimelines(&sb, prog, machine.New(2, 2), 4)
	out := sb.String()
	if !strings.Contains(out, "cycles") || !strings.Contains(out, "=") {
		t.Fatalf("timeline malformed:\n%s", out)
	}
	// Every rendered row bar must start at its issue column: rows begin with
	// the issue number.
	lines := strings.Split(out, "\n")
	rows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") && strings.Contains(l, "=") {
			rows++
		}
	}
	if rows < 5 {
		t.Fatalf("too few rendered rows (%d):\n%s", rows, out)
	}
}
