// Package sched schedules decision trees for LIFE machine configurations:
// an ASAP schedule for the infinite machine and a cycle-driven list scheduler
// for constrained machines with N universal, fully pipelined functional
// units (each op occupies one issue slot in its issue cycle).
package sched

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/machine"
)

// Schedule holds issue and completion cycles per op (indexed by Seq).
type Schedule struct {
	Issue []int64
	Comp  []int64 // Issue + latency: write-back / resolution cycle
}

// Length returns the overall schedule length (max completion).
func (s *Schedule) Length() int64 {
	var max int64
	for _, c := range s.Comp {
		if c > max {
			max = c
		}
	}
	return max
}

// Tree schedules one tree for the given machine model. NumFUs == 0 yields
// the ASAP (infinite machine) schedule.
func Tree(t *ir.Tree, m machine.Model) *Schedule {
	g := ir.BuildDepGraph(t, m.LatencyFunc())
	return FromGraph(g, m.NumFUs)
}

// FromGraph schedules a prebuilt dependence graph on n functional units
// (n == 0 for the infinite machine).
func FromGraph(g *ir.DepGraph, n int) *Schedule {
	if n <= 0 {
		asap := g.ASAP()
		s := &Schedule{Issue: make([]int64, len(asap)), Comp: make([]int64, len(asap))}
		for i, c := range asap {
			s.Issue[i] = int64(c)
			s.Comp[i] = int64(c + g.Latency(i))
		}
		return s
	}
	return listSchedule(g, n)
}

// height computes the critical-path height of each op: the longest
// delay-weighted path from the op to any sink, plus its own latency.
func height(g *ir.DepGraph) []int64 {
	n := len(g.Tree.Ops)
	h := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		h[i] = int64(g.Latency(i))
		for _, e := range g.Succ[i] {
			if v := int64(e.Delay) + h[e.To]; v > h[i] {
				h[i] = v
			}
		}
	}
	return h
}

func listSchedule(g *ir.DepGraph, numFUs int) *Schedule {
	n := len(g.Tree.Ops)
	issue := make([]int64, n)
	unscheduled := n
	npreds := make([]int, n)
	earliest := make([]int64, n)
	for i := 0; i < n; i++ {
		npreds[i] = len(g.Pred[i])
		issue[i] = -1
	}
	h := height(g)

	// ready holds ops whose predecessors are all scheduled.
	var ready []int
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	var cycle int64
	for unscheduled > 0 {
		// Pick up to numFUs ready ops whose earliest cycle has arrived,
		// preferring exits (branch resolution gates when the next tree can
		// start), then greater critical-path height, then program order.
		slots := numFUs
		for slots > 0 {
			best := -1
			better := func(i, j int) bool {
				oi, oj := g.Tree.Ops[i], g.Tree.Ops[j]
				ei, ej := oi.Kind == ir.OpExit, oj.Kind == ir.OpExit
				if ei != ej {
					return ei
				}
				if h[i] != h[j] {
					return h[i] > h[j]
				}
				return oi.Seq < oj.Seq
			}
			for _, i := range ready {
				if issue[i] >= 0 || earliest[i] > cycle {
					continue
				}
				if best < 0 || better(i, best) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			issue[best] = cycle
			slots--
			unscheduled--
			for _, e := range g.Succ[best] {
				if v := cycle + int64(e.Delay); v > earliest[e.To] {
					earliest[e.To] = v
				}
				npreds[e.To]--
				if npreds[e.To] == 0 {
					ready = append(ready, e.To)
				}
			}
		}
		// Drop scheduled entries from the ready list.
		w := 0
		for _, i := range ready {
			if issue[i] < 0 {
				ready[w] = i
				w++
			}
		}
		ready = ready[:w]
		cycle++
		if cycle > int64(n)*64+1024 {
			panic(fmt.Sprintf("list scheduler livelock on tree %s", g.Tree.Name))
		}
	}

	s := &Schedule{Issue: issue, Comp: make([]int64, n)}
	for i := 0; i < n; i++ {
		s.Comp[i] = issue[i] + int64(g.Latency(i))
	}
	return s
}

// Validate checks that a schedule respects all dependence delays and, for
// n > 0, the per-cycle issue-slot limit.
func Validate(g *ir.DepGraph, s *Schedule, n int) error {
	perCycle := map[int64]int{}
	for i := range g.Tree.Ops {
		if s.Issue[i] < 0 {
			return fmt.Errorf("op %d unscheduled", i)
		}
		perCycle[s.Issue[i]]++
		for _, e := range g.Succ[i] {
			if s.Issue[e.To] < s.Issue[i]+int64(e.Delay) {
				return fmt.Errorf("op %d issues at %d, before op %d + delay %d",
					e.To, s.Issue[e.To], i, e.Delay)
			}
		}
	}
	if n > 0 {
		for c, k := range perCycle {
			if k > n {
				return fmt.Errorf("cycle %d issues %d ops on %d FUs", c, k, n)
			}
		}
	}
	return nil
}
