// Package sched schedules decision trees for LIFE machine configurations:
// an ASAP schedule for the infinite machine and a list scheduler for
// constrained machines with N universal, fully pipelined functional units
// (each op occupies one issue slot in its issue cycle).
//
// The list scheduler keeps its ready list in a priority heap and advances
// time event-driven — idle cycles are skipped directly to the next
// earliest-ready time — so scheduling is O(ops·log ops + edges) instead of
// the O(cycles·ready²) of a naive per-slot rescan. The selection order is
// identical to the reference scan scheduler (see listScheduleRef), so the
// produced schedules are bit-for-bit the same.
package sched

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/machine"
)

// Schedule holds issue and completion cycles per op (indexed by Seq).
type Schedule struct {
	Issue []int64
	Comp  []int64 // Issue + latency: write-back / resolution cycle
}

// Length returns the overall schedule length (max completion).
func (s *Schedule) Length() int64 {
	var max int64
	for _, c := range s.Comp {
		if c > max {
			max = c
		}
	}
	return max
}

// Tree schedules one tree for the given machine model. NumFUs == 0 yields
// the ASAP (infinite machine) schedule.
//
// When scheduling one tree under several models that share a latency
// function, build the dependence graph once with ir.BuildDepGraph and call
// FromGraph per model instead: graph construction dominates the cost.
func Tree(t *ir.Tree, m machine.Model) *Schedule {
	g := ir.BuildDepGraph(t, m.LatencyFunc())
	return FromGraph(g, m.NumFUs)
}

// FromGraph schedules a prebuilt dependence graph on n functional units
// (n == 0 for the infinite machine).
func FromGraph(g *ir.DepGraph, n int) *Schedule {
	if n <= 0 {
		asap := g.ASAP()
		s := &Schedule{Issue: make([]int64, len(asap)), Comp: make([]int64, len(asap))}
		for i, c := range asap {
			s.Issue[i] = int64(c)
			s.Comp[i] = int64(c + g.Latency(i))
		}
		return s
	}
	return listSchedule(g, n)
}

// height computes the critical-path height of each op: the longest
// delay-weighted path from the op to any sink, plus its own latency.
func height(g *ir.DepGraph) []int64 {
	n := len(g.Tree.Ops)
	h := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		h[i] = int64(g.Latency(i))
		for _, e := range g.Succ[i] {
			if v := int64(e.Delay) + h[e.To]; v > h[i] {
				h[i] = v
			}
		}
	}
	return h
}

// schedState is the shared scratch of one listSchedule call: a max-heap of
// issueable ops ordered by pick priority (exits first, then greater
// critical-path height, then program order) and a min-heap of ops whose
// predecessors are scheduled but whose earliest issue cycle is still in the
// future, keyed by that cycle.
type schedState struct {
	isExit   []bool
	h        []int64 // critical-path heights
	earliest []int64

	ready   []int // max-heap by pick priority
	pending []int // min-heap by earliest, ties by op index
}

// readyLess reports whether op a should be picked before op b: exits first
// (branch resolution gates when the next tree can start), then greater
// critical-path height, then program order. Op indices equal Seq, so the
// final tie-break is a < b.
func (s *schedState) readyLess(a, b int) bool {
	if s.isExit[a] != s.isExit[b] {
		return s.isExit[a]
	}
	if s.h[a] != s.h[b] {
		return s.h[a] > s.h[b]
	}
	return a < b
}

func (s *schedState) pendingLess(a, b int) bool {
	if s.earliest[a] != s.earliest[b] {
		return s.earliest[a] < s.earliest[b]
	}
	return a < b
}

func (s *schedState) pushReady(i int) {
	s.ready = append(s.ready, i)
	j := len(s.ready) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !s.readyLess(s.ready[j], s.ready[p]) {
			break
		}
		s.ready[j], s.ready[p] = s.ready[p], s.ready[j]
		j = p
	}
}

func (s *schedState) popReady() int {
	top := s.ready[0]
	last := len(s.ready) - 1
	s.ready[0] = s.ready[last]
	s.ready = s.ready[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		best := j
		if l < last && s.readyLess(s.ready[l], s.ready[best]) {
			best = l
		}
		if r < last && s.readyLess(s.ready[r], s.ready[best]) {
			best = r
		}
		if best == j {
			break
		}
		s.ready[j], s.ready[best] = s.ready[best], s.ready[j]
		j = best
	}
	return top
}

func (s *schedState) pushPending(i int) {
	s.pending = append(s.pending, i)
	j := len(s.pending) - 1
	for j > 0 {
		p := (j - 1) / 2
		if !s.pendingLess(s.pending[j], s.pending[p]) {
			break
		}
		s.pending[j], s.pending[p] = s.pending[p], s.pending[j]
		j = p
	}
}

func (s *schedState) popPending() int {
	top := s.pending[0]
	last := len(s.pending) - 1
	s.pending[0] = s.pending[last]
	s.pending = s.pending[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		best := j
		if l < last && s.pendingLess(s.pending[l], s.pending[best]) {
			best = l
		}
		if r < last && s.pendingLess(s.pending[r], s.pending[best]) {
			best = r
		}
		if best == j {
			break
		}
		s.pending[j], s.pending[best] = s.pending[best], s.pending[j]
		j = best
	}
	return top
}

// listSchedule is the heap-based list scheduler. Selection order matches
// listScheduleRef exactly; only the mechanics differ: issueable ops sit in a
// priority heap instead of being rescanned per slot, ops whose earliest
// cycle is in the future wait in a time-keyed heap, and empty cycles are
// skipped in one step.
func listSchedule(g *ir.DepGraph, numFUs int) *Schedule {
	n := len(g.Tree.Ops)
	issue := make([]int64, n)
	npreds := make([]int, n)
	for i := 0; i < n; i++ {
		npreds[i] = len(g.Pred[i])
		issue[i] = -1
	}
	h := height(g)

	st := &schedState{
		isExit:   make([]bool, n),
		h:        h,
		earliest: make([]int64, n),
		ready:    make([]int, 0, n),
	}
	for i, op := range g.Tree.Ops {
		st.isExit[i] = op.Kind == ir.OpExit
	}
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			st.pushReady(i) // earliest is 0 = first cycle: immediately issueable
		}
	}

	unscheduled := n
	var cycle int64
	for unscheduled > 0 {
		// Admit pending ops whose earliest cycle has arrived.
		for len(st.pending) > 0 && st.earliest[st.pending[0]] <= cycle {
			st.pushReady(st.popPending())
		}
		if len(st.ready) == 0 {
			if len(st.pending) == 0 {
				panic(fmt.Sprintf("list scheduler stuck on tree %s: dependence cycle", g.Tree.Name))
			}
			cycle = st.earliest[st.pending[0]] // skip the idle gap
			continue
		}
		for slots := numFUs; slots > 0 && len(st.ready) > 0; slots-- {
			best := st.popReady()
			issue[best] = cycle
			unscheduled--
			for _, e := range g.Succ[best] {
				if v := cycle + int64(e.Delay); v > st.earliest[e.To] {
					st.earliest[e.To] = v
				}
				if npreds[e.To]--; npreds[e.To] == 0 {
					// Negative-delay (anti-dependence) edges can free a
					// successor into the current cycle.
					if st.earliest[e.To] <= cycle {
						st.pushReady(e.To)
					} else {
						st.pushPending(e.To)
					}
				}
			}
		}
		cycle++
	}

	s := &Schedule{Issue: issue, Comp: make([]int64, n)}
	for i := 0; i < n; i++ {
		s.Comp[i] = issue[i] + int64(g.Latency(i))
	}
	return s
}

// listScheduleRef is the original cycle-driven scan scheduler, kept as the
// executable specification of the selection order: tests check that
// listSchedule reproduces its schedules exactly on the whole benchmark
// suite.
func listScheduleRef(g *ir.DepGraph, numFUs int) *Schedule {
	n := len(g.Tree.Ops)
	issue := make([]int64, n)
	unscheduled := n
	npreds := make([]int, n)
	earliest := make([]int64, n)
	for i := 0; i < n; i++ {
		npreds[i] = len(g.Pred[i])
		issue[i] = -1
	}
	h := height(g)

	// ready holds ops whose predecessors are all scheduled.
	var ready []int
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	var cycle int64
	for unscheduled > 0 {
		// Pick up to numFUs ready ops whose earliest cycle has arrived,
		// preferring exits (branch resolution gates when the next tree can
		// start), then greater critical-path height, then program order.
		slots := numFUs
		for slots > 0 {
			best := -1
			better := func(i, j int) bool {
				oi, oj := g.Tree.Ops[i], g.Tree.Ops[j]
				ei, ej := oi.Kind == ir.OpExit, oj.Kind == ir.OpExit
				if ei != ej {
					return ei
				}
				if h[i] != h[j] {
					return h[i] > h[j]
				}
				return oi.Seq < oj.Seq
			}
			for _, i := range ready {
				if issue[i] >= 0 || earliest[i] > cycle {
					continue
				}
				if best < 0 || better(i, best) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			issue[best] = cycle
			slots--
			unscheduled--
			for _, e := range g.Succ[best] {
				if v := cycle + int64(e.Delay); v > earliest[e.To] {
					earliest[e.To] = v
				}
				npreds[e.To]--
				if npreds[e.To] == 0 {
					ready = append(ready, e.To)
				}
			}
		}
		// Drop scheduled entries from the ready list.
		w := 0
		for _, i := range ready {
			if issue[i] < 0 {
				ready[w] = i
				w++
			}
		}
		ready = ready[:w]
		cycle++
		if cycle > int64(n)*64+1024 {
			panic(fmt.Sprintf("list scheduler livelock on tree %s", g.Tree.Name))
		}
	}

	s := &Schedule{Issue: issue, Comp: make([]int64, n)}
	for i := 0; i < n; i++ {
		s.Comp[i] = issue[i] + int64(g.Latency(i))
	}
	return s
}

// Validate checks that a schedule respects all dependence delays and, for
// n > 0, the per-cycle issue-slot limit. Diagnostics name ops by their
// stable IDs (%N), not dense graph indices, so findings surfaced by the
// verifier point at the op a tree dump shows.
func Validate(g *ir.DepGraph, s *Schedule, n int) error {
	name := func(i int) string {
		if op := g.Tree.Ops[i]; op != nil {
			return fmt.Sprintf("%s %%%d", op.Kind, op.ID)
		}
		return fmt.Sprintf("op #%d", i)
	}
	perCycle := map[int64]int{}
	for i := range g.Tree.Ops {
		if s.Issue[i] < 0 {
			return fmt.Errorf("%s unscheduled", name(i))
		}
		perCycle[s.Issue[i]]++
		for _, e := range g.Succ[i] {
			if s.Issue[e.To] < s.Issue[i]+int64(e.Delay) {
				return fmt.Errorf("%s issues at cycle %d, before %s (cycle %d) + delay %d",
					name(e.To), s.Issue[e.To], name(i), s.Issue[i], e.Delay)
			}
		}
	}
	if n > 0 {
		for c, k := range perCycle {
			if k > n {
				return fmt.Errorf("cycle %d issues %d ops on %d FUs", c, k, n)
			}
		}
	}
	return nil
}
