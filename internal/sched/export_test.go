package sched

import "specdis/internal/ir"

// ListScheduleRef exposes the reference scan scheduler to tests: the heap
// scheduler must reproduce its schedules exactly.
func ListScheduleRef(g *ir.DepGraph, numFUs int) *Schedule { return listScheduleRef(g, numFUs) }
