package spd

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/verify"
)

// Params are the guidance-heuristic knobs of Figure 5-1.
type Params struct {
	// MaxExpansion bounds per-tree code growth: SpD stops when the tree
	// exceeds MaxExpansion × its original size.
	MaxExpansion float64
	// MinGain is the per-execution predicted-gain threshold, in cycles.
	MinGain float64
	// AssumedAliasProb is used for arcs with no profiled alias probability
	// and as the weight of the conservative scenario in the tree-time
	// estimate (the paper assumes 0.1, §5.3).
	AssumedAliasProb float64
	// MaxAliasProb: arcs measured to alias more often than this are not
	// worth speculating on.
	MaxAliasProb float64
	// Forwarding enables store-to-load forwarding on the alias path of RAW
	// transforms (Figure 4-4's direct forward).
	Forwarding bool
	// MaxIterationsPerTree is a safety bound on heuristic iterations.
	MaxIterationsPerTree int
	// Verify runs the structural and speculation-safety checkers over every
	// tree immediately after each applied transformation (debug mode). The
	// first violation is recorded in Result.VerifyErr.
	Verify bool
}

// DefaultParams returns the configuration used in the experiments.
func DefaultParams() Params {
	return Params{
		MaxExpansion:         2.0,
		MinGain:              0.25,
		AssumedAliasProb:     0.1,
		MaxAliasProb:         0.5,
		Forwarding:           true,
		MaxIterationsPerTree: 64,
	}
}

// Profile supplies the path-probability information the heuristic needs
// (sim.Profile implements it).
type Profile interface {
	ExitProb(t *ir.Tree, e *ir.Op) float64
	TreeExecCount(t *ir.Tree) int64
}

// Application records one SpD application.
type Application struct {
	Tree  *ir.Tree
	Kind  ir.DepKind
	Gain  float64 // predicted per-execution gain, cycles
	Added int     // operations added
	// Pairs are the original/duplicate op pairs this application created,
	// for the speculation-safety checker.
	Pairs []verify.SpecPair
}

// Result summarizes a whole-program SpD pass.
type Result struct {
	Apps          []Application
	RAW, WAR, WAW int // application counts by dependence type (Table 6-3)
	AddedOps      int
	// VerifyErr holds the first invariant violation found by the Verify
	// debug hook (nil when Verify was off or everything checked out).
	VerifyErr error
}

// TreePairs collects the recorded original/duplicate pairs per tree.
func (r *Result) TreePairs() map[*ir.Tree][]verify.SpecPair {
	m := map[*ir.Tree][]verify.SpecPair{}
	for _, a := range r.Apps {
		if len(a.Pairs) > 0 {
			m[a.Tree] = append(m[a.Tree], a.Pairs...)
		}
	}
	return m
}

// verifyTree runs the post-transform checkers over one tree and folds the
// findings into res.VerifyErr (first violation wins).
func verifyTree(t *ir.Tree, pairs []verify.SpecPair, res *Result) {
	if res.VerifyErr != nil {
		return
	}
	fs := verify.CheckTree(t)
	fs = append(fs, verify.CheckSpecTree(t)...)
	fs = append(fs, verify.CheckSpecPairs(t, pairs)...)
	if len(fs) > 0 {
		res.VerifyErr = fmt.Errorf("spd: tree %s after transform: %s", t.Name, fs[0])
	}
}

// Count returns the application count for one dependence kind.
func (r *Result) Count(k ir.DepKind) int {
	switch k {
	case ir.DepRAW:
		return r.RAW
	case ir.DepWAR:
		return r.WAR
	}
	return r.WAW
}

// Transform runs the guidance heuristic over every profiled tree of the
// program. lat fixes the operation latencies (memory latency matters: longer
// latencies surface more profitable aliases, Table 6-3).
func Transform(p *ir.Program, prof Profile, lat ir.LatencyFunc, params Params) *Result {
	res := &Result{}
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			if prof.TreeExecCount(t) == 0 {
				continue
			}
			specDisambig(t, prof, lat, params, res)
		}
	}
	return res
}

// exitProbs captures the profiled exit probabilities by exit order, so they
// can be applied to clones of the tree (whose exit ops are fresh pointers).
func exitProbs(t *ir.Tree, prof Profile) []float64 {
	exits := t.Exits()
	probs := make([]float64, len(exits))
	for i, e := range exits {
		probs[i] = prof.ExitProb(t, e)
	}
	return probs
}

// treeTime is the heuristic's estimate of the expected per-execution time of
// a tree on the infinite machine: exit-probability-weighted path times,
// mixing the likely all-no-alias scenario (conservative SpD copies excluded)
// with the fully conservative one, at the assumed alias probability.
func treeTime(t *ir.Tree, probs []float64, lat ir.LatencyFunc, q float64) float64 {
	return graphTime(ir.BuildDepGraph(t, lat), probs, q)
}

// graphTime is treeTime over a prebuilt dependence graph of t, letting the
// candidate loop amortize the quadratic register-dependence scan across many
// arc-set variations (see ir.BuildRegDepGraph / DepGraph.WithArcs).
func graphTime(g *ir.DepGraph, probs []float64, q float64) float64 {
	full, likely := g.PathTimesBoth(g.ASAP())
	var e float64
	for i := range full {
		e += probs[i] * ((1-q)*float64(likely[i]) + q*float64(full[i]))
	}
	return e
}

// arcTight reports whether the arc is tight under the current ASAP schedule
// (a necessary condition for it to lie on a critical path): the paper's
// CriticalAlias pre-filter.
func arcTight(g *ir.DepGraph, asap []int, a *ir.MemArc) bool {
	from, to := a.From.Seq, a.To.Seq
	var delay int
	switch a.Kind {
	case ir.DepRAW:
		delay = g.Latency(from)
	case ir.DepWAR:
		delay = 1 - g.Latency(to)
	case ir.DepWAW:
		delay = 1
	}
	return asap[to] == asap[from]+delay
}

// specDisambig is the Figure 5-1 loop: repeatedly apply SpD to the ambiguous
// alias with the highest predicted gain until the tree hits its expansion
// bound or no alias clears MinGain. The gain of a candidate is evaluated by
// applying the transformation to a clone of the tree and re-estimating its
// expected time.
func specDisambig(t *ir.Tree, prof Profile, lat ir.LatencyFunc, params Params, res *Result) {
	maxSize := int(float64(t.Size()) * params.MaxExpansion)
	skip := map[*ir.MemArc]bool{}
	probs := exitProbs(t, prof)
	q := params.AssumedAliasProb
	var treePairs []verify.SpecPair // cumulative, for the Verify debug hook

	eligible := func(a *ir.MemArc) bool {
		return a.Ambiguous && !skip[a] &&
			a.AliasProb(params.AssumedAliasProb) <= params.MaxAliasProb &&
			a.To.SpecSide <= 0 // never speculate consumers of an alias copy
	}

	for iter := 0; iter < params.MaxIterationsPerTree; iter++ {
		if t.Size() >= maxSize {
			return
		}
		// The tree's ops are fixed for the whole iteration (only its arc set
		// varies below), so the quadratic register-dependence skeleton is
		// built once and every arc-set variation overlays it.
		skel := ir.BuildRegDepGraph(t, lat)
		g := skel.WithArcs()
		cur := graphTime(g, probs, q)
		asap := g.ASAP()

		// Ceiling: the expected time if every remaining eligible ambiguous
		// dependence were resolved in speculation's favour. When even that
		// would not clear MinGain, the tree is done. This keeps cascades
		// moving through mutually blocking arcs (parallel chains where no
		// single removal shows gain) exactly as the paper's optimistic
		// Gain() does, while still stopping on hopeless trees.
		var removed []*ir.MemArc
		kept := t.Arcs[:0]
		for _, a := range t.Arcs {
			if eligible(a) {
				removed = append(removed, a)
			} else {
				kept = append(kept, a)
			}
		}
		t.Arcs = kept
		ideal := graphTime(skel.WithArcs(), probs, q)
		t.Arcs = append(t.Arcs, removed...)
		ceiling := cur - ideal
		if ceiling < params.MinGain {
			return
		}

		// Prefer the tight arc whose same-target group removal shows the
		// largest individual gain; with parallel chains all group gains can
		// be zero, in which case any tight eligible arc advances the
		// cascade (earliest target first, for determinism).
		var best *ir.MemArc
		bestGain := -1.0
		for _, a := range append([]*ir.MemArc(nil), t.Arcs...) {
			if !eligible(a) || !arcTight(g, asap, a) {
				continue
			}
			p := a.AliasProb(params.AssumedAliasProb)
			group := []*ir.MemArc{}
			for _, b := range t.Arcs {
				if b.Ambiguous && b.To == a.To && b.Kind == a.Kind &&
					b.AliasProb(params.AssumedAliasProb) <= params.MaxAliasProb {
					group = append(group, b)
				}
			}
			for _, b := range group {
				t.RemoveArc(b)
			}
			without := graphTime(skel.WithArcs(), probs, q)
			t.Arcs = append(t.Arcs, group...)
			gn := (1 - p) * (cur - without)
			if gn > bestGain ||
				(gn == bestGain && best != nil && a.To.Seq < best.To.Seq) {
				best, bestGain = a, gn
			}
		}
		if best == nil {
			return
		}
		if bestGain < params.MinGain {
			bestGain = ceiling // the cascade's promise, not this step's
		}
		bestIdx := -1
		for i, a := range t.Arcs {
			if a == best {
				bestIdx = i
				break
			}
		}

		// Gate: tentatively transform a clone; refuse arcs whose realistic
		// post-transform estimate is clearly worse than the status quo.
		clone := t.Clone()
		if _, err := Apply(clone, clone.Arcs[bestIdx], params.Forwarding); err != nil {
			skip[best] = true
			continue
		}
		if after := treeTime(clone, probs, lat, q); after > cur+0.25 {
			skip[best] = true
			continue
		}

		info, err := ApplyInfo(t, best, params.Forwarding)
		if err != nil {
			// The clone accepted this transform, so the original must too;
			// treat a refusal defensively.
			skip[best] = true
			continue
		}
		// A RAW arc survives on the alias copy when forwarding is not
		// possible; it is handled now either way, so never revisit it.
		skip[best] = true
		res.Apps = append(res.Apps, Application{Tree: t, Kind: best.Kind, Gain: bestGain, Added: info.Added, Pairs: info.Pairs})
		res.AddedOps += info.Added
		if params.Verify {
			treePairs = append(treePairs, info.Pairs...)
			verifyTree(t, treePairs, res)
		}
		switch best.Kind {
		case ir.DepRAW:
			res.RAW++
		case ir.DepWAR:
			res.WAR++
		case ir.DepWAW:
			res.WAW++
		}
	}
}
