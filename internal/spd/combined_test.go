package spd_test

import (
	"testing"

	"specdis/internal/bench"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// multiRAW has one load region depending on two ambiguous stores: classic
// 2^n-copies territory for one-at-a-time SpD.
const multiRAW = `
int a[32];
int b[32];
void f(int i, int j, int k, int v) {
	a[i] = v;
	a[j] = v * 2;
	int x = a[k];          // ambiguous with both stores
	b[k] = x * x + 1;      // consumer is a store, not a return value
}
void main() {
	for (int n = 0; n < 60; n = n + 1) {
		f(n % 32, (n + 7) % 32, (n * 3) % 32, n);
	}
	int s = 0;
	for (int n = 0; n < 32; n = n + 1) { s = (s * 31 + b[n]) % 1000003; }
	print(s);
}
`

func TestCombinedPreservesSemantics(t *testing.T) {
	prog, prof, lat := prep(t, multiRAW)
	r0 := &sim.Runner{Prog: prog, SemLat: lat}
	before, err := r0.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := spd.TransformCombined(prog, prof, spd.DefaultParams())
	if res.RAW < 2 {
		t.Fatalf("combined speculation covered only %d arcs", res.RAW)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	r1 := &sim.Runner{Prog: prog, SemLat: lat}
	after, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output {
		t.Fatalf("output changed: %q -> %q", before.Output, after.Output)
	}
}

func TestCombinedIsSmallerThanOneAtATime(t *testing.T) {
	// §7's point: one version for the likely outcome instead of up to 2^n
	// copies. Combined must add fewer ops than the iterated transform when
	// both fully disambiguate the same load region.
	progA, profA, latA := prep(t, multiRAW)
	paramsEager := spd.DefaultParams()
	paramsEager.MinGain = 0.01
	resA := spd.Transform(progA, profA, latA, paramsEager)

	progB, profB, _ := prep(t, multiRAW)
	resB := spd.TransformCombined(progB, profB, spd.DefaultParams())

	if resA.AddedOps == 0 || resB.AddedOps == 0 || resA.RAW == 0 || resB.RAW == 0 {
		t.Skipf("transforms not comparable: %+v vs %+v", resA, resB)
	}
	// §7's economics: cost per disambiguated pair must be lower for the
	// combined form (one duplicate shared by all pairs).
	perA := float64(resA.AddedOps) / float64(resA.RAW)
	perB := float64(resB.AddedOps) / float64(resB.RAW)
	if perB >= perA {
		t.Errorf("combined costs %.1f ops/pair, one-at-a-time %.1f: expected combined cheaper",
			perB, perA)
	}
	t.Logf("one-at-a-time: %d pairs, +%d ops (%.1f/pair); combined: %d pairs, +%d ops (%.1f/pair)",
		resA.RAW, resA.AddedOps, perA, resB.RAW, resB.AddedOps, perB)
}

func TestCombinedSpeedsUpWideMachine(t *testing.T) {
	mkPlan := func(p *ir.Program, m machine.Model) *sim.Plan {
		plan := sim.NewPlan(m.Name)
		for _, name := range p.Order {
			for _, tr := range p.Funcs[name].Trees {
				g := ir.BuildDepGraph(tr, m.LatencyFunc())
				asap := g.ASAP()
				comp := make([]int64, len(asap))
				for i, c := range asap {
					comp[i] = int64(c + g.Latency(i))
				}
				plan.SetTree(tr, comp)
			}
		}
		return plan
	}
	m := machine.Infinite(6)

	progA, _, latA := prep(t, multiRAW)
	rA := &sim.Runner{Prog: progA, SemLat: latA, Plans: []*sim.Plan{mkPlan(progA, m)}}
	resA, err := rA.Run()
	if err != nil {
		t.Fatal(err)
	}

	progB, profB, latB := prep(t, multiRAW)
	spd.TransformCombined(progB, profB, spd.DefaultParams())
	rB := &sim.Runner{Prog: progB, SemLat: latB, Plans: []*sim.Plan{mkPlan(progB, m)}}
	resB, err := rB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resB.Times[0] >= resA.Times[0] {
		t.Errorf("combined speculation did not speed up the infinite machine: %d vs %d",
			resB.Times[0], resA.Times[0])
	}
}

func TestCombinedRejectsBadGroups(t *testing.T) {
	prog, _, _ := prep(t, multiRAW)
	var tree *ir.Tree
	for _, tr := range prog.Funcs["f"].Trees {
		if len(tr.AmbiguousArcs()) > 0 {
			tree = tr
		}
	}
	if tree == nil {
		t.Fatal("no ambiguous tree")
	}
	if _, err := spd.ApplyCombinedRAW(tree, nil, true); err == nil {
		t.Error("empty group accepted")
	}
	// WAR arcs rejected.
	var war *ir.MemArc
	for _, a := range tree.Arcs {
		if a.Kind == ir.DepWAR {
			war = a
		}
	}
	if war != nil {
		if _, err := spd.ApplyCombinedRAW(tree, []*ir.MemArc{war, war}, true); err == nil {
			t.Error("WAR group accepted")
		}
	}
}

func TestCombinedOnSuiteKeepsOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range bench.All() {
		prog, prof, lat := prep(t, b.Source)
		r0 := &sim.Runner{Prog: prog, SemLat: lat}
		before, err := r0.Run()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		spd.TransformCombined(prog, prof, spd.DefaultParams())
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		r1 := &sim.Runner{Prog: prog, SemLat: lat}
		after, err := r1.Run()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if before.Output != after.Output {
			t.Fatalf("%s: combined speculation changed output", b.Name)
		}
	}
}
