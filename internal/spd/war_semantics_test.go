package spd_test

import (
	"errors"
	"testing"

	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// The heuristic never selects WAR arcs (matching the paper's Table 6-3), so
// the differential fuzzer rarely exercises the WAR transform end to end.
// These tests force-apply it and verify both alias outcomes semantically.

const warProgram = `
int a[16];
int f(int i, int j, int v) {
	int old = a[j];     // L1: read
	a[i] = v;           // S1: may overwrite a[j]
	return old * 10;    // depends on the pre-store value
}
void main() {
	for (int k = 0; k < 16; k = k + 1) { a[k] = k; }
	print(f(3, 7, 100)); // no alias: old = 7
	print(f(5, 5, 200)); // alias:    old = 5 (read before overwrite)
	print(a[3]);
}
`

func TestWARSemanticsBothOutcomes(t *testing.T) {
	prog, prof, lat := prep(t, warProgram)
	r0 := &sim.Runner{Prog: prog, SemLat: lat}
	before, err := r0.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = prof

	// Find and force-apply the WAR arc in f.
	applied := 0
	for _, tr := range prog.Funcs["f"].Trees {
		for _, a := range append([]*ir.MemArc(nil), tr.Arcs...) {
			if a.Kind == ir.DepWAR && a.Ambiguous {
				if _, err := spd.Apply(tr, a, true); err != nil {
					if errors.Is(err, spd.ErrNotApplicable) {
						continue
					}
					t.Fatal(err)
				}
				applied++
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if applied == 0 {
		t.Fatal("no WAR arc applied")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	r1 := &sim.Runner{Prog: prog, SemLat: lat}
	after, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if after.Output != before.Output {
		t.Fatalf("WAR transform changed output:\n got %q\nwant %q", after.Output, before.Output)
	}
	// And under a second semantic order.
	r2 := &sim.Runner{Prog: prog, SemLat: machine.New(1, 6).LatencyFunc()}
	again, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if again.Output != before.Output {
		t.Fatal("WAR transform order-sensitive")
	}
}

// TestWARInsertedLoadOrdering: the inserted L3 must carry a definite
// anti-dependence on S1 and inherit S1's store-ambiguities, per Figure 4-5's
// arc discussion.
func TestWARArcInheritanceWithThirdStore(t *testing.T) {
	fn := &ir.Function{Name: "w3"}
	tr := &ir.Tree{Fn: fn, Name: "w3.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	addrL, addrS, addrX, val := fn.NewReg(), fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.NumRegs = 4
	l1 := tr.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	dep := tr.NewOp(ir.OpMul, []ir.Reg{l1.Dest, l1.Dest}, fn.NewReg())
	dep.VarWrite = true
	tr.NewOp(ir.OpStore, []ir.Reg{addrS, val}, ir.NoReg) // S1
	sx := tr.NewOp(ir.OpStore, []ir.Reg{addrX, val}, ir.NoReg)
	ex := tr.NewOp(ir.OpExit, []ir.Reg{dep.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	tr.BuildMemArcs()

	var war *ir.MemArc
	for _, a := range tr.Arcs {
		if a.Kind == ir.DepWAR && a.To.AddrReg() == addrS {
			war = a
		}
	}
	if war == nil {
		t.Fatal("fixture lacks the WAR arc")
	}
	if _, err := spd.Apply(tr, war, true); err != nil {
		t.Fatal(err)
	}

	var l3 *ir.Op
	for _, op := range tr.Ops {
		if op.Kind == ir.OpLoad && op != l1 && op.AddrReg() == addrS {
			l3 = op
		}
	}
	if l3 == nil {
		t.Fatal("no inserted L3")
	}
	defAnti, inherited := false, false
	for _, a := range tr.Arcs {
		if a.From == l3 && a.To.AddrReg() == addrS && !a.Ambiguous && a.Kind == ir.DepWAR {
			defAnti = true
		}
		if a.From == l3 && a.To == sx && a.Kind == ir.DepWAR && a.Ambiguous {
			inherited = true
		}
	}
	if !defAnti {
		t.Error("L3 lacks the definite anti-dependence on S1")
	}
	if !inherited {
		t.Error("L3 did not inherit S1's ambiguity with the later store")
	}
}
