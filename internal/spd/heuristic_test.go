package spd_test

import (
	"testing"

	"specdis/internal/alias"
	"specdis/internal/compile"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// prep compiles src, profiles it, and runs the static disambiguator,
// returning everything the heuristic needs.
func prep(t *testing.T, src string) (*ir.Program, *sim.Profile, ir.LatencyFunc) {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := sim.NewProfile()
	lat := machine.Infinite(2).LatencyFunc()
	r := &sim.Runner{Prog: prog, SemLat: lat, Prof: prof}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	alias.ResolveProgram(prog)
	return prog, prof, lat
}

const hotRAW = `
int a[32];
int f(int i, int j, int v) {
	a[i] = v;
	return a[j] * 3 + 1;
}
void main() {
	int s = 0;
	for (int k = 0; k < 64; k = k + 1) { s = s + f(k % 32, (k + 9) % 32, k); }
	print(s);
}
`

func TestHeuristicAppliesOnHotAmbiguousArc(t *testing.T) {
	prog, prof, lat := prep(t, hotRAW)
	res := spd.Transform(prog, prof, lat, spd.DefaultParams())
	if res.RAW == 0 {
		t.Fatal("heuristic never applied on a hot ambiguous RAW arc")
	}
	if res.AddedOps == 0 || len(res.Apps) != res.RAW+res.WAR+res.WAW {
		t.Errorf("bookkeeping off: %+v", res)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("transformed program invalid: %v", err)
	}
}

func TestHeuristicSkipsColdTrees(t *testing.T) {
	// f is never called: no profile weight, no applications.
	prog, prof, lat := prep(t, `
int a[8];
int f(int i, int j) { a[i] = 1; return a[j]; }
void main() { print(7); }
`)
	res := spd.Transform(prog, prof, lat, spd.DefaultParams())
	if len(res.Apps) != 0 {
		t.Fatalf("applied to never-executed code: %+v", res.Apps)
	}
}

func TestHeuristicSkipsAlwaysAliasingArcs(t *testing.T) {
	// i == j on every call: alias probability 1, nothing to speculate on.
	prog, prof, lat := prep(t, `
int a[8];
int f(int i, int j) { a[i] = 5; return a[j]; }
void main() {
	int s = 0;
	for (int k = 0; k < 40; k = k + 1) { s = s + f(k % 8, k % 8); }
	print(s);
}
`)
	res := spd.Transform(prog, prof, lat, spd.DefaultParams())
	if len(res.Apps) != 0 {
		t.Fatalf("applied to an always-aliasing arc: %+v", res.Apps)
	}
}

func TestMaxExpansionBoundsGrowth(t *testing.T) {
	// With MaxExpansion 1.0 the expansion budget is exhausted before the
	// first application (the paper's loop tests TreeSize < MaxSize before
	// each ApplySpD), so nothing may be transformed.
	prog, prof, lat := prep(t, hotRAW)
	params := spd.DefaultParams()
	params.MaxExpansion = 1.0
	res := spd.Transform(prog, prof, lat, params)
	if len(res.Apps) != 0 {
		t.Fatalf("MaxExpansion 1.0 still applied %d times", len(res.Apps))
	}
	// A generous budget must allow at least one application, and each
	// application may overshoot the bound by at most its own added ops
	// (the bound is checked before applying, as in Figure 5-1).
	params.MaxExpansion = 2.0
	res = spd.Transform(prog, prof, lat, params)
	if len(res.Apps) == 0 {
		t.Fatal("generous budget applied nothing")
	}
	for _, app := range res.Apps {
		if app.Added <= 0 {
			t.Errorf("application reported %d added ops", app.Added)
		}
	}
}

func TestHugeMinGainDisablesSpD(t *testing.T) {
	prog, prof, lat := prep(t, hotRAW)
	params := spd.DefaultParams()
	params.MinGain = 1e9
	res := spd.Transform(prog, prof, lat, params)
	if len(res.Apps) != 0 {
		t.Fatalf("MinGain threshold ignored: %+v", res.Apps)
	}
}

func TestTransformPreservesSemantics(t *testing.T) {
	prog, prof, lat := prep(t, hotRAW)
	r0 := &sim.Runner{Prog: prog, SemLat: lat}
	before, err := r0.Run()
	if err != nil {
		t.Fatal(err)
	}
	spd.Transform(prog, prof, lat, spd.DefaultParams())
	r1 := &sim.Runner{Prog: prog, SemLat: lat}
	after, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output {
		t.Fatalf("output changed: %q -> %q", before.Output, after.Output)
	}
}

func TestResultCount(t *testing.T) {
	r := &spd.Result{RAW: 3, WAR: 1, WAW: 2}
	if r.Count(ir.DepRAW) != 3 || r.Count(ir.DepWAR) != 1 || r.Count(ir.DepWAW) != 2 {
		t.Error("Count mapping wrong")
	}
}
