package spd_test

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/spd"
)

// ExampleApply reproduces the paper's Figure 4-4 on a hand-built tree: a
// store, an ambiguously aliased load, and a dependent multiply. After the
// transformation the tree holds an address compare, a speculative duplicate
// of the load chain, and a guarded merge.
func ExampleApply() {
	fn := &ir.Function{Name: "fig44"}
	t := &ir.Tree{Fn: fn, Name: "fig44.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}

	addrS, addrL, val := fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.NumRegs = 3
	t.NewOp(ir.OpStore, []ir.Reg{addrS, val}, ir.NoReg)
	load := t.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	mul := t.NewOp(ir.OpMul, []ir.Reg{load.Dest, load.Dest}, fn.NewReg())
	mul.VarWrite = true // externally observable result
	exit := t.NewOp(ir.OpExit, []ir.Reg{mul.Dest}, ir.NoReg)
	exit.Exit = ir.ExitRet
	t.BuildMemArcs()

	arc := t.Arcs[0]
	fmt.Println("before:", t.Size(), "ops,", arc)

	added, err := spd.Apply(t, arc, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("added:", added, "ops")
	for _, op := range t.Ops {
		if op.Kind == ir.OpCmpEQ {
			fmt.Println("compare:", op.Kind)
		}
	}
	// Output:
	// before: 4 ops, RAW(amb) %0 -> %1
	// added: 4 ops
	// compare: cmpeq
}
