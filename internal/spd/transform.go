// Package spd implements speculative disambiguation, the paper's core
// contribution: a compile-time transformation that resolves an ambiguous
// memory alias at run time by emitting an address compare and two copies of
// the dependent code — one assuming the references alias, one assuming they
// do not — with side-effecting operations guarded by the compare's outcome
// (§4), plus the profile-driven guidance heuristic of Figure 5-1 (§5.3).
package spd

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/verify"
)

// guardState is a (register, polarity) condition; reg == NoReg means always.
type guardState struct {
	reg ir.Reg
	neg bool
}

// transformer applies one SpD transformation to one arc of one tree.
type transformer struct {
	t          *ir.Tree
	fn         *ir.Function
	forwarding bool

	before map[*ir.Op][]*ir.Op
	after  map[*ir.Op][]*ir.Op
	added  int

	// pairs records every (original, duplicate) op pair the transformation
	// created, with the compare register separating them — the
	// speculation-safety checker's input.
	pairs []verify.SpecPair

	pendingArcs []pendingArc

	combineCache map[combineKey]guardState
	notCache     map[ir.Reg]ir.Reg
}

type combineKey struct {
	h    ir.Reg
	hNeg bool
	g    ir.Reg
	want bool // true: condition g must hold; false: ¬g must hold
}

// ErrNotApplicable reports that the transform would be unsafe or useless for
// this arc and was skipped.
var ErrNotApplicable = fmt.Errorf("spd: transform not applicable")

// AppInfo describes one applied transformation: its code-size cost and the
// original/duplicate pairs it created (the speculation-safety checker's
// evidence of which ops must be mutually exclusive).
type AppInfo struct {
	Added int
	Pairs []verify.SpecPair
}

// Apply performs speculative disambiguation for arc a of tree t. It returns
// the number of operations added. ErrNotApplicable (wrapped) is returned when
// the arc cannot be transformed safely; the tree is then unchanged.
func Apply(t *ir.Tree, a *ir.MemArc, forwarding bool) (int, error) {
	info, err := ApplyInfo(t, a, forwarding)
	return info.Added, err
}

// ApplyInfo is Apply returning the full application record.
func ApplyInfo(t *ir.Tree, a *ir.MemArc, forwarding bool) (AppInfo, error) {
	if !a.Ambiguous {
		return AppInfo{}, fmt.Errorf("%w: arc %s is a definite dependence", ErrNotApplicable, a)
	}
	x := &transformer{
		t:            t,
		fn:           t.Fn,
		forwarding:   forwarding,
		before:       map[*ir.Op][]*ir.Op{},
		after:        map[*ir.Op][]*ir.Op{},
		combineCache: map[combineKey]guardState{},
		notCache:     map[ir.Reg]ir.Reg{},
	}
	var err error
	switch a.Kind {
	case ir.DepRAW:
		err = x.applyRAW(a)
	case ir.DepWAR:
		err = x.applyWAR(a)
	case ir.DepWAW:
		err = x.applyWAW(a)
	}
	if err != nil {
		return AppInfo{}, err
	}
	x.flush()
	x.flushArcs()
	return AppInfo{Added: x.added, Pairs: x.pairs}, nil
}

// newOp builds an op with a fresh ID (position assigned at flush).
func (x *transformer) newOp(kind ir.OpKind, args []ir.Reg, dest ir.Reg, blk int) *ir.Op {
	x.added++
	return &ir.Op{
		ID: x.t.AllocID(), Kind: kind, Args: args, Dest: dest,
		Guard: ir.NoReg, Block: blk,
	}
}

func (x *transformer) insertBefore(anchor, op *ir.Op) {
	x.before[anchor] = append(x.before[anchor], op)
}

func (x *transformer) insertAfter(anchor, op *ir.Op) {
	x.after[anchor] = append(x.after[anchor], op)
}

// flush rebuilds the op list with all pending insertions and renumbers Seq.
func (x *transformer) flush() {
	out := make([]*ir.Op, 0, len(x.t.Ops)+x.added)
	for _, op := range x.t.Ops {
		out = append(out, x.before[op]...)
		out = append(out, op)
		out = append(out, x.after[op]...)
	}
	x.t.Ops = out
	x.t.Renumber()
}

// matNot materializes ¬r, placing the op before anchor.
func (x *transformer) matNot(r ir.Reg, anchor *ir.Op, blk int) ir.Reg {
	if n, ok := x.notCache[r]; ok {
		return n
	}
	d := x.fn.NewReg()
	op := x.newOp(ir.OpBNot, []ir.Reg{r}, d, blk)
	x.insertBefore(anchor, op)
	x.notCache[r] = d
	return d
}

// combine returns a guard meaning h ∧ g (want true) or h ∧ ¬g (want false),
// where h is the op's pre-existing guard. Boolean ops are placed before
// anchor; results are cached so each combination is materialized once (the
// first anchor precedes later uses because ops are processed in Seq order).
func (x *transformer) combine(h guardState, g ir.Reg, want bool, anchor *ir.Op, blk int) guardState {
	if h.reg == ir.NoReg {
		return guardState{reg: g, neg: !want}
	}
	key := combineKey{h: h.reg, hNeg: h.neg, g: g, want: want}
	if cached, ok := x.combineCache[key]; ok {
		return cached
	}
	hr := h.reg
	if h.neg {
		hr = x.matNot(h.reg, anchor, blk)
	}
	d := x.fn.NewReg()
	kind := ir.OpBAnd
	if !want {
		kind = ir.OpBAndNot
	}
	op := x.newOp(kind, []ir.Reg{hr, g}, d, blk)
	x.insertBefore(anchor, op)
	gs := guardState{reg: d}
	x.combineCache[key] = gs
	return gs
}

func opGuard(o *ir.Op) guardState { return guardState{reg: o.Guard, neg: o.GuardNeg} }

func setGuard(o *ir.Op, g guardState) {
	o.Guard = g.reg
	o.GuardNeg = g.neg
}

// dependentSet computes D: the set of non-exit ops reachable from seed via
// register flow (an op joins D when any of its arguments reads a register
// written by a D member). The result is a conservative over-approximation:
// redefinitions do not untaint a register.
//
// Duplication is restricted to ops in blocks dominated by the seed's block:
// only there does the op's commit imply the seed load committed, making the
// address compare's inputs (and the duplicate's stale temporaries)
// meaningful. Ops on other paths read the guarded-merged registers, whose
// committed values are always correct, so they are left untouched — and
// because such an op reads the merged value rather than a duplicate
// temporary, its own result needs no duplication either (taint does not
// propagate through it).
func dependentSet(t *ir.Tree, seed *ir.Op) map[*ir.Op]bool {
	d := map[*ir.Op]bool{seed: true}
	tainted := map[ir.Reg]bool{}
	if seed.Dest != ir.NoReg {
		tainted[seed.Dest] = true
	}
	for _, op := range t.Ops {
		if op.Seq <= seed.Seq || op.Kind == ir.OpExit {
			continue
		}
		if !t.BlockIsAncestor(seed.Block, op.Block) {
			continue
		}
		for _, r := range op.Args {
			if tainted[r] {
				d[op] = true
				// A merge-protected destination carries the correct
				// committed value under every alias outcome, so taint does
				// not flow through it: its readers need no duplication.
				if op.Dest != ir.NoReg && !t.Fn.Stable(op.Dest) {
					tainted[op.Dest] = true
				}
				break
			}
		}
	}
	return d
}

// needsMerge reports whether register r (defined by def, a member of D) is
// observable outside the duplicated region and therefore needs a guarded
// merge move: read by an exit, read by an op outside D, read in another tree
// of the function, or read at-or-before its definition within D (a
// loop-carried use observing the previous tree execution).
func needsMerge(fn *ir.Function, t *ir.Tree, d map[*ir.Op]bool, r ir.Reg, def *ir.Op) bool {
	reads := func(op *ir.Op) bool {
		for _, a := range op.Args {
			if a == r {
				return true
			}
		}
		for _, a := range op.CallArg {
			if a == r {
				return true
			}
		}
		return false
	}
	for _, tr := range fn.Trees {
		for _, op := range tr.Ops {
			// A register consumed as a guard must hold a valid value on
			// every execution — the masking machinery itself reads it — so
			// it always needs the merge, no matter who the reader is.
			if op.Guard == r {
				return true
			}
			if !reads(op) {
				continue
			}
			if tr != t {
				return true
			}
			if op.Kind == ir.OpExit || !d[op] {
				return true
			}
			if op.Seq <= def.Seq {
				return true // loop-carried within the tree
			}
		}
	}
	return false
}

// defsPrecede reports whether every definition of r in the tree occurs
// strictly before position seq (so a new op at seq may read r).
// A register with no definition in this tree at all is defined in an
// earlier tree (or is a parameter) and is always available.
func defsPrecede(t *ir.Tree, r ir.Reg, seq int) bool {
	for _, op := range t.Ops {
		if op.Dest == r && op.Seq >= seq {
			return false
		}
	}
	return true
}

// arcSnapshot captures the current arcs for inheritance decisions.
func arcSnapshot(t *ir.Tree) []*ir.MemArc {
	return append([]*ir.MemArc(nil), t.Arcs...)
}

// classifyArc derives the dependence kind for a (from, to) pair.
func classifyArc(from, to *ir.Op) (ir.DepKind, bool) {
	switch {
	case from.Kind == ir.OpStore && to.Kind == ir.OpLoad:
		return ir.DepRAW, true
	case from.Kind == ir.OpLoad && to.Kind == ir.OpStore:
		return ir.DepWAR, true
	case from.Kind == ir.OpStore && to.Kind == ir.OpStore:
		return ir.DepWAW, true
	}
	return 0, false
}

// queueArc records an arc to add between u and v; the final orientation is
// decided after flush, when both ops have Seq positions. Load/load pairs are
// dropped.
func (x *transformer) queueArc(u, v *ir.Op, ambiguous bool) {
	x.pendingArcs = append(x.pendingArcs, pendingArc{u: u, v: v, amb: ambiguous})
}

type pendingArc struct {
	u, v *ir.Op
	amb  bool
}

// flushArcs materializes queued arcs using post-flush Seq order.
func (x *transformer) flushArcs() {
	for _, p := range x.pendingArcs {
		u, v := p.u, p.v
		if u.Seq > v.Seq {
			u, v = v, u
		}
		kind, ok := classifyArc(u, v)
		if !ok {
			continue
		}
		x.t.Arcs = append(x.t.Arcs, &ir.MemArc{From: u, To: v, Kind: kind, Ambiguous: p.amb})
	}
	x.pendingArcs = nil
}

func cloneRef(r *ir.MemRef) *ir.MemRef {
	if r == nil {
		return nil
	}
	c := *r
	return &c
}

// materializeAt makes the value of reg available before anchor by cloning
// its defining chain of pure, unguarded, non-memory operations (fresh
// destinations, inserted before anchor). Registers already defined before
// anchor — or defined in an earlier tree — are used directly. Fails with
// ErrNotApplicable on guarded, multiply-defined, memory-dependent, or overly
// deep chains.
func (x *transformer) materializeAt(reg ir.Reg, anchor *ir.Op) (ir.Reg, error) {
	t := x.t
	memo := map[ir.Reg]ir.Reg{}
	var clone func(r ir.Reg, depth int) (ir.Reg, error)
	clone = func(r ir.Reg, depth int) (ir.Reg, error) {
		if nr, ok := memo[r]; ok {
			return nr, nil
		}
		if depth > 16 {
			return 0, fmt.Errorf("%w: address chain too deep", ErrNotApplicable)
		}
		var def *ir.Op
		for _, op := range t.Ops {
			if op.Dest == r {
				if def != nil {
					return 0, fmt.Errorf("%w: register r%d multiply defined", ErrNotApplicable, r)
				}
				def = op
			}
		}
		if def == nil || def.Seq < anchor.Seq {
			return r, nil // live-in or already available
		}
		if def.Kind.IsMem() || def.Kind.HasSideEffect() || def.IsGuarded() {
			return 0, fmt.Errorf("%w: address depends on op %%%d (%s)", ErrNotApplicable, def.ID, def.Kind)
		}
		args := make([]ir.Reg, len(def.Args))
		for i, a := range def.Args {
			na, err := clone(a, depth+1)
			if err != nil {
				return 0, err
			}
			args[i] = na
		}
		n := x.newOp(def.Kind, args, x.fn.NewReg(), anchor.Block)
		n.Imm = def.Imm
		x.insertBefore(anchor, n)
		memo[r] = n.Dest
		return n.Dest, nil
	}
	return clone(reg, 0)
}
