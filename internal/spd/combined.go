package spd

import (
	"fmt"

	"specdis/internal/ir"
)

// ApplyCombinedRAW implements the paper's §7 multi-alias extension: instead
// of one-at-a-time application (which can replicate code for all 2^n alias
// outcomes of n pairs), it speculates on the single most likely outcome —
// no pair aliases — with ONE duplicate of the dependent code, and keeps the
// original, fully ordered code as the correct-but-slower version for the
// other 2^n − 1 outcomes.
//
// All arcs must be ambiguous RAW arcs of t. One address compare is emitted
// per arc; their disjunction ("some pair aliases") guards the original copy,
// its negation the duplicate's side effects and merges. The duplicate loses
// every speculated arc at once. Returns the number of operations added.
func ApplyCombinedRAW(t *ir.Tree, arcs []*ir.MemArc, forwarding bool) (int, error) {
	info, err := ApplyCombinedRAWInfo(t, arcs, forwarding)
	return info.Added, err
}

// ApplyCombinedRAWInfo is ApplyCombinedRAW returning the full application
// record (including original/duplicate pairs for the safety checker).
func ApplyCombinedRAWInfo(t *ir.Tree, arcs []*ir.MemArc, forwarding bool) (AppInfo, error) {
	if len(arcs) == 0 {
		return AppInfo{}, fmt.Errorf("%w: empty arc set", ErrNotApplicable)
	}
	if len(arcs) == 1 {
		return ApplyInfo(t, arcs[0], forwarding)
	}
	for _, a := range arcs {
		if a.Kind != ir.DepRAW || !a.Ambiguous {
			return AppInfo{}, fmt.Errorf("%w: combined speculation handles ambiguous RAW arcs, got %s", ErrNotApplicable, a)
		}
	}

	x := &transformer{
		t:            t,
		fn:           t.Fn,
		forwarding:   false, // the alias copy stays fully ordered
		before:       map[*ir.Op][]*ir.Op{},
		after:        map[*ir.Op][]*ir.Op{},
		combineCache: map[combineKey]guardState{},
		notCache:     map[ir.Reg]ir.Reg{},
	}

	// Seeds: the loads being speculated past their stores. The compare ops
	// and the OR-tree computing "some pair aliases" are anchored before the
	// earliest load.
	seedSet := map[*ir.Op]bool{}
	anchor := arcs[0].To
	for _, a := range arcs {
		seedSet[a.To] = true
		if a.To.Seq < anchor.Seq {
			anchor = a.To
		}
		// Every store and load address must be defined before the anchor so
		// the compares are computable there.
		if !defsPrecede(t, a.From.AddrReg(), anchor.Seq) ||
			!defsPrecede(t, a.To.AddrReg(), anchor.Seq) {
			return AppInfo{}, fmt.Errorf("%w: address of %s unavailable at the earliest load", ErrNotApplicable, a)
		}
	}

	// anyAlias = OR over per-arc address-equality compares.
	blk := anchor.Block
	for _, a := range arcs {
		blk = t.CommonAncestor(blk, t.CommonAncestor(a.From.Block, a.To.Block))
	}
	var anyAlias ir.Reg = ir.NoReg
	for _, a := range arcs {
		g := x.fn.NewReg()
		cmp := x.newOp(ir.OpCmpEQ, []ir.Reg{a.From.AddrReg(), a.To.AddrReg()}, g, blk)
		x.insertBefore(anchor, cmp)
		if anyAlias == ir.NoReg {
			anyAlias = g
		} else {
			d := x.fn.NewReg()
			or := x.newOp(ir.OpOr, []ir.Reg{anyAlias, g}, d, blk)
			x.insertBefore(anchor, or)
			anyAlias = d
		}
	}

	// D: union of the dependent sets of all seed loads, restricted to blocks
	// where every seed's commit is implied. For simplicity (and soundness)
	// require all seeds to share one block; mixed-path groups are rejected.
	for _, a := range arcs {
		if a.To.Block != anchor.Block {
			return AppInfo{}, fmt.Errorf("%w: speculated loads on different paths", ErrNotApplicable)
		}
	}
	d := map[*ir.Op]bool{}
	for _, a := range arcs {
		for op := range dependentSet(t, a.To) {
			d[op] = true
		}
	}

	snapshot := arcSnapshot(t)
	dupOf := x.duplicate(d, anyAlias, false, map[ir.Reg]remapEntry{}, nil)

	// Arc inheritance: duplicates inherit all arcs except the speculated
	// ones (the duplicate of each seed load escapes its stores).
	speculated := map[*ir.MemArc]bool{}
	for _, a := range arcs {
		speculated[a] = true
	}
	for _, arc := range snapshot {
		du, okU := dupOf[arc.From]
		dv, okV := dupOf[arc.To]
		switch {
		case okU && okV:
			x.queueArc(du, dv, arc.Ambiguous)
		case okU:
			x.queueArc(du, arc.To, arc.Ambiguous)
		case okV:
			if speculated[arc] {
				continue
			}
			x.queueArc(arc.From, dv, arc.Ambiguous)
		}
	}

	x.flush()
	x.flushArcs()
	return AppInfo{Added: x.added, Pairs: x.pairs}, nil
}

// CombinedGroups partitions a tree's eligible ambiguous RAW arcs into the
// groups ApplyCombinedRAW accepts: arcs whose target loads share a block and
// whose addresses are available at the group's earliest load. Groups of size
// one are returned too (the caller may fall back to Apply).
func CombinedGroups(t *ir.Tree, maxAliasProb, dflt float64) [][]*ir.MemArc {
	byBlock := map[int][]*ir.MemArc{}
	for _, a := range t.Arcs {
		if a.Kind != ir.DepRAW || !a.Ambiguous || a.AliasProb(dflt) > maxAliasProb {
			continue
		}
		if a.To.SpecSide > 0 {
			continue
		}
		byBlock[a.To.Block] = append(byBlock[a.To.Block], a)
	}
	var out [][]*ir.MemArc
	for _, group := range byBlock {
		out = append(out, group)
	}
	return out
}

// TransformCombined runs combined speculation over every profiled tree:
// within each tree, the largest viable group of ambiguous RAW arcs is
// speculated as one unit. A Result compatible with Transform is returned
// (each combined application counts its arcs as RAW applications).
func TransformCombined(p *ir.Program, prof Profile, params Params) *Result {
	res := &Result{}
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			if prof.TreeExecCount(t) == 0 {
				continue
			}
			groups := CombinedGroups(t, params.MaxAliasProb, params.AssumedAliasProb)
			var best []*ir.MemArc
			for _, g := range groups {
				if len(g) > len(best) {
					best = g
				}
			}
			if len(best) == 0 {
				continue
			}
			info, err := ApplyCombinedRAWInfo(t, best, params.Forwarding)
			if err != nil {
				continue
			}
			res.RAW += len(best)
			res.AddedOps += info.Added
			res.Apps = append(res.Apps, Application{Tree: t, Kind: ir.DepRAW, Added: info.Added, Pairs: info.Pairs})
			if params.Verify {
				verifyTree(t, info.Pairs, res)
			}
		}
	}
	return res
}
