package spd

import (
	"fmt"

	"specdis/internal/ir"
	"specdis/internal/verify"
)

// applyRAW transforms an ambiguous store→load arc (paper §4.3, Figure 4-4).
//
// The load and every operation data-dependent on it are duplicated. The
// duplicate ("no-alias") copy loses the arc and may therefore be scheduled
// past the store; it computes into fresh registers, with its side effects and
// merge moves guarded by ¬(addr_S == addr_L). The original ("alias") copy is
// guarded by the compare; when possible the original load is replaced by a
// move of the store's data register (store-to-load forwarding), removing the
// store and load latencies from the alias path.
func (x *transformer) applyRAW(a *ir.MemArc) error {
	t := x.t
	s, l := a.From, a.To
	d := dependentSet(t, l)
	snapshot := arcSnapshot(t)

	// Store-to-load forwarding is legal only when the store provably commits
	// whenever the load's value is observed and no other store can write the
	// load's location in between. The store commits on every path through
	// its block when its guard is exactly its block's path condition; with
	// the block an ancestor of the load's, every consumer of the load sits
	// on such a path.
	sBlockGuard := t.Blocks[s.Block].Guard
	sBlockNeg := t.Blocks[s.Block].Neg
	canFwd := x.forwarding &&
		t.BlockIsAncestor(s.Block, l.Block) &&
		(s.Guard == ir.NoReg ||
			(s.Guard == l.Guard && s.GuardNeg == l.GuardNeg) ||
			(s.Guard == sBlockGuard && s.GuardNeg == sBlockNeg))
	if canFwd {
		for _, arc := range snapshot {
			if arc != a && arc.To == l && arc.From.Kind == ir.OpStore {
				canFwd = false
				break
			}
		}
	}

	blk := t.CommonAncestor(s.Block, l.Block)
	g := x.fn.NewReg()
	cmp := x.newOp(ir.OpCmpEQ, []ir.Reg{s.AddrReg(), l.AddrReg()}, g, blk)
	x.insertBefore(l, cmp)

	dupOf := x.duplicate(d, g, false, map[ir.Reg]remapEntry{}, nil)

	if canFwd {
		// Alias path: forward the stored value; the original load ceases to
		// be a memory operation, and its arcs (including a) disappear.
		l.Kind = ir.OpMove
		l.Args = []ir.Reg{s.DataReg()}
		l.Ref = nil
		x.removeArcsOf(l)
	} else {
		// Alias path keeps the original, still-ordered load.
		_ = a // arc a stays in place for the original copy
	}

	x.inheritArcs(snapshot, dupOf, a)
	return nil
}

// applyWAR transforms an ambiguous load→store arc (paper §4.4, Figure 4-5).
//
// A new load L3 of the store's address is inserted right after L1; the
// computation depending on L1 is duplicated to consume L3's value, guarded by
// the compare (the alias case reads the original value before the store
// clobbers it); the original copy, guarded by ¬cmp, loses the arc so the
// store may move up past the load.
func (x *transformer) applyWAR(a *ir.MemArc) error {
	t := x.t
	l1, s1 := a.From, a.To
	d := dependentSet(t, l1)
	if d[s1] {
		return fmt.Errorf("%w: store %%%d depends on load %%%d", ErrNotApplicable, s1.ID, l1.ID)
	}
	snapshot := arcSnapshot(t)
	blk := t.CommonAncestor(l1.Block, s1.Block)

	// The compare and the inserted load need the store's address before L1.
	// Address computations normally sit right next to their store, so clone
	// the pure computation chain up to L1 when needed.
	sAddr := s1.AddrReg()
	if !defsPrecede(t, sAddr, l1.Seq) {
		na, err := x.materializeAt(sAddr, l1)
		if err != nil {
			return err
		}
		sAddr = na
	}

	g := x.fn.NewReg()
	cmp := x.newOp(ir.OpCmpEQ, []ir.Reg{l1.AddrReg(), sAddr}, g, blk)
	x.insertBefore(l1, cmp)

	l3 := x.newOp(ir.OpLoad, []ir.Reg{sAddr}, x.fn.NewReg(), blk)
	l3.Ref = cloneRef(s1.Ref)
	l3.MarkAliasSide(true)
	x.insertAfter(l1, l3)
	x.pairs = append(x.pairs, verify.SpecPair{Orig: l1.ID, Dup: l3.ID, Guard: g})

	// L3 behaves like a load at L1's position on S1's address: it is
	// ambiguous with exactly the stores S1 is ambiguous with, and definitely
	// anti-dependent on S1 itself.
	for _, arc := range snapshot {
		if arc == a {
			continue
		}
		if arc.From == s1 && arc.To.Kind == ir.OpStore {
			x.queueArc(l3, arc.To, arc.Ambiguous)
		}
		if arc.To == s1 && arc.From.Kind == ir.OpStore {
			x.queueArc(arc.From, l3, arc.Ambiguous)
		}
	}
	x.queueArc(l3, s1, false)

	t.RemoveArc(a)

	// Original copy (no-alias assumed): guard L1 with ¬cmp and merge the
	// alias value over it when observable. This must precede duplicate() so
	// that any shared guard combinations are materialized at L1, ahead of
	// every later use.
	hL1 := opGuard(l1)
	if l1.Dest != ir.NoReg && needsMerge(x.fn, t, d, l1.Dest, l1) {
		mv := x.newOp(ir.OpMove, []ir.Reg{l3.Dest}, l1.Dest, l1.Block)
		setGuard(mv, x.combine(hL1, g, true, l1, l1.Block))
		mv.MarkAliasSide(true)
		x.insertAfter(l1, mv)
		x.fn.MarkStable(l1.Dest)
	}
	setGuard(l1, x.combine(hL1, g, false, l1, l1.Block))
	l1.MarkAliasSide(false)

	// Duplicate the dependent computation, with L3 standing in for L1.
	seedMap := map[ir.Reg]remapEntry{}
	if l1.Dest != ir.NoReg {
		seedMap[l1.Dest] = remapEntry{temp: l3.Dest, def: l1}
	}
	dupOf := x.duplicate(d, g, true, seedMap, l1)

	x.inheritArcs(snapshot, dupOf, a)
	return nil
}

// applyWAW transforms an ambiguous store→store arc (paper §4.5, Figure 4-6):
// the arc is removed so the second store may execute first, and the first
// store is guarded by ¬(addr1 == addr2) — when the addresses match its value
// would have been overwritten anyway. Only the address compare is added.
func (x *transformer) applyWAW(a *ir.MemArc) error {
	t := x.t
	s1, s2 := a.From, a.To
	// Suppressing S1 on an address match is only sound when S2 then
	// actually overwrites it — S2 must provably commit whenever S1 does.
	if !(s2.Guard == ir.NoReg || (s2.Guard == s1.Guard && s2.GuardNeg == s1.GuardNeg)) {
		return fmt.Errorf("%w: store %%%d may not commit when store %%%d does", ErrNotApplicable, s2.ID, s1.ID)
	}
	blk := t.CommonAncestor(s1.Block, s2.Block)
	g := x.fn.NewReg()
	cmp := x.newOp(ir.OpCmpEQ, []ir.Reg{s1.AddrReg(), s2.AddrReg()}, g, blk)

	anchor := s1
	if !defsPrecede(t, s2.AddrReg(), s1.Seq) {
		// The second store's address is computed after S1: S1 itself must
		// move down to just before S2 for the compare to be computable.
		if err := x.moveDownSafe(s1, s2, a); err != nil {
			return err
		}
		// Splice S1 out; it is re-inserted (after cmp) before S2.
		for i, op := range t.Ops {
			if op == s1 {
				t.Ops = append(t.Ops[:i], t.Ops[i+1:]...)
				break
			}
		}
		anchor = s2
		x.insertBefore(s2, cmp)
		defer x.insertBefore(s2, s1) // after cmp and any guard-combine ops
	} else {
		x.insertBefore(s1, cmp)
	}

	h := opGuard(s1)
	setGuard(s1, x.combine(h, g, false, anchor, blk))
	s1.MarkAliasSide(false)
	t.RemoveArc(a)
	return nil
}

// moveDownSafe verifies that store s1 may be re-positioned to just before s2:
// no dependence arc from s1 reaches an op at or before s2 (other than a
// itself), and no op between them redefines a register s1 reads.
func (x *transformer) moveDownSafe(s1, s2 *ir.Op, a *ir.MemArc) error {
	for _, arc := range x.t.Arcs {
		if arc != a && arc.From == s1 && arc.To.Seq <= s2.Seq {
			return fmt.Errorf("%w: arc %s blocks moving store %%%d", ErrNotApplicable, arc, s1.ID)
		}
	}
	reads := map[ir.Reg]bool{}
	for _, r := range s1.Args {
		reads[r] = true
	}
	if s1.Guard != ir.NoReg {
		reads[s1.Guard] = true
	}
	for _, op := range x.t.Ops {
		if op.Seq > s1.Seq && op.Seq < s2.Seq && op.Dest != ir.NoReg && reads[op.Dest] {
			return fmt.Errorf("%w: op %%%d redefines an input of store %%%d", ErrNotApplicable, op.ID, s1.ID)
		}
	}
	return nil
}

// remapEntry records a duplicated definition: reads of the original
// register are redirected to the temporary only by readers on the
// definition's own control path — on disjoint paths the definition never
// commits, so such readers must keep the original (merged) register, whose
// committed value there comes from other writers.
type remapEntry struct {
	temp ir.Reg
	def  *ir.Op
}

// duplicate clones every op of D (except the seed load when seedMap already
// maps its destination), producing the speculative copy. aliasSide selects
// which outcome the duplicate copy commits on: false = no-alias (¬cmp, the
// RAW shape), true = alias (cmp, the WAR shape). Pure duplicates compute
// unguarded into fresh registers; side-effecting duplicates and merge moves
// are guarded; originals are guarded with the opposite polarity. skip, when
// non-nil, is a D member that must not be duplicated (the WAR seed load).
func (x *transformer) duplicate(d map[*ir.Op]bool, g ir.Reg, aliasSide bool, regMap map[ir.Reg]remapEntry, skip *ir.Op) map[*ir.Op]*ir.Op {
	t := x.t
	dupOf := map[*ir.Op]*ir.Op{}
	for _, o := range t.Ops {
		if !d[o] || o == skip {
			continue
		}
		h := opGuard(o)

		remap := func(args []ir.Reg) []ir.Reg {
			out := make([]ir.Reg, len(args))
			for i, r := range args {
				if e, ok := regMap[r]; ok && t.OnPath(e.def.Block, o.Block) {
					out[i] = e.temp
				} else {
					out[i] = r
				}
			}
			return out
		}

		dest := ir.Reg(ir.NoReg)
		if o.Dest != ir.NoReg {
			dest = x.fn.NewReg()
		}
		dup := x.newOp(o.Kind, remap(o.Args), dest, o.Block)
		dup.Imm = o.Imm
		dup.Ref = cloneRef(o.Ref)
		dup.PrintFloat = o.PrintFloat
		dup.MarkAliasSide(aliasSide)
		if o.Kind.HasSideEffect() {
			setGuard(dup, x.combine(h, g, aliasSide, o, o.Block))
		}
		x.insertAfter(o, dup)
		dupOf[o] = dup
		x.pairs = append(x.pairs, verify.SpecPair{Orig: o.ID, Dup: dup.ID, Guard: g})
		if o.Dest != ir.NoReg {
			if needsMerge(x.fn, t, d, o.Dest, o) {
				mv := x.newOp(ir.OpMove, []ir.Reg{dest}, o.Dest, o.Block)
				setGuard(mv, x.combine(h, g, aliasSide, o, o.Block))
				mv.MarkAliasSide(aliasSide)
				x.insertAfter(o, mv)
				x.fn.MarkStable(o.Dest)
			}
			regMap[o.Dest] = remapEntry{temp: dest, def: o}
		}

		// The original copy commits on the opposite outcome.
		setGuard(o, x.combine(h, g, !aliasSide, o, o.Block))
		o.MarkAliasSide(!aliasSide)
	}
	return dupOf
}

// inheritArcs extends memory-dependence arcs onto the duplicated memory ops:
// a duplicate inherits every arc of its original against ops outside D, and
// D-internal arcs are mirrored between the two duplicates. Arc a itself is
// not inherited by the duplicate of its load — that is the speculation. Mixed
// original/duplicate pairs commit on opposite compare outcomes and need no
// ordering.
func (x *transformer) inheritArcs(snapshot []*ir.MemArc, dupOf map[*ir.Op]*ir.Op, a *ir.MemArc) {
	for _, arc := range snapshot {
		du, okU := dupOf[arc.From]
		dv, okV := dupOf[arc.To]
		switch {
		case okU && okV:
			x.queueArc(du, dv, arc.Ambiguous)
		case okU:
			x.queueArc(du, arc.To, arc.Ambiguous)
		case okV:
			if arc == a {
				continue // the speculated arc: the duplicate load escapes it
			}
			x.queueArc(arc.From, dv, arc.Ambiguous)
		}
	}
}

// removeArcsOf deletes every arc incident to op.
func (x *transformer) removeArcsOf(op *ir.Op) {
	kept := x.t.Arcs[:0]
	for _, arc := range x.t.Arcs {
		if arc.From != op && arc.To != op {
			kept = append(kept, arc)
		}
	}
	x.t.Arcs = kept
}
