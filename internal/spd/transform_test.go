package spd

import (
	"errors"
	"testing"

	"specdis/internal/ir"
)

// rawTree builds the Figure 4-4 shape: store S; load L; mul; add (observable).
func rawTree() (*ir.Tree, *ir.MemArc) {
	fn := &ir.Function{Name: "raw"}
	t := &ir.Tree{Fn: fn, Name: "raw.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}
	addrS, addrL, val := fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.NumRegs = 3
	t.NewOp(ir.OpStore, []ir.Reg{addrS, val}, ir.NoReg)
	l := t.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	mul := t.NewOp(ir.OpMul, []ir.Reg{l.Dest, l.Dest}, fn.NewReg())
	add := t.NewOp(ir.OpAdd, []ir.Reg{mul.Dest, val}, fn.NewReg())
	add.VarWrite = true
	ex := t.NewOp(ir.OpExit, []ir.Reg{add.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	t.BuildMemArcs()
	return t, t.Arcs[0]
}

func countKind(t *ir.Tree, k ir.OpKind) int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

func TestRAWTransformShape(t *testing.T) {
	tr, arc := rawTree()
	sizeBefore := tr.Size()
	added, err := Apply(tr, arc, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("transformed tree invalid: %v", err)
	}
	if tr.Size() != sizeBefore+added {
		t.Errorf("size %d != %d + %d", tr.Size(), sizeBefore, added)
	}
	// Paper cost for RAW: 1 (compare) + n_L duplicated ops (plus merge moves
	// for observable registers). n_L = 3 (load, mul, add); the add's result
	// is observable so one merge move appears: 1 + 3 + 1.
	if added != 5 {
		t.Errorf("added %d ops, expected 5", added)
	}
	if countKind(tr, ir.OpCmpEQ) != 1 {
		t.Error("no address compare emitted")
	}
	// With forwarding the original load became a move; the duplicate load
	// is the only remaining load.
	if countKind(tr, ir.OpLoad) != 1 {
		t.Errorf("forwarding should leave exactly 1 load, got %d", countKind(tr, ir.OpLoad))
	}
	// The speculated duplicate load must carry no arc from the store.
	for _, a := range tr.Arcs {
		if a.From.Kind == ir.OpStore && a.To.Kind == ir.OpLoad {
			t.Errorf("duplicate load still ordered after the store: %v", a)
		}
	}
	// Alias sides: at least one op on each side.
	plus, minus := 0, 0
	for _, op := range tr.Ops {
		switch {
		case op.SpecSide > 0:
			plus++
		case op.SpecSide < 0:
			minus++
		}
	}
	if plus == 0 || minus == 0 {
		t.Errorf("side tags missing: +%d -%d", plus, minus)
	}
}

func TestRAWWithoutForwardingKeepsArc(t *testing.T) {
	tr, arc := rawTree()
	if _, err := Apply(tr, arc, false); err != nil {
		t.Fatal(err)
	}
	// Both loads present; the original keeps its arc.
	if countKind(tr, ir.OpLoad) != 2 {
		t.Errorf("expected 2 loads, got %d", countKind(tr, ir.OpLoad))
	}
	kept := false
	for _, a := range tr.Arcs {
		if a == arc {
			kept = true
		}
	}
	if !kept {
		t.Error("original arc should survive on the alias copy")
	}
}

func TestRAWForwardingRefusedForGuardedStore(t *testing.T) {
	tr, arc := rawTree()
	// Give the store a guard the load does not share: forwarding unsafe.
	g := tr.Fn.NewReg()
	arc.From.Guard = g
	if _, err := Apply(tr, arc, true); err != nil {
		t.Fatal(err)
	}
	if countKind(tr, ir.OpLoad) != 2 {
		t.Error("forwarding must be refused when the store may not commit")
	}
}

func TestDefiniteArcRejected(t *testing.T) {
	tr, arc := rawTree()
	arc.Ambiguous = false
	_, err := Apply(tr, arc, true)
	if !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("definite arc: %v", err)
	}
}

// warTree builds Figure 4-5's core: load L1; dependent mul (observable);
// store S1 that may overwrite L1's location.
func warTree() (*ir.Tree, *ir.MemArc) {
	fn := &ir.Function{Name: "war"}
	t := &ir.Tree{Fn: fn, Name: "war.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{t}
	addrL, addrS, val := fn.NewReg(), fn.NewReg(), fn.NewReg()
	fn.NumRegs = 3
	l1 := t.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	mul := t.NewOp(ir.OpMul, []ir.Reg{l1.Dest, l1.Dest}, fn.NewReg())
	mul.VarWrite = true
	t.NewOp(ir.OpStore, []ir.Reg{addrS, val}, ir.NoReg)
	ex := t.NewOp(ir.OpExit, []ir.Reg{mul.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	t.BuildMemArcs()
	return t, t.Arcs[0]
}

func TestWARTransformShape(t *testing.T) {
	tr, arc := warTree()
	if arc.Kind != ir.DepWAR {
		t.Fatalf("fixture arc is %v", arc.Kind)
	}
	added, err := Apply(tr, arc, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("transformed tree invalid: %v", err)
	}
	// Cost 2 + n_L: compare + inserted load L3 + duplicated dependents
	// (mul) + merges (mul observable, plus the load value if observable).
	if added < 3 {
		t.Errorf("added only %d ops", added)
	}
	// L3 must be definitely anti-dependent on S1.
	foundDef := false
	for _, a := range tr.Arcs {
		if a.Kind == ir.DepWAR && !a.Ambiguous && a.To.Kind == ir.OpStore {
			foundDef = true
		}
		if a == arc {
			t.Error("transformed WAR arc still present")
		}
	}
	if !foundDef {
		t.Error("missing definite L3 -> S1 anti-dependence")
	}
	if countKind(tr, ir.OpLoad) != 2 {
		t.Errorf("expected original load + L3, got %d loads", countKind(tr, ir.OpLoad))
	}
}

func TestWARRefusedWhenStoreDependsOnLoad(t *testing.T) {
	fn := &ir.Function{Name: "ward"}
	tr := &ir.Tree{Fn: fn, Name: "ward.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	addrL, addrS := fn.NewReg(), fn.NewReg()
	l1 := tr.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	tr.NewOp(ir.OpStore, []ir.Reg{addrS, l1.Dest}, ir.NoReg) // stores the loaded value
	ex := tr.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	tr.BuildMemArcs()
	_, err := Apply(tr, tr.Arcs[0], true)
	if !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("expected ErrNotApplicable, got %v", err)
	}
}

func TestWARClonesLateAddressChain(t *testing.T) {
	// The store address is computed after the load by pure ops: the
	// transform clones the chain before L1 instead of refusing.
	fn := &ir.Function{Name: "wara"}
	tr := &ir.Tree{Fn: fn, Name: "wara.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	addrL, base := fn.NewReg(), fn.NewReg()
	l1 := tr.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	dep := tr.NewOp(ir.OpMul, []ir.Reg{l1.Dest, l1.Dest}, fn.NewReg())
	dep.VarWrite = true
	addrS := tr.NewOp(ir.OpAdd, []ir.Reg{base, base}, fn.NewReg())
	tr.NewOp(ir.OpStore, []ir.Reg{addrS.Dest, base}, ir.NoReg)
	ex := tr.NewOp(ir.OpExit, []ir.Reg{dep.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	tr.BuildMemArcs()
	var war *ir.MemArc
	for _, a := range tr.Arcs {
		if a.Kind == ir.DepWAR {
			war = a
		}
	}
	added, err := Apply(tr, war, true)
	if err != nil {
		t.Fatalf("late pure address chain should be cloneable: %v", err)
	}
	if added < 4 { // cloned add + cmp + L3 + dup/merge
		t.Errorf("only %d ops added", added)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// A cloned add must appear before L1.
	found := false
	for _, op := range tr.Ops {
		if op.Kind == ir.OpAdd && op.Seq < l1.Seq && op != addrS {
			found = true
		}
	}
	if !found {
		t.Error("address chain not cloned before the load")
	}
}

func TestWARRefusedWhenAddressLoaded(t *testing.T) {
	// The store address itself comes from memory after L1: cloning a load
	// would change what it reads, so the transform must refuse.
	fn := &ir.Function{Name: "warb"}
	tr := &ir.Tree{Fn: fn, Name: "warb.t0"}
	tr.NewBlock(-1, ir.NoReg, false)
	fn.Trees = []*ir.Tree{tr}
	addrL, base := fn.NewReg(), fn.NewReg()
	l1 := tr.NewOp(ir.OpLoad, []ir.Reg{addrL}, fn.NewReg())
	idx := tr.NewOp(ir.OpLoad, []ir.Reg{base}, fn.NewReg()) // index array load
	addrS := tr.NewOp(ir.OpAdd, []ir.Reg{base, idx.Dest}, fn.NewReg())
	st := tr.NewOp(ir.OpStore, []ir.Reg{addrS.Dest, base}, ir.NoReg)
	ex := tr.NewOp(ir.OpExit, []ir.Reg{l1.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	tr.BuildMemArcs()
	var war *ir.MemArc
	for _, a := range tr.Arcs {
		if a.Kind == ir.DepWAR && a.From == l1 && a.To == st {
			war = a
		}
	}
	if war == nil {
		t.Fatal("fixture lacks WAR arc")
	}
	_, err := Apply(tr, war, true)
	if !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("expected ErrNotApplicable, got %v", err)
	}
}

// wawTree: store S1; store S2 to a possibly equal address.
func wawTree(lateAddr bool) (*ir.Tree, *ir.MemArc) {
	fn := &ir.Function{Name: "waw"}
	t := &ir.Tree{Fn: fn, Name: "waw.t0"}
	t.NewBlock(-1, ir.NoReg, false)
	a1, v1, v2 := fn.NewReg(), fn.NewReg(), fn.NewReg()
	var a2 ir.Reg
	if !lateAddr {
		a2 = fn.NewReg()
	}
	if !lateAddr {
		t.NewOp(ir.OpStore, []ir.Reg{a1, v1}, ir.NoReg)
		t.NewOp(ir.OpStore, []ir.Reg{a2, v2}, ir.NoReg)
	} else {
		t.NewOp(ir.OpStore, []ir.Reg{a1, v1}, ir.NoReg)
		addr2 := t.NewOp(ir.OpAdd, []ir.Reg{a1, v1}, fn.NewReg())
		t.NewOp(ir.OpStore, []ir.Reg{addr2.Dest, v2}, ir.NoReg)
	}
	ex := t.NewOp(ir.OpExit, nil, ir.NoReg)
	ex.Exit = ir.ExitRet
	t.BuildMemArcs()
	for _, a := range t.Arcs {
		if a.Kind == ir.DepWAW {
			return t, a
		}
	}
	panic("no WAW arc in fixture")
}

func TestWAWTransform(t *testing.T) {
	tr, arc := wawTree(false)
	s1 := arc.From
	added, err := Apply(tr, arc, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper cost: only the address comparison.
	if added != 1 {
		t.Errorf("WAW added %d ops, want 1", added)
	}
	if s1.Guard == ir.NoReg || !s1.GuardNeg {
		t.Errorf("S1 must be guarded by ¬cmp, got %v", s1)
	}
	if s1.SpecSide != -1 {
		t.Errorf("S1 side = %d", s1.SpecSide)
	}
	for _, a := range tr.Arcs {
		if a.Kind == ir.DepWAW {
			t.Error("WAW arc survived the transform")
		}
	}
}

func TestWAWWithLateAddressMovesStore(t *testing.T) {
	tr, arc := wawTree(true)
	s1, s2 := arc.From, arc.To
	if _, err := Apply(tr, arc, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if s1.Seq > s2.Seq {
		t.Error("moved S1 should sit before S2")
	}
	// The compare must come before S1's new position.
	for _, op := range tr.Ops {
		if op.Kind == ir.OpCmpEQ {
			if op.Seq > s1.Seq {
				t.Error("compare placed after the guarded store")
			}
		}
	}
}

func TestDependentSetStopsAtExitsAndSiblings(t *testing.T) {
	fn := &ir.Function{Name: "ds"}
	tr := &ir.Tree{Fn: fn, Name: "ds.t0"}
	fn.Trees = []*ir.Tree{tr}
	root := tr.NewBlock(-1, ir.NoReg, false)
	cnd := fn.NewReg()
	thenB := tr.NewBlock(root, cnd, false)
	sibB := tr.NewBlock(root, cnd, true)

	// The seed load commits only on the then-path; a consumer on the
	// sibling path sees a compare whose inputs are stale there, so it must
	// read the merged register instead of being duplicated.
	l := tr.NewOp(ir.OpLoad, []ir.Reg{cnd}, fn.NewReg())
	l.Block = thenB
	dep := tr.NewOp(ir.OpAdd, []ir.Reg{l.Dest, l.Dest}, fn.NewReg())
	dep.Block = thenB
	other := tr.NewOp(ir.OpMul, []ir.Reg{dep.Dest, dep.Dest}, fn.NewReg())
	other.Block = sibB
	ex := tr.NewOp(ir.OpExit, []ir.Reg{dep.Dest}, ir.NoReg)
	ex.Exit = ir.ExitRet
	ex.Block = root

	d := dependentSet(tr, l)
	if !d[l] || !d[dep] {
		t.Error("direct dependents missing from D")
	}
	if d[other] {
		t.Error("sibling-path consumer must not be duplicated")
	}
	if d[ex] {
		t.Error("exits must never join D")
	}
	// dep's result is read by an exit and by a non-D op: must be merged.
	if !needsMerge(fn, tr, d, dep.Dest, dep) {
		t.Error("exit-read register must need a merge")
	}
	// The load's result is read only inside D, strictly after its def:
	// no merge needed.
	if needsMerge(fn, tr, d, l.Dest, l) {
		t.Error("D-internal register must not need a merge")
	}
}
