package spd

import (
	"testing"

	"specdis/internal/ir"
	"specdis/internal/verify"
)

// TestApplyRecordsPairsAndVerifies checks that a transformed tree carries
// the original/duplicate pair records the safety checker needs, and that
// the transform's output satisfies every checker.
func TestApplyRecordsPairsAndVerifies(t *testing.T) {
	for _, fwd := range []bool{false, true} {
		tr, arc := rawTree()
		// The fixture's address and value registers are live-ins; declare
		// them so the def-before-use check knows they are defined.
		tr.Fn.Params = []ir.Reg{0, 1, 2}
		info, err := ApplyInfo(tr, arc, fwd)
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Pairs) == 0 {
			t.Fatal("transform recorded no original/duplicate pairs")
		}
		for _, p := range info.Pairs {
			if tr.OpByID(p.Orig) == nil || tr.OpByID(p.Dup) == nil {
				t.Fatalf("pair (%%%d, %%%d) references missing ops", p.Orig, p.Dup)
			}
		}
		if fs := verify.CheckTree(tr); len(fs) != 0 {
			t.Fatalf("forwarding=%v: structural findings: %v", fwd, fs)
		}
		if fs := verify.CheckSpecTree(tr); len(fs) != 0 {
			t.Fatalf("forwarding=%v: spec findings: %v", fwd, fs)
		}
		if fs := verify.CheckSpecPairs(tr, info.Pairs); len(fs) != 0 {
			t.Fatalf("forwarding=%v: pair findings: %v", fwd, fs)
		}
	}
}
