package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFake type-checks one synthetic single-file module and returns it.
func loadFake(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fake\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(dir, "fake").Load("fake")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// retargetOpSwitch points the opswitch analyzer at a synthetic enum for the
// duration of one test.
func retargetOpSwitch(t *testing.T, typeKey, sentinel string) {
	t.Helper()
	oldT, oldS := opSwitchTargets, opSwitchSentinels
	opSwitchTargets = map[string]bool{typeKey: true}
	opSwitchSentinels = map[string]bool{sentinel: true}
	t.Cleanup(func() { opSwitchTargets, opSwitchSentinels = oldT, oldS })
}

func TestOpSwitchFlagsMissingCase(t *testing.T) {
	retargetOpSwitch(t, "fake.Op", "nOps")
	pkg := loadFake(t, `package fake

type Op int

const (
	A Op = iota
	B
	C
	nOps
)

// incomplete is missing C and has no default: flagged.
func incomplete(o Op) int {
	switch o {
	case A:
		return 1
	case B:
		return 2
	}
	return 0
}

// defaulted is incomplete but says so: clean.
func defaulted(o Op) int {
	switch o {
	case A:
		return 1
	default:
		return 0
	}
}

// exhaustive covers everything but the sentinel: clean.
func exhaustive(o Op) int {
	switch o {
	case A, B:
		return 1
	case C:
		return 2
	}
	return 0
}
`)
	ds := Run(pkg, []*Analyzer{OpSwitch})
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(ds), ds)
	}
	if !strings.Contains(ds[0].Msg, "missing C") {
		t.Fatalf("diagnostic %q does not name the missing constant C", ds[0].Msg)
	}
	if strings.Contains(ds[0].Msg, "nOps") {
		t.Fatalf("diagnostic %q demands the sentinel nOps", ds[0].Msg)
	}
}

func TestAtomicFieldFlagsValueUse(t *testing.T) {
	pkg := loadFake(t, `package fake

import "sync/atomic"

type stats struct {
	n     atomic.Int64
	plain int64
}

// good uses the field through methods and by address: clean.
func good(s *stats) int64 {
	s.n.Add(1)
	p := &s.n
	p.Add(1)
	s.plain++
	return s.n.Load()
}

// bad copies the atomic by value: flagged.
func bad(s *stats) int64 {
	c := s.n
	return c.Load()
}
`)
	ds := Run(pkg, []*Analyzer{AtomicField})
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(ds), ds)
	}
	if !strings.Contains(ds[0].Msg, "s.n") || !strings.Contains(ds[0].Msg, "Int64") {
		t.Fatalf("diagnostic %q does not identify the field", ds[0].Msg)
	}
}

// TestSuiteCleanOnRepo runs the full suite over the packages the analyzers
// were written for: the opcode-dispatch packages and the concurrent-counter
// packages must be clean, so a regression in either invariant fails here as
// well as in CI's spdvet run.
func TestSuiteCleanOnRepo(t *testing.T) {
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, module)
	for _, path := range []string{
		"specdis/internal/bcode",
		"specdis/internal/ncode",
		"specdis/internal/verify",
		"specdis/internal/exper",
	} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}
