package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField reports uses of struct fields with sync/atomic types that are
// neither a method call on the field nor an explicit address-of. The exper
// runner's statistics counters are atomic.Int64 fields updated by worker
// goroutines while Stats() reads them from the caller; copying such a field
// by value (st := r.nPrepares) compiles cleanly, races silently, and also
// copies the noCopy guard. Legal uses go through the field's methods
// (r.nPrepares.Add(1), r.nPrepares.Load()) or take its address.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "sync/atomic struct fields must be used via their methods or by address",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkAtomicSel(pass, sel, parentOf(stack))
			}
			stack = append(stack, n)
			return true
		})
	}
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// checkAtomicSel flags sel when it selects a sync/atomic-typed field and the
// surrounding expression is neither a method selection on that field nor an
// address-of.
func checkAtomicSel(pass *Pass, sel *ast.SelectorExpr, parent ast.Node) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := namedOf(s.Type())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == sel {
			// x.field.Method — atomic types have no exported fields, so a
			// further selection is a method use.
			return
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == sel {
			return // &x.field: handing out the address is the atomic idiom
		}
	}
	pass.Report(sel.Pos(), "field %s.%s has atomic type %s and is used by value; call its methods or take its address",
		exprString(sel.X), sel.Sel.Name, named.Obj().Name())
}

// exprString renders simple receiver expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expr"
}
