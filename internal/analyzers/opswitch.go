package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// opSwitchTargets lists the enum types whose switches must be exhaustive,
// as "importpath.TypeName". The bytecode opcode enum is the one that
// matters here: the executor, the fusion planner and the translation
// validator all dispatch on it, and a freshly added opcode that falls
// through one of those switches miscompiles silently instead of failing the
// build. Sentinel constants (the enum's one-past-the-end count) are named in
// opSwitchSentinels and never required. Package variables, not constants,
// so the tests can retarget the analyzer at a synthetic enum.
var (
	opSwitchTargets   = map[string]bool{"specdis/internal/bcode.Op": true}
	opSwitchSentinels = map[string]bool{"numOps": true}
)

// OpSwitch reports switches over a target enum type that neither carry a
// default clause nor cover every constant of the enum.
var OpSwitch = &Analyzer{
	Name: "opswitch",
	Doc:  "switches over bcode.Op must be exhaustive or carry a default",
	Run:  runOpSwitch,
}

func runOpSwitch(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := namedOf(pass.Info.Types[sw.Tag].Type)
			if named == nil || !opSwitchTargets[typeKey(named)] {
				return true
			}
			covered := map[int64]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // a default clause: fallthrough is deliberate
				}
				for _, e := range cc.List {
					if v := pass.Info.Types[e].Value; v != nil && v.Kind() == constant.Int {
						if i, exact := constant.Int64Val(v); exact {
							covered[i] = true
						}
					}
				}
			}
			var missing []string
			for _, c := range enumConstants(named) {
				if !covered[c.val] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) > 0 {
				pass.Report(sw.Switch, "switch over %s is not exhaustive: missing %s (cover them or add a default)",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// namedOf unwraps t to its named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, _ := t.(*types.Named)
	return named
}

// typeKey renders a named type as "importpath.TypeName".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// enumConstant is one declared constant of an enum type.
type enumConstant struct {
	name string
	val  int64
}

// enumConstants lists every non-sentinel constant of the named type declared
// in its defining package (unexported ones included — the loader
// type-checks from source, so the full scope is visible), sorted by value.
func enumConstants(named *types.Named) []enumConstant {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []enumConstant
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) || opSwitchSentinels[name] {
			continue
		}
		if v, exact := constant.Int64Val(c.Val()); exact {
			out = append(out, enumConstant{name, v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val < out[j].val })
	return out
}
