// Package analyzers is a small, dependency-free static-analysis suite for
// this repository, in the style of go/analysis but built on the standard
// library alone (go/parser + go/types): each Analyzer inspects one
// type-checked package and reports diagnostics. cmd/spdvet drives the suite
// over the whole module; CI runs it next to go vet.
//
// The suite exists for invariants go vet cannot know about:
//
//   - opswitch: every switch over the bytecode opcode type (bcode.Op) must
//     either carry a default clause or cover every opcode. The bytecode
//     executor, the fusion planner, and the translation validator all
//     dispatch on opcodes; a new opcode that silently falls through one of
//     those switches is a miscompilation waiting for an input, not a build
//     error.
//   - atomicfield: a struct field of a sync/atomic type must only be used
//     through its methods or by address. The exper runner's statistics
//     counters are updated by worker goroutines; reading one by value is a
//     data race the type system happily permits.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ([name] msg).
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package in pass and reports through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Report records one diagnostic at pos.
	Report func(pos token.Pos, format string, args ...any)
}

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Msg)
}

// All is the full suite, in reporting order.
func All() []*Analyzer { return []*Analyzer{OpSwitch, AtomicField} }

// Run applies the analyzers to one loaded package and returns the
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		}
		name := a.Name
		pass.Report = func(pos token.Pos, format string, args ...any) {
			out = append(out, Diagnostic{
				Pos:      pkg.Fset.Position(pos),
				Analyzer: name,
				Msg:      fmt.Sprintf(format, args...),
			})
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
