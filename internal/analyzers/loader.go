package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("specdis/internal/bcode").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: imports inside the module resolve recursively from
// source, everything else goes to the compiler's default importer. This is
// what lets spdvet run with an empty module cache — the tool never shells
// out and never needs golang.org/x/tools.
type Loader struct {
	// Fset positions every package this loader touches.
	Fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool // import-cycle guard
}

// NewLoader returns a loader for the module rooted at root with the given
// module path.
func NewLoader(root, module string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		module:  module,
		std:     importer.Default(),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks the package with the given import path
// (which must be the module path or below it). Results are memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		rel, ok := strings.CutPrefix(path, l.module+"/")
		if !ok {
			return nil, fmt.Errorf("%s is outside module %s", path, l.module)
		}
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer over the loader: module-internal paths
// load from source, the rest from the toolchain's importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses every non-test Go file of one directory, in name order so
// type-checking (and therefore diagnostics) is deterministic.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
