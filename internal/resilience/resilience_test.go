package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"specdis/internal/trace"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassUnknown},
		{errors.New("boom"), ClassUnknown},
		{fmt.Errorf("sim: over budget: %w", ErrFuelExhausted), ClassFuel},
		{fmt.Errorf("sim: %w: %w", ErrDeadline, context.DeadlineExceeded), ClassDeadline},
		{context.Canceled, ClassDeadline},
		{fmt.Errorf("plan p: %w", ErrMissingSchedule), ClassMissingSchedule},
		{fmt.Errorf("replay: %w", trace.ErrCorrupt), ClassCorruptTrace},
		{&CellError{Class: ClassPanic, Err: errors.New("x")}, ClassPanic},
		{fmt.Errorf("outer: %w", &CellError{Class: ClassPanic, Err: errors.New("x")}), ClassPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryable(t *testing.T) {
	for class, want := range map[Class]bool{
		ClassPanic:           true,
		ClassUnknown:         true,
		ClassFuel:            false,
		ClassDeadline:        false,
		ClassCorruptTrace:    false,
		ClassMissingSchedule: false,
	} {
		if got := class.Retryable(); got != want {
			t.Errorf("%v.Retryable() = %v, want %v", class, got, want)
		}
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err, "fft", "SPEC", 2, "measure")
		panic(InjectedPanic(123))
	}
	err := run()
	if err == nil {
		t.Fatal("panic was not recovered into an error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("recovered error is %T, want *CellError", err)
	}
	if ce.Class != ClassPanic || ce.Benchmark != "fft" || ce.Pipeline != "SPEC" || ce.MemLat != 2 || ce.Stage != "measure" {
		t.Fatalf("cell error fields wrong: %+v", ce)
	}
	if len(ce.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected panic lost its marker: %v", err)
	}
	if want := "fft/SPEC/m2"; ce.Cell() != want {
		t.Fatalf("Cell() = %q, want %q", ce.Cell(), want)
	}
	if !strings.Contains(ce.Error(), "panic") {
		t.Fatalf("Error() does not mention the class: %q", ce.Error())
	}
}

func TestRecoverNoPanicKeepsError(t *testing.T) {
	sentinel := errors.New("original")
	run := func() (err error) {
		defer Recover(&err, "b", "NAIVE", 2, "prepare")
		return sentinel
	}
	if err := run(); err != sentinel {
		t.Fatalf("Recover clobbered a clean return: %v", err)
	}
}

func TestAsCellErrorIdempotent(t *testing.T) {
	inner := fmt.Errorf("run: %w", ErrFuelExhausted)
	ce := AsCellError(inner, "fft", "SPEC", 6, "measure")
	if ce.Class != ClassFuel {
		t.Fatalf("class = %v, want fuel", ce.Class)
	}
	// Wrapping again (even through another layer) returns the original.
	again := AsCellError(fmt.Errorf("outer: %w", ce), "other", "NAIVE", 2, "prepare")
	if again != ce {
		t.Fatalf("AsCellError re-wrapped an existing CellError")
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	p := &FaultPlan{Seed: 42, Rate: 0.5, Kinds: []FaultKind{FaultPanic, FaultFuel}}
	cells := []string{"a/NAIVE/m2", "a/SPEC/m2", "a/SPEC/m6", "b/PERFECT/m0"}
	first := make([]Fault, len(cells))
	hit := 0
	for i, c := range cells {
		first[i] = p.For(c)
		if first[i].Kind != FaultNone {
			hit++
		}
	}
	for i, c := range cells {
		if again := p.For(c); again != first[i] {
			t.Fatalf("plan not deterministic for %s: %+v vs %+v", c, again, first[i])
		}
	}
	// A different seed must (for this tiny grid) be allowed to differ; just
	// check it is also deterministic and in-range.
	p2 := &FaultPlan{Seed: 43, Rate: 1.0, Kinds: []FaultKind{FaultFlipTrace}, FlipTimes: 2}
	f := p2.For(cells[0])
	if f.Kind != FaultFlipTrace || f.Times != 2 {
		t.Fatalf("rate-1 plan skipped a cell or lost times: %+v", f)
	}
	_ = hit // selection rate over 4 cells is noise; determinism is the contract
}

func TestFaultPlanExplicitCells(t *testing.T) {
	p := &FaultPlan{
		Seed: 9, Rate: 1.0, Kinds: []FaultKind{FaultPanic},
		Cells: map[string]Fault{"fft/SPEC/m2": {Kind: FaultFuel, N: 77}},
	}
	if f := p.For("fft/SPEC/m2"); f.Kind != FaultFuel || f.N != 77 {
		t.Fatalf("explicit cell fault wrong: %+v", f)
	}
	if f := p.For("fft/SPEC/m6"); f.Kind != FaultNone {
		t.Fatalf("unlisted cell faulted under explicit plan: %+v", f)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,rate=0.25,kinds=panic+flip,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rate != 0.25 || p.FlipTimes != 2 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if len(p.Kinds) != 2 || p.Kinds[0] != FaultPanic || p.Kinds[1] != FaultFlipTrace {
		t.Fatalf("parsed kinds wrong: %v", p.Kinds)
	}
	if s := p.String(); !strings.Contains(s, "seed=7") || !strings.Contains(s, "panic+flip") {
		t.Fatalf("String() lost fields: %q", s)
	}

	// Defaults: every kind, rate 1.
	p, err = ParsePlan("seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate != 1.0 || len(p.Kinds) != 5 {
		t.Fatalf("defaults wrong: %+v", p)
	}

	for _, bad := range []string{"seed", "seed=x", "rate=2", "rate=0", "times=0", "kinds=wat", "nope=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestStoreIOKind(t *testing.T) {
	// sio parses, but is store-level: it never enters the per-cell deal.
	p, err := ParsePlan("seed=5,kinds=bpanic+sio")
	if err != nil {
		t.Fatal(err)
	}
	if !p.StoreIO() {
		t.Fatal("plan naming sio did not report StoreIO")
	}
	if ck := p.CellKinds(); len(ck) != 1 || ck[0] != FaultBCodePanic {
		t.Fatalf("CellKinds = %v, want [bpanic]", ck)
	}
	// An sio-only plan deals nothing per cell.
	p, err = ParsePlan("seed=5,rate=1,kinds=sio")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.For("fft/SPEC/m2"); f.Kind != FaultNone {
		t.Fatalf("sio-only plan dealt a cell fault: %+v", f)
	}
	// The default deal must stay exactly the historical five kinds — adding
	// sio there would shift the round-robin and break pinned chaos counts.
	p, err = ParsePlan("seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.StoreIO() {
		t.Fatal("sio leaked into the default kinds")
	}
	// A mixed plan's per-cell deal is identical to the same plan without sio:
	// naming the store kind never re-deals existing cell faults.
	with, _ := ParsePlan("seed=11,rate=0.5,kinds=panic+fuel+sio")
	without, _ := ParsePlan("seed=11,rate=0.5,kinds=panic+fuel")
	for _, cell := range []string{"a/NAIVE/m2", "a/SPEC/m2", "b/SPEC/m6", "c/PERFECT/m0"} {
		if fw, fo := with.For(cell), without.For(cell); fw != fo {
			t.Fatalf("sio shifted the deal for %s: %+v vs %+v", cell, fw, fo)
		}
	}
}
