package resilience

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// FaultKind names one fault the injection harness can manufacture in an
// evaluation cell. Each kind exists to prove one recovery rung end to end.
type FaultKind uint8

const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultPanic panics once the cell's interpretation crosses N dynamic
	// ops, on every backend — proves panic isolation and that the bounded
	// bcode→tree retry gives up instead of looping.
	FaultPanic
	// FaultBCodePanic panics like FaultPanic but only on the bytecode
	// engine — proves the bcode→tree degradation rung recovers the cell.
	FaultBCodePanic
	// FaultFuel shrinks the cell's fuel budget to N dynamic ops — proves
	// the typed fuel abort.
	FaultFuel
	// FaultFlipTrace XORs a byte of the cell's captured trace before
	// replay, for Times consecutive captures — Times=1 proves the
	// replay→recapture rung, Times>=2 pushes through to the interp rung.
	FaultFlipTrace
	// FaultDropSchedule deletes one tree's schedule from every pricing plan
	// of the cell — proves the typed missing-schedule error path.
	FaultDropSchedule
	// FaultStoreIO injects I/O faults into the persistent artifact store's
	// disk reads (short reads and transient open errors, as opposed to
	// FaultFlipTrace's in-memory bit-flips) — proves the store's
	// drop→recompute→repair rung. It is armed at the store layer
	// (store.Store.ArmIOFaults), not dealt per evaluation cell, so it is
	// never in ParsePlan's default kinds: naming it is an explicit opt-in.
	FaultStoreIO
)

var faultNames = map[FaultKind]string{
	FaultNone:         "none",
	FaultPanic:        "panic",
	FaultBCodePanic:   "bpanic",
	FaultFuel:         "fuel",
	FaultFlipTrace:    "flip",
	FaultDropSchedule: "drop",
	FaultStoreIO:      "sio",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one cell's injected fault: the kind plus its parameter — the
// triggering op count (FaultPanic, FaultBCodePanic), the budget (FaultFuel),
// or the byte-offset seed (FaultFlipTrace, applied modulo the trace size).
type Fault struct {
	Kind FaultKind
	N    int64
	// Times is how many consecutive attempts the fault corrupts
	// (FaultFlipTrace only; minimum 1).
	Times int
}

// FaultPlan deterministically assigns faults to evaluation cells. The same
// (Seed, Rate, Kinds) triple over the same grid always selects the same
// cells with the same faults, so chaos runs are reproducible and CI can pin
// their exact degradation counts.
type FaultPlan struct {
	// Seed drives cell selection and parameter derivation.
	Seed uint64
	// Rate is the fraction of cells faulted, in (0, 1]. Zero disables
	// seeded selection (only Cells entries fire).
	Rate float64
	// Kinds are the fault kinds dealt, round-robin by cell hash.
	Kinds []FaultKind
	// FlipTimes is the Times parameter of dealt FaultFlipTrace faults
	// (default 1: the recapture rung recovers the cell).
	FlipTimes int
	// Cells, when non-nil, bypasses seeded selection entirely: only the
	// listed cells (keyed by CellName) are faulted, exactly as specified.
	// Used by tests to target one rung precisely.
	Cells map[string]Fault
}

// CellKinds returns the plan's kinds minus store-level ones (FaultStoreIO):
// the kinds dealt per evaluation cell. Store-level kinds are armed once on
// the artifact store instead (store.Store.ArmIOFaults), so they never shift
// the per-cell round-robin deal of an existing plan.
func (p *FaultPlan) CellKinds() []FaultKind {
	if p == nil {
		return nil
	}
	kinds := make([]FaultKind, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		if k != FaultStoreIO {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// StoreIO reports whether the plan names the store I/O fault kind.
func (p *FaultPlan) StoreIO() bool {
	if p == nil {
		return false
	}
	for _, k := range p.Kinds {
		if k == FaultStoreIO {
			return true
		}
	}
	return false
}

// For returns the fault to inject in the named cell (FaultNone for most).
func (p *FaultPlan) For(cell string) Fault {
	if p == nil {
		return Fault{}
	}
	if p.Cells != nil {
		f := p.Cells[cell]
		if f.Kind == FaultFlipTrace && f.Times < 1 {
			f.Times = 1
		}
		return f
	}
	kinds := p.CellKinds()
	if p.Rate <= 0 || len(kinds) == 0 {
		return Fault{}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", p.Seed, cell)
	sum := h.Sum64()
	// Three independent-enough fields carved out of one 64-bit hash: the
	// selection draw, the kind index, and the parameter.
	if float64(sum%1_000_000)/1_000_000 >= p.Rate {
		return Fault{}
	}
	f := Fault{Kind: kinds[(sum>>20)%uint64(len(kinds))]}
	param := int64((sum >> 32) % 4096)
	switch f.Kind {
	case FaultPanic, FaultBCodePanic:
		f.N = 1 + param // trigger op: early enough to fire in any real cell
	case FaultFuel:
		f.N = 1 + param // budget: tiny, exhausted by any real cell
	case FaultFlipTrace:
		f.N = param // byte-offset seed, applied mod trace size
		f.Times = p.FlipTimes
		if f.Times < 1 {
			f.Times = 1
		}
	case FaultDropSchedule:
		f.N = param // dropped entry index, applied mod entry count
	}
	return f
}

// ParsePlan parses the CLI fault-plan syntax:
//
//	seed=42,rate=0.3,kinds=panic+fuel+flip+drop,times=2
//
// Fields may appear in any order; kinds are '+'-separated FaultKind names
// (panic, bpanic, fuel, flip, drop, sio). Defaults: seed 1, rate 1.0,
// times 1, and all per-cell kinds when none are given — the store-level sio
// kind is never in the default deal (it would not change any cell anyway,
// and keeping the default list fixed keeps historical chaos pins stable);
// it must be named explicitly.
func ParsePlan(s string) (*FaultPlan, error) {
	p := &FaultPlan{Seed: 1, Rate: 1.0, FlipTimes: 1}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("resilience: bad fault-plan field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resilience: bad seed %q: %v", v, err)
			}
			p.Seed = n
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r <= 0 || r > 1 {
				return nil, fmt.Errorf("resilience: bad rate %q (want a fraction in (0, 1])", v)
			}
			p.Rate = r
		case "times":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("resilience: bad times %q (want an integer >= 1)", v)
			}
			p.FlipTimes = n
		case "kinds":
			for _, name := range strings.Split(v, "+") {
				kind, err := parseKind(name)
				if err != nil {
					return nil, err
				}
				p.Kinds = append(p.Kinds, kind)
			}
		default:
			return nil, fmt.Errorf("resilience: unknown fault-plan field %q", k)
		}
	}
	if len(p.Kinds) == 0 {
		p.Kinds = []FaultKind{FaultPanic, FaultBCodePanic, FaultFuel, FaultFlipTrace, FaultDropSchedule}
	}
	return p, nil
}

func parseKind(name string) (FaultKind, error) {
	for k, s := range faultNames {
		if s == name && k != FaultNone {
			return k, nil
		}
	}
	var known []string
	for k, s := range faultNames {
		if k != FaultNone {
			known = append(known, s)
		}
	}
	sort.Strings(known)
	return FaultNone, fmt.Errorf("resilience: unknown fault kind %q (want one of %s)", name, strings.Join(known, ", "))
}

// String renders the plan back in ParsePlan syntax.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	kinds := make([]string, len(p.Kinds))
	for i, k := range p.Kinds {
		kinds[i] = k.String()
	}
	return fmt.Sprintf("seed=%d,rate=%g,kinds=%s,times=%d", p.Seed, p.Rate, strings.Join(kinds, "+"), p.FlipTimes)
}
