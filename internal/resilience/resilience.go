// Package resilience is the fault-tolerance layer of the evaluation stack:
// a typed error taxonomy for everything that can go wrong inside one
// evaluation cell, panic containment that converts a crash into a structured
// error, and a deterministic fault-injection harness that proves the
// degradation paths actually fire.
//
// The design mirrors the discipline of the speculative systems this
// repository models: wrong-path work must be containable and squashable. A
// runaway interpretation is bounded by a fuel budget (ErrFuelExhausted), a
// wall-clock deadline cancels whole runs (ErrDeadline), a panic in one cell
// of the experiment grid is recovered into a CellError instead of killing
// the process, and every recovery path is exercised on demand by a seeded
// FaultPlan (see fault.go).
//
// The package is a leaf: the simulators (internal/sim), the pipelines
// (internal/disamb) and the experiment engine (internal/exper) all import it
// for the shared error vocabulary; it imports only internal/trace (to
// classify corrupt-trace errors) and the standard library.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"specdis/internal/trace"
)

// Sentinel errors of the taxonomy. Producers wrap them with %w and context;
// consumers match with errors.Is or classify whole chains with Classify.
var (
	// ErrFuelExhausted marks an interpretation that ran out of its dynamic
	// operation budget — the bound that turns a nonterminating program into
	// a visible, typed failure instead of a hang.
	ErrFuelExhausted = errors.New("fuel exhausted")

	// ErrDeadline marks a run canceled by its context — deadline expiry or
	// explicit cancellation.
	ErrDeadline = errors.New("deadline exceeded")

	// ErrMissingSchedule marks a pricing attempt against a plan that has no
	// schedule for a tree the program executed (formerly a process-killing
	// panic in the simulator and the replayer).
	ErrMissingSchedule = errors.New("missing schedule")

	// ErrInjected marks a failure manufactured by the fault-injection
	// harness; injected panics carry it in their message so a recovered
	// CellError is recognizably synthetic.
	ErrInjected = errors.New("injected fault")
)

// Class is the coarse failure classification degradation policy keys on.
type Class uint8

// Failure classes, from most to least structured.
const (
	// ClassUnknown is any failure the taxonomy does not recognize
	// (divergence checks, compile errors, genuine bugs).
	ClassUnknown Class = iota
	// ClassPanic is a recovered runtime panic.
	ClassPanic
	// ClassFuel is an exhausted dynamic-operation budget.
	ClassFuel
	// ClassDeadline is a context deadline or cancellation.
	ClassDeadline
	// ClassCorruptTrace is a truncated or bit-flipped execution trace.
	ClassCorruptTrace
	// ClassMissingSchedule is a pricing plan lacking a tree's schedule.
	ClassMissingSchedule
)

func (c Class) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassPanic:
		return "panic"
	case ClassFuel:
		return "fuel"
	case ClassDeadline:
		return "deadline"
	case ClassCorruptTrace:
		return "corrupt-trace"
	case ClassMissingSchedule:
		return "missing-schedule"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classify maps an error chain onto its failure class. A nil error is
// ClassUnknown; callers should only classify actual failures.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassUnknown
	case errors.Is(err, ErrFuelExhausted):
		return ClassFuel
	case errors.Is(err, ErrDeadline),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return ClassDeadline
	case errors.Is(err, ErrMissingSchedule):
		return ClassMissingSchedule
	case errors.Is(err, trace.ErrCorrupt):
		return ClassCorruptTrace
	}
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Class
	}
	return ClassUnknown
}

// Retryable reports whether a failure of this class is worth retrying on a
// different execution backend. Fuel and deadline failures are determined by
// the program and the budget, not the engine; missing schedules and corrupt
// traces have their own dedicated recovery rungs.
func (c Class) Retryable() bool {
	return c == ClassPanic || c == ClassUnknown
}

// CellError is one evaluation cell's structured failure: which cell, which
// pipeline stage, what class of fault, the underlying error, and — for
// recovered panics — the goroutine stack at the point of the crash.
type CellError struct {
	// Benchmark, Pipeline and MemLat identify the cell in the experiment
	// grid. MemLat 0 marks a canonical cell shared across memory latencies.
	Benchmark string
	Pipeline  string
	MemLat    int
	// Stage is the pipeline stage that failed: "prepare", "measure",
	// "capture", "replay" or "lint".
	Stage string
	Class Class
	Err   error
	// Stack is the recovered goroutine stack (panics only).
	Stack []byte
}

// Cell returns the cell's canonical "benchmark/pipeline/mN" name — the same
// string a FaultPlan selects on.
func (e *CellError) Cell() string {
	return CellName(e.Benchmark, e.Pipeline, e.MemLat)
}

// CellName builds the canonical cell name used by CellError and FaultPlan.
func CellName(benchmark, pipeline string, memLat int) string {
	return fmt.Sprintf("%s/%s/m%d", benchmark, pipeline, memLat)
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s %s [%s]: %v", e.Cell(), e.Stage, e.Class, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// AsCellError wraps err into a CellError for the given cell and stage,
// classifying it; an error that already is a CellError (however deep in the
// chain) is returned unchanged so cells fail with their original identity.
func AsCellError(err error, benchmark, pipeline string, memLat int, stage string) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &CellError{
		Benchmark: benchmark,
		Pipeline:  pipeline,
		MemLat:    memLat,
		Stage:     stage,
		Class:     Classify(err),
		Err:       err,
	}
}

// Recover converts an in-flight panic into a *CellError stored in *errp,
// capturing the stack. Use it as a deferred call at every cell boundary:
//
//	func (r *Runner) cell(...) (res T, err error) {
//		defer resilience.Recover(&err, bench, pipe, memLat, "measure")
//		...
//	}
//
// A panic that is itself an error (or carries one) stays matchable through
// Unwrap; everything else is formatted.
func Recover(errp *error, benchmark, pipeline string, memLat int, stage string) {
	v := recover()
	if v == nil {
		return
	}
	inner, ok := v.(error)
	if !ok {
		inner = fmt.Errorf("panic: %v", v)
	} else {
		inner = fmt.Errorf("panic: %w", inner)
	}
	*errp = &CellError{
		Benchmark: benchmark,
		Pipeline:  pipeline,
		MemLat:    memLat,
		Stage:     stage,
		Class:     ClassPanic,
		Err:       inner,
		Stack:     debug.Stack(),
	}
}

// injectedPanic is the error value chaos panics throw: it unwraps to
// ErrInjected so recovered CellErrors from the harness are recognizable.
type injectedPanic struct{ at int64 }

func (p injectedPanic) Error() string {
	return fmt.Sprintf("injected panic at dynamic op %d", p.at)
}

func (p injectedPanic) Unwrap() error { return ErrInjected }

// InjectedPanic returns the value a chaos hook should panic with when the
// dynamic op count crosses its trigger: an error unwrapping to ErrInjected.
func InjectedPanic(at int64) error { return injectedPanic{at: at} }
