// Package ir defines the decision-tree intermediate representation used by
// the speculative-disambiguation compiler: guarded operations over virtual
// registers, decision trees with guarded exits, and memory-dependence arcs.
//
// The representation follows the LIFE model described in the paper: the basic
// schedulable unit is the decision tree (single entry, multiple guarded
// exits, no back edges). Control dependence inside a tree has already been
// converted to data dependence: every operation carries an optional guard
// register, and an operation's result is written back (to a register, or to
// memory for stores) only if its guard evaluates true.
package ir

import "fmt"

// Reg names a virtual register. Registers are function-scoped; each function
// invocation gets a fresh register file.
type Reg int32

// NoReg marks an absent register operand (no destination, no guard).
const NoReg Reg = -1

// OpKind enumerates the operation repertoire of the target machine.
type OpKind uint8

// Operation kinds. Integer compares produce 0 or 1 in an integer register;
// guard operands read such boolean values.
const (
	OpNop OpKind = iota

	OpConst // dest = Imm
	OpMove  // dest = arg0

	// Integer ALU.
	OpAdd // dest = arg0 + arg1
	OpSub
	OpMul
	OpDiv // speculative division by zero yields 0 (non-trapping machine)
	OpRem
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot // bitwise complement
	OpShl
	OpShr

	// Boolean/guard logic (operands are 0/1 values).
	OpBNot    // dest = 1 - arg0
	OpBAnd    // dest = arg0 & arg1
	OpBAndNot // dest = arg0 & (1 - arg1)

	// Integer compares.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Floating point.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv // speculative division by zero follows IEEE (±Inf/NaN)
	OpFNeg
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE

	// Conversions.
	OpCvtIF // int -> float
	OpCvtFI // float -> int (truncating)

	// FPU intrinsics (treated as single FPU ops, per the machine model's
	// "other FPU operations" class).
	OpSqrt
	OpFAbs
	OpSin
	OpCos
	OpExp
	OpLog

	// Memory.
	OpLoad  // dest = mem[arg0]
	OpStore // mem[arg0] = arg1

	// Output side effect: append the value in arg0 to the program's output
	// stream (integer or float per PrintFloat). Used for validation.
	OpPrint

	// Exits. Exactly one exit's guard evaluates true on every execution of a
	// tree; the exit determines the successor tree (or call/return).
	OpExit

	numOpKinds
)

var opNames = [numOpKinds]string{
	OpNop: "nop", OpConst: "const", OpMove: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr",
	OpBNot: "bnot", OpBAnd: "band", OpBAndNot: "bandnot",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg:   "fneg",
	OpFCmpEQ: "fcmpeq", OpFCmpNE: "fcmpne", OpFCmpLT: "fcmplt",
	OpFCmpLE: "fcmple", OpFCmpGT: "fcmpgt", OpFCmpGE: "fcmpge",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpSqrt: "sqrt", OpFAbs: "fabs", OpSin: "sin", OpCos: "cos",
	OpExp: "exp", OpLog: "log",
	OpLoad: "load", OpStore: "store", OpPrint: "print", OpExit: "exit",
}

// String returns the mnemonic for the kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) && opNames[k] != "" {
		return opNames[k]
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// IsMem reports whether the kind accesses memory.
func (k OpKind) IsMem() bool { return k == OpLoad || k == OpStore }

// IsExit reports whether the kind terminates a tree path.
func (k OpKind) IsExit() bool { return k == OpExit }

// HasSideEffect reports whether an operation of this kind may not be executed
// speculatively under the paper's program model (§4.1): stores modify memory,
// prints modify the output stream, and exits transfer control. All other
// operations (including loads, which are assumed non-faulting) are free of
// side effects and may execute speculatively; their write-back is still
// suppressed when the guard is false.
func (k OpKind) HasSideEffect() bool {
	return k == OpStore || k == OpPrint || k == OpExit
}

// IsFloat reports whether the operation produces (or compares) floating-point
// operands on the FPU.
func (k OpKind) IsFloat() bool {
	switch k {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE,
		OpCvtIF, OpCvtFI, OpSqrt, OpFAbs, OpSin, OpCos, OpExp, OpLog:
		return true
	}
	return false
}

// Value is a machine word: the interpreter carries both an integer and a
// floating-point view so that loads and stores move whole words without
// caring about type (exactly as untyped memory behaves).
type Value struct {
	I int64
	F float64
}

// IntV returns a Value holding integer i.
func IntV(i int64) Value { return Value{I: i} }

// FloatV returns a Value holding float f.
func FloatV(f float64) Value { return Value{F: f} }

// ExitKind distinguishes what an OpExit does when taken.
type ExitKind uint8

// Exit kinds.
const (
	ExitGoto ExitKind = iota // transfer to tree Target in the same function
	ExitCall                 // call Callee, then continue at tree Target
	ExitRet                  // return from the function (arg0 = value if any)
)

func (k ExitKind) String() string {
	switch k {
	case ExitGoto:
		return "goto"
	case ExitCall:
		return "call"
	case ExitRet:
		return "ret"
	}
	return fmt.Sprintf("exitkind(%d)", int(k))
}

// Op is one guarded operation inside a decision tree.
//
// Seq gives the original sequential program order; memory-dependence
// construction and interpreter tie-breaking use it. IDs are unique within a
// tree and survive transformation (new ops get fresh IDs).
type Op struct {
	ID   int
	Kind OpKind
	Args []Reg
	Dest Reg   // NoReg if none
	Imm  Value // OpConst payload

	// Guard: the op's write-back (and side effect) occurs only when the
	// guard register holds 1 (or 0 if GuardNeg). NoReg = always commits.
	Guard    Reg
	GuardNeg bool

	Seq int

	// Block places the op in the tree's control shape (see Block); ops in a
	// block and its ancestors commit together on a path.
	Block int

	// Exit payload (Kind == OpExit).
	Exit    ExitKind
	Target  int    // successor tree ID (ExitGoto, ExitCall continuation)
	Callee  string // ExitCall
	CallArg []Reg  // ExitCall actual arguments
	// For ExitCall the return value lands in Dest; for ExitRet the returned
	// value is Args[0] (or absent for void).

	// Ref carries the symbolic address description for loads and stores,
	// used by static disambiguation. Nil when the address is opaque.
	Ref *MemRef

	// PrintFloat selects float formatting for OpPrint.
	PrintFloat bool

	// VarWrite marks a register write that implements a named-variable
	// assignment. Such writes act as merge points between control paths, so
	// if-conversion must guard them; all other pure ops write fresh
	// temporaries and execute speculatively (unguarded), per the paper's
	// §4.1 program model.
	VarWrite bool

	// SpecSide classifies the op's role after speculative disambiguation:
	// +1 — commits only when some transformed pair actually aliases (the
	// conservative copy); −1 — commits only on the speculative, no-alias
	// outcome; 0 — commits regardless of alias outcomes. The guidance
	// heuristic's "likely outcome" time estimate excludes +1 ops (aliases
	// are assumed rare).
	SpecSide int8
}

// MarkAliasSide updates SpecSide for an op that just received an alias-side
// (aliasOutcome true) or no-alias-side guard. Once an op requires any alias
// outcome it can never commit in the all-no-alias scenario, so +1 is sticky.
func (o *Op) MarkAliasSide(aliasOutcome bool) {
	if aliasOutcome {
		o.SpecSide = 1
		return
	}
	if o.SpecSide == 0 {
		o.SpecSide = -1
	}
}

// IsGuarded reports whether the op commits conditionally.
func (o *Op) IsGuarded() bool { return o.Guard != NoReg }

// AddrReg returns the address operand of a load or store.
func (o *Op) AddrReg() Reg { return o.Args[0] }

// DataReg returns the stored-value operand of a store.
func (o *Op) DataReg() Reg { return o.Args[1] }

// String renders the op in a compact assembly-like form.
func (o *Op) String() string {
	s := fmt.Sprintf("%%%d:%s", o.ID, o.Kind)
	if o.Kind == OpConst {
		s += fmt.Sprintf(" #%d/%g", o.Imm.I, o.Imm.F)
	}
	for _, a := range o.Args {
		s += fmt.Sprintf(" r%d", a)
	}
	if o.Kind == OpExit {
		s += " " + o.Exit.String()
		switch o.Exit {
		case ExitGoto:
			s += fmt.Sprintf(" T%d", o.Target)
		case ExitCall:
			s += fmt.Sprintf(" %s -> T%d", o.Callee, o.Target)
		}
	}
	if o.Dest != NoReg {
		s += fmt.Sprintf(" -> r%d", o.Dest)
	}
	if o.Guard != NoReg {
		neg := ""
		if o.GuardNeg {
			neg = "!"
		}
		s += fmt.Sprintf(" ?%sr%d", neg, o.Guard)
	}
	return s
}
