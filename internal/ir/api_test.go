package ir

import (
	"strings"
	"testing"
)

func TestSmallHelpers(t *testing.T) {
	if IntV(3).I != 3 || FloatV(2.5).F != 2.5 {
		t.Error("value constructors broken")
	}
	if !OpExit.IsExit() || OpAdd.IsExit() {
		t.Error("IsExit wrong")
	}
	st := &Op{Kind: OpStore, Args: []Reg{4, 9}}
	if st.AddrReg() != 4 || st.DataReg() != 9 {
		t.Error("store operand accessors wrong")
	}
	for _, k := range []OpKind{OpNop, OpExit, OpKind(200)} {
		if k.String() == "" {
			t.Errorf("empty name for %d", int(k))
		}
	}
	for _, k := range []DepKind{DepRAW, DepWAR, DepWAW, DepKind(9)} {
		if k.String() == "" {
			t.Error("empty dep kind name")
		}
	}
	for _, k := range []ExitKind{ExitGoto, ExitCall, ExitRet, ExitKind(9)} {
		if k.String() == "" {
			t.Error("empty exit kind name")
		}
	}
	for _, k := range []BaseKind{BaseGlobal, BaseParam, BaseUnknown, BaseKind(9)} {
		if k.String() == "" {
			t.Error("empty base kind name")
		}
	}
	if (&MemRef{BaseKind: BaseGlobal, BaseSym: "a", Sub: ConstAffine(2)}).String() == "" {
		t.Error("memref string empty")
	}
	if (*MemRef)(nil).String() != "<opaque>" {
		t.Error("nil memref string")
	}
}

func TestTreeOpAccessors(t *testing.T) {
	fn := &Function{Name: "acc"}
	tr := &Tree{Fn: fn, Name: "acc.t0"}
	tr.NewBlock(-1, NoReg, false)
	fn.Trees = []*Tree{tr}
	a := tr.NewOp(OpConst, nil, fn.NewReg())
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet

	if tr.OpByID(a.ID) != a || tr.OpByID(999) != nil {
		t.Error("OpByID wrong")
	}
	if fn.Tree(0) != tr {
		t.Error("Function.Tree wrong")
	}
	mid := tr.InsertOp(OpNop, nil, NoReg, 1)
	if tr.Ops[1] != mid || tr.Ops[1].Seq != 1 || tr.Ops[2] != ex || ex.Seq != 2 {
		t.Error("InsertOp splice wrong")
	}
	id1 := tr.AllocID()
	id2 := tr.AllocID()
	if id2 != id1+1 {
		t.Error("AllocID not monotonic")
	}
}

func TestStableRegs(t *testing.T) {
	fn := &Function{Name: "st"}
	if fn.Stable(3) {
		t.Error("unmarked reg stable")
	}
	fn.MarkStable(3)
	if !fn.Stable(3) || fn.Stable(4) {
		t.Error("stable marking wrong")
	}
	// Clones see the marks but do not leak new ones back.
	tr := &Tree{ID: 0, Fn: fn, Name: "st.t0"}
	tr.NewBlock(-1, NoReg, false)
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	fn.Trees = []*Tree{tr}
	c := tr.Clone()
	if !c.Fn.Stable(3) {
		t.Error("clone lost stable marks")
	}
	c.Fn.MarkStable(7)
	if fn.Stable(7) {
		t.Error("clone stable mark leaked into original")
	}
	if c.Fn.Trees[0] != c {
		t.Error("clone function does not reference the clone")
	}
}

func TestProgramLookups(t *testing.T) {
	fn := &Function{Name: "main"}
	tr := &Tree{Fn: fn, Name: "main.t0"}
	tr.NewBlock(-1, NoReg, false)
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	fn.Trees = []*Tree{tr}
	p := &Program{
		Funcs:   map[string]*Function{"main": fn, "aux": fn},
		Order:   []string{"main", "aux"},
		Main:    "main",
		Globals: []*GlobalArray{{Name: "g", Base: 16, Size: 4}},
		MemSize: 64,
	}
	if p.Global("g") == nil || p.Global("nope") != nil {
		t.Error("Global lookup wrong")
	}
	names := p.SortedFuncNames()
	if len(names) != 2 || names[0] != "aux" || names[1] != "main" {
		t.Errorf("SortedFuncNames %v", names)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBlocksCatchesCorruption(t *testing.T) {
	fn := &Function{Name: "vb"}
	tr := &Tree{Fn: fn, Name: "vb.t0"}
	tr.NewBlock(-1, NoReg, false)
	op := tr.NewOp(OpNop, nil, NoReg)
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	if err := tr.ValidateBlocks(); err != nil {
		t.Fatalf("valid blocks rejected: %v", err)
	}
	op.Block = 42
	if err := tr.ValidateBlocks(); err == nil {
		t.Error("op in missing block accepted")
	}
	op.Block = 0
	tr.Blocks[0].Parent = 5
	if err := tr.ValidateBlocks(); err == nil {
		t.Error("non-root first block accepted")
	}
	tr.Blocks[0].Parent = -1
	tr.Blocks = nil
	if err := tr.ValidateBlocks(); err == nil {
		t.Error("empty block list accepted")
	}
}

func TestOpStringForms(t *testing.T) {
	op := &Op{ID: 1, Kind: OpConst, Imm: Value{I: 7, F: 7}, Dest: 3, Guard: NoReg}
	if !strings.Contains(op.String(), "#7") {
		t.Errorf("const rendering: %s", op)
	}
	call := &Op{ID: 2, Kind: OpExit, Exit: ExitCall, Callee: "f", Target: 4, Dest: 5, Guard: NoReg}
	s := call.String()
	if !strings.Contains(s, "call f") || !strings.Contains(s, "T4") {
		t.Errorf("call rendering: %s", s)
	}
	go2 := &Op{ID: 3, Kind: OpExit, Exit: ExitGoto, Target: 2, Guard: 9, Dest: NoReg}
	if !strings.Contains(go2.String(), "goto T2") || !strings.Contains(go2.String(), "?r9") {
		t.Errorf("goto rendering: %s", go2)
	}
}
