package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genAffine builds a small random affine expression over variables 0..4.
func genAffine(r *rand.Rand) *Affine {
	a := &Affine{Const: r.Int63n(21) - 10}
	for v := LoopVar(0); v < 5; v++ {
		if r.Intn(2) == 0 {
			a.Terms = append(a.Terms, AffineTerm{Var: v, Coef: r.Int63n(11) - 5})
		}
	}
	return a.normalize()
}

func genEnv(r *rand.Rand) map[LoopVar]int64 {
	env := map[LoopVar]int64{}
	for v := LoopVar(0); v < 5; v++ {
		env[v] = r.Int63n(41) - 20
	}
	return env
}

func TestAffineAddSubEvalProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAffine(r), genAffine(r)
		env := genEnv(r)
		if a.Add(b).Eval(env) != a.Eval(env)+b.Eval(env) {
			return false
		}
		if a.Sub(b).Eval(env) != a.Eval(env)-b.Eval(env) {
			return false
		}
		k := r.Int63n(9) - 4
		return a.Scale(k).Eval(env) == k*a.Eval(env)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAffineSubSelfIsZero(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genAffine(r)
		d := a.Sub(a)
		return d.IsConst() && d.Const == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAffineEqualIsStructural(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genAffine(r)
		b := genAffine(r)
		// a+b-b == a in canonical form.
		if !a.Add(b).Sub(b).Equal(a) {
			return false
		}
		// Equality implies agreement under every environment we try.
		if a.Equal(b) {
			env := genEnv(r)
			return a.Eval(env) == b.Eval(env)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAffineNormalization(t *testing.T) {
	a := &Affine{Const: 1, Terms: []AffineTerm{
		{Var: 3, Coef: 2}, {Var: 1, Coef: 5}, {Var: 3, Coef: -2}, {Var: 2, Coef: 0},
	}}
	a.normalize()
	if len(a.Terms) != 1 || a.Terms[0].Var != 1 || a.Terms[0].Coef != 5 {
		t.Fatalf("normalize gave %v", a)
	}
}

func TestAffineCoefAndString(t *testing.T) {
	a := VarAffine(2).Scale(3).Add(ConstAffine(4)).Sub(VarAffine(1))
	if a.Coef(2) != 3 || a.Coef(1) != -1 || a.Coef(9) != 0 {
		t.Fatalf("coefs wrong: %v", a)
	}
	if got := a.String(); got != "4 - 1*i1 + 3*i2" {
		t.Errorf("String() = %q", got)
	}
}

func TestMemRefBases(t *testing.T) {
	g1 := &MemRef{BaseKind: BaseGlobal, BaseSym: "a", Sub: ConstAffine(0)}
	g2 := &MemRef{BaseKind: BaseGlobal, BaseSym: "b", Sub: ConstAffine(0)}
	p1 := &MemRef{BaseKind: BaseParam, BaseSym: "x", Sub: ConstAffine(0)}
	p2 := &MemRef{BaseKind: BaseParam, BaseSym: "x", Sub: ConstAffine(1)}
	u := &MemRef{BaseKind: BaseUnknown}

	if !g1.DistinctBase(g2) || g1.DistinctBase(g1) {
		t.Error("global distinctness wrong")
	}
	if !g1.SameBase(g1) || g1.SameBase(g2) {
		t.Error("global sameness wrong")
	}
	if !p1.SameBase(p2) {
		t.Error("same param not same base")
	}
	if p1.DistinctBase(g1) || g1.DistinctBase(p1) {
		t.Error("param vs global must not be distinct")
	}
	if u.SameBase(u) {
		t.Error("unknown base can never be provably same")
	}
	if (*MemRef)(nil).SameBase(g1) || g1.DistinctBase(nil) {
		t.Error("nil handling wrong")
	}
}
