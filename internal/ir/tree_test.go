package ir

import (
	"strings"
	"testing"
)

// buildStraightTree makes: load a; load b; store c; store d; exit — with the
// given kinds, as a fixture for arc construction tests.
func buildStraightTree(kinds []OpKind) (*Function, *Tree) {
	fn := &Function{Name: "fix"}
	t := &Tree{ID: 0, Fn: fn, Name: "fix.t0"}
	t.NewBlock(-1, NoReg, false)
	fn.Trees = []*Tree{t}
	addr := fn.NewReg()
	val := fn.NewReg()
	for _, k := range kinds {
		switch k {
		case OpLoad:
			t.NewOp(OpLoad, []Reg{addr}, fn.NewReg())
		case OpStore:
			t.NewOp(OpStore, []Reg{addr, val}, NoReg)
		default:
			t.NewOp(k, []Reg{val, val}, fn.NewReg())
		}
	}
	ex := t.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	return fn, t
}

func TestBuildMemArcsKindsAndCounts(t *testing.T) {
	_, tr := buildStraightTree([]OpKind{OpLoad, OpStore, OpLoad, OpStore})
	tr.BuildMemArcs()
	// Pairs: (L0,S1)=WAR (L0,S3)=WAR (S1,L2)=RAW (S1,S3)=WAW (L2,S3)=WAR.
	// L0/L2 load-load pair is skipped.
	if len(tr.Arcs) != 5 {
		t.Fatalf("got %d arcs: %v", len(tr.Arcs), tr.Arcs)
	}
	counts := map[DepKind]int{}
	for _, a := range tr.Arcs {
		counts[a.Kind]++
		if !a.Ambiguous {
			t.Errorf("conservative arc %v not ambiguous", a)
		}
		if a.From.Seq >= a.To.Seq {
			t.Errorf("arc %v not in order", a)
		}
	}
	if counts[DepRAW] != 1 || counts[DepWAR] != 3 || counts[DepWAW] != 1 {
		t.Errorf("kind counts %v", counts)
	}
}

func TestTreeValidate(t *testing.T) {
	_, tr := buildStraightTree([]OpKind{OpLoad})
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}

	// No exit.
	bad := &Tree{ID: 1, Name: "bad"}
	bad.NewBlock(-1, NoReg, false)
	bad.NewOp(OpNop, nil, NoReg)
	if err := bad.Validate(); err == nil {
		t.Error("tree without exit accepted")
	}

	// Broken Seq.
	_, tr2 := buildStraightTree([]OpKind{OpLoad})
	tr2.Ops[0].Seq = 42
	if err := tr2.Validate(); err == nil {
		t.Error("broken Seq accepted")
	}

	// Arc out of order.
	_, tr3 := buildStraightTree([]OpKind{OpStore, OpLoad})
	tr3.BuildMemArcs()
	tr3.Arcs[0].From, tr3.Arcs[0].To = tr3.Arcs[0].To, tr3.Arcs[0].From
	if err := tr3.Validate(); err == nil {
		t.Error("reversed arc accepted")
	}
}

func TestArcHelpers(t *testing.T) {
	_, tr := buildStraightTree([]OpKind{OpStore, OpLoad, OpStore})
	tr.BuildMemArcs()
	n := len(tr.Arcs)
	amb := tr.AmbiguousArcs()
	if len(amb) != n {
		t.Fatalf("ambiguous %d of %d", len(amb), n)
	}
	tr.Arcs[0].Ambiguous = false
	if len(tr.AmbiguousArcs()) != n-1 {
		t.Error("definite arc still listed as ambiguous")
	}
	first := tr.Arcs[0]
	tr.RemoveArc(first)
	if len(tr.Arcs) != n-1 {
		t.Error("RemoveArc did not remove")
	}
	tr.RemoveArc(first) // removing twice is a no-op
	if len(tr.Arcs) != n-1 {
		t.Error("double remove changed arcs")
	}
}

func TestAliasProb(t *testing.T) {
	a := &MemArc{}
	if p := a.AliasProb(0.1); p != 0.1 {
		t.Errorf("unprofiled arc prob %v", p)
	}
	a.ExecCount = 100
	a.AliasCount = 25
	if p := a.AliasProb(0.1); p != 0.25 {
		t.Errorf("profiled arc prob %v", p)
	}
}

func TestBlocksAncestry(t *testing.T) {
	tr := &Tree{Name: "b"}
	root := tr.NewBlock(-1, NoReg, false) // 0
	a := tr.NewBlock(root, 1, false)      // 1
	b := tr.NewBlock(root, 1, true)       // 2
	aa := tr.NewBlock(a, 2, false)        // 3

	if !tr.BlockIsAncestor(root, aa) || !tr.BlockIsAncestor(a, aa) {
		t.Error("ancestry broken")
	}
	if tr.BlockIsAncestor(b, aa) || tr.BlockIsAncestor(aa, a) {
		t.Error("false ancestry")
	}
	if tr.CommonAncestor(aa, b) != root {
		t.Error("NCA(aa,b) != root")
	}
	if tr.CommonAncestor(aa, a) != a {
		t.Error("NCA(aa,a) != a")
	}
	if tr.BlockDepth(aa) != 2 || tr.BlockDepth(root) != 0 {
		t.Error("depths wrong")
	}
	if !tr.OnPath(a, aa) || tr.OnPath(aa, a) || tr.OnPath(b, aa) {
		t.Error("OnPath wrong")
	}
}

func TestTreeStringAndOpString(t *testing.T) {
	_, tr := buildStraightTree([]OpKind{OpStore, OpLoad})
	tr.BuildMemArcs()
	s := tr.String()
	for _, want := range []string{"store", "load", "RAW(amb)", "exit"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump lacks %q:\n%s", want, s)
		}
	}
	op := tr.Ops[0]
	op.Guard = 5
	op.GuardNeg = true
	if !strings.Contains(op.String(), "?!r5") {
		t.Errorf("guard rendering: %s", op)
	}
}

func TestProgramValidate(t *testing.T) {
	fn, _ := buildStraightTree([]OpKind{OpLoad})
	p := &Program{Funcs: map[string]*Function{"fix": fn}, Order: []string{"fix"}, Main: "fix", MemSize: 64}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	p.Main = "nope"
	if err := p.Validate(); err == nil {
		t.Error("missing main accepted")
	}
	p.Main = "fix"
	// Exit targeting a missing tree.
	ex := fn.Trees[0].Exits()[0]
	ex.Exit = ExitGoto
	ex.Target = 99
	if err := p.Validate(); err == nil {
		t.Error("dangling goto accepted")
	}
	ex.Exit = ExitCall
	ex.Target = 0
	ex.Callee = "ghost"
	if err := p.Validate(); err == nil {
		t.Error("dangling call accepted")
	}
}

func TestOpCountAndSize(t *testing.T) {
	fn, tr := buildStraightTree([]OpKind{OpLoad, OpStore})
	p := &Program{Funcs: map[string]*Function{"fix": fn}, Order: []string{"fix"}, Main: "fix"}
	if tr.Size() != 3 || p.OpCount() != 3 {
		t.Errorf("size %d, opcount %d", tr.Size(), p.OpCount())
	}
}

func TestHasSideEffectClasses(t *testing.T) {
	se := []OpKind{OpStore, OpPrint, OpExit}
	for _, k := range se {
		if !k.HasSideEffect() {
			t.Errorf("%v should have side effects", k)
		}
	}
	pure := []OpKind{OpLoad, OpAdd, OpFDiv, OpCmpEQ, OpConst, OpMove, OpSqrt, OpBAndNot}
	for _, k := range pure {
		if k.HasSideEffect() {
			t.Errorf("%v should be speculable", k)
		}
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem wrong")
	}
	if !OpFAdd.IsFloat() || OpAdd.IsFloat() || !OpCvtFI.IsFloat() {
		t.Error("IsFloat wrong")
	}
}
