package ir

// LatencyFunc maps an operation to its latency in cycles. The machine
// package provides implementations (Table 6-1 of the paper).
type LatencyFunc func(*Op) int

// DepEdge is a scheduling constraint issue(To) >= issue(From) + Delay.
// Delays may be negative (a memory anti-dependence only requires the store's
// memory write, at issue+latency, to land after the load's sample at issue).
type DepEdge struct {
	To    int // op index within the tree
	Delay int
}

// DepGraph holds the complete dependence graph of one tree under a given
// latency model: register flow, guard availability, register anti/output
// dependences, memory-dependence arcs, and output-stream ordering.
//
// Edges always point from a lower Seq index to a higher one, so the graph is
// a DAG and a scan in Seq order is a topological order.
type DepGraph struct {
	Tree *Tree
	Lat  LatencyFunc

	Succ [][]DepEdge // indexed by op Seq index
	Pred [][]DepEdge // Pred[i] lists edges arriving at i; Edge.To = source index

	lat []int // cached per-op latency
}

// Latency returns the cached latency of op index i.
func (g *DepGraph) Latency(i int) int { return g.lat[i] }

// guardsDisjoint reports whether two ops provably never commit together:
// identical guard registers with opposite polarity, or guards produced by a
// complementary OpBAnd / OpBAndNot pair over the same operands (the form
// produced by guard combination during if-conversion and SpD).
func guardsDisjoint(t *Tree, a, b *Op) bool {
	if a.Guard == NoReg || b.Guard == NoReg {
		return false
	}
	if a.Guard == b.Guard && a.GuardNeg != b.GuardNeg {
		return true
	}
	if a.GuardNeg || b.GuardNeg {
		return false
	}
	da := soleDef(t, a.Guard)
	db := soleDef(t, b.Guard)
	if da == nil || db == nil {
		return false
	}
	complementary := (da.Kind == OpBAnd && db.Kind == OpBAndNot) ||
		(da.Kind == OpBAndNot && db.Kind == OpBAnd)
	return complementary && len(da.Args) == 2 && len(db.Args) == 2 &&
		da.Args[0] == db.Args[0] && da.Args[1] == db.Args[1]
}

// soleDef returns the unique defining op of reg, or nil when there are zero
// or several definitions.
func soleDef(t *Tree, r Reg) *Op {
	var def *Op
	for _, op := range t.Ops {
		if op.Dest == r {
			if def != nil {
				return nil
			}
			def = op
		}
	}
	return def
}

// opReads returns the registers an op reads: arguments, call arguments, and
// its guard.
func opReads(o *Op, buf []Reg) []Reg {
	buf = buf[:0]
	buf = append(buf, o.Args...)
	buf = append(buf, o.CallArg...)
	if o.Guard != NoReg {
		buf = append(buf, o.Guard)
	}
	return buf
}

// BuildDepGraph constructs the dependence graph for t under latency model
// lat. The construction is conservative and purely local to the tree:
//
//   - flow: a use depends on every reaching definition of the register
//     (guarded definitions do not kill earlier ones), with delay equal to
//     the producer's latency;
//   - register anti (WAR): a definition may issue no earlier than prior
//     readers of the register (delay 0: reads sample at issue);
//   - register output (WAW): later definitions must complete after earlier
//     ones unless their guards are provably disjoint;
//   - memory: each MemArc contributes an edge; RAW waits for the store's
//     write-back (delay = store latency), WAR only requires the overwrite to
//     land after the load's sample (delay = 1 − store latency), WAW orders
//     the two writes (delay 1);
//   - output stream: OpPrint ops are ordered among themselves.
func BuildDepGraph(t *Tree, lat LatencyFunc) *DepGraph {
	return BuildRegDepGraph(t, lat).WithArcs()
}

// BuildRegDepGraph constructs the arc-independent skeleton of the dependence
// graph: every edge class of BuildDepGraph except the memory-dependence
// arcs. The register scan is quadratic in tree size while the arc overlay is
// linear in the arc count, so callers that evaluate many arc-set variations
// of one tree (the SpD heuristic's candidate loop) build the skeleton once
// and call WithArcs per variation.
func BuildRegDepGraph(t *Tree, lat LatencyFunc) *DepGraph {
	n := len(t.Ops)
	g := &DepGraph{
		Tree: t,
		Lat:  lat,
		Succ: make([][]DepEdge, n),
		Pred: make([][]DepEdge, n),
		lat:  make([]int, n),
	}
	for i, op := range t.Ops {
		g.lat[i] = lat(op)
	}

	addEdge := func(from, to, delay int) {
		g.Succ[from] = append(g.Succ[from], DepEdge{To: to, Delay: delay})
		g.Pred[to] = append(g.Pred[to], DepEdge{To: from, Delay: delay})
	}

	// Ops in sibling subtrees of the control shape never commit together:
	// a definition on one path is invisible to consumers on a disjoint path
	// (their observed values are masked by their own guards), so no
	// dependence is needed between them.
	coexecute := func(a, b *Op) bool {
		return t.OnPath(a.Block, b.Block) || t.OnPath(b.Block, a.Block)
	}

	var regBuf, prevBuf []Reg
	lastPrint := -1
	for i, op := range t.Ops {
		// Flow dependences for every register read.
		regBuf = opReads(op, regBuf)
		for _, r := range regBuf {
			for j := i - 1; j >= 0; j-- {
				def := t.Ops[j]
				if def.Dest != r || !coexecute(def, op) {
					continue
				}
				addEdge(j, i, g.lat[j])
				if !def.IsGuarded() {
					break // unconditional def kills earlier ones
				}
			}
		}

		// Register anti and output dependences for the destination.
		if op.Dest != NoReg {
			r := op.Dest
			for j := i - 1; j >= 0; j-- {
				prev := t.Ops[j]
				if !coexecute(prev, op) {
					continue
				}
				// Anti: prior reader of r.
				prevBuf = opReads(prev, prevBuf)
				for _, pr := range prevBuf {
					if pr == r {
						addEdge(j, i, 0)
						break
					}
				}
				if prev.Dest == r {
					// Output: order the write-backs, unless the two writers
					// can never commit together.
					if !guardsDisjoint(t, prev, op) {
						d := g.lat[j] - g.lat[i] + 1
						if d < 0 {
							d = 0
						}
						addEdge(j, i, d)
					}
					if !prev.IsGuarded() {
						break
					}
				}
			}
		}

		// Output-stream ordering.
		if op.Kind == OpPrint {
			if lastPrint >= 0 {
				addEdge(lastPrint, i, 1)
			}
			lastPrint = i
		}
	}
	return g
}

// WithArcs returns the full dependence graph: the receiver skeleton plus one
// edge per current memory arc of the tree (edge order matches a monolithic
// BuildDepGraph exactly, so downstream schedules are identical). The
// receiver is never modified — adjacency lists an arc would extend are
// cloned first — so one skeleton serves any number of arc-set variations.
func (g *DepGraph) WithArcs() *DepGraph {
	t := g.Tree
	if len(t.Arcs) == 0 {
		return g
	}
	n := len(t.Ops)
	ng := &DepGraph{Tree: t, Lat: g.Lat, Succ: make([][]DepEdge, n), Pred: make([][]DepEdge, n), lat: g.lat}
	copy(ng.Succ, g.Succ)
	copy(ng.Pred, g.Pred)
	// Appending into a list still shared with the skeleton could write into
	// the skeleton's backing array; clone each touched list once.
	ownSucc := make([]bool, n)
	ownPred := make([]bool, n)
	addEdge := func(from, to, delay int) {
		if !ownSucc[from] {
			ng.Succ[from] = append(make([]DepEdge, 0, len(ng.Succ[from])+2), ng.Succ[from]...)
			ownSucc[from] = true
		}
		if !ownPred[to] {
			ng.Pred[to] = append(make([]DepEdge, 0, len(ng.Pred[to])+2), ng.Pred[to]...)
			ownPred[to] = true
		}
		ng.Succ[from] = append(ng.Succ[from], DepEdge{To: to, Delay: delay})
		ng.Pred[to] = append(ng.Pred[to], DepEdge{To: from, Delay: delay})
	}
	for _, a := range t.Arcs {
		from, to := a.From.Seq, a.To.Seq
		switch a.Kind {
		case DepRAW:
			addEdge(from, to, g.lat[from])
		case DepWAR:
			addEdge(from, to, 1-g.lat[to]) // delay relative to the store's write
		case DepWAW:
			addEdge(from, to, 1)
		}
	}
	return ng
}

// ASAP returns the earliest legal issue cycle of each op on an unconstrained
// (infinite-resource) machine: the paper's infinite LIFE simulator model.
func (g *DepGraph) ASAP() []int {
	n := len(g.Tree.Ops)
	asap := make([]int, n)
	for i := 0; i < n; i++ {
		for _, e := range g.Pred[i] {
			if v := asap[e.To] + e.Delay; v > asap[i] {
				asap[i] = v
			}
		}
	}
	return asap
}

// PathTime computes, for a given issue schedule, the completion time of every
// exit path: the maximum write-back cycle over the ops that commit when that
// exit is taken, but no earlier than the exit's own resolution
// (issue + branch latency). Exit e's committed ops are those in blocks that
// are ancestors-or-self of e's block.
//
// Alias-guarded copies introduced by SpD share a block, so this is a
// conservative (max over both copies) static estimate; the simulator measures
// the true dynamic time.
func (g *DepGraph) PathTime(issue []int) map[*Op]int {
	return g.PathTimeFiltered(issue, false)
}

// PathTimesBoth computes the completion time of every exit path under both
// scenarios of PathTimeFiltered — the fully conservative one (all ops) and
// the all-no-alias one (SpecSide > 0 ops excluded) — in a single scan. The
// results are indexed by exit order (Tree.Exits order); the per-exit op scan
// dominates PathTime's cost, so fusing the two estimates halves the SpD
// heuristic's per-candidate work.
func (g *DepGraph) PathTimesBoth(issue []int) (full, likely []int) {
	t := g.Tree
	for _, ex := range t.Ops {
		if ex.Kind != OpExit {
			continue
		}
		bf := issue[ex.Seq] + g.lat[ex.Seq]
		bl := bf
		for i, op := range t.Ops {
			if op.Kind == OpExit || !t.OnPath(op.Block, ex.Block) {
				continue
			}
			c := issue[i] + g.lat[i]
			if c > bf {
				bf = c
			}
			if op.SpecSide <= 0 && c > bl {
				bl = c
			}
		}
		full = append(full, bf)
		likely = append(likely, bl)
	}
	return full, likely
}

// PathTimeFiltered is PathTime with an optional scenario restriction: when
// likelyOnly is set, ops that commit only under an alias outcome
// (SpecSide > 0) are excluded — the estimate for the all-no-alias scenario
// the SpD heuristic optimizes for.
func (g *DepGraph) PathTimeFiltered(issue []int, likelyOnly bool) map[*Op]int {
	t := g.Tree
	out := make(map[*Op]int)
	for _, ex := range t.Exits() {
		best := issue[ex.Seq] + g.lat[ex.Seq]
		for i, op := range t.Ops {
			if op.Kind == OpExit {
				continue
			}
			if likelyOnly && op.SpecSide > 0 {
				continue
			}
			if !t.OnPath(op.Block, ex.Block) {
				continue
			}
			if c := issue[i] + g.lat[i]; c > best {
				best = c
			}
		}
		out[ex] = best
	}
	return out
}
