package ir

import (
	"fmt"
	"sort"
	"strings"
)

// DepKind classifies a memory-dependence arc.
type DepKind uint8

// Memory dependence kinds, named from the second reference's perspective.
const (
	DepRAW DepKind = iota // store → load
	DepWAR                // load → store
	DepWAW                // store → store
)

func (k DepKind) String() string {
	switch k {
	case DepRAW:
		return "RAW"
	case DepWAR:
		return "WAR"
	case DepWAW:
		return "WAW"
	}
	return fmt.Sprintf("depkind(%d)", int(k))
}

// MemArc is a memory-dependence arc between two memory operations of the same
// tree, From preceding To in sequential order. Ambiguous arcs exist because
// of the *possibility* of dependence; definite arcs are proven to alias.
type MemArc struct {
	From, To  *Op
	Kind      DepKind
	Ambiguous bool

	// Profile counters, filled by a profiling run on the untransformed
	// program: how often both endpoints committed together, and how often
	// their addresses matched when they did.
	ExecCount  int64
	AliasCount int64
}

// AliasProb returns the measured alias probability, or the supplied default
// when the arc was never profiled.
func (a *MemArc) AliasProb(dflt float64) float64 {
	if a.ExecCount == 0 {
		return dflt
	}
	return float64(a.AliasCount) / float64(a.ExecCount)
}

func (a *MemArc) String() string {
	amb := "def"
	if a.Ambiguous {
		amb = "amb"
	}
	return fmt.Sprintf("%s(%s) %%%d -> %%%d", a.Kind, amb, a.From.ID, a.To.ID)
}

// Tree is a decision tree: the unit of scheduling and guarded execution.
// Ops appear in sequential (Seq) order. At least one exit is present; every
// exit carries its full path condition as its guard, and exactly one exit's
// guard evaluates true on each execution (an unguarded exit is therefore
// only legal as a tree's sole exit).
type Tree struct {
	ID   int
	Fn   *Function
	Name string // diagnostic label, e.g. "f.loop1.body"

	// PIdx is the tree's program-wide index, assigned by Program.IndexTrees.
	// Simulators and pricing plans use it for dense per-tree tables instead
	// of pointer-keyed maps.
	PIdx int

	Ops    []*Op
	Arcs   []*MemArc
	Blocks []Block
	nextID int
}

// NewOp allocates an op with a fresh ID, appends it, and returns it. Seq is
// set to the end of the current order.
func (t *Tree) NewOp(kind OpKind, args []Reg, dest Reg) *Op {
	op := &Op{Kind: kind, Args: args, Dest: dest, Guard: NoReg}
	return t.Append(op)
}

// Append adopts an externally built op: it assigns a fresh ID and the next
// Seq position and appends it to the tree.
func (t *Tree) Append(op *Op) *Op {
	op.ID = t.nextID
	t.nextID++
	op.Seq = len(t.Ops)
	t.Ops = append(t.Ops, op)
	return op
}

// AllocID hands out a fresh op ID without placing the op; transformation
// passes that splice ops into the middle of a tree use it and then rebuild
// the op list with Renumber.
func (t *Tree) AllocID() int {
	id := t.nextID
	t.nextID++
	return id
}

// IDBound returns the exclusive upper bound of the op IDs handed out so far.
// Every op legitimately belonging to the tree has ID < IDBound(); an op at or
// above it was allocated elsewhere (a clone or another tree) and grafted in
// without Append/AllocID — the verifier uses this to catch foreign ops.
func (t *Tree) IDBound() int { return t.nextID }

// InsertOp allocates an op with a fresh ID and splices it immediately before
// the op at sequential position seq, renumbering Seq fields.
func (t *Tree) InsertOp(kind OpKind, args []Reg, dest Reg, seq int) *Op {
	op := &Op{ID: t.nextID, Kind: kind, Args: args, Dest: dest, Guard: NoReg}
	t.nextID++
	t.Ops = append(t.Ops, nil)
	copy(t.Ops[seq+1:], t.Ops[seq:])
	t.Ops[seq] = op
	t.Renumber()
	return op
}

// Renumber reassigns Seq fields to match the current slice order.
func (t *Tree) Renumber() {
	for i, op := range t.Ops {
		op.Seq = i
	}
}

// Exits returns the tree's exit ops in sequential order.
func (t *Tree) Exits() []*Op {
	var out []*Op
	for _, op := range t.Ops {
		if op.Kind == OpExit {
			out = append(out, op)
		}
	}
	return out
}

// MemOps returns the loads and stores in sequential order.
func (t *Tree) MemOps() []*Op {
	var out []*Op
	for _, op := range t.Ops {
		if op.Kind.IsMem() {
			out = append(out, op)
		}
	}
	return out
}

// OpByID finds the op with the given ID, or nil.
func (t *Tree) OpByID(id int) *Op {
	for _, op := range t.Ops {
		if op.ID == id {
			return op
		}
	}
	return nil
}

// RemoveArc deletes the given arc from the tree (identity comparison).
func (t *Tree) RemoveArc(a *MemArc) {
	for i, x := range t.Arcs {
		if x == a {
			t.Arcs = append(t.Arcs[:i], t.Arcs[i+1:]...)
			return
		}
	}
}

// AmbiguousArcs returns the arcs still marked ambiguous.
func (t *Tree) AmbiguousArcs() []*MemArc {
	var out []*MemArc
	for _, a := range t.Arcs {
		if a.Ambiguous {
			out = append(out, a)
		}
	}
	return out
}

// Size returns the tree size in operations (the paper's TreeSize).
func (t *Tree) Size() int { return len(t.Ops) }

// String dumps the tree for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree T%d %s:\n", t.ID, t.Name)
	for _, op := range t.Ops {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	for _, a := range t.Arcs {
		fmt.Fprintf(&b, "  arc %s\n", a)
	}
	return b.String()
}

// BuildMemArcs constructs the conservative ("NAIVE") memory-dependence arcs:
// one arc for every ordered pair of memory references in which at least one
// is a store. All arcs start out ambiguous; disambiguators then remove or
// reclassify them. Existing arcs are discarded.
func (t *Tree) BuildMemArcs() {
	t.Arcs = nil
	mem := t.MemOps()
	for i := 0; i < len(mem); i++ {
		for j := i + 1; j < len(mem); j++ {
			a, b := mem[i], mem[j]
			var kind DepKind
			switch {
			case a.Kind == OpStore && b.Kind == OpLoad:
				kind = DepRAW
			case a.Kind == OpLoad && b.Kind == OpStore:
				kind = DepWAR
			case a.Kind == OpStore && b.Kind == OpStore:
				kind = DepWAW
			default:
				continue // load/load pairs never conflict
			}
			t.Arcs = append(t.Arcs, &MemArc{From: a, To: b, Kind: kind, Ambiguous: true})
		}
	}
}

// Validate checks structural invariants and returns the first violation.
func (t *Tree) Validate() error {
	if len(t.Ops) == 0 {
		return fmt.Errorf("tree T%d: empty", t.ID)
	}
	seen := map[int]bool{}
	var exits []*Op
	for i, op := range t.Ops {
		if op.Seq != i {
			return fmt.Errorf("tree T%d: op %%%d has Seq %d at index %d", t.ID, op.ID, op.Seq, i)
		}
		if seen[op.ID] {
			return fmt.Errorf("tree T%d: duplicate op ID %d", t.ID, op.ID)
		}
		seen[op.ID] = true
		if op.Kind == OpExit {
			exits = append(exits, op)
		}
		for _, a := range op.Args {
			if a == NoReg {
				return fmt.Errorf("tree T%d: op %%%d has NoReg arg", t.ID, op.ID)
			}
		}
	}
	if len(exits) == 0 {
		return fmt.Errorf("tree T%d: no exits", t.ID)
	}
	for _, a := range t.Arcs {
		if a.From.Seq >= a.To.Seq {
			return fmt.Errorf("tree T%d: arc %s not in Seq order", t.ID, a)
		}
		if !a.From.Kind.IsMem() || !a.To.Kind.IsMem() {
			return fmt.Errorf("tree T%d: arc %s endpoint not a memory op", t.ID, a)
		}
	}
	return nil
}

// GlobalArray is a statically allocated array in the program's flat memory.
type GlobalArray struct {
	Name string
	Base int64 // first word address
	Size int64 // number of words
	Init []Value
}

// Function is a compiled function: parameters arrive in Params' registers and
// execution starts at tree Entry.
type Function struct {
	Name    string
	Params  []Reg
	NumRegs int
	Trees   []*Tree
	Entry   int

	// IsFloatRet records the return type for printing/diagnostics.
	IsFloatRet bool

	// stableRegs are registers whose committed value is correct under every
	// alias outcome because a speculative-disambiguation merge guards their
	// writers exhaustively. Later transformations must not treat values
	// flowing through them as speculative.
	stableRegs map[Reg]bool
}

// MarkStable records that reg is merge-protected.
func (f *Function) MarkStable(r Reg) {
	if f.stableRegs == nil {
		f.stableRegs = map[Reg]bool{}
	}
	f.stableRegs[r] = true
}

// Stable reports whether reg is merge-protected.
func (f *Function) Stable(r Reg) bool { return f.stableRegs[r] }

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// Tree returns the tree with the given ID (tree IDs are slice indices).
func (f *Function) Tree(id int) *Tree { return f.Trees[id] }

// Program is a whole compiled program: functions plus the static memory
// image. Memory is a flat array of words; globals occupy [0, MemSize).
type Program struct {
	Funcs   map[string]*Function
	Order   []string // function order for deterministic iteration
	Globals []*GlobalArray
	MemSize int64
	Main    string
}

// Global looks up a global array by name.
func (p *Program) Global(name string) *GlobalArray {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	if _, ok := p.Funcs[p.Main]; !ok {
		return fmt.Errorf("program: main function %q missing", p.Main)
	}
	for _, name := range p.Order {
		f := p.Funcs[name]
		if f.Entry < 0 || f.Entry >= len(f.Trees) {
			return fmt.Errorf("func %s: bad entry tree %d", name, f.Entry)
		}
		for _, t := range f.Trees {
			if err := t.Validate(); err != nil {
				return fmt.Errorf("func %s: %w", name, err)
			}
			for _, op := range t.Ops {
				if op.Kind == OpExit {
					switch op.Exit {
					case ExitGoto, ExitCall:
						if op.Target < 0 || op.Target >= len(f.Trees) {
							return fmt.Errorf("func %s tree T%d: exit %%%d targets missing tree %d", name, t.ID, op.ID, op.Target)
						}
					}
					if op.Exit == ExitCall {
						if _, ok := p.Funcs[op.Callee]; !ok {
							return fmt.Errorf("func %s tree T%d: call to missing %q", name, t.ID, op.Callee)
						}
					}
				}
			}
		}
	}
	return nil
}

// IndexTrees assigns every tree a dense program-wide index (Tree.PIdx) in
// deterministic Order/Trees iteration order and returns the tree count.
// Idempotent; call again after any pass that adds or removes trees.
func (p *Program) IndexTrees() int {
	n := 0
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			t.PIdx = n
			n++
		}
	}
	return n
}

// OpCount returns the total static operation count of the program, the
// paper's code-size measure (operations, not VLIW instructions).
func (p *Program) OpCount() int {
	n := 0
	for _, name := range p.Order {
		for _, t := range p.Funcs[name].Trees {
			n += len(t.Ops)
		}
	}
	return n
}

// SortedFuncNames returns the function names sorted, for deterministic dumps.
func (p *Program) SortedFuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
