package ir

import (
	"fmt"
	"sort"
	"strings"
)

// BaseKind classifies the symbolic base of a memory reference.
type BaseKind uint8

// Base kinds.
const (
	// BaseGlobal: the address is <global array> + subscript. Two distinct
	// globals never overlap.
	BaseGlobal BaseKind = iota
	// BaseParam: the address is <array parameter of the enclosing function>
	// + subscript. Two distinct parameters, or a parameter and a global, may
	// overlap (the caller may pass anything): this is the paper's "arrays
	// passed into procedures" ambiguity.
	BaseParam
	// BaseUnknown: the address computation was not understood (e.g. loaded
	// from memory, as with index arrays or pointer chains).
	BaseUnknown
)

func (k BaseKind) String() string {
	switch k {
	case BaseGlobal:
		return "global"
	case BaseParam:
		return "param"
	case BaseUnknown:
		return "unknown"
	}
	return fmt.Sprintf("basekind(%d)", int(k))
}

// LoopVar identifies an enclosing loop induction variable. Loop variables are
// numbered per function by the front end.
type LoopVar int32

// LoopInfo describes one canonical counted loop enclosing a reference. When
// BoundsKnown, the induction variable's possible values all lie in the
// inclusive range [Lo, Hi]; the range is widened to include the first
// out-of-range (exit) value, because exit-path references inside the loop's
// decision tree observe it.
type LoopInfo struct {
	Var         LoopVar
	Lo, Hi      int64
	Step        int64
	BoundsKnown bool
}

// Affine is a linear expression Const + Σ Coef·Var over loop induction
// variables, in canonical form (terms sorted by Var, no zero coefficients).
type Affine struct {
	Const int64
	Terms []AffineTerm
}

// AffineTerm is one Coef·Var summand.
type AffineTerm struct {
	Var  LoopVar
	Coef int64
}

// ConstAffine returns the affine expression with only a constant term.
func ConstAffine(c int64) *Affine { return &Affine{Const: c} }

// VarAffine returns the affine expression 1·v.
func VarAffine(v LoopVar) *Affine {
	return &Affine{Terms: []AffineTerm{{Var: v, Coef: 1}}}
}

// normalize sorts terms and drops zero coefficients.
func (a *Affine) normalize() *Affine {
	sort.Slice(a.Terms, func(i, j int) bool { return a.Terms[i].Var < a.Terms[j].Var })
	out := a.Terms[:0]
	for _, t := range a.Terms {
		if t.Coef == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coef += t.Coef
			if out[n-1].Coef == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, t)
	}
	a.Terms = out
	return a
}

// Add returns a + b.
func (a *Affine) Add(b *Affine) *Affine {
	r := &Affine{Const: a.Const + b.Const}
	r.Terms = append(r.Terms, a.Terms...)
	r.Terms = append(r.Terms, b.Terms...)
	return r.normalize()
}

// Sub returns a - b.
func (a *Affine) Sub(b *Affine) *Affine { return a.Add(b.Scale(-1)) }

// Scale returns k·a.
func (a *Affine) Scale(k int64) *Affine {
	r := &Affine{Const: a.Const * k}
	for _, t := range a.Terms {
		r.Terms = append(r.Terms, AffineTerm{Var: t.Var, Coef: t.Coef * k})
	}
	return r.normalize()
}

// IsConst reports whether a has no variable terms.
func (a *Affine) IsConst() bool { return len(a.Terms) == 0 }

// Coef returns the coefficient of v (0 if absent).
func (a *Affine) Coef(v LoopVar) int64 {
	for _, t := range a.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// Eval evaluates the expression under an assignment of loop variables.
func (a *Affine) Eval(env map[LoopVar]int64) int64 {
	s := a.Const
	for _, t := range a.Terms {
		s += t.Coef * env[t.Var]
	}
	return s
}

// Equal reports structural equality of canonical forms.
func (a *Affine) Equal(b *Affine) bool {
	if a.Const != b.Const || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// String renders e.g. "4 + 2*i1 - 1*i2".
func (a *Affine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", a.Const)
	for _, t := range a.Terms {
		if t.Coef >= 0 {
			fmt.Fprintf(&b, " + %d*i%d", t.Coef, t.Var)
		} else {
			fmt.Fprintf(&b, " - %d*i%d", -t.Coef, t.Var)
		}
	}
	return b.String()
}

// MemRef is the compiler's symbolic description of one load/store address:
// Base identified by (BaseKind, BaseSym) plus an affine subscript in the
// enclosing loop induction variables. Loops lists the enclosing canonical
// loops (outermost first) available for Banerjee bounds.
type MemRef struct {
	BaseKind BaseKind
	BaseSym  string // global name, or parameter name within the function
	Sub      *Affine
	Loops    []LoopInfo
}

// SameBase reports whether two references provably share a base.
func (r *MemRef) SameBase(o *MemRef) bool {
	if r == nil || o == nil {
		return false
	}
	if r.BaseKind == BaseUnknown || o.BaseKind == BaseUnknown {
		return false
	}
	return r.BaseKind == o.BaseKind && r.BaseSym == o.BaseSym
}

// DistinctBase reports whether two references provably never overlap because
// they address different global arrays.
func (r *MemRef) DistinctBase(o *MemRef) bool {
	if r == nil || o == nil {
		return false
	}
	return r.BaseKind == BaseGlobal && o.BaseKind == BaseGlobal && r.BaseSym != o.BaseSym
}

func (r *MemRef) String() string {
	if r == nil {
		return "<opaque>"
	}
	sub := "?"
	if r.Sub != nil {
		sub = r.Sub.String()
	}
	return fmt.Sprintf("%s:%s[%s]", r.BaseKind, r.BaseSym, sub)
}
