package ir

import (
	"encoding/binary"
	"math"
)

// AppendExecKey appends a canonical encoding of the tree's execution-relevant
// content to buf and returns the extended slice. Two trees with equal keys
// execute identically: same dynamic semantics, same commit-bit layout, same
// taken-exit indices. Compiled-code caches (internal/bcode, internal/ncode)
// key on it so clones of one program — each benchmark cell works on a private
// ir.Program.Clone — share a single compiled artifact, and so that a tree
// mutated after compilation re-keys and recompiles instead of running stale
// code.
//
// The key covers exactly what the execution engines read: op kind, operand
// and destination registers, guard register and polarity, constant payload
// and print formatting, all in Seq order. It deliberately excludes the exit
// payload (exit kind, target tree, callee, call arguments): compiled code
// only reports which exit committed, and the caller resolves the payload
// from its own tree's op. Names, IDs, blocks, arcs and profile counters are
// likewise invisible to execution and stay out of the key.
func AppendExecKey(buf []byte, t *Tree) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.Ops)))
	for _, op := range t.Ops {
		var flags byte
		if op.GuardNeg {
			flags |= 1
		}
		if op.PrintFloat {
			flags |= 2
		}
		buf = append(buf, byte(op.Kind), flags)
		buf = binary.AppendVarint(buf, int64(op.Guard))
		buf = binary.AppendVarint(buf, int64(op.Dest))
		buf = binary.AppendUvarint(buf, uint64(len(op.Args)))
		for _, a := range op.Args {
			buf = binary.AppendVarint(buf, int64(a))
		}
		if op.Kind == OpConst {
			buf = binary.AppendVarint(buf, op.Imm.I)
			buf = binary.AppendUvarint(buf, math.Float64bits(op.Imm.F))
		}
	}
	return buf
}
