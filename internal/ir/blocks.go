package ir

import "fmt"

// Block is one node of a tree's internal control shape. After if-conversion
// the control structure survives only as guard assignments, but the block
// tree is kept so analyses can reason about which ops execute together on a
// path: ops in a block and all its ancestors commit together.
//
// The root block has Parent == -1 and no guard. Every other block carries the
// branch condition (register + polarity) that selects it from its parent.
type Block struct {
	ID     int
	Parent int
	Guard  Reg // condition register selecting this block from its parent
	Neg    bool
}

// NewBlock appends a block and returns its ID.
func (t *Tree) NewBlock(parent int, guard Reg, neg bool) int {
	id := len(t.Blocks)
	t.Blocks = append(t.Blocks, Block{ID: id, Parent: parent, Guard: guard, Neg: neg})
	return id
}

// BlockDepth returns the distance from the root block.
func (t *Tree) BlockDepth(b int) int {
	d := 0
	for t.Blocks[b].Parent >= 0 {
		b = t.Blocks[b].Parent
		d++
	}
	return d
}

// BlockIsAncestor reports whether a is b or an ancestor of b.
func (t *Tree) BlockIsAncestor(a, b int) bool {
	for b >= 0 {
		if a == b {
			return true
		}
		b = t.Blocks[b].Parent
	}
	return false
}

// CommonAncestor returns the nearest common ancestor block of a and b.
func (t *Tree) CommonAncestor(a, b int) int {
	da, db := t.BlockDepth(a), t.BlockDepth(b)
	for da > db {
		a, da = t.Blocks[a].Parent, da-1
	}
	for db > da {
		b, db = t.Blocks[b].Parent, db-1
	}
	for a != b {
		a, b = t.Blocks[a].Parent, t.Blocks[b].Parent
	}
	return a
}

// OnPath reports whether an op in block opBlk commits when the exit in block
// exitBlk is taken: true iff opBlk is an ancestor-or-self of exitBlk.
// (Ops in descendants or siblings of exitBlk belong to other paths.)
func (t *Tree) OnPath(opBlk, exitBlk int) bool {
	return t.BlockIsAncestor(opBlk, exitBlk)
}

// ValidateBlocks checks block-structure invariants.
func (t *Tree) ValidateBlocks() error {
	if len(t.Blocks) == 0 {
		return fmt.Errorf("tree T%d: no blocks", t.ID)
	}
	if t.Blocks[0].Parent != -1 {
		return fmt.Errorf("tree T%d: block 0 is not a root", t.ID)
	}
	for i, b := range t.Blocks {
		if b.ID != i {
			return fmt.Errorf("tree T%d: block %d has ID %d", t.ID, i, b.ID)
		}
		if i > 0 && (b.Parent < 0 || b.Parent >= i) {
			return fmt.Errorf("tree T%d: block %d has bad parent %d", t.ID, i, b.Parent)
		}
	}
	for _, op := range t.Ops {
		if op.Block < 0 || op.Block >= len(t.Blocks) {
			return fmt.Errorf("tree T%d: op %%%d in missing block %d", t.ID, op.ID, op.Block)
		}
	}
	return nil
}
