package ir

// Clone deep-copies the tree: ops (including argument slices and memory
// references), arcs (remapped to the cloned ops), and blocks. The clone gets
// a private shallow copy of the parent Function (own register counter, own
// stable-register set, and a Trees slice in which the clone replaces the
// original), so transformations applied to the clone never disturb the
// original tree or the function's bookkeeping. Intended for tentative
// ("what if") transformation during heuristic search.
func (t *Tree) Clone() *Tree {
	fnCopy := *t.Fn
	fnCopy.Trees = append([]*Tree(nil), t.Fn.Trees...)
	fnCopy.stableRegs = make(map[Reg]bool, len(t.Fn.stableRegs))
	for r := range t.Fn.stableRegs {
		fnCopy.stableRegs[r] = true
	}
	c := &Tree{
		ID:     t.ID,
		Fn:     &fnCopy,
		Name:   t.Name,
		PIdx:   t.PIdx,
		Blocks: append([]Block(nil), t.Blocks...),
		nextID: t.nextID,
	}
	if t.ID >= 0 && t.ID < len(fnCopy.Trees) {
		fnCopy.Trees[t.ID] = c
	}
	byOld := make(map[*Op]*Op, len(t.Ops))
	c.Ops = make([]*Op, len(t.Ops))
	for i, op := range t.Ops {
		n := *op
		n.Args = append([]Reg(nil), op.Args...)
		n.CallArg = append([]Reg(nil), op.CallArg...)
		if op.Ref != nil {
			ref := *op.Ref
			n.Ref = &ref
		}
		c.Ops[i] = &n
		byOld[op] = &n
	}
	c.Arcs = make([]*MemArc, len(t.Arcs))
	for i, a := range t.Arcs {
		n := *a
		n.From = byOld[a.From]
		n.To = byOld[a.To]
		c.Arcs[i] = &n
	}
	return c
}
