package ir

// cloneInto deep-copies the tree's ops (including argument slices and memory
// references), arcs (remapped to the cloned ops), and blocks into a new tree
// owned by fn. The caller decides how fn relates to the original function.
func (t *Tree) cloneInto(fn *Function) *Tree {
	c := &Tree{
		ID:     t.ID,
		Fn:     fn,
		Name:   t.Name,
		PIdx:   t.PIdx,
		Blocks: append([]Block(nil), t.Blocks...),
		nextID: t.nextID,
	}
	byOld := make(map[*Op]*Op, len(t.Ops))
	c.Ops = make([]*Op, len(t.Ops))
	for i, op := range t.Ops {
		n := *op
		n.Args = append([]Reg(nil), op.Args...)
		n.CallArg = append([]Reg(nil), op.CallArg...)
		if op.Ref != nil {
			ref := *op.Ref
			n.Ref = &ref
		}
		c.Ops[i] = &n
		byOld[op] = &n
	}
	c.Arcs = make([]*MemArc, len(t.Arcs))
	for i, a := range t.Arcs {
		n := *a
		n.From = byOld[a.From]
		n.To = byOld[a.To]
		c.Arcs[i] = &n
	}
	return c
}

// Clone deep-copies the tree: ops (including argument slices and memory
// references), arcs (remapped to the cloned ops), and blocks. The clone gets
// a private shallow copy of the parent Function (own register counter, own
// stable-register set, and a Trees slice in which the clone replaces the
// original), so transformations applied to the clone never disturb the
// original tree or the function's bookkeeping. Intended for tentative
// ("what if") transformation during heuristic search.
func (t *Tree) Clone() *Tree {
	fnCopy := *t.Fn
	fnCopy.Trees = append([]*Tree(nil), t.Fn.Trees...)
	fnCopy.stableRegs = make(map[Reg]bool, len(t.Fn.stableRegs))
	for r := range t.Fn.stableRegs {
		fnCopy.stableRegs[r] = true
	}
	c := t.cloneInto(&fnCopy)
	if t.ID >= 0 && t.ID < len(fnCopy.Trees) {
		fnCopy.Trees[t.ID] = c
	}
	return c
}

// Clone deep-copies the whole program: every function (with its trees, ops,
// arcs, and stable-register set) and every global's init image. The clone is
// structurally identical — same op IDs, Seq positions, tree IDs, and PIdx
// assignments — so pipelines that mutate a program in place (arc resolution,
// SpD) can each start from a private copy of one compilation instead of
// recompiling the source.
func (p *Program) Clone() *Program {
	np := &Program{
		Funcs:   make(map[string]*Function, len(p.Funcs)),
		Order:   append([]string(nil), p.Order...),
		MemSize: p.MemSize,
		Main:    p.Main,
	}
	np.Globals = make([]*GlobalArray, len(p.Globals))
	for i, g := range p.Globals {
		ng := *g
		ng.Init = append([]Value(nil), g.Init...)
		np.Globals[i] = &ng
	}
	for _, name := range p.SortedFuncNames() {
		fn := p.Funcs[name]
		nf := *fn
		nf.Params = append([]Reg(nil), fn.Params...)
		if fn.stableRegs != nil {
			nf.stableRegs = make(map[Reg]bool, len(fn.stableRegs))
			for r := range fn.stableRegs {
				nf.stableRegs[r] = true
			}
		}
		nf.Trees = make([]*Tree, len(fn.Trees))
		for i, t := range fn.Trees {
			nf.Trees[i] = t.cloneInto(&nf)
		}
		np.Funcs[name] = &nf
	}
	return np
}
