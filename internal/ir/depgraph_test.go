package ir

import (
	"testing"
)

// unitLat gives every op latency 1 except loads/stores (2), mul (3).
func unitLat(op *Op) int {
	switch op.Kind {
	case OpLoad, OpStore, OpExit:
		return 2
	case OpMul:
		return 3
	}
	return 1
}

// chainTree builds: c0 = const; add = c0 + c0; mul = add * add; exit(mul).
func chainTree() (*Function, *Tree) {
	fn := &Function{Name: "chain"}
	t := &Tree{Fn: fn, Name: "chain.t0"}
	t.NewBlock(-1, NoReg, false)
	fn.Trees = []*Tree{t}
	c := t.NewOp(OpConst, nil, fn.NewReg())
	add := t.NewOp(OpAdd, []Reg{c.Dest, c.Dest}, fn.NewReg())
	mul := t.NewOp(OpMul, []Reg{add.Dest, add.Dest}, fn.NewReg())
	ex := t.NewOp(OpExit, []Reg{mul.Dest}, NoReg)
	ex.Exit = ExitRet
	return fn, t
}

func hasEdge(g *DepGraph, from, to, delay int) bool {
	for _, e := range g.Succ[from] {
		if e.To == to && e.Delay == delay {
			return true
		}
	}
	return false
}

func TestFlowDependences(t *testing.T) {
	_, tr := chainTree()
	g := BuildDepGraph(tr, unitLat)
	if !hasEdge(g, 0, 1, 1) { // const -> add, delay = lat(const) = 1
		t.Error("missing const->add edge")
	}
	if !hasEdge(g, 1, 2, 1) {
		t.Error("missing add->mul edge")
	}
	if !hasEdge(g, 2, 3, 3) { // mul -> exit, delay = lat(mul) = 3
		t.Error("missing mul->exit edge")
	}
	asap := g.ASAP()
	want := []int{0, 1, 2, 5}
	for i, w := range want {
		if asap[i] != w {
			t.Errorf("asap[%d] = %d, want %d", i, asap[i], w)
		}
	}
}

func TestGuardedDefsDoNotKill(t *testing.T) {
	fn := &Function{Name: "g"}
	tr := &Tree{Fn: fn, Name: "g.t0"}
	tr.NewBlock(-1, NoReg, false)
	r := fn.NewReg()
	cnd := fn.NewReg()
	d0 := tr.NewOp(OpConst, nil, r) // unconditional def
	d1 := tr.NewOp(OpConst, nil, r) // guarded redefinition
	d1.Guard = cnd
	use := tr.NewOp(OpAdd, []Reg{r, r}, fn.NewReg())
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	g := BuildDepGraph(tr, unitLat)
	if !hasEdge(g, d1.Seq, use.Seq, 1) {
		t.Error("use must see the guarded def")
	}
	if !hasEdge(g, d0.Seq, use.Seq, 1) {
		t.Error("guarded def must not kill the unconditional one")
	}
}

func TestRegisterAntiAndOutputDeps(t *testing.T) {
	fn := &Function{Name: "a"}
	tr := &Tree{Fn: fn, Name: "a.t0"}
	tr.NewBlock(-1, NoReg, false)
	r := fn.NewReg()
	def1 := tr.NewOp(OpConst, nil, r)
	use := tr.NewOp(OpAdd, []Reg{r, r}, fn.NewReg())
	def2 := tr.NewOp(OpConst, nil, r) // redefinition after the use
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	g := BuildDepGraph(tr, unitLat)
	if !hasEdge(g, use.Seq, def2.Seq, 0) {
		t.Error("missing WAR (anti) register edge with delay 0")
	}
	// Output dep: def2 must complete after def1: delay lat1 - lat2 + 1 = 1.
	if !hasEdge(g, def1.Seq, def2.Seq, 1) {
		t.Error("missing WAW (output) register edge")
	}
}

func TestDisjointGuardsSkipOutputDep(t *testing.T) {
	fn := &Function{Name: "d"}
	tr := &Tree{Fn: fn, Name: "d.t0"}
	tr.NewBlock(-1, NoReg, false)
	r := fn.NewReg()
	cnd := fn.NewReg()
	d1 := tr.NewOp(OpConst, nil, r)
	d1.Guard = cnd
	d2 := tr.NewOp(OpConst, nil, r)
	d2.Guard = cnd
	d2.GuardNeg = true
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	g := BuildDepGraph(tr, unitLat)
	if hasEdge(g, d1.Seq, d2.Seq, 1) {
		t.Error("opposite-polarity guarded defs must not be ordered")
	}
}

func TestComplementaryBAndGuardsAreDisjoint(t *testing.T) {
	fn := &Function{Name: "c"}
	tr := &Tree{Fn: fn, Name: "c.t0"}
	tr.NewBlock(-1, NoReg, false)
	h := fn.NewReg()
	c := fn.NewReg()
	gp := tr.NewOp(OpBAnd, []Reg{h, c}, fn.NewReg())
	gn := tr.NewOp(OpBAndNot, []Reg{h, c}, fn.NewReg())
	r := fn.NewReg()
	d1 := tr.NewOp(OpConst, nil, r)
	d1.Guard = gp.Dest
	d2 := tr.NewOp(OpConst, nil, r)
	d2.Guard = gn.Dest
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	g := BuildDepGraph(tr, unitLat)
	if hasEdge(g, d1.Seq, d2.Seq, 1) {
		t.Error("BAnd/BAndNot guarded defs must be recognized as disjoint")
	}
}

func TestMemoryArcDelays(t *testing.T) {
	fn := &Function{Name: "m"}
	tr := &Tree{Fn: fn, Name: "m.t0"}
	tr.NewBlock(-1, NoReg, false)
	addr := fn.NewReg()
	val := fn.NewReg()
	s1 := tr.NewOp(OpStore, []Reg{addr, val}, NoReg)
	l := tr.NewOp(OpLoad, []Reg{addr}, fn.NewReg())
	s2 := tr.NewOp(OpStore, []Reg{addr, val}, NoReg)
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	tr.BuildMemArcs()
	g := BuildDepGraph(tr, unitLat)
	if !hasEdge(g, s1.Seq, l.Seq, 2) {
		t.Error("RAW delay should equal store latency")
	}
	if !hasEdge(g, l.Seq, s2.Seq, -1) {
		t.Error("WAR delay should be 1 - store latency")
	}
	if !hasEdge(g, s1.Seq, s2.Seq, 1) {
		t.Error("WAW delay should be 1")
	}
}

func TestPrintOrdering(t *testing.T) {
	fn := &Function{Name: "p"}
	tr := &Tree{Fn: fn, Name: "p.t0"}
	tr.NewBlock(-1, NoReg, false)
	v := fn.NewReg()
	p1 := tr.NewOp(OpPrint, []Reg{v}, NoReg)
	p2 := tr.NewOp(OpPrint, []Reg{v}, NoReg)
	ex := tr.NewOp(OpExit, nil, NoReg)
	ex.Exit = ExitRet
	g := BuildDepGraph(tr, unitLat)
	if !hasEdge(g, p1.Seq, p2.Seq, 1) {
		t.Error("prints must stay ordered")
	}
}

func TestPathTimeRespectsBlocksAndSpecSide(t *testing.T) {
	fn := &Function{Name: "pt"}
	tr := &Tree{Fn: fn, Name: "pt.t0"}
	root := tr.NewBlock(-1, NoReg, false)
	cnd := fn.NewReg()
	cmp := tr.NewOp(OpCmpEQ, []Reg{cnd, cnd}, fn.NewReg())
	thenB := tr.NewBlock(root, cmp.Dest, false)
	elseB := tr.NewBlock(root, cmp.Dest, true)

	slow0 := tr.NewOp(OpMul, []Reg{cnd, cnd}, fn.NewReg()) // 3 cycles
	slow0.Block = thenB
	slow := tr.NewOp(OpMul, []Reg{slow0.Dest, slow0.Dest}, fn.NewReg()) // 3 more
	slow.Block = thenB
	ex1 := tr.NewOp(OpExit, nil, NoReg)
	ex1.Exit = ExitRet
	ex1.Block = thenB
	ex1.Guard = cmp.Dest
	ex2 := tr.NewOp(OpExit, nil, NoReg)
	ex2.Exit = ExitRet
	ex2.Block = elseB
	ex2.Guard = cmp.Dest
	ex2.GuardNeg = true

	g := BuildDepGraph(tr, unitLat)
	asap := g.ASAP()
	pt := g.PathTime(asap)
	if pt[ex1] <= pt[ex2] {
		t.Errorf("then-path (with mul) should be longer: %d vs %d", pt[ex1], pt[ex2])
	}
	// Tag the mul as alias-side: the likely estimate must drop.
	slow.SpecSide = 1
	likely := g.PathTimeFiltered(asap, true)
	if likely[ex1] >= pt[ex1] {
		t.Errorf("likely estimate should exclude alias-side ops: %d vs %d", likely[ex1], pt[ex1])
	}
}

func TestMarkAliasSideSticky(t *testing.T) {
	op := &Op{}
	op.MarkAliasSide(false)
	if op.SpecSide != -1 {
		t.Fatalf("no-alias mark gave %d", op.SpecSide)
	}
	op.MarkAliasSide(true)
	if op.SpecSide != 1 {
		t.Fatalf("alias mark gave %d", op.SpecSide)
	}
	op.MarkAliasSide(false)
	if op.SpecSide != 1 {
		t.Fatalf("+1 must be sticky, got %d", op.SpecSide)
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	_, tr := chainTree()
	tr.Ops[0].Ref = &MemRef{BaseKind: BaseGlobal, BaseSym: "a", Sub: ConstAffine(1)}
	tr.BuildMemArcs()
	c := tr.Clone()

	if len(c.Ops) != len(tr.Ops) || len(c.Blocks) != len(tr.Blocks) {
		t.Fatal("clone shape differs")
	}
	for i := range c.Ops {
		if c.Ops[i] == tr.Ops[i] {
			t.Fatal("clone shares op pointers")
		}
	}
	// Mutating the clone must not affect the original.
	c.Ops[1].Kind = OpSub
	c.Ops[0].Ref.BaseSym = "zzz"
	if tr.Ops[1].Kind != OpAdd || tr.Ops[0].Ref.BaseSym != "a" {
		t.Error("clone mutation leaked into original")
	}
	// Arc endpoints must point at cloned ops.
	fn2, tr2 := chainTree()
	_ = fn2
	tr2.Ops[0].Kind = OpStore
	tr2.Ops[0].Args = []Reg{0, 0}
	tr2.Ops[0].Dest = NoReg
	tr2.Ops[1].Kind = OpLoad
	tr2.Ops[1].Args = []Reg{0}
	tr2.BuildMemArcs()
	c2 := tr2.Clone()
	for _, a := range c2.Arcs {
		if a.From == tr2.Arcs[0].From {
			t.Fatal("cloned arc references original op")
		}
		if a.From != c2.Ops[a.From.Seq] {
			t.Fatal("cloned arc not remapped to cloned ops")
		}
	}
}
