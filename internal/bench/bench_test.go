package bench_test

import (
	"strconv"
	"strings"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

func TestSuiteIsComplete(t *testing.T) {
	want := []string{"adi", "bcuint", "fft", "moment", "smooft", "solvde",
		"perm", "queen", "quick", "tree", "boolmin"}
	got := bench.All()
	if len(got) != len(want) {
		t.Fatalf("suite has %d programs, want %d", len(got), len(want))
	}
	for i, b := range got {
		if b.Name != want[i] {
			t.Errorf("program %d = %s, want %s", i, b.Name, want[i])
		}
		if b.Lines() < 20 {
			t.Errorf("%s suspiciously short: %d lines", b.Name, b.Lines())
		}
	}
	if bench.ByName("fft") == nil || bench.ByName("nope") != nil {
		t.Error("ByName misbehaves")
	}
	if n := len(bench.NRC()); n != 6 {
		t.Errorf("NRC subset has %d programs, want 6", n)
	}
}

func TestBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := compile.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
			res, err := r.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Output == "" {
				t.Fatal("no output")
			}
			t.Logf("%s: %d dynamic ops, output %q", b.Name, res.Ops,
				strings.ReplaceAll(res.Output, "\n", " "))
		})
	}
}

// Benchmark-specific semantic checks.
func outputLines(t *testing.T, name string) []string {
	t.Helper()
	b := bench.ByName(name)
	prog, err := compile.Compile(b.Source)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return strings.Split(strings.TrimRight(res.Output, "\n"), "\n")
}

func TestQueenFinds92Solutions(t *testing.T) {
	lines := outputLines(t, "queen")
	if lines[0] != "92" {
		t.Fatalf("queen solutions = %s, want 92", lines[0])
	}
}

func TestQuickSorts(t *testing.T) {
	lines := outputLines(t, "quick")
	if lines[0] != "1" {
		t.Fatalf("quick: array not sorted (ok flag %s)", lines[0])
	}
}

func TestTreeSorts(t *testing.T) {
	lines := outputLines(t, "tree")
	if lines[0] != "1" || lines[2] != "1" {
		t.Fatalf("tree: inorder walk not sorted: %v", lines)
	}
}

func TestPermCountsCalls(t *testing.T) {
	lines := outputLines(t, "perm")
	// permute(n) is called 5 * (1 + sum over the recursion) times; the
	// Stanford workload with n=7 and 5 trials yields 43300 calls... computed
	// here independently:
	calls := 0
	var rec func(n int)
	rec = func(n int) {
		calls++
		if n != 1 {
			rec(n - 1)
			for k := n - 1; k >= 1; k-- {
				rec(n - 1)
			}
		}
	}
	for trial := 0; trial < 5; trial++ {
		rec(7)
	}
	want := calls
	if lines[0] != itoa(want) {
		t.Fatalf("perm pctr = %s, want %d", lines[0], want)
	}
}

func TestFFTRoundTrips(t *testing.T) {
	lines := outputLines(t, "fft")
	if lines[2] != "1" {
		t.Fatalf("fft: inverse transform did not recover the signal: %v", lines)
	}
}

func TestSolvdeConverges(t *testing.T) {
	lines := outputLines(t, "solvde")
	if lines[0] == "40" {
		t.Fatalf("solvde: did not converge within 40 sweeps: %v", lines)
	}
}

func TestBoolminVerifies(t *testing.T) {
	lines := outputLines(t, "boolmin")
	if lines[3] != "1" {
		t.Fatalf("boolmin: minimized cover does not match truth table: %v", lines)
	}
	// Minimization must not grow the cover.
	if atoi(t, lines[1]) > atoi(t, lines[0]) {
		t.Fatalf("boolmin: cover grew from %s to %s cubes", lines[0], lines[1])
	}
}

// TestAllPipelinesAgreeOnEveryBenchmark is the headline correctness check:
// the four disambiguators must preserve program semantics on the whole
// suite, for both memory latencies.
func TestAllPipelinesAgreeOnEveryBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	models := []machine.Model{machine.New(5, 2), machine.New(5, 6)}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, memLat := range []int{2, 6} {
				var ref string
				for _, kind := range disamb.Kinds {
					p, err := disamb.Prepare(b.Source, kind, memLat, spd.DefaultParams())
					if err != nil {
						t.Fatalf("%s m%d: %v", kind, memLat, err)
					}
					res, err := disamb.Measure(p, models)
					if err != nil {
						t.Fatalf("%s m%d: %v", kind, memLat, err)
					}
					if ref == "" {
						ref = res.Output
					} else if res.Output != ref {
						t.Fatalf("%s m%d output diverged", kind, memLat)
					}
				}
			}
		})
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}
