// Package bench carries the benchmark suite of the paper's Table 6-2, ported
// to MiniC: six Numerical Recipes in C kernels that are hard to disambiguate
// statically, four Stanford Integer programs, and an espresso stand-in
// (boolmin, a two-level boolean minimizer with the same access behaviour).
//
// Three Stanford programs (bubble, intmm, puzzle in the original suite) were
// reported by the paper as unaffected by SpD and are not part of its data;
// they are likewise omitted here.
package bench

import (
	"embed"
	"fmt"
	"strings"
)

//go:embed programs/*.mc
var programFS embed.FS

// Benchmark is one suite program.
type Benchmark struct {
	Name  string
	Suite string // "NRC", "StanfInt", "SPEC"
	Desc  string
	// Source is the MiniC program text.
	Source string
	// Unaffected marks the Stanford programs the paper reports as "not
	// affected by SpD at all" and excludes from its data; they are kept
	// here so that the claim itself can be verified.
	Unaffected bool
}

// Lines counts source lines, for the Table 6-2 style listing.
func (b *Benchmark) Lines() int {
	return strings.Count(strings.TrimRight(b.Source, "\n"), "\n") + 1
}

var meta = []struct {
	name, suite, desc string
	unaffected        bool
}{
	{"adi", "NRC", "Alternating direction implicit method for partial differential equations.", false},
	{"bcuint", "NRC", "Bicubic interpolation.", false},
	{"fft", "NRC", "Fast fourier transform.", false},
	{"moment", "NRC", "Moments of distribution.", false},
	{"smooft", "NRC", "Smoothing of data.", false},
	{"solvde", "NRC", "Relaxation method for two point boundary value problems.", false},
	{"perm", "StanfInt", "Recursive permutation program.", false},
	{"queen", "StanfInt", "Eight queens problem.", false},
	{"quick", "StanfInt", "Quicksort.", false},
	{"tree", "StanfInt", "Treesort.", false},
	{"boolmin", "SPEC", "Boolean function minimization (espresso stand-in).", false},
	{"bubble", "StanfInt", "Bubble sort (unaffected by SpD).", true},
	{"intmm", "StanfInt", "Integer matrix multiplication (unaffected by SpD).", true},
	{"towers", "StanfInt", "Towers of Hanoi (unaffected by SpD).", true},
}

var all []*Benchmark

func init() {
	for _, m := range meta {
		src, err := programFS.ReadFile("programs/" + m.name + ".mc")
		if err != nil {
			panic(fmt.Sprintf("bench: missing program %s: %v", m.name, err))
		}
		all = append(all, &Benchmark{
			Name:       m.name,
			Suite:      m.suite,
			Desc:       m.desc,
			Source:     string(src),
			Unaffected: m.unaffected,
		})
	}
}

// All returns the paper's data set in Table 6-2 order (the three unaffected
// Stanford programs are excluded, as in the paper's own tables).
func All() []*Benchmark {
	var out []*Benchmark
	for _, b := range all {
		if !b.Unaffected {
			out = append(out, b)
		}
	}
	return out
}

// Everything returns every ported program, including the three Stanford
// programs the paper reports as unaffected by SpD.
func Everything() []*Benchmark { return all }

// NRC returns only the Numerical Recipes benchmarks (used by Figure 6-3).
func NRC() []*Benchmark {
	var out []*Benchmark
	for _, b := range all {
		if b.Suite == "NRC" {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up, or returns nil.
func ByName(name string) *Benchmark {
	for _, b := range all {
		if b.Name == name {
			return b
		}
	}
	return nil
}
