package bench_test

import (
	"testing"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

func TestEverythingIncludesUnaffected(t *testing.T) {
	if len(bench.Everything()) != len(bench.All())+3 {
		t.Fatalf("Everything has %d, All has %d", len(bench.Everything()), len(bench.All()))
	}
	count := 0
	for _, b := range bench.Everything() {
		if b.Unaffected {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("%d unaffected programs, want 3 (paper §6.3)", count)
	}
}

// TestUnaffectedProgramsRunCorrectly validates the three extra programs'
// semantics.
func TestUnaffectedProgramsRunCorrectly(t *testing.T) {
	cases := map[string][]string{
		"bubble": {"1"},          // sorted flag
		"intmm":  nil,            // digest only
		"towers": {"4095", "12"}, // 2^12-1 moves, 12 discs on peg 2
	}
	for name, want := range cases {
		lines := outputLines(t, name)
		for i, w := range want {
			if lines[i] != w {
				t.Errorf("%s line %d = %s, want %s", name, i, lines[i], w)
			}
		}
	}
}

// TestUnaffectedClaim reproduces the paper's statement that three Stanford
// programs "were not affected by SpD at all": the SPEC pipeline must apply
// no transformation and the cycle counts must match STATIC exactly.
func TestUnaffectedClaim(t *testing.T) {
	models := []machine.Model{machine.New(5, 2), machine.New(5, 6)}
	for _, b := range bench.Everything() {
		if !b.Unaffected {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, memLat := range []int{2, 6} {
				sp, err := disamb.Prepare(b.Source, disamb.Spec, memLat, spd.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				if n := len(sp.SpD.Apps); n != 0 {
					t.Errorf("memLat %d: SpD applied %d times to an unaffected program", memLat, n)
				}
				st, err := disamb.Prepare(b.Source, disamb.Static, memLat, spd.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				rSp, err := disamb.Measure(sp, models)
				if err != nil {
					t.Fatal(err)
				}
				rSt, err := disamb.Measure(st, models)
				if err != nil {
					t.Fatal(err)
				}
				for i := range models {
					if rSp.Times[i] != rSt.Times[i] {
						t.Errorf("memLat %d model %d: SPEC %d != STATIC %d cycles",
							memLat, i, rSp.Times[i], rSt.Times[i])
					}
				}
			}
		})
	}
}
