package bench_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/machine"
	"specdis/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden benchmark outputs")

// TestGoldenOutputs pins every benchmark's program output. Any change —
// compiler, interpreter, or benchmark source — that alters results must be
// deliberate (rerun with -update after review).
func TestGoldenOutputs(t *testing.T) {
	for _, b := range bench.Everything() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := compile.Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			r := &sim.Runner{Prog: prog, SemLat: machine.Infinite(2).LatencyFunc()}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", b.Name+".out")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(res.Output), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != res.Output {
				t.Fatalf("output changed:\n got: %q\nwant: %q", res.Output, string(want))
			}
		})
	}
}
