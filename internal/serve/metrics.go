package serve

// GET /metrics: the daemon's cumulative counters as one JSON document —
// request accounting, admission pressure, the aggregated degradation-ladder
// rungs every request's engine took, shared compiled-code cache traffic, and
// (when configured) the persistent store's counters. This document is what
// the chaos pins run against: the fixed-seed soak (chaos_test.go) and the CI
// serve-smoke job assert exact degradation counts from it.

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"specdis/internal/exper"
)

// metrics is the server-level counter set. Per-request engine stats are
// absorbed here when each request finishes, so the totals cover every
// request the daemon served — including ones whose clients disconnected.
type metrics struct {
	requests            atomic.Int64 // every eval/report request received, drained or not
	evals               atomic.Int64
	reports             atomic.Int64
	evalErrors          atomic.Int64
	dedupHits           atomic.Int64
	admissionRejections atomic.Int64
	drainRejections     atomic.Int64

	// Aggregated degradation/budget counters across every request's engine.
	ncodeFallbacks   atomic.Int64
	bcodeFallbacks   atomic.Int64
	traceRecaptures  atomic.Int64
	interpFallbacks  atomic.Int64
	cellFailures     atomic.Int64
	cellPanics       atomic.Int64
	fuelExhausted    atomic.Int64
	deadlineExceeded atomic.Int64
	faultsInjected   atomic.Int64
	tierUps          atomic.Int64
}

// absorb folds one finished request's engine counters into the server
// totals. Each request runs on a private Runner, so its Stats snapshot is
// exactly that request's work — no double counting.
func (m *metrics) absorb(st exper.Stats) {
	m.ncodeFallbacks.Add(st.NCodeFallbacks)
	m.bcodeFallbacks.Add(st.BCodeFallbacks)
	m.traceRecaptures.Add(st.TraceRecaptures)
	m.interpFallbacks.Add(st.InterpFallbacks)
	m.cellFailures.Add(st.CellFailures)
	m.cellPanics.Add(st.CellPanics)
	m.fuelExhausted.Add(st.FuelExhausted)
	m.deadlineExceeded.Add(st.DeadlineExceeded)
	m.faultsInjected.Add(st.FaultsInjected)
	m.tierUps.Add(st.TierUps)
}

// Metrics is the /metrics document.
type Metrics struct {
	Server struct {
		Requests            int64 `json:"requests"`
		Evals               int64 `json:"evals"`
		Reports             int64 `json:"reports"`
		EvalErrors          int64 `json:"eval_errors"`
		DedupHits           int64 `json:"dedup_hits"`
		AdmissionRejections int64 `json:"admission_rejections"`
		DrainRejections     int64 `json:"drain_rejections"`
		Inflight            int64 `json:"inflight"`
		QueueDepth          int64 `json:"queue_depth"`
		Draining            bool  `json:"draining"`
	} `json:"server"`
	Degradation struct {
		NCodeFallbacks   int64 `json:"ncode_fallbacks"`
		BCodeFallbacks   int64 `json:"bcode_fallbacks"`
		TraceRecaptures  int64 `json:"trace_recaptures"`
		InterpFallbacks  int64 `json:"interp_fallbacks"`
		CellFailures     int64 `json:"cell_failures"`
		CellPanics       int64 `json:"cell_panics"`
		FuelExhausted    int64 `json:"fuel_exhausted"`
		DeadlineExceeded int64 `json:"deadline_exceeded"`
		FaultsInjected   int64 `json:"faults_injected"`
		TierUps          int64 `json:"tier_ups"`
	} `json:"degradation"`
	Cache struct {
		Compiled  int64 `json:"compiled"`
		Hits      int64 `json:"hits"`
		Evictions int64 `json:"evictions"`
		BCodeLen  int   `json:"bcode_len"`
		NCodeLen  int   `json:"ncode_len"`
	} `json:"cache"`
	Store *StoreMetrics `json:"store,omitempty"`
}

// StoreMetrics mirrors store.Stats for the /metrics document.
type StoreMetrics struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	MemHits        int64 `json:"mem_hits"`
	Puts           int64 `json:"puts"`
	Evictions      int64 `json:"evictions"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	InvalidDropped int64 `json:"invalid_dropped"`
	IOShortReads   int64 `json:"io_short_reads"`
	IOOpenErrors   int64 `json:"io_open_errors"`
}

// Snapshot assembles the current /metrics document.
func (s *Server) Snapshot() *Metrics {
	var out Metrics
	out.Server.Requests = s.met.requests.Load()
	out.Server.Evals = s.met.evals.Load()
	out.Server.Reports = s.met.reports.Load()
	out.Server.EvalErrors = s.met.evalErrors.Load()
	out.Server.DedupHits = s.met.dedupHits.Load()
	out.Server.AdmissionRejections = s.met.admissionRejections.Load()
	out.Server.DrainRejections = s.met.drainRejections.Load()
	out.Server.Inflight = s.adm.Inflight()
	out.Server.QueueDepth = s.adm.QueueDepth()
	out.Server.Draining = s.draining.Load()

	out.Degradation.NCodeFallbacks = s.met.ncodeFallbacks.Load()
	out.Degradation.BCodeFallbacks = s.met.bcodeFallbacks.Load()
	out.Degradation.TraceRecaptures = s.met.traceRecaptures.Load()
	out.Degradation.InterpFallbacks = s.met.interpFallbacks.Load()
	out.Degradation.CellFailures = s.met.cellFailures.Load()
	out.Degradation.CellPanics = s.met.cellPanics.Load()
	out.Degradation.FuelExhausted = s.met.fuelExhausted.Load()
	out.Degradation.DeadlineExceeded = s.met.deadlineExceeded.Load()
	out.Degradation.FaultsInjected = s.met.faultsInjected.Load()
	out.Degradation.TierUps = s.met.tierUps.Load()

	out.Cache.Compiled = s.ctrs.Compiled.Load()
	out.Cache.Hits = s.ctrs.Hits.Load()
	out.Cache.Evictions = s.ctrs.Evictions.Load()
	out.Cache.BCodeLen = s.bc.Len()
	out.Cache.NCodeLen = s.nc.Len()

	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		out.Store = &StoreMetrics{
			Hits:           st.Hits,
			Misses:         st.Misses,
			MemHits:        st.MemHits,
			Puts:           st.Puts,
			Evictions:      st.Evictions,
			CorruptDropped: st.CorruptDropped,
			InvalidDropped: st.InvalidDropped,
			IOShortReads:   st.IOShortReads,
			IOOpenErrors:   st.IOOpenErrors,
		}
	}
	return &out
}

// handleMetrics serves GET /metrics. It bypasses admission and the drain
// gate: observability must work while the daemon is saturated or draining —
// that's exactly when it matters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Snapshot())
}
