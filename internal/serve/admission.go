package serve

// Bounded admission: at most MaxInflight evaluations run concurrently and at
// most MaxQueue requests wait for a slot. Beyond that the daemon sheds load
// with 429 + Retry-After instead of queueing unboundedly — saturation must
// degrade service latency for some requests, never memory or process health.
// A queued request that outlives its own deadline leaves the queue with a
// typed 504: its slot is never consumed by work nobody is waiting for.

import (
	"context"
	"net/http"
	"sync/atomic"
)

// admission is the daemon's slot-and-queue controller.
type admission struct {
	slots    chan struct{} // one token per running evaluation
	queueMax int64
	waiting  atomic.Int64
	inflight atomic.Int64
}

func newAdmission(maxInflight, maxQueue int) *admission {
	return &admission{slots: make(chan struct{}, maxInflight), queueMax: int64(maxQueue)}
}

// acquire takes an evaluation slot, queueing while the pool is full. It
// returns a typed rejection when the queue is full (429, retryable) or the
// request's context ends first (504 — the deadline propagated through the
// queue, not just the engine). A nil return means the caller holds a slot
// and must release it.
func (a *admission) acquire(ctx context.Context) *apiError {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueMax {
		a.waiting.Add(-1)
		return &apiError{
			Status: http.StatusTooManyRequests, Class: "saturated",
			Msg:        "admission queue full",
			RetryAfter: 1,
		}
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return &apiError{
			Status: http.StatusGatewayTimeout, Class: "deadline",
			Msg: "request deadline expired while queued for admission",
		}
	}
}

// release returns a slot taken by acquire.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// Inflight and QueueDepth are metric gauges.
func (a *admission) Inflight() int64   { return a.inflight.Load() }
func (a *admission) QueueDepth() int64 { return a.waiting.Load() }

// saturated reports whether a new request would be rejected right now — the
// readiness probe's backpressure signal.
func (a *admission) saturated() bool {
	return len(a.slots) == cap(a.slots) && a.waiting.Load() >= a.queueMax
}
