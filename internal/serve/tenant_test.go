package serve

// Satellite: mixed-tenant concurrency. Many clients with different programs,
// pipelines and budgets hammer one daemon whose compiled-code caches and
// artifact store are shared service state. Under -race this is the proof
// that the shared state is concurrency-safe; the assertions prove that
// sharing never leaks across requests — results stay byte-identical to a
// cold single-tenant evaluation, and each response's stats describe only its
// own request's work.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"specdis/internal/store"
)

func TestMixedTenantsSharedState(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A small cache bound keeps evictions in play while tenants compete.
	s, ts := newTestServer(t, Config{Store: st, CacheLimit: 64, MaxInflight: 4})

	// Eight tenants, each with its own cell — distinct benchmarks,
	// pipelines, latencies and tiers, so no two tenants' requests dedup
	// into one flight.
	tenants := []EvalRequest{
		{Bench: "perm", Pipeline: "SPEC", MemLat: 2},
		{Bench: "queen", Pipeline: "SPEC", MemLat: 6, Exec: "bcode"},
		{Bench: "quick", Pipeline: "NAIVE", MemLat: 2, Exec: "tree"},
		{Bench: "tree", Pipeline: "STATIC", MemLat: 6},
		{Bench: "fft", Pipeline: "SPEC", MemLat: 2, Exec: "bcode"},
		{Bench: "moment", Pipeline: "PERFECT", MemLat: 6},
		{Bench: "adi", Pipeline: "STATIC", MemLat: 2, Lint: true},
		{Bench: "boolmin", Pipeline: "NAIVE", MemLat: 6, Exec: "tree"},
	}

	// Cold single-tenant baselines, computed on a private server (its own
	// caches, no store): the oracle for cross-tenant isolation.
	_, baseTS := newTestServer(t, Config{})
	want := make([]json.RawMessage, len(tenants))
	for i, req := range tenants {
		status, _, resp := postEval(t, baseTS.URL, req)
		if status != http.StatusOK {
			t.Fatalf("baseline %d: status %d (%+v)", i, status, resp.Error)
		}
		want[i] = resp.Result
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*rounds)
	for i, req := range tenants {
		wg.Add(1)
		go func(i int, req EvalRequest) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				status, _, resp := postEval(t, ts.URL, req)
				if status != http.StatusOK {
					errs <- fmt.Errorf("tenant %d round %d: status %d (%+v)", i, round, status, resp.Error)
					return
				}
				if !bytes.Equal(resp.Result, want[i]) {
					errs <- fmt.Errorf("tenant %d round %d: result differs from cold baseline", i, round)
					return
				}
				// Per-request stats isolation: no tenant runs chaos plans or
				// starved budgets here, so a nonzero failure/fault counter in
				// MY response would be another tenant's work leaking in.
				st := resp.Stats
				if st.CellFailures != 0 || st.CellPanics != 0 || st.FaultsInjected != 0 ||
					st.NCodeFallbacks != 0 || st.BCodeFallbacks != 0 ||
					st.FuelExhausted != 0 || st.DeadlineExceeded != 0 {
					errs <- fmt.Errorf("tenant %d round %d: foreign work in stats: %+v", i, round, st)
					return
				}
			}
		}(i, req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// The sharing is real: the caches served cross-tenant hits, the store
	// absorbed artifacts, and nothing was reported as a server error.
	m := s.Snapshot()
	if m.Cache.Hits == 0 || m.Cache.Compiled == 0 {
		t.Errorf("shared caches idle: %+v", m.Cache)
	}
	if m.Store == nil || m.Store.Puts == 0 {
		t.Errorf("shared store idle: %+v", m.Store)
	}
	if m.Server.EvalErrors != 0 {
		t.Errorf("eval_errors %d, want 0", m.Server.EvalErrors)
	}
	if wantEvals := int64(len(tenants) * rounds); m.Server.Evals != wantEvals {
		t.Errorf("evals %d, want %d", m.Server.Evals, wantEvals)
	}
}

// TestTenantBudgetIsolation pins that one tenant's starved budget cannot
// poison a neighbor's identical cell: a fuel-starved SPEC evaluation fails
// typed while a concurrent full-budget evaluation of the same benchmark
// succeeds with clean stats. Distinct fuel budgets key distinct flights, so
// the two never dedup into one computation.
func TestTenantBudgetIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 2})
	var wg sync.WaitGroup
	wg.Add(2)
	var starvedStatus, fullStatus int
	var starvedResp, fullResp *evalResp
	go func() {
		defer wg.Done()
		starvedStatus, _, starvedResp = postEval(t, ts.URL, EvalRequest{Bench: "fft", Pipeline: "SPEC", MemLat: 2, Fuel: 10})
	}()
	go func() {
		defer wg.Done()
		fullStatus, _, fullResp = postEval(t, ts.URL, EvalRequest{Bench: "fft", Pipeline: "SPEC", MemLat: 2})
	}()
	wg.Wait()

	if starvedStatus != http.StatusUnprocessableEntity || starvedResp.Error == nil || starvedResp.Error.Class != "fuel" {
		t.Fatalf("starved tenant: status %d, %+v", starvedStatus, starvedResp.Error)
	}
	if fullStatus != http.StatusOK {
		t.Fatalf("full-budget tenant: status %d (%+v)", fullStatus, fullResp.Error)
	}
	if st := fullResp.Stats; st.FuelExhausted != 0 || st.CellFailures != 0 {
		t.Fatalf("full-budget tenant inherited the starved tenant's failure: %+v", st)
	}
}
