package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/store"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// evalResp decodes both response shapes: a success ({"result","stats"}) and
// a typed error ({"error"}).
type evalResp struct {
	Result json.RawMessage `json:"result"`
	Stats  *EvalStats      `json:"stats"`
	Error  *apiError       `json:"error"`
}

func postEval(t *testing.T, base string, req EvalRequest) (int, http.Header, *evalResp) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out evalResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, resp.Header, &out
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestEvalMatrix evaluates one benchmark under all four pipelines on every
// execution tier and pins the cross-tier identity: the deterministic result
// bytes must not depend on the tier, and they must equal what a direct batch
// Runner computes for the same cell.
func TestEvalMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	b := bench.ByName("perm")

	batch := exper.New()
	batch.Par = 1
	batch.Benchmarks = []*bench.Benchmark{b}

	for _, pipe := range []string{"NAIVE", "STATIC", "SPEC", "PERFECT"} {
		var first json.RawMessage
		for _, exec := range []string{"native", "bcode", "tree"} {
			status, _, resp := postEval(t, ts.URL, EvalRequest{
				Bench: "perm", Pipeline: pipe, MemLat: 2, Exec: exec,
			})
			if status != http.StatusOK {
				t.Fatalf("%s/%s: status %d (%+v)", pipe, exec, status, resp.Error)
			}
			if resp.Stats == nil || resp.Stats.Exec != exec {
				t.Fatalf("%s/%s: stats %+v", pipe, exec, resp.Stats)
			}
			if first == nil {
				first = resp.Result
			} else if !bytes.Equal(first, resp.Result) {
				t.Fatalf("%s: result differs across tiers:\n%s\n%s", pipe, first, resp.Result)
			}
		}

		var res EvalResult
		if err := json.Unmarshal(first, &res); err != nil {
			t.Fatal(err)
		}
		kind := mustKind(t, pipe)
		m, err := batch.Measure(b, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := batch.Summary(b, kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.CyclesInf != m.Inf || res.Ops != m.Ops {
			t.Fatalf("%s: cycles_inf/ops %d/%d, batch %d/%d", pipe, res.CyclesInf, res.Ops, m.Inf, m.Ops)
		}
		for w := range m.ByWidth {
			if res.CyclesByWidth[w] != m.ByWidth[w] {
				t.Fatalf("%s: width %d cycles %d, batch %d", pipe, w+1, res.CyclesByWidth[w], m.ByWidth[w])
			}
		}
		if res.SpD.RAW != sum.RAW || res.SpD.WAR != sum.WAR || res.SpD.WAW != sum.WAW ||
			res.BaseOps != sum.BaseOps || res.AfterOps != sum.AfterOps || res.Grafts != sum.Grafts {
			t.Fatalf("%s: summary %+v vs batch %+v", pipe, res, sum)
		}
	}
}

func mustKind(t *testing.T, name string) disamb.Kind {
	t.Helper()
	p, apiErr := New(Config{}).plan(&EvalRequest{Bench: "perm", Pipeline: name, MemLat: 2})
	if apiErr != nil {
		t.Fatalf("plan(%s): %v", name, apiErr)
	}
	return p.kind
}

// TestEvalSourceSubmission submits MiniC text instead of naming a benchmark:
// the cycle prices must match the named evaluation of the same program, and
// the synthetic bench name must be content-derived.
func TestEvalSourceSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := bench.ByName("quick").Source

	status, _, byName := postEval(t, ts.URL, EvalRequest{Bench: "quick", Pipeline: "SPEC", MemLat: 6})
	if status != http.StatusOK {
		t.Fatalf("bench eval: status %d (%+v)", status, byName.Error)
	}
	status, _, bySrc := postEval(t, ts.URL, EvalRequest{Source: src, Pipeline: "SPEC", MemLat: 6})
	if status != http.StatusOK {
		t.Fatalf("source eval: status %d (%+v)", status, bySrc.Error)
	}
	var a, b EvalResult
	if err := json.Unmarshal(byName.Result, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bySrc.Result, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.Bench, "src-") {
		t.Fatalf("synthetic bench name %q", b.Bench)
	}
	if a.CyclesInf != b.CyclesInf || a.Ops != b.Ops || a.SpD != b.SpD {
		t.Fatalf("source eval diverged from named eval: %+v vs %+v", b, a)
	}

	// The same source twice must produce the same synthetic name (fault
	// plans and failure reports key on cell names).
	status, _, again := postEval(t, ts.URL, EvalRequest{Source: src, Pipeline: "SPEC", MemLat: 6})
	if status != http.StatusOK {
		t.Fatal("repeat source eval failed")
	}
	var c EvalResult
	if err := json.Unmarshal(again.Result, &c); err != nil {
		t.Fatal(err)
	}
	if c.Bench != b.Bench {
		t.Fatalf("synthetic name unstable: %q vs %q", c.Bench, b.Bench)
	}
}

// TestEvalValidation pins the error taxonomy's input half: every malformed
// request maps to the documented status and class, before any evaluation
// work happens.
func TestEvalValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 256})
	cases := []struct {
		name   string
		req    EvalRequest
		status int
		class  string
	}{
		{"neither source nor bench", EvalRequest{Pipeline: "SPEC", MemLat: 2}, 400, "bad-request"},
		{"both source and bench", EvalRequest{Source: "int x;", Bench: "perm", Pipeline: "SPEC", MemLat: 2}, 400, "bad-request"},
		{"unknown bench", EvalRequest{Bench: "nope", Pipeline: "SPEC", MemLat: 2}, 400, "bad-request"},
		{"unknown pipeline", EvalRequest{Bench: "perm", Pipeline: "TURBO", MemLat: 2}, 400, "bad-request"},
		{"bad mem_lat", EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 3}, 400, "bad-request"},
		{"bad exec", EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2, Exec: "jit"}, 400, "bad-request"},
		{"negative fuel", EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2, Fuel: -1}, 400, "bad-request"},
		{"negative deadline", EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2, DeadlineMS: -1}, 400, "bad-request"},
		{"oversized source", EvalRequest{Source: strings.Repeat("x", 300), Pipeline: "SPEC", MemLat: 2}, 413, "too-large"},
		{"uncompilable source", EvalRequest{Source: "int main( {", Pipeline: "SPEC", MemLat: 2}, 422, "invalid-source"},
	}
	for _, tc := range cases {
		status, _, resp := postEval(t, ts.URL, tc.req)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, status, tc.status, resp.Error)
			continue
		}
		if resp.Error == nil || resp.Error.Class != tc.class {
			t.Errorf("%s: error %+v, want class %q", tc.name, resp.Error, tc.class)
		}
	}

	// Case-insensitive pipeline names are accepted.
	if status, _, resp := postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "spec", MemLat: 2}); status != 200 {
		t.Errorf("lower-case pipeline: status %d (%+v)", status, resp.Error)
	}
}

// TestEvalBudgets pins the budget taxonomy: a starved fuel budget is the
// client's fault (422, class fuel, cell-attributed), a starved deadline a
// 504 — typed failures, never hangs or crashes.
func TestEvalBudgets(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, resp := postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2, Fuel: 10})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("starved fuel: status %d (%+v)", status, resp.Error)
	}
	if resp.Error == nil || resp.Error.Class != "fuel" {
		t.Fatalf("starved fuel: error %+v, want class fuel", resp.Error)
	}
	if resp.Error.Cell == "" || !strings.HasPrefix(resp.Error.Cell, "perm/SPEC/") {
		t.Fatalf("starved fuel: cell %q not attributed", resp.Error.Cell)
	}

	// A nonterminating program makes the deadline test deterministic: only
	// the wall-clock budget can stop it (the fuel cap would take far
	// longer), so the response must be a typed 504 — never a hang.
	const loop = `
void main() {
	int i = 0;
	while (1) {
		i = i + 1;
	}
}
`
	status, _, resp = postEval(t, ts.URL, EvalRequest{Source: loop, Pipeline: "NAIVE", MemLat: 2, DeadlineMS: 100})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("nonterminating program: status %d (%+v)", status, resp.Error)
	}
	if resp.Error == nil || resp.Error.Class != "deadline" {
		t.Fatalf("nonterminating program: error %+v, want class deadline", resp.Error)
	}
}

// TestEvalLint runs the verifier battery through the service: a suite
// program lints clean, with the findings array present and empty.
func TestEvalLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, resp := postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2, Lint: true})
	if status != http.StatusOK {
		t.Fatalf("status %d (%+v)", status, resp.Error)
	}
	var res EvalResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.LintClean == nil || !*res.LintClean {
		t.Fatalf("lint_clean %v, want true", res.LintClean)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("findings %v, want none", res.Findings)
	}
}

// TestReportMatchesBatch pins the service's core determinism claim: the
// /v1/report document is byte-identical to the in-process renderers —
// the same bytes spdbench writes to stdout.
func TestReportMatchesBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var want bytes.Buffer
	r := exper.New()
	r.Par = 1
	exper.RenderTable61(&want)
	fmt.Fprintln(&want)
	exper.RenderTable62(&want, r.Benchmarks)
	fmt.Fprintln(&want)
	for _, stream := range []func(io.Writer) error{
		func(w io.Writer) error { return r.StreamTable63(w) },
		func(w io.Writer) error { return r.StreamFigure62(w) },
		func(w io.Writer) error { return r.StreamFigure63(w) },
		func(w io.Writer) error { return r.StreamFigure64(w) },
	} {
		if err := stream(&want); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintln(&want)
	}

	status, hdr, got := get(t, ts.URL+"/v1/report")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatalf("report differs from batch renderers (%d vs %d bytes)", want.Len(), len(got))
	}

	// Section selection: only=table61 is exactly that table.
	var t61 bytes.Buffer
	exper.RenderTable61(&t61)
	fmt.Fprintln(&t61)
	status, _, got = get(t, ts.URL+"/v1/report?only=table61")
	if status != http.StatusOK || !bytes.Equal(t61.Bytes(), got) {
		t.Fatalf("only=table61: status %d, %d bytes (want %d)", status, len(got), t61.Len())
	}

	// Bad parameters are typed 400s.
	if status, _, _ = get(t, ts.URL+"/v1/report?only=fig99"); status != http.StatusBadRequest {
		t.Fatalf("only=fig99: status %d", status)
	}
	if status, _, _ = get(t, ts.URL+"/v1/report?bench=nope"); status != http.StatusBadRequest {
		t.Fatalf("bench=nope: status %d", status)
	}
	if status, _, _ = get(t, ts.URL+"/v1/report?exec=jit"); status != http.StatusBadRequest {
		t.Fatalf("exec=jit: status %d", status)
	}
}

// TestLifecycle pins the health endpoints and the drain ladder: /healthz is
// unconditional liveness, /readyz flips to 503 when draining, Drain waits
// for in-flight requests and new ones are rejected with 503 + Retry-After.
func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: st, DrainTimeout: 10 * time.Second})

	if status, _, body := get(t, ts.URL+"/healthz"); status != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", status, body)
	}
	if status, _, body := get(t, ts.URL+"/readyz"); status != 200 || string(body) != "ready\n" {
		t.Fatalf("readyz: %d %q", status, body)
	}

	// Register a synthetic in-flight request, then drain: Drain must block
	// on it, new requests must bounce with 503 + Retry-After, and /healthz
	// must keep answering (liveness is not readiness).
	rec := httptest.NewRecorder()
	done, ok := s.begin(rec)
	if !ok {
		t.Fatal("begin refused before drain")
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	status, hdr, resp := postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("eval during drain: status %d", status)
	}
	if resp.Error == nil || resp.Error.Class != "draining" || hdr.Get("Retry-After") == "" {
		t.Fatalf("eval during drain: %+v, Retry-After %q", resp.Error, hdr.Get("Retry-After"))
	}
	if status, _, body := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Fatalf("readyz during drain: %d %q", status, body)
	}
	if status, _, _ := get(t, ts.URL+"/healthz"); status != 200 {
		t.Fatalf("healthz during drain: %d", status)
	}
	if status, _, _ := get(t, ts.URL+"/metrics"); status != 200 {
		t.Fatalf("metrics during drain: %d", status)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	done()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	m := s.Snapshot()
	if m.Server.DrainRejections == 0 || !m.Server.Draining {
		t.Fatalf("metrics after drain: %+v", m.Server)
	}
}

// TestDrainTimeout pins the bounded half of the drain contract: a request
// that never finishes cannot hold shutdown hostage past DrainTimeout.
func TestDrainTimeout(t *testing.T) {
	s, _ := newTestServer(t, Config{DrainTimeout: 20 * time.Millisecond})
	done, ok := s.begin(httptest.NewRecorder())
	if !ok {
		t.Fatal("begin refused")
	}
	defer done() // never called before the timeout: the request "hangs"
	start := time.Now()
	if err := s.Drain(context.Background()); err == nil {
		t.Fatal("Drain returned nil with a hung request")
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Drain took %v, want ~DrainTimeout", since)
	}
}

// TestFlightGroup pins single-flight semantics at the unit level: one
// leader per key, followers share the flight, and the computation is
// cancelled exactly when the last waiter abandons an unfinished flight.
func TestFlightGroup(t *testing.T) {
	var g flightGroup
	f, leader := g.join("k")
	if !leader {
		t.Fatal("first join is not leader")
	}
	f2, leader2 := g.join("k")
	if leader2 || f2 != f {
		t.Fatal("second join did not share the leader's flight")
	}
	cancelled := false
	f.cancel = func() { cancelled = true }

	g.leave("k", f2)
	if cancelled {
		t.Fatal("cancelled with the leader still waiting")
	}
	g.leave("k", f)
	if !cancelled {
		t.Fatal("last waiter left an unfinished flight without cancelling it")
	}

	// A fresh join after abandonment is a new leader.
	f3, leader3 := g.join("k")
	if !leader3 {
		t.Fatal("post-abandonment join did not lead")
	}
	g.finish("k", f3)
	if !f3.finished() {
		t.Fatal("finish did not close done")
	}
	g.leave("k", f3) // leaving a finished flight must not cancel anything

	// Different keys never share flights.
	fa, _ := g.join("a")
	fb, _ := g.join("b")
	if fa == fb {
		t.Fatal("distinct keys shared a flight")
	}
}

// TestDedupSharesResult exercises the HTTP dedup path: identical concurrent
// requests produce byte-identical results, and at least one response in a
// saturated burst is served from the shared flight.
func TestDedupSharesResult(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	const n = 6
	type reply struct {
		status int
		resp   *evalResp
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			status, _, resp := postEval(t, ts.URL, EvalRequest{Bench: "fft", Pipeline: "SPEC", MemLat: 2})
			replies <- reply{status, resp}
		}()
	}
	var first json.RawMessage
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("status %d (%+v)", r.status, r.resp.Error)
		}
		if first == nil {
			first = r.resp.Result
		} else if !bytes.Equal(first, r.resp.Result) {
			t.Fatalf("deduplicated results differ:\n%s\n%s", first, r.resp.Result)
		}
	}
	m := s.Snapshot()
	if m.Server.Evals != n {
		t.Fatalf("evals %d, want %d", m.Server.Evals, n)
	}
	if m.Server.DedupHits+m.Server.EvalErrors == 0 && m.Server.Evals == n {
		// All six could in principle run back to back without overlapping;
		// with MaxInflight=1 and simultaneous dispatch that is vanishingly
		// unlikely, but don't fail the build on a scheduling fluke — the
		// deterministic dedup contract is TestFlightGroup's job.
		t.Log("no dedup observed (scheduling fluke); flight semantics covered by TestFlightGroup")
	}
}
