package serve

// Error taxonomy → HTTP mapping: every failure a request can produce — bad
// input, exhausted budgets, saturation, degradation ladders running dry — is
// returned as a typed JSON error whose class is the resilience taxonomy's
// vocabulary (docs/SERVICE.md pins the full table). Nothing here ever turns
// into a process crash: handlers recover panics into apiErrors.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"specdis/internal/resilience"
)

// apiError is one request's typed failure: the HTTP status it maps to, the
// machine-readable class, and a human-readable message. It is the only error
// shape the daemon writes.
type apiError struct {
	Status int    `json:"-"`
	Class  string `json:"class"`
	Msg    string `json:"message"`
	// Cell names the failing evaluation cell when the failure came from the
	// engine ("bench/PIPELINE/mN"), so a chaos run's typed errors are
	// attributable.
	Cell string `json:"cell,omitempty"`
	// RetryAfter, when positive, is sent as a Retry-After header (seconds):
	// admission rejections are transient by construction.
	RetryAfter int `json:"retry_after,omitempty"`
}

func (e *apiError) Error() string { return e.Class + ": " + e.Msg }

// badRequest is a 400 with the given message.
func badRequest(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Class: "bad-request", Msg: msg}
}

// errorFor maps an evaluation error onto its API shape. Engine failures
// arrive as resilience.CellErrors and map by class — budget classes are the
// client's fault (422/504), everything else is the server's (500). A plain
// error is a compile/infrastructure failure of the submitted source: 422.
func errorFor(err error) *apiError {
	var ce *resilience.CellError
	if errors.As(err, &ce) {
		status := http.StatusInternalServerError
		switch ce.Class {
		case resilience.ClassFuel:
			status = http.StatusUnprocessableEntity
		case resilience.ClassDeadline:
			status = http.StatusGatewayTimeout
		}
		return &apiError{Status: status, Class: ce.Class.String(), Msg: ce.Err.Error(), Cell: ce.Cell()}
	}
	switch resilience.Classify(err) {
	case resilience.ClassFuel:
		return &apiError{Status: http.StatusUnprocessableEntity, Class: "fuel", Msg: err.Error()}
	case resilience.ClassDeadline:
		return &apiError{Status: http.StatusGatewayTimeout, Class: "deadline", Msg: err.Error()}
	}
	return &apiError{Status: http.StatusUnprocessableEntity, Class: "invalid-source", Msg: err.Error()}
}

// writeError writes the error as the response: status, optional Retry-After,
// and a {"error": {...}} JSON body.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(map[string]*apiError{"error": e})
}
